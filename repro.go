// Package repro is the public facade of the reproduction of
// "Data Mining In EDA — Basic Principles, Promises, and Constraints"
// (Li-C. Wang and Magdy S. Abadir, DAC 2014).
//
// The paper is a tutorial: its contribution is a methodology for
// formulating EDA problems so that statistical learning works, and a set
// of industrial case studies demonstrating it. This module rebuilds the
// whole stack from scratch on the Go standard library:
//
//   - every learning-algorithm family the paper surveys
//     (internal/{knn,linear,bayes,tree,neural,svm,gp,cluster,transform,
//     rules,imbalance,featsel,kernel});
//   - the methodology layer (internal/core);
//   - simulated EDA substrates replacing the proprietary industrial data
//     (internal/{isa,litho,timing,mfgtest});
//   - one experiment per paper figure/table (internal/apps/...).
//
// This package re-exports the experiment entry points so that a user can
// regenerate any paper artifact with one call; `cmd/edamine` is the CLI
// wrapper around the same functions.
package repro

import (
	"repro/internal/apps/costred"
	"repro/internal/apps/dstc"
	"repro/internal/apps/returns"
	"repro/internal/apps/survey"
	"repro/internal/apps/template"
	"repro/internal/apps/testsel"
	"repro/internal/apps/varpred"
)

// Experiment identifiers, one per paper artifact.
const (
	ExpFig3   = "fig3"   // kernel trick demonstration
	ExpFig5   = "fig5"   // overfitting vs model complexity
	ExpFig7   = "fig7"   // novel test selection
	ExpTable1 = "table1" // coverage after rule learning
	ExpFig9   = "fig9"   // layout variability prediction
	ExpFig10  = "fig10"  // timing mismatch diagnosis
	ExpFig11  = "fig11"  // customer return screening
	ExpFig12  = "fig12"  // test-elimination difficult case
	ExpSec2   = "sec2"   // five-regressor comparison
)

// Fig3 runs the Figure 3 kernel-trick demonstration with n samples per
// class.
func Fig3(seed int64, n int) (*survey.Fig3Result, error) { return survey.Fig3(seed, n) }

// Fig5 runs the Figure 5 polynomial-degree overfitting sweep with nTrain
// training samples.
func Fig5(seed int64, nTrain int) (*survey.Fig5Result, error) { return survey.Fig5(seed, nTrain) }

// Fig7 runs the Figure 7 novel-test-selection experiment.
func Fig7(cfg testsel.Config) (*testsel.Result, error) { return testsel.Run(cfg) }

// Table1 runs the Table 1 template-refinement experiment.
func Table1(cfg template.Config) (*template.Result, error) { return template.Run(cfg) }

// Fig9 runs the Figure 9 layout-variability prediction experiment.
func Fig9(cfg varpred.Config) (*varpred.Result, error) { return varpred.Run(cfg) }

// Fig10 runs the Figure 10 DSTC diagnosis experiment.
func Fig10(cfg dstc.Config) (*dstc.Result, error) { return dstc.Run(cfg) }

// Fig11 runs the Figure 11 customer-return screening experiment.
func Fig11(cfg returns.Config) (*returns.Result, error) { return returns.Run(cfg) }

// Fig12 runs the Figure 12 test-elimination difficult case.
func Fig12(cfg costred.Config) (*costred.Result, error) { return costred.Run(cfg) }

// Sec2 runs the Section 2.4 five-regressor comparison with n samples.
func Sec2(seed int64, n int) (*survey.Sec2Result, error) { return survey.Sec2Regressors(seed, n) }
