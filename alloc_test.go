package repro_test

// Allocation-regression gate (ISSUE 9). Every steady-state numeric hot
// path — the sliding-window Gram append and every model kind's
// destination-passing batch scorer — must run allocation-free once its
// columnar arena is warm. The floors live in scripts/alloc_floor.txt
// (committed, all zeros); raising one is an explicit, reviewed edit to
// that file, never a silent drift. scripts/check.sh and the CI
// alloc-gate step run exactly this test, without -race (the race
// detector instruments allocations and would report false counts — see
// raceEnabled).

import (
	"bufio"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core/colmat"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/kernel/approx"
	"repro/internal/linear"
	"repro/internal/parallel"
	"repro/internal/rules"
	"repro/internal/svm"
	"repro/internal/testkit"
	"repro/internal/tree"
)

// raceEnabled is set by alloc_race_test.go under -race: the race
// detector adds shadow allocations to instrumented code, so allocation
// floors are only meaningful in a plain build.
var raceEnabled = false

// readAllocFloor parses scripts/alloc_floor.txt into name → max allocs.
func readAllocFloor(t *testing.T) map[string]float64 {
	t.Helper()
	f, err := os.Open("scripts/alloc_floor.txt")
	if err != nil {
		t.Fatalf("open alloc floor: %v", err)
	}
	defer f.Close()
	floors := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("alloc_floor.txt: malformed line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("alloc_floor.txt: bad floor %q: %v", fields[1], err)
		}
		floors[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan alloc floor: %v", err)
	}
	return floors
}

// measureAllocs returns steady-state allocs/op for fn.
// testing.AllocsPerRun already performs one warm-up call before
// counting, which primes the columnar arena. A GC mid-measurement can
// still legitimately drain a sync.Pool and charge the refill to one
// iteration, so a nonzero first reading gets one retry before it
// counts as a regression.
func measureAllocs(fn func()) float64 {
	allocs := testing.AllocsPerRun(100, fn)
	if allocs > 0 {
		allocs = testing.AllocsPerRun(100, fn)
	}
	return allocs
}

// TestAllocFloor measures every floored path and compares against the
// committed floor. It pins the worker pool to 1 for the measurement:
// the zero-alloc contract is about the serial steady state — the
// parallel path spends goroutines by design.
func TestAllocFloor(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation floors are not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("alloc gate fits models; skipped with -short")
	}
	floors := readAllocFloor(t)
	old := parallel.SetWorkers(1)
	defer parallel.SetWorkers(old)

	r := rand.New(rand.NewSource(20240808))
	dcls := testkit.GenClassification(r, 48, 4, 2.2)
	dreg := testkit.GenRegression(r, 48, 5, 0.4) // Friedman #1 needs ≥5 features
	probes := testkit.GenProbes(r, dcls, 24)
	regProbes := testkit.GenProbes(r, dreg, 24)
	// The kernel is captured as an interface value: converting a concrete
	// kernel struct to the Kernel interface at the call site would box it
	// — one heap allocation per call — and charge the measurement with an
	// artifact of the test closure rather than the scoring path.
	var k kernel.Kernel = kernel.RBF{Gamma: 0.25}

	svc, err := svm.FitSVC(dcls, k, svm.SVCConfig{C: 1, Seed: 3})
	if err != nil {
		t.Fatalf("fit svc: %v", err)
	}
	oc, err := svm.FitOneClass(dcls.X, k, svm.OneClassConfig{Nu: 0.2})
	if err != nil {
		t.Fatalf("fit one-class: %v", err)
	}
	gpm, err := gp.Fit(dreg, gp.Config{Kernel: k, Noise: 1e-2})
	if err != nil {
		t.Fatalf("fit gp: %v", err)
	}
	ridge, err := linear.FitRidge(dreg, 0.01)
	if err != nil {
		t.Fatalf("fit ridge: %v", err)
	}
	cart, err := tree.Fit(dcls, tree.Config{MaxDepth: 5})
	if err != nil {
		t.Fatalf("fit tree: %v", err)
	}
	ruleList, err := rules.CN2SD(dcls, 1, rules.CN2SDConfig{})
	if err != nil {
		t.Fatalf("fit rules: %v", err)
	}
	ruleSet := &rules.RuleSet{Rules: ruleList, Target: 1, Default: 0}

	rff, err := approx.NewRFF(0.25, dcls.Dim(), 64, 11)
	if err != nil {
		t.Fatalf("rff map: %v", err)
	}
	rffLin, err := approx.Compile(rff, oc.SV, oc.Alpha, -oc.Rho)
	if err != nil {
		t.Fatalf("compile rff: %v", err)
	}
	nys, err := approx.NewNystrom(k, oc.SV, 12, 11)
	if err != nil {
		t.Fatalf("nystrom map: %v", err)
	}
	nysLin, err := approx.Compile(nys, oc.SV, oc.Alpha, -oc.Rho)
	if err != nil {
		t.Fatalf("compile nystrom: %v", err)
	}
	nysLin.Score(probes.Row(0)) // fold the weights outside the measurement

	sg := kernel.NewSlidingGram(k, 32, dcls.Dim())
	for i := 0; i < dcls.Len(); i++ { // overfill: steady state is append-with-evict
		sg.Append(dcls.Row(i))
	}
	appendRow := dcls.Row(0)

	out := make([]float64, probes.Rows)
	paths := []struct {
		name string
		fn   func()
	}{
		{"sliding_gram_append", func() { sg.Append(appendRow) }},
		{"cross_gram_into", func() {
			g := colmat.Get(probes.Rows, oc.SV.Rows)
			kernel.CrossGramInto(k, probes, oc.SV, g)
			colmat.Put(g)
		}},
		{"svc_decision_batch_into", func() { svc.DecisionBatchInto(probes, out) }},
		{"svc_predict_batch_into", func() { svc.PredictBatchInto(probes, out) }},
		{"oneclass_decision_batch_into", func() { oc.DecisionBatchInto(probes, out) }},
		{"gp_predict_batch_into", func() { gpm.PredictBatchInto(regProbes, out) }},
		{"ridge_predict_batch_into", func() { ridge.PredictBatchInto(regProbes, out) }},
		{"tree_predict_batch_into", func() { cart.PredictBatchInto(probes, out) }},
		{"rules_predict_batch_into", func() { ruleSet.PredictBatchInto(probes, out) }},
		{"approx_rff_score_batch_into", func() { rffLin.ScoreBatchInto(probes, out) }},
		{"approx_nystrom_score_batch_into", func() { nysLin.ScoreBatchInto(probes, out) }},
	}

	measured := map[string]bool{}
	for _, p := range paths {
		floor, ok := floors[p.name]
		if !ok {
			t.Errorf("path %s has no floor in scripts/alloc_floor.txt", p.name)
			continue
		}
		measured[p.name] = true
		if allocs := measureAllocs(p.fn); allocs > floor {
			t.Errorf("%s: %.1f allocs/op exceeds floor %.0f", p.name, allocs, floor)
		} else {
			t.Logf("%s: %.1f allocs/op (floor %.0f)", p.name, allocs, floor)
		}
	}
	for name := range floors {
		if !measured[name] {
			t.Errorf("alloc_floor.txt names %s but TestAllocFloor does not measure it; remove the stale line", name)
		}
	}
}
