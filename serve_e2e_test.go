package repro_test

// End-to-end acceptance test for the model-persistence + serving stack
// (ISSUE 3): train every persistable model kind, save versioned
// artifacts the way `edamine -save-model` does, boot the inference
// server on them, and assert that HTTP predictions are bit-identical to
// scoring the freshly trained models in-process — through the
// single-request path (MaxBatch=1) and through the micro-batching path
// (MaxBatch>1 under concurrency). This is the serving extension of the
// repo-wide determinism contract: batching, caching, HTTP transport,
// and JSON encoding must change how predictions are delivered, never
// what they are.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/apps/modelzoo"
	"repro/internal/serve"
)

func TestServeEndToEnd(t *testing.T) {
	const seed = 11
	trained, err := modelzoo.TrainAll(seed, 64, 24)
	if err != nil {
		t.Fatal(err)
	}

	// Stage 1: persist artifacts exactly like `edamine -save-model DIR models`.
	dir := t.TempDir()
	res, err := modelzoo.Run(modelzoo.Config{Seed: seed, SaveDir: dir, Train: 64, Probes: 24})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Models {
		if !m.BitIdentical {
			t.Fatalf("%s: artifact round-trip is not bit-identical before serving", m.Kind)
		}
	}

	// Stage 2: boot the server on the saved artifacts and compare HTTP
	// predictions against the in-process reference, serial then batched.
	for _, tc := range []struct {
		name string
		cfg  serve.Config
	}{
		{"serial/maxBatch=1", serve.Config{MaxBatch: 1, CacheRows: 0}},
		{"batched/maxBatch=8", serve.Config{MaxBatch: 8, MaxWait: time.Millisecond, CacheRows: 128}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			srv := serve.New(tc.cfg)
			defer srv.Close()
			for _, tr := range trained {
				if _, err := srv.LoadFile(modelzoo.ArtifactFile(dir, tr.Kind), string(tr.Kind)); err != nil {
					t.Fatal(err)
				}
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("/readyz not ready: %v %v", err, resp.StatusCode)
			} else {
				resp.Body.Close()
			}

			for _, tr := range trained {
				tr := tr
				t.Run(string(tr.Kind), func(t *testing.T) {
					// Concurrent single-instance requests: under the batched
					// config these interleave into shared micro-batches.
					got := make([]float64, tr.Probes.Rows)
					errs := make(chan error, tr.Probes.Rows)
					var wg sync.WaitGroup
					for i := 0; i < tr.Probes.Rows; i++ {
						wg.Add(1)
						go func(i int) {
							defer wg.Done()
							p, err := predictOne(ts.URL, string(tr.Kind), tr.Probes.Row(i))
							if err != nil {
								errs <- fmt.Errorf("probe %d: %w", i, err)
								return
							}
							got[i] = p
						}(i)
					}
					wg.Wait()
					close(errs)
					for err := range errs {
						t.Fatal(err)
					}
					for i := range got {
						if got[i] != tr.Want[i] {
							t.Fatalf("probe %d over HTTP = %v, in-process = %v (not bit-identical)",
								i, got[i], tr.Want[i])
						}
					}
				})
			}
		})
	}
}

func predictOne(baseURL, name string, x []float64) (float64, error) {
	body, err := json.Marshal(map[string][][]float64{"instances": {x}})
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(baseURL+"/predict/"+name, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	var pr struct {
		Predictions []float64 `json:"predictions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return 0, err
	}
	if len(pr.Predictions) != 1 {
		return 0, fmt.Errorf("got %d predictions, want 1", len(pr.Predictions))
	}
	return pr.Predictions[0], nil
}
