// Command edarouter fronts a fleet of edaserved replicas with the
// sharded cluster router (internal/serve/cluster): consistent-hash
// model→shard routing with replication, health-gated membership fed by
// background readiness probes, batch fan-out across healthy owners,
// priority-tiered admission, and blue/green rollout through the
// replicas' /models/load.
//
// Usage:
//
//	edarouter -replica http://host1:8080 -replica http://host2:8080 \
//	          [-addr :9090] [-replication 2] [-vnodes 64]
//	          [-max-inflight 256] [-request-timeout 10s]
//	          [-attempt-timeout 5s] [-probe-interval 1s]
//	          [-spread-min 8] [-down-after 1] [-drain-timeout 10s]
//	          [-chaos-seed N] [-chaos-err p] [-chaos-latency-rate p]
//	          [-chaos-latency d] [-chaos-corrupt p]
//
// The router exposes the same HTTP surface as a single edaserved, so
// existing clients point at it unchanged. On SIGTERM/SIGINT it flips
// /readyz to 503, finishes in-flight requests within -drain-timeout,
// and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/serve/cluster"
)

// replicaList collects repeated -replica flags.
type replicaList []string

func (r *replicaList) String() string     { return strings.Join(*r, ",") }
func (r *replicaList) Set(v string) error { *r = append(*r, v); return nil }

var (
	addr          = flag.String("addr", ":9090", "listen address")
	replication   = flag.Int("replication", 2, "replicas owning each model (clamped to fleet size)")
	vnodes        = flag.Int("vnodes", 64, "virtual ring points per replica")
	maxInflight   = flag.Int("max-inflight", 256, "concurrent routed predict requests before 429 backpressure")
	reqTimeout    = flag.Duration("request-timeout", 10*time.Second, "end-to-end deadline per routed request, all failovers included (negative disables)")
	attTimeout    = flag.Duration("attempt-timeout", 5*time.Second, "per-replica attempt deadline")
	probeInterval = flag.Duration("probe-interval", time.Second, "background readiness probe period")
	spreadMin     = flag.Int("spread-min", 8, "minimum batch size to fan out across owners")
	downAfter     = flag.Int("down-after", 1, "consecutive failures before a replica leaves the serving set")
	drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "deadline for in-flight requests during shutdown")
	version       = flag.Bool("version", false, "print the build revision and exit")

	// Chaos flags (see internal/fault): any nonzero rate activates a
	// deterministic fault plan over the cluster routing sites. The same
	// -chaos-seed replays the identical fault sequence.
	chaosSeed        = flag.Int64("chaos-seed", 1, "seed for the fault-injection plan")
	chaosErr         = flag.Float64("chaos-err", 0, "injected error rate in [0,1] at each cluster fault site")
	chaosLatencyRate = flag.Float64("chaos-latency-rate", 0, "injected latency rate in [0,1] at each cluster fault site")
	chaosLatency     = flag.Duration("chaos-latency", 5*time.Millisecond, "injected latency magnitude")
	chaosCorrupt     = flag.Float64("chaos-corrupt", 0, "injected payload-corruption rate in [0,1]")
)

// activateChaos installs the fault plan the chaos flags describe, if any
// rate is nonzero. Returns the active site names (nil when clean).
func activateChaos() []string {
	if *chaosErr <= 0 && *chaosLatencyRate <= 0 && *chaosCorrupt <= 0 {
		return nil
	}
	fault.Activate(fault.Uniform(*chaosSeed, fault.SiteConfig{
		ErrRate:     *chaosErr,
		LatencyRate: *chaosLatencyRate,
		Latency:     *chaosLatency,
		CorruptRate: *chaosCorrupt,
	}, fault.ClusterSites()...))
	return fault.ActiveSites()
}

func main() {
	var replicas replicaList
	flag.Var(&replicas, "replica", "replica base URL, e.g. http://127.0.0.1:8080; repeatable")
	flag.Parse()
	if *version {
		rev, modified := obs.BuildRevision()
		if modified {
			rev += "-dirty"
		}
		fmt.Printf("edarouter %s\n", rev)
		return
	}
	if len(replicas) == 0 {
		fatal(fmt.Errorf("no replicas: pass at least one -replica URL"))
	}
	if sites := activateChaos(); sites != nil {
		fmt.Printf("edarouter: CHAOS PLAN ACTIVE (seed %d) at sites: %s\n",
			*chaosSeed, strings.Join(sites, ", "))
	}

	rt := cluster.NewRouter(cluster.Config{
		Replication:    *replication,
		VNodes:         *vnodes,
		MaxInFlight:    *maxInflight,
		RequestTimeout: *reqTimeout,
		AttemptTimeout: *attTimeout,
		SpreadMin:      *spreadMin,
		DownAfter:      *downAfter,
		Seed:           *chaosSeed,
	}, replicas)
	defer rt.Close()

	// Admit whoever is already up, then keep probing in the background.
	bootCtx, bootCancel := context.WithTimeout(context.Background(), *attTimeout)
	healthy := rt.ProbeAll(bootCtx)
	bootCancel()
	fmt.Printf("edarouter: fronting %d replica(s), %d healthy at boot (replication %d)\n",
		len(replicas), healthy, *replication)
	rt.StartProbing(*probeInterval)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful drain: first signal flips readiness and stops accepting;
	// in-flight requests get -drain-timeout to finish.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("edarouter: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Println("edarouter: draining...")
	rt.StartDraining()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "edarouter: drain deadline exceeded:", err)
		httpSrv.Close() //nolint:errcheck — already exiting
	}
	rt.Close()
	fmt.Println("edarouter: drained, exiting")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edarouter:", err)
	os.Exit(1)
}
