// Command edaloop runs the online knowledge-discovery loop (see
// internal/stream): generate candidates, score their novelty against
// the live one-class model, simulate only the selected few, retrain
// incrementally on a sliding window (warm-started SMO over a rank-1
// Gram update), and hot-swap each refreshed model atomically into the
// embedded serving registry — and, optionally, push it to a remote
// edaserved. A Page–Hinkley detector on the decision stream triggers
// refreshes when the candidate distribution drifts.
//
// Usage:
//
//	edaloop [-seed 42] [-source isa|mfgtest] [-candidates 512]
//	        [-window 256] [-warmup 32] [-nu 0.1] [-shift-at N]
//	        [-min-refit 8] [-refresh-max 64] [-drift-lambda 0.5]
//	        [-addr :8090] [-artifact-dir DIR] [-push-url URL]
//	        [-model-name stream-oneclass] [-workers N] [-json]
//	        [-chaos-seed N] [-chaos-err p] [-chaos-latency-rate p]
//	        [-chaos-latency d]
//
// The whole trajectory is a pure function of -seed: same seed, same
// selected-test sequence, same swap points, same counters (at any
// -workers). -shift-at plants a distribution shift at that stream
// position so a drift-triggered refresh is guaranteed — the smoke
// test's lever. Chaos flags inject deterministic faults at the
// stream.ingest and stream.retrain sites; the same -chaos-seed replays
// the identical fault sequence.
//
// With -addr the refreshed model is served over HTTP while the loop
// runs (plus GET /loop/status for the live trajectory); with -push-url
// each refresh is also written under -artifact-dir and hot-loaded into
// the remote edaserved via POST /models/load. On SIGTERM/SIGINT the
// loop drains gracefully: it stops at the next candidate boundary,
// prints the trajectory summary, and exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/stream"
)

var (
	seed       = flag.Int64("seed", 42, "seed for the whole trajectory (generator, selection, swaps)")
	sourceName = flag.String("source", "isa", "candidate source: isa (novel test selection) or mfgtest (customer returns)")
	candidates = flag.Int("candidates", 512, "how many candidates to examine")
	window     = flag.Int("window", 256, "sliding training-window capacity")
	warmup     = flag.Int("warmup", 32, "selected samples before the first model is trained")
	nu         = flag.Float64("nu", 0.1, "one-class outlier fraction")
	shiftAt    = flag.Int("shift-at", 0, "plant a distribution shift at this stream position (0 disables)")
	minRefit   = flag.Int("min-refit", 8, "selected samples required between refreshes")
	refreshMax = flag.Int("refresh-max", 64, "force a refresh after this many selected samples (negative disables)")
	driftLam   = flag.Float64("drift-lambda", 0.5, "Page-Hinkley detection threshold")
	driftDelta = flag.Float64("drift-delta", 0.005, "Page-Hinkley magnitude tolerance")
	modelName  = flag.String("model-name", "stream-oneclass", "registry name refreshed models are published under")

	addr        = flag.String("addr", "", "serve the refreshed model over HTTP at this address while the loop runs")
	artifactDir = flag.String("artifact-dir", "", "write each refreshed model artifact into this directory")
	pushURL     = flag.String("push-url", "", "hot-load each refreshed artifact into the edaserved at this URL (requires -artifact-dir)")
	jsonOut     = flag.Bool("json", false, "print the final trajectory as JSON instead of the summary")
	workers     = flag.Int("workers", 0, "worker goroutines for the compute pool (0 = REPRO_WORKERS env or GOMAXPROCS)")
	drainWait   = flag.Duration("drain-timeout", 10*time.Second, "deadline for the embedded server's drain on shutdown")
	version     = flag.Bool("version", false, "print the build revision and exit")

	// Chaos flags (see internal/fault): any nonzero rate activates a
	// deterministic fault plan over the streaming-loop sites. The same
	// -chaos-seed replays the identical drop/abort sequence.
	chaosSeed        = flag.Int64("chaos-seed", 1, "seed for the fault-injection plan")
	chaosErr         = flag.Float64("chaos-err", 0, "injected error rate in [0,1] at each stream fault site")
	chaosLatencyRate = flag.Float64("chaos-latency-rate", 0, "injected latency rate in [0,1] at each stream fault site")
	chaosLatency     = flag.Duration("chaos-latency", 5*time.Millisecond, "injected latency magnitude")
)

func main() {
	flag.Parse()
	if *version {
		rev, modified := obs.BuildRevision()
		if modified {
			rev += "-dirty"
		}
		fmt.Printf("edaloop %s\n", rev)
		return
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	if *pushURL != "" && *artifactDir == "" {
		fatal(fmt.Errorf("-push-url requires -artifact-dir (the remote loads artifacts by path)"))
	}
	if *chaosErr > 0 || *chaosLatencyRate > 0 {
		fault.Activate(fault.Uniform(*chaosSeed, fault.SiteConfig{
			ErrRate:     *chaosErr,
			LatencyRate: *chaosLatencyRate,
			Latency:     *chaosLatency,
		}, fault.StreamSites()...))
		fmt.Printf("edaloop: CHAOS PLAN ACTIVE (seed %d) at sites: %s\n",
			*chaosSeed, strings.Join(fault.ActiveSites(), ", "))
	}

	src, err := stream.NewSource(*sourceName, *seed, *shiftAt)
	if err != nil {
		fatal(err)
	}
	cfg := stream.Config{
		Seed:       *seed,
		Source:     src,
		Candidates: *candidates,
		Warmup:     *warmup,
		Window:     *window,
		Nu:         *nu,
		MinRefit:   *minRefit,
		RefreshMax: *refreshMax,
		Drift:      stream.NewPageHinkley(*driftDelta, *driftLam, 0),
		ModelName:  *modelName,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// Embedded registry: the refreshed model serves over HTTP while the
	// loop runs, swap by swap, with zero dropped requests.
	var registry *serve.Server
	var httpSrv *http.Server
	if *addr != "" {
		registry = serve.New(serve.Config{DrainTimeout: *drainWait})
		cfg.Registry = registry
	}

	cfg.Publish = publisher()

	loop, err := stream.New(cfg)
	if err != nil {
		fatal(err)
	}

	if registry != nil {
		mux := http.NewServeMux()
		mux.Handle("/", registry.Handler())
		mux.HandleFunc("/loop/status", func(w http.ResponseWriter, _ *http.Request) {
			snap := loop.Snapshot()
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(&snap) //nolint:errcheck — best-effort status
		})
		httpSrv = &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			fmt.Printf("edaloop: serving %q on %s (status at /loop/status)\n", *modelName, *addr)
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "edaloop: serve:", err)
				os.Exit(1)
			}
		}()
	}

	fmt.Printf("edaloop: seed=%d source=%s candidates=%d window=%d shift-at=%d\n",
		*seed, *sourceName, *candidates, *window, *shiftAt)
	res, err := loop.Run(ctx)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(res.Summary())
	}

	// Drain: stop accepting, finish in-flight requests, then exit 0 —
	// whether the loop completed or a signal cut it short.
	if httpSrv != nil {
		registry.StartDraining()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "edaloop: drain deadline exceeded:", err)
			httpSrv.Close() //nolint:errcheck — already exiting
		}
		registry.Close()
	}
	if res.Drained {
		fmt.Println("edaloop: drained, exiting")
	} else {
		fmt.Println("edaloop: done, exiting")
	}
}

// publisher builds the per-refresh artifact hook: write the artifact
// under -artifact-dir (atomic temp-file + rename, versioned by swap)
// and hot-load it into the remote edaserved at -push-url. Returns nil
// when neither flag is set.
func publisher() func(*model.Artifact) error {
	if *artifactDir == "" {
		return nil
	}
	if err := os.MkdirAll(*artifactDir, 0o755); err != nil {
		fatal(err)
	}
	var push *client.Client
	if *pushURL != "" {
		push = client.New(client.Config{BaseURL: *pushURL, Seed: *seed})
	}
	swap := 0
	return func(a *model.Artifact) error {
		swap++
		data, err := a.Marshal()
		if err != nil {
			return err
		}
		// The latest artifact lives at a stable path so the remote can
		// be pointed at one file; the rename keeps readers from ever
		// seeing a half-written artifact.
		path := filepath.Join(*artifactDir, fmt.Sprintf("%s.model.json", *modelName))
		tmp := fmt.Sprintf("%s.tmp.%d", path, swap)
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			return err
		}
		if push != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			abs, err := filepath.Abs(path)
			if err != nil {
				return err
			}
			if _, err := push.TryLoad(ctx, abs, *modelName); err != nil {
				return fmt.Errorf("push swap %d to %s: %w", swap, *pushURL, err)
			}
		}
		fmt.Printf("edaloop: swap %d published (%d bytes)\n", swap, len(data))
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edaloop:", err)
	os.Exit(1)
}
