// Command edaserved serves predictions from versioned model artifacts
// (see internal/model) over HTTP with micro-batching, kernel-row
// caching, bounded in-flight concurrency, and graceful drain (see
// internal/serve).
//
// Usage:
//
//	edaserved [-addr :8080] [-model file]... [-model-dir dir]
//	          [-max-batch N] [-max-wait d] [-max-inflight N]
//	          [-cache-rows N] [-workers N] [-drain-timeout d]
//	          [-request-timeout d] [-chaos-seed N] [-chaos-err p]
//	          [-chaos-latency-rate p] [-chaos-latency d] [-chaos-corrupt p]
//
// Train artifacts with `edamine -save-model DIR models`, then:
//
//	edaserved -model-dir DIR
//	curl -s localhost:8080/readyz
//	curl -s -X POST localhost:8080/predict/zoo-ridge \
//	     -d '{"instances": [[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]]}'
//
// On SIGTERM/SIGINT the server flips /readyz to 503, finishes in-flight
// requests within -drain-timeout, drains the batch queues, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/serve"
)

// modelList collects repeated -model flags.
type modelList []string

func (m *modelList) String() string     { return strings.Join(*m, ",") }
func (m *modelList) Set(v string) error { *m = append(*m, v); return nil }

var (
	addr         = flag.String("addr", ":8080", "listen address")
	modelDir     = flag.String("model-dir", "", "load every *.model.json artifact in this directory at boot")
	maxBatch     = flag.Int("max-batch", 16, "micro-batch size cap per model (1 disables batching)")
	maxWait      = flag.Duration("max-wait", 2*time.Millisecond, "how long an incomplete batch waits for more requests")
	maxInflight  = flag.Int("max-inflight", 256, "concurrent predict requests before 429 backpressure")
	cacheRows    = flag.Int("cache-rows", 1024, "kernel-row LRU capacity per kernel model (0 disables)")
	workers      = flag.Int("workers", 0, "worker goroutines for the compute pool (0 = REPRO_WORKERS env or GOMAXPROCS)")
	drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "deadline for in-flight requests during shutdown")
	reqTimeout   = flag.Duration("request-timeout", 10*time.Second, "per-request deadline for predict (0 disables)")
	version      = flag.Bool("version", false, "print the build revision and exit")

	// Chaos flags (see internal/fault): any nonzero rate activates a
	// deterministic fault plan over the serving-path sites. The same
	// -chaos-seed replays the identical fault sequence.
	chaosSeed        = flag.Int64("chaos-seed", 1, "seed for the fault-injection plan")
	chaosErr         = flag.Float64("chaos-err", 0, "injected error rate in [0,1] at each serving-path fault site")
	chaosLatencyRate = flag.Float64("chaos-latency-rate", 0, "injected latency rate in [0,1] at each serving-path fault site")
	chaosLatency     = flag.Duration("chaos-latency", 5*time.Millisecond, "injected latency magnitude")
	chaosCorrupt     = flag.Float64("chaos-corrupt", 0, "injected payload-corruption rate in [0,1]")
)

// activateChaos installs the fault plan the chaos flags describe, if any
// rate is nonzero. Returns the active site names (nil when clean).
func activateChaos() []string {
	if *chaosErr <= 0 && *chaosLatencyRate <= 0 && *chaosCorrupt <= 0 {
		return nil
	}
	fault.Activate(fault.Uniform(*chaosSeed, fault.SiteConfig{
		ErrRate:     *chaosErr,
		LatencyRate: *chaosLatencyRate,
		Latency:     *chaosLatency,
		CorruptRate: *chaosCorrupt,
	}, fault.ServeSites()...))
	return fault.ActiveSites()
}

func main() {
	var models modelList
	flag.Var(&models, "model", "artifact file to load at boot; repeatable, optionally NAME=PATH")
	flag.Parse()
	if *version {
		rev, modified := obs.BuildRevision()
		if modified {
			rev += "-dirty"
		}
		fmt.Printf("edaserved %s\n", rev)
		return
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	if sites := activateChaos(); sites != nil {
		fmt.Printf("edaserved: CHAOS PLAN ACTIVE (seed %d) at sites: %s\n",
			*chaosSeed, strings.Join(sites, ", "))
	}

	srv := serve.New(serve.Config{
		MaxBatch:       *maxBatch,
		MaxWait:        *maxWait,
		MaxInFlight:    *maxInflight,
		CacheRows:      *cacheRows,
		RequestTimeout: *reqTimeout,
		DrainTimeout:   *drainTimeout,
	})
	defer srv.Close()

	if err := loadModels(srv, models, *modelDir); err != nil {
		fatal(err)
	}
	if names := srv.Models(); len(names) > 0 {
		fmt.Printf("edaserved: serving %d model(s): %s\n", len(names), strings.Join(names, ", "))
	} else {
		fmt.Println("edaserved: no models loaded; /readyz stays 503 until POST /models/load")
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful drain: first signal flips readiness and stops accepting;
	// in-flight requests get -drain-timeout to finish.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("edaserved: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Println("edaserved: draining...")
	srv.StartDraining()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "edaserved: drain deadline exceeded:", err)
		httpSrv.Close() //nolint:errcheck — already exiting
	}
	srv.Close()
	fmt.Println("edaserved: drained, exiting")
}

// loadModels registers every -model flag and every artifact in -model-dir.
func loadModels(srv *serve.Server, models modelList, dir string) error {
	for _, spec := range models {
		name, path := "", spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			name, path = spec[:i], spec[i+1:]
		}
		a, err := srv.LoadFile(path, name)
		if err != nil {
			return err
		}
		if name == "" {
			name = a.Envelope.Name
		}
		fmt.Printf("edaserved: loaded %s (%s) from %s\n", name, a.Envelope.Kind, path)
	}
	if dir == "" {
		return nil
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.model.json"))
	if err != nil {
		return err
	}
	if len(paths) == 0 && len(models) == 0 {
		return errors.New("edaserved: no artifacts found in " + dir)
	}
	sort.Strings(paths)
	for _, path := range paths {
		a, err := srv.LoadFile(path, "")
		if err != nil {
			return err
		}
		fmt.Printf("edaserved: loaded %s (%s) from %s\n", a.Envelope.Name, a.Envelope.Kind, path)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edaserved:", err)
	os.Exit(1)
}
