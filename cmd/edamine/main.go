// Command edamine regenerates every table and figure of the paper
// "Data Mining In EDA — Basic Principles, Promises, and Constraints"
// (DAC 2014) on the synthetic substrates in this repository.
//
// Usage:
//
//	edamine [-seed N] [-quick] [-manifest out.json] [-cpuprofile f]
//	        [-memprofile f] [-trace f] [-save-model dir] [-load-model dir]
//	        [-approx rff:D|nystrom:m] <experiment>
//
// Experiments: fig3, fig5, fig7, table1, fig9, fig10, fig11, fig12, sec2,
// mapred, models, or "all".
//
// The "datasets" subcommand exports each substrate as a versioned,
// seeded, checksummed benchmark dataset plus a markdown card (see
// internal/datasets):
//
//	edamine [-seed N] [-quick] datasets [-out dir] [-only name]
//
// The "models" experiment trains one model of every persistable kind
// (see internal/model): with -save-model DIR it writes versioned
// artifacts that cmd/edaserved can serve, with -load-model DIR it reads
// artifacts back and verifies bit-identical predictions. With -approx,
// each kernel model (svc, oneclass, gp) is additionally compiled to an
// approx-linear artifact (internal/kernel/approx) and the report prints
// the artifact size, payload kind, and measured train-set error versus
// the exact model.
//
// With -manifest, a machine-checkable run manifest (seed, workers, build
// revision, per-stage wall times, and the full metric snapshot — see
// internal/obs) is written at exit; set REPRO_OBS=0 to disable metric
// collection entirely. The profiling flags stream runtime/pprof and
// runtime/trace output for offline analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/apps/costred"
	"repro/internal/apps/dstc"
	"repro/internal/apps/mapred"
	"repro/internal/apps/modelzoo"
	"repro/internal/apps/patterns"
	"repro/internal/apps/returns"
	"repro/internal/apps/survey"
	"repro/internal/apps/template"
	"repro/internal/apps/testsel"
	"repro/internal/apps/varpred"
	"repro/internal/datasets"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/parallel"
)

var (
	seed       = flag.Int64("seed", 1, "random seed for the experiment")
	quick      = flag.Bool("quick", false, "reduced-scale run for smoke testing")
	workers    = flag.Int("workers", 0, "worker goroutines for the compute pool (0 = REPRO_WORKERS env or GOMAXPROCS); results are identical at any setting")
	manifest   = flag.String("manifest", "", "write a JSON run manifest (metrics, stage timings, build info) to this file")
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceOut   = flag.String("trace", "", "write a runtime/trace execution trace to this file")
	saveModel  = flag.String("save-model", "", "write versioned model artifacts from the 'models' experiment to this directory")
	loadModel  = flag.String("load-model", "", "load model artifacts for the 'models' experiment from this directory and verify them")
	approxSpec = flag.String("approx", "", "also compile kernel models to approx-linear artifacts: rff:D or nystrom:m ('models' experiment); prints the measured train-set error vs exact")
	version    = flag.Bool("version", false, "print the build revision and exit")

	// Chaos flags (see internal/fault): any nonzero rate activates a
	// deterministic fault plan — for edamine that exercises the
	// model.decode site during -load-model verification. The manifest
	// records the active sites so a chaos run is identifiable and
	// reproducible from its seed.
	chaosSeed        = flag.Int64("chaos-seed", 1, "seed for the fault-injection plan")
	chaosErr         = flag.Float64("chaos-err", 0, "injected error rate in [0,1] at each serving-path fault site")
	chaosLatencyRate = flag.Float64("chaos-latency-rate", 0, "injected latency rate in [0,1] at each serving-path fault site")
	chaosLatency     = flag.Duration("chaos-latency", 5*time.Millisecond, "injected latency magnitude")
	chaosCorrupt     = flag.Float64("chaos-corrupt", 0, "injected payload-corruption rate in [0,1]")
)

type experiment struct {
	id, title string
	run       func() (fmt.Stringer, error)
}

func experiments() []experiment {
	full := !*quick
	scale := func(q, f int) int {
		if full {
			return f
		}
		return q
	}
	return []experiment{
		{"fig3", "Figure 3 — kernel trick on ring-and-core", func() (fmt.Stringer, error) {
			return survey.Fig3(*seed, scale(60, 150))
		}},
		{"fig5", "Figure 5 — overfitting vs model complexity", func() (fmt.Stringer, error) {
			return survey.Fig5(*seed, scale(25, 40))
		}},
		{"fig7", "Figure 7 — novel test selection simulation saving", func() (fmt.Stringer, error) {
			return testsel.Run(testsel.Config{Seed: *seed, MaxTests: scale(800, 6000)})
		}},
		{"table1", "Table 1 — coverage improvement after rule learning", func() (fmt.Stringer, error) {
			return template.Run(template.Config{Seed: *seed})
		}},
		{"fig9", "Figure 9 — fast prediction of layout variability", func() (fmt.Stringer, error) {
			return varpred.Run(varpred.Config{Seed: *seed, Train: scale(150, 400), Test: scale(150, 400), KernelHI: true})
		}},
		{"fig10", "Figure 10 — diagnosing unexpected timing paths", func() (fmt.Stringer, error) {
			return dstc.Run(dstc.Config{Seed: *seed, Paths: scale(800, 2000)})
		}},
		{"fig11", "Figure 11 — modeling customer returns", func() (fmt.Stringer, error) {
			return returns.Run(returns.Config{Seed: *seed, LotSize: scale(6000, 15000)})
		}},
		{"fig12", "Figure 12 — difficult case: test elimination escapes", func() (fmt.Stringer, error) {
			return costred.Run(costred.Config{Seed: *seed,
				Phase1Size: scale(200000, 1000000), Phase2Size: scale(100000, 500000)})
		}},
		{"mapred", "Map regression — per-tile variability/hotspot maps from layout features", func() (fmt.Stringer, error) {
			return mapred.Run(mapred.Config{Seed: *seed, Windows: scale(24, 60)})
		}},
		{"sec2", "Section 2.4 — five regressor families (Fmax-style task)", func() (fmt.Stringer, error) {
			return survey.Sec2Regressors(*seed, scale(150, 400))
		}},
		{"imbalance", "Section 2.4 — extreme imbalance: rebalancing vs feature selection", func() (fmt.Stringer, error) {
			return survey.ImbalanceStudy(*seed, scale(6000, 15000))
		}},
		{"assoc", "Section 2.4 — association rules on failing-chip patterns", func() (fmt.Stringer, error) {
			return patterns.Run(patterns.Config{Seed: *seed, Chips: scale(60000, 200000)})
		}},
		{"models", "Model persistence — train, round-trip, and verify every servable model kind", func() (fmt.Stringer, error) {
			return modelzoo.Run(modelzoo.Config{
				Seed: *seed, SaveDir: *saveModel, LoadDir: *loadModel, Approx: *approxSpec,
				ManifestRef: *manifest, Train: scale(80, 160), Probes: scale(32, 64),
			})
		}},
	}
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: edamine [-seed N] [-quick] [-manifest out.json] [-cpuprofile f] [-memprofile f] [-trace f] <experiment|all>\n"+
			"       edamine [-seed N] [-quick] datasets [-out dir] [-only name]\nexperiments:\n")
		for _, e := range experiments() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.id, e.title)
		}
		fmt.Fprintf(os.Stderr, "  %-8s export versioned benchmark datasets (%s)\n",
			"datasets", strings.Join(datasets.Names(), ", "))
	}
	flag.Parse()
	if *version {
		rev, modified := obs.BuildRevision()
		if modified {
			rev += "-dirty"
		}
		fmt.Printf("edamine %s\n", rev)
		return
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	if flag.NArg() < 1 || (flag.NArg() > 1 && flag.Arg(0) != "datasets") {
		flag.Usage()
		os.Exit(2)
	}

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile, *traceOut)
	if err != nil {
		fatal(err)
	}
	if *chaosErr > 0 || *chaosLatencyRate > 0 || *chaosCorrupt > 0 {
		fault.Activate(fault.Uniform(*chaosSeed, fault.SiteConfig{
			ErrRate:     *chaosErr,
			LatencyRate: *chaosLatencyRate,
			Latency:     *chaosLatency,
			CorruptRate: *chaosCorrupt,
		}, fault.ServeSites()...))
		fmt.Printf("edamine: CHAOS PLAN ACTIVE (seed %d) at sites: %s\n",
			*chaosSeed, strings.Join(fault.ActiveSites(), ", "))
	}
	man := obs.NewManifest("edamine", *seed, parallel.Workers())
	man.FaultSites = fault.ActiveSites()

	want := flag.Arg(0)
	if want == "datasets" {
		start := time.Now()
		if err := runDatasets(flag.Args()[1:]); err != nil {
			stopProfiles() //nolint:errcheck — already exiting on a run error
			fatal(err)
		}
		man.AddStage("datasets", time.Since(start))
		if err := stopProfiles(); err != nil {
			fatal(err)
		}
		man.Finish()
		if *manifest != "" {
			if err := man.WriteFile(*manifest); err != nil {
				fatal(err)
			}
		}
		return
	}
	ran := false
	for _, e := range experiments() {
		if want != "all" && want != e.id {
			continue
		}
		ran = true
		fmt.Printf("=== %s ===\n", e.title)
		start := time.Now()
		res, err := e.run()
		if err != nil {
			stopProfiles() //nolint:errcheck — already exiting on a run error
			fatal(fmt.Errorf("%s: %v", e.id, err))
		}
		elapsed := time.Since(start)
		man.AddStage(e.id, elapsed)
		fmt.Println(res)
		fmt.Printf("(%s in %v)\n\n", e.id, elapsed.Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "edamine: unknown experiment %q\n", want)
		flag.Usage()
		os.Exit(2)
	}

	if err := stopProfiles(); err != nil {
		fatal(err)
	}
	man.Finish()
	if *manifest != "" {
		if err := man.WriteFile(*manifest); err != nil {
			fatal(err)
		}
	}
}

// runDatasets implements the "datasets" subcommand: build each (or one)
// benchmark dataset at the global seed/scale and write the artifact plus
// its card under -out. The bytes are a pure function of the seed, so CI
// asserts the printed checksums against committed expectations.
func runDatasets(args []string) error {
	fs := flag.NewFlagSet("datasets", flag.ExitOnError)
	out := fs.String("out", "datasets-out", "directory for <name>.json artifacts and <name>.card.md cards")
	only := fs.String("only", "", "export a single dataset by name (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := datasets.Names()
	if *only != "" {
		names = []string{*only}
	}
	opt := datasets.Options{Seed: *seed, Quick: *quick}
	for _, name := range names {
		d, err := datasets.Build(name, opt)
		if err != nil {
			return err
		}
		env, err := d.Save(*out)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d rows x %d cols, sha256 %s -> %s/%s.json (+card)\n",
			name, env.Rows, env.Cols, env.Checksum, *out, name)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edamine:", err)
	os.Exit(1)
}
