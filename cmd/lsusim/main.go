// Command lsusim assembles and simulates a functional test on the
// load-store-unit substrate, printing the coverage it reaches — the
// standalone face of the verification environment behind the Figure 7 and
// Table 1 experiments.
//
// Usage:
//
//	lsusim [-tokens] [-random seed] [file.s]
//
// With -random, a constrained-random test is generated (the file is
// ignored); otherwise the program is read from the file or stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/isa"
)

var (
	tokens   = flag.Bool("tokens", false, "also print the kernel token stream")
	randSeed = flag.Int64("random", -1, "generate a random test with this seed instead of reading input")
)

func main() {
	flag.Parse()

	var prog isa.Program
	var err error
	switch {
	case *randSeed >= 0:
		gen := isa.NewGenerator(isa.WideTemplate(), *randSeed)
		prog = gen.Next()
		fmt.Print(prog)
	case flag.NArg() == 1:
		f, ferr := os.Open(flag.Arg(0))
		if ferr != nil {
			fatal(ferr)
		}
		prog, err = isa.Assemble(f)
		f.Close()
	default:
		prog, err = isa.Assemble(io.Reader(os.Stdin))
	}
	if err != nil {
		fatal(err)
	}
	if len(prog) == 0 {
		fatal(fmt.Errorf("empty program"))
	}

	if *tokens {
		fmt.Println("tokens:", prog.Tokens())
	}

	m := isa.NewMachine()
	cov := m.Run(prog)
	fmt.Printf("simulated %d instructions in %d cycles\n", len(prog), m.Cycles)
	fmt.Printf("coverage: %d of %d bins\n", cov.Count(), isa.NumBins)
	for e := isa.Event(0); e < isa.NumEvents; e++ {
		if h := cov.EventHits(e); h > 0 {
			fmt.Printf("  %-18v %d hits\n", e, h)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsusim:", err)
	os.Exit(1)
}
