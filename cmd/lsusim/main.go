// Command lsusim assembles and simulates a functional test on the
// load-store-unit substrate, printing the coverage it reaches — the
// standalone face of the verification environment behind the Figure 7 and
// Table 1 experiments.
//
// Usage:
//
//	lsusim [-tokens] [-random seed] [-batch N] [-workers W] [file.s]
//
// With -random, a constrained-random test is generated (the file is
// ignored); otherwise the program is read from the file or stdin. With
// -batch N (requires -random), N tests are generated and simulated
// concurrently on the worker pool, printing the aggregate coverage —
// the candidate-batch step of the Figure 7 flow as a standalone tool.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/isa"
	"repro/internal/parallel"
)

var (
	tokens   = flag.Bool("tokens", false, "also print the kernel token stream")
	randSeed = flag.Int64("random", -1, "generate a random test with this seed instead of reading input")
	batch    = flag.Int("batch", 0, "with -random: generate and simulate N tests concurrently")
	workers  = flag.Int("workers", 0, "worker goroutines for batch simulation (0 = REPRO_WORKERS env or GOMAXPROCS)")
)

func main() {
	flag.Parse()
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	if *batch > 0 {
		if *randSeed < 0 {
			fatal(fmt.Errorf("-batch requires -random"))
		}
		runBatch(*randSeed, *batch)
		return
	}

	var prog isa.Program
	var err error
	switch {
	case *randSeed >= 0:
		gen := isa.NewGenerator(isa.WideTemplate(), *randSeed)
		prog = gen.Next()
		fmt.Print(prog)
	case flag.NArg() == 1:
		f, ferr := os.Open(flag.Arg(0))
		if ferr != nil {
			fatal(ferr)
		}
		prog, err = isa.Assemble(f)
		f.Close()
	default:
		prog, err = isa.Assemble(io.Reader(os.Stdin))
	}
	if err != nil {
		fatal(err)
	}
	if len(prog) == 0 {
		fatal(fmt.Errorf("empty program"))
	}

	if *tokens {
		fmt.Println("tokens:", prog.Tokens())
	}

	m := isa.NewMachine()
	cov := m.Run(prog)
	fmt.Printf("simulated %d instructions in %d cycles\n", len(prog), m.Cycles)
	fmt.Printf("coverage: %d of %d bins\n", cov.Count(), isa.NumBins)
	for e := isa.Event(0); e < isa.NumEvents; e++ {
		if h := cov.EventHits(e); h > 0 {
			fmt.Printf("  %-18v %d hits\n", e, h)
		}
	}
}

// runBatch generates n constrained-random tests and simulates them on the
// worker pool, reporting aggregate coverage and simulated cycles.
func runBatch(seed int64, n int) {
	gen := isa.NewGenerator(isa.WideTemplate(), seed)
	progs := gen.Batch(n)
	covs, cycles := isa.SimulateBatch(progs)
	var total isa.Coverage
	var totalCycles int64
	for i := range covs {
		total.Merge(covs[i])
		totalCycles += cycles[i]
	}
	fmt.Printf("simulated %d tests in %d cycles (%d workers)\n", n, totalCycles, parallel.Workers())
	fmt.Printf("coverage: %d of %d bins\n", total.Count(), isa.NumBins)
	for e := isa.Event(0); e < isa.NumEvents; e++ {
		if h := total.EventHits(e); h > 0 {
			fmt.Printf("  %-18v %d hits\n", e, h)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsusim:", err)
	os.Exit(1)
}
