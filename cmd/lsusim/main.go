// Command lsusim assembles and simulates a functional test on the
// load-store-unit substrate, printing the coverage it reaches — the
// standalone face of the verification environment behind the Figure 7 and
// Table 1 experiments.
//
// Usage:
//
//	lsusim [-tokens] [-random seed] [-batch N] [-workers W]
//	       [-manifest out.json] [-cpuprofile f] [-memprofile f] [-trace f]
//	       [file.s]
//
// With -random, a constrained-random test is generated (the file is
// ignored); otherwise the program is read from the file or stdin. With
// -batch N (requires -random), N tests are generated and simulated
// concurrently on the worker pool, printing the aggregate coverage —
// the candidate-batch step of the Figure 7 flow as a standalone tool.
//
// With -manifest, a JSON run manifest (simulated cycles and instructions,
// pool metrics, build info — see internal/obs) is written at exit;
// REPRO_OBS=0 disables metric collection. The profiling flags stream
// runtime/pprof and runtime/trace output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/parallel"
)

var (
	tokens     = flag.Bool("tokens", false, "also print the kernel token stream")
	randSeed   = flag.Int64("random", -1, "generate a random test with this seed instead of reading input")
	batch      = flag.Int("batch", 0, "with -random: generate and simulate N tests concurrently")
	workers    = flag.Int("workers", 0, "worker goroutines for batch simulation (0 = REPRO_WORKERS env or GOMAXPROCS)")
	manifest   = flag.String("manifest", "", "write a JSON run manifest (metrics, stage timings, build info) to this file")
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceOut   = flag.String("trace", "", "write a runtime/trace execution trace to this file")
)

func main() {
	flag.Parse()
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile, *traceOut)
	if err != nil {
		fatal(err)
	}
	man := obs.NewManifest("lsusim", *randSeed, parallel.Workers())
	finish := func(stage string, d time.Duration) {
		man.AddStage(stage, d)
		if err := stopProfiles(); err != nil {
			fatal(err)
		}
		man.Finish()
		if *manifest != "" {
			if err := man.WriteFile(*manifest); err != nil {
				fatal(err)
			}
		}
	}
	if *batch > 0 {
		if *randSeed < 0 {
			fatal(fmt.Errorf("-batch requires -random"))
		}
		start := time.Now()
		runBatch(*randSeed, *batch)
		finish("batch", time.Since(start))
		return
	}

	var prog isa.Program
	switch {
	case *randSeed >= 0:
		gen := isa.NewGenerator(isa.WideTemplate(), *randSeed)
		prog = gen.Next()
		fmt.Print(prog)
	case flag.NArg() == 1:
		f, ferr := os.Open(flag.Arg(0))
		if ferr != nil {
			fatal(ferr)
		}
		prog, err = isa.Assemble(f)
		f.Close()
	default:
		prog, err = isa.Assemble(io.Reader(os.Stdin))
	}
	if err != nil {
		fatal(err)
	}
	if len(prog) == 0 {
		fatal(fmt.Errorf("empty program"))
	}

	if *tokens {
		fmt.Println("tokens:", prog.Tokens())
	}

	m := isa.NewMachine()
	start := time.Now()
	cov := m.Run(prog)
	fmt.Printf("simulated %d instructions in %d cycles\n", len(prog), m.Cycles)
	fmt.Printf("coverage: %d of %d bins\n", cov.Count(), isa.NumBins)
	for e := isa.Event(0); e < isa.NumEvents; e++ {
		if h := cov.EventHits(e); h > 0 {
			fmt.Printf("  %-18v %d hits\n", e, h)
		}
	}
	finish("simulate", time.Since(start))
}

// runBatch generates n constrained-random tests and simulates them on the
// worker pool, reporting aggregate coverage and simulated cycles.
func runBatch(seed int64, n int) {
	gen := isa.NewGenerator(isa.WideTemplate(), seed)
	progs := gen.Batch(n)
	covs, cycles := isa.SimulateBatch(progs)
	var total isa.Coverage
	var totalCycles int64
	for i := range covs {
		total.Merge(covs[i])
		totalCycles += cycles[i]
	}
	fmt.Printf("simulated %d tests in %d cycles (%d workers)\n", n, totalCycles, parallel.Workers())
	fmt.Printf("coverage: %d of %d bins\n", total.Count(), isa.NumBins)
	for e := isa.Event(0); e < isa.NumEvents; e++ {
		if h := total.EventHits(e); h > 0 {
			fmt.Printf("  %-18v %d hits\n", e, h)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsusim:", err)
	os.Exit(1)
}
