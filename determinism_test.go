package repro_test

// Acceptance tests for the parallel compute layer: experiment outputs must
// not depend on the worker count. Every parallelized routine hands each
// output element to exactly one worker and preserves the serial
// accumulation order, so Fig7/Fig9 at a fixed seed must render
// byte-identical reports at 1, 2, and 8 workers.

import (
	"reflect"
	"testing"

	"repro"
	"repro/internal/apps/testsel"
	"repro/internal/apps/varpred"
	"repro/internal/obs"
	"repro/internal/parallel"
)

func TestFig7IdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) (*testsel.Result, string) {
		old := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(old)
		res, err := repro.Fig7(testsel.Config{Seed: 7, MaxTests: 400})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, res.String()
	}
	want, wantStr := run(1)
	for _, w := range []int{2, 8} {
		got, gotStr := run(w)
		if gotStr != wantStr {
			t.Fatalf("workers=%d: report differs from serial:\n%s\nvs\n%s", w, gotStr, wantStr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: result struct differs from serial: %+v vs %+v", w, got, want)
		}
	}
}

// TestObsToggleLeavesReportsIdentical is the observability-layer analog
// of the worker-count tests: metrics observe the computation and must
// never feed back into it, so Fig7/Fig9 reports with collection on
// (REPRO_OBS=1 equivalent) and off (REPRO_OBS=0 equivalent) must be
// byte-identical.
func TestObsToggleLeavesReportsIdentical(t *testing.T) {
	run := func(enabled bool) (string, *varpred.Result) {
		defer obs.SetEnabled(obs.SetEnabled(enabled))
		r7, err := repro.Fig7(testsel.Config{Seed: 7, MaxTests: 400})
		if err != nil {
			t.Fatalf("obs=%v: fig7: %v", enabled, err)
		}
		r9, err := repro.Fig9(varpred.Config{Seed: 5, Train: 120, Test: 120, KernelHI: true})
		if err != nil {
			t.Fatalf("obs=%v: fig9: %v", enabled, err)
		}
		// Wall-clock cost accounting is legitimately nondeterministic
		// run to run; everything learned must match bit for bit.
		r9.SimPerWindow, r9.ModelPerWindow, r9.Speedup = 0, 0, 0
		return r7.String(), r9
	}
	off7, off9 := run(false)
	on7, on9 := run(true)
	if on7 != off7 {
		t.Fatalf("fig7 report differs with metrics enabled:\n%s\nvs\n%s", on7, off7)
	}
	if !reflect.DeepEqual(on9, off9) {
		t.Fatalf("fig9 result differs with metrics enabled:\n%+v\nvs\n%+v", on9, off9)
	}
}

func TestFig9IdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *varpred.Result {
		old := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(old)
		res, err := repro.Fig9(varpred.Config{Seed: 5, Train: 120, Test: 120, KernelHI: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Wall-clock cost accounting is the one legitimately
		// nondeterministic part of the report; everything learned must
		// match bit for bit.
		res.SimPerWindow, res.ModelPerWindow, res.Speedup = 0, 0, 0
		return res
	}
	want := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: result differs from serial:\n%+v\nvs\n%+v", w, got, want)
		}
	}
}
