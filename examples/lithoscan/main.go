// Lithoscan: layout-variability prediction (paper Figures 8-9).
//
// The golden reference is a first-principles aerial-image model; the
// learned model is an SVM with a Histogram Intersection kernel over
// density histograms. The example prints the physics first (why tight
// pitch is risky), then the learned screen's quality and speed.
//
// Run with: go run ./examples/lithoscan
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/apps/varpred"
	"repro/internal/litho"
)

func main() {
	rng := rand.New(rand.NewSource(5))

	fmt.Println("-- the golden model: aerial image physics ------------------")
	tight := litho.Generate(rng, litho.GenConfig{N: 64, MinWidth: 2, MaxWidth: 2, MinSpace: 2, MaxSpace: 3})
	relaxed := litho.Generate(rng, litho.GenConfig{N: 64, MinWidth: 8, MaxWidth: 10, MinSpace: 10, MaxSpace: 12})
	for _, c := range []struct {
		name string
		w    *litho.Window
	}{{"tight-pitch", tight}, {"relaxed", relaxed}} {
		v, err := litho.Variability(c.w, 2.5, 0.08)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s density=%.2f variability score=%.2f weak-edge fraction=%.2f\n",
			c.name, c.w.Density(), v.Score, v.WeakEdgeFrac)
	}

	fmt.Println("\n-- the learned screen (Figure 9) ---------------------------")
	res, err := varpred.Run(varpred.Config{Seed: 5, Train: 300, Test: 300, KernelHI: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	fmt.Println("\n-- knowledge-in-the-kernel ablation ------------------------")
	rbf, err := varpred.Run(varpred.Config{Seed: 5, Train: 300, Test: 300, KernelHI: false})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rbf)
	fmt.Println("\nthe HI kernel encodes that layouts are histograms of local")
	fmt.Println("density — the implementation effort the paper says dominates")
	fmt.Println("these applications (Section 5).")
}
