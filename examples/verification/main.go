// Verification: the two data-mining hooks of the paper's Figure 6 in one
// constrained-random processor-verification flow.
//
//  1. Novel test selection (Figure 7): a one-class SVM over a program
//     spectrum kernel drops redundant randomizer output before simulation.
//  2. Simulation knowledge extraction (Table 1): rules learned from
//     simulated tests refine the test template.
//
// Run with: go run ./examples/verification
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/template"
	"repro/internal/apps/testsel"
	"repro/internal/isa"
)

func main() {
	fmt.Println("-- the unit under test ------------------------------------")
	fmt.Printf("load-store unit with %d cross-coverage bins over events:\n", isa.NumBins)
	for e := isa.Event(0); e < isa.NumEvents; e++ {
		fmt.Printf("  %v\n", e)
	}

	fmt.Println("\n-- a test is an assembly program ---------------------------")
	gen := isa.NewGenerator(isa.WideTemplate(), 7)
	prog := gen.Next()
	fmt.Print(prog)
	fmt.Println("kernel token stream:", prog.Tokens())

	fmt.Println("\n-- hook 1: novel test selection (Figure 7) -----------------")
	sel, err := testsel.Run(testsel.Config{Seed: 7, MaxTests: 1200})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sel)

	fmt.Println("\n-- hook 2: template refinement by rule learning (Table 1) --")
	tbl, err := template.Run(template.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl)
	fmt.Println("rules fed back to the engineer after the 1st learning stage:")
	for _, r := range tbl.Stages[1].Rules {
		fmt.Println("  ", r)
	}
}
