// Quickstart: the library's learner families on one synthetic task.
//
// This walks the Section 2 survey in code: four of the basic learning
// ideas (nearest neighbor, model estimation, density estimation, Bayes
// rule) plus kernels, all against the same dataset, evaluated with the
// shared validation tooling.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/bayes"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/knn"
	"repro/internal/svm"
	"repro/internal/tree"
	"repro/internal/validate"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A nonlinear two-class problem: XOR blobs.
	data := dataset.XOR(rng, 120, 0.3)
	train, test := data.StratifiedSplit(rng, 0.7)
	fmt.Printf("dataset: %d train / %d test samples, %d features\n\n",
		train.Len(), test.Len(), train.Dim())

	report := func(name string, pred []float64) {
		cm := validate.Confusion(pred, test.Y, 1)
		fmt.Printf("%-22s accuracy=%.3f  %s\n",
			name, validate.Accuracy(pred, test.Y), cm)
	}

	// Idea 1 (nearest neighbor): the label of a point follows the
	// majority of the points surrounding it.
	knnModel, err := knn.Fit(train, 5, nil)
	if err != nil {
		log.Fatal(err)
	}
	report("5-NN", knnModel.ClassifyAll(test))

	// Idea 2 (model estimation): a decision tree as the assumed model.
	cart, err := tree.Fit(train, tree.Config{MaxDepth: 6})
	if err != nil {
		log.Fatal(err)
	}
	report("CART tree", cart.PredictAll(test))

	forest, err := tree.FitForest(rng, train, tree.ForestConfig{NTrees: 40})
	if err != nil {
		log.Fatal(err)
	}
	report("random forest", forest.PredictAll(test))

	// Ideas 3+4 (density estimation / Bayes rule): quadratic discriminant
	// analysis implements the paper's Equation 1 decision function.
	qda, err := bayes.FitDiscriminant(train, true)
	if err != nil {
		log.Fatal(err)
	}
	report("QDA (paper Eq. 1)", qda.PredictAll(test))

	nb, err := bayes.FitNaiveBayes(train)
	if err != nil {
		log.Fatal(err)
	}
	report("naive Bayes", nb.PredictAll(test))

	// Kernel methods (Section 2.2): an RBF-kernel SVM handles XOR, where
	// any linear model fails.
	rbf, err := svm.FitSVC(train, kernel.RBF{Gamma: 1}, svm.SVCConfig{C: 5})
	if err != nil {
		log.Fatal(err)
	}
	report("SVC (RBF kernel)", rbf.PredictAll(test))

	linear, err := svm.FitSVC(train, kernel.Linear{}, svm.SVCConfig{C: 5})
	if err != nil {
		log.Fatal(err)
	}
	report("SVC (linear kernel)", linear.PredictAll(test))

	fmt.Println("\nnote how the linear SVC fails on XOR while the kernelized one")
	fmt.Println("succeeds — Figure 3's lesson, on a different dataset.")
}
