// Timingdebug: design-silicon timing correlation (paper Figure 10).
//
// A silicon bring-up engineer sees paths in one block running slower than
// the signoff timer predicted. The walkthrough shows the three mining
// steps: quantify the mismatch, cluster it, and learn an interpretable
// rule that points at the physical mechanism.
//
// Run with: go run ./examples/timingdebug
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/apps/dstc"
	"repro/internal/timing"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	fmt.Println("-- one path, timer vs silicon ------------------------------")
	p := timing.GeneratePath(rng, 0, timing.GenConfig{Block: "blk_core", HighLayerProb: 0.8})
	cfg := timing.SiliconConfig{
		Via45Extra: 2.5, Via56Extra: 2.0,
		AffectedBlock: "blk_core", GlobalSpeedup: 25, Noise: 4,
	}
	fmt.Printf("stages=%d  via45=%d  via56=%d\n", len(p.Stages), p.Vias[3], p.Vias[4])
	fmt.Printf("timer predicts %.1f ps; silicon measures %.1f ps\n",
		timing.TimerDelay(p), timing.SiliconDelay(rng, p, cfg))

	fmt.Println("\n-- the full diagnosis (Figure 10) --------------------------")
	res, err := dstc.Run(dstc.Config{Seed: 11, Paths: 2000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	fmt.Println("\nthe rule names the exact structural features the injected")
	fmt.Println("metal-5 via defect acts through — the interpretable, actionable")
	fmt.Println("knowledge the paper's Section 5 calls the point of the exercise.")
}
