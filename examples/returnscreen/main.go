// Returnscreen: customer-return screening (paper Figure 11) and the
// test-elimination counter-example (Figure 12) back to back — the promise
// and the constraint of the same test-data-mining toolbox.
//
// Run with: go run ./examples/returnscreen
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/costred"
	"repro/internal/apps/returns"
)

func main() {
	fmt.Println("-- the promise: screening customer returns (Figure 11) -----")
	ret, err := returns.Run(returns.Config{Seed: 9, LotSize: 12000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ret)
	fmt.Println("a single analyzed return defines a 3-D test space in which")
	fmt.Println("future returns — even on a sister product — stand out.")

	fmt.Println("\n-- the constraint: dropping tests (Figure 12) ---------------")
	cr, err := costred.Run(costred.Config{Seed: 9, Phase1Size: 400000, Phase2Size: 200000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cr)
	fmt.Println("\nthe phase-1 evidence was as good as evidence gets, and the")
	fmt.Println("decision was still wrong: a formulation that demands a")
	fmt.Println("guaranteed escape bound is not a data mining problem")
	fmt.Println("(paper Sections 4-5).")
}
