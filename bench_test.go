package repro_test

// One benchmark per paper table/figure, plus the ablation benches called
// out in DESIGN.md Section 5. Each benchmark runs the corresponding
// experiment end-to-end at a reduced-but-representative scale, so
// `go test -bench=. -benchmem` regenerates every artifact and reports its
// cost. The printed shape checks live in the package tests; here the
// point is a stable, runnable harness per artifact.
//
// Under -short (the CI benchmark-regression job, scripts/bench.sh) every
// benchmark drops to a small fixed size: CI tracks trends and catches
// builds/panics, so the sizes only need to exercise the real code paths,
// not saturate them.

import (
	"testing"

	"repro"
	"repro/internal/apps/costred"
	"repro/internal/apps/dstc"
	"repro/internal/apps/returns"
	"repro/internal/apps/template"
	"repro/internal/apps/testsel"
	"repro/internal/apps/varpred"
	"repro/internal/isa"
)

// benchScale picks the benchmark problem size: small under -short.
func benchScale(short, full int) int {
	if testing.Short() {
		return short
	}
	return full
}

func BenchmarkFig3KernelTrick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Fig3(int64(i), benchScale(40, 100)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Overfitting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Fig5(int64(i), benchScale(20, 30)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7TestSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Fig7(testsel.Config{Seed: int64(i), MaxTests: benchScale(200, 600)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1TemplateLearning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Table1(template.Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Varpred(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := varpred.Config{Seed: int64(i), Train: benchScale(60, 150), Test: benchScale(60, 150), KernelHI: true}
		if _, err := repro.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10DSTC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Fig10(dstc.Config{Seed: int64(i), Paths: benchScale(400, 1000)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Returns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Fig11(returns.Config{Seed: int64(i), LotSize: benchScale(3000, 6000)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12Escapes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := costred.Config{Seed: int64(i), Phase1Size: benchScale(40000, 150000), Phase2Size: benchScale(20000, 80000)}
		if _, err := repro.Fig12(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec2Regressors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Sec2(int64(i), benchScale(120, 250)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md Section 5) ---------------------------------

// Spectrum n-gram length for test selection.
func BenchmarkAblationFig7NGram(b *testing.B) {
	for _, n := range []int{1, 2, 3} {
		b.Run(map[int]string{1: "n1", 2: "n2", 3: "n3"}[n], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := testsel.Config{Seed: int64(i), MaxTests: benchScale(150, 400), NGram: n}
				if _, err := repro.Fig7(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// One-class nu (novelty acceptance) for test selection.
func BenchmarkAblationFig7Nu(b *testing.B) {
	for _, tc := range []struct {
		name string
		nu   float64
	}{{"nu05", 0.05}, {"nu20", 0.20}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := testsel.Config{Seed: int64(i), MaxTests: benchScale(150, 400), Nu: tc.nu}
				if _, err := repro.Fig7(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// HI kernel vs generic RBF for the litho screen.
func BenchmarkAblationFig9Kernel(b *testing.B) {
	for _, tc := range []struct {
		name string
		hi   bool
	}{{"histogram-intersection", true}, {"rbf", false}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := varpred.Config{Seed: int64(i), Train: benchScale(50, 120), Test: benchScale(50, 120), KernelHI: tc.hi}
				if _, err := repro.Fig9(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// End-to-end simulation cost of the substrate (the quantity Figure 7
// saves).
func BenchmarkSubstrateSimulation(b *testing.B) {
	gen := isa.NewGenerator(isa.WideTemplate(), 1)
	progs := gen.Batch(benchScale(50, 100))
	m := isa.NewMachine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Run(progs[i%len(progs)])
	}
}
