package repro_test

// Acceptance tests for the observability layer's run manifests: the
// manifest `edamine -manifest` writes must round-trip through
// encoding/json and carry the Figure 7 economics — simulated cycles
// (isa.cycles_simulated) and the cycles the novelty filter saved
// (testsel.cycles_saved) — as first-class metrics, alongside per-stage
// wall times.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro"
	"repro/internal/apps/testsel"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/parallel"
)

func TestManifestRoundTripCarriesFig7Metrics(t *testing.T) {
	defer obs.SetEnabled(obs.SetEnabled(true))
	obs.ResetMetrics()

	// The same sequence cmd/edamine runs for `edamine fig7 -manifest`:
	// start a manifest, run the experiment, record the stage, finish.
	man := obs.NewManifest("edamine", 3, parallel.Workers())
	start := time.Now()
	res, err := repro.Fig7(testsel.Config{Seed: 3, MaxTests: 300})
	if err != nil {
		t.Fatal(err)
	}
	man.AddStage("fig7", time.Since(start))
	man.Finish()

	// Round trip through encoding/json.
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back obs.Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("manifest does not round-trip: %v", err)
	}
	data2, err := json.MarshalIndent(&back, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("manifest JSON unstable across a round trip:\n%s\nvs\n%s", data, data2)
	}

	// Header and stage timings.
	if back.Command != "edamine" || back.Seed != 3 {
		t.Fatalf("manifest header wrong: %+v", back)
	}
	if len(back.Stages) != 1 || back.Stages[0].Name != "fig7" || back.Stages[0].Seconds <= 0 {
		t.Fatalf("manifest stages wrong: %+v", back.Stages)
	}
	if back.GoVersion == "" || back.Revision == "" {
		t.Fatalf("manifest build info missing: %+v", back)
	}

	// The Figure 7 economics must be first-class metrics.
	cycles, ok := back.Metric("isa.cycles_simulated")
	if !ok || cycles.Value <= 0 {
		t.Fatalf("isa.cycles_simulated missing or zero: %+v (ok=%v)", cycles, ok)
	}
	saved, ok := back.Metric("testsel.cycles_saved")
	if !ok {
		t.Fatal("testsel.cycles_saved missing from manifest")
	}
	if want := res.BaselineCycles - res.SelectedCycles; saved.Value != want {
		t.Fatalf("testsel.cycles_saved = %d, want BaselineCycles-SelectedCycles = %d",
			saved.Value, want)
	}
	if len(back.Metrics) < 15 {
		t.Fatalf("manifest has %d metrics, want >= 15", len(back.Metrics))
	}

	// The run drove the simulator, kernels, and pool, so their core
	// counters must be live, not just registered.
	for _, name := range []string{
		"isa.programs_simulated",
		"isa.instructions_simulated",
		"isa.programs_generated",
		"testsel.tests_examined",
		"testsel.tests_simulated",
		"kernel.spectrum_ngrams",
	} {
		m, ok := back.Metric(name)
		if !ok || m.Value <= 0 {
			t.Errorf("metric %s missing or zero after a fig7 run: %+v (ok=%v)", name, m, ok)
		}
	}
}

// A chaos run must be identifiable from its manifest alone: the CLIs
// record fault.ActiveSites() in the fault_sites field, and a clean run
// omits the field entirely.
func TestManifestRecordsFaultSites(t *testing.T) {
	fault.Activate(fault.Uniform(99, fault.SiteConfig{ErrRate: 0.5}, fault.ServeSites()...))
	defer fault.Deactivate()

	man := obs.NewManifest("edamine", 99, 1)
	man.FaultSites = fault.ActiveSites() // as cmd/edamine and cmd/edaserved do
	man.Finish()

	data, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	var back obs.Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	want := []string{fault.SiteModelDecode, fault.SiteKernelEval, fault.SitePredictDecode}
	// ActiveSites is sorted; sort the expectation the same way.
	if got := back.FaultSites; !reflect.DeepEqual(got, fault.ActiveSites()) || len(got) != len(want) {
		t.Fatalf("fault_sites = %v, want the %d active serve sites %v", got, len(want), fault.ActiveSites())
	}

	// Clean run: the field must be omitted, so manifest diffs between a
	// chaos run and a clean run always show it.
	fault.Deactivate()
	clean := obs.NewManifest("edamine", 99, 1)
	clean.FaultSites = fault.ActiveSites()
	cleanData, err := json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(cleanData, []byte("fault_sites")) {
		t.Fatalf("clean manifest still carries fault_sites: %s", cleanData)
	}
}
