// Package neural implements a multilayer perceptron — the paper's example
// of a model-based learner with a predefined structure of limited
// complexity (Section 2.1/2.3 idea 1: fix the model family, minimize
// training error). Hidden-layer width is the complexity knob for the
// Figure 5 overfitting sweep.
package neural

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// MLP is a fully connected network with tanh hidden units and either a
// linear output (regression) or a sigmoid output (binary classification).
type MLP struct {
	Sizes      []int // layer sizes, input..output
	W          [][][]float64
	Bias       [][]float64
	Regression bool
}

// Config controls training.
type Config struct {
	Hidden       []int   // hidden layer sizes, default [8]
	LearningRate float64 // default 0.05
	Momentum     float64 // default 0.9
	Epochs       int     // default 300
	Batch        int     // minibatch size, default 16
	Regression   bool    // linear output + squared loss
	L2           float64 // weight decay
	Seed         int64
}

// Fit trains the network with SGD + momentum. Classification labels must
// be 0/1.
func Fit(d *dataset.Dataset, cfg Config) (*MLP, error) {
	if d.Len() == 0 {
		return nil, errors.New("neural: empty dataset")
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{8}
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.05
	}
	if cfg.Momentum < 0 || cfg.Momentum >= 1 {
		cfg.Momentum = 0.9
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 300
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 16
	}
	if !cfg.Regression {
		for _, v := range d.Y {
			if v != 0 && v != 1 {
				return nil, errors.New("neural: classification labels must be 0/1")
			}
		}
	}

	sizes := append([]int{d.Dim()}, cfg.Hidden...)
	sizes = append(sizes, 1)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	m := &MLP{Sizes: sizes, Regression: cfg.Regression}
	nl := len(sizes) - 1
	m.W = make([][][]float64, nl)
	m.Bias = make([][]float64, nl)
	vW := make([][][]float64, nl)
	vB := make([][]float64, nl)
	for l := 0; l < nl; l++ {
		in, out := sizes[l], sizes[l+1]
		scale := math.Sqrt(2.0 / float64(in))
		m.W[l] = make([][]float64, out)
		vW[l] = make([][]float64, out)
		m.Bias[l] = make([]float64, out)
		vB[l] = make([]float64, out)
		for o := 0; o < out; o++ {
			m.W[l][o] = make([]float64, in)
			vW[l][o] = make([]float64, in)
			for i := range m.W[l][o] {
				m.W[l][o][i] = scale * rng.NormFloat64()
			}
		}
	}

	n := d.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	acts := make([][]float64, len(sizes))
	deltas := make([][]float64, nl)
	for l := 0; l < nl; l++ {
		deltas[l] = make([]float64, sizes[l+1])
	}

	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += cfg.Batch {
			end := start + cfg.Batch
			if end > n {
				end = n
			}
			// Accumulate gradients over the batch by applying per-sample
			// updates into momentum buffers (SGD with momentum).
			for _, idx := range order[start:end] {
				x := d.Row(idx)
				y := d.Y[idx]
				m.forward(x, acts)
				// Output delta.
				out := acts[len(acts)-1][0]
				var dOut float64
				if cfg.Regression {
					dOut = out - y
				} else {
					dOut = out - y // sigmoid + cross-entropy gradient
				}
				deltas[nl-1][0] = dOut
				// Backpropagate.
				for l := nl - 2; l >= 0; l-- {
					for i := 0; i < sizes[l+1]; i++ {
						s := 0.0
						for o := 0; o < sizes[l+2]; o++ {
							s += m.W[l+1][o][i] * deltas[l+1][o]
						}
						a := acts[l+1][i]
						deltas[l][i] = s * (1 - a*a) // tanh'
					}
				}
				// Update with momentum.
				lr := cfg.LearningRate
				for l := 0; l < nl; l++ {
					in := acts[l]
					for o := 0; o < sizes[l+1]; o++ {
						dl := deltas[l][o]
						for i := range in {
							g := dl*in[i] + cfg.L2*m.W[l][o][i]
							vW[l][o][i] = cfg.Momentum*vW[l][o][i] - lr*g
							m.W[l][o][i] += vW[l][o][i]
						}
						vB[l][o] = cfg.Momentum*vB[l][o] - lr*dl
						m.Bias[l][o] += vB[l][o]
					}
				}
			}
		}
	}
	return m, nil
}

// forward fills acts with layer activations; acts[0] aliases x.
func (m *MLP) forward(x []float64, acts [][]float64) {
	acts[0] = x
	nl := len(m.Sizes) - 1
	for l := 0; l < nl; l++ {
		if acts[l+1] == nil {
			acts[l+1] = make([]float64, m.Sizes[l+1])
		}
		for o := 0; o < m.Sizes[l+1]; o++ {
			s := m.Bias[l][o]
			w := m.W[l][o]
			in := acts[l]
			for i := range in {
				s += w[i] * in[i]
			}
			if l == nl-1 {
				if m.Regression {
					acts[l+1][o] = s
				} else {
					acts[l+1][o] = 1 / (1 + math.Exp(-s))
				}
			} else {
				acts[l+1][o] = math.Tanh(s)
			}
		}
	}
}

// Output returns the raw network output (probability for classification,
// value for regression).
func (m *MLP) Output(x []float64) float64 {
	acts := make([][]float64, len(m.Sizes))
	m.forward(x, acts)
	return acts[len(acts)-1][0]
}

// Predict returns the regression value or the thresholded class.
func (m *MLP) Predict(x []float64) float64 {
	o := m.Output(x)
	if m.Regression {
		return o
	}
	if o >= 0.5 {
		return 1
	}
	return 0
}

// PredictAll predicts every row of d.
func (m *MLP) PredictAll(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = m.Predict(d.Row(i))
	}
	return out
}

// Validate checks that every trained parameter is finite and the layer
// shapes are mutually consistent. SGD on adversarial inputs (huge
// magnitudes, subnormals) can silently blow weights up to ±Inf/NaN; the
// conformance suite asserts this invariant after every generated fit.
func (m *MLP) Validate() error {
	if len(m.W) != len(m.Bias) {
		return errors.New("neural: weight/bias layer count mismatch")
	}
	if len(m.Sizes) != len(m.W)+1 {
		return errors.New("neural: layer sizes do not match weight layers")
	}
	for l := range m.W {
		if len(m.W[l]) != m.Sizes[l+1] || len(m.Bias[l]) != m.Sizes[l+1] {
			return errors.New("neural: layer width mismatch")
		}
		for _, row := range m.W[l] {
			if len(row) != m.Sizes[l] {
				return errors.New("neural: weight row width mismatch")
			}
			for _, w := range row {
				if math.IsNaN(w) || math.IsInf(w, 0) {
					return errors.New("neural: non-finite weight")
				}
			}
		}
		for _, b := range m.Bias[l] {
			if math.IsNaN(b) || math.IsInf(b, 0) {
				return errors.New("neural: non-finite bias")
			}
		}
	}
	return nil
}

// NumParams returns the total number of trainable parameters — the model
// complexity axis for the Figure 5 sweep.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.W {
		for _, row := range m.W[l] {
			n += len(row)
		}
		n += len(m.Bias[l])
	}
	return n
}
