package neural

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/validate"
)

func TestMLPSolvesXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := dataset.XOR(rng, 40, 0.15)
	m, err := Fit(d, Config{Hidden: []int{8}, Epochs: 400, LearningRate: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc := validate.Accuracy(m.PredictAll(d), d.Y)
	if acc < 0.95 {
		t.Fatalf("MLP XOR accuracy %g", acc)
	}
}

func TestMLPClassifiesGaussians(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := dataset.TwoGaussians(rng, 80, 2, 4, 1)
	tr, te := d.StratifiedSplit(rng, 0.7)
	m, err := Fit(tr, Config{Hidden: []int{6}, Epochs: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc := validate.Accuracy(m.PredictAll(te), te.Y); acc < 0.92 {
		t.Fatalf("MLP accuracy %g", acc)
	}
	// Probabilities lie in [0,1].
	p := m.Output(te.Row(0))
	if p < 0 || p > 1 {
		t.Fatalf("output %g not a probability", p)
	}
}

func TestMLPRegressionSine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := dataset.NoisySine(rng, 150, 0.05)
	test := dataset.NoisySine(rng, 100, 0.05)
	m, err := Fit(train, Config{Hidden: []int{16}, Epochs: 600, LearningRate: 0.02,
		Regression: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r2 := validate.R2(m.PredictAll(test), test.Y)
	if r2 < 0.85 {
		t.Fatalf("MLP sine R2 %g", r2)
	}
}

func TestMLPValidation(t *testing.T) {
	if _, err := Fit(dataset.FromRows(nil, nil), Config{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	bad := dataset.FromRows([][]float64{{1}}, []float64{5})
	if _, err := Fit(bad, Config{}); err == nil {
		t.Fatal("bad labels accepted")
	}
}

func TestMLPNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := dataset.TwoGaussians(rng, 10, 3, 2, 1)
	m, err := Fit(d, Config{Hidden: []int{5}, Epochs: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 3*5 + 5 bias + 5*1 + 1 bias = 26.
	if got := m.NumParams(); got != 26 {
		t.Fatalf("NumParams %d, want 26", got)
	}
}

func TestMLPDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := dataset.TwoGaussians(rng, 30, 2, 3, 1)
	m1, _ := Fit(d, Config{Hidden: []int{4}, Epochs: 50, Seed: 42})
	m2, _ := Fit(d, Config{Hidden: []int{4}, Epochs: 50, Seed: 42})
	for i := 0; i < d.Len(); i++ {
		if math.Abs(m1.Output(d.Row(i))-m2.Output(d.Row(i))) > 1e-12 {
			t.Fatal("same seed must give identical models")
		}
	}
}

func BenchmarkMLPFitXOR(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	d := dataset.XOR(rng, 25, 0.15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(d, Config{Hidden: []int{8}, Epochs: 100, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
