package gp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/validate"
)

func TestGPInterpolatesNoiselessData(t *testing.T) {
	rows := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	y := make([]float64, 5)
	for i, r := range rows {
		y[i] = math.Sin(2 * math.Pi * r[0])
	}
	d := dataset.FromRows(rows, y)
	g, err := Fit(d, Config{Kernel: kernel.RBF{Gamma: 5}, Noise: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if got := g.Predict(r); math.Abs(got-y[i]) > 1e-3 {
			t.Fatalf("training point %d: %g vs %g", i, got, y[i])
		}
	}
}

func TestGPVarianceGrowsAwayFromData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := dataset.NoisySine(rng, 40, 0.05)
	g, err := Fit(d, Config{Kernel: kernel.RBF{Gamma: 10}, Noise: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	_, vIn := g.PredictVar([]float64{0.5})
	_, vOut := g.PredictVar([]float64{5})
	if vOut <= vIn {
		t.Fatalf("variance should grow off-support: in=%g out=%g", vIn, vOut)
	}
	// Far from data the posterior reverts to the prior variance k(x,x)=1.
	if math.Abs(vOut-1) > 0.05 {
		t.Fatalf("far-field variance should approach prior: %g", vOut)
	}
}

func TestGPRegressionQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := dataset.NoisySine(rng, 80, 0.1)
	test := dataset.NoisySine(rng, 200, 0.1)
	g, err := Fit(train, Config{Kernel: kernel.RBF{Gamma: 10}, Noise: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	r2 := validate.R2(g.PredictAll(test), test.Y)
	if r2 < 0.9 {
		t.Fatalf("GP R2 %g", r2)
	}
}

func TestGPLogMarginalLikelihoodPrefersGoodHyperparams(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := dataset.NoisySine(rng, 60, 0.05)
	good, err := Fit(d, Config{Kernel: kernel.RBF{Gamma: 10}, Noise: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Fit(d, Config{Kernel: kernel.RBF{Gamma: 1e-4}, Noise: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if good.LogMarginalLikelihood(d.Y) <= bad.LogMarginalLikelihood(d.Y) {
		t.Fatal("LML should prefer the well-scaled kernel")
	}
}

func TestGPEmptyAndDefaults(t *testing.T) {
	if _, err := Fit(dataset.FromRows(nil, nil), Config{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	rng := rand.New(rand.NewSource(4))
	d := dataset.NoisySine(rng, 20, 0.1)
	if _, err := Fit(d, Config{}); err != nil { // default kernel + noise
		t.Fatal(err)
	}
}

func TestSelectGammaPicksSensibleScale(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := dataset.NoisySine(rng, 60, 0.05)
	m, gamma, err := SelectGamma(d, []float64{1e-4, 0.1, 10, 1000}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// For sin(2πx) on [0,1], a lengthscale near gamma=10 is right; the
	// extreme candidates underfit (1e-4) or interpolate noise (1000).
	if gamma != 10 {
		t.Fatalf("selected gamma %g, want 10", gamma)
	}
	test := dataset.NoisySine(rng, 100, 0.05)
	if r2 := validate.R2(m.PredictAll(test), test.Y); r2 < 0.9 {
		t.Fatalf("selected model R2 %g", r2)
	}
	if _, _, err := SelectGamma(d, nil, 0.01); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}

func BenchmarkGPFit100(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	d := dataset.NoisySine(rng, 100, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(d, Config{Kernel: kernel.RBF{Gamma: 10}, Noise: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}
