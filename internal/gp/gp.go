// Package gp implements Gaussian-process regression ([19]), the fifth
// regressor family in the paper's Fmax-prediction study ([20]). The model
// places a GP prior with an RBF covariance over functions and returns the
// posterior mean and variance at new inputs; the predictive variance gives
// the calibrated uncertainty that distinguishes GP from the other four
// regressors.
package gp

import (
	"errors"
	"math"

	"repro/internal/core/colmat"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/linalg"
)

// Regressor is a fitted GP regression model.
type Regressor struct {
	K     kernel.Kernel
	X     *linalg.Matrix
	alpha []float64      // (K + σ²I)⁻¹ (y − mean)
	chol  *linalg.Matrix // Cholesky factor of K + σ²I
	mean  float64        // constant prior mean (training-label average)
	noise float64
}

// Config controls the GP fit.
type Config struct {
	Kernel kernel.Kernel // default RBF with gamma = 1/dim
	Noise  float64       // observation noise σ², default 1e-2
}

// Fit conditions the GP on the training data.
func Fit(d *dataset.Dataset, cfg Config) (*Regressor, error) {
	n := d.Len()
	if n == 0 {
		return nil, errors.New("gp: empty dataset")
	}
	k := cfg.Kernel
	if k == nil {
		k = kernel.RBF{Gamma: 1.0 / float64(d.Dim())}
	}
	noise := cfg.Noise
	if noise <= 0 {
		noise = 1e-2
	}
	mean := 0.0
	for _, v := range d.Y {
		mean += v
	}
	mean /= float64(n)

	gram := kernel.Gram(k, d.X)
	gram.AddDiag(noise)
	l, err := linalg.Cholesky(gram)
	if err != nil {
		return nil, err
	}
	yc := make([]float64, n)
	for i, v := range d.Y {
		yc[i] = v - mean
	}
	alpha := linalg.CholSolve(l, yc)
	return &Regressor{K: k, X: d.X.Clone(), alpha: alpha, chol: l, mean: mean, noise: noise}, nil
}

// Restore rebuilds a fitted Regressor from its persisted components (see
// internal/model): the kernel, training inputs, weight vector
// alpha = (K + σ²I)⁻¹ (y − mean), Cholesky factor of K + σ²I, prior
// mean, and observation noise. The arguments are retained, not copied.
func Restore(k kernel.Kernel, x *linalg.Matrix, alpha []float64, chol *linalg.Matrix, mean, noise float64) *Regressor {
	return &Regressor{K: k, X: x, alpha: alpha, chol: chol, mean: mean, noise: noise}
}

// Alpha returns the fitted weight vector (K + σ²I)⁻¹ (y − mean).
func (g *Regressor) Alpha() []float64 { return g.alpha }

// Chol returns the Cholesky factor of K + σ²I.
func (g *Regressor) Chol() *linalg.Matrix { return g.chol }

// Mean returns the constant prior mean (training-label average).
func (g *Regressor) Mean() float64 { return g.mean }

// Noise returns the observation noise σ².
func (g *Regressor) Noise() float64 { return g.noise }

// Predict returns the posterior mean at x.
func (g *Regressor) Predict(x []float64) float64 {
	mu, _ := g.PredictVar(x)
	return mu
}

// PredictBatch returns the posterior mean for every row of x, amortizing
// the kernel evaluations through one CrossGram sweep (parallel across
// rows). Each mean is combined exactly as in PredictVar
// (mean + Dot(kx, alpha)), so the batch path is bit-identical to calling
// Predict row by row.
func (g *Regressor) PredictBatch(x *linalg.Matrix) []float64 {
	return g.PredictBatchInto(x, make([]float64, x.Rows))
}

// PredictBatchInto is PredictBatch writing into a caller-provided slice
// of length x.Rows; the cross-Gram scratch is leased from the columnar
// arena, so a steady-state batch allocates nothing (alloc_test.go pins
// this at 0 allocs/op).
func (g *Regressor) PredictBatchInto(x *linalg.Matrix, out []float64) []float64 {
	if len(out) != x.Rows {
		panic("gp: PredictBatchInto output length mismatch")
	}
	kx := colmat.Get(x.Rows, g.X.Rows)
	kernel.CrossGramInto(g.K, x, g.X, kx)
	for i := range out {
		out[i] = g.mean + linalg.Dot(kx.Row(i), g.alpha)
	}
	colmat.Put(kx)
	return out
}

// PredictVarBatch returns the posterior mean and variance for every row
// of x. Each row is computed by exactly the expressions of PredictVar, so
// the batch path is bit-identical to calling PredictVar row by row; the
// conformance suite (internal/testkit) relies on that and on the
// mathematical bounds 0 ≤ var ≤ k(x,x) to validate every generated fit.
func (g *Regressor) PredictVarBatch(x *linalg.Matrix) (mu, variance []float64) {
	mu = make([]float64, x.Rows)
	variance = make([]float64, x.Rows)
	for i := range mu {
		mu[i], variance[i] = g.PredictVar(x.Row(i))
	}
	return mu, variance
}

// PredictVar returns the posterior mean and variance at x.
func (g *Regressor) PredictVar(x []float64) (mu, variance float64) {
	n := g.X.Rows
	kx := make([]float64, n)
	for i := 0; i < n; i++ {
		kx[i] = g.K.Eval(x, g.X.Row(i))
	}
	mu = g.mean + linalg.Dot(kx, g.alpha)
	// v = L⁻¹ kx via forward substitution; var = k(x,x) − vᵀv.
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		s := kx[i]
		for kk := 0; kk < i; kk++ {
			s -= g.chol.At(i, kk) * v[kk]
		}
		v[i] = s / g.chol.At(i, i)
	}
	variance = g.K.Eval(x, x) - linalg.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	return mu, variance
}

// PredictAll returns posterior means for every row of d.
func (g *Regressor) PredictAll(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = g.Predict(d.Row(i))
	}
	return out
}

// LogMarginalLikelihood returns log p(y | X) of the fitted GP, the
// model-selection criterion used to pick hyperparameters.
func (g *Regressor) LogMarginalLikelihood(y []float64) float64 {
	n := len(g.alpha)
	yc := make([]float64, n)
	for i, v := range y {
		yc[i] = v - g.mean
	}
	return -0.5*linalg.Dot(yc, g.alpha) - 0.5*linalg.CholLogDet(g.chol) -
		0.5*float64(n)*math.Log(2*math.Pi)
}

// SelectGamma fits one GP per candidate RBF gamma and returns the model
// maximizing the log marginal likelihood — the textbook GP model-selection
// recipe ([19]). It never touches held-out data.
func SelectGamma(d *dataset.Dataset, gammas []float64, noise float64) (*Regressor, float64, error) {
	if len(gammas) == 0 {
		return nil, 0, errors.New("gp: no candidate gammas")
	}
	var best *Regressor
	bestGamma := 0.0
	bestLML := math.Inf(-1)
	for _, gamma := range gammas {
		m, err := Fit(d, Config{Kernel: kernel.RBF{Gamma: gamma}, Noise: noise})
		if err != nil {
			continue // e.g. a degenerate gram for this gamma
		}
		if lml := m.LogMarginalLikelihood(d.Y); lml > bestLML {
			best, bestGamma, bestLML = m, gamma, lml
		}
	}
	if best == nil {
		return nil, 0, errors.New("gp: every candidate gamma failed to fit")
	}
	return best, bestGamma, nil
}
