package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/stats"
)

func TestNewValidatesShapes(t *testing.T) {
	x := linalg.NewMatrix(3, 2)
	if _, err := New(x, []float64{1, 2}, nil); err == nil {
		t.Fatal("expected label-length error")
	}
	if _, err := New(x, nil, []string{"a"}); err == nil {
		t.Fatal("expected name-length error")
	}
	d, err := New(x, []float64{1, 2, 3}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 || d.Dim() != 2 {
		t.Fatalf("shape %d/%d", d.Len(), d.Dim())
	}
	if d.FeatureName(1) != "b" {
		t.Fatalf("name %q", d.FeatureName(1))
	}
	if FromRows([][]float64{{1}}, nil).FeatureName(0) != "f0" {
		t.Fatal("default feature name")
	}
}

func TestSubsetAndSelectFeatures(t *testing.T) {
	d := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}, []float64{0, 1, 2})
	s := d.Subset([]int{2, 0})
	if s.Len() != 2 || s.Row(0)[0] != 7 || s.Y[1] != 0 {
		t.Fatalf("subset wrong: %v %v", s.Row(0), s.Y)
	}
	// Mutating the subset must not touch the parent.
	s.Row(0)[0] = -1
	if d.Row(2)[0] != 7 {
		t.Fatal("Subset aliased parent")
	}
	f := d.SelectFeatures([]int{2, 0})
	if f.Dim() != 2 || f.Row(1)[0] != 6 || f.Row(1)[1] != 4 {
		t.Fatalf("select features wrong: %v", f.Row(1))
	}
}

func TestClassesAndCounts(t *testing.T) {
	d := FromRows([][]float64{{0}, {0}, {0}, {0}}, []float64{2, 0, 2, 1})
	cls := d.Classes()
	if len(cls) != 3 || cls[0] != 0 || cls[2] != 2 {
		t.Fatalf("classes %v", cls)
	}
	cc := d.ClassCounts()
	if cc[2] != 2 || cc[0] != 1 {
		t.Fatalf("counts %v", cc)
	}
}

func TestSplitSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := TwoGaussians(rng, 50, 3, 2, 1)
	tr, te := d.Split(rng, 0.8)
	if tr.Len() != 80 || te.Len() != 20 {
		t.Fatalf("split sizes %d/%d", tr.Len(), te.Len())
	}
}

func TestStratifiedSplitPreservesRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// 90/10 imbalanced dataset.
	rows := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range rows {
		rows[i] = []float64{float64(i)}
		if i < 20 {
			y[i] = 1
		}
	}
	d := FromRows(rows, y)
	tr, te := d.StratifiedSplit(rng, 0.5)
	if tr.ClassCounts()[1] != 10 || te.ClassCounts()[1] != 10 {
		t.Fatalf("stratification broken: %v %v", tr.ClassCounts(), te.ClassCounts())
	}
}

func TestKFoldPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, te := KFold(rng, 10, 3)
	if len(tr) != 3 || len(te) != 3 {
		t.Fatal("wrong fold count")
	}
	seen := map[int]int{}
	for f := 0; f < 3; f++ {
		if len(tr[f])+len(te[f]) != 10 {
			t.Fatalf("fold %d does not cover dataset", f)
		}
		for _, i := range te[f] {
			seen[i]++
		}
		// train and test disjoint
		inTest := map[int]bool{}
		for _, i := range te[f] {
			inTest[i] = true
		}
		for _, i := range tr[f] {
			if inTest[i] {
				t.Fatalf("fold %d train/test overlap at %d", f, i)
			}
		}
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Fatalf("sample %d in %d test folds", i, seen[i])
		}
	}
}

func TestScalerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := TwoGaussians(rng, 100, 4, 3, 2)
	sc := FitScaler(d.X)
	z := sc.Transform(d.X)
	for j := 0; j < z.Cols; j++ {
		col := z.Col(j)
		if math.Abs(stats.Mean(col)) > 1e-9 {
			t.Fatalf("col %d mean %g", j, stats.Mean(col))
		}
		if math.Abs(stats.StdDev(col)-1) > 1e-9 {
			t.Fatalf("col %d std %g", j, stats.StdDev(col))
		}
	}
	v := d.Row(3)
	back := sc.Inverse(sc.TransformVec(v))
	for j := range v {
		if math.Abs(back[j]-v[j]) > 1e-9 {
			t.Fatal("scaler inverse mismatch")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := RingAndCore(rng, 10, 1, 3, 0.1)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() || d2.Dim() != d.Dim() {
		t.Fatalf("shape mismatch after roundtrip")
	}
	for i := 0; i < d.Len(); i++ {
		if d2.Y[i] != d.Y[i] {
			t.Fatalf("label %d mismatch", i)
		}
		for j := 0; j < d.Dim(); j++ {
			if math.Abs(d2.Row(i)[j]-d.Row(i)[j]) > 1e-12 {
				t.Fatalf("value (%d,%d) mismatch", i, j)
			}
		}
	}
	if d2.Names[0] != "f1" {
		t.Fatalf("names lost: %v", d2.Names)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Fatal("expected error for empty CSV")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,y\nnope,1\n")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestRingAndCoreNotLinearlySeparableButRadiusSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := RingAndCore(rng, 100, 1, 3, 0.05)
	// Radius separates the classes.
	miscls := 0
	for i := 0; i < d.Len(); i++ {
		r := linalg.Norm2(d.Row(i))
		pred := 0.0
		if r > 2 {
			pred = 1
		}
		if pred != d.Y[i] {
			miscls++
		}
	}
	if miscls > 0 {
		t.Fatalf("radius rule should separate ring/core, got %d errors", miscls)
	}
}

func TestSyntheticShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if d := XOR(rng, 5, 0.1); d.Len() != 20 {
		t.Fatal("XOR size")
	}
	if d := NoisySine(rng, 30, 0.1); d.Len() != 30 || d.Dim() != 1 {
		t.Fatal("NoisySine shape")
	}
	if d := Friedman1(rng, 40, 3, 0.1); d.Dim() != 5 {
		t.Fatal("Friedman1 must pad to 5 dims")
	}
	d := Blobs(rng, 4, 10, 2, 5, 0.2)
	if d.Len() != 40 || len(d.Classes()) != 4 {
		t.Fatal("Blobs shape")
	}
}
