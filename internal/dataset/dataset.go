// Package dataset defines the tabular dataset abstraction from Figure 1 of
// the paper: a sample matrix X whose columns are features f1..fn, plus an
// optional label vector y (supervised), label matrix Y (multivariate), or
// nothing (unsupervised). It also provides splitting, sampling, and
// standardization utilities shared by every learner.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"repro/internal/linalg"
	"repro/internal/stats"
)

// Dataset is a supervised or unsupervised learning dataset.
//
// X holds one sample per row. Y, when non-nil, holds one label per sample:
// for classification the labels are small integers stored as float64; for
// regression they are continuous responses.
type Dataset struct {
	X     *linalg.Matrix
	Y     []float64
	Names []string // feature names; len == X.Cols when set
}

// New builds a dataset, validating shapes.
func New(x *linalg.Matrix, y []float64, names []string) (*Dataset, error) {
	if y != nil && len(y) != x.Rows {
		return nil, fmt.Errorf("dataset: %d rows but %d labels", x.Rows, len(y))
	}
	if names != nil && len(names) != x.Cols {
		return nil, fmt.Errorf("dataset: %d cols but %d names", x.Cols, len(names))
	}
	return &Dataset{X: x, Y: y, Names: names}, nil
}

// MustNew is New but panics on shape errors; for literals in tests/examples.
func MustNew(x *linalg.Matrix, y []float64, names []string) *Dataset {
	d, err := New(x, y, names)
	if err != nil {
		panic(err)
	}
	return d
}

// FromRows builds a dataset from row slices and labels.
func FromRows(rows [][]float64, y []float64) *Dataset {
	return MustNew(linalg.FromRows(rows), y, nil)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Rows }

// Dim returns the number of features.
func (d *Dataset) Dim() int { return d.X.Cols }

// Row returns sample i (a view into X).
func (d *Dataset) Row(i int) []float64 { return d.X.Row(i) }

// Col returns a copy of feature column j.
func (d *Dataset) Col(j int) []float64 { return d.X.Col(j) }

// ColInto copies feature column j into dst (length Len()) — the
// allocation-free form of Col for per-feature sweeps that reuse one
// scratch buffer across columns.
func (d *Dataset) ColInto(j int, dst []float64) { d.X.ColInto(j, dst) }

// FeatureName returns the name of feature j, or "f<j>" when unnamed.
func (d *Dataset) FeatureName(j int) string {
	if d.Names != nil && j < len(d.Names) {
		return d.Names[j]
	}
	return fmt.Sprintf("f%d", j)
}

// Subset returns a new dataset containing the given sample indices (copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	x := linalg.NewMatrix(len(idx), d.Dim())
	var y []float64
	if d.Y != nil {
		y = make([]float64, len(idx))
	}
	for r, i := range idx {
		copy(x.Row(r), d.Row(i))
		if y != nil {
			y[r] = d.Y[i]
		}
	}
	return &Dataset{X: x, Y: y, Names: d.Names}
}

// SelectFeatures returns a new dataset keeping only the given columns.
func (d *Dataset) SelectFeatures(cols []int) *Dataset {
	x := linalg.NewMatrix(d.Len(), len(cols))
	for i := 0; i < d.Len(); i++ {
		row := d.Row(i)
		out := x.Row(i)
		for c, j := range cols {
			out[c] = row[j]
		}
	}
	var names []string
	if d.Names != nil {
		names = make([]string, len(cols))
		for c, j := range cols {
			names[c] = d.Names[j]
		}
	}
	return &Dataset{X: x, Y: d.Y, Names: names}
}

// Classes returns the sorted distinct labels of a classification dataset.
func (d *Dataset) Classes() []int {
	seen := map[int]bool{}
	for _, v := range d.Y {
		seen[int(v)] = true
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort; class counts are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ClassCounts returns a map from class label to frequency.
func (d *Dataset) ClassCounts() map[int]int {
	c := map[int]int{}
	for _, v := range d.Y {
		c[int(v)]++
	}
	return c
}

// Split partitions the dataset into a training and test set with the given
// training fraction, after a random shuffle.
func (d *Dataset) Split(rng *rand.Rand, trainFrac float64) (train, test *Dataset) {
	idx := rng.Perm(d.Len())
	cut := int(trainFrac * float64(d.Len()))
	if cut < 0 {
		cut = 0
	}
	if cut > d.Len() {
		cut = d.Len()
	}
	return d.Subset(idx[:cut]), d.Subset(idx[cut:])
}

// StratifiedSplit splits preserving per-class proportions.
func (d *Dataset) StratifiedSplit(rng *rand.Rand, trainFrac float64) (train, test *Dataset) {
	byClass := map[int][]int{}
	for i, v := range d.Y {
		c := int(v)
		byClass[c] = append(byClass[c], i)
	}
	var trainIdx, testIdx []int
	for _, c := range d.Classes() {
		idx := byClass[c]
		stats.Shuffle(rng, idx)
		cut := int(trainFrac * float64(len(idx)))
		trainIdx = append(trainIdx, idx[:cut]...)
		testIdx = append(testIdx, idx[cut:]...)
	}
	stats.Shuffle(rng, trainIdx)
	stats.Shuffle(rng, testIdx)
	return d.Subset(trainIdx), d.Subset(testIdx)
}

// KFold returns k (train, test) index partitions after a shuffle.
func KFold(rng *rand.Rand, n, k int) (trainIdx, testIdx [][]int) {
	perm := rng.Perm(n)
	trainIdx = make([][]int, k)
	testIdx = make([][]int, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		testIdx[f] = append([]int(nil), perm[lo:hi]...)
		trainIdx[f] = append(append([]int(nil), perm[:lo]...), perm[hi:]...)
	}
	return trainIdx, testIdx
}

// Scaler standardizes features to zero mean and unit variance, remembering
// the fit so the identical transform applies to future data (the paper's
// training vs validation distinction).
type Scaler struct {
	Mean, Std []float64
}

// FitScaler learns per-column means and standard deviations.
func FitScaler(x *linalg.Matrix) *Scaler {
	s := &Scaler{Mean: make([]float64, x.Cols), Std: make([]float64, x.Cols)}
	col := make([]float64, x.Rows)
	for j := 0; j < x.Cols; j++ {
		x.ColInto(j, col)
		s.Mean[j] = stats.Mean(col)
		s.Std[j] = stats.StdDev(col)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform returns a standardized copy of x.
func (s *Scaler) Transform(x *linalg.Matrix) *linalg.Matrix {
	out := x.Clone()
	for i := 0; i < x.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = (row[j] - s.Mean[j]) / s.Std[j]
		}
	}
	return out
}

// TransformVec standardizes a single sample.
func (s *Scaler) TransformVec(v []float64) []float64 {
	out := make([]float64, len(v))
	for j := range v {
		out[j] = (v[j] - s.Mean[j]) / s.Std[j]
	}
	return out
}

// Inverse undoes the transform for a single sample.
func (s *Scaler) Inverse(v []float64) []float64 {
	out := make([]float64, len(v))
	for j := range v {
		out[j] = v[j]*s.Std[j] + s.Mean[j]
	}
	return out
}

// WriteCSV writes the dataset with a header row (feature names then "y"
// when labels are present).
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.Dim()+1)
	for j := 0; j < d.Dim(); j++ {
		header = append(header, d.FeatureName(j))
	}
	if d.Y != nil {
		header = append(header, "y")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i := 0; i < d.Len(); i++ {
		row := d.Row(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if d.Y != nil {
			rec[len(rec)-1] = strconv.FormatFloat(d.Y[i], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset written by WriteCSV. If the last column is named
// "y" it becomes the label vector.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) < 1 {
		return nil, fmt.Errorf("dataset: empty CSV")
	}
	header := recs[0]
	hasY := len(header) > 0 && header[len(header)-1] == "y"
	nf := len(header)
	if hasY {
		nf--
	}
	n := len(recs) - 1
	x := linalg.NewMatrix(n, nf)
	var y []float64
	if hasY {
		y = make([]float64, n)
	}
	for i, rec := range recs[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", i, len(rec), len(header))
		}
		for j := 0; j < nf; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d col %d: %w", i, j, err)
			}
			x.Set(i, j, v)
		}
		if hasY {
			v, err := strconv.ParseFloat(rec[nf], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d label: %w", i, err)
			}
			y[i] = v
		}
	}
	names := append([]string(nil), header[:nf]...)
	return New(x, y, names)
}
