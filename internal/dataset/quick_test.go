package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

// Property: KFold is a partition for any (n, k) with 1 <= k <= n.
func TestQuickKFoldPartition(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%50 + 2
		k := int(kRaw)%n + 1
		rng := rand.New(rand.NewSource(seed))
		trainIdx, testIdx := KFold(rng, n, k)
		seen := make([]int, n)
		for f := 0; f < k; f++ {
			if len(trainIdx[f])+len(testIdx[f]) != n {
				return false
			}
			for _, i := range testIdx[f] {
				seen[i]++
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Scaler.Inverse ∘ Scaler.TransformVec is the identity for any
// finite data.
func TestQuickScalerRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw, dRaw uint8) bool {
		n := int(nRaw)%30 + 2
		d := int(dRaw)%6 + 1
		rng := rand.New(rand.NewSource(seed))
		x := linalg.NewMatrix(n, d)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64() * 100
		}
		sc := FitScaler(x)
		for i := 0; i < n; i++ {
			v := x.Row(i)
			back := sc.Inverse(sc.TransformVec(v))
			for j := range v {
				if math.Abs(back[j]-v[j]) > 1e-6*(1+math.Abs(v[j])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Subset preserves labels and values at the selected indices.
func TestQuickSubsetConsistency(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 3
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]float64, n)
		y := make([]float64, n)
		for i := range rows {
			rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			y[i] = float64(rng.Intn(3))
		}
		d := FromRows(rows, y)
		idx := rng.Perm(n)[:n/2+1]
		s := d.Subset(idx)
		for r, i := range idx {
			if s.Y[r] != d.Y[i] {
				return false
			}
			for j := 0; j < d.Dim(); j++ {
				if s.Row(r)[j] != d.Row(i)[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: stratified split leaves per-class counts intact overall.
func TestQuickStratifiedSplitConservation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%60 + 10
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]float64, n)
		y := make([]float64, n)
		for i := range rows {
			rows[i] = []float64{float64(i)}
			y[i] = float64(rng.Intn(2))
		}
		d := FromRows(rows, y)
		tr, te := d.StratifiedSplit(rng, 0.6)
		cc := d.ClassCounts()
		ctr := tr.ClassCounts()
		cte := te.ClassCounts()
		for c, total := range cc {
			if ctr[c]+cte[c] != total {
				return false
			}
		}
		return tr.Len()+te.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
