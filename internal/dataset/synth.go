package dataset

import (
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// Synthetic dataset generators used throughout the tests, examples, and the
// Figure 3 / Figure 5 experiments.

// TwoGaussians generates a binary classification dataset with two spherical
// Gaussian blobs of n samples each, centred at ±sep/2 on every axis.
// Labels are 0 and 1.
func TwoGaussians(rng *rand.Rand, n, dim int, sep, sigma float64) *Dataset {
	x := linalg.NewMatrix(2*n, dim)
	y := make([]float64, 2*n)
	for i := 0; i < 2*n; i++ {
		c := 0.0
		if i >= n {
			c = 1
		}
		y[i] = c
		off := -sep / 2
		if c == 1 {
			off = sep / 2
		}
		row := x.Row(i)
		for j := range row {
			row[j] = off + sigma*rng.NormFloat64()
		}
	}
	return MustNew(x, y, nil)
}

// RingAndCore generates the Figure 3 dataset: class 0 is a compact core at
// the origin, class 1 is a ring around it. The classes are not linearly
// separable in the input space but are separable by the squared-feature map
// Φ(x) = (x1², x2², √2·x1x2) of the quadratic kernel.
func RingAndCore(rng *rand.Rand, n int, coreR, ringR, noise float64) *Dataset {
	x := linalg.NewMatrix(2*n, 2)
	y := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		r := coreR * math.Sqrt(rng.Float64())
		th := 2 * math.Pi * rng.Float64()
		x.Set(i, 0, r*math.Cos(th)+noise*rng.NormFloat64())
		x.Set(i, 1, r*math.Sin(th)+noise*rng.NormFloat64())
		y[i] = 0
	}
	for i := n; i < 2*n; i++ {
		th := 2 * math.Pi * rng.Float64()
		r := ringR + noise*rng.NormFloat64()
		x.Set(i, 0, r*math.Cos(th))
		x.Set(i, 1, r*math.Sin(th))
		y[i] = 1
	}
	return MustNew(x, y, []string{"f1", "f2"})
}

// XOR generates the classic XOR pattern: four Gaussian blobs at (±1, ±1)
// with labels equal to the sign product. Not linearly separable.
func XOR(rng *rand.Rand, nPerBlob int, sigma float64) *Dataset {
	centers := [][2]float64{{1, 1}, {-1, -1}, {1, -1}, {-1, 1}}
	labels := []float64{0, 0, 1, 1}
	x := linalg.NewMatrix(4*nPerBlob, 2)
	y := make([]float64, 4*nPerBlob)
	i := 0
	for b, c := range centers {
		for k := 0; k < nPerBlob; k++ {
			x.Set(i, 0, c[0]+sigma*rng.NormFloat64())
			x.Set(i, 1, c[1]+sigma*rng.NormFloat64())
			y[i] = labels[b]
			i++
		}
	}
	return MustNew(x, y, nil)
}

// NoisySine generates a 1-D regression dataset y = sin(2πx) + noise on
// [0, 1]; the Figure 5 overfitting experiment fits polynomials of rising
// degree to it.
func NoisySine(rng *rand.Rand, n int, noise float64) *Dataset {
	x := linalg.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64()
		x.Set(i, 0, v)
		y[i] = math.Sin(2*math.Pi*v) + noise*rng.NormFloat64()
	}
	return MustNew(x, y, []string{"x"})
}

// Friedman1 is the classic nonlinear regression benchmark
// y = 10 sin(π x1 x2) + 20 (x3 - 0.5)² + 10 x4 + 5 x5 + noise
// with 5 informative and dim-5 noise features; it stands in for the Fmax
// prediction task when comparing the five regressor families ([20]).
func Friedman1(rng *rand.Rand, n, dim int, noise float64) *Dataset {
	if dim < 5 {
		dim = 5
	}
	x := linalg.NewMatrix(n, dim)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.Float64()
		}
		y[i] = 10*math.Sin(math.Pi*row[0]*row[1]) + 20*(row[2]-0.5)*(row[2]-0.5) +
			10*row[3] + 5*row[4] + noise*rng.NormFloat64()
	}
	return MustNew(x, y, nil)
}

// Blobs generates k Gaussian clusters in dim dimensions with the given
// per-cluster count and spread; centers are drawn uniformly in
// [-centerBox, centerBox]^dim. Labels record the generating cluster.
func Blobs(rng *rand.Rand, k, perCluster, dim int, centerBox, sigma float64) *Dataset {
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = centerBox * (2*rng.Float64() - 1)
		}
	}
	n := k * perCluster
	x := linalg.NewMatrix(n, dim)
	y := make([]float64, n)
	i := 0
	for c := 0; c < k; c++ {
		for s := 0; s < perCluster; s++ {
			row := x.Row(i)
			for j := range row {
				row[j] = centers[c][j] + sigma*rng.NormFloat64()
			}
			y[i] = float64(c)
			i++
		}
	}
	return MustNew(x, y, nil)
}
