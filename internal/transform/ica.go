package transform

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// ICA holds a fitted FastICA decomposition: sources S ≈ (X − mean) · Wᵀ in
// the whitened space.
type ICA struct {
	pca *PCA
	W   *linalg.Matrix // k x k unmixing matrix in whitened space
	K   int
}

// FitICA runs symmetric FastICA with the tanh contrast on whitened data.
func FitICA(rng *rand.Rand, x *linalg.Matrix, k, maxIters int) (*ICA, error) {
	if k <= 0 || k > x.Cols {
		return nil, errors.New("transform: component count out of range")
	}
	if maxIters <= 0 {
		maxIters = 200
	}
	z, pca, err := Whiten(x)
	if err != nil {
		return nil, err
	}
	n, d := z.Rows, z.Cols

	// Random orthonormal init.
	w := linalg.NewMatrix(k, d)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	symmetricOrthonormalize(w)

	for it := 0; it < maxIters; it++ {
		newW := linalg.NewMatrix(k, d)
		for c := 0; c < k; c++ {
			wc := w.Row(c)
			// E[z g(wᵀz)] − E[g'(wᵀz)] w with g = tanh.
			gz := make([]float64, d)
			gprime := 0.0
			for i := 0; i < n; i++ {
				zi := z.Row(i)
				u := linalg.Dot(wc, zi)
				tu := math.Tanh(u)
				linalg.AXPY(tu, zi, gz)
				gprime += 1 - tu*tu
			}
			linalg.ScaleVec(1/float64(n), gz)
			gprime /= float64(n)
			row := newW.Row(c)
			for j := 0; j < d; j++ {
				row[j] = gz[j] - gprime*wc[j]
			}
		}
		symmetricOrthonormalize(newW)
		// Convergence: |diag(W newWᵀ)| near 1.
		done := true
		for c := 0; c < k; c++ {
			if math.Abs(linalg.Dot(w.Row(c), newW.Row(c))) < 1-1e-8 {
				done = false
				break
			}
		}
		w = newW
		if done {
			break
		}
	}
	return &ICA{pca: pca, W: w, K: k}, nil
}

// symmetricOrthonormalize performs W ← (W Wᵀ)^(−1/2) W.
func symmetricOrthonormalize(w *linalg.Matrix) {
	wwT := w.Mul(w.T())
	vals, vecs, err := linalg.EigenSym(wwT)
	if err != nil {
		return
	}
	k := w.Rows
	inv := linalg.NewMatrix(k, k)
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			s := 0.0
			for c := 0; c < k; c++ {
				l := vals[c]
				if l < 1e-12 {
					l = 1e-12
				}
				s += vecs.At(a, c) * vecs.At(b, c) / math.Sqrt(l)
			}
			inv.Set(a, b, s)
		}
	}
	res := inv.Mul(w)
	copy(w.Data, res.Data)
}

// Transform returns the estimated independent sources for the rows of x.
func (m *ICA) Transform(x *linalg.Matrix) *linalg.Matrix {
	z := m.pca.Transform(x)
	for c := 0; c < z.Cols; c++ {
		sd := math.Sqrt(m.pca.Variance[c])
		if sd < 1e-12 {
			sd = 1
		}
		for i := 0; i < z.Rows; i++ {
			z.Set(i, c, z.At(i, c)/sd)
		}
	}
	out := linalg.NewMatrix(z.Rows, m.K)
	for i := 0; i < z.Rows; i++ {
		zi := z.Row(i)
		row := out.Row(i)
		for c := 0; c < m.K; c++ {
			row[c] = linalg.Dot(m.W.Row(c), zi)
		}
	}
	return out
}
