package transform

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/linalg"
)

func TestKernelPCALinearKernelMatchesPCA(t *testing.T) {
	// With a linear kernel, kernel PCA scores equal PCA scores up to sign.
	rng := rand.New(rand.NewSource(1))
	x := linalg.NewMatrix(60, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	kp, err := FitKernelPCA(x, kernel.Linear{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := FitPCA(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	zk := kp.Transform(x)
	zp := p.Transform(x)
	for c := 0; c < 2; c++ {
		// Compare up to sign via correlation of the score columns.
		ck, cp := zk.Col(c), zp.Col(c)
		dot, nk, np := 0.0, 0.0, 0.0
		for i := range ck {
			dot += ck[i] * cp[i]
			nk += ck[i] * ck[i]
			np += cp[i] * cp[i]
		}
		corr := dot / (sqrtOf(nk) * sqrtOf(np))
		if corr < 0 {
			corr = -corr
		}
		if corr < 0.999 {
			t.Fatalf("component %d: linear KPCA disagrees with PCA (|corr|=%.4f)", c, corr)
		}
	}
}

func sqrtOf(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

func TestKernelPCASeparatesRing(t *testing.T) {
	// The ring-and-core data is not linearly separable, but the top RBF
	// kernel principal component separates the classes by a threshold.
	rng := rand.New(rand.NewSource(2))
	d := dataset.RingAndCore(rng, 80, 1, 3, 0.05)
	kp, err := FitKernelPCA(d.X, kernel.RBF{Gamma: 0.3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	z := kp.Transform(d.X)
	// Find the best threshold on component 0 (brute force).
	best := 0
	col := z.Col(0)
	for _, thr := range col {
		correct := 0
		for i, v := range col {
			pred := 0.0
			if v > thr {
				pred = 1
			}
			if pred == d.Y[i] {
				correct++
			}
		}
		if correct < d.Len()-correct {
			correct = d.Len() - correct // allow inverted labeling
		}
		if correct > best {
			best = correct
		}
	}
	acc := float64(best) / float64(d.Len())
	if acc < 0.95 {
		t.Fatalf("top kernel PC should separate ring/core: best threshold accuracy %.3f", acc)
	}
	if ev := kp.ExplainedVariance(); len(ev) != 2 || ev[0] < ev[1] {
		t.Fatalf("explained variance not descending: %v", ev)
	}
}

func TestKernelPCAValidation(t *testing.T) {
	x := linalg.NewMatrix(1, 2)
	if _, err := FitKernelPCA(x, nil, 1); err == nil {
		t.Fatal("single sample accepted")
	}
	x = linalg.NewMatrix(5, 2)
	if _, err := FitKernelPCA(x, nil, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := FitKernelPCA(x, nil, 6); err == nil {
		t.Fatal("k>n accepted")
	}
}
