package transform

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/stats"
)

func TestPCARecoversDominantDirection(t *testing.T) {
	// Data stretched along (1,1)/√2.
	rng := rand.New(rand.NewSource(1))
	n := 500
	x := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		a := 5 * rng.NormFloat64()
		b := 0.3 * rng.NormFloat64()
		x.Set(i, 0, (a+b)/math.Sqrt2+1)
		x.Set(i, 1, (a-b)/math.Sqrt2-2)
	}
	p, err := FitPCA(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	// First component should align with (1,1)/√2 (up to sign).
	c0 := p.Components.Row(0)
	al := math.Abs(c0[0]*1/math.Sqrt2 + c0[1]*1/math.Sqrt2)
	if al < 0.99 {
		t.Fatalf("first PC misaligned: %v (|cos|=%g)", c0, al)
	}
	// Explained variance ordering and ratio.
	if p.Variance[0] <= p.Variance[1] {
		t.Fatal("variances not descending")
	}
	ratios := p.ExplainedRatio(0)
	if ratios[0] < 0.95 {
		t.Fatalf("dominant component should explain most variance: %v", ratios)
	}
	// Mean recovered.
	if math.Abs(p.Mean[0]-1) > 0.3 || math.Abs(p.Mean[1]+2) > 0.3 {
		t.Fatalf("mean %v", p.Mean)
	}
}

func TestPCAScoresAreUncorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 400
	x := linalg.NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		a := rng.NormFloat64()
		x.Set(i, 0, a+0.2*rng.NormFloat64())
		x.Set(i, 1, a+0.2*rng.NormFloat64())
		x.Set(i, 2, rng.NormFloat64())
	}
	p, err := FitPCA(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	z := p.Transform(x)
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			if c := stats.Correlation(z.Col(a), z.Col(b)); math.Abs(c) > 0.05 {
				t.Fatalf("PCA scores correlated (%d,%d): %g", a, b, c)
			}
		}
	}
}

func TestPCARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := linalg.NewMatrix(50, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	p, err := FitPCA(x, 3) // full rank: lossless
	if err != nil {
		t.Fatal(err)
	}
	v := x.Row(7)
	back := p.InverseVec(p.TransformVec(v))
	for j := range v {
		if math.Abs(back[j]-v[j]) > 1e-8 {
			t.Fatalf("roundtrip mismatch at %d: %g vs %g", j, back[j], v[j])
		}
	}
}

func TestPCAValidation(t *testing.T) {
	x := linalg.NewMatrix(1, 2)
	if _, err := FitPCA(x, 1); err == nil {
		t.Fatal("single sample accepted")
	}
	x = linalg.NewMatrix(5, 2)
	if _, err := FitPCA(x, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := FitPCA(x, 3); err == nil {
		t.Fatal("k>d accepted")
	}
}

func TestWhitenUnitVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 300
	x := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		a := 4 * rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, 0.5*a+rng.NormFloat64())
	}
	z, _, err := Whiten(x)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		sd := stats.StdDev(z.Col(c))
		if math.Abs(sd-1) > 0.05 {
			t.Fatalf("whitened column %d std %g", c, sd)
		}
	}
	if c := stats.Correlation(z.Col(0), z.Col(1)); math.Abs(c) > 0.05 {
		t.Fatalf("whitened columns correlated: %g", c)
	}
}

func TestICASeparatesMixedSources(t *testing.T) {
	// Two independent non-Gaussian sources (uniform + sign), mixed linearly.
	rng := rand.New(rand.NewSource(5))
	n := 2000
	s1 := make([]float64, n)
	s2 := make([]float64, n)
	x := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		s1[i] = rng.Float64()*2 - 1
		if rng.Float64() < 0.5 {
			s2[i] = 1
		} else {
			s2[i] = -1
		}
		x.Set(i, 0, 0.8*s1[i]+0.3*s2[i])
		x.Set(i, 1, 0.2*s1[i]-0.7*s2[i])
	}
	ica, err := FitICA(rng, x, 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	rec := ica.Transform(x)
	// Each recovered component should correlate strongly with exactly one
	// source (up to sign/permutation).
	c10 := math.Abs(stats.Correlation(rec.Col(0), s1))
	c11 := math.Abs(stats.Correlation(rec.Col(0), s2))
	c20 := math.Abs(stats.Correlation(rec.Col(1), s1))
	c21 := math.Abs(stats.Correlation(rec.Col(1), s2))
	ok := (c10 > 0.95 && c21 > 0.95) || (c11 > 0.95 && c20 > 0.95)
	if !ok {
		t.Fatalf("ICA failed to separate: %g %g / %g %g", c10, c11, c20, c21)
	}
}

func TestICAValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := linalg.NewMatrix(10, 2)
	if _, err := FitICA(rng, x, 0, 10); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := FitICA(rng, x, 3, 10); err == nil {
		t.Fatal("k>d accepted")
	}
}

func BenchmarkPCA200x8(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := linalg.NewMatrix(200, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitPCA(x, 3); err != nil {
			b.Fatal(err)
		}
	}
}
