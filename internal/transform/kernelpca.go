package transform

import (
	"errors"
	"math"

	"repro/internal/kernel"
	"repro/internal/linalg"
)

// KernelPCA is a fitted kernel principal component analysis: PCA carried
// out implicitly in the feature space of a kernel (paper Section 2.2 —
// the learning-space question). With a nonlinear kernel it extracts
// components that linear PCA cannot, e.g. the radius of the Figure 3
// ring-and-core data.
type KernelPCA struct {
	K      kernel.Kernel
	X      *linalg.Matrix // training samples
	alphas *linalg.Matrix // n × k dual coefficients (normalized)
	lambda []float64      // eigenvalues of the centered Gram matrix / n
	rowMu  []float64      // Gram row means (for centering new samples)
	grand  float64        // grand Gram mean
}

// FitKernelPCA extracts the top-k kernel principal components.
func FitKernelPCA(x *linalg.Matrix, k kernel.Kernel, comps int) (*KernelPCA, error) {
	n := x.Rows
	if n < 2 {
		return nil, errors.New("transform: need at least 2 samples")
	}
	if comps <= 0 || comps > n {
		return nil, errors.New("transform: component count out of range")
	}
	if k == nil {
		k = kernel.RBF{Gamma: 1.0 / float64(x.Cols)}
	}
	gram := kernel.Gram(k, x)

	// Record centering statistics, then center.
	rowMu := make([]float64, n)
	grand := 0.0
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += gram.At(i, j)
		}
		rowMu[i] = s / float64(n)
		grand += s
	}
	grand /= float64(n * n)
	kc := kernel.Center(gram)

	vals, vecs, err := linalg.EigenSym(kc)
	if err != nil {
		return nil, err
	}
	m := &KernelPCA{
		K: k, X: x.Clone(),
		alphas: linalg.NewMatrix(n, comps),
		lambda: make([]float64, comps),
		rowMu:  rowMu, grand: grand,
	}
	for c := 0; c < comps; c++ {
		l := vals[c]
		if l < 1e-12 {
			l = 1e-12
		}
		m.lambda[c] = l / float64(n)
		// Normalize so the feature-space eigenvector has unit norm:
		// alpha = v / sqrt(lambda).
		inv := 1 / math.Sqrt(l)
		for i := 0; i < n; i++ {
			m.alphas.Set(i, c, vecs.At(i, c)*inv)
		}
	}
	return m, nil
}

// TransformVec projects one sample onto the kernel principal components.
func (m *KernelPCA) TransformVec(v []float64) []float64 {
	n := m.X.Rows
	kx := make([]float64, n)
	mu := 0.0
	for i := 0; i < n; i++ {
		kx[i] = m.K.Eval(v, m.X.Row(i))
		mu += kx[i]
	}
	mu /= float64(n)
	// Center the kernel row against the training statistics.
	for i := 0; i < n; i++ {
		kx[i] = kx[i] - m.rowMu[i] - mu + m.grand
	}
	out := make([]float64, m.alphas.Cols)
	for c := range out {
		s := 0.0
		for i := 0; i < n; i++ {
			s += m.alphas.At(i, c) * kx[i]
		}
		out[c] = s
	}
	return out
}

// Transform projects every row of x.
func (m *KernelPCA) Transform(x *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(x.Rows, m.alphas.Cols)
	for i := 0; i < x.Rows; i++ {
		copy(out.Row(i), m.TransformVec(x.Row(i)))
	}
	return out
}

// ExplainedVariance returns the feature-space variance captured per
// component.
func (m *KernelPCA) ExplainedVariance() []float64 {
	return append([]float64(nil), m.lambda...)
}
