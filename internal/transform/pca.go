// Package transform implements the data-transformation methods of the
// paper's Section 2.4: Principal Component Analysis ([22]) for extracting
// uncorrelated components and reducing dimensionality, Independent
// Component Analysis ([23], FastICA) for extracting statistically
// independent components, and whitening. PCA and ICA both "have found
// applications in test data analysis" ([24],[25]) — the customer-return
// screening app projects test measurements into such spaces.
package transform

import (
	"errors"
	"math"

	"repro/internal/linalg"
	"repro/internal/stats"
)

// PCA holds a fitted principal component analysis.
type PCA struct {
	Mean       []float64
	Components *linalg.Matrix // k x d, rows are principal directions
	Variance   []float64      // explained variance per component
}

// FitPCA fits k principal components of the rows of x (k <= d).
func FitPCA(x *linalg.Matrix, k int) (*PCA, error) {
	n, d := x.Rows, x.Cols
	if n < 2 {
		return nil, errors.New("transform: need at least 2 samples")
	}
	if k <= 0 || k > d {
		return nil, errors.New("transform: component count out of range")
	}
	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		linalg.AXPY(1, x.Row(i), mean)
	}
	linalg.ScaleVec(1/float64(n), mean)

	cov := linalg.NewMatrix(d, d)
	for i := 0; i < n; i++ {
		dx := linalg.SubVec(x.Row(i), mean)
		for a := 0; a < d; a++ {
			for b := a; b < d; b++ {
				cov.Set(a, b, cov.At(a, b)+dx[a]*dx[b])
			}
		}
	}
	for a := 0; a < d; a++ {
		for b := 0; b < a; b++ {
			cov.Set(a, b, cov.At(b, a))
		}
	}
	cov = cov.Scale(1 / float64(n-1))

	vals, vecs, err := linalg.EigenSym(cov)
	if err != nil {
		return nil, err
	}
	comp := linalg.NewMatrix(k, d)
	variance := make([]float64, k)
	for c := 0; c < k; c++ {
		vecs.ColInto(c, comp.Row(c))
		v := vals[c]
		if v < 0 {
			v = 0
		}
		variance[c] = v
	}
	return &PCA{Mean: mean, Components: comp, Variance: variance}, nil
}

// Transform projects the rows of x into the component space.
func (p *PCA) Transform(x *linalg.Matrix) *linalg.Matrix {
	k := p.Components.Rows
	out := linalg.NewMatrix(x.Rows, k)
	for i := 0; i < x.Rows; i++ {
		dx := linalg.SubVec(x.Row(i), p.Mean)
		row := out.Row(i)
		for c := 0; c < k; c++ {
			row[c] = linalg.Dot(p.Components.Row(c), dx)
		}
	}
	return out
}

// TransformVec projects one sample.
func (p *PCA) TransformVec(v []float64) []float64 {
	dx := linalg.SubVec(v, p.Mean)
	out := make([]float64, p.Components.Rows)
	for c := range out {
		out[c] = linalg.Dot(p.Components.Row(c), dx)
	}
	return out
}

// InverseVec reconstructs an input-space sample from component scores.
func (p *PCA) InverseVec(scores []float64) []float64 {
	out := linalg.CopyVec(p.Mean)
	for c, s := range scores {
		linalg.AXPY(s, p.Components.Row(c), out)
	}
	return out
}

// ExplainedRatio returns the fraction of total variance captured by each
// kept component (relative to the sum of kept variances when totalVar <= 0).
func (p *PCA) ExplainedRatio(totalVar float64) []float64 {
	if totalVar <= 0 {
		totalVar = stats.Sum(p.Variance)
	}
	out := make([]float64, len(p.Variance))
	if totalVar == 0 {
		return out
	}
	for i, v := range p.Variance {
		out[i] = v / totalVar
	}
	return out
}

// Whiten returns a whitened copy of x: PCA projection scaled so every
// component has unit variance. Used as the ICA preprocessing step.
func Whiten(x *linalg.Matrix) (*linalg.Matrix, *PCA, error) {
	p, err := FitPCA(x, x.Cols)
	if err != nil {
		return nil, nil, err
	}
	z := p.Transform(x)
	for c := 0; c < z.Cols; c++ {
		sd := math.Sqrt(p.Variance[c])
		if sd < 1e-12 {
			sd = 1
		}
		for i := 0; i < z.Rows; i++ {
			z.Set(i, c, z.At(i, c)/sd)
		}
	}
	return z, p, nil
}
