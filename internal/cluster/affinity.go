package cluster

import (
	"math"
	"sort"

	"repro/internal/linalg"
)

// AffinityPropagation clusters by message passing (Frey & Dueck):
// responsibilities and availabilities are exchanged between points until a
// set of exemplars emerges; every point is then assigned to its exemplar.
// preference defaults to the median similarity when NaN is passed; damping
// in (0,1) stabilizes updates. Returns labels (exemplar-indexed, compacted)
// and the exemplar row indices.
func AffinityPropagation(x *linalg.Matrix, preference float64, damping float64, maxIters int) ([]int, []int) {
	n := x.Rows
	if maxIters <= 0 {
		maxIters = 200
	}
	if damping <= 0 || damping >= 1 {
		damping = 0.7
	}
	// Similarities: negative squared distance.
	s := make([][]float64, n)
	var all []float64
	for i := range s {
		s[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			s[i][j] = -linalg.Dist2(x.Row(i), x.Row(j))
			all = append(all, s[i][j])
		}
	}
	if math.IsNaN(preference) {
		sort.Float64s(all)
		if len(all) > 0 {
			preference = all[len(all)/2]
		}
	}
	for i := 0; i < n; i++ {
		s[i][i] = preference
	}

	r := make([][]float64, n)
	a := make([][]float64, n)
	for i := range r {
		r[i] = make([]float64, n)
		a[i] = make([]float64, n)
	}

	for it := 0; it < maxIters; it++ {
		// Responsibilities.
		for i := 0; i < n; i++ {
			// top two of a[i][k] + s[i][k].
			max1, max2, arg1 := math.Inf(-1), math.Inf(-1), -1
			for k := 0; k < n; k++ {
				v := a[i][k] + s[i][k]
				if v > max1 {
					max2 = max1
					max1, arg1 = v, k
				} else if v > max2 {
					max2 = v
				}
			}
			for k := 0; k < n; k++ {
				sub := max1
				if k == arg1 {
					sub = max2
				}
				newR := s[i][k] - sub
				r[i][k] = damping*r[i][k] + (1-damping)*newR
			}
		}
		// Availabilities.
		for k := 0; k < n; k++ {
			sumPos := 0.0
			for i := 0; i < n; i++ {
				if i != k && r[i][k] > 0 {
					sumPos += r[i][k]
				}
			}
			for i := 0; i < n; i++ {
				var newA float64
				if i == k {
					newA = sumPos
				} else {
					v := r[k][k] + sumPos
					if r[i][k] > 0 {
						v -= r[i][k]
					}
					if v > 0 {
						v = 0
					}
					newA = v
				}
				a[i][k] = damping*a[i][k] + (1-damping)*newA
			}
		}
	}

	// Exemplars: points where r(k,k)+a(k,k) > 0.
	var exemplars []int
	for k := 0; k < n; k++ {
		if r[k][k]+a[k][k] > 0 {
			exemplars = append(exemplars, k)
		}
	}
	if len(exemplars) == 0 {
		// Degenerate: everything in one cluster around the best point.
		best, bestV := 0, math.Inf(-1)
		for k := 0; k < n; k++ {
			if v := r[k][k] + a[k][k]; v > bestV {
				best, bestV = k, v
			}
		}
		exemplars = []int{best}
	}
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestS := 0, math.Inf(-1)
		for c, k := range exemplars {
			if s[i][k] > bestS {
				best, bestS = c, s[i][k]
			}
		}
		labels[i] = best
	}
	// Exemplars label themselves.
	for c, k := range exemplars {
		labels[k] = c
	}
	return labels, exemplars
}
