package cluster

import (
	"repro/internal/linalg"
)

// Noise is the DBSCAN label for points in no cluster.
const Noise = -1

// DBSCAN performs density-based clustering: points with at least minPts
// neighbours within eps are core points; clusters are the connected
// components of core points plus their border points. Returns labels with
// Noise (-1) for outliers.
func DBSCAN(x *linalg.Matrix, eps float64, minPts int) []int {
	n := x.Rows
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -2 // unvisited
	}
	eps2 := eps * eps

	neighbors := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if linalg.Dist2(x.Row(i), x.Row(j)) <= eps2 {
				out = append(out, j)
			}
		}
		return out
	}

	cluster := 0
	for i := 0; i < n; i++ {
		if labels[i] != -2 {
			continue
		}
		nb := neighbors(i)
		if len(nb) < minPts {
			labels[i] = Noise
			continue
		}
		labels[i] = cluster
		queue := append([]int(nil), nb...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == Noise {
				labels[j] = cluster // border point
			}
			if labels[j] != -2 {
				continue
			}
			labels[j] = cluster
			nbj := neighbors(j)
			if len(nbj) >= minPts {
				queue = append(queue, nbj...)
			}
		}
		cluster++
	}
	return labels
}

// NumClusters counts the distinct nonnegative labels.
func NumClusters(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		if l >= 0 {
			seen[l] = true
		}
	}
	return len(seen)
}
