package cluster

import (
	"errors"
	"math"

	"repro/internal/linalg"
)

// Linkage selects how agglomerative clustering measures inter-cluster
// distance.
type Linkage int

// Supported linkages.
const (
	SingleLinkage Linkage = iota
	CompleteLinkage
	AverageLinkage
)

// Agglomerative performs bottom-up hierarchical clustering, merging the two
// closest clusters until k remain, and returns the cluster labels.
func Agglomerative(x *linalg.Matrix, k int, link Linkage) ([]int, error) {
	n := x.Rows
	if k <= 0 || k > n {
		return nil, errors.New("cluster: k out of range")
	}
	// Pairwise distances.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			dist[i][j] = linalg.Dist(x.Row(i), x.Row(j))
		}
	}
	// active clusters as index sets.
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	nAlive := n

	clusterDist := func(a, b []int) float64 {
		switch link {
		case SingleLinkage:
			best := math.Inf(1)
			for _, i := range a {
				for _, j := range b {
					if dist[i][j] < best {
						best = dist[i][j]
					}
				}
			}
			return best
		case CompleteLinkage:
			worst := 0.0
			for _, i := range a {
				for _, j := range b {
					if dist[i][j] > worst {
						worst = dist[i][j]
					}
				}
			}
			return worst
		default:
			s := 0.0
			for _, i := range a {
				for _, j := range b {
					s += dist[i][j]
				}
			}
			return s / float64(len(a)*len(b))
		}
	}

	for nAlive > k {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !alive[j] {
					continue
				}
				if d := clusterDist(clusters[i], clusters[j]); d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		alive[bj] = false
		nAlive--
	}

	labels := make([]int, n)
	next := 0
	for i := 0; i < n; i++ {
		if !alive[i] {
			continue
		}
		for _, idx := range clusters[i] {
			labels[idx] = next
		}
		next++
	}
	return labels, nil
}
