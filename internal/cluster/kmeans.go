// Package cluster implements the unsupervised clustering algorithms the
// paper lists as the most widely used data mining methods (Section 2.4):
// K-means(++), agglomerative hierarchical clustering, DBSCAN, mean-shift,
// spectral clustering, and affinity propagation. The DSTC application
// (Figure 10) clusters timing-mismatch paths before rule learning.
package cluster

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// KMeansResult holds a fitted k-means clustering.
type KMeansResult struct {
	Centers *linalg.Matrix
	Labels  []int
	Inertia float64 // total within-cluster squared distance
	Iters   int
	// Trace records the within-cluster SSE after each iteration's
	// assignment step (one entry per iteration). Lloyd's algorithm
	// guarantees the sequence is non-increasing — the convergence
	// invariant the conformance suite (internal/testkit) asserts on
	// every generated clustering.
	Trace []float64
}

// KMeans runs k-means with k-means++ seeding until convergence or maxIters.
func KMeans(rng *rand.Rand, x *linalg.Matrix, k, maxIters int) (*KMeansResult, error) {
	n, d := x.Rows, x.Cols
	if k <= 0 || k > n {
		return nil, errors.New("cluster: k out of range")
	}
	if maxIters <= 0 {
		maxIters = 100
	}
	centers := kmeansPPInit(rng, x, k)
	labels := make([]int, n)
	var trace []float64
	for it := 1; it <= maxIters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				dd := linalg.Dist2(x.Row(i), centers.Row(c))
				if dd < bestD {
					best, bestD = c, dd
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		trace = append(trace, inertia(x, centers, labels))
		// Recompute centers.
		counts := make([]int, k)
		newC := linalg.NewMatrix(k, d)
		for i := 0; i < n; i++ {
			c := labels[i]
			counts[c]++
			linalg.AXPY(1, x.Row(i), newC.Row(c))
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the farthest point.
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					dd := linalg.Dist2(x.Row(i), centers.Row(labels[i]))
					if dd > farD {
						far, farD = i, dd
					}
				}
				copy(newC.Row(c), x.Row(far))
				labels[far] = c
				changed = true
				continue
			}
			linalg.ScaleVec(1/float64(counts[c]), newC.Row(c))
		}
		centers = newC
		if !changed {
			return &KMeansResult{Centers: centers, Labels: labels,
				Inertia: inertia(x, centers, labels), Iters: it, Trace: trace}, nil
		}
	}
	return &KMeansResult{Centers: centers, Labels: labels,
		Inertia: inertia(x, centers, labels), Iters: maxIters, Trace: trace}, nil
}

func inertia(x, centers *linalg.Matrix, labels []int) float64 {
	s := 0.0
	for i := 0; i < x.Rows; i++ {
		s += linalg.Dist2(x.Row(i), centers.Row(labels[i]))
	}
	return s
}

// kmeansPPInit seeds centers with k-means++ (D² sampling).
func kmeansPPInit(rng *rand.Rand, x *linalg.Matrix, k int) *linalg.Matrix {
	n, d := x.Rows, x.Cols
	centers := linalg.NewMatrix(k, d)
	first := rng.Intn(n)
	copy(centers.Row(0), x.Row(first))
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = linalg.Dist2(x.Row(i), centers.Row(0))
	}
	for c := 1; c < k; c++ {
		total := 0.0
		for _, v := range dist {
			total += v
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			for i, v := range dist {
				acc += v
				if r < acc {
					pick = i
					break
				}
			}
		}
		copy(centers.Row(c), x.Row(pick))
		for i := range dist {
			if dd := linalg.Dist2(x.Row(i), centers.Row(c)); dd < dist[i] {
				dist[i] = dd
			}
		}
	}
	return centers
}

// Assign labels each row of x with its nearest center.
func Assign(x, centers *linalg.Matrix) []int {
	labels := make([]int, x.Rows)
	for i := 0; i < x.Rows; i++ {
		best, bestD := 0, math.Inf(1)
		for c := 0; c < centers.Rows; c++ {
			if dd := linalg.Dist2(x.Row(i), centers.Row(c)); dd < bestD {
				best, bestD = c, dd
			}
		}
		labels[i] = best
	}
	return labels
}

// SilhouetteScore returns the mean silhouette coefficient of a labelling —
// a standard internal quality measure in [-1, 1].
func SilhouetteScore(x *linalg.Matrix, labels []int) float64 {
	n := x.Rows
	if n == 0 {
		return 0
	}
	k := 0
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	if k < 2 {
		return 0
	}
	total, counted := 0.0, 0
	for i := 0; i < n; i++ {
		sumByCluster := make([]float64, k)
		countByCluster := make([]int, k)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sumByCluster[labels[j]] += linalg.Dist(x.Row(i), x.Row(j))
			countByCluster[labels[j]]++
		}
		own := labels[i]
		if countByCluster[own] == 0 {
			continue
		}
		a := sumByCluster[own] / float64(countByCluster[own])
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || countByCluster[c] == 0 {
				continue
			}
			if m := sumByCluster[c] / float64(countByCluster[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
