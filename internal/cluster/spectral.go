package cluster

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// Spectral performs normalized spectral clustering (Ng-Jordan-Weiss): build
// an RBF affinity with the given gamma, form the symmetric-normalized
// Laplacian, embed each point with the top-k eigenvectors (row-normalized),
// and run k-means in the embedding. The performance of clustering "largely
// depends on the definition of the learning space" (paper Section 2.4) —
// spectral clustering is the canonical example of learning that space.
func Spectral(rng *rand.Rand, x *linalg.Matrix, k int, gamma float64) ([]int, error) {
	n := x.Rows
	if k <= 0 || k > n {
		return nil, errors.New("cluster: k out of range")
	}
	// Affinity and degree.
	a := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := math.Exp(-gamma * linalg.Dist2(x.Row(i), x.Row(j)))
			a.Set(i, j, w)
			a.Set(j, i, w)
		}
	}
	dinv := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a.At(i, j)
		}
		if s <= 0 {
			s = 1e-12
		}
		dinv[i] = 1 / math.Sqrt(s)
	}
	// Normalized affinity M = D^-1/2 A D^-1/2; its top eigenvectors are the
	// bottom eigenvectors of the normalized Laplacian.
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, dinv[i]*a.At(i, j)*dinv[j])
		}
	}
	vals, vecs, err := linalg.EigenSym(m)
	if err != nil {
		return nil, err
	}
	_ = vals
	// Embedding: top-k eigenvector columns, rows normalized to unit length.
	emb := linalg.NewMatrix(n, k)
	for i := 0; i < n; i++ {
		row := emb.Row(i)
		for c := 0; c < k; c++ {
			row[c] = vecs.At(i, c)
		}
		nrm := linalg.Norm2(row)
		if nrm > 0 {
			linalg.ScaleVec(1/nrm, row)
		}
	}
	res, err := KMeans(rng, emb, k, 100)
	if err != nil {
		return nil, err
	}
	return res.Labels, nil
}
