package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/linalg"
)

// randIndex computes the fraction of point pairs whose co-membership
// matches between the two labelings (Rand index).
func randIndex(a []int, b []float64) float64 {
	n := len(a)
	agree, total := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameA := a[i] == a[j]
			sameB := b[i] == b[j]
			if sameA == sameB {
				agree++
			}
			total++
		}
	}
	return float64(agree) / float64(total)
}

func wellSeparatedBlobs(rng *rand.Rand, k, per int) *dataset.Dataset {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {-10, 5}}
	rows := make([][]float64, 0, k*per)
	y := make([]float64, 0, k*per)
	for c := 0; c < k; c++ {
		for i := 0; i < per; i++ {
			rows = append(rows, []float64{
				centers[c][0] + 0.5*rng.NormFloat64(),
				centers[c][1] + 0.5*rng.NormFloat64(),
			})
			y = append(y, float64(c))
		}
	}
	return dataset.FromRows(rows, y)
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := wellSeparatedBlobs(rng, 3, 40)
	res, err := KMeans(rng, d.X, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ri := randIndex(res.Labels, d.Y); ri < 0.99 {
		t.Fatalf("kmeans rand index %g", ri)
	}
	if res.Inertia <= 0 {
		t.Fatal("inertia should be positive with noise")
	}
	if res.Iters < 1 {
		t.Fatal("iters not recorded")
	}
}

func TestKMeansValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := linalg.NewMatrix(5, 2)
	if _, err := KMeans(rng, x, 0, 10); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans(rng, x, 6, 10); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestKMeansMoreClustersLowerInertia(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := wellSeparatedBlobs(rng, 4, 30)
	r2, _ := KMeans(rng, d.X, 2, 100)
	r8, _ := KMeans(rng, d.X, 8, 100)
	if r8.Inertia >= r2.Inertia {
		t.Fatalf("inertia should fall with k: k2=%g k8=%g", r2.Inertia, r8.Inertia)
	}
}

func TestAssignMatchesTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := wellSeparatedBlobs(rng, 3, 20)
	res, _ := KMeans(rng, d.X, 3, 100)
	labels := Assign(d.X, res.Centers)
	for i := range labels {
		if labels[i] != res.Labels[i] {
			t.Fatal("Assign disagrees with fitted labels")
		}
	}
}

func TestSilhouetteOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := wellSeparatedBlobs(rng, 3, 25)
	good, _ := KMeans(rng, d.X, 3, 100)
	sGood := SilhouetteScore(d.X, good.Labels)
	// Random labels.
	bad := make([]int, d.Len())
	for i := range bad {
		bad[i] = rng.Intn(3)
	}
	sBad := SilhouetteScore(d.X, bad)
	if sGood <= sBad {
		t.Fatalf("silhouette should prefer true structure: %g vs %g", sGood, sBad)
	}
	if sGood < 0.6 {
		t.Fatalf("silhouette too low for separated blobs: %g", sGood)
	}
}

func TestAgglomerativeLinkages(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := wellSeparatedBlobs(rng, 3, 15)
	for _, link := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		labels, err := Agglomerative(d.X, 3, link)
		if err != nil {
			t.Fatal(err)
		}
		if ri := randIndex(labels, d.Y); ri < 0.97 {
			t.Fatalf("linkage %d rand index %g", link, ri)
		}
	}
	if _, err := Agglomerative(d.X, 0, SingleLinkage); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestDBSCANFindsClustersAndNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := wellSeparatedBlobs(rng, 2, 40)
	// Add 3 far-away noise points.
	rows := [][]float64{{100, 100}, {-100, 50}, {60, -80}}
	x := linalg.NewMatrix(d.Len()+3, 2)
	for i := 0; i < d.Len(); i++ {
		copy(x.Row(i), d.Row(i))
	}
	for i, r := range rows {
		copy(x.Row(d.Len()+i), r)
	}
	labels := DBSCAN(x, 2.0, 4)
	if NumClusters(labels) != 2 {
		t.Fatalf("expected 2 clusters, got %d", NumClusters(labels))
	}
	for i := 0; i < 3; i++ {
		if labels[d.Len()+i] != Noise {
			t.Fatalf("outlier %d not labelled noise", i)
		}
	}
}

func TestDBSCANAllNoiseWhenEpsTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := wellSeparatedBlobs(rng, 2, 10)
	labels := DBSCAN(d.X, 1e-9, 3)
	if NumClusters(labels) != 0 {
		t.Fatal("tiny eps should yield only noise")
	}
}

func TestMeanShiftFindsModes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := wellSeparatedBlobs(rng, 3, 30)
	labels, centers := MeanShift(d.X, 3.0, 100)
	if centers.Rows != 3 {
		t.Fatalf("expected 3 modes, got %d", centers.Rows)
	}
	if ri := randIndex(labels, d.Y); ri < 0.97 {
		t.Fatalf("meanshift rand index %g", ri)
	}
}

func TestEstimateBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := wellSeparatedBlobs(rng, 2, 20)
	bw := EstimateBandwidth(d.X, 0.3)
	if bw <= 0 {
		t.Fatalf("bandwidth %g", bw)
	}
	if EstimateBandwidth(linalg.NewMatrix(1, 2), 0.3) != 1 {
		t.Fatal("degenerate bandwidth should default to 1")
	}
}

func TestSpectralSeparatesRings(t *testing.T) {
	// Two concentric rings: k-means fails, spectral succeeds.
	rng := rand.New(rand.NewSource(11))
	n := 60
	x := linalg.NewMatrix(2*n, 2)
	truth := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * rng.Float64()
		x.Set(i, 0, math.Cos(th)+0.05*rng.NormFloat64())
		x.Set(i, 1, math.Sin(th)+0.05*rng.NormFloat64())
		truth[i] = 0
	}
	for i := n; i < 2*n; i++ {
		th := 2 * math.Pi * rng.Float64()
		x.Set(i, 0, 5*math.Cos(th)+0.05*rng.NormFloat64())
		x.Set(i, 1, 5*math.Sin(th)+0.05*rng.NormFloat64())
		truth[i] = 1
	}
	spec, err := Spectral(rng, x, 2, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	km, _ := KMeans(rng, x, 2, 100)
	riSpec := randIndex(spec, truth)
	riKM := randIndex(km.Labels, truth)
	if riSpec < 0.99 {
		t.Fatalf("spectral should separate rings, rand index %g", riSpec)
	}
	if riKM > 0.8 {
		t.Fatalf("kmeans should fail on rings, rand index %g", riKM)
	}
}

func TestAffinityPropagationBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := wellSeparatedBlobs(rng, 3, 15)
	labels, exemplars := AffinityPropagation(d.X, math.NaN(), 0.7, 200)
	if len(exemplars) < 2 || len(exemplars) > 6 {
		t.Fatalf("exemplar count %d", len(exemplars))
	}
	if ri := randIndex(labels, d.Y); ri < 0.9 {
		t.Fatalf("affinity propagation rand index %g", ri)
	}
	// Exemplars label themselves.
	for c, k := range exemplars {
		if labels[k] != c {
			t.Fatal("exemplar not in own cluster")
		}
	}
}

func BenchmarkKMeans300(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	d := wellSeparatedBlobs(rng, 3, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(rng, d.X, 3, 50); err != nil {
			b.Fatal(err)
		}
	}
}
