package cluster

import (
	"sort"

	"repro/internal/linalg"
)

// MeanShift runs mean-shift clustering with a flat kernel of the given
// bandwidth: every point hill-climbs to the mean of its bandwidth
// neighbourhood until convergence, and modes closer than bandwidth/2 merge.
// Returns labels and the mode locations.
func MeanShift(x *linalg.Matrix, bandwidth float64, maxIters int) ([]int, *linalg.Matrix) {
	n, d := x.Rows, x.Cols
	if maxIters <= 0 {
		maxIters = 100
	}
	b2 := bandwidth * bandwidth
	modes := x.Clone()
	for i := 0; i < n; i++ {
		p := linalg.CopyVec(modes.Row(i))
		for it := 0; it < maxIters; it++ {
			mean := make([]float64, d)
			cnt := 0
			for j := 0; j < n; j++ {
				if linalg.Dist2(p, x.Row(j)) <= b2 {
					linalg.AXPY(1, x.Row(j), mean)
					cnt++
				}
			}
			if cnt == 0 {
				break
			}
			linalg.ScaleVec(1/float64(cnt), mean)
			if linalg.Dist2(mean, p) < 1e-12 {
				p = mean
				break
			}
			p = mean
		}
		copy(modes.Row(i), p)
	}

	// Merge modes within bandwidth/2.
	var centers [][]float64
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		m := modes.Row(i)
		found := -1
		for c, ctr := range centers {
			if linalg.Dist(m, ctr) < bandwidth/2 {
				found = c
				break
			}
		}
		if found < 0 {
			centers = append(centers, linalg.CopyVec(m))
			found = len(centers) - 1
		}
		labels[i] = found
	}
	cm := linalg.NewMatrix(len(centers), d)
	for c, ctr := range centers {
		copy(cm.Row(c), ctr)
	}
	return labels, cm
}

// EstimateBandwidth returns a heuristic bandwidth: the mean distance of
// each point to its q-quantile nearest neighbour distance across the set.
func EstimateBandwidth(x *linalg.Matrix, frac float64) float64 {
	n := x.Rows
	if n < 2 {
		return 1
	}
	kth := int(frac * float64(n))
	if kth < 1 {
		kth = 1
	}
	total := 0.0
	dists := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dists[j] = linalg.Dist(x.Row(i), x.Row(j))
		}
		sort.Float64s(dists)
		idx := kth
		if idx >= n {
			idx = n - 1
		}
		total += dists[idx]
	}
	bw := total / float64(n)
	if bw <= 0 {
		bw = 1
	}
	return bw
}
