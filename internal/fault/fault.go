// Package fault is the repository's deterministic fault-injection
// framework: named injection sites threaded through the serving stack
// (and any other path that wants chaos coverage), driven by a seeded
// plan so every chaos run is reproducible byte for byte.
//
// The paper's constraints discussion (Section 5) is blunt about where
// data-mining deployments die: at the boundaries, under noisy inputs
// and broken assumptions, not in the happy path the demo exercised.
// This package makes those boundaries testable. A production code path
// declares an injection site by name (see the Site* constants) and
// calls Check at the boundary; with no plan active that is one atomic
// pointer load and nothing else. A chaos test activates a Plan — per
// site: an error rate, a latency rate and magnitude, and a corruption
// rate, all driven by a per-site math/rand source derived from the
// plan seed — and the same seed replays the exact same fault sequence.
//
// Determinism contract: each site consumes its own random stream in
// call order, independent of every other site. As long as the calls at
// one site happen in a deterministic order (the chaos harness drives
// requests serially; the batcher gives each model a single scoring
// goroutine), two runs with the same plan see identical outcomes at
// every site — which is what lets chaos_e2e_test assert that two runs
// at one seed produce identical observability snapshots.
//
// Every injected outcome is counted through internal/obs under
// fault.<site>.{checks,errors,delays,corruptions}, so a chaos run's
// manifest records exactly how much hostility the stack absorbed.
package fault

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Canonical injection-site names. Sites are just strings — packages may
// mint their own — but the serving stack's sites live here so chaos
// plans, CLIs, and docs agree on the spelling.
const (
	// SiteKernelEval guards the batcher's kernel/scorer evaluation in
	// internal/serve: an injected error fails the whole micro-batch, an
	// injected delay stalls it (respecting the batcher's drain context).
	SiteKernelEval = "serve.kernel_eval"
	// SitePredictDecode guards request-body decoding in POST /predict:
	// errors surface as 500s before the body is read, corruption flips
	// bytes in the body so the JSON decoder sees hostile input.
	SitePredictDecode = "serve.predict_decode"
	// SiteModelDecode guards model.Decode: errors fail the load, and
	// corruption mutates the artifact bytes before parsing — the
	// checksum/validation layer must catch it loudly.
	SiteModelDecode = "model.decode"
	// SiteClusterRoute guards the cluster router's routing step
	// (internal/serve/cluster): an injected error fails the routed
	// request with a retryable 500 before any replica is contacted, an
	// injected delay stalls routing under the request deadline.
	SiteClusterRoute = "cluster.route"
	// SiteClusterReplicaDown simulates a router↔replica partition: the
	// router checks it once per owner replica per request, and an
	// injected error makes that replica unreachable for that request
	// (the router must route around it or answer 503, never hang).
	SiteClusterReplicaDown = "cluster.replica_down"
	// SiteStreamIngest guards the streaming loop's candidate intake
	// (internal/stream): an injected error drops that candidate (counted,
	// never selected, never simulated), an injected delay stalls the
	// intake under the loop context. Checked once per candidate, so the
	// drop pattern is a pure function of the plan seed.
	SiteStreamIngest = "stream.ingest"
	// SiteStreamRetrain guards the streaming loop's model refresh: an
	// injected error aborts that refresh — the previously swapped model
	// keeps serving — and an injected delay stalls the retrain. Checked
	// once per attempted refresh.
	SiteStreamRetrain = "stream.retrain"
)

// ErrInjected is the root of every injected error; match with errors.Is.
var ErrInjected = errors.New("fault: injected error")

// SiteConfig is the fault mix at one site. Rates are probabilities in
// [0, 1] drawn independently per Check call.
type SiteConfig struct {
	ErrRate     float64       // probability Check returns a non-nil Err
	LatencyRate float64       // probability Check returns Delay = Latency
	Latency     time.Duration // the injected delay magnitude
	CorruptRate float64       // probability Check sets Corrupt
}

// Plan is a full chaos configuration: one seed, any number of sites.
type Plan struct {
	Seed  int64
	Sites map[string]SiteConfig
}

// Uniform returns a plan applying one SiteConfig to every named site —
// the shape the CLI chaos flags build.
func Uniform(seed int64, cfg SiteConfig, sites ...string) Plan {
	p := Plan{Seed: seed, Sites: make(map[string]SiteConfig, len(sites))}
	for _, s := range sites {
		p.Sites[s] = cfg
	}
	return p
}

// Outcome is the injection decision for one Check call. The zero
// Outcome (no active plan, or the dice said "behave") injects nothing.
type Outcome struct {
	Err     error         // non-nil: the site must fail with this error
	Delay   time.Duration // positive: the site must stall this long first
	Corrupt bool          // true: the site must corrupt its payload
	salt    uint64        // deterministic per-outcome randomness for CorruptBytes
}

// Wait blocks for the injected delay, honoring ctx so a draining server
// can cancel an injected stall. A zero delay returns immediately.
func (o Outcome) Wait(ctx context.Context) error {
	if o.Delay <= 0 {
		return nil
	}
	t := time.NewTimer(o.Delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CorruptBytes returns data with a deterministic mutation applied when
// the outcome says to corrupt, and data unchanged otherwise. The
// mutation (one flipped byte, position and mask derived from the
// outcome's own random draw) is reproducible per plan seed. The input
// slice is never modified.
func (o Outcome) CorruptBytes(data []byte) []byte {
	if !o.Corrupt || len(data) == 0 {
		return data
	}
	out := make([]byte, len(data))
	copy(out, data)
	h := splitmix64(o.salt)
	pos := int(h % uint64(len(out)))
	mask := byte(splitmix64(h)) | 1 // never a zero mask: the byte always changes
	out[pos] ^= mask
	return out
}

// site is one injection point's live state: its config, its private
// random stream, and its metrics.
type site struct {
	name string
	cfg  SiteConfig

	mu    sync.Mutex
	rng   *rand.Rand
	calls int64

	checks      *obs.Counter
	errors      *obs.Counter
	delays      *obs.Counter
	corruptions *obs.Counter
}

// injector is an activated plan.
type injector struct {
	seed  int64
	sites map[string]*site
}

var active atomic.Pointer[injector]

// siteSeed derives a stable per-site seed so each site has its own
// independent stream: interleaving across sites cannot perturb the
// decisions at any one site.
func siteSeed(planSeed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name)) //nolint:errcheck — fnv never fails
	return planSeed ^ int64(h.Sum64())
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Activate installs the plan globally, replacing any previous plan.
// Site random streams start fresh, so Activate(p); run; Activate(p);
// run replays the identical fault sequence.
func Activate(p Plan) {
	inj := &injector{seed: p.Seed, sites: make(map[string]*site, len(p.Sites))}
	for name, cfg := range p.Sites {
		scope := obs.Scope("fault." + name)
		inj.sites[name] = &site{
			name:        name,
			cfg:         cfg,
			rng:         rand.New(rand.NewSource(siteSeed(p.Seed, name))),
			checks:      scope.Counter("checks"),
			errors:      scope.Counter("errors"),
			delays:      scope.Counter("delays"),
			corruptions: scope.Counter("corruptions"),
		}
	}
	active.Store(inj)
}

// Deactivate removes the active plan. Safe to call when none is active.
func Deactivate() { active.Store(nil) }

// Active reports whether a plan is installed.
func Active() bool { return active.Load() != nil }

// ActiveSites returns the sorted site names of the active plan, or nil.
// Run manifests record this so a chaos run is identifiable from its
// artifact alone.
func ActiveSites() []string {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	out := make([]string, 0, len(inj.sites))
	for name := range inj.sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ServeSites lists the canonical serving-path sites, the default target
// set for the CLIs' chaos flags.
func ServeSites() []string {
	return []string{SiteKernelEval, SiteModelDecode, SitePredictDecode}
}

// ClusterSites lists the cluster-router sites, the default target set
// for cmd/edarouter's chaos flags and the cluster chaos harness.
func ClusterSites() []string {
	return []string{SiteClusterReplicaDown, SiteClusterRoute}
}

// StreamSites lists the streaming-loop sites, the default target set
// for cmd/edaloop's chaos flags and the stream chaos tests.
func StreamSites() []string {
	return []string{SiteStreamIngest, SiteStreamRetrain}
}

// Check rolls the dice at a named site. With no active plan (the
// production default) it is a single atomic load returning the zero
// Outcome. With a plan, it draws error, latency, and corruption
// decisions — always exactly four values from the site's stream, so the
// stream position is a pure function of the call count — and counts
// what it injected.
func Check(name string) Outcome {
	inj := active.Load()
	if inj == nil {
		return Outcome{}
	}
	st, ok := inj.sites[name]
	if !ok {
		return Outcome{}
	}
	return st.draw()
}

func (st *site) draw() Outcome {
	st.mu.Lock()
	st.calls++
	n := st.calls
	// Fixed draw schedule: err, delay, corrupt, salt. Drawing all four
	// unconditionally keeps the stream aligned no matter which rates are
	// zero, so adding latency to a plan never re-rolls its error pattern.
	pErr := st.rng.Float64()
	pDelay := st.rng.Float64()
	pCorrupt := st.rng.Float64()
	salt := st.rng.Uint64()
	st.mu.Unlock()

	var o Outcome
	o.salt = salt
	st.checks.Inc()
	if pErr < st.cfg.ErrRate {
		o.Err = fmt.Errorf("%w at %s (check %d)", ErrInjected, st.name, n)
		st.errors.Inc()
	}
	if pDelay < st.cfg.LatencyRate {
		o.Delay = st.cfg.Latency
		st.delays.Inc()
	}
	if pCorrupt < st.cfg.CorruptRate {
		o.Corrupt = true
		st.corruptions.Inc()
	}
	return o
}
