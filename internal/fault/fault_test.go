package fault

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func testPlan(seed int64) Plan {
	return Plan{Seed: seed, Sites: map[string]SiteConfig{
		"a": {ErrRate: 0.3, LatencyRate: 0.2, Latency: time.Microsecond, CorruptRate: 0.1},
		"b": {ErrRate: 0.05},
	}}
}

// record reduces an outcome to comparable fields.
type record struct {
	err     bool
	delay   time.Duration
	corrupt bool
	salt    uint64
}

func sequence(site string, n int) []record {
	out := make([]record, n)
	for i := range out {
		o := Check(site)
		out[i] = record{o.Err != nil, o.Delay, o.Corrupt, o.salt}
	}
	return out
}

// TestDeterministicReplay: activating the same plan twice replays the
// identical outcome sequence at every site, and a different seed
// produces a different sequence.
func TestDeterministicReplay(t *testing.T) {
	defer Deactivate()

	Activate(testPlan(7))
	runA1 := sequence("a", 500)
	runB1 := sequence("b", 500)

	Activate(testPlan(7))
	runA2 := sequence("a", 500)
	runB2 := sequence("b", 500)

	for i := range runA1 {
		if runA1[i] != runA2[i] {
			t.Fatalf("site a call %d: %+v != %+v (same seed must replay)", i, runA1[i], runA2[i])
		}
		if runB1[i] != runB2[i] {
			t.Fatalf("site b call %d: %+v != %+v (same seed must replay)", i, runB1[i], runB2[i])
		}
	}

	Activate(testPlan(8))
	runA3 := sequence("a", 500)
	same := 0
	for i := range runA1 {
		if runA1[i] == runA3[i] {
			same++
		}
	}
	if same == len(runA1) {
		t.Fatal("seed 7 and seed 8 produced identical sequences")
	}
}

// TestSiteStreamsIndependent: the draws at one site do not depend on
// how many draws other sites consumed in between.
func TestSiteStreamsIndependent(t *testing.T) {
	defer Deactivate()

	Activate(testPlan(11))
	pure := sequence("a", 100)

	Activate(testPlan(11))
	var interleaved []record
	for i := 0; i < 100; i++ {
		o := Check("a")
		interleaved = append(interleaved, record{o.Err != nil, o.Delay, o.Corrupt, o.salt})
		Check("b") // consume the other site's stream between every call
		Check("b")
	}
	for i := range pure {
		if pure[i] != interleaved[i] {
			t.Fatalf("call %d: site a outcome changed when site b was interleaved", i)
		}
	}
}

// TestRates: over many draws the injected fractions approach the
// configured rates.
func TestRates(t *testing.T) {
	defer Deactivate()
	Activate(Plan{Seed: 3, Sites: map[string]SiteConfig{
		"r": {ErrRate: 0.25, LatencyRate: 0.5, Latency: time.Nanosecond, CorruptRate: 0.1},
	}})
	const n = 20000
	var errs, delays, corrupts int
	for i := 0; i < n; i++ {
		o := Check("r")
		if o.Err != nil {
			errs++
		}
		if o.Delay > 0 {
			delays++
		}
		if o.Corrupt {
			corrupts++
		}
	}
	check := func(name string, got int, want float64) {
		frac := float64(got) / n
		if frac < want-0.02 || frac > want+0.02 {
			t.Errorf("%s rate = %.3f, want %.2f±0.02", name, frac, want)
		}
	}
	check("error", errs, 0.25)
	check("delay", delays, 0.5)
	check("corrupt", corrupts, 0.1)
}

// TestInactiveAndUnknownSitesInjectNothing covers the production path.
func TestInactiveAndUnknownSitesInjectNothing(t *testing.T) {
	Deactivate()
	if Active() {
		t.Fatal("Active after Deactivate")
	}
	if o := Check("anything"); o.Err != nil || o.Delay != 0 || o.Corrupt {
		t.Fatalf("inactive Check injected %+v", o)
	}
	Activate(testPlan(1))
	defer Deactivate()
	if o := Check("unknown-site"); o.Err != nil || o.Delay != 0 || o.Corrupt {
		t.Fatalf("unknown site injected %+v", o)
	}
}

// TestInjectedErrorsAreTyped: every injected error unwraps to ErrInjected.
func TestInjectedErrorsAreTyped(t *testing.T) {
	defer Deactivate()
	Activate(Plan{Seed: 1, Sites: map[string]SiteConfig{"e": {ErrRate: 1}}})
	o := Check("e")
	if o.Err == nil {
		t.Fatal("ErrRate=1 did not inject")
	}
	if !errors.Is(o.Err, ErrInjected) {
		t.Fatalf("injected error %v is not ErrInjected", o.Err)
	}
}

// TestCorruptBytes: corruption always changes the bytes, never the
// input slice, and is deterministic per seed.
func TestCorruptBytes(t *testing.T) {
	defer Deactivate()
	Activate(Plan{Seed: 5, Sites: map[string]SiteConfig{"c": {CorruptRate: 1}}})
	data := []byte(`{"payload": true}`)
	orig := append([]byte(nil), data...)

	o1 := Check("c")
	got1 := o1.CorruptBytes(data)
	if bytes.Equal(got1, data) {
		t.Fatal("corruption left the bytes unchanged")
	}
	if !bytes.Equal(data, orig) {
		t.Fatal("CorruptBytes modified its input")
	}

	Activate(Plan{Seed: 5, Sites: map[string]SiteConfig{"c": {CorruptRate: 1}}})
	o2 := Check("c")
	if got2 := o2.CorruptBytes(data); !bytes.Equal(got1, got2) {
		t.Fatal("corruption is not deterministic per seed")
	}

	var none Outcome
	if got := none.CorruptBytes(data); !bytes.Equal(got, data) {
		t.Fatal("non-corrupt outcome changed the bytes")
	}
	if got := o1.CorruptBytes(nil); got != nil {
		t.Fatal("corrupting empty bytes should be a no-op")
	}
}

// TestWaitHonorsContext: an injected stall is cancelable.
func TestWaitHonorsContext(t *testing.T) {
	o := Outcome{Delay: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- o.Wait(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Wait returned nil after cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait ignored the canceled context")
	}
	if err := (Outcome{}).Wait(context.Background()); err != nil {
		t.Fatalf("zero-delay Wait: %v", err)
	}
}

// TestActiveSites: sorted names of the installed plan, recorded by run
// manifests.
func TestActiveSites(t *testing.T) {
	defer Deactivate()
	if got := ActiveSites(); got != nil {
		t.Fatalf("inactive ActiveSites = %v", got)
	}
	Activate(Uniform(1, SiteConfig{ErrRate: 0.1}, "z.site", "a.site", "m.site"))
	got := ActiveSites()
	want := []string{"a.site", "m.site", "z.site"}
	if len(got) != len(want) {
		t.Fatalf("ActiveSites = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ActiveSites = %v, want %v (sorted)", got, want)
		}
	}
}

// TestObsCounters: injections are visible in the metric registry.
func TestObsCounters(t *testing.T) {
	defer Deactivate()
	Activate(Plan{Seed: 2, Sites: map[string]SiteConfig{"metrics.site": {ErrRate: 1}}})
	before := obs.GetCounter("fault.metrics.site.errors").Value()
	checksBefore := obs.GetCounter("fault.metrics.site.checks").Value()
	for i := 0; i < 10; i++ {
		Check("metrics.site")
	}
	if got := obs.GetCounter("fault.metrics.site.errors").Value() - before; got != 10 {
		t.Fatalf("errors counter advanced by %d, want 10", got)
	}
	if got := obs.GetCounter("fault.metrics.site.checks").Value() - checksBefore; got != 10 {
		t.Fatalf("checks counter advanced by %d, want 10", got)
	}
}

// TestConcurrentChecksRaceClean hammers one site from many goroutines —
// the per-site lock must keep the stream internally consistent (run
// under -race by scripts/check.sh). Cross-goroutine ordering is
// explicitly not deterministic; only data-race freedom is asserted.
func TestConcurrentChecksRaceClean(t *testing.T) {
	defer Deactivate()
	Activate(Plan{Seed: 9, Sites: map[string]SiteConfig{"hot": {ErrRate: 0.5, CorruptRate: 0.5}}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				o := Check("hot")
				o.CorruptBytes([]byte{1, 2, 3})
			}
		}()
	}
	// Flip plans concurrently — Activate/Check must not race.
	for i := 0; i < 20; i++ {
		Activate(Plan{Seed: int64(i), Sites: map[string]SiteConfig{"hot": {ErrRate: 0.5}}})
	}
	wg.Wait()
}
