package timing

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func TestTimerDelayDeterministicAndAdditive(t *testing.T) {
	p := &Path{Stages: []Stage{
		{Cell: INV, WireLen: 10, Layer: 1, Fanout: 1},
		{Cell: NAND2, WireLen: 0, Layer: 1, Fanout: 2},
	}}
	want := 12 + 0.8*10 + 18 + 4.0
	if got := TimerDelay(p); math.Abs(got-want) > 1e-9 {
		t.Fatalf("timer delay %g want %g", got, want)
	}
	// Adding a via adds the nominal via delay.
	p.Vias[3] = 2
	if got := TimerDelay(p); math.Abs(got-(want+3)) > 1e-9 {
		t.Fatalf("via delay %g", got)
	}
	// Upper-layer wire is faster.
	a := &Path{Stages: []Stage{{Cell: BUF, WireLen: 20, Layer: 1, Fanout: 1}}}
	b := &Path{Stages: []Stage{{Cell: BUF, WireLen: 20, Layer: 5, Fanout: 1}}}
	if TimerDelay(b) >= TimerDelay(a) {
		t.Fatal("upper layer should be faster per um")
	}
}

func TestSiliconSystematicEffect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := &Path{Block: "blkA", Stages: []Stage{{Cell: INV, WireLen: 5, Layer: 1, Fanout: 1}}}
	p.Vias[3] = 10
	p.Vias[4] = 8
	cfg := SiliconConfig{Via45Extra: 2, Via56Extra: 2, AffectedBlock: "blkA", Noise: 0}
	got := SiliconDelay(rng, p, cfg)
	want := TimerDelay(p) + 2*10 + 2*8
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("silicon %g want %g", got, want)
	}
	// Other blocks unaffected.
	q := *p
	q.Block = "blkB"
	if math.Abs(SiliconDelay(rng, &q, cfg)-TimerDelay(&q)) > 1e-9 {
		t.Fatal("effect leaked to unaffected block")
	}
	// Global speedup shifts down.
	cfg2 := SiliconConfig{GlobalSpeedup: 30}
	if SiliconDelay(rng, p, cfg2) >= TimerDelay(p) {
		t.Fatal("speedup not applied")
	}
}

func TestGeneratePathStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		p := GeneratePath(rng, i, GenConfig{Block: "blk"})
		if len(p.Stages) < 6 || len(p.Stages) > 20 {
			t.Fatalf("stage count %d", len(p.Stages))
		}
		for _, s := range p.Stages {
			if s.Layer < 1 || s.Layer > MetalLayers {
				t.Fatalf("layer %d", s.Layer)
			}
			if s.Fanout < 1 {
				t.Fatal("fanout")
			}
		}
		if p.Block != "blk" || p.ID != i {
			t.Fatal("metadata")
		}
	}
}

func TestViaCountsCorrelateWithHighLayerUse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lowCfg := GenConfig{HighLayerProb: 0.01}
	highCfg := GenConfig{HighLayerProb: 0.8}
	sumVias := func(cfg GenConfig) float64 {
		s := 0.0
		for i := 0; i < 200; i++ {
			p := GeneratePath(rng, i, cfg)
			s += float64(p.Vias[3] + p.Vias[4])
		}
		return s
	}
	if sumVias(highCfg) <= 5*sumVias(lowCfg) {
		t.Fatal("high-layer paths should use far more 4-5/5-6 vias")
	}
}

func TestFeaturesMatchNames(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := GeneratePath(rng, 0, GenConfig{})
	f := Features(p)
	if len(f) != len(FeatureNames) {
		t.Fatalf("feature length %d vs %d names", len(f), len(FeatureNames))
	}
	if f[0] != float64(len(p.Stages)) {
		t.Fatal("stages feature")
	}
	if f[6] != float64(p.Vias[3]) || f[7] != float64(p.Vias[4]) {
		t.Fatal("via features misaligned")
	}
}

func TestMismatchSeparatesAffectedPaths(t *testing.T) {
	// The core DSTC signal: silicon-minus-timer mismatch is larger for
	// via-heavy paths in the affected block.
	rng := rand.New(rand.NewSource(5))
	cfg := SiliconConfig{Via45Extra: 3, Via56Extra: 3, Noise: 2, GlobalSpeedup: 10}
	var viaCounts, mismatches []float64
	for i := 0; i < 300; i++ {
		p := GeneratePath(rng, i, GenConfig{})
		mm := SiliconDelay(rng, p, cfg) - TimerDelay(p)
		viaCounts = append(viaCounts, float64(p.Vias[3]+p.Vias[4]))
		mismatches = append(mismatches, mm)
	}
	if c := stats.Correlation(viaCounts, mismatches); c < 0.8 {
		t.Fatalf("mismatch should correlate with via count: %g", c)
	}
}

func TestCellTypeString(t *testing.T) {
	if INV.String() != "INV" || CellType(99).String() == "" {
		t.Fatal("cell names")
	}
}

func BenchmarkGenerateAndTime(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := GeneratePath(rng, i, GenConfig{})
		_ = TimerDelay(p)
	}
}
