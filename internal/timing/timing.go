// Package timing implements the design-silicon timing correlation (DSTC)
// substrate of the paper's Figure 10 case study ([29]-[31]): synthetic
// netlist paths with per-cell and per-wire delay structure, a static
// "timer" model, and a "silicon" model that adds random variation plus an
// injected systematic effect — extra resistance on layer-4-5 and layer-5-6
// vias, mirroring the metal-layer-5 issue the paper's rule learning
// uncovered. The diagnosis application must rediscover the injected
// mechanism from data alone.
package timing

import (
	"fmt"
	"math/rand"
)

// CellType enumerates the standard cells a path can traverse.
type CellType int

// Cell types with distinct nominal delays.
const (
	INV CellType = iota
	NAND2
	NOR2
	AOI21
	BUF
	DFF
	NumCellTypes
)

var cellNames = [...]string{"INV", "NAND2", "NOR2", "AOI21", "BUF", "DFF"}

// String names the cell type.
func (c CellType) String() string {
	if c < 0 || int(c) >= len(cellNames) {
		return fmt.Sprintf("CELL%d", int(c))
	}
	return cellNames[c]
}

// cellDelay is the nominal cell delay in picoseconds.
var cellDelay = [...]float64{
	INV: 12, NAND2: 18, NOR2: 20, AOI21: 26, BUF: 15, DFF: 35,
}

// MetalLayers is the number of routing layers; vias connect adjacent
// layers (via k joins layer k and k+1, k = 1..MetalLayers-1).
const MetalLayers = 6

// Stage is one cell plus its driven wire segment.
type Stage struct {
	Cell    CellType
	WireLen float64 // wire length in microns on Layer
	Layer   int     // routing layer 1..MetalLayers
	Fanout  int     // loads driven
}

// Path is a timing path: a chain of stages plus via usage between layers.
type Path struct {
	ID     int
	Block  string // design block name
	Stages []Stage
	// Vias[k] counts vias between layer k+1 and k+2 (Vias[3] = layer-4-5
	// vias, Vias[4] = layer-5-6 vias).
	Vias [MetalLayers - 1]int
}

// Delay model constants (ps).
const (
	wireDelayPerUm   = 0.8
	fanoutDelay      = 4.0
	viaDelayNominal  = 1.5
	upperLayerFactor = 0.85 // upper layers are faster per um
)

// TimerDelay is the static timing analysis model: the "predicted" delay
// the signoff timer reports. It knows nominal cell, wire, fanout, and via
// delays but not the silicon-only systematic effect.
func TimerDelay(p *Path) float64 {
	d := 0.0
	for _, s := range p.Stages {
		d += cellDelay[s.Cell]
		w := wireDelayPerUm
		if s.Layer >= 4 {
			w *= upperLayerFactor
		}
		d += w * s.WireLen
		d += fanoutDelay * float64(s.Fanout-1)
	}
	for _, v := range p.Vias {
		d += viaDelayNominal * float64(v)
	}
	return d
}

// SiliconConfig controls the silicon model.
type SiliconConfig struct {
	// Via45Extra / Via56Extra are the injected systematic extra delays per
	// via (ps) — the metal-5 process issue. Zero disables the defect.
	Via45Extra float64
	Via56Extra float64
	// AffectedBlock limits the systematic effect to one design block
	// ("" = all paths), matching the paper's within-block surprise.
	AffectedBlock string
	// GlobalSpeedup shifts every path (process corner), as silicon is
	// normally a bit faster than the pessimistic timer.
	GlobalSpeedup float64
	// Noise is the random per-path sigma (ps).
	Noise float64
}

// SiliconDelay draws the measured silicon delay of a path.
func SiliconDelay(rng *rand.Rand, p *Path, cfg SiliconConfig) float64 {
	d := TimerDelay(p)
	d -= cfg.GlobalSpeedup
	if cfg.AffectedBlock == "" || p.Block == cfg.AffectedBlock {
		d += cfg.Via45Extra * float64(p.Vias[3])
		d += cfg.Via56Extra * float64(p.Vias[4])
	}
	d += cfg.Noise * rng.NormFloat64()
	return d
}

// GenConfig shapes random paths.
type GenConfig struct {
	MinStages, MaxStages int     // default 6..20
	MaxWire              float64 // per-stage wire length cap, default 40um
	HighLayerProb        float64 // probability a stage routes on layers 4-6
	Block                string
}

func (c *GenConfig) defaults() {
	if c.MinStages <= 0 {
		c.MinStages = 6
	}
	if c.MaxStages < c.MinStages {
		c.MaxStages = c.MinStages + 14
	}
	if c.MaxWire <= 0 {
		c.MaxWire = 40
	}
	if c.HighLayerProb <= 0 {
		c.HighLayerProb = 0.35
	}
}

// GeneratePath builds one random path. Stages on upper layers require
// via pairs to climb, so via counts correlate with layer usage — the same
// confound structure a real design exhibits.
func GeneratePath(rng *rand.Rand, id int, cfg GenConfig) *Path {
	cfg.defaults()
	n := cfg.MinStages + rng.Intn(cfg.MaxStages-cfg.MinStages+1)
	p := &Path{ID: id, Block: cfg.Block, Stages: make([]Stage, n)}
	layer := 1
	for i := 0; i < n; i++ {
		target := 1 + rng.Intn(3) // layers 1-3 by default
		if rng.Float64() < cfg.HighLayerProb {
			target = 4 + rng.Intn(3) // climb to 4-6
		}
		// Count vias along the climb/descent.
		for layer < target {
			p.Vias[layer-1]++
			layer++
		}
		for layer > target {
			layer--
			p.Vias[layer-1]++
		}
		cell := CellType(rng.Intn(int(NumCellTypes)))
		p.Stages[i] = Stage{
			Cell:    cell,
			WireLen: rng.Float64() * cfg.MaxWire,
			Layer:   layer,
			Fanout:  1 + rng.Intn(4),
		}
	}
	return p
}

// FeatureNames lists the interpretable path features used by the DSTC rule
// learner — the same kind the paper's feature-based framework used.
var FeatureNames = []string{
	"stages", "total_wire", "max_fanout",
	"via12", "via23", "via34", "via45", "via56",
	"high_layer_wire", "dff_count",
}

// Features extracts the feature vector of a path.
func Features(p *Path) []float64 {
	var totalWire, highWire float64
	maxFan := 0
	dff := 0
	for _, s := range p.Stages {
		totalWire += s.WireLen
		if s.Layer >= 4 {
			highWire += s.WireLen
		}
		if s.Fanout > maxFan {
			maxFan = s.Fanout
		}
		if s.Cell == DFF {
			dff++
		}
	}
	return []float64{
		float64(len(p.Stages)), totalWire, float64(maxFan),
		float64(p.Vias[0]), float64(p.Vias[1]), float64(p.Vias[2]),
		float64(p.Vias[3]), float64(p.Vias[4]),
		highWire, float64(dff),
	}
}
