package multivar

import (
	"errors"
	"math"

	"repro/internal/linalg"
)

// CCA is a fitted canonical correlation analysis between two views X and Y
// (paper Section 2, ref [5]): pairs of directions (a_i, b_i) such that the
// projections Xa_i and Yb_i are maximally correlated, with successive
// pairs uncorrelated with earlier ones.
type CCA struct {
	XMean, YMean []float64
	A            *linalg.Matrix // dx × k canonical directions for X
	B            *linalg.Matrix // dy × k canonical directions for Y
	Corr         []float64      // canonical correlations, descending
}

// FitCCA computes the top-k canonical pairs. reg is a ridge term added to
// both within-view covariances for stability (e.g. 1e-6).
func FitCCA(x, y *linalg.Matrix, k int, reg float64) (*CCA, error) {
	n := x.Rows
	if n != y.Rows {
		return nil, errors.New("multivar: X and Y row mismatch")
	}
	if n < 3 {
		return nil, errors.New("multivar: need at least 3 samples")
	}
	dx, dy := x.Cols, y.Cols
	maxK := dx
	if dy < maxK {
		maxK = dy
	}
	if k <= 0 || k > maxK {
		return nil, errors.New("multivar: component count out of range")
	}
	if reg < 0 {
		reg = 0
	}

	xm := colMeans(x)
	ym := colMeans(y)
	xc := centered(x, xm)
	yc := centered(y, ym)

	// Covariance blocks.
	sxx := xc.T().Mul(xc).Scale(1 / float64(n-1)).AddDiag(reg + 1e-10)
	syy := yc.T().Mul(yc).Scale(1 / float64(n-1)).AddDiag(reg + 1e-10)
	sxy := xc.T().Mul(yc).Scale(1 / float64(n-1))

	// Whitening transforms Sxx^{-1/2}, Syy^{-1/2} via eigendecomposition.
	wx, err := invSqrt(sxx)
	if err != nil {
		return nil, err
	}
	wy, err := invSqrt(syy)
	if err != nil {
		return nil, err
	}
	// M = Sxx^{-1/2} Sxy Syy^{-1/2}; canonical correlations are its
	// singular values.
	m := wx.Mul(sxy).Mul(wy)
	u, s, v, err := linalg.SVDThin(m)
	if err != nil {
		return nil, err
	}

	cca := &CCA{
		XMean: xm, YMean: ym,
		A:    linalg.NewMatrix(dx, k),
		B:    linalg.NewMatrix(dy, k),
		Corr: make([]float64, k),
	}
	uc := make([]float64, u.Rows) // scratch columns reused across components
	vc := make([]float64, v.Rows)
	for c := 0; c < k; c++ {
		corr := s[c]
		if corr > 1 {
			corr = 1
		}
		cca.Corr[c] = corr
		u.ColInto(c, uc)
		v.ColInto(c, vc)
		a := wx.MulVec(uc)
		b := wy.MulVec(vc)
		for j := 0; j < dx; j++ {
			cca.A.Set(j, c, a[j])
		}
		for j := 0; j < dy; j++ {
			cca.B.Set(j, c, b[j])
		}
	}
	return cca, nil
}

// invSqrt returns S^{-1/2} for a symmetric positive definite matrix.
func invSqrt(s *linalg.Matrix) (*linalg.Matrix, error) {
	vals, vecs, err := linalg.EigenSym(s)
	if err != nil {
		return nil, err
	}
	n := s.Rows
	out := linalg.NewMatrix(n, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			acc := 0.0
			for c := 0; c < n; c++ {
				l := vals[c]
				if l < 1e-12 {
					l = 1e-12
				}
				acc += vecs.At(a, c) * vecs.At(b, c) / math.Sqrt(l)
			}
			out.Set(a, b, acc)
		}
	}
	return out, nil
}

// ProjectX maps one x sample to its canonical variates.
func (c *CCA) ProjectX(x []float64) []float64 {
	d := make([]float64, len(x))
	for j := range x {
		d[j] = x[j] - c.XMean[j]
	}
	out := make([]float64, c.A.Cols)
	for k := range out {
		s := 0.0
		for j := range d {
			s += c.A.At(j, k) * d[j]
		}
		out[k] = s
	}
	return out
}

// ProjectY maps one y sample to its canonical variates.
func (c *CCA) ProjectY(y []float64) []float64 {
	d := make([]float64, len(y))
	for j := range y {
		d[j] = y[j] - c.YMean[j]
	}
	out := make([]float64, c.B.Cols)
	for k := range out {
		s := 0.0
		for j := range d {
			s += c.B.At(j, k) * d[j]
		}
		out[k] = s
	}
	return out
}
