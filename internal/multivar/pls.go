// Package multivar implements the multivariate-response methods the paper
// singles out in Section 2 for datasets whose right-hand side is a matrix
// Y rather than a vector: Partial Least Squares regression ("designed for
// regression between two matrices") and Canonical Correlation Analysis
// ("a multivariate correlation analysis applied to a dataset of X and Y",
// ref [5]).
package multivar

import (
	"errors"
	"math"

	"repro/internal/linalg"
)

// PLS is a fitted partial-least-squares regression X → Y with k latent
// components, trained with the NIPALS algorithm on centered data.
type PLS struct {
	K     int
	XMean []float64
	YMean []float64
	W     *linalg.Matrix // x-weights,    dx × k
	P     *linalg.Matrix // x-loadings,   dx × k
	Q     *linalg.Matrix // y-loadings,   dy × k
	B     []float64      // inner regression coefficients per component
}

// FitPLS fits k PLS components. X is n×dx, Y is n×dy with matching n.
func FitPLS(x, y *linalg.Matrix, k int, maxIters int) (*PLS, error) {
	n, dx := x.Rows, x.Cols
	dy := y.Cols
	if n != y.Rows {
		return nil, errors.New("multivar: X and Y row mismatch")
	}
	if n < 2 {
		return nil, errors.New("multivar: need at least 2 samples")
	}
	if k <= 0 || k > dx {
		return nil, errors.New("multivar: component count out of range")
	}
	if maxIters <= 0 {
		maxIters = 200
	}

	xm := colMeans(x)
	ym := colMeans(y)
	e := centered(x, xm) // X residual
	f := centered(y, ym) // Y residual

	m := &PLS{
		K: k, XMean: xm, YMean: ym,
		W: linalg.NewMatrix(dx, k),
		P: linalg.NewMatrix(dx, k),
		Q: linalg.NewMatrix(dy, k),
		B: make([]float64, k),
	}

	uBuf := make([]float64, n) // scratch for the NIPALS seed column, reused per component
	for c := 0; c < k; c++ {
		// NIPALS inner loop: u = first Y column; iterate
		// w ∝ Eᵀu, t = Ew, q ∝ Fᵀt, u = Fq.
		f.ColInto(0, uBuf)
		u := uBuf
		if norm(u) < 1e-12 {
			for i := range u {
				u[i] = 1
			}
		}
		var w, t, q []float64
		for it := 0; it < maxIters; it++ {
			w = matTVec(e, u)
			normalize(w)
			t = e.MulVec(w)
			q = matTVec(f, t)
			normalize(q)
			uNew := f.MulVec(q)
			if vecDist(u, uNew) < 1e-10*(1+norm(uNew)) {
				u = uNew
				break
			}
			u = uNew
		}
		tt := dot(t, t)
		if tt < 1e-12 {
			m.K = c
			break
		}
		// Loadings and inner coefficient.
		p := matTVec(e, t)
		scale(p, 1/tt)
		b := dot(u, t) / tt

		for j := 0; j < dx; j++ {
			m.W.Set(j, c, w[j])
			m.P.Set(j, c, p[j])
		}
		for j := 0; j < dy; j++ {
			m.Q.Set(j, c, q[j])
		}
		m.B[c] = b

		// Deflate.
		for i := 0; i < n; i++ {
			er := e.Row(i)
			fr := f.Row(i)
			for j := 0; j < dx; j++ {
				er[j] -= t[i] * p[j]
			}
			for j := 0; j < dy; j++ {
				fr[j] -= b * t[i] * q[j]
			}
		}
	}
	if m.K == 0 {
		return nil, errors.New("multivar: PLS found no usable component")
	}
	return m, nil
}

// Predict maps one x sample to its predicted y vector.
func (m *PLS) Predict(x []float64) []float64 {
	// Sequential NIPALS prediction: walk components, deflating x.
	e := make([]float64, len(x))
	for j := range x {
		e[j] = x[j] - m.XMean[j]
	}
	y := append([]float64(nil), m.YMean...)
	for c := 0; c < m.K; c++ {
		t := 0.0
		for j := range e {
			t += e[j] * m.W.At(j, c)
		}
		for j := range e {
			e[j] -= t * m.P.At(j, c)
		}
		for j := range y {
			y[j] += m.B[c] * t * m.Q.At(j, c)
		}
	}
	return y
}

// PredictAll predicts every row of x as rows of a new matrix.
func (m *PLS) PredictAll(x *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(x.Rows, len(m.YMean))
	for i := 0; i < x.Rows; i++ {
		copy(out.Row(i), m.Predict(x.Row(i)))
	}
	return out
}

// --- helpers ----------------------------------------------------------

func colMeans(a *linalg.Matrix) []float64 {
	out := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	for j := range out {
		out[j] /= float64(a.Rows)
	}
	return out
}

func centered(a *linalg.Matrix, mean []float64) *linalg.Matrix {
	out := a.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] -= mean[j]
		}
	}
	return out
}

func matTVec(a *linalg.Matrix, v []float64) []float64 {
	out := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		vi := v[i]
		for j := range row {
			out[j] += row[j] * vi
		}
	}
	return out
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func normalize(a []float64) {
	n := norm(a)
	if n > 0 {
		scale(a, 1/n)
	}
}

func scale(a []float64, s float64) {
	for i := range a {
		a[i] *= s
	}
}

func vecDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
