package multivar

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/stats"
)

// makeXY builds a multivariate regression problem Y = X·W + noise.
func makeXY(rng *rand.Rand, n, dx, dy int, noise float64) (x, y, w *linalg.Matrix) {
	x = linalg.NewMatrix(n, dx)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	w = linalg.NewMatrix(dx, dy)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	y = x.Mul(w)
	for i := range y.Data {
		y.Data[i] += noise * rng.NormFloat64()
	}
	return x, y, w
}

func TestPLSRecoversLinearMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y, _ := makeXY(rng, 300, 4, 2, 0.05)
	m, err := FitPLS(x, y, 4, 200)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.PredictAll(x)
	// Per-response R².
	for j := 0; j < y.Cols; j++ {
		truth := y.Col(j)
		p := pred.Col(j)
		ssTot, ssRes := 0.0, 0.0
		mu := stats.Mean(truth)
		for i := range truth {
			ssTot += (truth[i] - mu) * (truth[i] - mu)
			ssRes += (truth[i] - p[i]) * (truth[i] - p[i])
		}
		if r2 := 1 - ssRes/ssTot; r2 < 0.98 {
			t.Fatalf("response %d R2=%.3f", j, r2)
		}
	}
}

func TestPLSFewComponentsOnLowRankData(t *testing.T) {
	// X has 6 columns but Y depends only on a 1-D latent factor:
	// 1 component should capture nearly everything.
	rng := rand.New(rand.NewSource(2))
	n := 400
	x := linalg.NewMatrix(n, 6)
	y := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		f := rng.NormFloat64()
		for j := 0; j < 6; j++ {
			x.Set(i, j, f*float64(j+1)/3+0.1*rng.NormFloat64())
		}
		y.Set(i, 0, 2*f+0.05*rng.NormFloat64())
		y.Set(i, 1, -f+0.05*rng.NormFloat64())
	}
	m, err := FitPLS(x, y, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.PredictAll(x)
	c := stats.Correlation(pred.Col(0), y.Col(0))
	if c < 0.99 {
		t.Fatalf("1-component PLS correlation %.3f", c)
	}
}

func TestPLSValidation(t *testing.T) {
	x := linalg.NewMatrix(5, 2)
	y := linalg.NewMatrix(4, 1)
	if _, err := FitPLS(x, y, 1, 10); err == nil {
		t.Fatal("row mismatch accepted")
	}
	y2 := linalg.NewMatrix(5, 1)
	if _, err := FitPLS(x, y2, 0, 10); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := FitPLS(linalg.NewMatrix(1, 2), linalg.NewMatrix(1, 1), 1, 10); err == nil {
		t.Fatal("single sample accepted")
	}
}

func TestCCAFindsSharedSignal(t *testing.T) {
	// Both views carry a shared latent signal in one direction plus
	// independent noise; the top canonical correlation should be high and
	// the projections should correlate.
	rng := rand.New(rand.NewSource(3))
	n := 500
	x := linalg.NewMatrix(n, 3)
	y := linalg.NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		s := rng.NormFloat64()
		x.Set(i, 0, s+0.3*rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
		x.Set(i, 2, rng.NormFloat64())
		y.Set(i, 0, rng.NormFloat64())
		y.Set(i, 1, -2*s+0.3*rng.NormFloat64())
		y.Set(i, 2, rng.NormFloat64())
	}
	cca, err := FitCCA(x, y, 2, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if cca.Corr[0] < 0.85 {
		t.Fatalf("top canonical correlation %.3f", cca.Corr[0])
	}
	if cca.Corr[1] > cca.Corr[0] {
		t.Fatal("correlations not descending")
	}
	// Empirical correlation of the projected variates matches Corr[0].
	px := make([]float64, n)
	py := make([]float64, n)
	for i := 0; i < n; i++ {
		px[i] = cca.ProjectX(x.Row(i))[0]
		py[i] = cca.ProjectY(y.Row(i))[0]
	}
	emp := math.Abs(stats.Correlation(px, py))
	if math.Abs(emp-cca.Corr[0]) > 0.02 {
		t.Fatalf("projected correlation %.3f vs reported %.3f", emp, cca.Corr[0])
	}
}

func TestCCAIndependentViewsLowCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 600
	x := linalg.NewMatrix(n, 3)
	y := linalg.NewMatrix(n, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	cca, err := FitCCA(x, y, 1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if cca.Corr[0] > 0.3 {
		t.Fatalf("independent views should have low canonical correlation: %.3f", cca.Corr[0])
	}
}

func TestCCAValidation(t *testing.T) {
	x := linalg.NewMatrix(10, 2)
	if _, err := FitCCA(x, linalg.NewMatrix(9, 2), 1, 0); err == nil {
		t.Fatal("row mismatch accepted")
	}
	if _, err := FitCCA(x, linalg.NewMatrix(10, 2), 5, 0); err == nil {
		t.Fatal("k too large accepted")
	}
}
