package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/validate"
)

func TestRunKDLoop(t *testing.T) {
	calls := 0
	res, err := RunKDLoop(5, func(it int) ([]string, bool, error) {
		calls++
		return []string{"finding"}, it == 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 || calls != 3 {
		t.Fatalf("iterations %d calls %d", res.Iterations, calls)
	}
	if len(res.Findings) != 3 || res.Findings[0][0] != "finding" {
		t.Fatal("findings not recorded")
	}
}

func TestRunKDLoopError(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := RunKDLoop(3, func(int) ([]string, bool, error) {
		return nil, false, wantErr
	})
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("error not propagated: %v", err)
	}
	// maxIters <= 0 still runs once.
	res, err := RunKDLoop(0, func(int) ([]string, bool, error) { return nil, false, nil })
	if err != nil || res.Iterations != 1 {
		t.Fatal("zero maxIters should clamp to one iteration")
	}
}

func TestUsageCheck(t *testing.T) {
	ok := UsageCheck{true, true, true, true}
	if !ok.Suitable() {
		t.Fatal("all-yes should be suitable")
	}
	bad := UsageCheck{NoGuaranteeNeeded: false, DataAvailable: true, AddsValue: true, NoExtraBurden: true}
	if bad.Suitable() {
		t.Fatal("guarantee-demanding formulation must be unsuitable")
	}
	if !strings.Contains(bad.String(), "NO") {
		t.Fatalf("render: %s", bad.String())
	}
}

func TestFiveRegressorsAllFitFriedman(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := dataset.Friedman1(rng, 150, 8, 0.5)
	test := dataset.Friedman1(rng, 150, 8, 0.5)
	for _, nr := range FiveRegressors() {
		m, err := nr.Fit(train)
		if err != nil {
			t.Fatalf("%s: %v", nr.Name, err)
		}
		r2 := validate.R2(m.PredictAll(test), test.Y)
		if r2 < 0.2 {
			t.Fatalf("%s: R2=%g too low", nr.Name, r2)
		}
	}
}

func TestStandardClassifiersAllFit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := dataset.TwoGaussians(rng, 60, 3, 4, 1)
	tr, te := d.StratifiedSplit(rng, 0.7)
	for name, fit := range StandardClassifiers(rng) {
		m, err := fit(tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		acc := validate.Accuracy(m.PredictAll(te), te.Y)
		if acc < 0.85 {
			t.Fatalf("%s: accuracy %g", name, acc)
		}
	}
}
