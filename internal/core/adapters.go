package core

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/knn"
	"repro/internal/linear"
	"repro/internal/svm"
	"repro/internal/tree"
)

// FiveRegressors returns the five regressor families of the paper's Fmax
// prediction study ([20]): nearest neighbor, least squares fit, regularized
// LSF (ridge), SVM regression, and Gaussian process.
func FiveRegressors() []NamedRegressor {
	return []NamedRegressor{
		{Name: "kNN", Fit: func(d *dataset.Dataset) (Regressor, error) {
			m, err := knn.Fit(d, 5, nil)
			if err != nil {
				return nil, err
			}
			return knnRegressor{m}, nil
		}},
		{Name: "LSF", Fit: func(d *dataset.Dataset) (Regressor, error) {
			return linear.FitOLS(d)
		}},
		{Name: "ridge", Fit: func(d *dataset.Dataset) (Regressor, error) {
			return linear.FitRidge(d, 1.0)
		}},
		{Name: "SVR", Fit: func(d *dataset.Dataset) (Regressor, error) {
			return svm.FitSVR(d, kernel.RBF{Gamma: 1.0 / float64(d.Dim())},
				svm.SVRConfig{C: 10, Epsilon: 0.1, MaxIters: 30000})
		}},
		{Name: "GP", Fit: func(d *dataset.Dataset) (Regressor, error) {
			return gp.Fit(d, gp.Config{Kernel: kernel.RBF{Gamma: 1.0 / float64(d.Dim())}, Noise: 0.05})
		}},
	}
}

// knnRegressor adapts the kNN model's Regress method to the Regressor
// interface.
type knnRegressor struct{ m *knn.Model }

func (k knnRegressor) Predict(x []float64) float64 { return k.m.Regress(x) }
func (k knnRegressor) PredictAll(d *dataset.Dataset) []float64 {
	return k.m.RegressAll(d)
}

// StandardClassifiers returns ready-made classifier fitters for the
// common families, used by the quickstart example and the survey bench.
func StandardClassifiers(rng *rand.Rand) map[string]ClassifierFitter {
	return map[string]ClassifierFitter{
		"knn": func(d *dataset.Dataset) (Classifier, error) {
			m, err := knn.Fit(d, 5, nil)
			if err != nil {
				return nil, err
			}
			return knnClassifier{m}, nil
		},
		"svc-rbf": func(d *dataset.Dataset) (Classifier, error) {
			return svm.FitSVC(d, kernel.RBF{Gamma: 1.0 / float64(d.Dim())}, svm.SVCConfig{C: 5})
		},
		"tree": func(d *dataset.Dataset) (Classifier, error) {
			return tree.Fit(d, tree.Config{MaxDepth: 8})
		},
		"forest": func(d *dataset.Dataset) (Classifier, error) {
			return tree.FitForest(rng, d, tree.ForestConfig{NTrees: 30, MaxDepth: 10})
		},
		"logistic": func(d *dataset.Dataset) (Classifier, error) {
			return linear.FitLogistic(d, linear.LogisticConfig{Epochs: 300})
		},
	}
}

type knnClassifier struct{ m *knn.Model }

func (k knnClassifier) Predict(x []float64) float64 { return k.m.Classify(x) }
func (k knnClassifier) PredictAll(d *dataset.Dataset) []float64 {
	return k.m.ClassifyAll(d)
}

// Interface conformance checks for the concrete learner types used across
// the applications.
var (
	_ Regressor       = (*linear.Regression)(nil)
	_ Regressor       = (*gp.Regressor)(nil)
	_ Regressor       = (*svm.SVR)(nil)
	_ Classifier      = (*tree.Tree)(nil)
	_ Classifier      = (*tree.Forest)(nil)
	_ Classifier      = (*svm.SVC)(nil)
	_ NoveltyDetector = (*svm.OneClass)(nil)
)
