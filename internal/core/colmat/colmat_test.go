package colmat

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/parallel"
)

// sameBacking reports whether two non-empty slices share a first element.
func sameBacking(a, b []float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	return &a[0] == &b[0]
}

// TestShapeIsolation is the core arena contract: a buffer returned
// under one shape and a buffer leased under any other shape never share
// storage, because each exact shape owns a private arena.
func TestShapeIsolation(t *testing.T) {
	a := Get(7, 5)
	returned := a.Data
	Put(a)
	for _, shape := range [][2]int{{5, 7}, {7, 4}, {8, 5}, {1, 35}, {35, 1}} {
		b := Get(shape[0], shape[1])
		if sameBacking(returned, b.Data) {
			t.Fatalf("buffer returned as 7x5 re-leased as %dx%d with shared backing storage",
				shape[0], shape[1])
		}
		Put(b)
	}
	// The same shape, though, should reuse the returned buffer (pool
	// permitting — GC may clear it, so only assert when it does hit).
	c := Get(7, 5)
	if sameBacking(returned, c.Data) {
		for i, v := range c.Data {
			if v != 0 {
				t.Fatalf("reused buffer not zeroed at %d: %v", i, v)
			}
		}
	}
	Put(c)
}

// TestAliasHammer leases, writes, verifies, and returns buffers of a
// handful of shapes concurrently (width set by REPRO_WORKERS, like
// every parallel path in the repo). Each lease fills its buffer with a
// sentinel unique to the iteration; if any two live leases ever alias,
// or a put buffer is handed out before its next zeroing, the sentinel
// check fails. Run under -race this also proves the arena's internal
// synchronization.
func TestAliasHammer(t *testing.T) {
	shapes := [][2]int{{4, 4}, {4, 8}, {8, 4}, {1, 16}, {16, 16}, {3, 5}}
	const iters = 4000
	parallel.For(iters, func(lo, hi int) {
		for it := lo; it < hi; it++ {
			shape := shapes[it%len(shapes)]
			m := Get(shape[0], shape[1])
			want := float64(it + 1)
			for i := range m.Data {
				m.Data[i] = want
			}
			// Interleave a second lease of a different shape so live
			// leases from distinct arenas coexist on every iteration.
			other := shapes[(it+1)%len(shapes)]
			o := Get(other[0], other[1])
			for i := range o.Data {
				o.Data[i] = -want
			}
			for i, v := range m.Data {
				if v != want {
					t.Errorf("iter %d: lease %dx%d corrupted at %d: got %v want %v",
						it, shape[0], shape[1], i, v, want)
					return
				}
			}
			for i, v := range o.Data {
				if v != -want {
					t.Errorf("iter %d: lease %dx%d corrupted at %d: got %v want %v",
						it, other[0], other[1], i, v, -want)
					return
				}
			}
			Put(o)
			Put(m)
		}
	})
}

// TestPoisonMakesUseAfterPutLoud: with poison on, a caller that
// wrongly retains a slice of a returned buffer reads NaN, not stale
// plausible numbers.
func TestPoisonMakesUseAfterPutLoud(t *testing.T) {
	defer SetPoison(SetPoison(true))
	m := Get(3, 3)
	for i := range m.Data {
		m.Data[i] = 42
	}
	retained := m.Data // the bug under test: retaining across Put
	Put(m)
	for i, v := range retained {
		if !math.IsNaN(v) {
			t.Fatalf("use-after-put at %d read %v, want NaN poison", i, v)
		}
	}
}

// TestGetZeroes: a pooled buffer full of prior garbage comes back
// zeroed, so accumulate-into callers (Mul) are safe on pooled storage.
func TestGetZeroes(t *testing.T) {
	m := Get(6, 6)
	for i := range m.Data {
		m.Data[i] = math.Inf(1)
	}
	Put(m)
	n := Get(6, 6)
	defer Put(n)
	for i, v := range n.Data {
		if v != 0 {
			t.Fatalf("leased buffer not zeroed at %d: %v", i, v)
		}
	}
}

// TestPutInconsistentPanics: a sliced-down or corrupted handle must
// never enter an arena.
func TestPutInconsistentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Put of inconsistent matrix did not panic")
		}
	}()
	m := linalg.NewMatrix(4, 4)
	m.Rows = 3 // header no longer matches storage
	Put(m)
}

// TestVecLease: vector leases behave like 1×n matrices and isolate by
// length.
func TestVecLease(t *testing.T) {
	v := GetVec(9)
	if v.Rows != 1 || v.Cols != 9 || len(v.Data) != 9 {
		t.Fatalf("GetVec(9) = %dx%d with %d elements", v.Rows, v.Cols, len(v.Data))
	}
	data := v.Data
	PutVec(v)
	w := GetVec(10)
	if sameBacking(data, w.Data) {
		t.Fatal("vector leases of different lengths share storage")
	}
	PutVec(w)
}

// TestSteadyStateHits: after a warm-up lease/return cycle, repeated
// same-shape leases are served from the pool, not the allocator.
func TestSteadyStateHits(t *testing.T) {
	Put(Get(13, 11)) // warm the arena
	h0, _, _ := Stats()
	for i := 0; i < 8; i++ {
		Put(Get(13, 11))
	}
	h1, _, _ := Stats()
	if h1-h0 < 6 { // GC may steal a buffer or two; near-all must hit
		t.Fatalf("steady-state leases mostly missed the pool: %d hits in 8 cycles", h1-h0)
	}
}
