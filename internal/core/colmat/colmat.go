// Package colmat is the columnar buffer arena behind the repository's
// zero-allocation numeric hot paths (ROADMAP item 1). Profiles of the
// Gram and batch-score paths show per-call `[]float64` and
// `linalg.Matrix` allocations dominating steady-state cost once the
// parallel layer removed the compute bottleneck; this package removes
// the allocator from those loops.
//
// The design is a set of sync.Pool arenas keyed by exact matrix shape:
//
//   - Get(rows, cols) leases a zeroed flat row-major *linalg.Matrix
//     from the (rows, cols) arena, allocating only on a cold pool.
//   - Put(m) returns the buffer to its shape's arena for reuse.
//
// Keying by *exact* shape — never by capacity — is a correctness
// decision, not a convenience: a buffer re-leased under a different
// shape can never share backing storage with a live lease, because a
// different shape draws from a different arena. The aliasing property
// test in colmat_test.go hammers exactly that contract under -race.
//
// Vectors lease as 1×n matrices (GetVec/PutVec): pooling raw
// `[]float64` through sync.Pool costs one slice-header allocation per
// Put (the interface boxing the issue exists to eliminate), while a
// *linalg.Matrix handle pools allocation-free.
//
// Discipline for callers:
//
//   - A leased buffer is owned until Put; after Put it must never be
//     read or written (enable poison mode in tests to make
//     use-after-put loud).
//   - Never Put a matrix whose Data the caller retains a slice of —
//     return values built on pooled storage must be copied out first.
//   - Buffers handed to callers as results (trained models, persisted
//     matrices) must come from linalg.NewMatrix, not from the arena.
package colmat

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// Arena metrics: hits are leases served from a warm pool (the
// steady-state path, allocation-free), misses are cold allocations,
// puts are returns. hits/(hits+misses) → 1 is the pool doing its job.
var (
	poolHits   = obs.GetCounter("colmat.pool_hits")
	poolMisses = obs.GetCounter("colmat.pool_misses")
	poolPuts   = obs.GetCounter("colmat.pool_puts")
)

// key identifies one shape-specific arena. Exact shape, never rounded
// capacity — see the package comment for why.
type key struct{ rows, cols int }

var (
	mu     sync.RWMutex
	arenas = map[key]*sync.Pool{}
)

// poison, when enabled, fills returned buffers with NaN so any
// use-after-put surfaces as a loud non-finite result instead of a
// silent stale read. Tests enable it; production leaves it off.
var (
	poisonMu sync.RWMutex
	poison   bool
)

// SetPoison toggles poison-on-put and returns the previous setting.
func SetPoison(on bool) bool {
	poisonMu.Lock()
	prev := poison
	poison = on
	poisonMu.Unlock()
	return prev
}

func poisoning() bool {
	poisonMu.RLock()
	p := poison
	poisonMu.RUnlock()
	return p
}

// arenaFor returns the pool for one shape, creating it on first use.
// The double-checked read keeps the steady state on the RLock path,
// which is allocation-free (a struct map key does not box).
func arenaFor(rows, cols int) *sync.Pool {
	k := key{rows, cols}
	mu.RLock()
	p := arenas[k]
	mu.RUnlock()
	if p != nil {
		return p
	}
	mu.Lock()
	defer mu.Unlock()
	if p = arenas[k]; p == nil {
		p = &sync.Pool{}
		arenas[k] = p
	}
	return p
}

// Get leases a zeroed rows×cols matrix from the shape's arena. The
// zeroing makes pooled buffers safe for accumulate-into loops (Mul) and
// guarantees no stale data from a previous lease is ever observable.
func Get(rows, cols int) *linalg.Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("colmat: invalid shape %dx%d", rows, cols))
	}
	p := arenaFor(rows, cols)
	m, _ := p.Get().(*linalg.Matrix)
	if m == nil {
		poolMisses.Inc()
		return linalg.NewMatrix(rows, cols)
	}
	poolHits.Inc()
	clear(m.Data)
	return m
}

// Put returns a leased matrix to its shape's arena. The buffer must not
// be used after Put. Put ignores nil and rejects matrices whose header
// disagrees with their storage (a corrupted or sliced-down handle must
// never enter an arena: handing it back out would alias live data).
func Put(m *linalg.Matrix) {
	if m == nil {
		return
	}
	if len(m.Data) != m.Rows*m.Cols {
		panic(fmt.Sprintf("colmat: Put of inconsistent matrix %dx%d with %d elements",
			m.Rows, m.Cols, len(m.Data)))
	}
	if poisoning() {
		for i := range m.Data {
			m.Data[i] = math.NaN()
		}
	}
	poolPuts.Inc()
	arenaFor(m.Rows, m.Cols).Put(m)
}

// GetVec leases a zeroed length-n vector backed by a pooled 1×n matrix.
// Release it with PutVec, passing back the same handle.
func GetVec(n int) *linalg.Matrix { return Get(1, n) }

// PutVec returns a vector lease obtained from GetVec.
func PutVec(v *linalg.Matrix) { Put(v) }

// Stats reports the arena counters; tests use it to assert the
// steady-state path stays on pool hits.
func Stats() (hits, misses, puts int64) {
	return poolHits.Value(), poolMisses.Value(), poolPuts.Value()
}
