// Package core is the methodology layer — the paper's actual contribution.
// It pins down the shared vocabulary of every application in this
// repository:
//
//   - Learning = Data + Knowledge (paper Section 1): data arrives as a
//     dataset.Dataset or as a kernel over arbitrary sample objects;
//     knowledge is injected either through the kernel (kernel-based
//     learning, Section 2.2) or through the feature definitions
//     (feature-based learning, Section 5).
//   - Uniform learner interfaces so applications can swap algorithm
//     families without touching problem formulation.
//   - The iterative knowledge-discovery loop of Section 5: mine, present,
//     evaluate with domain knowledge, adjust, repeat.
//
// The six packages under internal/apps are problem formulations built on
// this layer, one per paper figure/table.
package core

import (
	"fmt"

	"repro/internal/dataset"
)

// Classifier is a fitted classification model.
type Classifier interface {
	// Predict returns the class label of one sample.
	Predict(x []float64) float64
	// PredictAll labels every row of d.
	PredictAll(d *dataset.Dataset) []float64
}

// Regressor is a fitted regression model.
type Regressor interface {
	// Predict returns the response for one sample.
	Predict(x []float64) float64
	// PredictAll predicts every row of d.
	PredictAll(d *dataset.Dataset) []float64
}

// NoveltyDetector flags samples outside the training support — the usage
// model of the test-selection and customer-return applications.
type NoveltyDetector interface {
	// Decision returns a signed score; negative means novel.
	Decision(x []float64) float64
	// Novel reports whether x is outside the learned support.
	Novel(x []float64) bool
}

// ClassifierFitter builds a classifier from a dataset; implementations
// wrap the algorithm packages so applications can sweep families.
type ClassifierFitter func(d *dataset.Dataset) (Classifier, error)

// RegressorFitter builds a regressor from a dataset.
type RegressorFitter func(d *dataset.Dataset) (Regressor, error)

// NamedRegressor pairs a regressor family with its report name; the §2.4
// five-family regression study ([20]) iterates over these.
type NamedRegressor struct {
	Name string
	Fit  RegressorFitter
}

// KDStep is one iteration of the knowledge-discovery loop: it consumes the
// accumulated evidence, produces human-readable findings, and decides
// whether another iteration is warranted.
type KDStep func(iteration int) (findings []string, done bool, err error)

// KDResult records a finished knowledge-discovery run.
type KDResult struct {
	Iterations int
	Findings   [][]string // findings per iteration
}

// RunKDLoop drives the iterative mining process of paper Section 5 for at
// most maxIters iterations. Each iteration's findings are retained so that
// the final report shows how the understanding evolved — the paper's
// "results from each iteration are evaluated to adjust the mining in the
// next iteration".
func RunKDLoop(maxIters int, step KDStep) (*KDResult, error) {
	if maxIters <= 0 {
		maxIters = 1
	}
	res := &KDResult{}
	for it := 0; it < maxIters; it++ {
		findings, done, err := step(it)
		if err != nil {
			return nil, fmt.Errorf("core: knowledge-discovery iteration %d: %w", it, err)
		}
		res.Findings = append(res.Findings, findings)
		res.Iterations = it + 1
		if done {
			break
		}
	}
	return res, nil
}

// UsageCheck captures the paper's Section 1 criteria for a worthwhile data
// mining methodology. Applications fill it in and reports render it, so
// each experiment states explicitly why (or why not) mining is suitable.
type UsageCheck struct {
	// NoGuaranteeNeeded: the methodology is useful without guaranteed
	// learning results (criterion 1).
	NoGuaranteeNeeded bool
	// DataAvailable: the required data already exists or is cheap
	// (criterion 2).
	DataAvailable bool
	// AddsValue: complements, rather than replaces, existing tools
	// (criterion 3).
	AddsValue bool
	// NoExtraBurden: the flow does not cost the user more effort than
	// solving the problem without it (criterion 4).
	NoExtraBurden bool
}

// Suitable reports whether all four criteria hold. The Figure 12
// cost-reduction case fails criterion 1 — a guaranteed escape bound is
// demanded — which is exactly the paper's difficult case.
func (u UsageCheck) Suitable() bool {
	return u.NoGuaranteeNeeded && u.DataAvailable && u.AddsValue && u.NoExtraBurden
}

// String renders the check.
func (u UsageCheck) String() string {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "NO"
	}
	return fmt.Sprintf("no-guarantee-needed=%s data-available=%s adds-value=%s no-extra-burden=%s => suitable=%v",
		mark(u.NoGuaranteeNeeded), mark(u.DataAvailable), mark(u.AddsValue),
		mark(u.NoExtraBurden), u.Suitable())
}
