// Package imbalance implements dataset rebalancing for skewed class
// distributions (paper Section 2.4, [15]): random oversampling, random
// undersampling, and SMOTE-style synthetic minority oversampling. The
// paper's caveat — "if the imbalance is quite extreme, rebalancing will
// not solve the problem" — is demonstrated by the customer-return
// experiments, which switch to the feature-selection framing of
// internal/featsel instead ([16],[17]).
package imbalance

import (
	"errors"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/linalg"
)

// minorityMajority returns (minority class, majority class) by count, with
// deterministic tie-breaking toward the smaller label.
func minorityMajority(d *dataset.Dataset) (int, int, error) {
	counts := d.ClassCounts()
	if len(counts) != 2 {
		return 0, 0, errors.New("imbalance: binary datasets only")
	}
	classes := d.Classes()
	a, b := classes[0], classes[1]
	if counts[a] <= counts[b] {
		return a, b, nil
	}
	return b, a, nil
}

// Oversample duplicates random minority samples until classes are balanced.
func Oversample(rng *rand.Rand, d *dataset.Dataset) (*dataset.Dataset, error) {
	minC, majC, err := minorityMajority(d)
	if err != nil {
		return nil, err
	}
	var minIdx []int
	idx := make([]int, 0, d.Len())
	for i, y := range d.Y {
		idx = append(idx, i)
		if int(y) == minC {
			minIdx = append(minIdx, i)
		}
	}
	need := d.ClassCounts()[majC] - len(minIdx)
	for k := 0; k < need; k++ {
		idx = append(idx, minIdx[rng.Intn(len(minIdx))])
	}
	return d.Subset(idx), nil
}

// Undersample removes random majority samples until classes are balanced.
func Undersample(rng *rand.Rand, d *dataset.Dataset) (*dataset.Dataset, error) {
	minC, majC, err := minorityMajority(d)
	if err != nil {
		return nil, err
	}
	var minIdx, majIdx []int
	for i, y := range d.Y {
		if int(y) == minC {
			minIdx = append(minIdx, i)
		} else {
			majIdx = append(majIdx, i)
		}
	}
	rng.Shuffle(len(majIdx), func(i, j int) { majIdx[i], majIdx[j] = majIdx[j], majIdx[i] })
	keep := append(append([]int(nil), minIdx...), majIdx[:len(minIdx)]...)
	sort.Ints(keep)
	_ = majC
	return d.Subset(keep), nil
}

// SMOTE synthesizes minority samples by interpolating between each minority
// point and one of its k nearest minority neighbours until balanced.
func SMOTE(rng *rand.Rand, d *dataset.Dataset, k int) (*dataset.Dataset, error) {
	minC, majC, err := minorityMajority(d)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		k = 5
	}
	var minIdx []int
	for i, y := range d.Y {
		if int(y) == minC {
			minIdx = append(minIdx, i)
		}
	}
	if len(minIdx) < 2 {
		return nil, errors.New("imbalance: SMOTE needs at least 2 minority samples")
	}
	if k >= len(minIdx) {
		k = len(minIdx) - 1
	}
	need := d.ClassCounts()[majC] - len(minIdx)
	if need <= 0 {
		return d.Subset(rangeInts(d.Len())), nil
	}

	// Precompute minority-to-minority neighbours.
	nn := make([][]int, len(minIdx))
	for a, ia := range minIdx {
		type nd struct {
			idx int
			d   float64
		}
		ds := make([]nd, 0, len(minIdx)-1)
		for b, ib := range minIdx {
			if a == b {
				continue
			}
			ds = append(ds, nd{ib, linalg.Dist2(d.Row(ia), d.Row(ib))})
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
		nn[a] = make([]int, k)
		for j := 0; j < k; j++ {
			nn[a][j] = ds[j].idx
		}
	}

	total := d.Len() + need
	x := linalg.NewMatrix(total, d.Dim())
	y := make([]float64, total)
	for i := 0; i < d.Len(); i++ {
		copy(x.Row(i), d.Row(i))
		y[i] = d.Y[i]
	}
	for s := 0; s < need; s++ {
		a := rng.Intn(len(minIdx))
		ia := minIdx[a]
		ib := nn[a][rng.Intn(k)]
		t := rng.Float64()
		row := x.Row(d.Len() + s)
		ra, rb := d.Row(ia), d.Row(ib)
		for j := range row {
			row[j] = ra[j] + t*(rb[j]-ra[j])
		}
		y[d.Len()+s] = float64(minC)
	}
	return dataset.MustNew(x, y, d.Names), nil
}

func rangeInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// ImbalanceRatio returns majority/minority count ratio.
func ImbalanceRatio(d *dataset.Dataset) float64 {
	counts := d.ClassCounts()
	minN, maxN := -1, -1
	for _, c := range counts {
		if minN < 0 || c < minN {
			minN = c
		}
		if c > maxN {
			maxN = c
		}
	}
	if minN <= 0 {
		return 0
	}
	return float64(maxN) / float64(minN)
}
