package imbalance

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func skewed(rng *rand.Rand, nMaj, nMin int) *dataset.Dataset {
	rows := make([][]float64, 0, nMaj+nMin)
	y := make([]float64, 0, nMaj+nMin)
	for i := 0; i < nMaj; i++ {
		rows = append(rows, []float64{rng.NormFloat64(), rng.NormFloat64()})
		y = append(y, 0)
	}
	for i := 0; i < nMin; i++ {
		rows = append(rows, []float64{5 + rng.NormFloat64(), 5 + rng.NormFloat64()})
		y = append(y, 1)
	}
	return dataset.FromRows(rows, y)
}

func TestOversampleBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := skewed(rng, 100, 10)
	b, err := Oversample(rng, d)
	if err != nil {
		t.Fatal(err)
	}
	cc := b.ClassCounts()
	if cc[0] != cc[1] {
		t.Fatalf("not balanced: %v", cc)
	}
	if b.Len() != 200 {
		t.Fatalf("size %d", b.Len())
	}
}

func TestUndersampleBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := skewed(rng, 100, 10)
	b, err := Undersample(rng, d)
	if err != nil {
		t.Fatal(err)
	}
	cc := b.ClassCounts()
	if cc[0] != 10 || cc[1] != 10 {
		t.Fatalf("not balanced: %v", cc)
	}
}

func TestSMOTEGeneratesInteriorPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := skewed(rng, 80, 8)
	b, err := SMOTE(rng, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	cc := b.ClassCounts()
	if cc[0] != cc[1] {
		t.Fatalf("not balanced: %v", cc)
	}
	// Synthetic minority points must stay within the minority bounding box
	// (interpolation property).
	loX, hiX := 1e18, -1e18
	for i := 0; i < d.Len(); i++ {
		if d.Y[i] == 1 {
			v := d.Row(i)[0]
			if v < loX {
				loX = v
			}
			if v > hiX {
				hiX = v
			}
		}
	}
	for i := d.Len(); i < b.Len(); i++ {
		if b.Y[i] != 1 {
			t.Fatal("synthetic sample not minority")
		}
		v := b.Row(i)[0]
		if v < loX-1e-9 || v > hiX+1e-9 {
			t.Fatalf("synthetic point outside minority hull: %g not in [%g,%g]", v, loX, hiX)
		}
	}
}

func TestSMOTEValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	one := dataset.FromRows([][]float64{{0}, {1}, {2}}, []float64{0, 0, 1})
	if _, err := SMOTE(rng, one, 3); err == nil {
		t.Fatal("SMOTE should require 2+ minority samples")
	}
	multi := dataset.FromRows([][]float64{{0}, {1}, {2}}, []float64{0, 1, 2})
	if _, err := Oversample(rng, multi); err == nil {
		t.Fatal("multiclass accepted")
	}
}

func TestImbalanceRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := skewed(rng, 90, 9)
	if r := ImbalanceRatio(d); r != 10 {
		t.Fatalf("ratio %g", r)
	}
}
