package bayes

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/validate"
)

func TestKDEClassifiesGaussians(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := dataset.TwoGaussians(rng, 150, 2, 3, 1)
	tr, te := d.StratifiedSplit(rng, 0.7)
	m, err := FitKDE(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc := validate.Accuracy(m.PredictAll(te), te.Y); acc < 0.93 {
		t.Fatalf("KDE accuracy %g", acc)
	}
}

func TestKDEBeatsGaussianOnBimodalClass(t *testing.T) {
	// Class 0 is bimodal (two blobs at ±4); class 1 sits between them at
	// the origin. A single-Gaussian density (QDA) models class 0 as one
	// wide blob centered exactly on class 1 and fails; KDE does not.
	rng := rand.New(rand.NewSource(2))
	n := 200
	rows := make([][]float64, 2*n)
	y := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		off := 4.0
		if i%2 == 0 {
			off = -4.0
		}
		rows[i] = []float64{off + 0.4*rng.NormFloat64(), 0.4 * rng.NormFloat64()}
	}
	for i := n; i < 2*n; i++ {
		rows[i] = []float64{0.4 * rng.NormFloat64(), 0.4 * rng.NormFloat64()}
		y[i] = 1
	}
	d := dataset.FromRows(rows, y)
	kde, err := FitKDE(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	qda, err := FitDiscriminant(d, true)
	if err != nil {
		t.Fatal(err)
	}
	kAcc := validate.Accuracy(kde.PredictAll(d), d.Y)
	qAcc := validate.Accuracy(qda.PredictAll(d), d.Y)
	if kAcc < 0.97 {
		t.Fatalf("KDE accuracy %g on bimodal class", kAcc)
	}
	if kAcc <= qAcc {
		t.Fatalf("KDE (%g) should beat single-Gaussian QDA (%g) on bimodal data", kAcc, qAcc)
	}
}

func TestKDEDensityIntegratesSensibly(t *testing.T) {
	// 1-D KDE density should be higher at the data mode than far away.
	rows := [][]float64{{0}, {0.1}, {-0.1}, {0.05}}
	y := []float64{0, 0, 0, 0}
	m, err := FitKDE(dataset.FromRows(rows, y), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	dMode := m.Density(0, []float64{0})
	dFar := m.Density(0, []float64{5})
	if dMode <= dFar || dFar < 0 {
		t.Fatalf("density ordering wrong: mode=%g far=%g", dMode, dFar)
	}
	if m.Density(99, []float64{0}) != 0 {
		t.Fatal("unknown class should have zero density")
	}
}

func TestKDEValidationAndConstantFeature(t *testing.T) {
	if _, err := FitKDE(dataset.FromRows(nil, nil), 0); err == nil {
		t.Fatal("empty dataset accepted")
	}
	// Constant feature: bandwidth fallback must avoid division by zero.
	rows := [][]float64{{1, 0}, {1, 1}, {1, 0}, {1, 2}}
	m, err := FitKDE(dataset.FromRows(rows, []float64{0, 1, 0, 1}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{1, 0.1}); math.IsNaN(p) {
		t.Fatal("NaN prediction")
	}
}
