package bayes

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/validate"
)

func TestNaiveBayesTwoGaussians(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := dataset.TwoGaussians(rng, 200, 3, 3, 1)
	tr, te := d.StratifiedSplit(rng, 0.7)
	nb, err := FitNaiveBayes(tr)
	if err != nil {
		t.Fatal(err)
	}
	acc := validate.Accuracy(nb.PredictAll(te), te.Y)
	if acc < 0.95 {
		t.Fatalf("naive bayes accuracy %g", acc)
	}
}

func TestNaiveBayesPriors(t *testing.T) {
	// Heavy class imbalance: with identical likelihoods, the prior decides.
	rows := [][]float64{{0}, {0}, {0}, {0}, {0}, {0}, {0}, {0}, {0}, {0.001}}
	y := []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	nb, err := FitNaiveBayes(dataset.FromRows(rows, y))
	if err != nil {
		t.Fatal(err)
	}
	if nb.Predict([]float64{0}) != 0 {
		t.Fatal("prior should favour the majority class")
	}
	lp := nb.LogPosterior([]float64{0})
	if lp[0] <= lp[1] {
		t.Fatal("log posterior ordering wrong")
	}
}

func TestNaiveBayesEmpty(t *testing.T) {
	if _, err := FitNaiveBayes(dataset.FromRows(nil, nil)); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if _, err := FitDiscriminant(dataset.FromRows(nil, nil), false); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestLDAAccuracyAndDecisionSign(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := dataset.TwoGaussians(rng, 200, 2, 3, 1)
	m, err := FitDiscriminant(d, false)
	if err != nil {
		t.Fatal(err)
	}
	acc := validate.Accuracy(m.PredictAll(d), d.Y)
	if acc < 0.95 {
		t.Fatalf("LDA accuracy %g", acc)
	}
	// Eq. 1 decision: positive for class Classes[0] region.
	neg := []float64{-3, -3} // class 0 center is at -1.5 each axis
	pos := []float64{3, 3}
	if m.Decision(neg) <= 0 {
		t.Fatal("Decision should be positive near class 0")
	}
	if m.Decision(pos) >= 0 {
		t.Fatal("Decision should be negative near class 1")
	}
}

func TestQDAHandlesUnequalCovariances(t *testing.T) {
	// Class 0: tight blob at origin. Class 1: wide shell around it.
	// LDA (shared covariance) cannot express this; QDA can.
	rng := rand.New(rand.NewSource(3))
	n := 300
	rows := make([][]float64, 2*n)
	y := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		rows[i] = []float64{0.3 * rng.NormFloat64(), 0.3 * rng.NormFloat64()}
		y[i] = 0
	}
	for i := n; i < 2*n; i++ {
		rows[i] = []float64{3 * rng.NormFloat64(), 3 * rng.NormFloat64()}
		y[i] = 1
	}
	d := dataset.FromRows(rows, y)
	qda, err := FitDiscriminant(d, true)
	if err != nil {
		t.Fatal(err)
	}
	lda, err := FitDiscriminant(d, false)
	if err != nil {
		t.Fatal(err)
	}
	qAcc := validate.Accuracy(qda.PredictAll(d), d.Y)
	lAcc := validate.Accuracy(lda.PredictAll(d), d.Y)
	if qAcc < 0.85 {
		t.Fatalf("QDA accuracy %g", qAcc)
	}
	if qAcc <= lAcc {
		t.Fatalf("QDA (%g) should beat LDA (%g) on unequal covariances", qAcc, lAcc)
	}
}

func TestDiscriminantMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := dataset.Blobs(rng, 3, 100, 2, 6, 0.5)
	m, err := FitDiscriminant(d, false)
	if err != nil {
		t.Fatal(err)
	}
	acc := validate.Accuracy(m.PredictAll(d), d.Y)
	if acc < 0.95 {
		t.Fatalf("multiclass LDA accuracy %g", acc)
	}
}

func TestDecisionRequiresBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := dataset.Blobs(rng, 3, 30, 2, 6, 0.5)
	m, _ := FitDiscriminant(d, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for multiclass Decision")
		}
	}()
	m.Decision([]float64{0, 0})
}

func TestNaiveBayesConstantFeature(t *testing.T) {
	// A zero-variance feature must not produce NaNs.
	rows := [][]float64{{1, 0}, {1, 1}, {1, 0}, {1, 5}}
	y := []float64{0, 1, 0, 1}
	nb, err := FitNaiveBayes(dataset.FromRows(rows, y))
	if err != nil {
		t.Fatal(err)
	}
	lp := nb.LogPosterior([]float64{1, 0.4})
	for _, v := range lp {
		if math.IsNaN(v) {
			t.Fatal("NaN log posterior with constant feature")
		}
	}
}

func TestLDADecisionIsLinearInX(t *testing.T) {
	// With a pooled covariance, Eq.1's quadratic terms cancel: the decision
	// along any line should be an affine function. Check three collinear
	// points: D(mid) == (D(a)+D(b))/2.
	rng := rand.New(rand.NewSource(6))
	d := dataset.TwoGaussians(rng, 150, 2, 3, 1)
	m, _ := FitDiscriminant(d, false)
	a := []float64{-2, 1}
	b := []float64{2, -1}
	mid := []float64{0, 0}
	got := m.Decision(mid)
	want := (m.Decision(a) + m.Decision(b)) / 2
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("LDA decision not affine: %g vs %g", got, want)
	}
	_ = linalg.Dot // keep import if unused elsewhere
}

func BenchmarkNaiveBayesPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	d := dataset.TwoGaussians(rng, 500, 10, 3, 1)
	nb, _ := FitNaiveBayes(d)
	q := d.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nb.Predict(q)
	}
}
