package bayes

import (
	"errors"
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// KDE is a kernel-density-estimate classifier — the paper's Section 2.1
// note that class-density estimation "can be more general than assuming a
// normal distribution": each class density is a Parzen window estimate
// with a Gaussian product kernel, and prediction follows the same Bayes
// log-ratio as Discriminant.
type KDE struct {
	Classes   []int
	prior     []float64 // log priors
	samples   [][][]float64
	bandwidth []float64 // per-feature bandwidth (shared across classes)
}

// FitKDE stores per-class samples and picks per-feature bandwidths with
// Scott's rule (h_j = sigma_j * n^(-1/(d+4))); bandwidth <= 0 selects the
// rule, a positive value overrides it for every feature.
func FitKDE(d *dataset.Dataset, bandwidth float64) (*KDE, error) {
	if d.Len() == 0 {
		return nil, errors.New("bayes: empty dataset")
	}
	classes := d.Classes()
	m := &KDE{Classes: classes}
	m.prior = make([]float64, len(classes))
	m.samples = make([][][]float64, len(classes))
	for ci, c := range classes {
		for i, y := range d.Y {
			if int(y) == c {
				row := make([]float64, d.Dim())
				copy(row, d.Row(i))
				m.samples[ci] = append(m.samples[ci], row)
			}
		}
		m.prior[ci] = math.Log(float64(len(m.samples[ci])) / float64(d.Len()))
	}
	m.bandwidth = make([]float64, d.Dim())
	factor := math.Pow(float64(d.Len()), -1.0/float64(d.Dim()+4))
	col := make([]float64, d.Len()) // one scratch column reused across features
	for j := 0; j < d.Dim(); j++ {
		if bandwidth > 0 {
			m.bandwidth[j] = bandwidth
			continue
		}
		d.ColInto(j, col)
		sd := stats.StdDev(col)
		if sd < 1e-9 {
			sd = 1e-9
		}
		m.bandwidth[j] = sd * factor
	}
	return m, nil
}

// logDensity returns log( prior * KDE(x | class ci) ).
func (m *KDE) logDensity(ci int, x []float64) float64 {
	n := len(m.samples[ci])
	if n == 0 {
		return math.Inf(-1)
	}
	// log-sum-exp over sample kernels for numerical stability.
	maxLog := math.Inf(-1)
	logs := make([]float64, n)
	for s, xi := range m.samples[ci] {
		lp := 0.0
		for j, v := range x {
			z := (v - xi[j]) / m.bandwidth[j]
			lp += -0.5*z*z - math.Log(m.bandwidth[j]) - 0.5*math.Log(2*math.Pi)
		}
		logs[s] = lp
		if lp > maxLog {
			maxLog = lp
		}
	}
	sum := 0.0
	for _, lp := range logs {
		sum += math.Exp(lp - maxLog)
	}
	return m.prior[ci] + maxLog + math.Log(sum/float64(n))
}

// Predict returns the MAP class under the KDE densities.
func (m *KDE) Predict(x []float64) float64 {
	best, bestV := 0, math.Inf(-1)
	for ci := range m.Classes {
		if v := m.logDensity(ci, x); v > bestV {
			best, bestV = ci, v
		}
	}
	return float64(m.Classes[best])
}

// PredictAll predicts every row of d.
func (m *KDE) PredictAll(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = m.Predict(d.Row(i))
	}
	return out
}

// Density returns the (non-log) estimated density of x under class c's
// KDE, for novelty-detection style use.
func (m *KDE) Density(c int, x []float64) float64 {
	for ci, cc := range m.Classes {
		if cc == c {
			return math.Exp(m.logDensity(ci, x) - m.prior[ci])
		}
	}
	return 0
}
