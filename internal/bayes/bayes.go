// Package bayes implements the probability-based learners of Section 2.1 of
// the paper: Gaussian naive Bayes (idea 4 — the Bayes rule with mutually
// independent features) and Gaussian discriminant analysis (idea 3 —
// density estimation per class with the log-ratio decision function of the
// paper's Equation 1), in both linear (shared covariance, LDA) and
// quadratic (per-class covariance, QDA) forms.
package bayes

import (
	"errors"
	"math"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// NaiveBayes is a fitted Gaussian naive Bayes classifier.
type NaiveBayes struct {
	Classes []int
	Prior   []float64   // log prior per class
	Mean    [][]float64 // per class, per feature
	Std     [][]float64 // per class, per feature
}

// FitNaiveBayes estimates per-class feature means/stds and class priors.
func FitNaiveBayes(d *dataset.Dataset) (*NaiveBayes, error) {
	if d.Len() == 0 {
		return nil, errors.New("bayes: empty dataset")
	}
	classes := d.Classes()
	nb := &NaiveBayes{
		Classes: classes,
		Prior:   make([]float64, len(classes)),
		Mean:    make([][]float64, len(classes)),
		Std:     make([][]float64, len(classes)),
	}
	for ci, c := range classes {
		var idx []int
		for i, v := range d.Y {
			if int(v) == c {
				idx = append(idx, i)
			}
		}
		sub := d.Subset(idx)
		nb.Prior[ci] = math.Log(float64(len(idx)) / float64(d.Len()))
		nb.Mean[ci] = make([]float64, d.Dim())
		nb.Std[ci] = make([]float64, d.Dim())
		col := make([]float64, sub.Len())
		for j := 0; j < d.Dim(); j++ {
			sub.X.ColInto(j, col)
			nb.Mean[ci][j] = stats.Mean(col)
			s := stats.StdDev(col)
			if s < 1e-9 {
				s = 1e-9
			}
			nb.Std[ci][j] = s
		}
	}
	return nb, nil
}

// LogPosterior returns the unnormalized log posterior of each class.
func (nb *NaiveBayes) LogPosterior(x []float64) []float64 {
	out := make([]float64, len(nb.Classes))
	for ci := range nb.Classes {
		lp := nb.Prior[ci]
		for j, v := range x {
			lp += stats.NormalLogPDF(v, nb.Mean[ci][j], nb.Std[ci][j])
		}
		out[ci] = lp
	}
	return out
}

// Predict returns the MAP class.
func (nb *NaiveBayes) Predict(x []float64) float64 {
	lp := nb.LogPosterior(x)
	return float64(nb.Classes[stats.ArgMax(lp)])
}

// PredictAll predicts every row of d.
func (nb *NaiveBayes) PredictAll(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = nb.Predict(d.Row(i))
	}
	return out
}

// Discriminant is a fitted Gaussian discriminant-analysis classifier.
// When Quadratic is false a pooled covariance is used (LDA); otherwise each
// class keeps its own covariance (QDA). The decision follows paper Eq. 1:
// D(x) = log P(x|N(mu1,S1)) - log P(x|N(mu2,S2)) (+ log prior ratio).
type Discriminant struct {
	Classes   []int
	Quadratic bool
	prior     []float64 // log priors
	mean      [][]float64
	invCov    []*linalg.Matrix // per class (QDA) or length 1 (LDA)
	logDet    []float64
}

// FitDiscriminant estimates the Gaussian class densities.
func FitDiscriminant(d *dataset.Dataset, quadratic bool) (*Discriminant, error) {
	if d.Len() == 0 {
		return nil, errors.New("bayes: empty dataset")
	}
	classes := d.Classes()
	p := d.Dim()
	m := &Discriminant{Classes: classes, Quadratic: quadratic}
	m.prior = make([]float64, len(classes))
	m.mean = make([][]float64, len(classes))

	covs := make([]*linalg.Matrix, len(classes))
	counts := make([]int, len(classes))
	for ci, c := range classes {
		var idx []int
		for i, v := range d.Y {
			if int(v) == c {
				idx = append(idx, i)
			}
		}
		counts[ci] = len(idx)
		m.prior[ci] = math.Log(float64(len(idx)) / float64(d.Len()))
		mean := make([]float64, p)
		for _, i := range idx {
			linalg.AXPY(1, d.Row(i), mean)
		}
		linalg.ScaleVec(1/float64(len(idx)), mean)
		m.mean[ci] = mean
		cov := linalg.NewMatrix(p, p)
		for _, i := range idx {
			dx := linalg.SubVec(d.Row(i), mean)
			for a := 0; a < p; a++ {
				for b := 0; b < p; b++ {
					cov.Set(a, b, cov.At(a, b)+dx[a]*dx[b])
				}
			}
		}
		denom := float64(len(idx) - 1)
		if denom < 1 {
			denom = 1
		}
		covs[ci] = cov.Scale(1 / denom).AddDiag(1e-6)
	}

	if quadratic {
		m.invCov = make([]*linalg.Matrix, len(classes))
		m.logDet = make([]float64, len(classes))
		for ci := range classes {
			l, err := linalg.Cholesky(covs[ci])
			if err != nil {
				return nil, err
			}
			m.logDet[ci] = linalg.CholLogDet(l)
			inv, err := linalg.Inverse(covs[ci])
			if err != nil {
				return nil, err
			}
			m.invCov[ci] = inv
		}
		return m, nil
	}

	// LDA: pool covariances weighted by class counts.
	pooled := linalg.NewMatrix(p, p)
	total := 0
	for ci := range classes {
		w := float64(counts[ci] - 1)
		if w < 1 {
			w = 1
		}
		pooled = pooled.Add(covs[ci].Scale(w))
		total += counts[ci]
	}
	pooled = pooled.Scale(1 / float64(total-len(classes)))
	pooled.AddDiag(1e-6)
	l, err := linalg.Cholesky(pooled)
	if err != nil {
		return nil, err
	}
	inv, err := linalg.Inverse(pooled)
	if err != nil {
		return nil, err
	}
	m.invCov = []*linalg.Matrix{inv}
	m.logDet = []float64{linalg.CholLogDet(l)}
	return m, nil
}

// logDensity returns log N(x; mu_ci, Sigma_ci) + log prior_ci.
func (m *Discriminant) logDensity(ci int, x []float64) float64 {
	inv := m.invCov[0]
	ld := m.logDet[0]
	if m.Quadratic {
		inv = m.invCov[ci]
		ld = m.logDet[ci]
	}
	dx := linalg.SubVec(x, m.mean[ci])
	q := linalg.Dot(dx, inv.MulVec(dx))
	p := float64(len(x))
	return m.prior[ci] - 0.5*(q+ld+p*math.Log(2*math.Pi))
}

// Decision returns the paper's Eq. 1 log-ratio for binary problems:
// positive means class Classes[0] is more likely.
func (m *Discriminant) Decision(x []float64) float64 {
	if len(m.Classes) != 2 {
		panic("bayes: Decision requires a binary problem")
	}
	return m.logDensity(0, x) - m.logDensity(1, x)
}

// Predict returns the MAP class.
func (m *Discriminant) Predict(x []float64) float64 {
	best, bestV := 0, math.Inf(-1)
	for ci := range m.Classes {
		if v := m.logDensity(ci, x); v > bestV {
			best, bestV = ci, v
		}
	}
	return float64(m.Classes[best])
}

// PredictAll predicts every row of d.
func (m *Discriminant) PredictAll(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = m.Predict(d.Row(i))
	}
	return out
}
