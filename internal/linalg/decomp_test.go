package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 5, 12} {
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := l.Mul(l.T())
		if diff := rec.Sub(a).MaxAbs(); diff > 1e-8*(1+a.MaxAbs()) {
			t.Fatalf("n=%d: reconstruction error %g", n, diff)
		}
		// Lower triangular check.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("upper part nonzero at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected failure for indefinite matrix")
	}
	if _, err := Cholesky(FromRows([][]float64{{1, 2, 3}})); err == nil {
		t.Fatal("expected failure for non-square")
	}
}

func TestCholSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPD(rng, 8)
	xTrue := randomVec(rng, 8)
	b := a.MulVec(xTrue)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		approx(t, x[i], xTrue[i], 1e-6, "SolveSPD")
	}
}

func TestCholLogDet(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, CholLogDet(l), math.Log(36), 1e-10, "logdet")
}

func TestLUSolveAndDet(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomMatrix(rng, 7, 7)
	xTrue := randomVec(rng, 7)
	b := a.MulVec(xTrue)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		approx(t, x[i], xTrue[i], 1e-8, "Solve")
	}
	// Determinant sanity on a known matrix.
	k := FromRows([][]float64{{2, 0}, {0, 3}})
	f, err := NewLU(k)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, f.Det(), 6, 1e-12, "Det")
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 1}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, 5, 5).AddDiag(3)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	if diff := prod.Sub(Identity(5)).MaxAbs(); diff > 1e-8 {
		t.Fatalf("A*A^-1 != I, err=%g", diff)
	}
}

func TestQROrthonormalAndReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomMatrix(rng, 10, 4)
	q, r, err := QR(a)
	if err != nil {
		t.Fatal(err)
	}
	qtq := q.T().Mul(q)
	if diff := qtq.Sub(Identity(4)).MaxAbs(); diff > 1e-10 {
		t.Fatalf("QᵀQ != I, err=%g", diff)
	}
	rec := q.Mul(r)
	if diff := rec.Sub(a).MaxAbs(); diff > 1e-10 {
		t.Fatalf("QR != A, err=%g", diff)
	}
	// R upper-triangular.
	for i := 0; i < 4; i++ {
		for j := 0; j < i; j++ {
			if math.Abs(r.At(i, j)) > 1e-12 {
				t.Fatalf("R not upper triangular at (%d,%d)", i, j)
			}
		}
	}
}

func TestLstSqRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomMatrix(rng, 50, 3)
	w := []float64{1.5, -2.0, 0.25}
	b := a.MulVec(w)
	got, err := LstSq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		approx(t, got[i], w[i], 1e-8, "LstSq exact")
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i := range want {
		approx(t, vals[i], want[i], 1e-10, "eigenvalues sorted desc")
	}
	// Eigenvector of the top value should be e0.
	v0 := vecs.Col(0)
	if math.Abs(math.Abs(v0[0])-1) > 1e-8 {
		t.Fatalf("top eigenvector %v", v0)
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{2, 4, 9} {
		a := randomSPD(rng, n)
		vals, vecs, err := EigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		// A v_i = lambda_i v_i.
		for i := 0; i < n; i++ {
			v := vecs.Col(i)
			av := a.MulVec(v)
			for j := range v {
				approx(t, av[j], vals[i]*v[j], 1e-6*(1+a.MaxAbs()), "Av=lv")
			}
		}
		// Orthonormality.
		vtv := vecs.T().Mul(vecs)
		if diff := vtv.Sub(Identity(n)).MaxAbs(); diff > 1e-8 {
			t.Fatalf("VᵀV != I: %g", diff)
		}
		// Trace preserved.
		sum := 0.0
		for _, l := range vals {
			sum += l
		}
		approx(t, sum, a.Trace(), 1e-6*(1+math.Abs(a.Trace())), "trace")
	}
}

func TestEigenSymRejectsAsymmetric(t *testing.T) {
	if _, _, err := EigenSym(FromRows([][]float64{{1, 2}, {0, 1}})); err == nil {
		t.Fatal("expected asymmetric rejection")
	}
}

func TestSVDThin(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, shape := range [][2]int{{8, 3}, {3, 8}, {5, 5}} {
		a := randomMatrix(rng, shape[0], shape[1])
		u, s, v, err := SVDThin(a)
		if err != nil {
			t.Fatal(err)
		}
		k := len(s)
		// Reconstruct A = U diag(s) Vᵀ.
		us := NewMatrix(u.Rows, k)
		for i := 0; i < u.Rows; i++ {
			for j := 0; j < k; j++ {
				us.Set(i, j, u.At(i, j)*s[j])
			}
		}
		rec := us.Mul(v.T())
		if diff := rec.Sub(a).MaxAbs(); diff > 1e-6 {
			t.Fatalf("shape %v: SVD reconstruction error %g", shape, diff)
		}
		// Singular values nonneg descending.
		for i := 1; i < k; i++ {
			if s[i] > s[i-1]+1e-10 {
				t.Fatalf("singular values not descending: %v", s)
			}
		}
		if s[k-1] < -1e-12 {
			t.Fatalf("negative singular value: %v", s)
		}
	}
}

func TestPowerIteration(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	lambda, v := PowerIteration(a, nil, 200)
	// Exact top eigenvalue of [[4,1],[1,3]] is (7+sqrt(5))/2.
	approx(t, lambda, (7+math.Sqrt(5))/2, 1e-8, "power iteration eigenvalue")
	av := a.MulVec(v)
	for i := range v {
		approx(t, av[i], lambda*v[i], 1e-6, "power iteration vector")
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 64, 64)
	c := randomMatrix(rng, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Mul(c)
	}
}

func BenchmarkCholesky64(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := randomSPD(rng, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenSym32(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigenSym(a); err != nil {
			b.Fatal(err)
		}
	}
}
