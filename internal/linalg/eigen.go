package linalg

import (
	"errors"
	"math"
	"sort"
)

// EigenSym computes all eigenvalues and eigenvectors of a symmetric matrix
// using the cyclic Jacobi method. It returns eigenvalues in descending order
// and a matrix whose columns are the corresponding orthonormal eigenvectors.
func EigenSym(a *Matrix) (values []float64, vectors *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, errors.New("linalg: EigenSym requires a square matrix")
	}
	n := a.Rows
	if !a.IsSymmetric(1e-8 * (1 + a.MaxAbs())) {
		return nil, nil, errors.New("linalg: EigenSym requires a symmetric matrix")
	}
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if math.Sqrt(2*off) <= 1e-12*(1+w.MaxAbs()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				// Compute rotation.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply rotation J(p,q,theta): W = Jᵀ W J.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Extract and sort descending.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })
	values = make([]float64, n)
	vectors = NewMatrix(n, n)
	for c, p := range pairs {
		values[c] = p.val
		for r := 0; r < n; r++ {
			vectors.Set(r, c, v.At(r, p.idx))
		}
	}
	return values, vectors, nil
}

// SVDThin computes a thin singular value decomposition A = U diag(s) Vᵀ for
// an m x n matrix via the symmetric eigendecomposition of AᵀA (when m >= n)
// or AAᵀ (when m < n). Singular values are returned in descending order.
// It is accurate enough for the PCA/whitening uses in this repository.
func SVDThin(a *Matrix) (u *Matrix, s []float64, v *Matrix, err error) {
	m, n := a.Rows, a.Cols
	if m >= n {
		ata := a.T().Mul(a)
		vals, vecs, err := EigenSym(ata)
		if err != nil {
			return nil, nil, nil, err
		}
		s = make([]float64, n)
		for i, l := range vals {
			if l < 0 {
				l = 0
			}
			s[i] = math.Sqrt(l)
		}
		v = vecs
		u = NewMatrix(m, n)
		vcol := make([]float64, v.Rows)
		for j := 0; j < n; j++ {
			v.ColInto(j, vcol)
			col := a.MulVec(vcol)
			if s[j] > 1e-12 {
				ScaleVec(1/s[j], col)
			}
			for i := 0; i < m; i++ {
				u.Set(i, j, col[i])
			}
		}
		return u, s, v, nil
	}
	// m < n: decompose the transpose and swap factors.
	ut, st, vt, err := SVDThin(a.T())
	if err != nil {
		return nil, nil, nil, err
	}
	return vt, st, ut, nil
}

// PowerIteration returns the dominant eigenvalue/eigenvector estimate of a
// symmetric matrix using at most iters iterations starting from v0 (which
// may be nil for a default start).
func PowerIteration(a *Matrix, v0 []float64, iters int) (float64, []float64) {
	n := a.Rows
	v := v0
	if v == nil {
		v = make([]float64, n)
		for i := range v {
			v[i] = 1 / math.Sqrt(float64(n))
		}
	} else {
		v = CopyVec(v)
		if nrm := Norm2(v); nrm > 0 {
			ScaleVec(1/nrm, v)
		}
	}
	lambda := 0.0
	for it := 0; it < iters; it++ {
		w := a.MulVec(v)
		nrm := Norm2(w)
		if nrm == 0 {
			return 0, v
		}
		ScaleVec(1/nrm, w)
		lambda = Dot(w, a.MulVec(w))
		v = w
	}
	return lambda, v
}
