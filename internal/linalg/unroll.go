package linalg

// Unrolled flat-loop primitives for the numeric hot paths (ROADMAP
// item 1). Every kernel here preserves the exact operation sequence of
// the plain range loop it replaces — reductions keep a single
// accumulator chain, element-wise updates apply the same one expression
// per element — so converted callers stay bit-identical to the
// pre-refactor code. What the unrolling buys is bounds-check
// elimination and wider instruction-level scheduling: the Go compiler
// keeps four (reduction) or eight (element-wise) lanes of flat
// row-major data in flight instead of re-checking slice bounds per
// element.
//
// The reduction kernels (dotUnrolled, dist2Unrolled) deliberately use
// one accumulator, not four: four partial sums would reassociate the
// IEEE-754 addition order and break the repo-wide bit-identity
// contract (testkit's DiffPaths oracle compares paths bit for bit).

// dotUnrolled returns Σ a[i]·b[i] with the same single-accumulator
// order as a plain loop. len(b) must be ≥ len(a); the explicit reslice
// lets the compiler drop bounds checks in the 4-wide body.
func dotUnrolled(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	s := 0.0
	i := 0
	for ; i+4 <= n; i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// dist2Unrolled returns Σ (a[i]−b[i])² in plain-loop order.
func dist2Unrolled(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	s := 0.0
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		s += d0 * d0
		d1 := a[i+1] - b[i+1]
		s += d1 * d1
		d2 := a[i+2] - b[i+2]
		s += d2 * d2
		d3 := a[i+3] - b[i+3]
		s += d3 * d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// addScaled computes dst[i] += a·src[i] for every i. Each element
// receives exactly one fused update in either form, so the 8-wide body
// is bit-identical to the plain loop; it is the inner kernel of the
// row-accumulator and cache-blocked matmuls.
func addScaled(dst, src []float64, a float64) {
	n := len(dst)
	src = src[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i] += a * src[i]
		dst[i+1] += a * src[i+1]
		dst[i+2] += a * src[i+2]
		dst[i+3] += a * src[i+3]
		dst[i+4] += a * src[i+4]
		dst[i+5] += a * src[i+5]
		dst[i+6] += a * src[i+6]
		dst[i+7] += a * src[i+7]
	}
	for ; i < n; i++ {
		dst[i] += a * src[i]
	}
}

// minSumUnrolled returns Σ min(a[i], b[i]) in plain-loop order — the
// histogram-intersection kernel's inner sweep.
func minSumUnrolled(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	s := 0.0
	i := 0
	for ; i+4 <= n; i += 4 {
		s += minOf(a[i], b[i])
		s += minOf(a[i+1], b[i+1])
		s += minOf(a[i+2], b[i+2])
		s += minOf(a[i+3], b[i+3])
	}
	for ; i < n; i++ {
		s += minOf(a[i], b[i])
	}
	return s
}

// minOf mirrors the branch the original histogram-intersection loop
// used (`if a < b { s += a } else { s += b }`): b wins ties and NaN in
// a propagates exactly as before. The builtin min() differs on NaN
// placement, so it is not a drop-in.
func minOf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// MinSum returns Σ min(a[i], b[i]); panics on length mismatch.
func MinSum(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: MinSum length mismatch")
	}
	return minSumUnrolled(a, b)
}
