// Package linalg provides the dense linear algebra kernels used by the
// learning algorithms in this repository: matrices, vectors, factorizations
// (Cholesky, LU, QR), a symmetric eigensolver, and a thin SVD built on it.
//
// The package is deliberately small and allocation-conscious rather than a
// general BLAS replacement; every routine is exercised by the learners in
// internal/ (PCA, GP regression, discriminant analysis, spectral clustering).
package linalg

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// Matmul metrics: calls through each entry point and cache tiles swept
// by the blocked kernel. Block counts are added once per worker chunk.
var (
	mulCalls    = obs.GetCounter("linalg.mul_calls")
	mulBlocks   = obs.GetCounter("linalg.mul_blocks")
	mulVecCalls = obs.GetCounter("linalg.mulvec_calls")
)

// Cutovers for the parallel paths. Each routine runs the original serial
// loop below its threshold so small shapes (the bulk of unit-test and
// warm-up work) never pay goroutine overhead; above it the work is striped
// over rows, which keeps every output element on exactly one worker and
// the accumulation order per element identical to the serial loop.
const (
	mulParallelFlops = 1 << 16 // Rows*Cols*b.Cols below which Mul stays serial
	vecParallelFlops = 1 << 15 // Rows*Cols below which MulVec/T stay serial
)

// Cache blocking for Mul: the inner sweeps touch a kBlock x jBlock tile of
// b (64*256*8 B = 128 KiB, L2-resident) while the output row segment stays
// in L1.
const (
	mulKBlock = 64
	mulJBlock = 256
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d != %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	m.ColInto(j, out)
	return out
}

// ColInto copies column j into dst, which must have length m.Rows. It is
// the allocation-free form of Col for call sites that fetch columns
// repeatedly inside tight loops.
func (m *Matrix) ColInto(j int, dst []float64) {
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: ColInto length mismatch %d vs %d rows", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix. Large shapes are striped over
// source rows; each worker writes a distinct column of the result, so the
// writes are disjoint and the copy is trivially deterministic.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	serial := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < m.Cols; j++ {
				t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
			}
		}
	}
	if m.Rows*m.Cols < vecParallelFlops {
		serial(0, m.Rows)
		return t
	}
	parallel.For(m.Rows, serial)
	return t
}

// Mul returns m * b.
//
// Small products run the original serial row-accumulator loop. Large
// products are striped over output rows across the worker pool and swept
// in cache blocks: for each row chunk the k (inner) and j (output column)
// dimensions advance tile by tile, keeping a kBlock x jBlock tile of b
// hot in cache instead of streaming all of b per output row. Both the
// striping and the blocking preserve the per-element accumulation order
// of the serial loop (k strictly ascending for every (i, j)), so the
// product is bit-identical to the serial path at any worker count.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	out := NewMatrix(m.Rows, b.Cols)
	m.MulInto(b, out)
	return out
}

// MulInto computes m * b into out, which must be m.Rows × b.Cols. Any
// prior contents of out are overwritten (the accumulator sweep zeroes
// first), so a pooled colmat buffer is a valid destination. The
// arithmetic is the Mul path exactly — same striping, same blocking,
// same per-element accumulation order — so MulInto(b, out) is
// bit-identical to Mul(b) at any worker count.
func (m *Matrix) MulInto(b, out *Matrix) {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	if out.Rows != m.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MulInto destination is %dx%d, want %dx%d",
			out.Rows, out.Cols, m.Rows, b.Cols))
	}
	mulCalls.Inc()
	clear(out.Data)
	if m.Rows*m.Cols*b.Cols < mulParallelFlops || parallel.Workers() <= 1 {
		m.mulSerialInto(b, out, 0, m.Rows)
		return
	}
	parallel.For(m.Rows, func(lo, hi int) {
		m.mulBlockedInto(b, out, lo, hi)
	})
}

// mulSerialInto is the original row-accumulator matmul over rows [lo, hi).
func (m *Matrix) mulSerialInto(b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			addScaled(oi, b.Data[k*b.Cols:(k+1)*b.Cols], mik)
		}
	}
}

// mulBlockedInto is the cache-blocked matmul over output rows [lo, hi).
// For every element out[i][j] the contributions mi[k]*b[k][j] are added in
// strictly ascending k, exactly as in mulSerialInto.
func (m *Matrix) mulBlockedInto(b, out *Matrix, lo, hi int) {
	mulBlocks.Add(int64((b.Cols + mulJBlock - 1) / mulJBlock * ((m.Cols + mulKBlock - 1) / mulKBlock)))
	for jb := 0; jb < b.Cols; jb += mulJBlock {
		jEnd := jb + mulJBlock
		if jEnd > b.Cols {
			jEnd = b.Cols
		}
		for kb := 0; kb < m.Cols; kb += mulKBlock {
			kEnd := kb + mulKBlock
			if kEnd > m.Cols {
				kEnd = m.Cols
			}
			for i := lo; i < hi; i++ {
				mi := m.Data[i*m.Cols : (i+1)*m.Cols]
				oi := out.Data[i*out.Cols+jb : i*out.Cols+jEnd]
				for k := kb; k < kEnd; k++ {
					mik := mi[k]
					if mik == 0 {
						continue
					}
					addScaled(oi, b.Data[k*b.Cols+jb:k*b.Cols+jEnd], mik)
				}
			}
		}
	}
}

// MulVec returns m * v for a vector v of length m.Cols.
func (m *Matrix) MulVec(v []float64) []float64 {
	out := make([]float64, m.Rows)
	m.MulVecInto(v, out)
	return out
}

// MulVecInto computes m * v into out (length m.Rows), overwriting it.
// The serial path runs without a closure so steady-state callers with a
// reused destination stay allocation-free; the parallel path stripes
// rows exactly as MulVec always has, bit-identical at any worker count.
func (m *Matrix) MulVecInto(v, out []float64) {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	if len(out) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVecInto destination length %d, want %d", len(out), m.Rows))
	}
	mulVecCalls.Inc()
	if m.Rows*m.Cols < vecParallelFlops || parallel.Workers() <= 1 {
		m.mulVecRange(v, out, 0, m.Rows)
		return
	}
	parallel.For(m.Rows, func(lo, hi int) {
		m.mulVecRange(v, out, lo, hi)
	})
}

func (m *Matrix) mulVecRange(v, out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = Dot(m.Row(i), v)
	}
}

// Add returns m + b element-wise.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.checkSameShape(b, "Add")
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns m - b element-wise.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.checkSameShape(b, "Sub")
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s * m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// AddDiag adds v to every diagonal element in place and returns m.
func (m *Matrix) AddDiag(v float64) *Matrix {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += v
	}
	return m
}

// Trace returns the sum of diagonal entries.
func (m *Matrix) Trace() float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += m.Data[i*m.Cols+i]
	}
	return s
}

// FrobeniusNorm returns sqrt(sum m_ij^2).
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry.
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

func (m *Matrix) checkSameShape(b *Matrix, op string) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%10.4g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// Dot returns the inner product of a and b. The 4-wide unrolled body
// keeps the single-accumulator order of a plain loop (see unroll.go),
// so results are bit-identical to the pre-unroll implementation.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	return dotUnrolled(a, b)
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Dist2 returns the squared Euclidean distance between a and b, with
// the same accumulation order as a plain loop (see unroll.go).
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dist2 length mismatch %d vs %d", len(a), len(b)))
	}
	return dist2Unrolled(a, b)
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(Dist2(a, b)) }

// AXPY computes y += alpha*x in place. Each element receives exactly
// one fused update, so the unrolled body is bit-identical to the plain
// loop.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	addScaled(y, x, alpha)
}

// ScaleVec multiplies v by s in place.
func ScaleVec(s float64, v []float64) {
	for i := range v {
		v[i] *= s
	}
}

// CopyVec returns a copy of v.
func CopyVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// SubVec returns a-b as a new vector.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: SubVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// AddVec returns a+b as a new vector.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: AddVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}
