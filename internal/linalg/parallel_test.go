package linalg

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

func randomSparseMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
		if rng.Intn(10) == 0 {
			m.Data[i] = 0 // exercise the zero-skip branch
		}
	}
	return m
}

func TestMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := []struct{ m, k, n int }{
		{3, 4, 5},      // below cutover: serial path
		{60, 70, 80},   // above cutover, smaller than one block
		{130, 300, 90}, // spans multiple k blocks
		{97, 64, 513},  // spans multiple j blocks, ragged edges
	}
	for _, s := range shapes {
		a := randomSparseMatrix(rng, s.m, s.k)
		b := randomSparseMatrix(rng, s.k, s.n)

		old := parallel.SetWorkers(1)
		want := a.Mul(b)
		// The blocked kernel must agree with the serial row-accumulator
		// exactly, independent of parallel striping.
		blocked := NewMatrix(s.m, s.n)
		a.mulBlockedInto(b, blocked, 0, s.m)
		for i := range want.Data {
			if blocked.Data[i] != want.Data[i] {
				t.Fatalf("%dx%dx%d: blocked element %d = %v, serial %v",
					s.m, s.k, s.n, i, blocked.Data[i], want.Data[i])
			}
		}
		for _, w := range []int{2, 4, 8} {
			parallel.SetWorkers(w)
			got := a.Mul(b)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%dx%dx%d workers=%d: element %d = %v, serial %v",
						s.m, s.k, s.n, w, i, got.Data[i], want.Data[i])
				}
			}
		}
		parallel.SetWorkers(old)
	}
}

func TestMulVecParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := randomSparseMatrix(rng, 400, 200)
	v := make([]float64, 200)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	old := parallel.SetWorkers(1)
	want := m.MulVec(v)
	for _, w := range []int{2, 8} {
		parallel.SetWorkers(w)
		got := m.MulVec(v)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: element %d = %v, serial %v", w, i, got[i], want[i])
			}
		}
	}
	parallel.SetWorkers(old)
}

func TestTransposeParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randomSparseMatrix(rng, 310, 170)
	old := parallel.SetWorkers(1)
	want := m.T()
	for _, w := range []int{2, 8} {
		parallel.SetWorkers(w)
		got := m.T()
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("workers=%d: element %d differs", w, i)
			}
		}
	}
	parallel.SetWorkers(old)
}

func TestColInto(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := randomSparseMatrix(rng, 13, 7)
	dst := make([]float64, m.Rows)
	for j := 0; j < m.Cols; j++ {
		m.ColInto(j, dst)
		want := m.Col(j)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("col %d row %d: %v != %v", j, i, dst[i], want[i])
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ColInto with wrong-length dst did not panic")
		}
	}()
	m.ColInto(0, make([]float64, m.Rows-1))
}

// --- benchmarks ------------------------------------------------------

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{128, 512} {
		x := randomSparseMatrix(rng, n, n)
		y := randomSparseMatrix(rng, n, n)
		for _, w := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				old := parallel.SetWorkers(w)
				defer parallel.SetWorkers(old)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_ = x.Mul(y)
				}
			})
		}
	}
}

func BenchmarkMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(32))
	m := randomSparseMatrix(rng, 1024, 1024)
	v := make([]float64, 1024)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			old := parallel.SetWorkers(w)
			defer parallel.SetWorkers(old)
			for i := 0; i < b.N; i++ {
				_ = m.MulVec(v)
			}
		})
	}
}
