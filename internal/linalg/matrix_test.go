package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows != 2 || m.Cols != 2 {
		t.Fatalf("shape: %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0)=%v", m.At(1, 0))
	}
	m.Set(1, 0, 7)
	if m.At(1, 0) != 7 {
		t.Fatalf("Set failed")
	}
	if got := m.Trace(); got != 1+4 {
		t.Fatalf("Trace=%v", got)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone aliased data")
	}
}

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	c := a.Mul(b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	for i := range c.Data {
		approx(t, c.Data[i], want.Data[i], 1e-12, "Mul")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 5, 3)
	tt := a.T().T()
	for i := range a.Data {
		approx(t, tt.Data[i], a.Data[i], 0, "T(T(A)) == A")
	}
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 4, 4)
	i4 := Identity(4)
	left := i4.Mul(a)
	right := a.Mul(i4)
	for i := range a.Data {
		approx(t, left.Data[i], a.Data[i], 1e-12, "I*A")
		approx(t, right.Data[i], a.Data[i], 1e-12, "A*I")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 6, 4)
	v := randomVec(rng, 4)
	got := a.MulVec(v)
	b := NewMatrix(4, 1)
	copy(b.Data, v)
	want := a.Mul(b)
	for i := range got {
		approx(t, got[i], want.Data[i], 1e-12, "MulVec")
	}
}

func TestDotAndNorms(t *testing.T) {
	a := []float64{3, 4}
	approx(t, Norm2(a), 5, 1e-12, "Norm2")
	approx(t, Dot(a, a), 25, 1e-12, "Dot")
	approx(t, Dist([]float64{0, 0}, a), 5, 1e-12, "Dist")
	approx(t, Dist2([]float64{0, 0}, a), 25, 1e-12, "Dist2")
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	s := AddVec(a, b)
	d := SubVec(b, a)
	for i := range a {
		approx(t, s[i], a[i]+b[i], 0, "AddVec")
		approx(t, d[i], b[i]-a[i], 0, "SubVec")
	}
	y := CopyVec(a)
	AXPY(2, b, y)
	for i := range a {
		approx(t, y[i], a[i]+2*b[i], 0, "AXPY")
	}
	ScaleVec(0.5, y)
	approx(t, y[0], (1+8)*0.5, 0, "ScaleVec")
}

func TestDotSymmetryProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		return math.Abs(Dot(a, b)-Dot(b, a)) <= 1e-9*(1+math.Abs(Dot(a, b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for it := 0; it < 200; it++ {
		n := 1 + rng.Intn(8)
		a, b, c := randomVec(rng, n), randomVec(rng, n), randomVec(rng, n)
		if Dist(a, c) > Dist(a, b)+Dist(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated")
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}})
	if !a.IsSymmetric(1e-12) {
		t.Fatal("expected symmetric")
	}
	a.Set(0, 1, 3)
	if a.IsSymmetric(1e-12) {
		t.Fatal("expected asymmetric")
	}
	if FromRows([][]float64{{1, 2, 3}}).IsSymmetric(1) {
		t.Fatal("non-square cannot be symmetric")
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func randomSPD(rng *rand.Rand, n int) *Matrix {
	a := randomMatrix(rng, n, n)
	s := a.T().Mul(a)
	return s.AddDiag(float64(n) * 0.1)
}
