package linalg

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// ErrSingular is returned by solvers when the system is singular.
var ErrSingular = errors.New("linalg: matrix is singular")

// Cholesky computes the lower-triangular factor L with A = L Lᵀ.
// A must be symmetric positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		djj := math.Sqrt(d)
		l.Set(j, j, djj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/djj)
		}
	}
	return l, nil
}

// CholSolve solves A x = b given the Cholesky factor L of A.
func CholSolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// CholLogDet returns log det(A) = 2*sum(log L_ii) given the factor L.
func CholLogDet(l *Matrix) float64 {
	s := 0.0
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}

// SolveSPD solves A x = b for symmetric positive definite A.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return CholSolve(l, b), nil
}

// LU holds an LU factorization with partial pivoting: P A = L U.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64
}

// NewLU factors a square matrix with partial pivoting.
func NewLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: LU requires a square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Pick pivot.
		p, maxAbs := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs < 1e-300 {
			return nil, ErrSingular
		}
		if p != k {
			rk := lu.Row(k)
			rp := lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pk := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pk
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-m*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, pivot: piv, sign: sign}, nil
}

// Solve solves A x = b using the factorization.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// L y = Pb (unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= f.lu.At(i, k) * x[k]
		}
		x[i] = s
	}
	// U x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= f.lu.At(i, k) * x[k]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x
}

// Det returns det(A).
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves the square system A x = b with partial pivoting.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns A⁻¹ for a square nonsingular matrix.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// QR computes a thin QR factorization A = Q R via modified Gram-Schmidt.
// A must have Rows >= Cols; Q is Rows x Cols with orthonormal columns and
// R is Cols x Cols upper triangular.
func QR(a *Matrix) (q, r *Matrix, err error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, nil, errors.New("linalg: QR requires rows >= cols")
	}
	q = a.Clone()
	r = NewMatrix(n, n)
	for j := 0; j < n; j++ {
		// Orthogonalize column j against previous columns (twice for stability).
		for pass := 0; pass < 2; pass++ {
			for k := 0; k < j; k++ {
				s := 0.0
				for i := 0; i < m; i++ {
					s += q.At(i, k) * q.At(i, j)
				}
				r.Set(k, j, r.At(k, j)+s)
				for i := 0; i < m; i++ {
					q.Set(i, j, q.At(i, j)-s*q.At(i, k))
				}
			}
		}
		nrm := 0.0
		for i := 0; i < m; i++ {
			nrm += q.At(i, j) * q.At(i, j)
		}
		nrm = math.Sqrt(nrm)
		if nrm < 1e-14 {
			return nil, nil, ErrSingular
		}
		r.Set(j, j, nrm)
		for i := 0; i < m; i++ {
			q.Set(i, j, q.At(i, j)/nrm)
		}
	}
	return q, r, nil
}

// LstSq solves min ||A x - b||₂ via QR for A with full column rank.
func LstSq(a *Matrix, b []float64) ([]float64, error) {
	q, r, err := QR(a)
	if err != nil {
		return nil, err
	}
	n := a.Cols
	// qtb = Qᵀ b
	qtb := make([]float64, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < a.Rows; i++ {
			s += q.At(i, j) * b[i]
		}
		qtb[j] = s
	}
	// Back substitution R x = qtb.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := qtb[i]
		for k := i + 1; k < n; k++ {
			s -= r.At(i, k) * x[k]
		}
		x[i] = s / r.At(i, i)
	}
	return x, nil
}
