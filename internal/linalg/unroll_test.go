package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// refDot/refDist2/refMinSum are the pre-unroll plain loops; the unrolled
// kernels must match them bit for bit on every length (the repo-wide
// bit-identity contract) including the remainder tails and adversarial
// values.
func refDot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func refDist2(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

func refMinSum(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		if a[i] < b[i] {
			s += a[i]
		} else {
			s += b[i]
		}
	}
	return s
}

// adversarialPair builds length-n vectors salted with the values the
// conformance generators use to stress numeric paths: ±Inf, NaN,
// subnormals, zeros, and huge magnitudes.
func adversarialPair(r *rand.Rand, n int) (a, b []float64) {
	specials := []float64{
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		0, math.Copysign(0, -1), 1e308, -1e308,
	}
	a = make([]float64, n)
	b = make([]float64, n)
	for i := range a {
		if r.Intn(4) == 0 {
			a[i] = specials[r.Intn(len(specials))]
		} else {
			a[i] = r.NormFloat64() * 10
		}
		if r.Intn(4) == 0 {
			b[i] = specials[r.Intn(len(specials))]
		} else {
			b[i] = r.NormFloat64() * 10
		}
	}
	return a, b
}

// bitsEqual compares exact bit patterns, except that any NaN matches
// any NaN: IEEE-754 does not specify NaN payload propagation and the
// compiler's register allocation legitimately flips which operand's
// payload survives `NaN + NaN`, even between two compilations of the
// same source loop. The repo's bit-identity contract is about scoring
// *paths inside one binary* agreeing — they all share these kernels —
// not about NaN payload stability across code shapes.
func bitsEqual(x, y float64) bool {
	if math.IsNaN(x) || math.IsNaN(y) {
		return math.IsNaN(x) && math.IsNaN(y)
	}
	return math.Float64bits(x) == math.Float64bits(y)
}

func TestUnrolledKernelsBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for n := 0; n <= 67; n++ {
		for rep := 0; rep < 8; rep++ {
			a, b := adversarialPair(r, n)
			if got, want := dotUnrolled(a, b), refDot(a, b); !bitsEqual(got, want) {
				t.Fatalf("dot n=%d: got %x want %x", n, math.Float64bits(got), math.Float64bits(want))
			}
			if got, want := dist2Unrolled(a, b), refDist2(a, b); !bitsEqual(got, want) {
				t.Fatalf("dist2 n=%d: got %x want %x", n, math.Float64bits(got), math.Float64bits(want))
			}
			if got, want := minSumUnrolled(a, b), refMinSum(a, b); !bitsEqual(got, want) {
				t.Fatalf("minsum n=%d: got %x want %x", n, math.Float64bits(got), math.Float64bits(want))
			}
			y1 := append([]float64(nil), b...)
			y2 := append([]float64(nil), b...)
			alpha := r.NormFloat64()
			addScaled(y1, a, alpha)
			for i, v := range a {
				y2[i] += alpha * v
			}
			for i := range y1 {
				if !bitsEqual(y1[i], y2[i]) {
					t.Fatalf("addScaled n=%d elem %d: got %x want %x",
						n, i, math.Float64bits(y1[i]), math.Float64bits(y2[i]))
				}
			}
		}
	}
}

// TestIntoVariantsMatchAllocating pins MulInto/MulVecInto to their
// allocating twins, including reuse of a dirty destination.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, shape := range [][3]int{{3, 4, 5}, {16, 16, 16}, {33, 7, 9}, {1, 1, 1}} {
		m := NewMatrix(shape[0], shape[1])
		b := NewMatrix(shape[1], shape[2])
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		want := m.Mul(b)
		out := NewMatrix(shape[0], shape[2])
		for i := range out.Data {
			out.Data[i] = math.NaN() // dirty destination must be overwritten
		}
		m.MulInto(b, out)
		for i := range want.Data {
			if !bitsEqual(out.Data[i], want.Data[i]) {
				t.Fatalf("MulInto %v differs at %d", shape, i)
			}
		}
		v := make([]float64, shape[1])
		for i := range v {
			v[i] = r.NormFloat64()
		}
		wantV := m.MulVec(v)
		outV := make([]float64, shape[0])
		for i := range outV {
			outV[i] = math.NaN()
		}
		m.MulVecInto(v, outV)
		for i := range wantV {
			if !bitsEqual(outV[i], wantV[i]) {
				t.Fatalf("MulVecInto %v differs at %d", shape, i)
			}
		}
	}
}
