package testkit

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/linalg"
)

// The conformance registry. Every learner package in the repo registers
// exactly one (or more) Conformer here; the root conformance_test.go
// sweeps the registry and a completeness test fails when a learner
// package exists without a registration. Registration lives in
// conformers.go (this package) rather than in the learner packages so
// the dependency arrow points one way: testkit imports learners, never
// the reverse.

// Fit is one fitted model: a prediction function over a probe matrix
// (transductive learners ignore the probes and report per-training-row
// outputs) plus, when the model is persistable, the model value itself
// for the differential driver.
type Fit struct {
	// Predict scores the probe matrix. For transductive conformers
	// (label propagation, clustering) the probe argument is ignored and
	// the output is indexed by training row.
	Predict func(x *linalg.Matrix) []float64
	// Model is the persistable fitted model (one of the model.Encode
	// kinds), or nil for learners without an artifact form.
	Model any
}

// Conformer is one learner's entry in the conformance registry.
type Conformer struct {
	// Name is the unique registry key, e.g. "svm/svc".
	Name string
	// Pkg is the internal package the learner lives in, e.g. "svm" —
	// the completeness test matches registrations to packages by it.
	Pkg string
	// Cases is the sweep size at default scale; the slowconformance
	// build multiplies it.
	Cases int
	// Gen builds the case body (Train/Probes/YMat) from the case's
	// private deterministic stream.
	Gen func(r *rand.Rand, idx int) *Case
	// Fit trains on the case. A fit error is a conformance failure —
	// generated cases are constructed to be fittable.
	Fit func(c *Case) (*Fit, error)
	// Invariants checks the learner's mathematical invariants against
	// the fitted model; nil when the relations cover everything.
	Invariants func(c *Case, f *Fit) error
	// Relations are the metamorphic relations the learner must satisfy.
	Relations []Relation
	// Persisted marks models that must also pass the differential
	// scoring-path driver (DiffPaths).
	Persisted bool
}

var registry = map[string]Conformer{}

// Register adds a conformer; duplicate names are a programming error.
func Register(c Conformer) {
	if c.Name == "" || c.Pkg == "" {
		panic("testkit: conformer needs Name and Pkg")
	}
	if _, dup := registry[c.Name]; dup {
		panic("testkit: duplicate conformer " + c.Name)
	}
	if c.Cases <= 0 {
		c.Cases = 4
	}
	registry[c.Name] = c
}

// All returns the registered conformers sorted by name.
func All() []Conformer {
	out := make([]Conformer, 0, len(registry))
	for _, c := range registry {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup finds a conformer by registry name.
func Lookup(name string) (Conformer, bool) {
	c, ok := registry[name]
	return c, ok
}

// Case derives the conformer's case for (seed, idx). The derivation
// mixes the conformer name and the index into the seed, so every
// conformer and every index draws from an independent stream, and the
// whole case is a pure function of (seed, name, idx) — the complete
// reproduction recipe a failure report prints.
func (c Conformer) Case(seed int64, idx int) *Case {
	stream := Mix(MixString(seed, c.Name), int64(idx))
	cs := c.Gen(rand.New(rand.NewSource(stream)), idx)
	cs.Seed = seed
	cs.Index = idx
	cs.stream = stream
	return cs
}

// Check runs the full conformance contract on one case: fit, the
// learner's invariants, every metamorphic relation, and (for persisted
// kinds) the differential scoring-path driver. The first violation is
// returned.
func (c Conformer) Check(cs *Case) error {
	f, err := c.Fit(cs)
	if err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	base := f.Predict(cs.Probes)
	if c.Invariants != nil {
		if err := c.Invariants(cs, f); err != nil {
			return fmt.Errorf("invariant: %w", err)
		}
	}
	for _, rel := range c.Relations {
		r := rand.New(rand.NewSource(MixString(Mix(cs.Seed, int64(cs.Index)), rel.Transform.Name)))
		cs2, oracle := rel.Transform.Apply(r, cs)
		f2, err := c.Fit(cs2)
		if err != nil {
			return fmt.Errorf("relation %s: refit: %w", rel.Transform.Name, err)
		}
		got := f2.Predict(cs2.Probes)
		if err := rel.Tol.Compare(oracle(base), got); err != nil {
			return fmt.Errorf("relation %s: %w", rel.Transform.Name, err)
		}
	}
	if c.Persisted && f.Model != nil {
		if err := DiffPaths(f.Model, cs.Probes); err != nil {
			return fmt.Errorf("differential: %w", err)
		}
	}
	return nil
}

// Failure is one conformance violation, carrying everything needed to
// reproduce and debug it: the replay recipe, the error, and the size of
// the shrunk training set that still fails.
type Failure struct {
	Conformer string
	Seed      int64
	Index     int
	Err       error
	// MinimalRows is the training-set size after shrinking (0 when
	// shrinking could not reduce the case).
	MinimalRows int
	// Hint is the copy-pasteable replay one-liner.
	Hint string
}

func (f Failure) String() string {
	return fmt.Sprintf("%s case %d (seed %d): %v\n  shrunk to %d training rows; replay with %s",
		f.Conformer, f.Index, f.Seed, f.Err, f.MinimalRows, f.Hint)
}

// Run sweeps n cases from the seed and returns every failure, each
// already shrunk to a minimal training subset.
func (c Conformer) Run(seed int64, n int) []Failure {
	var fails []Failure
	for idx := 0; idx < n; idx++ {
		cs := c.Case(seed, idx)
		err := c.Check(cs)
		if err == nil {
			continue
		}
		minimal := ShrinkRows(cs, func(cand *Case) bool { return c.Check(cand) != nil })
		fails = append(fails, Failure{
			Conformer:   c.Name,
			Seed:        seed,
			Index:       idx,
			Err:         err,
			MinimalRows: minimal.Train.Len(),
			Hint:        ReplayHint(seed, c.Name, idx),
		})
	}
	return fails
}

// Replay re-derives the case for (seed, name, index) and re-runs the
// full conformance check — the one-liner a failure report prints.
func Replay(seed int64, name string, index int) error {
	c, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("testkit: no conformer %q", name)
	}
	return c.Check(c.Case(seed, index))
}

// ReplayHint formats the replay call for a failure report.
func ReplayHint(seed int64, name string, index int) string {
	return fmt.Sprintf("testkit.Replay(%d, %q, %d)", seed, name, index)
}
