package testkit

import (
	"fmt"
	"math/rand"

	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/svm"
)

// Conformers for the compiled approx-linear kinds (model.CompileApprox).
// Each fits the exact kernel model, compiles it through a seeded feature
// map, and registers the *compiled* model as the persisted artifact —
// so the differential driver (DiffPaths) pins every scoring path over
// the compiled form bit-for-bit, while the invariant refits the exact
// model (deterministic: same case streams) and bounds the compiled
// decision against it with the lane's Approx tolerance.
//
// The feature-map seed draws from its own stream so it is independent
// of the kernel and fit randomness, and RefitIdentity stays Exact: the
// same case recompiles to the bit-identical scorer.

const approxStream = 109

// Exact-vs-approx decision tolerances, set at ~2× the worst error a
// 30-case sweep observes (TestApproxLaneErrorHeadroom logs the live
// margin; the nightly slowconformance run sweeps 24 cases per
// conformer). RFF at D=512 carries O(1/√D) Monte-Carlo error scaled by
// the dual mass — measured worst 0.60 for the SVC margins — while
// Nyström at m=32 of a ≤50-row basis is an order of magnitude tighter
// (0.034 one-class, 0.18 GP) because the landmarks span most of it.
var (
	svcApproxTol      = Approx(1.2, 0.05)
	oneClassApproxTol = Approx(0.1, 0.05)
	gpApproxTol       = Approx(0.35, 0.05)
)

func init() {
	registerSVCApprox()
	registerOneClassApprox()
	registerGPApprox()
}

// fitSVCRBF fits the exact SVC the svc-approx conformer compiles. RFF
// approximates only the RBF kernel, so the kernel stream draws a gamma,
// not a kernel family.
func fitSVCRBF(cs *Case) (*svm.SVC, error) {
	r := cs.Rng(kernelStream)
	k := kernel.RBF{Gamma: (0.2 + r.Float64()) / float64(cs.Train.Dim())}
	return svm.FitSVC(cs.Train, k, svm.SVCConfig{C: 1, Seed: Mix(cs.stream, fitStream)})
}

func svcApproxSpec(cs *Case) model.ApproxSpec {
	return model.ApproxSpec{Method: model.ApproxRFF, Dim: 512, Seed: Mix(cs.stream, approxStream)}
}

func registerSVCApprox() {
	Register(Conformer{
		Name:      "svm/svc-approx",
		Pkg:       "svm",
		Persisted: true,
		Cases:     3,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenClassification(r, 50, 4, 2.2)
			return &Case{Train: d, Probes: probesFor(r, d, 40)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			m, err := fitSVCRBF(cs)
			if err != nil {
				return nil, err
			}
			am, err := model.CompileApprox(m, svcApproxSpec(cs))
			if err != nil {
				return nil, fmt.Errorf("compile: %w", err)
			}
			return &Fit{Predict: am.ScoreBatch, Model: am}, nil
		},
		Invariants: func(cs *Case, f *Fit) error {
			am := f.Model.(*model.ApproxModel)
			exact, err := fitSVCRBF(cs)
			if err != nil {
				return err
			}
			if err := CompareApproxDecisions(exact, am, cs.Probes, svcApproxTol); err != nil {
				return fmt.Errorf("exact-vs-approx margin: %w", err)
			}
			return CheckInSet("svc-approx prediction", f.Predict(cs.Probes), am.Classes[0], am.Classes[1])
		},
		Relations: []Relation{Rel(RefitIdentity(), Exact)},
	})
}

// fitOneClassPSD fits the exact one-class detector the oneclass-approx
// conformer compiles. Nyström handles any persistable PSD kernel, so
// this conformer keeps the full GenPSDKernel family.
func fitOneClassPSD(cs *Case) (*svm.OneClass, error) {
	k := GenPSDKernel(cs.Rng(kernelStream), cs.Train.Dim())
	return svm.FitOneClass(cs.Train.X, k, svm.OneClassConfig{Nu: 0.2})
}

func oneClassApproxSpec(cs *Case) model.ApproxSpec {
	return model.ApproxSpec{Method: model.ApproxNystrom, Dim: 32, Seed: Mix(cs.stream, approxStream)}
}

func registerOneClassApprox() {
	Register(Conformer{
		Name:      "svm/oneclass-approx",
		Pkg:       "svm",
		Persisted: true,
		Cases:     3,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenClassification(r, 50, 4, 2.0)
			return &Case{Train: d, Probes: probesFor(r, d, 40)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			m, err := fitOneClassPSD(cs)
			if err != nil {
				return nil, err
			}
			am, err := model.CompileApprox(m, oneClassApproxSpec(cs))
			if err != nil {
				return nil, fmt.Errorf("compile: %w", err)
			}
			return &Fit{Predict: am.ScoreBatch, Model: am}, nil
		},
		Invariants: func(cs *Case, f *Fit) error {
			am := f.Model.(*model.ApproxModel)
			exact, err := fitOneClassPSD(cs)
			if err != nil {
				return err
			}
			return CompareApproxDecisions(exact, am, cs.Probes, oneClassApproxTol)
		},
		Relations: []Relation{Rel(RefitIdentity(), Exact)},
	})
}

// fitGPRBF fits the exact GP the gp-approx conformer compiles, with the
// same kernel-stream discipline as the exact gp conformer. Noise is one
// decade above the exact conformer's: the RFF error of the compiled
// form scales with the dual mass ‖α‖ = ‖(K+σ²I)⁻¹(y−μ)‖, and a near-
// interpolating GP (σ² = 1e-2) is exactly the regime one would not
// compile — the tradeoff curve in EXPERIMENTS.md records both regimes.
func fitGPRBF(cs *Case) (*gp.Regressor, error) {
	r := cs.Rng(kernelStream)
	k := kernel.RBF{Gamma: (0.2 + r.Float64()) / float64(cs.Train.Dim())}
	return gp.Fit(cs.Train, gp.Config{Kernel: k, Noise: 1e-1})
}

// gpApproxSpec compiles the GP through Nyström rather than RFF: the
// GP's basis is its entire training set, so landmarks sampled from it
// reconstruct the posterior mean far more efficiently than Monte-Carlo
// features — 32 landmarks beat D=512 RFF by an order of magnitude here
// (the EXPERIMENTS.md curve quantifies the gap).
func gpApproxSpec(cs *Case) model.ApproxSpec {
	return model.ApproxSpec{Method: model.ApproxNystrom, Dim: 32, Seed: Mix(cs.stream, approxStream)}
}

func registerGPApprox() {
	Register(Conformer{
		Name:      "gp-approx",
		Pkg:       "gp",
		Persisted: true,
		Cases:     3,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenRegression(r, 40, 5, 0.3)
			return &Case{Train: d, Probes: probesFor(r, d, 30)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			m, err := fitGPRBF(cs)
			if err != nil {
				return nil, err
			}
			am, err := model.CompileApprox(m, gpApproxSpec(cs))
			if err != nil {
				return nil, fmt.Errorf("compile: %w", err)
			}
			return &Fit{Predict: am.ScoreBatch, Model: am}, nil
		},
		Invariants: func(cs *Case, f *Fit) error {
			am := f.Model.(*model.ApproxModel)
			exact, err := fitGPRBF(cs)
			if err != nil {
				return err
			}
			return CompareApproxDecisions(exact, am, cs.Probes, gpApproxTol)
		},
		Relations: []Relation{Rel(RefitIdentity(), Exact)},
	})
}
