// Package testkit is the repository's property-based and metamorphic
// conformance subsystem. The paper's central claim is methodological —
// off-the-shelf learners only become trustworthy in EDA when the
// surrounding formulation (sample preparation, validation, tolerance
// discipline) is systematic — and this package encodes that discipline
// once, as executable invariants, instead of scattering it across
// hand-written spot checks.
//
// The pieces:
//
//   - gen.go: deterministic generators for datasets, kernel specs, ISA
//     programs, and adversarial numeric edge cases (±Inf, NaN,
//     subnormals, duplicated rows, constant features, rank-deficient
//     Gram matrices). Everything derives from an int64 seed, so any
//     failure is reproducible from the printed seed alone.
//   - metamorphic.go: transforms with known oracles — row permutation,
//     feature permutation, label flip, affine label rescaling, uniform
//     feature scaling, duplicate-and-reweight — plus per-model
//     tolerance policies describing how closely the refit model must
//     agree.
//   - invariants.go: mathematical invariant checkers (Gram PSD within
//     tolerance, kernel symmetry, SVM dual feasibility, GP posterior
//     variance bounds, tree/rule partition coverage, CV fold
//     disjointness and stratification, k-means SSE monotonicity,
//     SMOTE class balance).
//   - diff.go: the differential driver. Every persisted model kind is
//     pushed through serial scoring, batched scoring at 1/2/8 workers,
//     encode→decode→Scorer, and an in-process HTTP server, and the
//     paths must agree bit for bit.
//   - shrink.go: on failure the driver bisects the training set to a
//     minimal reproducing case and prints a testkit.Replay one-liner.
//   - registry.go + conformers.go: the conformance registry. Every
//     learner in the repo registers a Conformer; a completeness test at
//     the repo root fails when a learner package exists without a
//     registration.
//
// The root conformance_test.go drives everything; `go test -run
// Conformance ./...` is the one command that hammers every learner with
// generated inputs.
package testkit

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/linalg"
)

// Case is one generated conformance case: a training set plus a probe
// matrix the fitted model is scored on. Cases are pure functions of
// their seed (see Registry.Case), so a failure report carrying the seed
// and case index is a complete reproduction recipe.
type Case struct {
	Seed  int64
	Index int // case index within the conformer's sweep
	// stream is the fully-mixed per-(conformer, index) seed set by
	// Conformer.Case; Rng derives from it so two conformers sharing a
	// root seed still draw independent values.
	stream int64
	Train  *dataset.Dataset
	// Probes are the inputs every scoring path is evaluated on. They
	// include adversarial rows (±Inf, subnormals, constants) unless the
	// conformer opts out.
	Probes *linalg.Matrix
	// YMat is the multivariate response for learners that regress onto a
	// matrix (PLS/CCA); nil elsewhere.
	YMat *linalg.Matrix
}

// Rng returns a fresh deterministic generator for the case, optionally
// offset so independent consumers (fit, transforms, probes) draw from
// uncorrelated streams.
func (c *Case) Rng(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(Mix(c.stream, offset)))
}

// Mix derives a child seed from a parent seed and a stream tag with a
// SplitMix64-style finalizer, keeping neighbouring streams uncorrelated
// even for small seeds (same construction as validate.CrossValidateSeeded).
func Mix(seed, tag int64) int64 {
	z := uint64(seed) + uint64(tag+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// MixString folds a name into a seed so per-conformer streams never
// collide (FNV-1a over the name, then Mix).
func MixString(seed int64, name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return Mix(seed, int64(h))
}

// Tolerance is the per-model policy for how closely two prediction
// vectors must agree. Exactly one regime applies:
//
//   - BitExact: every element identical down to the float64 bit pattern,
//     except that any NaN matches any NaN. This is the repo-wide
//     determinism contract for alternative execution paths of the SAME
//     fitted model. NaN payloads are excluded because IEEE-754 does not
//     specify payload propagation through `NaN + NaN`: the compiler's
//     register allocation legitimately flips which operand's payload
//     survives between two compilations of the same accumulation — e.g.
//     a batch loop and its row-at-a-time twin — so payloads are stable
//     only within one compiled loop, not across code shapes.
//   - MaxFlipFrac > 0: for discrete outputs (class labels, novelty
//     signs) at most that fraction of entries may differ. Used by
//     metamorphic relations where refitting on transformed data may
//     legitimately move a few boundary samples.
//   - otherwise: |a-b| ≤ Abs + Rel·|a| per element. Used by metamorphic
//     relations on continuous outputs, where float reassociation
//     perturbs the last bits.
type Tolerance struct {
	BitExact    bool
	Abs, Rel    float64
	MaxFlipFrac float64
}

// Exact is the bit-identity policy.
var Exact = Tolerance{BitExact: true}

// Compare checks got against want under the policy. The returned error
// names the first offending index.
func (tol Tolerance) Compare(want, got []float64) error {
	if len(want) != len(got) {
		return fmt.Errorf("length mismatch: want %d, got %d", len(want), len(got))
	}
	switch {
	case tol.BitExact:
		for i := range want {
			if math.IsNaN(want[i]) && math.IsNaN(got[i]) {
				continue // payloads are not stable across code shapes
			}
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				return fmt.Errorf("element %d: want %v (bits %016x), got %v (bits %016x)",
					i, want[i], math.Float64bits(want[i]), got[i], math.Float64bits(got[i]))
			}
		}
	case tol.MaxFlipFrac > 0:
		flips, first := 0, -1
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				flips++
				if first < 0 {
					first = i
				}
			}
		}
		if limit := tol.MaxFlipFrac * float64(len(want)); float64(flips) > limit {
			return fmt.Errorf("%d/%d entries differ (limit %.1f), first at %d: want %v, got %v",
				flips, len(want), limit, first, want[first], got[first])
		}
	default:
		for i := range want {
			if math.IsNaN(want[i]) != math.IsNaN(got[i]) {
				return fmt.Errorf("element %d: want %v, got %v (NaN mismatch)", i, want[i], got[i])
			}
			if math.IsNaN(want[i]) {
				continue
			}
			if diff := math.Abs(want[i] - got[i]); diff > tol.Abs+tol.Rel*math.Abs(want[i]) {
				return fmt.Errorf("element %d: want %v, got %v (diff %g > abs %g + rel %g)",
					i, want[i], got[i], diff, tol.Abs, tol.Rel)
			}
		}
	}
	return nil
}

// Flips is a convenience constructor for the discrete-output policy.
func Flips(frac float64) Tolerance { return Tolerance{MaxFlipFrac: frac} }

// Approx is a convenience constructor for the continuous-output policy.
func Approx(abs, rel float64) Tolerance { return Tolerance{Abs: abs, Rel: rel} }
