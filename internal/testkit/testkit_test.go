package testkit

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/linalg"
)

func TestMixIsDeterministicAndSpreads(t *testing.T) {
	if Mix(1, 2) != Mix(1, 2) {
		t.Fatal("Mix is not deterministic")
	}
	seen := map[int64]bool{}
	for tag := int64(0); tag < 100; tag++ {
		s := Mix(42, tag)
		if seen[s] {
			t.Fatalf("Mix(42, %d) collides", tag)
		}
		seen[s] = true
	}
	if MixString(7, "svm/svc") == MixString(7, "svm/oneclass") {
		t.Fatal("MixString does not separate names")
	}
}

func TestCompareBitExact(t *testing.T) {
	nan1 := math.NaN()
	if err := Exact.Compare([]float64{1, nan1, math.Inf(1)}, []float64{1, nan1, math.Inf(1)}); err != nil {
		t.Fatalf("identical vectors rejected: %v", err)
	}
	if err := Exact.Compare([]float64{1}, []float64{math.Nextafter(1, 2)}); err == nil {
		t.Fatal("near-equal accepted by bit-exact policy")
	}
	// 0.0 and -0.0 differ in bits: the policy must notice.
	if err := Exact.Compare([]float64{0}, []float64{math.Copysign(0, -1)}); err == nil {
		t.Fatal("-0.0 accepted as bit-equal to +0.0")
	}
}

func TestCompareFlips(t *testing.T) {
	want := []float64{0, 0, 1, 1, 0, 1, 0, 1, 1, 0}
	got := append([]float64(nil), want...)
	got[3] = 0
	if err := Flips(0.2).Compare(want, got); err != nil {
		t.Fatalf("1/10 flips rejected at 20%%: %v", err)
	}
	got[5] = 0
	got[8] = 0
	if err := Flips(0.2).Compare(want, got); err == nil {
		t.Fatal("3/10 flips accepted at 20%")
	}
}

func TestCompareApprox(t *testing.T) {
	tol := Approx(1e-9, 1e-9)
	if err := tol.Compare([]float64{1e6}, []float64{1e6 + 1e-4}); err != nil {
		t.Fatalf("within relative tolerance rejected: %v", err)
	}
	if err := tol.Compare([]float64{1}, []float64{1.001}); err == nil {
		t.Fatal("out-of-tolerance accepted")
	}
	if err := tol.Compare([]float64{math.NaN()}, []float64{math.NaN()}); err != nil {
		t.Fatalf("NaN/NaN rejected: %v", err)
	}
	if err := tol.Compare([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Fatal("NaN vs finite accepted")
	}
}

func TestAdversarialRowsCoverEdgeCases(t *testing.T) {
	m := AdversarialRows(3, true)
	var hasInf, hasNegInf, hasSubnormal, hasNaN bool
	for _, v := range m.Data {
		switch {
		case math.IsInf(v, 1):
			hasInf = true
		case math.IsInf(v, -1):
			hasNegInf = true
		case v != 0 && math.Abs(v) < 2.3e-308: // below smallest normal
			hasSubnormal = true
		case math.IsNaN(v):
			hasNaN = true
		}
	}
	if !hasInf || !hasNegInf || !hasSubnormal || !hasNaN {
		t.Fatalf("missing edge cases: +Inf=%v -Inf=%v subnormal=%v NaN=%v",
			hasInf, hasNegInf, hasSubnormal, hasNaN)
	}
	if noNaN := AdversarialRows(3, false); noNaN.Rows != m.Rows-1 {
		t.Fatalf("withNaN toggles %d rows, want 1", m.Rows-noNaN.Rows)
	}
}

func TestCaseDerivationIsPure(t *testing.T) {
	c, ok := Lookup("linear/ridge")
	if !ok {
		t.Fatal("linear/ridge not registered")
	}
	a, b := c.Case(99, 3), c.Case(99, 3)
	if err := Exact.Compare(a.Train.X.Data, b.Train.X.Data); err != nil {
		t.Fatalf("same (seed,idx) produced different training data: %v", err)
	}
	if err := Exact.Compare(a.Probes.Data, b.Probes.Data); err != nil {
		t.Fatalf("same (seed,idx) produced different probes: %v", err)
	}
	other := c.Case(100, 3)
	if err := Exact.Compare(a.Train.X.Data, other.Train.X.Data); err == nil {
		t.Fatal("different seeds produced identical training data")
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(Conformer{Name: "linear/ridge", Pkg: "linear"})
}

func TestShrinkRowsFindsMinimalCase(t *testing.T) {
	// Plant a poison row; the failure predicate is "any poison present".
	// The shrinker must reduce 64 rows to exactly the 1 poison row.
	x := linalg.NewMatrix(64, 2)
	y := make([]float64, 64)
	for i := 0; i < 64; i++ {
		x.Set(i, 0, float64(i))
	}
	const poison = 37
	x.Set(poison, 1, -1)
	cs := &Case{Train: dataset.MustNew(x, y, nil), Probes: linalg.NewMatrix(1, 2)}
	min := ShrinkRows(cs, func(c *Case) bool {
		for i := 0; i < c.Train.Len(); i++ {
			if c.Train.Row(i)[1] == -1 {
				return true
			}
		}
		return false
	})
	if min.Train.Len() != 1 {
		t.Fatalf("shrunk to %d rows, want 1", min.Train.Len())
	}
	if min.Train.Row(0)[1] != -1 {
		t.Fatal("shrunk case lost the poison row")
	}
}

func TestShrinkKeepsYMatAligned(t *testing.T) {
	x := linalg.NewMatrix(16, 1)
	ym := linalg.NewMatrix(16, 1)
	for i := 0; i < 16; i++ {
		x.Set(i, 0, float64(i))
		ym.Set(i, 0, float64(i))
	}
	cs := &Case{Train: dataset.MustNew(x, nil, nil), YMat: ym, Probes: linalg.NewMatrix(1, 1)}
	min := ShrinkRows(cs, func(c *Case) bool {
		for i := 0; i < c.Train.Len(); i++ {
			if c.Train.Row(i)[0] != c.YMat.At(i, 0) {
				t.Fatalf("YMat misaligned during shrink: row %d", i)
			}
			if c.Train.Row(i)[0] == 11 {
				return true
			}
		}
		return false
	})
	if min.Train.Len() != 1 || min.Train.Row(0)[0] != 11 {
		t.Fatalf("shrunk to %d rows (first=%v), want the single row 11",
			min.Train.Len(), min.Train.Row(0)[0])
	}
}

func TestReplayHintRoundTrips(t *testing.T) {
	hint := ReplayHint(1234, "gp", 7)
	if !strings.Contains(hint, `"gp"`) || !strings.Contains(hint, "1234") {
		t.Fatalf("hint %q missing seed or name", hint)
	}
	if err := Replay(1234, "no/such/conformer", 0); err == nil {
		t.Fatal("replay of unknown conformer did not error")
	}
}

func TestMetamorphicTransformsPreserveShape(t *testing.T) {
	c, _ := Lookup("linear/ridge")
	cs := c.Case(5, 0)
	for _, rel := range c.Relations {
		r := cs.Rng(55)
		cs2, oracle := rel.Transform.Apply(r, cs)
		if cs2.Train.Dim() != cs.Train.Dim() {
			t.Fatalf("%s changed dim", rel.Transform.Name)
		}
		if got := oracle(make([]float64, 4)); len(got) != 4 {
			t.Fatalf("%s oracle changed length", rel.Transform.Name)
		}
	}
}

// TestEveryConformerPassesOneCase is the in-package smoke pass: one full
// conformance check per registered learner. The root conformance_test.go
// runs the real sweeps.
func TestEveryConformerPassesOneCase(t *testing.T) {
	for _, c := range All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			cs := c.Case(2024, 0)
			if err := c.Check(cs); err != nil {
				t.Fatalf("%v\nreplay: %s", err, ReplayHint(2024, c.Name, 0))
			}
		})
	}
}
