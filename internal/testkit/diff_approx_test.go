package testkit

import (
	"math"
	"strings"
	"testing"

	"repro/internal/model"
)

// approxConformers are the compiled-kind registrations the lane test
// sweeps; each pairs the conformer with its spec and tolerance.
var approxLane = []struct {
	name string
	spec func(cs *Case) model.ApproxSpec
	fit  func(cs *Case) (any, error)
	tol  Tolerance
}{
	{"svm/svc-approx", svcApproxSpec,
		func(cs *Case) (any, error) { return fitSVCRBF(cs) }, svcApproxTol},
	{"svm/oneclass-approx", oneClassApproxSpec,
		func(cs *Case) (any, error) { return fitOneClassPSD(cs) }, oneClassApproxTol},
	{"gp-approx", gpApproxSpec,
		func(cs *Case) (any, error) { return fitGPRBF(cs) }, gpApproxTol},
}

// TestDiffPathsApproxLane drives the exact-vs-approx lane directly for
// every compiled kind: fit the exact model, then DiffPathsApprox must
// pass — tolerance-bounded decisions on finite probes plus full
// bit-identity DiffPaths (batch workers 1/2/8, decode, HTTP MaxBatch
// 1 and 8) on the compiled model.
func TestDiffPathsApproxLane(t *testing.T) {
	const seed = 20240806
	for _, lane := range approxLane {
		lane := lane
		t.Run(strings.ReplaceAll(lane.name, "/", "_"), func(t *testing.T) {
			c, ok := Lookup(lane.name)
			if !ok {
				t.Fatalf("conformer %q not registered", lane.name)
			}
			for idx := 0; idx < 3; idx++ {
				cs := c.Case(seed, idx)
				exact, err := lane.fit(cs)
				if err != nil {
					t.Fatalf("case %d: fit: %v", idx, err)
				}
				if err := DiffPathsApprox(exact, lane.spec(cs), cs.Probes, lane.tol); err != nil {
					t.Errorf("case %d: %v", idx, err)
				}
			}
		})
	}
}

// TestApproxLaneErrorHeadroom measures the worst exact-vs-approx
// decision error over a wider sweep and logs it next to the registered
// tolerance, so a tolerance drifting toward its bound is visible before
// the nightly 8x sweep trips.
func TestApproxLaneErrorHeadroom(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is not -short material")
	}
	const seed, cases = 20240806, 30
	for _, lane := range approxLane {
		lane := lane
		t.Run(strings.ReplaceAll(lane.name, "/", "_"), func(t *testing.T) {
			c, ok := Lookup(lane.name)
			if !ok {
				t.Fatalf("conformer %q not registered", lane.name)
			}
			worst := 0.0
			for idx := 0; idx < cases; idx++ {
				cs := c.Case(seed, idx)
				exact, err := lane.fit(cs)
				if err != nil {
					t.Fatalf("case %d: fit: %v", idx, err)
				}
				am, err := model.CompileApprox(exact, lane.spec(cs))
				if err != nil {
					t.Fatalf("case %d: compile: %v", idx, err)
				}
				basis, err := exactBasis(exact)
				if err != nil {
					t.Fatal(err)
				}
				lo, hi := basisEnvelope(basis)
				for i := 0; i < cs.Probes.Rows; i++ {
					x := cs.Probes.Row(i)
					if !allFinite(x) || !inBox(x, lo, hi) {
						continue
					}
					w, err := exactDecision(exact, x)
					if err != nil {
						t.Fatal(err)
					}
					if e := math.Abs(am.Decision(x) - w); e > worst {
						worst = e
					}
				}
			}
			t.Logf("%s: worst |approx − exact| = %.4g over %d cases (tol abs %g)",
				lane.name, worst, cases, lane.tol.Abs)
			if worst > lane.tol.Abs {
				t.Errorf("worst error %g exceeds the lane's abs tolerance %g", worst, lane.tol.Abs)
			}
		})
	}
}
