package testkit

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/linalg"
)

// Mathematical invariant checkers. Each returns nil or an error naming
// the violation; the conformance driver runs them against every
// generated fit. They encode the paper's Section 2 mathematics as
// executable properties: Mercer kernels produce PSD Gram matrices, dual
// solutions respect their feasible regions, posterior variances respect
// their prior bounds, partitions cover the input space, and validation
// folds partition the sample set.

// CheckGramPSD asserts the Gram matrix of x under k is positive
// semidefinite within tol (all eigenvalues ≥ −tol) — the Mercer
// condition every valid kernel must satisfy on any sample set,
// including rank-deficient ones built from duplicated rows.
func CheckGramPSD(k kernel.Kernel, x *linalg.Matrix, tol float64) error {
	g := kernel.Gram(k, x)
	if !kernel.IsPSD(g, tol) {
		return fmt.Errorf("gram matrix of %s on %dx%d data is not PSD within %g",
			k.Name(), x.Rows, x.Cols, tol)
	}
	return nil
}

// CheckKernelSymmetry asserts k(a,b) and k(b,a) agree bit for bit over
// all row pairs of x. Every closed-form kernel in this repo is built
// from commutative primitives, so symmetry holds exactly, not just
// within tolerance.
func CheckKernelSymmetry(k kernel.Kernel, x *linalg.Matrix) error {
	for i := 0; i < x.Rows; i++ {
		for j := i + 1; j < x.Rows; j++ {
			ab, ba := k.Eval(x.Row(i), x.Row(j)), k.Eval(x.Row(j), x.Row(i))
			if math.Float64bits(ab) != math.Float64bits(ba) {
				return fmt.Errorf("%s asymmetric on rows (%d,%d): k(a,b)=%v, k(b,a)=%v",
					k.Name(), i, j, ab, ba)
			}
		}
	}
	return nil
}

// CheckGPVarianceBounds asserts the GP posterior variance at every
// all-finite probe row stays inside its mathematical bounds:
// 0 ≤ var(x) ≤ k(x,x) + tol (conditioning on data can only shrink the
// prior variance). Non-finite probes are skipped — their variance is
// deliberately NaN.
func CheckGPVarianceBounds(g *gp.Regressor, probes *linalg.Matrix, tol float64) error {
	_, vars := g.PredictVarBatch(probes)
	for i, v := range vars {
		row := probes.Row(i)
		if !allFinite(row) {
			continue
		}
		if v < 0 {
			return fmt.Errorf("probe %d: negative posterior variance %v", i, v)
		}
		if prior := g.K.Eval(row, row); v > prior+tol {
			return fmt.Errorf("probe %d: posterior variance %v exceeds prior %v + %g", i, v, prior, tol)
		}
	}
	return nil
}

// CheckFoldPartition asserts the k-fold index sets form a partition:
// test folds are pairwise disjoint, their union is exactly [0, n), and
// each fold's train set is the complement of its test set.
func CheckFoldPartition(trainIdx, testIdx [][]int, n int) error {
	if len(trainIdx) != len(testIdx) {
		return fmt.Errorf("%d train folds but %d test folds", len(trainIdx), len(testIdx))
	}
	seen := make([]int, n)
	for f, fold := range testIdx {
		inTest := make(map[int]bool, len(fold))
		for _, i := range fold {
			if i < 0 || i >= n {
				return fmt.Errorf("fold %d: test index %d outside [0,%d)", f, i, n)
			}
			if seen[i] != 0 {
				return fmt.Errorf("index %d appears in test folds %d and %d", i, seen[i]-1, f)
			}
			seen[i] = f + 1
			inTest[i] = true
		}
		if len(trainIdx[f])+len(fold) != n {
			return fmt.Errorf("fold %d: train %d + test %d != %d", f, len(trainIdx[f]), len(fold), n)
		}
		for _, i := range trainIdx[f] {
			if inTest[i] {
				return fmt.Errorf("fold %d: index %d is in both train and test", f, i)
			}
		}
	}
	for i, f := range seen {
		if f == 0 {
			return fmt.Errorf("index %d appears in no test fold", i)
		}
	}
	return nil
}

// CheckStratification asserts a stratified split preserved per-class
// proportions: for every class, the training share is within slack of
// the requested fraction (slack absorbs integer rounding on small
// classes).
func CheckStratification(orig, train *dataset.Dataset, frac, slack float64) error {
	origCounts := orig.ClassCounts()
	trainCounts := train.ClassCounts()
	for c, total := range origCounts {
		got := float64(trainCounts[c]) / float64(total)
		if math.Abs(got-frac) > slack+1.0/float64(total) {
			return fmt.Errorf("class %d: train share %.3f, want %.3f ± %.3f (n=%d)",
				c, got, frac, slack, total)
		}
	}
	return nil
}

// CheckMonotoneNonIncreasing asserts the sequence never rises by more
// than relTol of its current magnitude — the Lloyd's-algorithm SSE
// contract and any other descent-style convergence trace.
func CheckMonotoneNonIncreasing(trace []float64, relTol float64) error {
	for i := 1; i < len(trace); i++ {
		if trace[i] > trace[i-1]+relTol*math.Abs(trace[i-1]) {
			return fmt.Errorf("step %d rose: %v -> %v", i, trace[i-1], trace[i])
		}
	}
	return nil
}

// CheckClassBalance asserts the dataset's class counts are equal within
// slack samples — the SMOTE/oversampling output contract.
func CheckClassBalance(d *dataset.Dataset, slack int) error {
	counts := d.ClassCounts()
	lo, hi := math.MaxInt, 0
	for _, n := range counts {
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if hi-lo > slack {
		return fmt.Errorf("class counts %v differ by %d > %d", counts, hi-lo, slack)
	}
	return nil
}

// CheckWithinClassBox asserts every row of got labelled c lies inside
// the per-coordinate bounding box of the rows of ref labelled c — the
// SMOTE interpolation contract (synthetic minority samples are convex
// combinations of real ones, so they cannot escape the box).
func CheckWithinClassBox(ref, got *dataset.Dataset, c int) error {
	lo := constRow(ref.Dim(), math.Inf(1))
	hi := constRow(ref.Dim(), math.Inf(-1))
	for i := 0; i < ref.Len(); i++ {
		if int(ref.Y[i]) != c {
			continue
		}
		for j, v := range ref.Row(i) {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	for i := 0; i < got.Len(); i++ {
		if int(got.Y[i]) != c {
			continue
		}
		for j, v := range got.Row(i) {
			if v < lo[j] || v > hi[j] {
				return fmt.Errorf("row %d feature %d: %v outside class-%d box [%v, %v]",
					i, j, v, c, lo[j], hi[j])
			}
		}
	}
	return nil
}

// CheckFinite asserts every value is finite.
func CheckFinite(name string, vals []float64) error {
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%s[%d] = %v is not finite", name, i, v)
		}
	}
	return nil
}

// CheckInSet asserts every value is one of the allowed values (class
// labels, cluster indices as floats).
func CheckInSet(name string, vals []float64, allowed ...float64) error {
	ok := make(map[float64]bool, len(allowed))
	for _, a := range allowed {
		ok[a] = true
	}
	for i, v := range vals {
		if !ok[v] {
			return fmt.Errorf("%s[%d] = %v not in %v", name, i, v, allowed)
		}
	}
	return nil
}

func allFinite(row []float64) bool {
	for _, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
