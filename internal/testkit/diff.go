package testkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/gp"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/svm"
)

// Differential driver: one fitted model, every execution path the repo
// offers, one contract. The reference is per-row ScoreRow on the
// freshly encoded artifact; every other path — batched scoring at
// several worker counts, the marshal→decode→score persistence round
// trip, and the in-process HTTP server at two batching configurations —
// must reproduce it bit for bit. Any disagreement is a determinism bug
// in a scoring path, not a modelling question, which is why the policy
// here is always Exact and never a tolerance.

// DiffWorkerCounts are the worker-pool sizes every batch path is
// exercised at. 1 forces the serial path, 2 exercises striping, 8
// exceeds the row count of small probe sets so some workers go idle.
var DiffWorkerCounts = []int{1, 2, 8}

// DiffPaths fits nothing: it takes an already-fitted persistable model,
// encodes it, and checks every scoring path against the per-row
// reference on the probe matrix. The returned error names the first
// disagreeing path.
func DiffPaths(m any, probes *linalg.Matrix) error {
	art, err := model.Encode(m, model.Meta{Name: "testkit-diff"})
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	scorer, err := art.Scorer()
	if err != nil {
		return fmt.Errorf("scorer: %w", err)
	}

	// Reference: per-row scoring with the worker pool pinned to 1.
	ref := scoreRows(scorer, probes, 1)

	// Path: ScoreBatch at each worker count.
	for _, w := range DiffWorkerCounts {
		if err := compareAt(ref, func() []float64 { return scorer.ScoreBatch(probes) }, w); err != nil {
			return fmt.Errorf("batch path, %d workers: %w", w, err)
		}
	}

	// Path: marshal → decode → Scorer, rebuilt entirely from bytes.
	data, err := art.Marshal()
	if err != nil {
		return fmt.Errorf("marshal: %w", err)
	}
	decoded, err := model.Decode(data)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	dscorer, err := decoded.Scorer()
	if err != nil {
		return fmt.Errorf("decoded scorer: %w", err)
	}
	if err := compareAt(ref, func() []float64 { return scoreRows(dscorer, probes, 1) }, 1); err != nil {
		return fmt.Errorf("decoded row path: %w", err)
	}
	for _, w := range DiffWorkerCounts {
		if err := compareAt(ref, func() []float64 { return dscorer.ScoreBatch(probes) }, w); err != nil {
			return fmt.Errorf("decoded batch path, %d workers: %w", w, err)
		}
	}

	// Path: in-process HTTP serving, unbatched and micro-batched. JSON
	// cannot carry ±Inf/NaN, so only all-finite probe rows (with finite
	// reference scores) ride this path; the non-finite rows are already
	// covered bitwise by every in-process path above.
	finite := finiteProbeRows(probes, ref)
	if len(finite) > 0 {
		sub := linalg.NewMatrix(len(finite), probes.Cols)
		want := make([]float64, len(finite))
		for to, from := range finite {
			copy(sub.Row(to), probes.Row(from))
			want[to] = ref[from]
		}
		for _, cfg := range []serve.Config{
			{MaxBatch: 1},
			{MaxBatch: 8, MaxWait: time.Millisecond},
		} {
			got, err := scoreViaHTTP(art, cfg, sub)
			if err != nil {
				return fmt.Errorf("http path (maxBatch=%d): %w", cfg.MaxBatch, err)
			}
			if err := Exact.Compare(want, got); err != nil {
				return fmt.Errorf("http path (maxBatch=%d): %w", cfg.MaxBatch, err)
			}
		}
	}
	return nil
}

// DiffPathsApprox is the exact-vs-approx lane of the differential
// driver: compile the exact kernel model under spec, check the compiled
// decision values track the exact ones within tol (an Approx tolerance
// — this lane is the one place the driver accepts anything but bit
// identity), then run the full DiffPaths contract on the compiled model
// so every scoring path over it is still bit-identical to every other.
// The tolerance comparison runs on the finite probe rows only: on a
// ±Inf/NaN row the exact RBF evaluates exp(-Inf) = 0 while the cosine
// feature map evaluates cos(Inf) = NaN — a representational difference,
// not an error — and DiffPaths already pins the compiled model's
// adversarial-row behavior bitwise across paths.
func DiffPathsApprox(exact any, spec model.ApproxSpec, probes *linalg.Matrix, tol Tolerance) error {
	am, err := model.CompileApprox(exact, spec)
	if err != nil {
		return fmt.Errorf("compile %s: %w", spec, err)
	}
	if err := CompareApproxDecisions(exact, am, probes, tol); err != nil {
		return fmt.Errorf("exact-vs-approx (%s): %w", spec, err)
	}
	if err := DiffPaths(am, probes); err != nil {
		return fmt.Errorf("compiled %s: %w", spec, err)
	}
	return nil
}

// CompareApproxDecisions checks the compiled model's raw decision
// values against the exact model's. The comparison covers the probe
// rows that are all-finite AND inside the exact model's training
// envelope (the basis bounding box expanded by half its span, with a
// unit floor) — the region the approximation contract is a statement
// about. Far outside it the two forms legitimately diverge without
// bound: the exact RBF decays to zero while the cosine features keep
// oscillating, and a polynomial kernel grows without the landmark span
// to anchor the Nyström extrapolation. GenProbes rows (training box
// ±10% span) always fall inside the envelope; the 1e300-scale
// adversarial constants fall outside and stay covered bitwise by
// DiffPaths on the compiled model.
func CompareApproxDecisions(exact any, am *model.ApproxModel, probes *linalg.Matrix, tol Tolerance) error {
	basis, err := exactBasis(exact)
	if err != nil {
		return err
	}
	lo, hi := basisEnvelope(basis)
	var want, got []float64
	for i := 0; i < probes.Rows; i++ {
		x := probes.Row(i)
		if !allFinite(x) || !inBox(x, lo, hi) {
			continue
		}
		w, err := exactDecision(exact, x)
		if err != nil {
			return err
		}
		want = append(want, w)
		got = append(got, am.Decision(x))
	}
	return tol.Compare(want, got)
}

// exactBasis returns the kernel expansion basis of an exact model.
func exactBasis(m any) (*linalg.Matrix, error) {
	switch mm := m.(type) {
	case *svm.SVC:
		return mm.SV, nil
	case *svm.OneClass:
		return mm.SV, nil
	case *gp.Regressor:
		return mm.X, nil
	default:
		return nil, fmt.Errorf("testkit: no kernel basis for %T", m)
	}
}

// basisEnvelope is the per-coordinate bounding box of the basis rows,
// expanded by half the span on each side with a unit floor.
func basisEnvelope(basis *linalg.Matrix) (lo, hi []float64) {
	lo = make([]float64, basis.Cols)
	hi = make([]float64, basis.Cols)
	for j := range lo {
		lo[j], hi[j] = basis.At(0, j), basis.At(0, j)
		for i := 1; i < basis.Rows; i++ {
			v := basis.At(i, j)
			lo[j] = math.Min(lo[j], v)
			hi[j] = math.Max(hi[j], v)
		}
		margin := math.Max(1, 0.5*(hi[j]-lo[j]))
		lo[j] -= margin
		hi[j] += margin
	}
	return lo, hi
}

func inBox(x, lo, hi []float64) bool {
	for j, v := range x {
		if v < lo[j] || v > hi[j] {
			return false
		}
	}
	return true
}

// exactDecision returns the raw expansion value of an exact kernel
// model — the quantity a compiled scorer approximates.
func exactDecision(m any, x []float64) (float64, error) {
	switch mm := m.(type) {
	case *svm.SVC:
		return mm.Decision(x), nil
	case *svm.OneClass:
		return mm.Decision(x), nil
	case *gp.Regressor:
		return mm.Predict(x), nil
	default:
		return 0, fmt.Errorf("testkit: no exact decision for %T", m)
	}
}

// scoreRows runs ScoreRow per row with the worker pool pinned to n.
func scoreRows(s model.Scorer, x *linalg.Matrix, n int) []float64 {
	defer parallel.SetWorkers(parallel.SetWorkers(n))
	out := make([]float64, x.Rows)
	for i := range out {
		out[i] = s.ScoreRow(x.Row(i))
	}
	return out
}

// compareAt pins the worker pool to n, evaluates f, and checks bit
// identity against ref.
func compareAt(ref []float64, f func() []float64, n int) error {
	defer parallel.SetWorkers(parallel.SetWorkers(n))
	return Exact.Compare(ref, f())
}

// finiteProbeRows returns the indices of probe rows that are all-finite
// AND whose reference score is finite (JSON-representable end to end).
func finiteProbeRows(probes *linalg.Matrix, ref []float64) []int {
	var idx []int
	for i := 0; i < probes.Rows; i++ {
		if allFinite(probes.Row(i)) && allFinite(ref[i:i+1]) {
			idx = append(idx, i)
		}
	}
	return idx
}

// scoreViaHTTP loads the artifact into a fresh server, posts all rows
// as one predict request through httptest, and returns the predictions.
func scoreViaHTTP(art *model.Artifact, cfg serve.Config, x *linalg.Matrix) ([]float64, error) {
	srv := serve.New(cfg)
	defer srv.Close()
	const name = "diff"
	if err := srv.Load(name, art); err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	instances := make([][]float64, x.Rows)
	for i := range instances {
		instances[i] = x.Row(i)
	}
	body, err := json.Marshal(map[string]any{"instances": instances})
	if err != nil {
		return nil, fmt.Errorf("marshal request: %w", err)
	}
	req := httptest.NewRequest(http.MethodPost, "/predict/"+name, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Predictions []float64 `json:"predictions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("unmarshal response: %w", err)
	}
	return resp.Predictions, nil
}
