package testkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/serve"
)

// Differential driver: one fitted model, every execution path the repo
// offers, one contract. The reference is per-row ScoreRow on the
// freshly encoded artifact; every other path — batched scoring at
// several worker counts, the marshal→decode→score persistence round
// trip, and the in-process HTTP server at two batching configurations —
// must reproduce it bit for bit. Any disagreement is a determinism bug
// in a scoring path, not a modelling question, which is why the policy
// here is always Exact and never a tolerance.

// DiffWorkerCounts are the worker-pool sizes every batch path is
// exercised at. 1 forces the serial path, 2 exercises striping, 8
// exceeds the row count of small probe sets so some workers go idle.
var DiffWorkerCounts = []int{1, 2, 8}

// DiffPaths fits nothing: it takes an already-fitted persistable model,
// encodes it, and checks every scoring path against the per-row
// reference on the probe matrix. The returned error names the first
// disagreeing path.
func DiffPaths(m any, probes *linalg.Matrix) error {
	art, err := model.Encode(m, model.Meta{Name: "testkit-diff"})
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	scorer, err := art.Scorer()
	if err != nil {
		return fmt.Errorf("scorer: %w", err)
	}

	// Reference: per-row scoring with the worker pool pinned to 1.
	ref := scoreRows(scorer, probes, 1)

	// Path: ScoreBatch at each worker count.
	for _, w := range DiffWorkerCounts {
		if err := compareAt(ref, func() []float64 { return scorer.ScoreBatch(probes) }, w); err != nil {
			return fmt.Errorf("batch path, %d workers: %w", w, err)
		}
	}

	// Path: marshal → decode → Scorer, rebuilt entirely from bytes.
	data, err := art.Marshal()
	if err != nil {
		return fmt.Errorf("marshal: %w", err)
	}
	decoded, err := model.Decode(data)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	dscorer, err := decoded.Scorer()
	if err != nil {
		return fmt.Errorf("decoded scorer: %w", err)
	}
	if err := compareAt(ref, func() []float64 { return scoreRows(dscorer, probes, 1) }, 1); err != nil {
		return fmt.Errorf("decoded row path: %w", err)
	}
	for _, w := range DiffWorkerCounts {
		if err := compareAt(ref, func() []float64 { return dscorer.ScoreBatch(probes) }, w); err != nil {
			return fmt.Errorf("decoded batch path, %d workers: %w", w, err)
		}
	}

	// Path: in-process HTTP serving, unbatched and micro-batched. JSON
	// cannot carry ±Inf/NaN, so only all-finite probe rows (with finite
	// reference scores) ride this path; the non-finite rows are already
	// covered bitwise by every in-process path above.
	finite := finiteProbeRows(probes, ref)
	if len(finite) > 0 {
		sub := linalg.NewMatrix(len(finite), probes.Cols)
		want := make([]float64, len(finite))
		for to, from := range finite {
			copy(sub.Row(to), probes.Row(from))
			want[to] = ref[from]
		}
		for _, cfg := range []serve.Config{
			{MaxBatch: 1},
			{MaxBatch: 8, MaxWait: time.Millisecond},
		} {
			got, err := scoreViaHTTP(art, cfg, sub)
			if err != nil {
				return fmt.Errorf("http path (maxBatch=%d): %w", cfg.MaxBatch, err)
			}
			if err := Exact.Compare(want, got); err != nil {
				return fmt.Errorf("http path (maxBatch=%d): %w", cfg.MaxBatch, err)
			}
		}
	}
	return nil
}

// scoreRows runs ScoreRow per row with the worker pool pinned to n.
func scoreRows(s model.Scorer, x *linalg.Matrix, n int) []float64 {
	defer parallel.SetWorkers(parallel.SetWorkers(n))
	out := make([]float64, x.Rows)
	for i := range out {
		out[i] = s.ScoreRow(x.Row(i))
	}
	return out
}

// compareAt pins the worker pool to n, evaluates f, and checks bit
// identity against ref.
func compareAt(ref []float64, f func() []float64, n int) error {
	defer parallel.SetWorkers(parallel.SetWorkers(n))
	return Exact.Compare(ref, f())
}

// finiteProbeRows returns the indices of probe rows that are all-finite
// AND whose reference score is finite (JSON-representable end to end).
func finiteProbeRows(probes *linalg.Matrix, ref []float64) []int {
	var idx []int
	for i := 0; i < probes.Rows; i++ {
		if allFinite(probes.Row(i)) && allFinite(ref[i:i+1]) {
			idx = append(idx, i)
		}
	}
	return idx
}

// scoreViaHTTP loads the artifact into a fresh server, posts all rows
// as one predict request through httptest, and returns the predictions.
func scoreViaHTTP(art *model.Artifact, cfg serve.Config, x *linalg.Matrix) ([]float64, error) {
	srv := serve.New(cfg)
	defer srv.Close()
	const name = "diff"
	if err := srv.Load(name, art); err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	instances := make([][]float64, x.Rows)
	for i := range instances {
		instances[i] = x.Row(i)
	}
	body, err := json.Marshal(map[string]any{"instances": instances})
	if err != nil {
		return nil, fmt.Errorf("marshal request: %w", err)
	}
	req := httptest.NewRequest(http.MethodPost, "/predict/"+name, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Predictions []float64 `json:"predictions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("unmarshal response: %w", err)
	}
	return resp.Predictions, nil
}
