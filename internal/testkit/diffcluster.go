package testkit

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/serve/cluster"
)

// DiffPathsCluster is the cluster lane of the differential driver: the
// same fitted model, scored through a real 3-node cluster (three
// serve.Servers on loopback behind one Router), must be bit-identical
// to single-node per-row scoring. Replication 3 puts every replica in
// the owner set and SpreadMin 2 forces even small probe batches to fan
// out, so the merged response genuinely crosses nodes. Both the
// whole-batch route (split across replicas, merged in order) and the
// per-row route (each row a separate request, possibly landing on
// different replicas) are checked against the per-row reference.
//
// Like the HTTP lane in DiffPaths, only all-finite probe rows with
// finite reference scores ride this path — JSON cannot carry ±Inf/NaN
// — and those rows are already pinned bitwise by the in-process lanes.
func DiffPathsCluster(m any, probes *linalg.Matrix) error {
	art, err := model.Encode(m, model.Meta{Name: "testkit-diff"})
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	scorer, err := art.Scorer()
	if err != nil {
		return fmt.Errorf("scorer: %w", err)
	}
	ref := scoreRows(scorer, probes, 1)

	finite := finiteProbeRows(probes, ref)
	if len(finite) == 0 {
		return nil
	}
	sub := linalg.NewMatrix(len(finite), probes.Cols)
	want := make([]float64, len(finite))
	for to, from := range finite {
		copy(sub.Row(to), probes.Row(from))
		want[to] = ref[from]
	}

	const name = "diff"
	lc, err := cluster.NewLocal(3, serve.Config{MaxBatch: 8, MaxWait: time.Millisecond}, cluster.Config{
		Replication: 3,
		SpreadMin:   2,
	})
	if err != nil {
		return fmt.Errorf("boot cluster: %w", err)
	}
	defer lc.Close()
	// Load first: a replica's /readyz stays 503 until it serves a model.
	if err := lc.LoadDirect(name, art); err != nil {
		return fmt.Errorf("load: %w", err)
	}
	if n := lc.ProbeAll(context.Background()); n != 3 {
		return fmt.Errorf("probe: %d/3 replicas healthy", n)
	}

	// Whole batch through the router: split across all three replicas
	// (SpreadMin 2 guarantees fan-out for any probe set of ≥2 rows),
	// merged back in request order.
	got, err := clusterPredict(lc.Router.Handler(), name, matrixRows(sub))
	if err != nil {
		return fmt.Errorf("cluster batch path: %w", err)
	}
	if err := Exact.Compare(want, got); err != nil {
		return fmt.Errorf("cluster batch path: %w", err)
	}

	// Row at a time: each request is its own routing decision, so rows
	// land wherever their owner set's health points — still the same
	// bits.
	for i := 0; i < sub.Rows; i++ {
		got, err := clusterPredict(lc.Router.Handler(), name, [][]float64{sub.Row(i)})
		if err != nil {
			return fmt.Errorf("cluster row path, row %d: %w", i, err)
		}
		if err := Exact.Compare(want[i:i+1], got); err != nil {
			return fmt.Errorf("cluster row path, row %d: %w", i, err)
		}
	}
	return nil
}

// matrixRows views a matrix as a slice of row slices.
func matrixRows(x *linalg.Matrix) [][]float64 {
	rows := make([][]float64, x.Rows)
	for i := range rows {
		rows[i] = x.Row(i)
	}
	return rows
}

// clusterPredict posts one predict request through the router handler.
func clusterPredict(h http.Handler, name string, instances [][]float64) ([]float64, error) {
	body, err := json.Marshal(map[string]any{"instances": instances})
	if err != nil {
		return nil, fmt.Errorf("marshal request: %w", err)
	}
	req := httptest.NewRequest(http.MethodPost, "/predict/"+name, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Predictions []float64 `json:"predictions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("unmarshal response: %w", err)
	}
	return resp.Predictions, nil
}
