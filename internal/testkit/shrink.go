package testkit

// Shrinking: once a case fails, bisect its training set down to a
// minimal subset that still fails (delta debugging over rows). The
// shrunk size goes into the failure report next to the replay
// one-liner, so a 400-row generated failure arrives on a human's desk
// as "these 6 rows break it".

// shrinkBudget bounds the number of candidate evaluations — each
// candidate refits the model (possibly several times, for the
// relations), so the shrinker must not turn one failure into minutes of
// work.
const shrinkBudget = 200

// ShrinkRows reduces cs.Train to a (locally) minimal row subset for
// which fails still reports true. Probes are untouched; YMat rows track
// the training rows. Any error inside fails counts as a failure — the
// shrinker looks for the smallest case that misbehaves in any way, not
// necessarily the identical message.
func ShrinkRows(cs *Case, fails func(*Case) bool) *Case {
	cur := cs
	budget := shrinkBudget
	chunk := cur.Train.Len() / 2
	for chunk >= 1 && budget > 0 {
		removed := false
		for start := 0; start+chunk <= cur.Train.Len() && budget > 0; start += chunk {
			if cur.Train.Len()-chunk < 1 {
				break
			}
			cand := withoutRows(cur, start, chunk)
			budget--
			if fails(cand) {
				cur = cand
				removed = true
				start -= chunk // the window shifted left; re-test this offset
			}
		}
		if !removed {
			chunk /= 2
		}
	}
	return cur
}

// withoutRows copies the case minus training rows [start, start+n).
func withoutRows(cs *Case, start, n int) *Case {
	keep := make([]int, 0, cs.Train.Len()-n)
	for i := 0; i < cs.Train.Len(); i++ {
		if i < start || i >= start+n {
			keep = append(keep, i)
		}
	}
	out := *cs
	out.Train = cs.Train.Subset(keep)
	if cs.YMat != nil {
		out.YMat = permuteMatrixRows(cs.YMat, keep)
	}
	return &out
}
