package testkit

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bayes"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/imbalance"
	"repro/internal/kernel"
	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/linear"
	"repro/internal/multivar"
	"repro/internal/neural"
	"repro/internal/rules"
	"repro/internal/semisup"
	"repro/internal/stream"
	"repro/internal/svm"
	"repro/internal/tree"
)

// Every learner's registration. Tolerances are per-relation contracts,
// not wishes: Exact where the algorithm is deterministic or the
// transform is representable without rounding (×2 scaling, label
// swaps), Flips for discrete outputs where refitting on reordered data
// may legitimately move a few boundary samples, Approx for continuous
// outputs where float reassociation perturbs low bits.
//
// Kernel-stream discipline: a conformer that needs a random kernel
// draws it from c.Rng(kernelStream) inside Fit, NOT inside Gen — the
// metamorphic driver refits transformed copies of the case, and both
// fits must use the same kernel for the oracle to hold.

const (
	kernelStream = 101 // kernel hyperparameters
	fitStream    = 103 // learner-internal randomness (SMO, SGD, k-means++)
	maskStream   = 107 // semi-supervised label masking
)

// probesFor builds the standard probe matrix: in-distribution rows
// around the training box plus the full adversarial set (±Inf, NaN,
// subnormals, constants).
func probesFor(r *rand.Rand, d *dataset.Dataset, n int) *linalg.Matrix {
	return AppendRows(GenProbes(r, d, n), AdversarialRows(d.Dim(), true))
}

// rowScores applies a per-row scoring function over a matrix.
func rowScores(x *linalg.Matrix, f func([]float64) float64) []float64 {
	out := make([]float64, x.Rows)
	for i := range out {
		out[i] = f(x.Row(i))
	}
	return out
}

func init() {
	registerSVC()
	registerOneClass()
	registerStreamIncremental()
	registerRidge()
	registerGP()
	registerTree()
	registerRules()
	registerKNN()
	registerBayes()
	registerKMeans()
	registerNeural()
	registerLabelProp()
	registerSMOTE()
	registerPLS()
}

func registerSVC() {
	const c = 1.0
	Register(Conformer{
		Name:      "svm/svc",
		Pkg:       "svm",
		Persisted: true,
		Cases:     4,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenClassification(r, 50, 4, 2.2)
			return &Case{Train: d, Probes: probesFor(r, d, 40)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			k := GenPSDKernel(cs.Rng(kernelStream), cs.Train.Dim())
			m, err := svm.FitSVC(cs.Train, k, svm.SVCConfig{C: c, Seed: Mix(cs.stream, fitStream)})
			if err != nil {
				return nil, err
			}
			return &Fit{Predict: m.PredictBatch, Model: m}, nil
		},
		Invariants: func(cs *Case, f *Fit) error {
			m := f.Model.(*svm.SVC)
			if v := m.DualViolation(c); v > 1e-9 {
				return fmt.Errorf("svc dual box violation %g", v)
			}
			k := GenPSDKernel(cs.Rng(kernelStream), cs.Train.Dim())
			if err := CheckGramPSD(k, cs.Train.X, 1e-7); err != nil {
				return err
			}
			if err := CheckKernelSymmetry(k, firstRows(cs.Train.X, 10)); err != nil {
				return err
			}
			cls := m.Classes()
			return CheckInSet("svc prediction", f.Predict(cs.Probes), cls[0], cls[1])
		},
		// 0.25 headroom on the refit relations: the ~20% adversarial
		// probes (±Inf, NaN) take their decision sign from whichever
		// support vectors the refit SMO run keeps, so all of them may
		// legitimately flip even when the boundary barely moves.
		Relations: []Relation{
			Rel(RefitIdentity(), Exact),
			Rel(PermuteRows(), Flips(0.25)),
			Rel(FlipLabels01(), Flips(0.25)),
			Rel(PermuteFeatures(), Flips(0.25)),
		},
	})
}

func registerOneClass() {
	Register(Conformer{
		Name:      "svm/oneclass",
		Pkg:       "svm",
		Persisted: true,
		Cases:     4,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenClassification(r, 50, 4, 2.0)
			return &Case{Train: d, Probes: probesFor(r, d, 40)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			k := GenPSDKernel(cs.Rng(kernelStream), cs.Train.Dim())
			m, err := svm.FitOneClass(cs.Train.X, k, svm.OneClassConfig{Nu: 0.2})
			if err != nil {
				return nil, err
			}
			return &Fit{Predict: m.DecisionBatch, Model: m}, nil
		},
		Invariants: func(cs *Case, f *Fit) error {
			m := f.Model.(*svm.OneClass)
			sumErr, boxErr := m.DualViolation(cs.Train.Len())
			if sumErr > 1e-8 {
				return fmt.Errorf("one-class dual sum violation %g", sumErr)
			}
			if boxErr > 1e-8 {
				return fmt.Errorf("one-class dual box violation %g", boxErr)
			}
			k := GenPSDKernel(cs.Rng(kernelStream), cs.Train.Dim())
			return CheckGramPSD(k, cs.Train.X, 1e-7)
		},
		Relations: []Relation{Rel(RefitIdentity(), Exact)},
	})
}

// registerStreamIncremental pins the streaming trainer (sliding window,
// rank-1 Gram maintenance, warm-started refreshes — see internal/stream)
// to the same contracts as the batch learners: the replayed FitWindow is
// deterministic (RefitIdentity/Exact), its final model satisfies the
// ν-one-class dual constraints, and — the warm-start correctness guard —
// its decision function agrees with a cold batch fit on the same final
// window within solver tolerance.
func registerStreamIncremental() {
	const (
		streamWindow = 48
		streamRefit  = 16
	)
	streamCfg := svm.OneClassConfig{Nu: 0.2, MaxIters: 2000}
	Register(Conformer{
		Name:      "stream/incremental",
		Pkg:       "stream",
		Persisted: true,
		Cases:     4,
		Gen: func(r *rand.Rand, _ int) *Case {
			// More rows than the window, so the replay exercises
			// eviction and the carried-alpha realignment, not just
			// growth.
			d := GenClassification(r, 90, 4, 2.0)
			return &Case{Train: d, Probes: probesFor(r, d, 40)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			k := GenPSDKernel(cs.Rng(kernelStream), cs.Train.Dim())
			m, _, err := stream.FitWindow(cs.Train.X, k, streamWindow, streamRefit, streamCfg)
			if err != nil {
				return nil, err
			}
			return &Fit{Predict: m.DecisionBatch, Model: m}, nil
		},
		Invariants: func(cs *Case, f *Fit) error {
			m := f.Model.(*svm.OneClass)
			n := cs.Train.Len()
			if n > streamWindow {
				n = streamWindow
			}
			sumErr, boxErr := m.DualViolation(n)
			if sumErr > 1e-8 {
				return fmt.Errorf("stream one-class dual sum violation %g", sumErr)
			}
			if boxErr > 1e-8 {
				return fmt.Errorf("stream one-class dual box violation %g", boxErr)
			}
			// Warm-start correctness: a cold batch fit on exactly the
			// final window must define the same decision function as the
			// warm-started incremental chain that ended there.
			k := GenPSDKernel(cs.Rng(kernelStream), cs.Train.Dim())
			win := lastRows(cs.Train.X, streamWindow)
			cold, err := svm.FitOneClass(win, k, streamCfg)
			if err != nil {
				return fmt.Errorf("cold reference fit: %w", err)
			}
			// Tolerance is relative because the adversarial probes
			// (±Inf-adjacent magnitudes) scale both decisions to ~1e300.
			const tol = 1e-2
			for i := 0; i < cs.Probes.Rows; i++ {
				p := cs.Probes.Row(i)
				dw, dc := m.Decision(p), cold.Decision(p)
				if math.IsNaN(dw) && math.IsNaN(dc) {
					continue
				}
				scale := math.Max(1, math.Max(math.Abs(dw), math.Abs(dc)))
				if diff := math.Abs(dw - dc); diff > tol*scale {
					return fmt.Errorf("warm-chain decision diverges from cold fit at probe %d: |%g - %g| = %g > %g",
						i, dw, dc, diff, tol*scale)
				}
			}
			return nil
		},
		Relations: []Relation{Rel(RefitIdentity(), Exact)},
	})
}

// lastRows copies the trailing min(n, x.Rows) rows of x.
func lastRows(x *linalg.Matrix, n int) *linalg.Matrix {
	if n > x.Rows {
		n = x.Rows
	}
	out := linalg.NewMatrix(n, x.Cols)
	copy(out.Data, x.Data[(x.Rows-n)*x.Cols:])
	return out
}

func registerRidge() {
	Register(Conformer{
		Name:      "linear/ridge",
		Pkg:       "linear",
		Persisted: true,
		Cases:     4,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenRegression(r, 80, 6, 0.5)
			return &Case{Train: d, Probes: probesFor(r, d, 40)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			// Penalty scales with n so duplicate-and-reweight is a true
			// identity: doubling the rows doubles both XᵀX and λ, leaving
			// the solution unchanged.
			m, err := linear.FitRidge(cs.Train, 0.002*float64(cs.Train.Len()))
			if err != nil {
				return nil, err
			}
			return &Fit{Predict: m.PredictBatch, Model: m}, nil
		},
		Invariants: func(_ *Case, f *Fit) error {
			return f.Model.(*linear.Regression).Validate()
		},
		Relations: []Relation{
			Rel(RefitIdentity(), Exact),
			Rel(PermuteRows(), Approx(1e-6, 1e-6)),
			Rel(AffineLabels(2.5, -1), Approx(1e-6, 1e-6)),
			Rel(PermuteFeatures(), Approx(1e-6, 1e-6)),
			Rel(DuplicateRows(), Approx(1e-6, 1e-6)),
		},
	})
}

func registerGP() {
	Register(Conformer{
		Name:      "gp",
		Pkg:       "gp",
		Persisted: true,
		Cases:     4,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenRegression(r, 40, 5, 0.3)
			return &Case{Train: d, Probes: probesFor(r, d, 30)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			r := cs.Rng(kernelStream)
			k := kernel.RBF{Gamma: (0.2 + r.Float64()) / float64(cs.Train.Dim())}
			m, err := gp.Fit(cs.Train, gp.Config{Kernel: k, Noise: 1e-2})
			if err != nil {
				return nil, err
			}
			return &Fit{Predict: m.PredictBatch, Model: m}, nil
		},
		Invariants: func(cs *Case, f *Fit) error {
			m := f.Model.(*gp.Regressor)
			if err := CheckGPVarianceBounds(m, cs.Probes, 1e-8); err != nil {
				return err
			}
			return CheckGramPSD(m.K, cs.Train.X, 1e-7)
		},
		Relations: []Relation{
			Rel(RefitIdentity(), Exact),
			Rel(PermuteRows(), Approx(1e-6, 1e-6)),
			Rel(AffineLabels(2, 0.5), Approx(1e-6, 1e-6)),
		},
	})
}

func registerTree() {
	Register(Conformer{
		Name:      "tree",
		Pkg:       "tree",
		Persisted: true,
		Cases:     4,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenClassification(r, 80, 5, 1.8)
			return &Case{Train: d, Probes: probesFor(r, d, 40)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			m, err := tree.Fit(cs.Train, tree.Config{MaxDepth: 6})
			if err != nil {
				return nil, err
			}
			return &Fit{Predict: m.PredictBatch, Model: m}, nil
		},
		Invariants: func(cs *Case, f *Fit) error {
			return f.Model.(*tree.Tree).Validate(cs.Train.Dim())
		},
		Relations: []Relation{
			Rel(RefitIdentity(), Exact),
			// ×2 is exact in binary floating point: every threshold and
			// every probe coordinate scales without rounding, so the
			// fitted tree must be the same tree.
			Rel(ScaleFeatures(2), Exact),
			Rel(FlipLabels01(), Flips(0.05)),
			Rel(PermuteRows(), Flips(0.05)),
			Rel(DuplicateRows(), Flips(0.05)),
		},
	})
}

func registerRules() {
	Register(Conformer{
		Name:      "rules/cn2sd",
		Pkg:       "rules",
		Persisted: true,
		Cases:     4,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenClassification(r, 70, 4, 2.0)
			return &Case{Train: d, Probes: probesFor(r, d, 40)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			rs, err := rules.CN2SD(cs.Train, 1, rules.CN2SDConfig{})
			if err != nil {
				return nil, err
			}
			m := &rules.RuleSet{Rules: rs, Target: 1, Default: 0}
			return &Fit{Predict: m.PredictBatch, Model: m}, nil
		},
		Invariants: func(cs *Case, f *Fit) error {
			return f.Model.(*rules.RuleSet).Validate(cs.Train.Dim())
		},
		// DuplicateRows is deliberately absent: sequential covering is
		// not duplication-invariant — MinCoverage counts raw rows, so
		// duplicating the data admits rules that a single copy of the
		// same evidence would reject.
		Relations: []Relation{
			Rel(RefitIdentity(), Exact),
			Rel(PermuteRows(), Flips(0.1)),
		},
	})
}

func registerKNN() {
	Register(Conformer{
		Name:  "knn",
		Pkg:   "knn",
		Cases: 4,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenClassification(r, 60, 4, 2.0)
			return &Case{Train: d, Probes: probesFor(r, d, 40)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			m, err := knn.Fit(cs.Train, 5, knn.Euclidean)
			if err != nil {
				return nil, err
			}
			return &Fit{Predict: func(x *linalg.Matrix) []float64 {
				return rowScores(x, m.Classify)
			}}, nil
		},
		Relations: []Relation{
			Rel(RefitIdentity(), Exact),
			// ×2 scales every Euclidean distance by exactly 2: the
			// neighbour ranking (ties included) cannot change.
			Rel(ScaleFeatures(2), Exact),
			// k=5 is odd, so a binary majority vote has no ties: same
			// neighbours, flipped labels, flipped vote.
			Rel(FlipLabels01(), Exact),
			// 0.25 headroom: every training point is equidistant (Inf)
			// from the ±Inf adversarial probes, so their neighbour sets —
			// and votes — legitimately depend on row order.
			Rel(PermuteRows(), Flips(0.25)),
		},
	})
}

func registerBayes() {
	Register(Conformer{
		Name:  "bayes/naive",
		Pkg:   "bayes",
		Cases: 4,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenClassification(r, 80, 4, 2.0)
			return &Case{Train: d, Probes: probesFor(r, d, 40)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			m, err := bayes.FitNaiveBayes(cs.Train)
			if err != nil {
				return nil, err
			}
			return &Fit{Predict: func(x *linalg.Matrix) []float64 {
				return rowScores(x, m.Predict)
			}}, nil
		},
		Relations: []Relation{
			Rel(RefitIdentity(), Exact),
			Rel(PermuteRows(), Flips(0.05)),
			// 0.25 headroom: adversarial probes have NaN log-posteriors
			// under every class, so argmax falls through to a fixed
			// default that cannot flip with the labels.
			Rel(FlipLabels01(), Flips(0.25)),
			Rel(PermuteFeatures(), Flips(0.25)),
		},
	})
}

func registerKMeans() {
	const k = 3
	Register(Conformer{
		Name:  "cluster/kmeans",
		Pkg:   "cluster",
		Cases: 4,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenBlobs(r, k, 20, 4, 0.6)
			return &Case{Train: d, Probes: GenProbes(r, d, 10)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			res, err := cluster.KMeans(cs.Rng(fitStream), cs.Train.X, k, 50)
			if err != nil {
				return nil, err
			}
			labels := make([]float64, len(res.Labels))
			for i, l := range res.Labels {
				labels[i] = float64(l)
			}
			// Transductive: predictions are the per-training-row labels.
			return &Fit{Predict: func(*linalg.Matrix) []float64 { return labels }, Model: res}, nil
		},
		Invariants: func(cs *Case, f *Fit) error {
			res := f.Model.(*cluster.KMeansResult)
			if err := CheckMonotoneNonIncreasing(res.Trace, 1e-12); err != nil {
				return fmt.Errorf("k-means SSE trace: %w", err)
			}
			if err := CheckFinite("centers", res.Centers.Data); err != nil {
				return err
			}
			labels := make([]float64, len(res.Labels))
			allowed := make([]float64, k)
			for i := range allowed {
				allowed[i] = float64(i)
			}
			for i, l := range res.Labels {
				labels[i] = float64(l)
			}
			return CheckInSet("k-means label", labels, allowed...)
		},
		Relations: []Relation{Rel(RefitIdentity(), Exact)},
	})
}

func registerNeural() {
	Register(Conformer{
		Name:  "neural/mlp",
		Pkg:   "neural",
		Cases: 3,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenXOR(r, 15, 0.15)
			return &Case{Train: d, Probes: probesFor(r, d, 30)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			m, err := neural.Fit(cs.Train, neural.Config{
				Hidden: []int{6}, Epochs: 120, Seed: Mix(cs.stream, fitStream),
			})
			if err != nil {
				return nil, err
			}
			return &Fit{Predict: func(x *linalg.Matrix) []float64 {
				return rowScores(x, m.Predict)
			}, Model: m}, nil
		},
		Invariants: func(_ *Case, f *Fit) error {
			return f.Model.(*neural.MLP).Validate()
		},
		Relations: []Relation{Rel(RefitIdentity(), Exact)},
	})
}

func registerLabelProp() {
	Register(Conformer{
		Name:  "semisup/labelprop",
		Pkg:   "semisup",
		Cases: 4,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenClassification(r, 60, 3, 2.5)
			// Mask ~70% of the labels; keep at least one per class so
			// propagation has an anchor on each side.
			y := make([]float64, len(d.Y))
			copy(y, d.Y)
			mask := rand.New(rand.NewSource(r.Int63()))
			seen := map[float64]bool{}
			for i := range y {
				if !seen[d.Y[i]] {
					seen[d.Y[i]] = true
					continue
				}
				if mask.Float64() < 0.7 {
					y[i] = semisup.Unlabeled
				}
			}
			masked := dataset.MustNew(d.X, y, d.Names)
			return &Case{Train: masked, Probes: GenProbes(r, d, 10)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			labels, err := semisup.LabelPropagation(cs.Train.X, cs.Train.Y, 0, 100)
			if err != nil {
				return nil, err
			}
			return &Fit{Predict: func(*linalg.Matrix) []float64 { return labels }}, nil
		},
		Invariants: func(cs *Case, f *Fit) error {
			labels := f.Predict(nil)
			if err := CheckInSet("propagated label", labels, 0, 1); err != nil {
				return err
			}
			for i, y := range cs.Train.Y {
				if y != semisup.Unlabeled && labels[i] != y {
					return fmt.Errorf("labeled sample %d changed class: %v -> %v", i, y, labels[i])
				}
			}
			return nil
		},
		Relations: []Relation{
			Rel(RefitIdentity(), Exact),
			Rel(PermuteRowsAligned(), Flips(0.05)),
		},
	})
}

func registerSMOTE() {
	Register(Conformer{
		Name:  "imbalance/smote",
		Pkg:   "imbalance",
		Cases: 4,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenClassification(r, 80, 4, 2.0)
			// Keep all of class 0 but only a dozen of class 1.
			keep := make([]int, 0, d.Len())
			minority := 0
			for i, y := range d.Y {
				if y == 0 {
					keep = append(keep, i)
				} else if minority < 12 {
					keep = append(keep, i)
					minority++
				}
			}
			imb := d.Subset(keep)
			return &Case{Train: imb, Probes: GenProbes(r, imb, 5)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			out, err := imbalance.SMOTE(cs.Rng(fitStream), cs.Train, 5)
			if err != nil {
				return nil, err
			}
			// The "prediction vector" is the resampled label vector:
			// deterministic for RefitIdentity, and the invariants read
			// the full dataset from Model.
			return &Fit{Predict: func(*linalg.Matrix) []float64 { return out.Y }, Model: out}, nil
		},
		Invariants: func(cs *Case, f *Fit) error {
			out := f.Model.(*dataset.Dataset)
			if err := CheckClassBalance(out, 0); err != nil {
				return err
			}
			if err := CheckWithinClassBox(cs.Train, out, 1); err != nil {
				return err
			}
			return CheckFinite("smote rows", out.X.Data)
		},
		Relations: []Relation{Rel(RefitIdentity(), Exact)},
	})
}

func registerPLS() {
	const components = 2
	Register(Conformer{
		Name:  "multivar/pls",
		Pkg:   "multivar",
		Cases: 4,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenRegression(r, 60, 5, 0.3)
			// Two correlated responses: linear maps of X plus noise.
			y := linalg.NewMatrix(d.Len(), 2)
			w1 := randVec(r, d.Dim())
			w2 := randVec(r, d.Dim())
			for i := 0; i < d.Len(); i++ {
				row := d.Row(i)
				y.Set(i, 0, linalg.Dot(w1, row)+0.1*r.NormFloat64())
				y.Set(i, 1, linalg.Dot(w2, row)+0.1*r.NormFloat64())
			}
			return &Case{Train: d, Probes: probesFor(r, d, 20), YMat: y}
		},
		Fit: func(cs *Case) (*Fit, error) {
			m, err := multivar.FitPLS(cs.Train.X, cs.YMat, components, 100)
			if err != nil {
				return nil, err
			}
			return &Fit{Predict: func(x *linalg.Matrix) []float64 {
				return m.PredictAll(x).Data
			}, Model: m}, nil
		},
		Invariants: func(_ *Case, f *Fit) error {
			m := f.Model.(*multivar.PLS)
			if err := CheckFinite("pls weights", m.W.Data); err != nil {
				return err
			}
			return CheckFinite("pls coefficients", m.B)
		},
		Relations: []Relation{
			Rel(RefitIdentity(), Exact),
			Rel(AffineYMat(2, 0.5), Approx(1e-5, 1e-5)),
			Rel(PermuteRows(), Approx(1e-4, 1e-4)),
		},
	})
}

func randVec(r *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func firstRows(m *linalg.Matrix, n int) *linalg.Matrix {
	if n > m.Rows {
		n = m.Rows
	}
	out := linalg.NewMatrix(n, m.Cols)
	copy(out.Data, m.Data[:n*m.Cols])
	return out
}
