package testkit

// Conformers for the benchmark-workload packages: the spatial map
// regressor (internal/maps) and the stress-program generator
// (internal/isa stress profiles). Both back versioned dataset exports
// (internal/datasets), so their contracts — transpose-invariant tile
// features, row-independent tile scoring, seed-pure generation within
// the profile's mix tolerance — are exactly what makes those datasets
// reproducible.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"

	"repro/internal/dataset"
	"repro/internal/isa"
	"repro/internal/linalg"
	"repro/internal/linear"
	"repro/internal/litho"
	"repro/internal/maps"
)

func init() {
	registerMaps()
	registerISAStress()
}

// registerMaps pins the map-regression workload. Probes are raw
// zero-padded region-pixel rows (ExtractRegion output), so the
// metamorphic transforms manipulate the mask itself:
//
//   - permute-probes-aligned: tile scoring is row-independent, so any
//     tile order yields bit-identical per-tile values;
//   - transpose-regions: tile features are functions of pixel sums and
//     counts, so a transposed mask region scores bit-identically — the
//     probe-level form of "the predicted map transposes with the mask".
func registerMaps() {
	var cfg maps.LabelConfig
	cfg.Defaults()
	g := cfg.Grid()
	s := cfg.RegionSize()

	regionRows := func(ws []*litho.Window) *linalg.Matrix {
		out := linalg.NewMatrix(len(ws)*g*g, s*s)
		for wi, w := range ws {
			for i := 0; i < g; i++ {
				for j := 0; j < g; j++ {
					copy(out.Row((wi*g+i)*g+j), maps.ExtractRegion(w, i, j, cfg))
				}
			}
		}
		return out
	}

	transposeRegions := Transform{
		Name: "transpose-regions",
		Apply: func(_ *rand.Rand, c *Case) (*Case, Oracle) {
			out := *c
			p := linalg.NewMatrix(c.Probes.Rows, c.Probes.Cols)
			for i := 0; i < c.Probes.Rows; i++ {
				copy(p.Row(i), maps.TransposeRegion(c.Probes.Row(i), s))
			}
			out.Probes = p
			return &out, Identity
		},
	}

	Register(Conformer{
		Name:  "maps",
		Pkg:   "maps",
		Cases: 3,
		Gen: func(r *rand.Rand, _ int) *Case {
			ws := maps.GenWindows(r, 7, cfg.N)
			train := make([]*maps.Sample, 5)
			for i := range train {
				score, weak, err := maps.TruthMaps(ws[i], cfg)
				if err != nil { // unreachable: generated windows match cfg
					panic(err)
				}
				train[i] = &maps.Sample{Window: ws[i], Score: score, Weak: weak}
			}
			d, err := maps.TileDataset(train, cfg)
			if err != nil { // unreachable: train is never empty
				panic(err)
			}
			return &Case{Train: d, Probes: regionRows(ws[5:])}
		},
		Fit: func(cs *Case) (*Fit, error) {
			// Alternate the learner behind the map so the contract is
			// pinned through two families, not one implementation.
			kind := maps.KindRidge
			if cs.Index%2 == 1 {
				kind = maps.KindGP
			}
			m, err := maps.FitMapModel(cs.Train, maps.FitConfig{Kind: kind, Label: cfg})
			if err != nil {
				return nil, err
			}
			return &Fit{Predict: m.ScoreRegions}, nil
		},
		Invariants: func(cs *Case, f *Fit) error {
			scores := f.Predict(cs.Probes)
			if err := CheckFinite("map scores", scores); err != nil {
				return err
			}
			// Hotspot-threshold sweep: raising the prediction threshold
			// can only shrink the predicted-hotspot set, so recall is
			// non-increasing — against any truth map, so a random one
			// tests the metric itself, not the model's accuracy.
			nm := len(scores) / (g * g)
			pred := make([]*maps.TileMap, nm)
			truth := make([]*maps.TileMap, nm)
			tr := cs.Rng(171)
			for k := 0; k < nm; k++ {
				pred[k] = maps.NewTileMap(g)
				copy(pred[k].Vals, scores[k*g*g:(k+1)*g*g])
				truth[k] = maps.NewTileMap(g)
				for t := range truth[k].Vals {
					truth[k].Vals[t] = tr.Float64()
				}
			}
			ths := append([]float64(nil), scores...)
			sort.Float64s(ths)
			rec := maps.RecallSweep(pred, truth, 0.5, ths)
			for i := 1; i < len(rec); i++ {
				if rec[i] > rec[i-1] {
					return fmt.Errorf("hotspot recall rose with the threshold: %g -> %g at threshold %g",
						rec[i-1], rec[i], ths[i])
				}
			}
			return nil
		},
		Relations: []Relation{
			Rel(RefitIdentity(), Exact),
			Rel(PermuteProbesAligned(), Exact),
			Rel(transposeRegions, Exact),
		},
	})
}

// registerISAStress pins the stress-program generator through the
// regression task the datasets exporter ships (features → simulated
// cycles) plus the generator's own guarantees: emission is a pure
// function of the int64 seed, every program's realized instruction mix
// stays within MixTolerance of its profile target, and every program
// finishes under the structural cycle cap.
func registerISAStress() {
	profiles := isa.StressProfiles()
	profileOf := func(idx int) isa.StressProfile { return profiles[idx%len(profiles)] }

	Register(Conformer{
		Name:  "isa/stress",
		Pkg:   "isa",
		Cases: 4,
		Gen: func(r *rand.Rand, idx int) *Case {
			g, err := isa.NewStressGen(isa.StressConfig{Profile: profileOf(idx).Name}, r.Int63())
			if err != nil { // unreachable: profile names are constants
				panic(err)
			}
			train := g.Batch(40)
			_, cycles := isa.SimulateBatch(train)
			y := make([]float64, len(cycles))
			for i, c := range cycles {
				y[i] = float64(c)
			}
			d := dataset.FromRows(isa.FeatureBatch(train), y)
			d.Names = append([]string(nil), isa.FeatureNames...)
			probeFeats := isa.FeatureBatch(g.Batch(12))
			probes := linalg.NewMatrix(len(probeFeats), len(isa.FeatureNames))
			for i, row := range probeFeats {
				copy(probes.Row(i), row)
			}
			return &Case{Train: d, Probes: probes}
		},
		Fit: func(cs *Case) (*Fit, error) {
			// Penalty scales with n — see registerRidge.
			m, err := linear.FitRidge(cs.Train, 0.002*float64(cs.Train.Len()))
			if err != nil {
				return nil, err
			}
			return &Fit{Predict: m.PredictBatch, Model: m}, nil
		},
		Invariants: func(cs *Case, f *Fit) error {
			if err := CheckFinite("stress cycle scores", f.Predict(cs.Probes)); err != nil {
				return err
			}
			p := profileOf(cs.Index)
			seed := Mix(cs.stream, 211)
			g1, err := isa.NewStressGen(isa.StressConfig{Profile: p.Name}, seed)
			if err != nil {
				return err
			}
			g2, _ := isa.NewStressGen(isa.StressConfig{Profile: p.Name}, seed)
			b1, b2 := g1.Batch(6), g2.Batch(6)
			if !reflect.DeepEqual(b1, b2) {
				return fmt.Errorf("stress generation is not a pure function of seed %d", seed)
			}
			m := isa.NewMachine()
			for i, prog := range b1 {
				if dev := isa.MixDeviation(isa.RealizedMix(prog), p.Mix); dev > isa.MixTolerance {
					return fmt.Errorf("program %d realized mix deviates %.3f > %.2f from profile %s",
						i, dev, isa.MixTolerance, p.Name)
				}
				m.Run(prog)
				if cap := isa.CycleCap(prog); m.Cycles > cap {
					return fmt.Errorf("program %d ran %d cycles, over the structural cap %d", i, m.Cycles, cap)
				}
			}
			return nil
		},
		Relations: []Relation{
			Rel(RefitIdentity(), Exact),
			Rel(PermuteRows(), Approx(1e-6, 1e-6)),
			Rel(PermuteProbesAligned(), Exact),
		},
	})
}
