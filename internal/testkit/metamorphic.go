package testkit

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/linalg"
)

// Metamorphic transforms. Each transform rewrites a generated case into
// a related one with a known oracle: refitting the learner on the
// transformed training set and rescoring must reproduce the original
// predictions after the oracle's mapping, within the relation's
// tolerance. This tests the learner's formulation — invariances the
// paper's methodology takes for granted (sample order must not matter,
// feature order must not matter, relabelling must commute with
// prediction, affine units must not change a regressor's geometry) —
// without any hand-written expected values.

// Oracle maps the predictions of the original fitted model to the
// predictions the refit model must produce on the transformed case.
type Oracle func(pred []float64) []float64

// Identity is the oracle of transforms that must not change predictions.
func Identity(pred []float64) []float64 { return pred }

// Transform rewrites a case; Apply returns the transformed case plus the
// oracle. The rand.Rand is the relation's private stream, so the
// transform is as reproducible as the case itself.
type Transform struct {
	Name  string
	Apply func(r *rand.Rand, c *Case) (*Case, Oracle)
}

// Relation pairs a transform with the tolerance the conformer grants it.
type Relation struct {
	Transform Transform
	Tol       Tolerance
}

// Rel is sugar for building a Relation.
func Rel(t Transform, tol Tolerance) Relation { return Relation{Transform: t, Tol: tol} }

// RefitIdentity is the degenerate transform: same data, same seed,
// refit. Its relation asserts deterministic training — two fits from
// identical inputs must agree to the policy's precision (bit-exactly for
// every learner in this repo).
func RefitIdentity() Transform {
	return Transform{
		Name: "refit-identity",
		Apply: func(_ *rand.Rand, c *Case) (*Case, Oracle) {
			return c, Identity
		},
	}
}

// PermuteRows reorders the training rows; probes are untouched, so the
// oracle is the identity: a learner must not care about sample order
// (beyond the tolerance its fit procedure earns).
func PermuteRows() Transform {
	return Transform{
		Name: "permute-rows",
		Apply: func(r *rand.Rand, c *Case) (*Case, Oracle) {
			perm := r.Perm(c.Train.Len())
			out := *c
			out.Train = c.Train.Subset(perm)
			if c.YMat != nil {
				out.YMat = permuteMatrixRows(c.YMat, perm)
			}
			return &out, Identity
		},
	}
}

// PermuteRowsAligned is PermuteRows for conformers whose prediction
// vector is indexed by training row (transductive learners: label
// propagation, clustering): the oracle permutes the original
// predictions the same way.
func PermuteRowsAligned() Transform {
	return Transform{
		Name: "permute-rows-aligned",
		Apply: func(r *rand.Rand, c *Case) (*Case, Oracle) {
			perm := r.Perm(c.Train.Len())
			out := *c
			out.Train = c.Train.Subset(perm)
			if c.YMat != nil {
				out.YMat = permuteMatrixRows(c.YMat, perm)
			}
			return &out, func(pred []float64) []float64 {
				mapped := make([]float64, len(pred))
				for to, from := range perm {
					mapped[to] = pred[from]
				}
				return mapped
			}
		},
	}
}

// PermuteProbesAligned reorders the probe rows; the training set is
// untouched, so the refit model is identical and the oracle permutes
// the original predictions the same way. Its relation pins
// row-independent scoring: evaluating probes (tiles of a map, programs
// of a batch) in any order must move the values bit-identically with
// the rows.
func PermuteProbesAligned() Transform {
	return Transform{
		Name: "permute-probes-aligned",
		Apply: func(r *rand.Rand, c *Case) (*Case, Oracle) {
			perm := r.Perm(c.Probes.Rows)
			out := *c
			out.Probes = permuteMatrixRows(c.Probes, perm)
			return &out, func(pred []float64) []float64 {
				mapped := make([]float64, len(pred))
				for to, from := range perm {
					mapped[to] = pred[from]
				}
				return mapped
			}
		},
	}
}

// PermuteFeatures reorders the feature columns of the training set and
// the probes consistently; predictions must be unchanged.
func PermuteFeatures() Transform {
	return Transform{
		Name: "permute-features",
		Apply: func(r *rand.Rand, c *Case) (*Case, Oracle) {
			perm := r.Perm(c.Train.Dim())
			out := *c
			out.Train = c.Train.SelectFeatures(perm)
			out.Probes = permuteMatrixCols(c.Probes, perm)
			return &out, Identity
		},
	}
}

// FlipLabels01 swaps the binary labels 0↔1; the oracle flips the
// predicted classes the same way.
func FlipLabels01() Transform {
	return Transform{
		Name: "flip-labels",
		Apply: func(_ *rand.Rand, c *Case) (*Case, Oracle) {
			y := make([]float64, len(c.Train.Y))
			for i, v := range c.Train.Y {
				y[i] = 1 - v
			}
			out := *c
			out.Train = dataset.MustNew(c.Train.X, y, c.Train.Names)
			return &out, func(pred []float64) []float64 {
				mapped := make([]float64, len(pred))
				for i, v := range pred {
					mapped[i] = 1 - v
				}
				return mapped
			}
		},
	}
}

// AffineLabels rescales the regression response y' = a·y + b; an
// affine-equivariant regressor must predict a·pred + b.
func AffineLabels(a, b float64) Transform {
	return Transform{
		Name: "affine-labels",
		Apply: func(_ *rand.Rand, c *Case) (*Case, Oracle) {
			y := make([]float64, len(c.Train.Y))
			for i, v := range c.Train.Y {
				y[i] = a*v + b
			}
			out := *c
			out.Train = dataset.MustNew(c.Train.X, y, c.Train.Names)
			return &out, func(pred []float64) []float64 {
				mapped := make([]float64, len(pred))
				for i, v := range pred {
					mapped[i] = a*v + b
				}
				return mapped
			}
		},
	}
}

// AffineYMat is AffineLabels for matrix responses (PLS/CCA).
func AffineYMat(a, b float64) Transform {
	return Transform{
		Name: "affine-ymat",
		Apply: func(_ *rand.Rand, c *Case) (*Case, Oracle) {
			out := *c
			y := c.YMat.Clone()
			for i := range y.Data {
				y.Data[i] = a*y.Data[i] + b
			}
			out.YMat = y
			return &out, func(pred []float64) []float64 {
				mapped := make([]float64, len(pred))
				for i, v := range pred {
					mapped[i] = a*v + b
				}
				return mapped
			}
		},
	}
}

// ScaleFeatures multiplies every feature of the training set and the
// probes by s > 0. Scale-equivariant learners (trees: thresholds scale;
// kNN with Euclidean distance: neighbour order is preserved) must keep
// their predictions.
func ScaleFeatures(s float64) Transform {
	return Transform{
		Name: "scale-features",
		Apply: func(_ *rand.Rand, c *Case) (*Case, Oracle) {
			out := *c
			x := c.Train.X.Clone()
			for i := range x.Data {
				x.Data[i] *= s
			}
			out.Train = dataset.MustNew(x, c.Train.Y, c.Train.Names)
			p := c.Probes.Clone()
			for i := range p.Data {
				p.Data[i] *= s
			}
			out.Probes = p
			return &out, Identity
		},
	}
}

// DuplicateRows appends an exact copy of every training row (the
// duplicate-and-reweight relation with uniform weight 2): counts double,
// proportions and optimal parameters are unchanged, so the refit model
// must agree with the original.
func DuplicateRows() Transform {
	return Transform{
		Name: "duplicate-rows",
		Apply: func(_ *rand.Rand, c *Case) (*Case, Oracle) {
			out := *c
			out.Train = WithDuplicatedRows(c.Train, c.Train.Len())
			if c.YMat != nil {
				idx := make([]int, 0, 2*c.YMat.Rows)
				for i := 0; i < c.YMat.Rows; i++ {
					idx = append(idx, i)
				}
				for i := 0; i < c.YMat.Rows; i++ {
					idx = append(idx, i)
				}
				out.YMat = permuteMatrixRows(c.YMat, idx)
			}
			return &out, Identity
		},
	}
}

func permuteMatrixRows(m *linalg.Matrix, idx []int) *linalg.Matrix {
	out := linalg.NewMatrix(len(idx), m.Cols)
	for to, from := range idx {
		copy(out.Row(to), m.Row(from))
	}
	return out
}

func permuteMatrixCols(m *linalg.Matrix, perm []int) *linalg.Matrix {
	out := linalg.NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		src, dst := m.Row(i), out.Row(i)
		for c, j := range perm {
			dst[c] = src[j]
		}
	}
	return out
}
