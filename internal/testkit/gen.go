package testkit

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/linalg"
)

// Deterministic input generators. Everything is a pure function of the
// rand.Rand (and therefore of the seed that built it): two runs from the
// same seed produce byte-identical datasets, kernels, and programs.

// GenClassification draws a binary two-Gaussian classification set with
// labels {0,1}. sep controls class separation (≈2.5 is comfortably
// separable, ≈1 is hard).
func GenClassification(r *rand.Rand, n, dim int, sep float64) *dataset.Dataset {
	return dataset.TwoGaussians(r, n, dim, sep, 1.0)
}

// GenRegression draws the Friedman #1 regression surface.
func GenRegression(r *rand.Rand, n, dim int, noise float64) *dataset.Dataset {
	return dataset.Friedman1(r, n, dim, noise)
}

// GenBlobs draws k Gaussian blobs labelled by blob index.
func GenBlobs(r *rand.Rand, k, perCluster, dim int, spread float64) *dataset.Dataset {
	return dataset.Blobs(r, k, perCluster, dim, 6.0, spread)
}

// GenSine draws the 1-D noisy-sine regression set.
func GenSine(r *rand.Rand, n int, noise float64) *dataset.Dataset {
	return dataset.NoisySine(r, n, noise)
}

// GenXOR draws the four-blob XOR set (linearly inseparable).
func GenXOR(r *rand.Rand, nPerBlob int, sigma float64) *dataset.Dataset {
	return dataset.XOR(r, nPerBlob, sigma)
}

// GenKernel draws a random kernel from the persistable closed-form
// family (linear, poly, RBF, sigmoid), optionally cosine-normalized.
// Every kernel returned here round-trips through model.KernelSpec, so
// generated kernel models can always be pushed through the artifact
// differential path.
func GenKernel(r *rand.Rand, dim int) kernel.Kernel {
	var k kernel.Kernel
	switch r.Intn(4) {
	case 0:
		k = kernel.Linear{}
	case 1:
		k = kernel.Poly{Degree: 2 + r.Intn(2), Gamma: 0.5 + r.Float64(), Coef0: r.Float64()}
	case 2:
		k = kernel.RBF{Gamma: (0.2 + r.Float64()) / float64(dim)}
	default:
		k = kernel.Sigmoid{Gamma: 0.1 / float64(dim), Coef0: 0.1 * r.Float64()}
	}
	if r.Intn(3) == 0 {
		k = kernel.Normalize{K: k}
	}
	return k
}

// GenPSDKernel draws from the positive-semidefinite subset of the
// persistable kernels (linear, poly with coef0 ≥ 0, RBF) — what
// learners that Cholesky-factor or eigendecompose the Gram matrix
// (SVC margins, GP posteriors) are allowed to use. Sigmoid is excluded:
// it is indefinite, so its conformers would fail the Mercer invariant
// by construction.
func GenPSDKernel(r *rand.Rand, dim int) kernel.Kernel {
	var k kernel.Kernel
	switch r.Intn(3) {
	case 0:
		k = kernel.Linear{}
	case 1:
		k = kernel.Poly{Degree: 2 + r.Intn(2), Gamma: 0.5 + r.Float64(), Coef0: r.Float64()}
	default:
		k = kernel.RBF{Gamma: (0.2 + r.Float64()) / float64(dim)}
	}
	if r.Intn(3) == 0 {
		k = kernel.Normalize{K: k}
	}
	return k
}

// GenPrograms draws k constrained-random ISA programs from the default
// template — the non-vector sample type of the test-selection
// application. Used by the apps smoke tests to drive stage wiring with
// generated workloads.
func GenPrograms(seed int64, k int) []isa.Program {
	return isa.NewGenerator(isa.DefaultTemplate(), seed).Batch(k)
}

// AdversarialRows returns the numeric edge-case probe rows of the given
// width: zeros, ±Inf, a lone Inf among ones, IEEE-754 subnormals, huge
// finite magnitudes, and a constant row. withNaN appends an all-NaN row
// (skippable because some consumers — JSON transport — cannot carry
// NaN). These rows exercise the paths where kernel arithmetic degrades
// (Inf−Inf, exp(−Inf), subnormal squaring) and where every scoring path
// must still agree bit for bit.
func AdversarialRows(dim int, withNaN bool) *linalg.Matrix {
	rows := [][]float64{
		constRow(dim, 0),
		constRow(dim, math.Inf(1)),
		constRow(dim, math.Inf(-1)),
		loneValueRow(dim, math.Inf(1), 1),
		constRow(dim, math.SmallestNonzeroFloat64), // 4.9e-324, subnormal
		constRow(dim, 1e-310),                      // subnormal
		constRow(dim, 1e300),
		constRow(dim, -1e300),
		loneValueRow(dim, 1e300, 1e-310),
		constRow(dim, 1),
	}
	if withNaN {
		rows = append(rows, constRow(dim, math.NaN()))
	}
	return linalg.FromRows(rows)
}

func constRow(dim int, v float64) []float64 {
	row := make([]float64, dim)
	for i := range row {
		row[i] = v
	}
	return row
}

func loneValueRow(dim int, first, rest float64) []float64 {
	row := constRow(dim, rest)
	row[0] = first
	return row
}

// AppendRows stacks extra rows under base (both copied).
func AppendRows(base, extra *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(base.Rows+extra.Rows, base.Cols)
	for i := 0; i < base.Rows; i++ {
		copy(out.Row(i), base.Row(i))
	}
	for i := 0; i < extra.Rows; i++ {
		copy(out.Row(base.Rows+i), extra.Row(i))
	}
	return out
}

// WithConstantFeature returns a copy of d whose column j is the constant
// v — the degenerate-feature edge case (zero variance, which scalers,
// normal equations, and split search must all survive).
func WithConstantFeature(d *dataset.Dataset, j int, v float64) *dataset.Dataset {
	x := d.X.Clone()
	for i := 0; i < x.Rows; i++ {
		x.Row(i)[j] = v
	}
	return dataset.MustNew(x, d.Y, d.Names)
}

// WithDuplicatedRows returns d with its first k rows appended again —
// exact duplicates make the Gram matrix rank-deficient, the edge case
// that Cholesky-based fits must handle via their noise/jitter terms.
func WithDuplicatedRows(d *dataset.Dataset, k int) *dataset.Dataset {
	if k > d.Len() {
		k = d.Len()
	}
	idx := make([]int, 0, d.Len()+k)
	for i := 0; i < d.Len(); i++ {
		idx = append(idx, i)
	}
	for i := 0; i < k; i++ {
		idx = append(idx, i)
	}
	return d.Subset(idx)
}

// RankDeficientGram builds the Gram matrix of x with its first k rows
// duplicated: by construction the matrix is singular (duplicate rows ⇒
// duplicate Gram rows) yet must remain PSD within tolerance.
func RankDeficientGram(k kernel.Kernel, x *linalg.Matrix, dup int) *linalg.Matrix {
	d := dataset.MustNew(x, nil, nil)
	return kernel.Gram(k, WithDuplicatedRows(d, dup).X)
}

// GenProbes draws n in-distribution probe rows around the training
// manifold (uniform in the per-feature min/max box, stretched by 20%) —
// probes that are neither training rows nor wildly out of range.
func GenProbes(r *rand.Rand, d *dataset.Dataset, n int) *linalg.Matrix {
	lo := make([]float64, d.Dim())
	hi := make([]float64, d.Dim())
	for j := 0; j < d.Dim(); j++ {
		lo[j], hi[j] = math.Inf(1), math.Inf(-1)
		for i := 0; i < d.Len(); i++ {
			v := d.X.At(i, j)
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
		span := hi[j] - lo[j]
		lo[j] -= 0.1 * span
		hi[j] += 0.1 * span
	}
	out := linalg.NewMatrix(n, d.Dim())
	for i := 0; i < n; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = lo[j] + r.Float64()*(hi[j]-lo[j])
		}
	}
	return out
}
