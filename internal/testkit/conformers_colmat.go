package testkit

import (
	"fmt"
	"math/rand"

	"repro/internal/core/colmat"
	"repro/internal/kernel"
	"repro/internal/svm"
)

func init() {
	registerColmat()
}

// registerColmat pins the columnar zero-alloc serving paths to the
// conformance contract: a batch scored through pooled arena scratch
// (DecisionBatchInto, CrossGramInto) must be bit-identical to the naive
// per-row path on every probe — in-distribution and adversarial
// (±Inf, NaN, subnormal) alike — and must stay so under pool churn,
// i.e. when the same buffers have been leased, dirtied, and returned by
// unrelated work in between. A buffer that leaked state or aliased live
// data would surface here as a bit diff.
func registerColmat() {
	Register(Conformer{
		Name:  "core/colmat",
		Pkg:   "core",
		Cases: 4,
		Gen: func(r *rand.Rand, _ int) *Case {
			d := GenClassification(r, 50, 4, 2.0)
			return &Case{Train: d, Probes: probesFor(r, d, 40)}
		},
		Fit: func(cs *Case) (*Fit, error) {
			k := GenPSDKernel(cs.Rng(kernelStream), cs.Train.Dim())
			m, err := svm.FitOneClass(cs.Train.X, k, svm.OneClassConfig{Nu: 0.2})
			if err != nil {
				return nil, err
			}
			return &Fit{Predict: m.DecisionBatch, Model: m}, nil
		},
		Invariants: colmatInvariants,
		Relations:  []Relation{Rel(RefitIdentity(), Exact)},
	})
}

func colmatInvariants(cs *Case, f *Fit) error {
	m := f.Model.(*svm.OneClass)
	probes := cs.Probes

	// Reference: the naive per-row path, no batch amortization, no pool.
	want := make([]float64, probes.Rows)
	for i := range want {
		want[i] = m.Decision(probes.Row(i))
	}

	// Round 1: pooled batch path on a cold arena.
	got := m.DecisionBatchInto(probes, make([]float64, probes.Rows))
	if err := Exact.Compare(want, got); err != nil {
		return fmt.Errorf("pooled DecisionBatchInto vs per-row Decision: %w", err)
	}

	// Churn the arena: lease the exact shapes the batch path uses,
	// dirty them with poison-adjacent garbage, and return them, so the
	// next round is served from recycled buffers.
	for i := 0; i < 3; i++ {
		g := colmat.Get(probes.Rows, m.SV.Rows)
		for j := range g.Data {
			g.Data[j] = -1e308
		}
		colmat.Put(g)
	}

	// Round 2: same batch, now on recycled buffers.
	got2 := m.DecisionBatchInto(probes, make([]float64, probes.Rows))
	if err := Exact.Compare(want, got2); err != nil {
		return fmt.Errorf("pooled DecisionBatchInto after pool churn: %w", err)
	}

	// CrossGramInto into a recycled, dirtied buffer must equal a fresh
	// CrossGram allocation cell for cell.
	fresh := kernel.CrossGram(m.K, probes, m.SV)
	pooled := colmat.Get(probes.Rows, m.SV.Rows)
	for j := range pooled.Data {
		pooled.Data[j] = 1e307
	}
	kernel.CrossGramInto(m.K, probes, m.SV, pooled)
	if err := Exact.Compare(fresh.Data, pooled.Data); err != nil {
		colmat.Put(pooled)
		return fmt.Errorf("CrossGramInto into recycled buffer vs fresh CrossGram: %w", err)
	}
	colmat.Put(pooled)
	return nil
}
