// Package template implements the paper's simulation-knowledge extraction
// and reuse application (Table 1, ref [28]): rules learned from the
// "special" tests that hit coverage points of interest are fed back into
// the constrained-random test template, so that far fewer tests achieve
// far more coverage.
//
// The loop mirrors the paper's three rows:
//
//	Original:     the engineer's first template, instantiated to 400
//	              tests, covers only the easy points A0/A1.
//	1st learning: the engineer widens the template (domain-knowledge
//	              exploration) and instantiates 100 tests; CN2-SD then
//	              learns which test properties make each hard point fire.
//	2nd learning: the learned rules are folded back into the template
//	              knobs, and 50 tests from the refined template hit every
//	              point with high frequency.
package template

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/isa"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/rules"
)

// Table 1 metrics: tests pushed through each simulate stage and rules
// the CN2-SD pass fed back into the template.
var (
	tplTests     = obs.GetCounter("template.tests_simulated")
	tplRules     = obs.GetCounter("template.rules_learned")
	tplStageTime = obs.GetHistogram("template.stage_ns")
)

// StageResult is one row of the Table 1 reproduction.
type StageResult struct {
	Name      string
	Tests     int
	EventHits [isa.NumEvents]int // hits from this stage's tests only
	Rules     []string           // rules learned from this stage's data
}

// Covered counts events with at least one hit.
func (s *StageResult) Covered() int {
	n := 0
	for _, h := range s.EventHits {
		if h > 0 {
			n++
		}
	}
	return n
}

// Result is the full Table 1 reproduction.
type Result struct {
	Stages []StageResult
}

// String renders the table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %7s", "Stage", "#tests")
	for e := isa.Event(0); e < isa.NumEvents; e++ {
		fmt.Fprintf(&b, " %6s", fmt.Sprintf("A%d", int(e)))
	}
	b.WriteByte('\n')
	for _, s := range r.Stages {
		fmt.Fprintf(&b, "%-14s %7d", s.Name, s.Tests)
		for _, h := range s.EventHits {
			fmt.Fprintf(&b, " %6d", h)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Config controls the experiment.
type Config struct {
	Seed        int64
	Stage0Tests int // default 400
	Stage1Tests int // default 100
	Stage2Tests int // default 50
}

func (c *Config) defaults() {
	if c.Stage0Tests <= 0 {
		c.Stage0Tests = 400
	}
	if c.Stage1Tests <= 0 {
		c.Stage1Tests = 100
	}
	if c.Stage2Tests <= 0 {
		c.Stage2Tests = 50
	}
}

// explorationTemplate is the engineer's widened second-cut template: it can
// reach everything, but spreads probability thinly.
func explorationTemplate() isa.Template {
	t := isa.WideTemplate()
	t.UnalignedProb = 0.15
	t.PairProb = 0.15
	t.BurstProb = 0.10
	return t
}

// simulateStage runs tests, returning per-event hits and the per-test
// feature/coverage records used for learning.
func simulateStage(tpl isa.Template, seed int64, n int) (hits [isa.NumEvents]int,
	feats [][]float64, perTest [][isa.NumEvents]int) {

	// Generation stays serial (one rng stream drives the template), then
	// the batch simulates and feature-extracts concurrently — the
	// Figure 7 generate → feature-extract → simulate loop on the pool.
	defer tplStageTime.Start().Stop()
	tplTests.Add(int64(n))
	gen := isa.NewGenerator(tpl, seed)
	progs := gen.Batch(n)
	covs, _ := isa.SimulateBatch(progs)
	feats = isa.FeatureBatch(progs)
	for i := 0; i < n; i++ {
		var evs [isa.NumEvents]int
		for e := isa.Event(0); e < isa.NumEvents; e++ {
			h := covs[i].EventHits(e)
			evs[e] = h
			hits[e] += h
		}
		perTest = append(perTest, evs)
	}
	return hits, feats, perTest
}

// learnEventRules learns CN2-SD rules for "this test hits event e" for
// every event, returning rule strings and the union of learned conditions.
func learnEventRules(feats [][]float64, perTest [][isa.NumEvents]int) (ruleStrs []string, conds []rules.Condition) {
	x := linalg.FromRows(feats)
	for e := isa.Event(0); e < isa.NumEvents; e++ {
		y := make([]float64, len(feats))
		pos := 0
		for i, evs := range perTest {
			if evs[e] > 0 {
				y[i] = 1
				pos++
			}
		}
		if pos == 0 || pos == len(feats) {
			continue // nothing to contrast
		}
		d := dataset.MustNew(x, y, isa.FeatureNames)
		rs, err := rules.CN2SD(d, 1, rules.CN2SDConfig{
			MaxRules: 2, MaxConditions: 2, Thresholds: 6, MinCoverage: 3,
		})
		if err != nil {
			continue
		}
		for _, r := range rs {
			ruleStrs = append(ruleStrs, fmt.Sprintf("%s: %s", e, r))
			conds = append(conds, r.Conditions...)
		}
		tplRules.Add(int64(len(rs)))
	}
	return ruleStrs, conds
}

// RefineTemplate folds learned rule conditions back into template knobs —
// the "feedback those properties to the verification engineer for
// improving the test template" step of the paper.
func RefineTemplate(base isa.Template, conds []rules.Condition) isa.Template {
	t := base
	bump := func(v *float64, to float64) {
		if *v < to {
			*v = to
		}
	}
	for _, c := range conds {
		if c.Op != rules.GT {
			continue // "more of this property" is what a GT condition says
		}
		switch c.Name {
		case "store_frac":
			bump(&t.StoreWeight, 0.35)
		case "load_frac":
			bump(&t.LoadWeight, 0.4)
		case "unaligned_frac":
			bump(&t.UnalignedProb, 0.4)
		case "pair_count":
			bump(&t.PairProb, 0.5)
		case "max_store_run":
			bump(&t.BurstProb, 0.35)
		case "base_regs", "max_base_reg":
			if t.MaxBaseReg < 7 {
				t.MaxBaseReg = 7
			}
		case "mean_offset", "max_offset":
			if t.ImmRange < 512 {
				t.ImmRange = 512
			}
		case "byte_frac":
			bump(&t.WidthWeights[0], 0.3)
		case "half_frac":
			bump(&t.WidthWeights[1], 0.3)
		}
	}
	return t
}

// Run executes the three-stage Table 1 experiment.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	res := &Result{}

	// Stage 0: the engineer's original template.
	hits0, feats0, per0 := simulateStage(isa.DefaultTemplate(), cfg.Seed, cfg.Stage0Tests)
	rules0, _ := learnEventRules(feats0, per0)
	res.Stages = append(res.Stages, StageResult{
		Name: "Original", Tests: cfg.Stage0Tests, EventHits: hits0, Rules: rules0,
	})

	// Stage 1: widened exploration template; learn what makes hard events
	// fire.
	expl := explorationTemplate()
	hits1, feats1, per1 := simulateStage(expl, cfg.Seed+1, cfg.Stage1Tests)
	// Learn on the union of all data so far.
	allFeats := append(append([][]float64{}, feats0...), feats1...)
	allPer := append(append([][isa.NumEvents]int{}, per0...), per1...)
	rules1, conds1 := learnEventRules(allFeats, allPer)
	res.Stages = append(res.Stages, StageResult{
		Name: "1st learning", Tests: cfg.Stage1Tests, EventHits: hits1, Rules: rules1,
	})

	// Stage 2: fold the rules back into the template and instantiate a
	// small, concentrated batch.
	refined := RefineTemplate(expl, conds1)
	hits2, feats2, per2 := simulateStage(refined, cfg.Seed+2, cfg.Stage2Tests)
	allFeats = append(allFeats, feats2...)
	allPer = append(allPer, per2...)
	rules2, _ := learnEventRules(allFeats, allPer)
	res.Stages = append(res.Stages, StageResult{
		Name: "2nd learning", Tests: cfg.Stage2Tests, EventHits: hits2, Rules: rules2,
	})
	return res, nil
}
