package template_test

// Stage-wiring smoke tests driven by the testkit generators (ISSUE 5
// satellite): generated ISA workloads flow through the three-stage
// template-refinement pipeline, and the pipeline's structural contract
// — three stages, configured test counts, deterministic replay from the
// seed — holds for any generated seed.

import (
	"testing"

	"repro/internal/apps/template"
	"repro/internal/isa"
	"repro/internal/testkit"
)

func TestGeneratedProgramsRespectTemplate(t *testing.T) {
	const seed, k = 7, 32
	progs := testkit.GenPrograms(seed, k)
	if len(progs) != k {
		t.Fatalf("got %d programs, want %d", len(progs), k)
	}
	wantLen := isa.DefaultTemplate().Len
	for i, p := range progs {
		if len(p) != wantLen {
			t.Fatalf("program %d has %d instructions, template says %d", i, len(p), wantLen)
		}
	}
	again := testkit.GenPrograms(seed, k)
	for i := range progs {
		if progs[i].String() != again[i].String() {
			t.Fatalf("program %d differs between identically-seeded generations", i)
		}
	}
	if other := testkit.GenPrograms(seed+1, k); other[0].String() == progs[0].String() {
		t.Fatal("different seeds produced an identical first program")
	}
}

func TestStageWiringSmoke(t *testing.T) {
	cfg := template.Config{Seed: testkit.Mix(11, 1), Stage0Tests: 80, Stage1Tests: 40, Stage2Tests: 20}
	res, err := template.Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Stages) != 3 {
		t.Fatalf("got %d stages, want 3", len(res.Stages))
	}
	wantTests := []int{80, 40, 20}
	total := 0
	for i, s := range res.Stages {
		if s.Tests != wantTests[i] {
			t.Errorf("stage %d ran %d tests, want %d", i, s.Tests, wantTests[i])
		}
		// A single test can hit an event many times, so hits are only
		// bounded below.
		for e, h := range s.EventHits {
			if h < 0 {
				t.Errorf("stage %d event %d: negative hit count %d", i, e, h)
			}
		}
		total += s.Covered()
	}
	if total == 0 {
		t.Fatal("no stage covered any event — the simulate/learn wiring is dead")
	}
	if res.Stages[1].Rules == nil && res.Stages[2].Rules == nil {
		t.Error("learning stages produced no rules")
	}
}

func TestStageWiringDeterministic(t *testing.T) {
	cfg := template.Config{Seed: 42, Stage0Tests: 60, Stage1Tests: 30, Stage2Tests: 15}
	a, err := template.Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := template.Run(cfg)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	for i := range a.Stages {
		if a.Stages[i].EventHits != b.Stages[i].EventHits {
			t.Fatalf("stage %d hits differ between identically-seeded runs", i)
		}
	}
}
