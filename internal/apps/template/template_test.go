package template

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/rules"
)

func TestRunTable1Shape(t *testing.T) {
	res, err := Run(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 3 {
		t.Fatalf("stage count %d", len(res.Stages))
	}
	orig, first, second := res.Stages[0], res.Stages[1], res.Stages[2]

	// Row "Original": 400 tests, only the easy points (A0=load-hit,
	// A1=load-miss) receive coverage.
	if orig.Tests != 400 {
		t.Fatalf("original tests %d", orig.Tests)
	}
	if orig.EventHits[isa.EvLoadHit] == 0 || orig.EventHits[isa.EvLoadMiss] == 0 {
		t.Fatal("original should cover A0 and A1")
	}
	for e := isa.EvForward; e < isa.NumEvents; e++ {
		if orig.EventHits[e] != 0 {
			t.Fatalf("original unexpectedly covered %v", e)
		}
	}
	if orig.Covered() != 2 {
		t.Fatalf("original covered %d points", orig.Covered())
	}

	// Row "1st learning": 100 tests cover more points than the original.
	if first.Tests != 100 {
		t.Fatalf("first tests %d", first.Tests)
	}
	if first.Covered() <= orig.Covered() {
		t.Fatalf("1st learning did not improve: %d vs %d", first.Covered(), orig.Covered())
	}
	if len(first.Rules) == 0 {
		t.Fatal("1st learning produced no rules")
	}

	// Row "2nd learning": 50 tests cover ALL points.
	if second.Tests != 50 {
		t.Fatalf("second tests %d", second.Tests)
	}
	if second.Covered() != int(isa.NumEvents) {
		t.Fatalf("2nd learning covered %d of %d points:\n%s",
			second.Covered(), isa.NumEvents, res)
	}
	// Concentration: per-test hit rate on the hard points should rise
	// from stage 1 to stage 2.
	hard := []isa.Event{isa.EvForward, isa.EvSBFull, isa.EvPageCross}
	for _, e := range hard {
		r1 := float64(first.EventHits[e]) / float64(first.Tests)
		r2 := float64(second.EventHits[e]) / float64(second.Tests)
		if r2 <= r1 {
			t.Fatalf("no concentration on %v: %.3f -> %.3f", e, r1, r2)
		}
	}
	if !strings.Contains(res.String(), "2nd learning") {
		t.Fatal("table render")
	}
}

func TestRefineTemplateKnobMapping(t *testing.T) {
	base := isa.DefaultTemplate()
	conds := []rules.Condition{
		{Name: "store_frac", Op: rules.GT},
		{Name: "unaligned_frac", Op: rules.GT},
		{Name: "pair_count", Op: rules.GT},
		{Name: "max_store_run", Op: rules.GT},
		{Name: "max_base_reg", Op: rules.GT},
		{Name: "max_offset", Op: rules.GT},
		{Name: "byte_frac", Op: rules.GT},
		{Name: "load_frac", Op: rules.LE}, // LE conditions are ignored
	}
	ref := RefineTemplate(base, conds)
	if ref.StoreWeight < 0.35 || ref.UnalignedProb < 0.4 || ref.PairProb < 0.5 ||
		ref.BurstProb < 0.35 || ref.MaxBaseReg != 7 || ref.ImmRange != 512 ||
		ref.WidthWeights[0] < 0.3 {
		t.Fatalf("knobs not raised: %+v", ref)
	}
	if ref.LoadWeight != base.LoadWeight {
		t.Fatal("LE condition should not change knobs")
	}
}

func TestRulesMentionCausalFeatures(t *testing.T) {
	res, err := Run(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	all := strings.Join(res.Stages[1].Rules, "\n")
	// The forwarding point is caused by store-load pairs; the learned
	// rules should surface pair_count or store_frac for it.
	if !strings.Contains(all, "pair_count") && !strings.Contains(all, "store_frac") {
		t.Fatalf("rules miss causal features:\n%s", all)
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
