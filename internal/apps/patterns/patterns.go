// Package patterns demonstrates unsupervised association-rule mining on
// manufacturing test data (paper Section 2.4, refs [26],[32]): failing
// chips are transactions whose items are the tests they failed plus their
// wafer zone; Apriori surfaces the co-failure structure of each defect
// mode and its spatial signature (edge-zone concentration), the kind of
// inter-wafer abnormality analysis of [32].
package patterns

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/mfgtest"
	"repro/internal/obs"
	"repro/internal/rules"
)

// Association-rule-mining metrics (Section 2.4): chips mined per run.
var (
	patChips   = obs.GetCounter("patterns.chips_mined")
	patRunTime = obs.GetHistogram("patterns.run_ns")
)

// Config controls the experiment.
type Config struct {
	Seed       int64
	Chips      int     // default 200000
	MinSupport float64 // default 0.08 (of failing chips)
	MinConf    float64 // default 0.7
}

func (c *Config) defaults() {
	if c.Chips <= 0 {
		c.Chips = 200000
	}
	if c.MinSupport <= 0 {
		c.MinSupport = 0.08
	}
	if c.MinConf <= 0 {
		c.MinConf = 0.7
	}
}

// Result is the mined pattern report.
type Result struct {
	FailingChips int
	Rules        []rules.AssocRule
}

// String renders the top rules.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "failing chips: %d; top association rules:\n", r.FailingChips)
	n := len(r.Rules)
	if n > 8 {
		n = 8
	}
	for _, ru := range r.Rules[:n] {
		fmt.Fprintf(&b, "  %s\n", ru)
	}
	return b.String()
}

// buildModel creates an 8-test product with two planted defect modes:
// mode1 fails {t1, t2, t5} together and concentrates at the wafer edge;
// mode2 fails {t3, t4} together anywhere.
func buildModel() *mfgtest.Model {
	const nTests = 8
	m := &mfgtest.Model{
		Names:    make([]string, nTests),
		Mean:     make([]float64, nTests),
		Loadings: make([][]float64, nTests),
		Noise:    make([]float64, nTests),
		WaferSD:  0.1,
		PerWafer: 500,
	}
	for j := 0; j < nTests; j++ {
		m.Names[j] = fmt.Sprintf("t%d", j)
		m.Loadings[j] = []float64{0.7}
		m.Noise[j] = 0.7
	}
	return m
}

// Run executes the experiment.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	defer patRunTime.Start().Stop()
	patChips.Add(int64(cfg.Chips))
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	model := buildModel()
	limits := mfgtest.LimitsFromModel(model, 4.5)
	perWafer := model.PerWafer

	defect := func(rng *rand.Rand, c *mfgtest.Chip) {
		pos := c.ID % perWafer
		edge := pos < perWafer/5 // first fifth of each wafer is the edge ring
		// Mode 1: strongly edge-concentrated, fails t1, t2, t5 together.
		p1 := 0.0002
		if edge {
			p1 = 0.008
		}
		if rng.Float64() < p1 {
			for _, j := range []int{1, 2, 5} {
				c.Meas[j] += 6 + rng.Float64()
			}
		}
		// Mode 2: uniform, fails t3, t4 together.
		if rng.Float64() < 0.001 {
			for _, j := range []int{3, 4} {
				c.Meas[j] -= 6 + rng.Float64()
			}
		}
	}

	chips := model.Sample(rng, cfg.Chips, 0, defect)
	var txs []rules.Transaction
	for i := range chips {
		c := &chips[i]
		var tx rules.Transaction
		for j := range c.Meas {
			if limits.FailsTest(c, j) {
				tx = append(tx, "fail:"+model.Names[j])
			}
		}
		if len(tx) == 0 {
			continue
		}
		zone := "zone:center"
		if c.ID%perWafer < perWafer/5 {
			zone = "zone:edge"
		}
		tx = append(tx, zone)
		txs = append(txs, tx)
	}
	if len(txs) < 20 {
		return nil, errors.New("patterns: too few failing chips to mine")
	}
	_, mined := rules.Apriori(txs, cfg.MinSupport, cfg.MinConf)
	return &Result{FailingChips: len(txs), Rules: mined}, nil
}

// HasRule reports whether a mined rule has exactly the given antecedent
// items (order-free) and contains want in its consequent.
func (r *Result) HasRule(antecedent []string, want string) bool {
	for _, ru := range r.Rules {
		if len(ru.Antecedent) != len(antecedent) {
			continue
		}
		match := true
		for _, a := range antecedent {
			found := false
			for _, x := range ru.Antecedent {
				if x == a {
					found = true
					break
				}
			}
			if !found {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		for _, c := range ru.Consequent {
			if c == want {
				return true
			}
		}
	}
	return false
}
