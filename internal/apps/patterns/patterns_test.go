package patterns

import (
	"strings"
	"testing"
)

func TestRunMinesPlantedDefectModes(t *testing.T) {
	res, err := Run(Config{Seed: 1, Chips: 150000})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailingChips < 50 {
		t.Fatalf("too few failing chips: %d", res.FailingChips)
	}
	if len(res.Rules) == 0 {
		t.Fatal("no rules mined")
	}
	// Mode 1's co-failure structure: failing t1 and t2 implies failing t5.
	if !res.HasRule([]string{"fail:t1", "fail:t2"}, "fail:t5") {
		t.Fatalf("mode-1 co-failure rule not mined:\n%s", res)
	}
	// Mode 2: failing t3 implies failing t4.
	if !res.HasRule([]string{"fail:t3"}, "fail:t4") {
		t.Fatalf("mode-2 co-failure rule not mined:\n%s", res)
	}
	// Spatial signature: the mode-1 failure pattern associates with the
	// wafer edge.
	edgeAssoc := false
	for _, ru := range res.Rules {
		hasT1 := false
		for _, a := range ru.Antecedent {
			if strings.HasPrefix(a, "fail:t1") || strings.HasPrefix(a, "fail:t2") || strings.HasPrefix(a, "fail:t5") {
				hasT1 = true
			}
		}
		if !hasT1 {
			continue
		}
		for _, c := range ru.Consequent {
			if c == "zone:edge" && ru.Confidence > 0.5 {
				edgeAssoc = true
			}
		}
	}
	if !edgeAssoc {
		t.Fatalf("edge-zone association not mined:\n%s", res)
	}
	if !strings.Contains(res.String(), "association") {
		t.Fatal("render")
	}
}

func TestRunValidation(t *testing.T) {
	// Tiny lot: not enough failures to mine.
	if _, err := Run(Config{Seed: 2, Chips: 200}); err == nil {
		t.Fatal("tiny lot accepted")
	}
}

func BenchmarkPatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Seed: int64(i), Chips: 60000}); err != nil {
			b.Fatal(err)
		}
	}
}
