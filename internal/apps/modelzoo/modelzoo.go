// Package modelzoo is the model-persistence experiment behind
// `edamine -save-model` / `-load-model`: it trains one model of every
// persistable kind (see internal/model) on deterministic synthetic
// substrates, scores a fixed probe set, and round-trips the models
// through the versioned artifact format.
//
// In save mode the trained artifacts are written to disk — the
// training half of the paper's durable-model loop (Section 5: a
// learned model pays off when it outlives the run that trained it).
// In load mode the artifacts are read back and re-scored, and the
// result reports whether every loaded model reproduces the freshly
// trained model's probe predictions bit for bit — the consuming half,
// and the in-process twin of what cmd/edaserved does over HTTP.
package modelzoo

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"

	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/linear"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/svm"
	"repro/internal/tree"
)

var (
	zooTrained = obs.GetCounter("modelzoo.models_trained")
	zooSaved   = obs.GetCounter("modelzoo.models_saved")
	zooLoaded  = obs.GetCounter("modelzoo.models_loaded")
)

// Config controls the experiment.
type Config struct {
	Seed        int64
	SaveDir     string // when set, write one artifact per kind here
	LoadDir     string // when set, read artifacts back and verify them
	ManifestRef string // recorded in each artifact's envelope
	Train       int    // training samples per model, default 160
	Probes      int    // probe samples per model, default 64
}

func (c *Config) defaults() {
	if c.Train <= 0 {
		c.Train = 160
	}
	if c.Probes <= 0 {
		c.Probes = 64
	}
}

// ModelReport is the per-kind outcome.
type ModelReport struct {
	Kind     model.Kind
	File     string // artifact path (save/load mode)
	Checksum string // payload SHA-256
	Probes   int
	// BitIdentical reports whether the artifact-round-tripped model
	// scored every probe bit-identically to the in-memory trained model.
	BitIdentical bool
}

// Result is the experiment outcome.
type Result struct {
	Seed    int64
	Models  []ModelReport
	SaveDir string
	LoadDir string
}

// ArtifactFile returns the conventional artifact filename for a kind.
func ArtifactFile(dir string, kind model.Kind) string {
	return filepath.Join(dir, string(kind)+".model.json")
}

// Trained couples a fitted model with its probe matrix and the
// in-process predictions the round-tripped model must reproduce. The
// serve end-to-end tests reuse it to compare HTTP predictions against
// the in-process reference.
type Trained struct {
	Kind   model.Kind
	Model  any
	Probes *linalg.Matrix
	Want   []float64
}

// TrainAll fits one model per persistable kind on substrates derived
// deterministically from seed, and scores each model's probe set
// in-process (one sample at a time — the reference the batch and HTTP
// paths must match).
func TrainAll(seed int64, nTrain, nProbes int) ([]Trained, error) {
	var out []Trained

	// SVC: two-Gaussian binary classification, RBF kernel.
	{
		rng := rand.New(rand.NewSource(seed + 101))
		d := dataset.TwoGaussians(rng, nTrain, 4, 2.5, 1.0)
		k := kernel.RBF{Gamma: 0.5}
		m, err := svm.FitSVC(d, k, svm.SVCConfig{C: 1, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("modelzoo: svc: %w", err)
		}
		probes := dataset.TwoGaussians(rng, nProbes, 4, 2.5, 1.0).X
		out = append(out, Trained{model.KindSVC, m, probes, scoreRows(probes, m.Predict)})
	}

	// One-class SVM: novelty detection over a single cluster.
	{
		rng := rand.New(rand.NewSource(seed + 202))
		d := dataset.Blobs(rng, 1, nTrain, 3, 0, 1.0)
		k := kernel.RBF{Gamma: 0.3}
		m, err := svm.FitOneClass(d.X, k, svm.OneClassConfig{Nu: 0.1})
		if err != nil {
			return nil, fmt.Errorf("modelzoo: oneclass: %w", err)
		}
		probes := dataset.Blobs(rng, 1, nProbes, 3, 0, 2.0).X
		out = append(out, Trained{model.KindOneClass, m, probes, scoreRows(probes, m.Decision)})
	}

	// Ridge: Friedman #1 regression surface.
	{
		rng := rand.New(rand.NewSource(seed + 303))
		d := dataset.Friedman1(rng, nTrain, 8, 0.5)
		m, err := linear.FitRidge(d, 1.0)
		if err != nil {
			return nil, fmt.Errorf("modelzoo: ridge: %w", err)
		}
		probes := dataset.Friedman1(rng, nProbes, 8, 0.5).X
		out = append(out, Trained{model.KindRidge, m, probes, scoreRows(probes, m.Predict)})
	}

	// GP: noisy sine, RBF covariance. Smaller n — the fit is O(n³).
	{
		rng := rand.New(rand.NewSource(seed + 404))
		nGP := nTrain / 2
		if nGP < 16 {
			nGP = 16
		}
		d := dataset.NoisySine(rng, nGP, 0.15)
		m, err := gp.Fit(d, gp.Config{Kernel: kernel.RBF{Gamma: 2.0}, Noise: 0.05})
		if err != nil {
			return nil, fmt.Errorf("modelzoo: gp: %w", err)
		}
		probes := dataset.NoisySine(rng, nProbes, 0.15).X
		out = append(out, Trained{model.KindGP, m, probes, scoreRows(probes, m.Predict)})
	}

	// Decision tree: XOR — linearly inseparable, trees split it cleanly.
	{
		rng := rand.New(rand.NewSource(seed + 505))
		d := dataset.XOR(rng, nTrain/4, 0.35)
		m, err := tree.Fit(d, tree.Config{MaxDepth: 6, MinLeaf: 2})
		if err != nil {
			return nil, fmt.Errorf("modelzoo: tree: %w", err)
		}
		probes := dataset.XOR(rng, nProbes/4+1, 0.35).X
		out = append(out, Trained{model.KindTree, m, probes, scoreRows(probes, m.Predict)})
	}

	// CN2-SD rule set: subgroups of the positive Gaussian.
	{
		rng := rand.New(rand.NewSource(seed + 606))
		d := dataset.TwoGaussians(rng, nTrain, 3, 3.0, 1.0)
		rs, err := rules.CN2SD(d, 1, rules.CN2SDConfig{MaxRules: 4, MaxConditions: 2})
		if err != nil {
			return nil, fmt.Errorf("modelzoo: ruleset: %w", err)
		}
		m := &rules.RuleSet{Rules: rs, Target: 1, Default: 0}
		probes := dataset.TwoGaussians(rng, nProbes, 3, 3.0, 1.0).X
		out = append(out, Trained{model.KindRuleSet, m, probes, scoreRows(probes, m.Predict)})
	}

	zooTrained.Add(int64(len(out)))
	return out, nil
}

func scoreRows(x *linalg.Matrix, f func([]float64) float64) []float64 {
	out := make([]float64, x.Rows)
	for i := range out {
		out[i] = f(x.Row(i))
	}
	return out
}

// Run executes the experiment (see the package comment).
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	models, err := TrainAll(cfg.Seed, cfg.Train, cfg.Probes)
	if err != nil {
		return nil, err
	}
	res := &Result{Seed: cfg.Seed, SaveDir: cfg.SaveDir, LoadDir: cfg.LoadDir}
	for _, t := range models {
		rep := ModelReport{Kind: t.Kind, Probes: t.Probes.Rows}
		meta := model.Meta{Name: "zoo-" + string(t.Kind), Seed: cfg.Seed, ManifestRef: cfg.ManifestRef}

		var art *model.Artifact
		switch {
		case cfg.SaveDir != "":
			rep.File = ArtifactFile(cfg.SaveDir, t.Kind)
			if art, err = model.Save(rep.File, t.Model, meta); err != nil {
				return nil, err
			}
			zooSaved.Inc()
			// Verify the file that was just written, not the in-memory copy.
			if art, err = model.Load(rep.File); err != nil {
				return nil, err
			}
		case cfg.LoadDir != "":
			rep.File = ArtifactFile(cfg.LoadDir, t.Kind)
			if art, err = model.Load(rep.File); err != nil {
				return nil, err
			}
			zooLoaded.Inc()
		default:
			// Pure round-trip through bytes, no disk.
			if art, err = model.Encode(t.Model, meta); err != nil {
				return nil, err
			}
			data, merr := art.Marshal()
			if merr != nil {
				return nil, merr
			}
			if art, err = model.Decode(data); err != nil {
				return nil, err
			}
		}
		rep.Checksum = art.Envelope.Checksum

		scorer, err := art.Scorer()
		if err != nil {
			return nil, err
		}
		got := make([]float64, t.Probes.Rows)
		for i := range got {
			got[i] = scorer.ScoreRow(t.Probes.Row(i))
		}
		rep.BitIdentical = equalBits(got, t.Want)
		res.Models = append(res.Models, rep)
	}
	return res, nil
}

func equalBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the experiment report.
func (r *Result) String() string {
	var b strings.Builder
	mode := "round-trip (in-memory)"
	switch {
	case r.SaveDir != "":
		mode = "save to " + r.SaveDir
	case r.LoadDir != "":
		mode = "load from " + r.LoadDir
	}
	fmt.Fprintf(&b, "model persistence (seed=%d, %s)\n", r.Seed, mode)
	fmt.Fprintf(&b, "%-10s %-10s %-8s %s\n", "kind", "probes", "exact", "payload_sha256")
	ok := true
	for _, m := range r.Models {
		fmt.Fprintf(&b, "%-10s %-10d %-8v %s\n", m.Kind, m.Probes, m.BitIdentical, m.Checksum[:16])
		if !m.BitIdentical {
			ok = false
		}
	}
	if ok {
		fmt.Fprintf(&b, "all %d kinds round-trip bit-identically\n", len(r.Models))
	} else {
		fmt.Fprintf(&b, "ERROR: some kinds did not round-trip bit-identically\n")
	}
	return b.String()
}
