// Package modelzoo is the model-persistence experiment behind
// `edamine -save-model` / `-load-model`: it trains one model of every
// persistable kind (see internal/model) on deterministic synthetic
// substrates, scores a fixed probe set, and round-trips the models
// through the versioned artifact format.
//
// In save mode the trained artifacts are written to disk — the
// training half of the paper's durable-model loop (Section 5: a
// learned model pays off when it outlives the run that trained it).
// In load mode the artifacts are read back and re-scored, and the
// result reports whether every loaded model reproduces the freshly
// trained model's probe predictions bit for bit — the consuming half,
// and the in-process twin of what cmd/edaserved does over HTTP.
package modelzoo

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"strings"

	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/linear"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/svm"
	"repro/internal/tree"
)

var (
	zooTrained = obs.GetCounter("modelzoo.models_trained")
	zooSaved   = obs.GetCounter("modelzoo.models_saved")
	zooLoaded  = obs.GetCounter("modelzoo.models_loaded")
)

// Config controls the experiment.
type Config struct {
	Seed        int64
	SaveDir     string // when set, write one artifact per kind here
	LoadDir     string // when set, read artifacts back and verify them
	ManifestRef string // recorded in each artifact's envelope
	Train       int    // training samples per model, default 160
	Probes      int    // probe samples per model, default 64
	// Approx, when non-empty ("rff:D" or "nystrom:m"), additionally
	// compiles each kernel kind (svc, oneclass, gp) into an
	// approx-linear artifact alongside the exact one, and reports the
	// measured train-set decision error versus the exact model.
	Approx string
}

func (c *Config) defaults() {
	if c.Train <= 0 {
		c.Train = 160
	}
	if c.Probes <= 0 {
		c.Probes = 64
	}
}

// Payload kinds a zoo artifact can carry.
const (
	PayloadExact  = "exact"
	PayloadApprox = "approx-linear"
)

// ModelReport is the per-artifact outcome.
type ModelReport struct {
	Kind     model.Kind
	Payload  string // PayloadExact or PayloadApprox
	File     string // artifact path (save/load mode)
	Checksum string // payload SHA-256
	Bytes    int    // marshalled artifact size
	Probes   int
	// BitIdentical reports whether the artifact-round-tripped model
	// scored every probe bit-identically to the in-memory trained model
	// (for approx payloads, to the freshly compiled model).
	BitIdentical bool
	// MaxErr is the worst |approx − exact| decision gap over the
	// training rows; meaningful only for PayloadApprox.
	MaxErr float64
}

// Result is the experiment outcome.
type Result struct {
	Seed    int64
	Models  []ModelReport
	SaveDir string
	LoadDir string
	Approx  string // the -approx spec in effect, if any
}

// ArtifactFile returns the conventional artifact filename for a kind.
func ArtifactFile(dir string, kind model.Kind) string {
	return filepath.Join(dir, string(kind)+".model.json")
}

// ApproxArtifactFile returns the conventional filename for the compiled
// approx-linear form of a kernel kind.
func ApproxArtifactFile(dir string, kind model.Kind) string {
	return filepath.Join(dir, string(kind)+".approx.model.json")
}

// Trained couples a fitted model with its probe matrix and the
// in-process predictions the round-tripped model must reproduce. The
// serve end-to-end tests reuse it to compare HTTP predictions against
// the in-process reference.
type Trained struct {
	Kind   model.Kind
	Model  any
	Train  *linalg.Matrix // training rows (the compile-error reference set)
	Probes *linalg.Matrix
	Want   []float64
}

// TrainAll fits one model per persistable kind on substrates derived
// deterministically from seed, and scores each model's probe set
// in-process (one sample at a time — the reference the batch and HTTP
// paths must match).
func TrainAll(seed int64, nTrain, nProbes int) ([]Trained, error) {
	var out []Trained

	// SVC: two-Gaussian binary classification, RBF kernel.
	{
		rng := rand.New(rand.NewSource(seed + 101))
		d := dataset.TwoGaussians(rng, nTrain, 4, 2.5, 1.0)
		k := kernel.RBF{Gamma: 0.5}
		m, err := svm.FitSVC(d, k, svm.SVCConfig{C: 1, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("modelzoo: svc: %w", err)
		}
		probes := dataset.TwoGaussians(rng, nProbes, 4, 2.5, 1.0).X
		out = append(out, Trained{model.KindSVC, m, d.X, probes, scoreRows(probes, m.Predict)})
	}

	// One-class SVM: novelty detection over a single cluster.
	{
		rng := rand.New(rand.NewSource(seed + 202))
		d := dataset.Blobs(rng, 1, nTrain, 3, 0, 1.0)
		k := kernel.RBF{Gamma: 0.3}
		m, err := svm.FitOneClass(d.X, k, svm.OneClassConfig{Nu: 0.1})
		if err != nil {
			return nil, fmt.Errorf("modelzoo: oneclass: %w", err)
		}
		probes := dataset.Blobs(rng, 1, nProbes, 3, 0, 2.0).X
		out = append(out, Trained{model.KindOneClass, m, d.X, probes, scoreRows(probes, m.Decision)})
	}

	// Ridge: Friedman #1 regression surface.
	{
		rng := rand.New(rand.NewSource(seed + 303))
		d := dataset.Friedman1(rng, nTrain, 8, 0.5)
		m, err := linear.FitRidge(d, 1.0)
		if err != nil {
			return nil, fmt.Errorf("modelzoo: ridge: %w", err)
		}
		probes := dataset.Friedman1(rng, nProbes, 8, 0.5).X
		out = append(out, Trained{model.KindRidge, m, d.X, probes, scoreRows(probes, m.Predict)})
	}

	// GP: noisy sine, RBF covariance. Smaller n — the fit is O(n³).
	{
		rng := rand.New(rand.NewSource(seed + 404))
		nGP := nTrain / 2
		if nGP < 16 {
			nGP = 16
		}
		d := dataset.NoisySine(rng, nGP, 0.15)
		m, err := gp.Fit(d, gp.Config{Kernel: kernel.RBF{Gamma: 2.0}, Noise: 0.05})
		if err != nil {
			return nil, fmt.Errorf("modelzoo: gp: %w", err)
		}
		probes := dataset.NoisySine(rng, nProbes, 0.15).X
		out = append(out, Trained{model.KindGP, m, d.X, probes, scoreRows(probes, m.Predict)})
	}

	// Decision tree: XOR — linearly inseparable, trees split it cleanly.
	{
		rng := rand.New(rand.NewSource(seed + 505))
		d := dataset.XOR(rng, nTrain/4, 0.35)
		m, err := tree.Fit(d, tree.Config{MaxDepth: 6, MinLeaf: 2})
		if err != nil {
			return nil, fmt.Errorf("modelzoo: tree: %w", err)
		}
		probes := dataset.XOR(rng, nProbes/4+1, 0.35).X
		out = append(out, Trained{model.KindTree, m, d.X, probes, scoreRows(probes, m.Predict)})
	}

	// CN2-SD rule set: subgroups of the positive Gaussian.
	{
		rng := rand.New(rand.NewSource(seed + 606))
		d := dataset.TwoGaussians(rng, nTrain, 3, 3.0, 1.0)
		rs, err := rules.CN2SD(d, 1, rules.CN2SDConfig{MaxRules: 4, MaxConditions: 2})
		if err != nil {
			return nil, fmt.Errorf("modelzoo: ruleset: %w", err)
		}
		m := &rules.RuleSet{Rules: rs, Target: 1, Default: 0}
		probes := dataset.TwoGaussians(rng, nProbes, 3, 3.0, 1.0).X
		out = append(out, Trained{model.KindRuleSet, m, d.X, probes, scoreRows(probes, m.Predict)})
	}

	zooTrained.Add(int64(len(out)))
	return out, nil
}

func scoreRows(x *linalg.Matrix, f func([]float64) float64) []float64 {
	out := make([]float64, x.Rows)
	for i := range out {
		out[i] = f(x.Row(i))
	}
	return out
}

// zooJob is one artifact to persist and verify: either a trained model
// in its exact form, or its compiled approx-linear form.
type zooJob struct {
	kind    model.Kind
	payload string // PayloadExact or PayloadApprox
	name    string // artifact base name, e.g. "svc.model.json"
	mdl     any
	probes  *linalg.Matrix
	want    []float64
	maxErr  float64 // approx only
}

// kernelKind reports whether a zoo kind has a kernel expansion that
// model.CompileApprox can collapse.
func kernelKind(k model.Kind) bool {
	return k == model.KindSVC || k == model.KindOneClass || k == model.KindGP
}

// approxJobs compiles every kernel kind under spec and measures the
// worst train-set decision gap against the exact model.
func approxJobs(models []Trained, spec model.ApproxSpec) ([]zooJob, error) {
	var jobs []zooJob
	for _, t := range models {
		if !kernelKind(t.Kind) {
			continue
		}
		am, err := model.CompileApprox(t.Model, spec)
		if err != nil {
			return nil, fmt.Errorf("modelzoo: compile %s: %w", t.Kind, err)
		}
		maxErr, err := trainSetError(t, am)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, zooJob{
			kind:    t.Kind,
			payload: PayloadApprox,
			name:    string(t.Kind) + ".approx.model.json",
			mdl:     am,
			probes:  t.Probes,
			want:    scoreRows(t.Probes, am.ScoreRow),
			maxErr:  maxErr,
		})
	}
	return jobs, nil
}

// trainSetError is the worst |approx − exact| raw-decision gap over the
// training rows — the measured compile error the report prints.
func trainSetError(t Trained, am *model.ApproxModel) (float64, error) {
	var exact func([]float64) float64
	switch m := t.Model.(type) {
	case *svm.SVC:
		exact = m.Decision
	case *svm.OneClass:
		exact = m.Decision
	case *gp.Regressor:
		exact = m.Predict
	default:
		return 0, fmt.Errorf("modelzoo: no exact decision for %T", t.Model)
	}
	worst := 0.0
	for i := 0; i < t.Train.Rows; i++ {
		x := t.Train.Row(i)
		if e := math.Abs(am.Decision(x) - exact(x)); e > worst {
			worst = e
		}
	}
	return worst, nil
}

// Run executes the experiment (see the package comment).
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	models, err := TrainAll(cfg.Seed, cfg.Train, cfg.Probes)
	if err != nil {
		return nil, err
	}
	res := &Result{Seed: cfg.Seed, SaveDir: cfg.SaveDir, LoadDir: cfg.LoadDir, Approx: cfg.Approx}

	jobs := make([]zooJob, 0, len(models))
	for _, t := range models {
		jobs = append(jobs, zooJob{
			kind: t.Kind, payload: PayloadExact, name: string(t.Kind) + ".model.json",
			mdl: t.Model, probes: t.Probes, want: t.Want,
		})
	}
	if cfg.Approx != "" {
		// The feature-map seed stream follows the zoo's seed+NNN
		// convention, independent of every training stream.
		spec, err := model.ParseApproxSpec(cfg.Approx, cfg.Seed+707)
		if err != nil {
			return nil, fmt.Errorf("modelzoo: -approx: %w", err)
		}
		aj, err := approxJobs(models, spec)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, aj...)
	}

	for _, j := range jobs {
		rep := ModelReport{Kind: j.kind, Payload: j.payload, Probes: j.probes.Rows, MaxErr: j.maxErr}
		meta := model.Meta{Name: "zoo-" + string(j.kind), Seed: cfg.Seed, ManifestRef: cfg.ManifestRef}

		var art *model.Artifact
		switch {
		case cfg.SaveDir != "":
			rep.File = filepath.Join(cfg.SaveDir, j.name)
			if art, err = model.Save(rep.File, j.mdl, meta); err != nil {
				return nil, err
			}
			zooSaved.Inc()
			// Verify the file that was just written, not the in-memory copy.
			if art, err = model.Load(rep.File); err != nil {
				return nil, err
			}
		case cfg.LoadDir != "":
			rep.File = filepath.Join(cfg.LoadDir, j.name)
			if art, err = model.Load(rep.File); err != nil {
				return nil, err
			}
			zooLoaded.Inc()
		default:
			// Pure round-trip through bytes, no disk.
			if art, err = model.Encode(j.mdl, meta); err != nil {
				return nil, err
			}
			data, merr := art.Marshal()
			if merr != nil {
				return nil, merr
			}
			if art, err = model.Decode(data); err != nil {
				return nil, err
			}
		}
		rep.Checksum = art.Envelope.Checksum
		data, merr := art.Marshal()
		if merr != nil {
			return nil, merr
		}
		rep.Bytes = len(data)

		scorer, err := art.Scorer()
		if err != nil {
			return nil, err
		}
		got := make([]float64, j.probes.Rows)
		for i := range got {
			got[i] = scorer.ScoreRow(j.probes.Row(i))
		}
		rep.BitIdentical = equalBits(got, j.want)
		res.Models = append(res.Models, rep)
	}
	return res, nil
}

func equalBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the experiment report.
func (r *Result) String() string {
	var b strings.Builder
	mode := "round-trip (in-memory)"
	switch {
	case r.SaveDir != "":
		mode = "save to " + r.SaveDir
	case r.LoadDir != "":
		mode = "load from " + r.LoadDir
	}
	if r.Approx != "" {
		mode += ", approx=" + r.Approx
	}
	fmt.Fprintf(&b, "model persistence (seed=%d, %s)\n", r.Seed, mode)
	fmt.Fprintf(&b, "%-10s %-14s %-8s %-8s %-8s %-12s %s\n",
		"kind", "payload", "bytes", "probes", "bitexact", "train_err", "payload_sha256")
	ok := true
	for _, m := range r.Models {
		trainErr := "-"
		if m.Payload == PayloadApprox {
			trainErr = fmt.Sprintf("%.3g", m.MaxErr)
		}
		fmt.Fprintf(&b, "%-10s %-14s %-8d %-8d %-8v %-12s %s\n",
			m.Kind, m.Payload, m.Bytes, m.Probes, m.BitIdentical, trainErr, m.Checksum[:16])
		if !m.BitIdentical {
			ok = false
		}
	}
	if ok {
		fmt.Fprintf(&b, "all %d artifacts round-trip bit-identically\n", len(r.Models))
	} else {
		fmt.Fprintf(&b, "ERROR: some artifacts did not round-trip bit-identically\n")
	}
	return b.String()
}
