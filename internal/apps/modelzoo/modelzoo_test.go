package modelzoo_test

// Model-zoo smoke tests (ISSUE 5 satellite): the zoo trains one model
// per persistable kind, and every trained model must survive the
// testkit differential driver — all scoring paths bit-identical — plus
// the save/load round trip the app itself implements.

import (
	"math"
	"testing"

	"repro/internal/apps/modelzoo"
	"repro/internal/model"
	"repro/internal/testkit"
)

func TestTrainAllCoversEveryKind(t *testing.T) {
	trained, err := modelzoo.TrainAll(31, 60, 20)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	seen := map[model.Kind]bool{}
	for _, tr := range trained {
		seen[tr.Kind] = true
	}
	for _, k := range model.Kinds() {
		if !seen[k] {
			t.Errorf("zoo trains no %s model", k)
		}
	}
}

func TestZooModelsPassDifferential(t *testing.T) {
	trained, err := modelzoo.TrainAll(31, 60, 20)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	for _, tr := range trained {
		tr := tr
		t.Run(string(tr.Kind), func(t *testing.T) {
			t.Parallel()
			if err := testkit.DiffPaths(tr.Model, tr.Probes); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestZooApproxArtifacts covers the -approx knob: each kernel kind
// gains a compiled approx-linear artifact that survives the save/load
// round trip bit-identically, reports its size and payload kind, and
// carries a finite measured train-set error.
func TestZooApproxArtifacts(t *testing.T) {
	dir := t.TempDir()
	cfg := modelzoo.Config{Seed: 31, SaveDir: dir, Train: 60, Probes: 20, Approx: "nystrom:24"}
	saved, err := modelzoo.Run(cfg)
	if err != nil {
		t.Fatalf("save run: %v", err)
	}
	cfg.SaveDir, cfg.LoadDir = "", dir
	loaded, err := modelzoo.Run(cfg)
	if err != nil {
		t.Fatalf("load run: %v", err)
	}
	countApprox := 0
	for i, m := range loaded.Models {
		if m.Bytes <= 0 {
			t.Errorf("%s/%s: artifact size %d, want > 0", m.Kind, m.Payload, m.Bytes)
		}
		if !m.BitIdentical {
			t.Errorf("%s/%s: loaded artifact not bit-identical", m.Kind, m.Payload)
		}
		if m.Checksum != saved.Models[i].Checksum {
			t.Errorf("%s/%s: checksum mismatch across save/load", m.Kind, m.Payload)
		}
		if m.Payload != modelzoo.PayloadApprox {
			continue
		}
		countApprox++
		if !(m.MaxErr >= 0) || math.IsInf(m.MaxErr, 0) {
			t.Errorf("%s: train-set error %v, want finite and >= 0", m.Kind, m.MaxErr)
		}
	}
	if countApprox != 3 {
		t.Errorf("got %d approx-linear artifacts, want 3 (svc, oneclass, gp)", countApprox)
	}

	if _, err := modelzoo.Run(modelzoo.Config{Seed: 31, Train: 60, Probes: 20, Approx: "rff:bogus"}); err == nil {
		t.Error("malformed -approx spec did not error")
	}
}

func TestZooSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	saved, err := modelzoo.Run(modelzoo.Config{Seed: 31, SaveDir: dir, Train: 60, Probes: 20})
	if err != nil {
		t.Fatalf("save run: %v", err)
	}
	loaded, err := modelzoo.Run(modelzoo.Config{Seed: 31, LoadDir: dir, Train: 60, Probes: 20})
	if err != nil {
		t.Fatalf("load run: %v", err)
	}
	if len(saved.Models) != len(loaded.Models) {
		t.Fatalf("saved %d models, loaded %d", len(saved.Models), len(loaded.Models))
	}
	for i, m := range loaded.Models {
		if !m.BitIdentical {
			t.Errorf("%s: loaded artifact not bit-identical to trained model", m.Kind)
		}
		if m.Checksum == "" || m.Checksum != saved.Models[i].Checksum {
			t.Errorf("%s: checksum mismatch across save/load (%q vs %q)",
				m.Kind, saved.Models[i].Checksum, m.Checksum)
		}
	}
}
