package varpred

import (
	"strings"
	"testing"
)

func TestRunFig9Shape(t *testing.T) {
	res, err := Run(Config{Seed: 1, Train: 250, Test: 250, KernelHI: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both classes must be represented in training data.
	if res.TrainBadFrac < 0.1 || res.TrainBadFrac > 0.9 {
		t.Fatalf("degenerate class balance: %.2f", res.TrainBadFrac)
	}
	// Figure 9 shape: the model catches most simulator-flagged hotspots...
	if res.Recall < 0.8 {
		t.Fatalf("hotspot recall %.2f too low (%s)", res.Recall, res.Confusion)
	}
	// ...with limited false alarms...
	if res.FalseAlarm > 0.3 {
		t.Fatalf("false alarm rate %.2f too high", res.FalseAlarm)
	}
	// ...and is much faster than the simulation.
	if res.Speedup < 3 {
		t.Fatalf("speedup %.1fx too small", res.Speedup)
	}
	if !strings.Contains(res.String(), "recall") {
		t.Fatal("render")
	}
}

func TestHIBeatsOrMatchesRBFAblation(t *testing.T) {
	hi, err := Run(Config{Seed: 2, Train: 250, Test: 250, KernelHI: true})
	if err != nil {
		t.Fatal(err)
	}
	rbf, err := Run(Config{Seed: 2, Train: 250, Test: 250, KernelHI: false})
	if err != nil {
		t.Fatal(err)
	}
	// The knowledge-bearing kernel should not lose clearly to the generic
	// one (paper Section 5: the challenge is the kernel, not the learner).
	if hi.Accuracy < rbf.Accuracy-0.05 {
		t.Fatalf("HI kernel (%.2f) much worse than RBF (%.2f)", hi.Accuracy, rbf.Accuracy)
	}
	if hi.KernelName == rbf.KernelName {
		t.Fatal("ablation did not switch kernels")
	}
}

func TestOneClassModeFlagsHotspots(t *testing.T) {
	// [13] also trained one-class SVM on good layouts only: hotspots are
	// then outliers. Detection is weaker than the supervised mode but must
	// still clearly beat chance.
	res, err := Run(Config{Seed: 3, Train: 250, Test: 250, KernelHI: true, OneClass: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.KernelName, "one-class") {
		t.Fatalf("mode not reported: %s", res.KernelName)
	}
	if res.Recall < 0.5 {
		t.Fatalf("one-class recall %.2f too low", res.Recall)
	}
	if res.Recall <= res.FalseAlarm {
		t.Fatalf("no discrimination: recall %.2f vs false alarm %.2f",
			res.Recall, res.FalseAlarm)
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Seed: int64(i), Train: 120, Test: 120, KernelHI: true}); err != nil {
			b.Fatal(err)
		}
	}
}
