// Package varpred implements the paper's layout-variability prediction
// application (Figures 8-9, ref [13]): an SVM with a Histogram
// Intersection kernel is trained against lithography-simulation labels and
// then replaces the simulator for fast hotspot screening. The paper's
// claim is shape, not absolute numbers: the learned model flags most of
// the high-variability windows the simulation flags, orders of magnitude
// faster.
package varpred

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/litho"
	"repro/internal/obs"
	"repro/internal/svm"
	"repro/internal/validate"
)

// Figure 9 metrics: windows pushed through the golden lithography
// simulator vs through the learned model (the substitution the paper's
// speedup claim is about), plus SVM training wall time.
var (
	vpSimulated = obs.GetCounter("varpred.windows_simulated")
	vpPredicted = obs.GetCounter("varpred.windows_predicted")
	vpTrainTime = obs.GetHistogram("varpred.train_ns")
)

// Config controls the experiment.
type Config struct {
	Seed     int64
	Train    int     // training windows, default 300
	Test     int     // evaluation windows, default 300
	Sigma    float64 // optical kernel sigma, default 2.5
	MinSlope float64 // weak-edge slope threshold, default 0.08
	BadWeak  float64 // WeakEdgeFrac above which a window is "bad", default 0.25
	Bins     int     // histogram bins per scale, default 8
	KernelHI bool    // use histogram intersection (true) or RBF ablation
	RBFGamma float64 // gamma for the RBF ablation, default 8
	// OneClass trains a one-class SVM on the GOOD windows only and flags
	// outliers as hotspots — the second learning mode [13] applied, for
	// when bad examples are too scarce to train a binary classifier.
	OneClass   bool
	OneClassNu float64 // default 0.1
}

func (c *Config) defaults() {
	if c.Train <= 0 {
		c.Train = 300
	}
	if c.Test <= 0 {
		c.Test = 300
	}
	if c.Sigma <= 0 {
		c.Sigma = 2.5
	}
	if c.MinSlope <= 0 {
		c.MinSlope = 0.08
	}
	if c.BadWeak <= 0 {
		c.BadWeak = 0.25
	}
	if c.Bins <= 0 {
		c.Bins = 8
	}
	if c.RBFGamma <= 0 {
		c.RBFGamma = 8
	}
}

// Result is the Figure 9 outcome.
type Result struct {
	KernelName   string
	TrainBadFrac float64
	Confusion    validate.ConfusionMatrix
	Recall       float64 // fraction of simulator-flagged hotspots the model catches
	FalseAlarm   float64 // fraction of good windows flagged
	Accuracy     float64
	// Cost accounting: mean wall time per window.
	SimPerWindow   time.Duration
	ModelPerWindow time.Duration
	Speedup        float64
}

// String renders the summary.
func (r *Result) String() string {
	return fmt.Sprintf(
		"kernel=%s hotspot recall=%.2f false-alarm=%.2f accuracy=%.2f speedup=%.0fx (sim %v vs model %v per window)",
		r.KernelName, r.Recall, r.FalseAlarm, r.Accuracy, r.Speedup,
		r.SimPerWindow, r.ModelPerWindow)
}

// genWindow draws a window from a mix of relaxed, medium, and aggressive
// pitch populations so both classes are represented.
func genWindow(rng *rand.Rand) *litho.Window {
	switch rng.Intn(3) {
	case 0: // aggressive: near resolution limit
		return litho.Generate(rng, litho.GenConfig{N: 64, MinWidth: 2, MaxWidth: 3, MinSpace: 2, MaxSpace: 4, Jog: 0.3})
	case 1: // medium
		return litho.Generate(rng, litho.GenConfig{N: 64, MinWidth: 3, MaxWidth: 6, MinSpace: 3, MaxSpace: 7, Jog: 0.2})
	default: // relaxed
		return litho.Generate(rng, litho.GenConfig{N: 64, MinWidth: 6, MaxWidth: 10, MinSpace: 8, MaxSpace: 14, Jog: 0.1})
	}
}

// label runs the golden lithography model.
func label(w *litho.Window, cfg Config) (bad bool, simTime time.Duration, err error) {
	vpSimulated.Inc()
	start := time.Now()
	v, err := litho.Variability(w, cfg.Sigma, cfg.MinSlope)
	if err != nil {
		return false, 0, err
	}
	return v.WeakEdgeFrac > cfg.BadWeak || math.IsInf(v.Score, 1), time.Since(start), nil
}

// Run executes the experiment.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	build := func(n int) (*dataset.Dataset, []*litho.Window, time.Duration, error) {
		rows := make([][]float64, n)
		y := make([]float64, n)
		ws := make([]*litho.Window, n)
		var simTotal time.Duration
		for i := 0; i < n; i++ {
			w := genWindow(rng)
			bad, st, err := label(w, cfg)
			if err != nil {
				return nil, nil, 0, err
			}
			simTotal += st
			rows[i] = litho.DensityHistogram(w, cfg.Bins)
			if bad {
				y[i] = 1
			}
			ws[i] = w
		}
		return dataset.FromRows(rows, y), ws, simTotal, nil
	}

	train, _, _, err := build(cfg.Train)
	if err != nil {
		return nil, err
	}
	test, testWs, simTotal, err := build(cfg.Test)
	if err != nil {
		return nil, err
	}

	var k kernel.Kernel = kernel.HistogramIntersection{}
	name := "histogram-intersection"
	if !cfg.KernelHI {
		k = kernel.RBF{Gamma: cfg.RBFGamma}
		name = "rbf-on-histograms"
	}

	trainTimer := vpTrainTime.Start()
	var predict func(f []float64) float64
	if cfg.OneClass {
		name += "/one-class"
		nu := cfg.OneClassNu
		if nu <= 0 || nu > 1 {
			nu = 0.1
		}
		// Train on good windows only.
		var goodIdx []int
		for i, v := range train.Y {
			if v == 0 {
				goodIdx = append(goodIdx, i)
			}
		}
		good := train.Subset(goodIdx)
		oc, err := svm.FitOneClass(good.X, k, svm.OneClassConfig{Nu: nu, MaxIters: 3000})
		if err != nil {
			return nil, err
		}
		predict = func(f []float64) float64 {
			if oc.Novel(f) {
				return 1
			}
			return 0
		}
	} else {
		model, err := svm.FitSVC(train, k, svm.SVCConfig{C: 10, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		predict = model.Predict
	}
	trainTimer.Stop()

	// Timed model pass: feature extraction + prediction per window.
	vpPredicted.Add(int64(test.Len()))
	start := time.Now()
	pred := make([]float64, test.Len())
	for i := 0; i < test.Len(); i++ {
		f := litho.DensityHistogram(testWs[i], cfg.Bins)
		pred[i] = predict(f)
	}
	modelTotal := time.Since(start)

	cm := validate.Confusion(pred, test.Y, 1)
	nBadTrain := 0
	for _, v := range train.Y {
		if v == 1 {
			nBadTrain++
		}
	}
	res := &Result{
		KernelName:   name,
		TrainBadFrac: float64(nBadTrain) / float64(train.Len()),
		Confusion:    cm,
		Recall:       cm.Recall(),
		FalseAlarm:   cm.FalsePositiveRate(),
		Accuracy:     validate.Accuracy(pred, test.Y),
	}
	res.SimPerWindow = simTotal / time.Duration(test.Len())
	res.ModelPerWindow = modelTotal / time.Duration(test.Len())
	if res.ModelPerWindow > 0 {
		res.Speedup = float64(res.SimPerWindow) / float64(res.ModelPerWindow)
	}
	return res, nil
}
