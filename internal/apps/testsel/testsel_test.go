package testsel

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestRunFig7Shape(t *testing.T) {
	// The Figure 7 shape at reduced scale: the filtered flow reaches the
	// stream's full coverage with far fewer simulations than the
	// unfiltered flow.
	res, err := Run(Config{Seed: 1, MaxTests: 1500, Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetBins == 0 {
		t.Fatal("no coverage target")
	}
	if res.SelectedBins < res.TargetBins {
		t.Fatalf("selection reached %d of %d bins", res.SelectedBins, res.TargetBins)
	}
	if res.SelectedSimulated >= res.BaselineTests {
		t.Fatalf("no saving: %d selected vs %d baseline", res.SelectedSimulated, res.BaselineTests)
	}
	if res.SavingFrac < 0.5 {
		t.Fatalf("saving too small: %.2f (selected %d baseline %d)",
			res.SavingFrac, res.SelectedSimulated, res.BaselineTests)
	}
	if res.SelectedCycles >= res.BaselineCycles {
		t.Fatal("cycle accounting should show savings")
	}
	if len(res.BaselineCurve) == 0 || len(res.SelectedCurve) == 0 {
		t.Fatal("coverage curves missing")
	}
	// Curves are monotone.
	for i := 1; i < len(res.SelectedCurve); i++ {
		if res.SelectedCurve[i].Bins < res.SelectedCurve[i-1].Bins {
			t.Fatal("selected curve not monotone")
		}
	}
	if !strings.Contains(res.String(), "saving") {
		t.Fatal("summary render")
	}
}

func TestRunDefaultsAndDegenerate(t *testing.T) {
	// A template with no memory ops reaches no coverage: must error.
	tpl := isa.Template{Len: 10, ALUWeight: 1}
	if _, err := Run(Config{Template: tpl, MaxTests: 50}); err == nil {
		t.Fatal("expected error for zero-coverage stream")
	}
}

func TestNuTradeoff(t *testing.T) {
	// Smaller nu accepts fewer tests (more aggressive filtering).
	strict, err := Run(Config{Seed: 3, MaxTests: 800, Nu: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Run(Config{Seed: 3, MaxTests: 800, Nu: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if strict.SelectedSimulated >= loose.SelectedSimulated {
		t.Fatalf("nu ordering violated: strict=%d loose=%d",
			strict.SelectedSimulated, loose.SelectedSimulated)
	}
}

func TestKnowledgeInKernelAblation(t *testing.T) {
	// Paper Section 5: the implementation challenge is the kernel, not the
	// learner. With opcode-only tokens (no knowledge) the filter cannot
	// see regions or boundary behaviour and must fall short on coverage
	// relative to the annotated kernel at the same operating point.
	full, err := Run(Config{Seed: 5, MaxTests: 800})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(Config{Seed: 5, MaxTests: 800, PlainTokens: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.SelectedBins < full.TargetBins {
		t.Fatalf("annotated kernel should reach target: %d/%d",
			full.SelectedBins, full.TargetBins)
	}
	if plain.SelectedBins >= full.SelectedBins && plain.SelectedSimulated <= full.SelectedSimulated {
		t.Fatalf("knowledge-free kernel should not dominate: plain %d bins/%d sims vs full %d bins/%d sims",
			plain.SelectedBins, plain.SelectedSimulated, full.SelectedBins, full.SelectedSimulated)
	}
}

func BenchmarkFig7Small(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Seed: 1, MaxTests: 400, Nu: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}
