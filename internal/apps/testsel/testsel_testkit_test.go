package testsel_test

// Novel-test-selection smoke tests driven by the testkit generators
// (ISSUE 5 satellite): the filter runs end to end on a generated
// workload and its structural contract holds — coverage curves are
// non-decreasing, the filtered flow never simulates more than it
// examines, and the whole run replays bit-identically from its seed.

import (
	"testing"

	"repro/internal/apps/testsel"
	"repro/internal/testkit"
)

func smokeConfig(seed int64) testsel.Config {
	return testsel.Config{Seed: seed, MaxTests: 250, RefitEvery: 20, WarmUp: 15}
}

func TestSelectionWiringSmoke(t *testing.T) {
	res, err := testsel.Run(smokeConfig(testkit.Mix(5, 2)))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.TargetBins <= 0 {
		t.Fatal("stream covered no bins — the simulator wiring is dead")
	}
	if res.SelectedBins < res.TargetBins {
		t.Errorf("filtered flow stopped at %d/%d bins", res.SelectedBins, res.TargetBins)
	}
	if res.SelectedSimulated > res.StreamConsumed {
		t.Errorf("simulated %d tests but only examined %d", res.SelectedSimulated, res.StreamConsumed)
	}
	if res.SelectedSimulated <= 0 || res.BaselineTests <= 0 {
		t.Error("degenerate run: nothing simulated")
	}
	for name, curve := range map[string][]testsel.CurvePoint{
		"baseline": res.BaselineCurve, "selected": res.SelectedCurve,
	} {
		for i := 1; i < len(curve); i++ {
			if curve[i].Bins < curve[i-1].Bins || curve[i].Simulated < curve[i-1].Simulated {
				t.Fatalf("%s curve not monotone at %d: %+v -> %+v", name, i, curve[i-1], curve[i])
			}
		}
	}
}

func TestSelectionDeterministic(t *testing.T) {
	a, err := testsel.Run(smokeConfig(99))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := testsel.Run(smokeConfig(99))
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if a.SelectedSimulated != b.SelectedSimulated || a.SelectedBins != b.SelectedBins ||
		a.StreamConsumed != b.StreamConsumed {
		t.Fatalf("identically-seeded runs differ: %+v vs %+v", a, b)
	}
}
