// Package testsel implements the paper's novel-test-selection application
// (Figure 7, refs [14],[27]): a one-class SVM over an n-gram spectrum
// kernel filters the constrained-random test stream, so that only tests
// novel with respect to everything already simulated are sent to the
// (expensive) simulator. Redundant tests are dropped, reaching the same
// functional coverage with a small fraction of the simulation effort.
package testsel

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/svm"
)

// Figure 7 metrics. testsel.cycles_saved is the headline number of the
// experiment — simulator cycles the novelty filter avoided relative to
// the unfiltered baseline — promoted from a local variable to a
// first-class metric so every manifest carries it. The kernel-row
// counter measures the filter's own cost (the paper's trade: cheap
// kernel evaluations for expensive simulation).
var (
	tsExamined   = obs.GetCounter("testsel.tests_examined")
	tsSimulated  = obs.GetCounter("testsel.tests_simulated")
	tsKernelRows = obs.GetCounter("testsel.kernel_row_evals")
	tsRefits     = obs.GetCounter("testsel.refits")
	tsCycles     = obs.GetCounter("testsel.cycles_saved")
	tsGoldenTime = obs.GetHistogram("testsel.golden_pass_ns")
	tsFilterTime = obs.GetHistogram("testsel.filter_pass_ns")
)

// kernelRowCutover keeps short kernel-row evaluations serial; each entry
// costs a blended-spectrum histogram dot product, so a few dozen entries
// already amortize the pool.
const kernelRowCutover = 64

// Config controls the experiment.
type Config struct {
	Template   isa.Template
	Seed       int64
	MaxTests   int     // randomizer stream length, default 6000
	NGram      int     // blended spectrum max n-gram length, default 2
	Lambda     float64 // blended spectrum decay, default 0.25 (unigram-dominant)
	Nu         float64 // one-class SVM nu, default 0.1
	RefitEvery int     // refit the detector every k accepted tests, default 25
	WarmUp     int     // tests always simulated before the first model, default 30
	// PlainTokens ablates the domain knowledge in the kernel: the filter
	// sees opcode-only token streams instead of the annotated ones.
	PlainTokens bool
}

func (c *Config) defaults() {
	if c.MaxTests <= 0 {
		c.MaxTests = 6000
	}
	if c.NGram <= 0 {
		c.NGram = 2
	}
	if c.Lambda <= 0 || c.Lambda >= 1 {
		c.Lambda = 0.25
	}
	if c.Nu <= 0 || c.Nu > 1 {
		c.Nu = 0.1
	}
	if c.RefitEvery <= 0 {
		c.RefitEvery = 25
	}
	if c.WarmUp <= 0 {
		c.WarmUp = 30
	}
	if c.Template.Len == 0 {
		c.Template = isa.WideTemplate()
	}
}

// CurvePoint samples a coverage progression.
type CurvePoint struct {
	Simulated int // tests simulated so far
	Bins      int // distinct coverage bins hit
}

// Result is the Figure 7 outcome.
type Result struct {
	TargetBins        int     // coverage of the full stream (the "maximum coverage")
	BaselineTests     int     // simulations the unfiltered flow needs to reach the target
	SelectedSimulated int     // simulations the filtered flow needed
	StreamConsumed    int     // randomizer tests examined by the filter
	SelectedBins      int     // coverage the filtered flow reached
	SavingFrac        float64 // 1 - selected/baseline
	BaselineCycles    int64   // simulated cycles, unfiltered
	SelectedCycles    int64   // simulated cycles, filtered
	BaselineCurve     []CurvePoint
	SelectedCurve     []CurvePoint
}

// String renders the paper-style summary.
func (r *Result) String() string {
	return fmt.Sprintf(
		"max coverage: %d bins\nwithout selection: %d tests simulated\nwith novel test selection: %d tests simulated (%d examined)\nsaving: %.1f%% of simulation (%d -> %d cycles)",
		r.TargetBins, r.BaselineTests, r.SelectedSimulated, r.StreamConsumed,
		100*r.SavingFrac, r.BaselineCycles, r.SelectedCycles)
}

// Run executes the experiment: it materializes the randomizer stream,
// measures how many tests the unfiltered flow must simulate to reach the
// stream's full coverage, then replays the same stream through the
// novelty filter.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	gen := isa.NewGenerator(cfg.Template, cfg.Seed)
	stream := gen.Batch(cfg.MaxTests)

	// Golden pass: simulate everything once to know the reachable coverage
	// and the baseline progression. The batch is striped across the worker
	// pool (the paper's point that candidate simulation is the dominant
	// cost); the merge stays serial in stream order.
	goldenTimer := tsGoldenTime.Start()
	covs, cycles := isa.SimulateBatch(stream)
	var total isa.Coverage
	for i := range stream {
		total.Merge(covs[i])
	}
	goldenTimer.Stop()
	target := total.Count()
	if target == 0 {
		return nil, errors.New("testsel: stream reaches no coverage")
	}

	res := &Result{TargetBins: target}

	// Baseline: simulate in stream order until the target is reached.
	var acc isa.Coverage
	for i := range stream {
		acc.Merge(covs[i])
		res.BaselineCycles += cycles[i]
		if sampled(i + 1) {
			res.BaselineCurve = append(res.BaselineCurve, CurvePoint{i + 1, acc.Count()})
		}
		if acc.Count() == target {
			res.BaselineTests = i + 1
			break
		}
	}
	if res.BaselineTests == 0 {
		res.BaselineTests = len(stream)
	}

	// Filtered flow. The randomizer is endless: after the materialized
	// stream is exhausted the filter keeps drawing fresh tests (up to
	// streamBudget), simulating only the novel ones.
	m := isa.NewMachine()
	spec := kernel.BlendedSpectrum{MaxN: cfg.NGram, Lambda: cfg.Lambda, Normalize: true}
	var accepted []kernel.MultiCounts
	var gram [][]float64 // incrementally grown kernel matrix over accepted
	var detector *svm.OneClassGram
	modelN := 0 // accepted-prefix length the detector was fit on
	var sel isa.Coverage
	refit := func() error {
		tsRefits.Inc()
		var err error
		detector, err = svm.FitOneClassGram(gram, svm.OneClassConfig{Nu: cfg.Nu, MaxIters: 500})
		if err == nil {
			modelN = len(accepted)
		}
		return err
	}

	// Idiom vocabulary of the simulated set: a test is trivially novel when
	// it contains a token never simulated before, or a same-base
	// memory-op idiom class never simulated before. Both vocabularies are
	// bounded, so this component accepts a bounded number of tests; the
	// one-class SVM handles distributional novelty beyond them.
	seenTok := map[string]bool{}
	seenIdiom := map[string]bool{}

	// Examining a randomizer test is ~1000x cheaper than simulating it, so
	// the filter may consume well past the baseline stream.
	streamBudget := 8 * len(stream)
	sinceRefit := 0
	filterTimer := tsFilterTime.Start()
	for i := 0; i < streamBudget; i++ {
		tsExamined.Inc()
		var prog isa.Program
		var cov *isa.Coverage
		var cyc int64
		if i < len(stream) {
			prog, cov, cyc = stream[i], covs[i], cycles[i]
		} else {
			prog = gen.Next()
		}
		res.StreamConsumed = i + 1
		var toks []string
		if cfg.PlainTokens {
			toks = prog.TokensPlain()
		} else {
			toks = prog.Tokens()
		}
		counts := spec.CountsMulti(toks)
		simulate := false
		if len(accepted) < cfg.WarmUp || detector == nil {
			simulate = true
		} else if hasUnseen(toks, seenTok, seenIdiom) {
			simulate = true
		} else {
			// One kernel row against every accepted test — the O(n) inner
			// loop of the filter, striped across the worker pool (each slot
			// written by exactly one worker, so the row is deterministic).
			kx := make([]float64, modelN)
			parallel.ForN(modelN, kernelRowCutover, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					kx[j] = spec.EvalMulti(counts, accepted[j])
				}
			})
			tsKernelRows.Add(int64(modelN))
			simulate = detector.Novel(kx)
		}
		if !simulate {
			continue
		}
		tsSimulated.Inc()
		recordVocab(toks, seenTok, seenIdiom)
		if cov == nil {
			cov = m.Run(prog)
			cyc = m.Cycles
		}
		// Grow the kernel matrix by one row/column. Entries and the
		// per-row appends touch disjoint slices, so the growth loop stripes
		// race-free across the pool.
		n := len(accepted)
		row := make([]float64, n+1)
		parallel.ForN(n, kernelRowCutover, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				row[j] = spec.EvalMulti(counts, accepted[j])
				gram[j] = append(gram[j], row[j])
			}
		})
		row[n] = spec.EvalMulti(counts, counts)
		tsKernelRows.Add(int64(n + 1))
		gram = append(gram, row)
		accepted = append(accepted, counts)

		sel.Merge(cov)
		res.SelectedCycles += cyc
		res.SelectedCurve = append(res.SelectedCurve, CurvePoint{len(accepted), sel.Count()})
		sinceRefit++
		if len(accepted) >= cfg.WarmUp && (detector == nil || sinceRefit >= cfg.RefitEvery) {
			if err := refit(); err != nil {
				return nil, err
			}
			sinceRefit = 0
		}
		if sel.Count() == target {
			break
		}
	}
	filterTimer.Stop()
	res.SelectedSimulated = len(accepted)
	res.SelectedBins = sel.Count()
	if res.BaselineTests > 0 {
		res.SavingFrac = 1 - float64(res.SelectedSimulated)/float64(res.BaselineTests)
	}
	tsCycles.Add(res.BaselineCycles - res.SelectedCycles)
	return res, nil
}

// idioms extracts the same-base adjacent memory-op idiom classes of a
// token stream: (op1, op2, base) for consecutive memory accesses through
// the same base register. These are the forwarding/locality behaviours the
// load-store unit reacts to.
func idioms(toks []string) []string {
	var out []string
	for j := 0; j+1 < len(toks); j++ {
		a, b := toks[j], toks[j+1]
		ba, bb := tokenBase(a), tokenBase(b)
		if ba == "" || ba != bb {
			continue
		}
		out = append(out, tokenOp(a)+">"+tokenOp(b)+"@"+ba)
	}
	return out
}

func tokenOp(t string) string {
	if i := strings.IndexByte(t, '.'); i > 0 {
		return t[:i]
	}
	return t
}

func tokenBase(t string) string {
	for _, f := range strings.Split(t, ".") {
		if len(f) >= 2 && f[0] == 'r' && f[1] >= '0' && f[1] <= '9' {
			return f
		}
	}
	return ""
}

func hasUnseen(toks []string, seenTok, seenIdiom map[string]bool) bool {
	for _, t := range toks {
		if !seenTok[t] {
			return true
		}
	}
	for _, id := range idioms(toks) {
		if !seenIdiom[id] {
			return true
		}
	}
	return false
}

func recordVocab(toks []string, seenTok, seenIdiom map[string]bool) {
	for _, t := range toks {
		seenTok[t] = true
	}
	for _, id := range idioms(toks) {
		seenIdiom[id] = true
	}
}

// sampled thins the baseline curve to keep reports small.
func sampled(i int) bool {
	switch {
	case i <= 100:
		return i%10 == 0
	case i <= 1000:
		return i%100 == 0
	default:
		return i%500 == 0
	}
}
