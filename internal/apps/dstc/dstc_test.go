package dstc

import (
	"strings"
	"testing"
)

func TestRunFig10Shape(t *testing.T) {
	res, err := Run(Config{Seed: 1, Paths: 1500})
	if err != nil {
		t.Fatal(err)
	}
	// Two real clusters, neither degenerate.
	if res.FastCluster < 100 || res.SlowCluster < 100 {
		t.Fatalf("degenerate clusters: %d/%d", res.FastCluster, res.SlowCluster)
	}
	// The fast cluster's mean mismatch is negative (silicon faster than
	// timer), the slow cluster's is higher.
	if res.MeanMismatch[0] >= res.MeanMismatch[1] {
		t.Fatalf("cluster means not ordered: %v", res.MeanMismatch)
	}
	if res.MeanMismatch[0] >= 0 {
		t.Fatalf("fast cluster should beat the timer: %g", res.MeanMismatch[0])
	}
	// The learned rule rediscovers the injected via mechanism.
	if !res.MechanismFound {
		t.Fatalf("mechanism not rediscovered:\n%s", res)
	}
	if res.RulePrecision < 0.8 {
		t.Fatalf("top rule precision %.2f", res.RulePrecision)
	}
	if !strings.Contains(res.String(), "rule:") {
		t.Fatal("render")
	}
	// Ref-[30] quantification: the regression recovers the injected
	// per-via delays (2.5ps and 2.0ps by default) within tolerance.
	if res.EstVia45Extra < 1.8 || res.EstVia45Extra > 3.2 {
		t.Fatalf("via45 delay estimate %.2f off injected 2.5", res.EstVia45Extra)
	}
	if res.EstVia56Extra < 1.3 || res.EstVia56Extra > 2.7 {
		t.Fatalf("via56 delay estimate %.2f off injected 2.0", res.EstVia56Extra)
	}
}

func TestNoInjectionMeansNoMechanism(t *testing.T) {
	// Negative control: with the systematic effect disabled, the mismatch
	// is unimodal noise; any rule learned from an arbitrary 2-way split of
	// noise should not single out the via features with high precision.
	res, err := Run(Config{Seed: 2, Paths: 1500, Via45Extra: -1e-9, Via56Extra: -1e-9})
	if err != nil {
		t.Fatal(err)
	}
	// The two "clusters" now split noise; their separation is tiny
	// compared with the injected case.
	sep := res.MeanMismatch[1] - res.MeanMismatch[0]
	inj, err := Run(Config{Seed: 2, Paths: 1500})
	if err != nil {
		t.Fatal(err)
	}
	injSep := inj.MeanMismatch[1] - inj.MeanMismatch[0]
	if sep >= injSep {
		t.Fatalf("control separation %.1f should be below injected %.1f", sep, injSep)
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Seed: int64(i), Paths: 800}); err != nil {
			b.Fatal(err)
		}
	}
}
