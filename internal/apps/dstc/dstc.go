// Package dstc implements the paper's design-silicon timing correlation
// diagnosis (Figure 10, refs [29]-[31]): paths from one design block show
// an unexpected bimodal silicon-vs-timer mismatch; clustering separates
// the fast and slow populations, and rule learning on structural path
// features uncovers that paths with many layer-4-5 and layer-5-6 vias are
// the slow ones — pointing the engineer at the metal-5 process issue.
package dstc

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/linear"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/timing"
)

// Figure 10 metrics: silicon paths pushed through the clustering +
// rule-learning diagnosis.
var (
	dstcPaths   = obs.GetCounter("dstc.paths_analyzed")
	dstcRunTime = obs.GetHistogram("dstc.run_ns")
)

// Config controls the experiment.
type Config struct {
	Seed       int64
	Paths      int     // default 2000
	Via45Extra float64 // injected per-via systematic delay, default 2.5ps
	Via56Extra float64 // default 2.0ps
	Noise      float64 // silicon noise sigma, default 4ps
	Speedup    float64 // global silicon speedup, default 25ps
}

func (c *Config) defaults() {
	if c.Paths <= 0 {
		c.Paths = 2000
	}
	if c.Via45Extra == 0 {
		c.Via45Extra = 2.5
	}
	if c.Via56Extra == 0 {
		c.Via56Extra = 2.0
	}
	if c.Noise <= 0 {
		c.Noise = 4
	}
	if c.Speedup == 0 {
		c.Speedup = 25
	}
}

// Result is the Figure 10 outcome.
type Result struct {
	Paths         int
	FastCluster   int // paths whose silicon is faster than predicted
	SlowCluster   int
	MeanMismatch  [2]float64 // per-cluster mean silicon-minus-timer (ps)
	Rules         []string   // learned explanation of the slow cluster
	RulePrecision float64    // precision of the top rule on the slow cluster
	// MechanismFound reports whether the top rule mentions the injected
	// via features (via45/via56).
	MechanismFound bool

	// The ref-[31] statistic: of the silicon-slowest quartile of paths,
	// how many were NOT in the timer's predicted-critical quartile — the
	// "speed-limiting paths that were not predicted by the timer" whose
	// analysis motivated the feature-based rule framework.
	SiliconSlowest  int
	UnpredictedSlow int

	// The ref-[30] statistic: regressing the mismatch onto the structural
	// features quantifies the unmodeled effect — the fitted per-via extra
	// delays should recover the injected Via45Extra/Via56Extra values.
	EstVia45Extra float64
	EstVia56Extra float64
}

// String renders the diagnosis.
func (r *Result) String() string {
	s := fmt.Sprintf("clusters: fast=%d paths (mean mismatch %.1fps), slow=%d paths (mean mismatch %.1fps)\n",
		r.FastCluster, r.MeanMismatch[0], r.SlowCluster, r.MeanMismatch[1])
	for _, ru := range r.Rules {
		s += "  rule: " + ru + "\n"
	}
	s += fmt.Sprintf("injected mechanism rediscovered: %v (top-rule precision %.2f)\n",
		r.MechanismFound, r.RulePrecision)
	s += fmt.Sprintf("silicon-slowest paths not in the timer's critical set: %d of %d\n",
		r.UnpredictedSlow, r.SiliconSlowest)
	s += fmt.Sprintf("estimated unmodeled delay: %.2f ps per layer-4-5 via, %.2f ps per layer-5-6 via",
		r.EstVia45Extra, r.EstVia56Extra)
	return s
}

// Run executes the experiment.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	defer dstcRunTime.Start().Stop()
	dstcPaths.Add(int64(cfg.Paths))
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	scfg := timing.SiliconConfig{
		Via45Extra:    cfg.Via45Extra,
		Via56Extra:    cfg.Via56Extra,
		AffectedBlock: "blk_core",
		GlobalSpeedup: cfg.Speedup,
		Noise:         cfg.Noise,
	}

	// Generate the block's paths; half routed mostly low, half climbing to
	// the upper layers (where the via effect bites), as a placed block
	// would have.
	n := cfg.Paths
	feats := make([][]float64, n)
	mismatch := make([]float64, n)
	timerDelay := make([]float64, n)
	siliconDelay := make([]float64, n)
	for i := 0; i < n; i++ {
		gcfg := timing.GenConfig{Block: "blk_core", HighLayerProb: 0.1}
		if i%2 == 1 {
			gcfg.HighLayerProb = 0.7
		}
		p := timing.GeneratePath(rng, i, gcfg)
		feats[i] = timing.Features(p)
		timerDelay[i] = timing.TimerDelay(p)
		siliconDelay[i] = timing.SiliconDelay(rng, p, scfg)
		mismatch[i] = siliconDelay[i] - timerDelay[i]
	}

	// Left plot of Figure 10: cluster the mismatch into two populations.
	mm := linalg.NewMatrix(n, 1)
	for i, v := range mismatch {
		mm.Set(i, 0, v)
	}
	km, err := cluster.KMeans(rng, mm, 2, 100)
	if err != nil {
		return nil, err
	}
	// Identify which cluster is "slow" (higher mean mismatch).
	var sum [2]float64
	var cnt [2]int
	for i, l := range km.Labels {
		sum[l] += mismatch[i]
		cnt[l]++
	}
	slow := 0
	if sum[1]/float64(cnt[1]) > sum[0]/float64(cnt[0]) {
		slow = 1
	}
	fast := 1 - slow

	res := &Result{Paths: n}
	res.FastCluster = cnt[fast]
	res.SlowCluster = cnt[slow]
	res.MeanMismatch[0] = sum[fast] / float64(cnt[fast])
	res.MeanMismatch[1] = sum[slow] / float64(cnt[slow])

	// Right plot of Figure 10: learn rules explaining the slow cluster
	// from structural path features.
	y := make([]float64, n)
	for i, l := range km.Labels {
		if l == slow {
			y[i] = 1
		}
	}
	d := dataset.MustNew(linalg.FromRows(feats), y, timing.FeatureNames)
	rs, err := rules.CN2SD(d, 1, rules.CN2SDConfig{
		MaxRules: 2, MaxConditions: 2, Thresholds: 8, MinCoverage: 10,
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rs {
		res.Rules = append(res.Rules, r.String())
	}
	res.RulePrecision = rs[0].Precision()
	for _, c := range rs[0].Conditions {
		if c.Op == rules.GT && (c.Name == "via45" || c.Name == "via56") {
			res.MechanismFound = true
		}
	}

	// Ref-[30] quantification: least squares of the mismatch on the path
	// features; the via coefficients estimate the unmodeled per-via delay.
	mmData := dataset.MustNew(linalg.FromRows(feats), mismatch, timing.FeatureNames)
	lsf, err := linear.FitOLS(mmData)
	if err != nil {
		return nil, err
	}
	for j, name := range timing.FeatureNames {
		switch name {
		case "via45":
			res.EstVia45Extra = lsf.W[j]
		case "via56":
			res.EstVia56Extra = lsf.W[j]
		}
	}

	// Ref-[31] statistic: silicon-slowest quartile vs timer-critical
	// quartile.
	timerCut := quantile(timerDelay, 0.75)
	siliconCut := quantile(siliconDelay, 0.75)
	for i := 0; i < n; i++ {
		if siliconDelay[i] < siliconCut {
			continue
		}
		res.SiliconSlowest++
		if timerDelay[i] < timerCut {
			res.UnpredictedSlow++
		}
	}
	return res, nil
}

// quantile returns the q-quantile of xs without mutating it.
func quantile(xs []float64, q float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	idx := int(q * float64(len(cp)-1))
	return cp[idx]
}
