package survey

import (
	"strings"
	"testing"
)

func TestFig3KernelTrick(t *testing.T) {
	res, err := Fig3(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinearAccuracy > 0.8 {
		t.Fatalf("linear SVC should fail in input space: %.3f", res.LinearAccuracy)
	}
	if res.PerceptronMistakes == 0 {
		t.Fatal("perceptron should not converge on the ring")
	}
	if res.QuadAccuracy < 0.98 {
		t.Fatalf("quadratic kernel should separate: %.3f", res.QuadAccuracy)
	}
	if res.ExplicitAccuracy < 0.98 {
		t.Fatalf("explicit feature map should separate: %.3f", res.ExplicitAccuracy)
	}
	if res.KernelIdentityErr > 1e-8 {
		t.Fatalf("kernel identity violated: %g", res.KernelIdentityErr)
	}
	if !strings.Contains(res.String(), "kernel trick") {
		t.Fatal("render")
	}
}

func TestFig5OverfittingCurve(t *testing.T) {
	res, err := Fig5(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != 10 {
		t.Fatalf("curve length %d", len(res.Curve))
	}
	// Training error decreases overall.
	first, last := res.Curve[0], res.Curve[len(res.Curve)-1]
	if last.TrainErr >= first.TrainErr {
		t.Fatal("training error did not decrease")
	}
	if res.BestDegree <= 1 || res.BestDegree >= 18 {
		t.Fatalf("validation optimum %d should be interior", res.BestDegree)
	}
	if !res.Overfitting {
		t.Fatal("overfitting signature not detected")
	}
	if !strings.Contains(res.String(), "degree") {
		t.Fatal("render")
	}
}

func TestSec2RegressorsOrdering(t *testing.T) {
	res, err := Sec2Regressors(1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 5 {
		t.Fatalf("family count %d", len(res.Scores))
	}
	scores := map[string]RegressorScore{}
	for _, s := range res.Scores {
		scores[s.Name] = s
		if s.R2 < 0.2 {
			t.Fatalf("%s R2 %.3f too low", s.Name, s.R2)
		}
	}
	// Friedman1 is nonlinear: the nonlinear families (GP, SVR) should beat
	// plain least squares, as the study in [20] found for Fmax.
	if scores["GP"].R2 <= scores["LSF"].R2 {
		t.Fatalf("GP (%.3f) should beat LSF (%.3f) on a nonlinear task",
			scores["GP"].R2, scores["LSF"].R2)
	}
	if !strings.Contains(res.String(), "RMSE") {
		t.Fatal("render")
	}
}
