package survey

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/featsel"
	"repro/internal/imbalance"
	"repro/internal/kernel"
	"repro/internal/mfgtest"
	"repro/internal/svm"
	"repro/internal/tree"
)

// ImbalanceResult compares the two framings of the extreme-imbalance
// problem from paper Section 2.4: rebalancing + classification (SMOTE +
// random forest) vs the feature-selection framing (pick the separating
// tests, model the population, flag outliers). The paper's claim: "if the
// imbalance is quite extreme, rebalancing will not solve the problem ...
// the problem becomes more like a feature selection problem".
type ImbalanceResult struct {
	TrainReturns int // known returns available for training
	TestReturns  int

	// Rebalancing framing.
	RebalanceDetected   int
	RebalanceFalseAlarm float64

	// Feature-selection framing.
	FeatselDetected   int
	FeatselFalseAlarm float64
}

// String renders the comparison.
func (r *ImbalanceResult) String() string {
	return fmt.Sprintf(
		"training returns: %d; evaluation returns: %d\nrebalance+classify:   detected %d/%d, false alarms %.3f\nfeatsel+outlier:      detected %d/%d, false alarms %.3f",
		r.TrainReturns, r.TestReturns,
		r.RebalanceDetected, r.TestReturns, r.RebalanceFalseAlarm,
		r.FeatselDetected, r.TestReturns, r.FeatselFalseAlarm)
}

// ImbalanceStudy runs the comparison on the customer-return substrate.
func ImbalanceStudy(seed int64, lot int) (*ImbalanceResult, error) {
	if lot <= 0 {
		lot = 12000
	}
	defer surveyRunTime.Start().Stop()
	surveySamples.Add(2 * int64(lot))
	rng := rand.New(rand.NewSource(seed + 1))
	scen := mfgtest.NewReturnsScenario(12)

	train, trainRets := scen.SampleLot(rng, lot, 0)
	test, testRets := scen.SampleLot(rng, lot, lot)
	if len(trainRets) < 2 || len(testRets) == 0 {
		return nil, errors.New("survey: lots produced too few returns")
	}

	// Only the first few returns have actually come back from the field
	// and been analyzed; the remaining latent-defect parts sit in the
	// training lot labelled good — the situation the paper describes
	// (a few returns against millions of passing parts).
	known := trainRets
	if len(known) > 3 {
		known = known[:3]
	}
	y := make([]float64, len(train))
	for _, i := range known {
		y[i] = 1
	}
	d := dataset.MustNew(mfgtest.Matrix(train), y, scen.Model.Names)

	res := &ImbalanceResult{TrainReturns: len(known), TestReturns: len(testRets)}
	isTestReturn := map[int]bool{}
	for _, i := range testRets {
		isTestReturn[i] = true
	}

	// --- Framing 1: rebalance with SMOTE, then classify. ---------------
	bal, err := imbalance.SMOTE(rng, d, 3)
	if err != nil {
		return nil, err
	}
	forest, err := tree.FitForest(rng, bal, tree.ForestConfig{NTrees: 30, MaxDepth: 10})
	if err != nil {
		return nil, err
	}
	fa, clean := 0, 0
	for i := range test {
		pred := forest.Predict(test[i].Meas)
		if isTestReturn[i] {
			if pred == 1 {
				res.RebalanceDetected++
			}
		} else {
			clean++
			if pred == 1 {
				fa++
			}
		}
	}
	if clean > 0 {
		res.RebalanceFalseAlarm = float64(fa) / float64(clean)
	}

	// --- Framing 2: feature selection + population outlier model. ------
	scores, err := featsel.OutlierSeparation(d, 1)
	if err != nil {
		return nil, err
	}
	top := featsel.TopK(scores, 3)
	sub := d.SelectFeatures(top)
	// Fit the one-class model on a population subsample (drop known
	// returns).
	var idx []int
	for i := 0; i < sub.Len() && len(idx) < 500; i++ {
		if y[i] == 0 {
			idx = append(idx, i)
		}
	}
	pop := sub.Subset(idx)
	scaler := dataset.FitScaler(pop.X)
	oc, err := svm.FitOneClass(scaler.Transform(pop.X), kernel.RBF{Gamma: 0.05},
		svm.OneClassConfig{Nu: 0.02, MaxIters: 3000})
	if err != nil {
		return nil, err
	}
	fa, clean = 0, 0
	for i := range test {
		v := make([]float64, len(top))
		for j, t := range top {
			v[j] = test[i].Meas[t]
		}
		flagged := oc.Novel(scaler.TransformVec(v))
		if isTestReturn[i] {
			if flagged {
				res.FeatselDetected++
			}
		} else {
			clean++
			if flagged {
				fa++
			}
		}
	}
	if clean > 0 {
		res.FeatselFalseAlarm = float64(fa) / float64(clean)
	}
	return res, nil
}
