package survey

import (
	"strings"
	"testing"
)

func TestImbalanceStudyFeatselFramingWins(t *testing.T) {
	res, err := ImbalanceStudy(1, 12000)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestReturns == 0 {
		t.Fatal("no evaluation returns")
	}
	// Paper §2.4 claim: under extreme imbalance, the feature-selection
	// framing detects more of the future returns than rebalancing +
	// classification.
	if res.FeatselDetected <= res.RebalanceDetected {
		t.Fatalf("featsel framing (%d) should beat rebalancing (%d) of %d returns",
			res.FeatselDetected, res.RebalanceDetected, res.TestReturns)
	}
	fRecall := float64(res.FeatselDetected) / float64(res.TestReturns)
	if fRecall < 0.5 {
		t.Fatalf("featsel recall %.2f too low", fRecall)
	}
	// Neither framing may flood the fab with false alarms.
	if res.FeatselFalseAlarm > 0.08 || res.RebalanceFalseAlarm > 0.2 {
		t.Fatalf("false alarms out of band: featsel=%.3f rebalance=%.3f",
			res.FeatselFalseAlarm, res.RebalanceFalseAlarm)
	}
	if !strings.Contains(res.String(), "featsel") {
		t.Fatal("render")
	}
}
