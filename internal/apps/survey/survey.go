// Package survey reproduces the paper's Section 2 didactic artifacts as
// runnable experiments: the kernel-trick demonstration of Figure 3, the
// overfitting complexity curve of Figure 5, and the five-regressor
// comparison of the Fmax-prediction study cited in Section 2.4 ([20]).
package survey

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/linear"
	"repro/internal/mfgtest"
	"repro/internal/obs"
	"repro/internal/svm"
	"repro/internal/validate"
)

// Section 2 didactic-experiment metrics, shared by survey.go and
// imbalance.go: samples drawn per run and per-run wall time.
var (
	surveySamples = obs.GetCounter("survey.samples_generated")
	surveyRunTime = obs.GetHistogram("survey.run_ns")
)

// Fig3Result is the Figure 3 outcome: the same linear learner fails in the
// input space and succeeds through the quadratic kernel's feature space.
type Fig3Result struct {
	LinearAccuracy     float64 // linear SVC in the input space
	PerceptronMistakes int     // perceptron mistakes in its final pass
	QuadAccuracy       float64 // SVC with the quadratic kernel
	ExplicitAccuracy   float64 // linear SVC in the explicit Φ space
	KernelIdentityErr  float64 // max |k(x,x') − <Φ(x),Φ(x')>| observed
}

// String renders the summary.
func (r *Fig3Result) String() string {
	return fmt.Sprintf(
		"input space:    linear SVC accuracy %.3f, perceptron still makes %d mistakes\nfeature space:  quadratic-kernel SVC accuracy %.3f, explicit Φ linear SVC %.3f\nkernel trick:   max |k(x,x') - <Φ(x),Φ(x')>| = %.2e",
		r.LinearAccuracy, r.PerceptronMistakes, r.QuadAccuracy, r.ExplicitAccuracy,
		r.KernelIdentityErr)
}

// Fig3 runs the kernel-trick demonstration on the ring-and-core dataset.
func Fig3(seed int64, n int) (*Fig3Result, error) {
	if n <= 0 {
		n = 100
	}
	defer surveyRunTime.Start().Stop()
	surveySamples.Add(2 * int64(n)) // n per class
	rng := rand.New(rand.NewSource(seed + 1))
	d := dataset.RingAndCore(rng, n, 1, 3, 0.05)

	res := &Fig3Result{}
	lin, err := svm.FitSVC(d, kernel.Linear{}, svm.SVCConfig{C: 1, Seed: seed})
	if err != nil {
		return nil, err
	}
	res.LinearAccuracy = validate.Accuracy(lin.PredictAll(d), d.Y)
	_, res.PerceptronMistakes = linear.FitPerceptron(d, 50)

	quad, err := svm.FitSVC(d, kernel.Poly{Degree: 2, Gamma: 1}, svm.SVCConfig{C: 10, Seed: seed})
	if err != nil {
		return nil, err
	}
	res.QuadAccuracy = validate.Accuracy(quad.PredictAll(d), d.Y)

	// Explicit feature space Φ(x) = (x1², x2², √2·x1x2).
	phiRows := make([][]float64, d.Len())
	for i := range phiRows {
		phiRows[i] = kernel.QuadFeatureMap(d.Row(i))
	}
	phi := dataset.FromRows(phiRows, d.Y)
	expl, err := svm.FitSVC(phi, kernel.Linear{}, svm.SVCConfig{C: 10, Seed: seed})
	if err != nil {
		return nil, err
	}
	res.ExplicitAccuracy = validate.Accuracy(expl.PredictAll(phi), phi.Y)

	// Verify the kernel identity numerically on the data.
	k := kernel.Poly{Degree: 2, Gamma: 1}
	for i := 0; i < 50; i++ {
		a, b := d.Row(rng.Intn(d.Len())), d.Row(rng.Intn(d.Len()))
		diff := k.Eval(a, b) - dot(kernel.QuadFeatureMap(a), kernel.QuadFeatureMap(b))
		if diff < 0 {
			diff = -diff
		}
		if diff > res.KernelIdentityErr {
			res.KernelIdentityErr = diff
		}
	}
	return res, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Fig5Result is the Figure 5 outcome: the train/validation error curve of
// a polynomial-regression family of rising degree.
type Fig5Result struct {
	Curve       []validate.CurvePoint
	BestDegree  int
	Overfitting bool
}

// String renders the curve as a table.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "degree", "train MSE", "valid MSE")
	for _, p := range r.Curve {
		fmt.Fprintf(&b, "%-10d %12.5f %12.5f\n", p.Complexity, p.TrainErr, p.ValidErr)
	}
	fmt.Fprintf(&b, "validation optimum at degree %d; overfitting beyond: %v",
		r.BestDegree, r.Overfitting)
	return b.String()
}

// Fig5 sweeps polynomial degree on the noisy-sine task.
func Fig5(seed int64, nTrain int) (*Fig5Result, error) {
	if nTrain <= 0 {
		nTrain = 30
	}
	defer surveyRunTime.Start().Stop()
	surveySamples.Add(int64(nTrain) + 300)
	rng := rand.New(rand.NewSource(seed + 1))
	train := dataset.NoisySine(rng, nTrain, 0.35)
	valid := dataset.NoisySine(rng, 300, 0.35)
	trainer := func(c int, tr, ev *dataset.Dataset) ([]float64, []float64, error) {
		ptr := linear.PolynomialFeatures(tr, c)
		pev := linear.PolynomialFeatures(ev, c)
		m, err := linear.FitRidge(ptr, 1e-9)
		if err != nil {
			return nil, nil, err
		}
		return m.PredictAll(ptr), m.PredictAll(pev), nil
	}
	curve, err := validate.ComplexityCurve(train, valid,
		[]int{1, 2, 3, 4, 5, 7, 9, 12, 15, 18}, trainer, validate.MSE)
	if err != nil {
		return nil, err
	}
	return &Fig5Result{
		Curve:       curve,
		BestDegree:  validate.BestComplexity(curve),
		Overfitting: validate.IsOverfitting(curve, 0.05),
	}, nil
}

// RegressorScore is one row of the five-family comparison.
type RegressorScore struct {
	Name string
	RMSE float64
	R2   float64
}

// Sec2Result compares the five regressor families of [20] on the mfgtest
// Fmax task: predict maximum operating frequency from correlated
// parametric test measurements with a nonlinear ground truth.
type Sec2Result struct {
	Scores []RegressorScore
}

// String renders the comparison.
func (r *Sec2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %8s\n", "family", "RMSE", "R2")
	for _, s := range r.Scores {
		fmt.Fprintf(&b, "%-8s %10.4f %8.4f\n", s.Name, s.RMSE, s.R2)
	}
	return b.String()
}

// Sec2Regressors runs the study on the mfgtest Fmax task ([20]): predict
// maximum operating frequency from parametric test measurements.
func Sec2Regressors(seed int64, n int) (*Sec2Result, error) {
	rng := rand.New(rand.NewSource(seed + 1))
	if n <= 0 {
		n = 300
	}
	defer surveyRunTime.Start().Stop()
	surveySamples.Add(2 * int64(n))
	full := mfgtest.FmaxDataset(rng, 2*n)
	train, test := full.Split(rng, 0.5)
	// Standardize the response scale so every family's default
	// hyperparameters are reasonable.
	sc := dataset.FitScaler(train.X)
	train = dataset.MustNew(sc.Transform(train.X), normalizeY(train.Y), train.Names)
	test = dataset.MustNew(sc.Transform(test.X), normalizeY(test.Y), test.Names)

	res := &Sec2Result{}
	for _, nr := range core.FiveRegressors() {
		m, err := nr.Fit(train)
		if err != nil {
			return nil, fmt.Errorf("survey: %s: %w", nr.Name, err)
		}
		pred := m.PredictAll(test)
		res.Scores = append(res.Scores, RegressorScore{
			Name: nr.Name,
			RMSE: validate.RMSE(pred, test.Y),
			R2:   validate.R2(pred, test.Y),
		})
	}
	return res, nil
}

// normalizeY rescales the Fmax response to roughly unit scale (GHz-ish
// units) so that SVR's epsilon tube and GP noise defaults are sensible.
func normalizeY(y []float64) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = v / 100
	}
	return out
}
