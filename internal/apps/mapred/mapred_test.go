package mapred

import (
	"reflect"
	"strings"
	"testing"
)

func TestRunEndToEnd(t *testing.T) {
	r, err := Run(Config{Seed: 5, Windows: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Learners) != 3 {
		t.Fatalf("got %d learners, want 3", len(r.Learners))
	}
	if r.TrainWins+r.TestWins != r.Windows || r.TestWins == 0 {
		t.Fatalf("split %d+%d does not cover %d windows", r.TrainWins, r.TestWins, r.Windows)
	}
	for _, l := range r.Learners {
		if l.Precision < 0 || l.Precision > 1 || l.Recall < 0 || l.Recall > 1 {
			t.Fatalf("%s: P/R %v/%v outside [0,1]", l.Kind, l.Precision, l.Recall)
		}
		if l.Kind != "svc" && l.RMSE >= r.BaseRMSE {
			t.Fatalf("%s: RMSE %.4f does not beat the zero baseline %.4f", l.Kind, l.RMSE, r.BaseRMSE)
		}
	}
	out := r.String()
	for _, want := range []string{"map regression", "ridge", "gp", "svc", "baseline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("result string missing %q:\n%s", want, out)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(Config{Seed: 8, Windows: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 8, Windows: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Wall-time fields differ between runs; compare the metric fields.
	for i := range a.Learners {
		a.Learners[i].TrainMS, b.Learners[i].TrainMS = 0, 0
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}
