// Package mapred implements the spatial map-regression benchmark task:
// predict per-tile variability/hotspot maps of layout windows from
// mask-only tile features, replacing the golden lithography simulation
// tile by tile. It is the CircuitNet-style 2D-map counterpart of the
// varpred window classifier — same substrate, finer-grained target —
// and exercises the internal/maps workload end to end through two
// regressors (ridge, GP) and the SVC hotspot classifier, reporting
// map-level metrics for each.
package mapred

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/maps"
	"repro/internal/obs"
)

var (
	mrWindows   = obs.GetCounter("mapred.windows_labeled")
	mrTrainTime = obs.GetHistogram("mapred.train_ns")
)

// Config controls the experiment.
type Config struct {
	Seed    int64
	Windows int     // labeled windows, default 60
	Frac    float64 // train fraction of the window-level split, default 0.7
	Label   maps.LabelConfig
}

func (c *Config) defaults() {
	if c.Windows <= 0 {
		c.Windows = 60
	}
	if c.Frac <= 0 || c.Frac >= 1 {
		c.Frac = 0.7
	}
	c.Label.Defaults()
}

// LearnerResult holds the map-level metrics of one learner.
type LearnerResult struct {
	Kind      maps.ModelKind
	RMSE      float64 // per-tile RMSE vs the golden weak-fraction map (NaN-free; 0 means skipped)
	Precision float64 // hotspot precision at the model's natural threshold
	Recall    float64 // hotspot recall at the model's natural threshold
	TrainMS   float64
}

// Result is the experiment output.
type Result struct {
	Windows    int
	TrainWins  int
	TestWins   int
	TilesTrain int
	Grid       int
	BaseRMSE   float64 // predict-zero baseline on the test maps
	HotFrac    float64 // fraction of test tiles that are true hotspots
	Learners   []LearnerResult
}

// String renders the result for the edamine console.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "map regression: %d windows (%d train / %d test), %dx%d tile grid, %d training tiles\n",
		r.Windows, r.TrainWins, r.TestWins, r.Grid, r.Grid, r.TilesTrain)
	fmt.Fprintf(&b, "  test hotspot fraction %.3f, predict-zero baseline RMSE %.4f\n", r.HotFrac, r.BaseRMSE)
	for _, l := range r.Learners {
		fmt.Fprintf(&b, "  %-5s  RMSE %.4f  hotspot P %.3f R %.3f  (train %.1f ms)\n",
			l.Kind, l.RMSE, l.Precision, l.Recall, l.TrainMS)
	}
	return b.String()
}

// Run labels windows with the golden model, splits at window level,
// trains ridge + GP regressors and the SVC hotspot classifier on tile
// features, and scores the predicted maps against the golden maps.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	samples, err := maps.BuildSamples(cfg.Seed, cfg.Windows, cfg.Label)
	if err != nil {
		return nil, err
	}
	mrWindows.Add(int64(len(samples)))
	train, test := maps.SplitSamples(cfg.Seed+1, samples, cfg.Frac)
	td, err := maps.TileDataset(train, cfg.Label)
	if err != nil {
		return nil, err
	}

	truth := make([]*maps.TileMap, len(test))
	hot, tiles := 0, 0
	for i, s := range test {
		truth[i] = s.Weak
		for _, v := range s.Weak.Vals {
			if v >= cfg.Label.HotWeak {
				hot++
			}
			tiles++
		}
	}
	zero := make([]*maps.TileMap, len(test))
	for i := range zero {
		zero[i] = maps.NewTileMap(cfg.Label.Grid())
	}

	res := &Result{
		Windows: len(samples), TrainWins: len(train), TestWins: len(test),
		TilesTrain: td.Len(), Grid: cfg.Label.Grid(),
		BaseRMSE: maps.MapRMSE(zero, truth),
		HotFrac:  float64(hot) / float64(tiles),
	}

	for _, kind := range []maps.ModelKind{maps.KindRidge, maps.KindGP, maps.KindSVC} {
		t0 := time.Now()
		m, err := maps.FitMapModel(td, maps.FitConfig{Kind: kind, Label: cfg.Label, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("mapred: fit %s: %w", kind, err)
		}
		dt := time.Since(t0)
		mrTrainTime.Observe(dt.Nanoseconds())

		pred := make([]*maps.TileMap, len(test))
		for i, s := range test {
			pm, err := m.PredictMap(s.Window)
			if err != nil {
				return nil, fmt.Errorf("mapred: predict %s: %w", kind, err)
			}
			pred[i] = pm
		}
		lr := LearnerResult{Kind: kind, TrainMS: float64(dt.Microseconds()) / 1e3}
		lr.Precision, lr.Recall = maps.HotspotPR(pred, truth, m.HotThreshold(), cfg.Label.HotWeak)
		if kind != maps.KindSVC {
			lr.RMSE = maps.MapRMSE(pred, truth)
		}
		res.Learners = append(res.Learners, lr)
	}
	return res, nil
}
