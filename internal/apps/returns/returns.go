// Package returns implements the paper's customer-return screening
// application (Figure 11, refs [16],[32]): a known return is analyzed,
// feature selection finds the three tests in which it stands apart from
// the passing population (the paper's 3-D test space), and a one-class
// outlier model over that space is deployed. The model then catches a
// return manufactured months later (plot 2) and returns from a sister
// product line a year later (plot 3).
package returns

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/featsel"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/mfgtest"
	"repro/internal/obs"
	"repro/internal/svm"
)

// Figure 11 metrics: chips screened across the three lots.
var (
	retParts   = obs.GetCounter("returns.parts_screened")
	retRunTime = obs.GetHistogram("returns.run_ns")
)

// Config controls the experiment.
type Config struct {
	Seed     int64
	Tests    int     // parametric tests in the product, default 12
	LotSize  int     // chips per phase, default 15000
	TrainSub int     // population subsample for the one-class fit, default 500
	Nu       float64 // outlier model nu, default 0.02
	Gamma    float64 // RBF gamma of the outlier model, default 0.05
	TopTests int     // dimensionality of the screening space, default 3
}

func (c *Config) defaults() {
	if c.Tests <= 0 {
		c.Tests = 12
	}
	if c.LotSize <= 0 {
		c.LotSize = 15000
	}
	if c.TrainSub <= 0 {
		c.TrainSub = 500
	}
	if c.Nu <= 0 || c.Nu > 1 {
		c.Nu = 0.02
	}
	if c.TopTests <= 0 {
		c.TopTests = 3
	}
	if c.Gamma <= 0 {
		c.Gamma = 0.05
	}
}

// PhaseOutcome reports the screen's behaviour on one deployment phase.
type PhaseOutcome struct {
	Name       string
	Chips      int
	Returns    int     // latent-defect parts that shipped
	Detected   int     // returns the screen flags as outliers
	FalseAlarm float64 // flagged fraction of the clean population
}

// Result is the Figure 11 outcome.
type Result struct {
	SelectedTests []string // the learned 3-D test space
	Phase1        PhaseOutcome
	Phase2        PhaseOutcome
	Sister        PhaseOutcome
}

// String renders the summary.
func (r *Result) String() string {
	s := fmt.Sprintf("screening space: %v\n", r.SelectedTests)
	for _, p := range []PhaseOutcome{r.Phase1, r.Phase2, r.Sister} {
		s += fmt.Sprintf("  %-22s chips=%6d returns=%3d detected=%3d false-alarm=%.3f\n",
			p.Name, p.Chips, p.Returns, p.Detected, p.FalseAlarm)
	}
	return s
}

// screen is the deployed model: a test subset, a scaler fit on the phase-1
// population, and a one-class SVM in the scaled space.
type screen struct {
	tests  []int
	scaler *dataset.Scaler
	model  *svm.OneClass
}

func (s *screen) flag(meas []float64) bool {
	sub := make([]float64, len(s.tests))
	for i, t := range s.tests {
		sub[i] = meas[t]
	}
	return s.model.Novel(s.scaler.TransformVec(sub))
}

func (s *screen) evaluate(name string, shipped []mfgtest.Chip, retIdx []int) PhaseOutcome {
	out := PhaseOutcome{Name: name, Chips: len(shipped), Returns: len(retIdx)}
	isReturn := map[int]bool{}
	for _, i := range retIdx {
		isReturn[i] = true
	}
	falseAlarms, clean := 0, 0
	for i := range shipped {
		flagged := s.flag(shipped[i].Meas)
		if isReturn[i] {
			if flagged {
				out.Detected++
			}
		} else {
			clean++
			if flagged {
				falseAlarms++
			}
		}
	}
	if clean > 0 {
		out.FalseAlarm = float64(falseAlarms) / float64(clean)
	}
	return out
}

// Run executes the three-phase experiment.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	defer retRunTime.Start().Stop()
	retParts.Add(3 * int64(cfg.LotSize)) // three lots sampled below
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	scen := mfgtest.NewReturnsScenario(cfg.Tests)

	// Phase 1: production lot; the first return comes back and is
	// analyzed (paper plot 1).
	shipped1, rets1 := scen.SampleLot(rng, cfg.LotSize, 0)
	if len(rets1) == 0 {
		return nil, errors.New("returns: phase 1 produced no customer return")
	}
	analyzed := rets1[0]

	// Feature selection under extreme imbalance: one return vs the
	// passing population (paper: this is a feature-selection problem, not
	// a classification problem).
	x := mfgtest.Matrix(shipped1)
	y := make([]float64, len(shipped1))
	y[analyzed] = 1
	names := make([]string, cfg.Tests)
	copy(names, scen.Model.Names)
	d := dataset.MustNew(x, y, names)
	scores, err := featsel.OutlierSeparation(d, 1)
	if err != nil {
		return nil, err
	}
	top := featsel.TopK(scores, cfg.TopTests)

	// Fit the outlier model on a population subsample in the selected
	// space (excluding the analyzed return itself).
	sub := linalg.NewMatrix(cfg.TrainSub, len(top))
	seen := 0
	for seen < cfg.TrainSub {
		i := rng.Intn(len(shipped1))
		if i == analyzed {
			continue
		}
		for j, t := range top {
			sub.Set(seen, j, shipped1[i].Meas[t])
		}
		seen++
	}
	scaler := dataset.FitScaler(sub)
	scaled := scaler.Transform(sub)
	oc, err := svm.FitOneClass(scaled, kernel.RBF{Gamma: cfg.Gamma},
		svm.OneClassConfig{Nu: cfg.Nu, MaxIters: 3000})
	if err != nil {
		return nil, err
	}
	scr := &screen{tests: top, scaler: scaler, model: oc}

	res := &Result{}
	for _, t := range top {
		res.SelectedTests = append(res.SelectedTests, d.FeatureName(t))
	}
	res.Phase1 = scr.evaluate("phase1 (training lot)", shipped1, rets1)

	// Phase 2: a lot manufactured months later (paper plot 2).
	shipped2, rets2 := scen.SampleLot(rng, cfg.LotSize, cfg.LotSize)
	res.Phase2 = scr.evaluate("phase2 (months later)", shipped2, rets2)

	// Phase 3: sister product line a year later (paper plot 3).
	sister := scen.SisterScenario()
	shipped3, rets3 := sister.SampleLot(rng, cfg.LotSize, 2*cfg.LotSize)
	res.Sister = scr.evaluate("sister product line", shipped3, rets3)
	return res, nil
}
