package returns

import (
	"strings"
	"testing"
)

func TestRunFig11Shape(t *testing.T) {
	res, err := Run(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The screening space has 3 tests and includes the defect-disturbed
	// tests t02/t05/t07 (the generator's mechanism).
	if len(res.SelectedTests) != 3 {
		t.Fatalf("selected %v", res.SelectedTests)
	}
	joined := strings.Join(res.SelectedTests, ",")
	hits := 0
	for _, want := range []string{"t02", "t05", "t07"} {
		if strings.Contains(joined, want) {
			hits++
		}
	}
	if hits < 2 {
		t.Fatalf("screening space %v misses the defect tests", res.SelectedTests)
	}

	// Plot 1: the analyzed return is an outlier under its own model.
	if res.Phase1.Detected == 0 {
		t.Fatal("phase-1 return not flagged")
	}
	// Plot 2: the model catches most later returns.
	if res.Phase2.Returns == 0 {
		t.Fatal("phase 2 generated no returns (generator issue)")
	}
	if float64(res.Phase2.Detected) < 0.6*float64(res.Phase2.Returns) {
		t.Fatalf("phase-2 detection %d/%d too low", res.Phase2.Detected, res.Phase2.Returns)
	}
	// Plot 3: the same model transfers to the sister product.
	if res.Sister.Returns < 3 {
		t.Fatalf("sister lot should contain at least 3 returns, got %d", res.Sister.Returns)
	}
	if float64(res.Sister.Detected) < 0.5*float64(res.Sister.Returns) {
		t.Fatalf("sister detection %d/%d too low", res.Sister.Detected, res.Sister.Returns)
	}
	// The screen must not flag everything: false alarms stay low, or the
	// flow would cost more than it saves (paper Section 1 criterion 4).
	for _, p := range []PhaseOutcome{res.Phase1, res.Phase2, res.Sister} {
		if p.FalseAlarm > 0.08 {
			t.Fatalf("%s false alarm %.3f too high", p.Name, p.FalseAlarm)
		}
	}
	if !strings.Contains(res.String(), "screening space") {
		t.Fatal("render")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := Run(Config{Seed: 7, LotSize: 6000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 7, LotSize: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed must reproduce identical results")
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Seed: int64(i), LotSize: 5000}); err != nil {
			b.Fatal(err)
		}
	}
}
