// Package costred implements the paper's difficult case for data mining
// (Figure 12, Section 4, ref [33]): test-set minimization for cost
// reduction. On the first million parts, tests A and B look perfectly
// redundant — 0.97/0.96 correlated with kept tests 1 and 2, and every A/B
// failure also trips test 1 or 2 — so any mining method recommends
// dropping them. The next half-million parts contain a new failure mode
// that fails A (or B) alone: the escapes that no amount of phase-1 data
// could rule out. The experiment demonstrates the paper's formulation
// lesson: a problem demanding a guaranteed escape bound is not a data
// mining problem.
package costred

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/mfgtest"
	"repro/internal/obs"
)

// Figure 12 metrics: parts mined before the drop decision and parts
// manufactured after it — the scale at which the escapes appear.
var (
	crPhase1Parts = obs.GetCounter("costred.parts_phase1")
	crPhase2Parts = obs.GetCounter("costred.parts_phase2")
	crRunTime     = obs.GetHistogram("costred.run_ns")
)

// Config controls the experiment.
type Config struct {
	Seed       int64
	Phase1Size int // parts mined before the drop decision, default 1_000_000
	Phase2Size int // parts manufactured after, default 500_000
}

func (c *Config) defaults() {
	if c.Phase1Size <= 0 {
		c.Phase1Size = 1000000
	}
	if c.Phase2Size <= 0 {
		c.Phase2Size = 500000
	}
}

// Result is the Figure 12 outcome.
type Result struct {
	Phase1Size, Phase2Size int

	// Phase-1 mining evidence.
	CorrA1, CorrA2 float64 // measured correlations of A with tests 1, 2
	CorrB1, CorrB2 float64
	Phase1FailsA   int // parts failing test A in phase 1
	Phase1EscapesA int // of those, missed by tests 1 and 2 (0 expected)
	Phase1FailsB   int
	Phase1EscapesB int
	DropDecision   bool // what mining recommends

	// Phase-2 outcome.
	Phase2EscapesA int
	Phase2EscapesB int

	// The formulation check of paper Section 1/5.
	Check core.UsageCheck
}

// String renders the paper-style narrative.
func (r *Result) String() string {
	s := fmt.Sprintf("phase 1 (%d parts): corr(A,1)=%.3f corr(A,2)=%.3f corr(B,1)=%.3f corr(B,2)=%.3f\n",
		r.Phase1Size, r.CorrA1, r.CorrA2, r.CorrB1, r.CorrB2)
	s += fmt.Sprintf("  test A fails=%d, escapes if dropped=%d; test B fails=%d, escapes if dropped=%d\n",
		r.Phase1FailsA, r.Phase1EscapesA, r.Phase1FailsB, r.Phase1EscapesB)
	s += fmt.Sprintf("  mining recommendation: drop A and B = %v\n", r.DropDecision)
	s += fmt.Sprintf("phase 2 (%d parts): escapes on A=%d, escapes on B=%d\n",
		r.Phase2Size, r.Phase2EscapesA, r.Phase2EscapesB)
	s += "formulation check: " + r.Check.String()
	return s
}

// Run executes the experiment.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	defer crRunTime.Start().Stop()
	crPhase1Parts.Add(int64(cfg.Phase1Size))
	crPhase2Parts.Add(int64(cfg.Phase2Size))
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	scen := mfgtest.NewCostRedScenario()
	kept := []int{scen.Test1, scen.Test2}

	res := &Result{Phase1Size: cfg.Phase1Size, Phase2Size: cfg.Phase2Size}

	// Phase 1: mine the production history.
	phase1 := scen.Model.Sample(rng, cfg.Phase1Size, 0, scen.DefectPhase1)
	res.CorrA1 = mfgtest.Correlation(phase1, scen.TestA, scen.Test1)
	res.CorrA2 = mfgtest.Correlation(phase1, scen.TestA, scen.Test2)
	res.CorrB1 = mfgtest.Correlation(phase1, scen.TestB, scen.Test1)
	res.CorrB2 = mfgtest.Correlation(phase1, scen.TestB, scen.Test2)
	for i := range phase1 {
		if scen.Limits.FailsTest(&phase1[i], scen.TestA) {
			res.Phase1FailsA++
		}
		if scen.Limits.FailsTest(&phase1[i], scen.TestB) {
			res.Phase1FailsB++
		}
	}
	res.Phase1EscapesA = scen.Escapes(phase1, scen.TestA, kept)
	res.Phase1EscapesB = scen.Escapes(phase1, scen.TestB, kept)

	// The mining recommendation: both candidate tests are strongly
	// correlated with kept tests and fully covered in a million parts.
	res.DropDecision = res.Phase1EscapesA == 0 && res.Phase1EscapesB == 0 &&
		res.CorrA1 > 0.9 && res.CorrB2 > 0.9

	// Phase 2: the process moves on; a new failure mode appears.
	phase2 := scen.Model.Sample(rng, cfg.Phase2Size, cfg.Phase1Size, scen.DefectPhase2)
	res.Phase2EscapesA = scen.Escapes(phase2, scen.TestA, kept)
	res.Phase2EscapesB = scen.Escapes(phase2, scen.TestB, kept)

	// Paper Section 4/5: the formulation "guarantee at most one escape in
	// the next 0.5M parts" violates criterion 1 — the mining result would
	// need a guarantee no finite sample can give.
	res.Check = core.UsageCheck{
		NoGuaranteeNeeded: false, // the task demands a guaranteed bound
		DataAvailable:     true,
		AddsValue:         true,
		NoExtraBurden:     true,
	}
	return res, nil
}
