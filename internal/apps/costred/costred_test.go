package costred

import (
	"strings"
	"testing"
)

func TestRunFig12Shape(t *testing.T) {
	// Reduced scale for test speed; the cmd harness runs 1M/0.5M.
	res, err := Run(Config{Seed: 1, Phase1Size: 300000, Phase2Size: 200000})
	if err != nil {
		t.Fatal(err)
	}
	// Paper's phase-1 evidence: near-0.97/0.96 correlations.
	if res.CorrA1 < 0.94 || res.CorrA2 < 0.93 {
		t.Fatalf("phase-1 correlations too low: %.3f %.3f", res.CorrA1, res.CorrA2)
	}
	// Test A does fail in phase 1 (gross defects) but never escapes.
	if res.Phase1FailsA == 0 {
		t.Fatal("test A never failed in phase 1")
	}
	if res.Phase1EscapesA != 0 || res.Phase1EscapesB != 0 {
		t.Fatalf("phase 1 should show zero escapes: %d %d",
			res.Phase1EscapesA, res.Phase1EscapesB)
	}
	// Mining, looking at that data, recommends dropping the tests.
	if !res.DropDecision {
		t.Fatal("mining should recommend dropping A and B on phase-1 data")
	}
	// Phase 2 punishes the decision: escapes appear.
	if res.Phase2EscapesA+res.Phase2EscapesB == 0 {
		t.Fatal("phase 2 should contain escapes")
	}
	// The formulation check flags the guarantee demand.
	if res.Check.Suitable() {
		t.Fatal("guarantee-demanding formulation must be flagged unsuitable")
	}
	if !strings.Contains(res.String(), "escapes") {
		t.Fatal("render")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Run(Config{Seed: 3, Phase1Size: 50000, Phase2Size: 50000})
	b, _ := Run(Config{Seed: 3, Phase1Size: 50000, Phase2Size: 50000})
	if a.String() != b.String() {
		t.Fatal("same seed must reproduce identical results")
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Seed: int64(i), Phase1Size: 100000, Phase2Size: 50000}); err != nil {
			b.Fatal(err)
		}
	}
}
