// Package litho implements the lithography substrate of the paper's
// layout-variability case study ([13], Figures 8-9). It provides a layout
// window generator (Manhattan line/space patterns), a first-principles
// aerial-image model (Gaussian optical kernel convolution — the standard
// low-order approximation of a partially coherent imaging system), and an
// edge-slope variability metric used as the golden reference that the
// learned model must approximate at a fraction of the cost.
//
// The physics that matters for the learning problem survives the
// simplification: printability degrades where the local pattern density
// and pitch approach the optical resolution, so a classifier over density
// histograms with a Histogram Intersection kernel faces the same task as
// in the paper.
package litho

import (
	"errors"
	"math"
	"math/rand"
)

// Window is an N×N layout clip; Mask[y*N+x] is 1 where metal is drawn.
type Window struct {
	N    int
	Mask []float64
}

// NewWindow allocates an empty window.
func NewWindow(n int) *Window {
	return &Window{N: n, Mask: make([]float64, n*n)}
}

// At returns the mask value at (x, y).
func (w *Window) At(x, y int) float64 { return w.Mask[y*w.N+x] }

// Set writes the mask value at (x, y).
func (w *Window) Set(x, y int, v float64) { w.Mask[y*w.N+x] = v }

// FillRect draws a rectangle [x0,x1)×[y0,y1), clipped to the window.
func (w *Window) FillRect(x0, y0, x1, y1 int) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > w.N {
		x1 = w.N
	}
	if y1 > w.N {
		y1 = w.N
	}
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			w.Set(x, y, 1)
		}
	}
}

// Density returns the drawn-area fraction.
func (w *Window) Density() float64 {
	s := 0.0
	for _, v := range w.Mask {
		s += v
	}
	return s / float64(len(w.Mask))
}

// GenConfig shapes random layout windows.
type GenConfig struct {
	N        int     // window size, default 64
	MinWidth int     // minimum line width, default 2
	MaxWidth int     // maximum line width, default 8
	MinSpace int     // minimum spacing, default 2
	MaxSpace int     // maximum spacing, default 10
	Jog      float64 // probability a line carries a jog/cut feature
}

func (c *GenConfig) defaults() {
	if c.N <= 0 {
		c.N = 64
	}
	if c.MinWidth <= 0 {
		c.MinWidth = 2
	}
	if c.MaxWidth < c.MinWidth {
		c.MaxWidth = c.MinWidth + 6
	}
	if c.MinSpace <= 0 {
		c.MinSpace = 2
	}
	if c.MaxSpace < c.MinSpace {
		c.MaxSpace = c.MinSpace + 8
	}
}

// Generate creates a random line/space window: parallel lines of random
// width and pitch, randomly oriented, with optional jogs. Tight
// width/space combinations are what the optical model will flag as
// high-variability.
func Generate(rng *rand.Rand, cfg GenConfig) *Window {
	cfg.defaults()
	w := NewWindow(cfg.N)
	width := cfg.MinWidth + rng.Intn(cfg.MaxWidth-cfg.MinWidth+1)
	space := cfg.MinSpace + rng.Intn(cfg.MaxSpace-cfg.MinSpace+1)
	vertical := rng.Intn(2) == 0
	phase := rng.Intn(width + space)
	for start := -phase; start < cfg.N; start += width + space {
		if vertical {
			w.FillRect(start, 0, start+width, cfg.N)
		} else {
			w.FillRect(0, start, cfg.N, start+width)
		}
		// Jogs: cut a notch out of the line to create 2-D corners.
		if rng.Float64() < cfg.Jog {
			cut := rng.Intn(cfg.N - 4)
			if vertical {
				for y := cut; y < cut+3 && y < cfg.N; y++ {
					for x := start; x < start+width && x < cfg.N; x++ {
						if x >= 0 {
							w.Set(x, y, 0)
						}
					}
				}
			} else {
				for x := cut; x < cut+3 && x < cfg.N; x++ {
					for y := start; y < start+width && y < cfg.N; y++ {
						if y >= 0 {
							w.Set(x, y, 0)
						}
					}
				}
			}
		}
	}
	return w
}

// AerialImage convolves the mask with a Gaussian optical kernel of the
// given sigma (in grid units) and returns the normalized intensity in
// [0, 1]. Convolution is separable for speed.
func AerialImage(w *Window, sigma float64) []float64 {
	if sigma <= 0 {
		sigma = 2
	}
	n := w.N
	radius := int(3*sigma + 1)
	k := make([]float64, 2*radius+1)
	sum := 0.0
	for i := range k {
		d := float64(i - radius)
		k[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	// Horizontal pass.
	tmp := make([]float64, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			s := 0.0
			for i, kv := range k {
				xx := x + i - radius
				if xx < 0 {
					xx = 0
				}
				if xx >= n {
					xx = n - 1
				}
				s += kv * w.Mask[y*n+xx]
			}
			tmp[y*n+x] = s
		}
	}
	// Vertical pass.
	out := make([]float64, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			s := 0.0
			for i, kv := range k {
				yy := y + i - radius
				if yy < 0 {
					yy = 0
				}
				if yy >= n {
					yy = n - 1
				}
				s += kv * tmp[yy*n+x]
			}
			out[y*n+x] = s
		}
	}
	return out
}

// PrintThreshold is the dose-to-clear intensity at which resist prints.
const PrintThreshold = 0.5

// VariabilityResult is the golden-reference assessment of one window.
type VariabilityResult struct {
	Score        float64 // mean edge-placement sensitivity (higher = worse)
	WeakEdgeFrac float64 // fraction of contour pixels with low image slope
	Contour      int     // number of contour pixels examined
}

// Variability runs the "lithography simulation": compute the aerial image
// and measure the image slope along the print contour. Edge placement
// error under dose variation scales with 1/slope, so the score is the mean
// inverse slope over contour pixels; WeakEdgeFrac counts contour pixels
// whose slope falls below minSlope.
func Variability(w *Window, sigma, minSlope float64) (VariabilityResult, error) {
	if w.N < 4 {
		return VariabilityResult{}, errors.New("litho: window too small")
	}
	img := AerialImage(w, sigma)
	n := w.N
	var sumInv float64
	weak, contour := 0, 0
	for y := 1; y < n-1; y++ {
		for x := 1; x < n-1; x++ {
			c := img[y*n+x]
			// Contour pixel: intensity brackets the print threshold among
			// the 4-neighbourhood.
			lo, hi := c, c
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				v := img[(y+d[1])*n+x+d[0]]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if lo > PrintThreshold || hi < PrintThreshold {
				continue
			}
			gx := (img[y*n+x+1] - img[y*n+x-1]) / 2
			gy := (img[(y+1)*n+x] - img[(y-1)*n+x]) / 2
			slope := math.Hypot(gx, gy)
			contour++
			sumInv += 1 / (slope + 1e-6)
			if slope < minSlope {
				weak++
			}
		}
	}
	if contour == 0 {
		// Nothing prints: the pattern is entirely sub-resolution, the
		// worst possible variability.
		return VariabilityResult{Score: math.Inf(1), WeakEdgeFrac: 1, Contour: 0}, nil
	}
	return VariabilityResult{
		Score:        sumInv / float64(contour),
		WeakEdgeFrac: float64(weak) / float64(contour),
		Contour:      contour,
	}, nil
}

// DensityHistogram extracts the HI-kernel feature vector: local pattern
// densities over blocks at two scales, each histogrammed into bins and
// concatenated, then normalized to unit mass. This is the knowledge-in-
// the-kernel representation of [13]: the learner never sees raw pixels.
func DensityHistogram(w *Window, bins int) []float64 {
	if bins <= 0 {
		bins = 8
	}
	feat := make([]float64, 0, 2*bins)
	for _, block := range []int{4, 8} {
		ds := localDensities(w, block)
		h := histogram(ds, bins)
		feat = append(feat, h...)
	}
	// Normalize to unit mass so histogram intersection is a proper
	// similarity in [0, 1].
	total := 0.0
	for _, v := range feat {
		total += v
	}
	if total > 0 {
		for i := range feat {
			feat[i] /= total
		}
	}
	return feat
}

func localDensities(w *Window, block int) []float64 {
	nb := w.N / block
	out := make([]float64, 0, nb*nb)
	for by := 0; by < nb; by++ {
		for bx := 0; bx < nb; bx++ {
			s := 0.0
			for y := by * block; y < (by+1)*block; y++ {
				for x := bx * block; x < (bx+1)*block; x++ {
					s += w.At(x, y)
				}
			}
			out = append(out, s/float64(block*block))
		}
	}
	return out
}

func histogram(xs []float64, bins int) []float64 {
	h := make([]float64, bins)
	for _, v := range xs {
		b := int(v * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		h[b]++
	}
	return h
}
