package litho

import (
	"math"
	"math/rand"
	"testing"
)

func TestWindowPrimitives(t *testing.T) {
	w := NewWindow(8)
	w.FillRect(2, 2, 4, 4)
	if w.At(2, 2) != 1 || w.At(3, 3) != 1 || w.At(4, 4) != 0 {
		t.Fatal("FillRect bounds")
	}
	if got := w.Density(); math.Abs(got-4.0/64.0) > 1e-12 {
		t.Fatalf("density %g", got)
	}
	// Clipping must not panic or wrap.
	w.FillRect(-5, -5, 100, 1)
	if w.At(0, 0) != 1 {
		t.Fatal("clipped fill missing")
	}
}

func TestGenerateProducesLines(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		w := Generate(rng, GenConfig{N: 64, Jog: 0.3})
		d := w.Density()
		if d <= 0.05 || d >= 0.95 {
			t.Fatalf("degenerate density %g", d)
		}
	}
}

func TestAerialImageProperties(t *testing.T) {
	w := NewWindow(32)
	w.FillRect(8, 8, 24, 24) // big fat square
	img := AerialImage(w, 2)
	// Intensity in [0,1]; high inside the shape, low far outside.
	for _, v := range img {
		if v < -1e-9 || v > 1+1e-9 {
			t.Fatalf("intensity out of range: %g", v)
		}
	}
	center := img[16*32+16]
	corner := img[1*32+1]
	if center < 0.9 {
		t.Fatalf("center intensity %g", center)
	}
	if corner > 0.1 {
		t.Fatalf("corner intensity %g", corner)
	}
	// Blur monotonicity: larger sigma lowers the max of a small feature.
	small := NewWindow(32)
	small.FillRect(15, 15, 18, 18)
	i1 := AerialImage(small, 1.5)
	i2 := AerialImage(small, 3.5)
	if maxOf(i2) >= maxOf(i1) {
		t.Fatal("more blur should reduce small-feature contrast")
	}
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

func TestVariabilityTightPitchWorse(t *testing.T) {
	// Golden-model physics: tight width/space prints with lower edge slope
	// than relaxed patterns, hence higher variability score.
	rng := rand.New(rand.NewSource(2))
	tight := Generate(rng, GenConfig{N: 64, MinWidth: 2, MaxWidth: 2, MinSpace: 2, MaxSpace: 2})
	relaxed := Generate(rng, GenConfig{N: 64, MinWidth: 10, MaxWidth: 10, MinSpace: 12, MaxSpace: 12})
	vt, err := Variability(tight, 2.5, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	vr, err := Variability(relaxed, 2.5, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if vt.Score <= vr.Score {
		t.Fatalf("tight pitch should be worse: tight=%g relaxed=%g", vt.Score, vr.Score)
	}
	if vr.Contour == 0 {
		t.Fatal("relaxed pattern should print a contour")
	}
}

func TestVariabilitySubResolutionIsWorst(t *testing.T) {
	// A pattern below the resolution limit never reaches the print
	// threshold: infinite score.
	w := NewWindow(32)
	for x := 2; x < 30; x += 4 {
		w.FillRect(x, 2, x+1, 30) // 1-wide lines away from the border, heavy blur
	}
	v, err := Variability(w, 6, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(v.Score, 1) || v.WeakEdgeFrac != 1 {
		t.Fatalf("sub-resolution should be worst case: %+v", v)
	}
}

func TestVariabilityValidation(t *testing.T) {
	if _, err := Variability(NewWindow(2), 2, 0.05); err == nil {
		t.Fatal("tiny window accepted")
	}
}

func TestDensityHistogramIsNormalizedAndDiscriminative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dense := Generate(rng, GenConfig{N: 64, MinWidth: 2, MaxWidth: 3, MinSpace: 2, MaxSpace: 3})
	sparse := Generate(rng, GenConfig{N: 64, MinWidth: 3, MaxWidth: 4, MinSpace: 14, MaxSpace: 16})
	hd := DensityHistogram(dense, 8)
	hs := DensityHistogram(sparse, 8)
	sum := 0.0
	for _, v := range hd {
		if v < 0 {
			t.Fatal("negative histogram mass")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("histogram mass %g", sum)
	}
	if len(hd) != 16 {
		t.Fatalf("feature length %d", len(hd))
	}
	// Histogram intersection of dissimilar patterns should be clearly
	// below self-similarity (1.0).
	hi := 0.0
	for i := range hd {
		hi += math.Min(hd[i], hs[i])
	}
	if hi > 0.9 {
		t.Fatalf("dense/sparse windows too similar: %g", hi)
	}
}

func BenchmarkAerialImage64(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	w := Generate(rng, GenConfig{N: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AerialImage(w, 2.5)
	}
}

func BenchmarkVariability64(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	w := Generate(rng, GenConfig{N: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Variability(w, 2.5, 0.08); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDensityHistogram(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	w := Generate(rng, GenConfig{N: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DensityHistogram(w, 8)
	}
}
