package kernel

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/parallel"
)

// randRows returns n random d-dim rows.
func randRows(r *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		out[i] = row
	}
	return out
}

// TestSlidingGramMatchesFullRebuild is the incremental path's core
// contract: after any sequence of appends (with and without eviction),
// the window's Gram matrix is bit-identical to rebuilding it from
// scratch with Gram over the materialized window.
func TestSlidingGramMatchesFullRebuild(t *testing.T) {
	kernels := []Kernel{
		RBF{Gamma: 0.3},
		Linear{},
		Poly{Degree: 2, Gamma: 1},
		HistogramIntersection{},
	}
	r := rand.New(rand.NewSource(42))
	for _, k := range kernels {
		const capacity, dim = 16, 5
		sg := NewSlidingGram(k, capacity, dim)
		rows := randRows(r, 3*capacity, dim)
		for step, row := range rows {
			evicted := sg.Append(row)
			if wantEvict := step >= capacity; evicted != wantEvict {
				t.Fatalf("%s step %d: evicted=%v, want %v", k.Name(), step, evicted, wantEvict)
			}
			wantLen := step + 1
			if wantLen > capacity {
				wantLen = capacity
			}
			if sg.Len() != wantLen {
				t.Fatalf("%s step %d: Len=%d, want %d", k.Name(), step, sg.Len(), wantLen)
			}
			// Check the full window only at a few steps (each check is a
			// full O(n²) rebuild), always including both fill and wrap.
			if step != capacity-1 && step != capacity && step%7 != 0 && step != len(rows)-1 {
				continue
			}
			win := sg.Window()
			full := Gram(k, win)
			for i := 0; i < sg.Len(); i++ {
				for j := 0; j < sg.Len(); j++ {
					if got, want := sg.At(i, j), full.At(i, j); got != want {
						t.Fatalf("%s step %d: At(%d,%d)=%v, want %v (full rebuild)",
							k.Name(), step, i, j, got, want)
					}
				}
			}
		}
	}
}

// TestSlidingGramWindowOrder checks the logical ordering contract:
// logical index 0 is the oldest retained sample, and eviction drops
// exactly the oldest.
func TestSlidingGramWindowOrder(t *testing.T) {
	const capacity = 4
	sg := NewSlidingGram(Linear{}, capacity, 1)
	for v := 0; v < 7; v++ {
		sg.Append([]float64{float64(v)})
	}
	// Appended 0..6 into capacity 4: the window must hold 3,4,5,6.
	want := []float64{3, 4, 5, 6}
	for i, w := range want {
		if got := sg.Sample(i)[0]; got != w {
			t.Fatalf("Sample(%d)=%v, want %v", i, got, w)
		}
	}
	win := sg.Window()
	for i, w := range want {
		if got := win.At(i, 0); got != w {
			t.Fatalf("Window()[%d]=%v, want %v", i, got, w)
		}
	}
	sg.Reset()
	if sg.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", sg.Len())
	}
	sg.Append([]float64{9})
	if got := sg.At(0, 0); got != 81 {
		t.Fatalf("At(0,0) after Reset+Append = %v, want 81", got)
	}
}

// TestSlidingGramWorkerInvariance proves the append sweep is
// bit-identical at any worker count.
func TestSlidingGramWorkerInvariance(t *testing.T) {
	const capacity, dim = 48, 6 // above gramCutover so the pool engages
	r := rand.New(rand.NewSource(7))
	rows := randRows(r, 2*capacity, dim)
	build := func(workers int) *linalg.Matrix {
		defer parallel.SetWorkers(parallel.SetWorkers(workers))
		sg := NewSlidingGram(RBF{Gamma: 0.5}, capacity, dim)
		for _, row := range rows {
			sg.Append(row)
		}
		out := linalg.NewMatrix(sg.Len(), sg.Len())
		for i := 0; i < sg.Len(); i++ {
			for j := 0; j < sg.Len(); j++ {
				out.Set(i, j, sg.At(i, j))
			}
		}
		return out
	}
	ref := build(1)
	for _, w := range []int{2, 8} {
		got := build(w)
		for i := range ref.Data {
			if ref.Data[i] != got.Data[i] {
				t.Fatalf("workers=%d: Gram cell %d differs: %v vs %v", w, i, got.Data[i], ref.Data[i])
			}
		}
	}
}
