// Package kernel implements the kernel functions and kernel-matrix
// machinery of Section 2.2 of the paper. The kernel is the place where
// domain knowledge enters a kernel-based learning flow (paper Section 5):
// the learning algorithm never touches the sample matrix X directly, only
// pairwise similarities k(x, x').
//
// Besides the standard vector kernels (linear, polynomial, RBF, sigmoid,
// histogram intersection), the package provides kernels over non-vector
// samples — n-gram spectrum kernels over assembly programs (used by the
// novel-test-selection application, paper ref [14]) and histogram kernels
// over layout windows (paper ref [13]) — demonstrating the paper's point
// that with a kernel the samples "can be represented in any form".
package kernel

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Kernel-evaluation metrics. Gram cells are the paper's unit of kernel
// cost (Section 2.2: learning sees only pairwise similarities); the
// normalized-Gram cache-hit counter quantifies the self-similarity reuse
// that NormalizedGram exists for. Hot loops accumulate locally and hit
// the atomic once per worker chunk.
var (
	gramCells         = obs.GetCounter("kernel.gram_cells")
	crossGramCells    = obs.GetCounter("kernel.crossgram_cells")
	normGramCacheHits = obs.GetCounter("kernel.normgram_cache_hits")
)

// gramCutover is the matrix side length below which Gram construction
// stays serial: an n-row sweep costs O(n²) kernel evaluations, so even
// modest n amortizes goroutine startup, but tiny warm-up grams should not
// pay for the pool. Kernel implementations must be safe for concurrent
// Eval calls (all kernels in this package are pure value types).
const gramCutover = 32

// Kernel measures the similarity of two vector samples.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
	// Name identifies the kernel in reports.
	Name() string
}

// Linear is k(a,b) = <a,b>.
type Linear struct{}

// Eval implements Kernel.
func (Linear) Eval(a, b []float64) float64 { return linalg.Dot(a, b) }

// Name implements Kernel.
func (Linear) Name() string { return "linear" }

// Poly is k(a,b) = (gamma*<a,b> + coef0)^degree. With Degree=2, Gamma=1,
// Coef0=0 it is exactly the quadratic kernel of the paper's Figure 3 whose
// feature map is Φ(x) = (x1², x2², √2·x1·x2).
type Poly struct {
	Degree int
	Gamma  float64
	Coef0  float64
}

// Eval implements Kernel.
func (p Poly) Eval(a, b []float64) float64 {
	return math.Pow(p.Gamma*linalg.Dot(a, b)+p.Coef0, float64(p.Degree))
}

// Name implements Kernel.
func (p Poly) Name() string { return fmt.Sprintf("poly%d", p.Degree) }

// RBF is the Gaussian kernel k(a,b) = exp(-gamma*||a-b||²).
type RBF struct{ Gamma float64 }

// Eval implements Kernel.
func (r RBF) Eval(a, b []float64) float64 {
	return math.Exp(-r.Gamma * linalg.Dist2(a, b))
}

// Name implements Kernel.
func (r RBF) Name() string { return fmt.Sprintf("rbf(g=%g)", r.Gamma) }

// Sigmoid is k(a,b) = tanh(gamma*<a,b> + coef0).
type Sigmoid struct {
	Gamma float64
	Coef0 float64
}

// Eval implements Kernel.
func (s Sigmoid) Eval(a, b []float64) float64 {
	return math.Tanh(s.Gamma*linalg.Dot(a, b) + s.Coef0)
}

// Name implements Kernel.
func (Sigmoid) Name() string { return "sigmoid" }

// HistogramIntersection is k(a,b) = Σ min(a_i, b_i), the kernel used by the
// layout-variability work ([13]); inputs are nonnegative histograms.
type HistogramIntersection struct{}

// Eval implements Kernel. The unrolled min-sum keeps the original
// loop's accumulation order and NaN/tie behavior (linalg.MinSum), so
// histogram Grams are bit-identical to the pre-unroll implementation.
func (HistogramIntersection) Eval(a, b []float64) float64 {
	return linalg.MinSum(a, b)
}

// Name implements Kernel.
func (HistogramIntersection) Name() string { return "histogram-intersection" }

// QuadFeatureMap is the explicit feature map Φ of the paper's Figure 3 for
// 2-D inputs: Φ(x1,x2) = (x1², x2², √2·x1·x2). It exists to demonstrate the
// kernel trick: Poly{Degree:2,Gamma:1}.Eval(a,b) == <Φ(a), Φ(b)>.
func QuadFeatureMap(x []float64) []float64 {
	if len(x) != 2 {
		panic("kernel: QuadFeatureMap requires 2-D input")
	}
	return []float64{x[0] * x[0], x[1] * x[1], math.Sqrt2 * x[0] * x[1]}
}

// Gram computes the full kernel matrix K_ij = k(x_i, x_j) for the rows of x.
//
// Rows are striped across the worker pool: each pair {i, j} is evaluated
// exactly once by the worker that owns row min(i, j), which writes both
// symmetric halves. The writes are to disjoint elements, so the sweep is
// race-free, and every element is produced by the same expression as the
// serial loop — the result is bit-identical at any worker count.
func Gram(k Kernel, x *linalg.Matrix) *linalg.Matrix {
	g := linalg.NewMatrix(x.Rows, x.Rows)
	GramInto(k, x, g)
	return g
}

// GramInto computes the Gram matrix of x into g, which must be n×n for
// n = x.Rows. Every cell is written, so a pooled colmat buffer is a
// valid destination; the sweep is the Gram sweep exactly, bit-identical
// at any worker count. The serial path (one worker or a small n) runs
// without a closure so pooled steady-state callers stay allocation-free.
func GramInto(k Kernel, x, g *linalg.Matrix) {
	n := x.Rows
	if g.Rows != n || g.Cols != n {
		panic(fmt.Sprintf("kernel: GramInto destination is %dx%d, want %dx%d", g.Rows, g.Cols, n, n))
	}
	if parallel.Workers() <= 1 || n < gramCutover {
		gramRange(k, x, g, 0, n)
		return
	}
	parallel.ForN(n, gramCutover, func(lo, hi int) {
		gramRange(k, x, g, lo, hi)
	})
}

// gramRange fills rows [lo, hi) of the symmetric sweep: each pair
// {i, j} is evaluated exactly once by the worker owning row min(i, j),
// which writes both halves — the same expression as the serial loop.
func gramRange(k Kernel, x, g *linalg.Matrix, lo, hi int) {
	n := x.Rows
	evals := int64(0)
	for i := lo; i < hi; i++ {
		xi := x.Row(i)
		g.Set(i, i, k.Eval(xi, xi))
		for j := i + 1; j < n; j++ {
			v := k.Eval(xi, x.Row(j))
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
		evals += int64(n - i)
	}
	gramCells.Add(evals)
}

// CrossGram computes K_ij = k(a_i, b_j) between the rows of a and b.
// Rows of a are striped across the worker pool; each output row is written
// by exactly one worker.
func CrossGram(k Kernel, a, b *linalg.Matrix) *linalg.Matrix {
	g := linalg.NewMatrix(a.Rows, b.Rows)
	CrossGramInto(k, a, b, g)
	return g
}

// CrossGramInto computes K_ij = k(a_i, b_j) into g, which must be
// a.Rows × b.Rows. Every cell is written, so a pooled colmat buffer is
// a valid destination. This is the batch-score hot path: the serial
// case (one worker or a small batch) runs without a closure, so a
// steady-state ScoreBatch with pooled buffers performs zero heap
// allocations. Identical arithmetic to CrossGram at any worker count.
func CrossGramInto(k Kernel, a, b, g *linalg.Matrix) {
	if g.Rows != a.Rows || g.Cols != b.Rows {
		panic(fmt.Sprintf("kernel: CrossGramInto destination is %dx%d, want %dx%d",
			g.Rows, g.Cols, a.Rows, b.Rows))
	}
	if parallel.Workers() <= 1 || a.Rows < gramCutover {
		crossGramRange(k, a, b, g, 0, a.Rows)
		return
	}
	parallel.ForN(a.Rows, gramCutover, func(lo, hi int) {
		crossGramRange(k, a, b, g, lo, hi)
	})
}

func crossGramRange(k Kernel, a, b, g *linalg.Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		gi := g.Row(i)
		for j := 0; j < b.Rows; j++ {
			gi[j] = k.Eval(ai, b.Row(j))
		}
	}
	crossGramCells.Add(int64(hi-lo) * int64(b.Rows))
}

// Center double-centers a Gram matrix in feature space:
// K' = K - 1K/n - K1/n + 1K1/n². Kernel PCA and several kernel methods
// require a centered Gram matrix.
func Center(k *linalg.Matrix) *linalg.Matrix {
	n := k.Rows
	rowSum := make([]float64, n)
	rowMean := make([]float64, n)
	parallel.ForN(n, gramCutover, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += k.At(i, j)
			}
			rowSum[i] = s
			rowMean[i] = s / float64(n)
		}
	})
	// The grand mean accumulates row sums in index order, off the worker
	// pool, so the total is identical regardless of worker count.
	total := 0.0
	for i := 0; i < n; i++ {
		total += rowSum[i]
	}
	grand := total / float64(n*n)
	out := linalg.NewMatrix(n, n)
	parallel.ForN(n, gramCutover, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				out.Set(i, j, k.At(i, j)-rowMean[i]-rowMean[j]+grand)
			}
		}
	})
	return out
}

// Normalize returns the cosine-normalized kernel value
// k(a,b)/sqrt(k(a,a)k(b,b)) so that every sample has unit self-similarity.
type Normalize struct{ K Kernel }

// Eval implements Kernel.
func (n Normalize) Eval(a, b []float64) float64 {
	kaa := n.K.Eval(a, a)
	kbb := n.K.Eval(b, b)
	if kaa <= 0 || kbb <= 0 {
		return 0
	}
	return n.K.Eval(a, b) / math.Sqrt(kaa*kbb)
}

// Name implements Kernel.
func (n Normalize) Name() string { return "normalized-" + n.K.Name() }

// NormalizedGram computes Gram(Normalize{K: k}, x) without the redundant
// work of Normalize.Eval, which re-evaluates the self-similarities k(a,a)
// and k(b,b) on every call — 2n² extra kernel evaluations over a full
// Gram sweep. Here the n self-similarities are computed once and reused
// across every entry. Each entry is produced by the same expression as
// Normalize.Eval (including the sqrt(k_ii·k_ii) diagonal), so the result
// is bit-identical to the naive path.
func NormalizedGram(k Kernel, x *linalg.Matrix) *linalg.Matrix {
	n := x.Rows
	self := make([]float64, n)
	parallel.ForN(n, gramCutover, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xi := x.Row(i)
			self[i] = k.Eval(xi, xi)
		}
	})
	g := linalg.NewMatrix(n, n)
	parallel.ForN(n, gramCutover, func(lo, hi int) {
		// Every entry reuses two cached self-similarities that
		// Normalize.Eval would have recomputed from scratch.
		hits := int64(0)
		for i := lo; i < hi; i++ {
			hits += 2 * int64(n-i)
			xi := x.Row(i)
			for j := i; j < n; j++ {
				var v float64
				if self[i] > 0 && self[j] > 0 {
					if i == j {
						v = self[i] / math.Sqrt(self[i]*self[i])
					} else {
						v = k.Eval(xi, x.Row(j)) / math.Sqrt(self[i]*self[j])
					}
				}
				g.Set(i, j, v)
				g.Set(j, i, v)
			}
		}
		normGramCacheHits.Add(hits)
	})
	return g
}

// IsPSD reports whether a symmetric kernel matrix is positive semidefinite
// within tolerance (all eigenvalues >= -tol). Used by property tests to
// certify that our kernels are valid (Mercer) kernels on sampled data.
func IsPSD(k *linalg.Matrix, tol float64) bool {
	vals, _, err := linalg.EigenSym(k)
	if err != nil {
		return false
	}
	for _, v := range vals {
		if v < -tol {
			return false
		}
	}
	return true
}
