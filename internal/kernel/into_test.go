package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/parallel"
)

// nanFill dirties a destination so a cell the Into variant failed to
// overwrite is loud instead of silently stale.
func nanFill(m *linalg.Matrix) *linalg.Matrix {
	for i := range m.Data {
		m.Data[i] = math.NaN()
	}
	return m
}

// TestIntoVariantsMatchAllocating pins GramInto, CrossGramInto, and
// SlidingGram.WindowInto to their allocating twins bit for bit, with
// NaN-dirtied destinations and sizes spanning the serial/parallel
// cutover, at several worker counts.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	k := RBF{Gamma: 0.35}
	old := parallel.SetWorkers(1)
	defer parallel.SetWorkers(old)
	for _, w := range []int{1, 2, 8} {
		parallel.SetWorkers(w)
		for _, n := range []int{1, 7, gramCutover, gramCutover + 9} {
			x := randMatrix(rng, n, 5)
			b := randMatrix(rng, n/2+1, 5)

			want := Gram(k, x)
			got := nanFill(linalg.NewMatrix(n, n))
			GramInto(k, x, got)
			for i, v := range want.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(v) {
					t.Fatalf("GramInto workers=%d n=%d: element %d = %v, want %v", w, n, i, got.Data[i], v)
				}
			}

			wantX := CrossGram(k, x, b)
			gotX := nanFill(linalg.NewMatrix(n, b.Rows))
			CrossGramInto(k, x, b, gotX)
			for i, v := range wantX.Data {
				if math.Float64bits(gotX.Data[i]) != math.Float64bits(v) {
					t.Fatalf("CrossGramInto workers=%d n=%d: element %d = %v, want %v", w, n, i, gotX.Data[i], v)
				}
			}

			sg := NewSlidingGram(k, n, 5)
			for i := 0; i < n; i++ {
				sg.Append(x.Row(i))
			}
			wantW := sg.Window()
			gotW := nanFill(linalg.NewMatrix(sg.Len(), 5))
			sg.WindowInto(gotW)
			for i, v := range wantW.Data {
				if math.Float64bits(gotW.Data[i]) != math.Float64bits(v) {
					t.Fatalf("WindowInto workers=%d n=%d: element %d = %v, want %v", w, n, i, gotW.Data[i], v)
				}
			}
		}
	}
}

// TestIntoVariantsPanicOnShapeMismatch pins the destination-shape
// contract: a wrong-shaped destination must panic, never silently
// truncate.
func TestIntoVariantsPanicOnShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := Linear{}
	x := randMatrix(rng, 4, 3)
	for name, fn := range map[string]func(){
		"GramInto":      func() { GramInto(k, x, linalg.NewMatrix(3, 4)) },
		"CrossGramInto": func() { CrossGramInto(k, x, x, linalg.NewMatrix(4, 5)) },
		"WindowInto": func() {
			sg := NewSlidingGram(k, 4, 3)
			sg.Append(x.Row(0))
			sg.WindowInto(linalg.NewMatrix(2, 3))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted a wrong-shaped destination", name)
				}
			}()
			fn()
		}()
	}
}
