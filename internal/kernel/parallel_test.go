package kernel

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/parallel"
)

func randMatrix(rng *rand.Rand, rows, cols int) *linalg.Matrix {
	m := linalg.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randSeqs(rng *rand.Rand, n, length int) [][]string {
	vocab := []string{"add", "sub", "mul", "lw", "sw", "lb", "sh", "xor"}
	seqs := make([][]string, n)
	for i := range seqs {
		s := make([]string, length)
		for j := range s {
			s[j] = vocab[rng.Intn(len(vocab))]
		}
		seqs[i] = s
	}
	return seqs
}

// atWorkers evaluates fn once per worker count and asserts all results
// are element-wise identical to the workers=1 (serial) result.
func atWorkers(t *testing.T, name string, fn func() *linalg.Matrix) {
	t.Helper()
	old := parallel.SetWorkers(1)
	defer parallel.SetWorkers(old)
	want := fn()
	for _, w := range []int{2, 4, 8} {
		parallel.SetWorkers(w)
		got := fn()
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("%s workers=%d: shape %dx%d != %dx%d", name, w, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i, v := range got.Data {
			if v != want.Data[i] {
				t.Fatalf("%s workers=%d: element %d = %v, serial %v", name, w, i, v, want.Data[i])
			}
		}
	}
}

func TestGramParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randMatrix(rng, 120, 9)
	for _, k := range []Kernel{Linear{}, RBF{Gamma: 0.3}, Poly{Degree: 3, Gamma: 1, Coef0: 1}, HistogramIntersection{}} {
		atWorkers(t, "Gram/"+k.Name(), func() *linalg.Matrix { return Gram(k, x) })
	}
}

func TestCrossGramParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randMatrix(rng, 90, 7)
	b := randMatrix(rng, 61, 7)
	atWorkers(t, "CrossGram", func() *linalg.Matrix { return CrossGram(RBF{Gamma: 0.5}, a, b) })
}

func TestCenterParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randMatrix(rng, 100, 6)
	g := Gram(RBF{Gamma: 0.2}, x)
	atWorkers(t, "Center", func() *linalg.Matrix { return Center(g) })
}

func TestNormalizedGramMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := randMatrix(rng, 80, 5)
	for _, k := range []Kernel{Linear{}, RBF{Gamma: 0.4}, Poly{Degree: 2, Gamma: 1}} {
		naive := Gram(Normalize{K: k}, x)
		fast := NormalizedGram(k, x)
		for i, v := range fast.Data {
			if v != naive.Data[i] {
				t.Fatalf("%s: NormalizedGram element %d = %v, naive %v", k.Name(), i, v, naive.Data[i])
			}
		}
		atWorkers(t, "NormalizedGram/"+k.Name(), func() *linalg.Matrix { return NormalizedGram(k, x) })
	}
}

func TestNormalizedGramZeroSelfSimilarity(t *testing.T) {
	// A zero row has k(x,x) = 0 under the linear kernel; both paths must
	// agree on the guarded zero.
	x := linalg.FromRows([][]float64{{0, 0}, {1, 2}, {3, 4}})
	naive := Gram(Normalize{K: Linear{}}, x)
	fast := NormalizedGram(Linear{}, x)
	for i := range fast.Data {
		if fast.Data[i] != naive.Data[i] {
			t.Fatalf("element %d = %v, naive %v", i, fast.Data[i], naive.Data[i])
		}
	}
}

func TestSeqGramParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	seqs := randSeqs(rng, 70, 30)
	for _, k := range []SequenceKernel{Spectrum{N: 2, Normalize: true}, BlendedSpectrum{MaxN: 2, Lambda: 0.5, Normalize: true}} {
		old := parallel.SetWorkers(1)
		want := SeqGram(k, seqs)
		for _, w := range []int{2, 8} {
			parallel.SetWorkers(w)
			got := SeqGram(k, seqs)
			for i := range want {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("%s workers=%d: [%d][%d] = %v, serial %v", k.Name(), w, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
		parallel.SetWorkers(old)
	}
}

// --- benchmarks ------------------------------------------------------

// benchAtWorkers runs fn as serial-vs-parallel sub-benchmarks.
func benchAtWorkers(b *testing.B, fn func(b *testing.B)) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			old := parallel.SetWorkers(w)
			defer parallel.SetWorkers(old)
			fn(b)
		})
	}
}

func BenchmarkGram(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randMatrix(rng, 500, 16)
	k := RBF{Gamma: 0.25}
	benchAtWorkers(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = Gram(k, x)
		}
	})
}

func BenchmarkCrossGram(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 500, 16)
	c := randMatrix(rng, 300, 16)
	k := RBF{Gamma: 0.25}
	benchAtWorkers(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = CrossGram(k, a, c)
		}
	})
}

func BenchmarkNormalizedGram(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randMatrix(rng, 300, 16)
	k := Poly{Degree: 2, Gamma: 1}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Gram(Normalize{K: k}, x)
		}
	})
	b.Run("precomputed-diag", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = NormalizedGram(k, x)
		}
	})
}

func BenchmarkSeqGram(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	seqs := randSeqs(rng, 200, 24)
	k := Spectrum{N: 2, Normalize: true}
	benchAtWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = SeqGram(k, seqs)
		}
	})
}
