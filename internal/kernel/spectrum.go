package kernel

import (
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// Spectrum-kernel metrics: total n-grams counted while building
// histograms (the unit of tokenization cost) and sequence-Gram cells
// evaluated. One atomic add per histogram build / per worker chunk.
var (
	spectrumNgrams = obs.GetCounter("kernel.spectrum_ngrams")
	seqGramCells   = obs.GetCounter("kernel.seqgram_cells")
)

// SequenceKernel measures the similarity of two token sequences. It is the
// abstraction behind the paper's observation that a functional test (an
// assembly program) need not be converted into a vector: the kernel module
// encodes the domain knowledge of what makes two programs similar ([14]).
type SequenceKernel interface {
	// EvalSeq returns k(a, b) for two token sequences.
	EvalSeq(a, b []string) float64
	// Name identifies the kernel in reports.
	Name() string
}

// Spectrum is the n-gram spectrum kernel: each sequence is implicitly
// mapped to its histogram of contiguous n-grams and the kernel is the dot
// product of the histograms. Normalize makes it a cosine similarity, which
// keeps long programs from dominating short ones.
type Spectrum struct {
	N         int
	Normalize bool
}

// ngramCounts builds the n-gram histogram of a token sequence.
func (s Spectrum) ngramCounts(a []string) map[string]float64 {
	n := s.N
	if n < 1 {
		n = 1
	}
	m := make(map[string]float64)
	if len(a) < n {
		return m
	}
	for i := 0; i+n <= len(a); i++ {
		key := ""
		for j := 0; j < n; j++ {
			key += a[i+j] + "\x00"
		}
		m[key]++
	}
	spectrumNgrams.Add(int64(len(a) - n + 1))
	return m
}

func dotCounts(a, b map[string]float64) float64 {
	if len(b) < len(a) {
		a, b = b, a
	}
	s := 0.0
	for k, va := range a {
		if vb, ok := b[k]; ok {
			s += va * vb
		}
	}
	return s
}

// EvalSeq implements SequenceKernel.
func (s Spectrum) EvalSeq(a, b []string) float64 {
	ca := s.ngramCounts(a)
	cb := s.ngramCounts(b)
	v := dotCounts(ca, cb)
	if !s.Normalize {
		return v
	}
	na := dotCounts(ca, ca)
	nb := dotCounts(cb, cb)
	if na == 0 || nb == 0 {
		return 0
	}
	return v / math.Sqrt(na*nb)
}

// Name implements SequenceKernel.
func (s Spectrum) Name() string {
	if s.Normalize {
		return "spectrum-norm"
	}
	return "spectrum"
}

// BlendedSpectrum sums spectrum kernels for n = 1..MaxN with geometric decay
// lambda^n, capturing both instruction-mix and short-idiom similarity.
type BlendedSpectrum struct {
	MaxN      int
	Lambda    float64
	Normalize bool
}

// EvalSeq implements SequenceKernel.
func (b BlendedSpectrum) EvalSeq(x, y []string) float64 {
	raw := b.raw(x, y)
	if !b.Normalize {
		return raw
	}
	nx := b.raw(x, x)
	ny := b.raw(y, y)
	if nx == 0 || ny == 0 {
		return 0
	}
	return raw / math.Sqrt(nx*ny)
}

func (b BlendedSpectrum) raw(x, y []string) float64 {
	total := 0.0
	w := b.Lambda
	for n := 1; n <= b.MaxN; n++ {
		k := Spectrum{N: n}
		total += w * k.EvalSeq(x, y)
		w *= b.Lambda
	}
	return total
}

// Name implements SequenceKernel.
func (b BlendedSpectrum) Name() string { return "blended-spectrum" }

// MultiCounts caches the n-gram histograms of one sequence for n=1..MaxN.
type MultiCounts []Counts

// CountsMulti precomputes histograms for EvalMulti.
func (b BlendedSpectrum) CountsMulti(seq []string) MultiCounts {
	out := make(MultiCounts, b.MaxN)
	for n := 1; n <= b.MaxN; n++ {
		out[n-1] = Counts(Spectrum{N: n}.ngramCounts(seq))
	}
	return out
}

// EvalMulti evaluates the blended kernel on precomputed histograms,
// honoring the Normalize flag.
func (b BlendedSpectrum) EvalMulti(x, y MultiCounts) float64 {
	raw := b.rawMulti(x, y)
	if !b.Normalize {
		return raw
	}
	nx := b.rawMulti(x, x)
	ny := b.rawMulti(y, y)
	if nx == 0 || ny == 0 {
		return 0
	}
	return raw / math.Sqrt(nx*ny)
}

func (b BlendedSpectrum) rawMulti(x, y MultiCounts) float64 {
	total := 0.0
	w := b.Lambda
	for n := 0; n < b.MaxN && n < len(x) && n < len(y); n++ {
		total += w * dotCounts(map[string]float64(x[n]), map[string]float64(y[n]))
		w *= b.Lambda
	}
	return total
}

// Counts is a precomputed n-gram histogram of one sequence, used to batch
// spectrum-kernel evaluations without re-tokenizing.
type Counts map[string]float64

// Counts precomputes the n-gram histogram of a sequence for EvalCounts.
func (s Spectrum) Counts(a []string) Counts { return Counts(s.ngramCounts(a)) }

// EvalCounts evaluates the kernel on precomputed histograms, honoring the
// Normalize flag.
func (s Spectrum) EvalCounts(a, b Counts) float64 {
	v := dotCounts(a, b)
	if !s.Normalize {
		return v
	}
	na := dotCounts(a, a)
	nb := dotCounts(b, b)
	if na == 0 || nb == 0 {
		return 0
	}
	return v / math.Sqrt(na*nb)
}

// SeqGram computes the kernel matrix of a set of sequences. For Spectrum
// kernels the n-gram histograms are precomputed so each sequence is
// tokenized only once. Histogram construction and the pairwise triangle
// sweep are striped across the worker pool; the pair {i, j} is evaluated
// once by the worker owning row min(i, j), which writes both symmetric
// halves (disjoint elements, race-free), so the matrix is identical to
// the serial sweep at any worker count.
func SeqGram(k SequenceKernel, seqs [][]string) [][]float64 {
	n := len(seqs)
	g := make([][]float64, n)
	for i := range g {
		g[i] = make([]float64, n)
	}
	if sp, ok := k.(Spectrum); ok {
		counts := parallel.MapN(n, gramCutover, func(i int) Counts {
			return sp.Counts(seqs[i])
		})
		parallel.ForN(n, gramCutover, func(lo, hi int) {
			cells := int64(0)
			for i := lo; i < hi; i++ {
				for j := i; j < n; j++ {
					v := sp.EvalCounts(counts[i], counts[j])
					g[i][j] = v
					g[j][i] = v
				}
				cells += int64(n - i)
			}
			seqGramCells.Add(cells)
		})
		return g
	}
	parallel.ForN(n, gramCutover, func(lo, hi int) {
		cells := int64(0)
		for i := lo; i < hi; i++ {
			for j := i; j < n; j++ {
				v := k.EvalSeq(seqs[i], seqs[j])
				g[i][j] = v
				g[j][i] = v
			}
			cells += int64(n - i)
		}
		seqGramCells.Add(cells)
	})
	return g
}

// Vocabulary returns the sorted distinct tokens across sequences; useful for
// building explicit feature views when a rule learner needs named features.
func Vocabulary(seqs [][]string) []string {
	set := map[string]bool{}
	for _, s := range seqs {
		for _, t := range s {
			set[t] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// NGramFeatures maps each sequence to an explicit (dense) n-gram count
// vector over the n-gram vocabulary of the corpus; feature names are the
// n-grams joined by "·". This is the "feature-based" view of the same
// knowledge the spectrum kernel encodes implicitly.
func NGramFeatures(seqs [][]string, n int) (x [][]float64, names []string) {
	sp := Spectrum{N: n}
	counts := make([]map[string]float64, len(seqs))
	vocab := map[string]bool{}
	for i, s := range seqs {
		counts[i] = sp.ngramCounts(s)
		for k := range counts[i] {
			vocab[k] = true
		}
	}
	keys := make([]string, 0, len(vocab))
	for k := range vocab {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	names = make([]string, len(keys))
	for i, k := range keys {
		name := ""
		for j, tok := range splitNulls(k) {
			if j > 0 {
				name += "·"
			}
			name += tok
		}
		names[i] = name
	}
	x = make([][]float64, len(seqs))
	for i := range seqs {
		row := make([]float64, len(keys))
		for j, k := range keys {
			row[j] = counts[i][k]
		}
		x[i] = row
	}
	return x, names
}

func splitNulls(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
