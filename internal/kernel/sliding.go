package kernel

import (
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Sliding-window Gram metrics: appended rows, evicted rows, and the
// kernel evaluations spent keeping the window's Gram matrix current.
// Comparing incgram_cells against gram_cells for the same window sizes
// shows the rebuild work the incremental path avoids.
var (
	incGramAppends   = obs.GetCounter("kernel.incgram_appends")
	incGramEvictions = obs.GetCounter("kernel.incgram_evictions")
	incGramCells     = obs.GetCounter("kernel.incgram_cells")
)

// SlidingGram maintains the Gram matrix of a sliding window of samples
// under appends with oldest-first eviction — the kernel-side half of the
// streaming trainer's incremental refresh (ROADMAP item 2): appending a
// sample costs one kernel row (O(n·d)) instead of the O(n²·d) rebuild
// that Gram would pay on every refresh.
//
// Layout: a fixed capacity×capacity backing matrix addressed through a
// ring of physical slots. Eviction is O(1) — the head advances and the
// freed slot is overwritten by the next append; no rows are copied and
// no memory is allocated after construction. Logical index 0 is always
// the oldest sample in the window.
//
// Determinism: each new cell is produced by exactly one k.Eval call
// written to both symmetric halves, striped over the worker pool, so the
// matrix is bit-identical at any worker count. For the kernels in this
// package Eval is exactly symmetric in IEEE arithmetic (Dot, Dist2, and
// min accumulate in index order of the vectors, not of the arguments),
// so the window's matrix is bit-identical to Gram(k, Window()) — the
// sliding_test contract.
//
// Not safe for concurrent use; the streaming loop appends serially.
type SlidingGram struct {
	k    Kernel
	cap  int
	dim  int
	head int // physical slot of logical index 0
	n    int // live window size

	samples *linalg.Matrix // cap×dim ring of sample rows
	gram    *linalg.Matrix // cap×cap ring-addressed Gram storage
}

// NewSlidingGram returns an empty window with the given capacity over
// dim-dimensional samples. Capacity and dim must be positive.
func NewSlidingGram(k Kernel, capacity, dim int) *SlidingGram {
	if capacity <= 0 {
		panic("kernel: SlidingGram capacity must be positive")
	}
	if dim <= 0 {
		panic("kernel: SlidingGram dim must be positive")
	}
	return &SlidingGram{
		k:       k,
		cap:     capacity,
		dim:     dim,
		samples: linalg.NewMatrix(capacity, dim),
		gram:    linalg.NewMatrix(capacity, capacity),
	}
}

// Len returns the live window size (≤ capacity).
func (s *SlidingGram) Len() int { return s.n }

// Cap returns the window capacity.
func (s *SlidingGram) Cap() int { return s.cap }

// slot maps a logical window index to its physical ring slot.
func (s *SlidingGram) slot(i int) int { return (s.head + i) % s.cap }

// At returns K(i, j) for logical window indices.
func (s *SlidingGram) At(i, j int) float64 {
	return s.gram.At(s.slot(i), s.slot(j))
}

// Sample returns the stored sample at logical index i. The slice aliases
// the ring storage and is invalidated by the append that evicts row i.
func (s *SlidingGram) Sample(i int) []float64 {
	return s.samples.Row(s.slot(i))
}

// Append adds x to the window, evicting the oldest sample when the
// window is full, and computes the new sample's kernel row against every
// retained sample. Reports whether an eviction happened.
func (s *SlidingGram) Append(x []float64) (evicted bool) {
	if len(x) != s.dim {
		panic("kernel: SlidingGram sample dimension mismatch")
	}
	var slot int
	if s.n < s.cap {
		slot = s.slot(s.n)
		s.n++
	} else {
		// O(1) eviction: logical index 0 leaves, its slot hosts the
		// newcomer, and the head advances one position.
		slot = s.head
		s.head = (s.head + 1) % s.cap
		evicted = true
		incGramEvictions.Inc()
	}
	copy(s.samples.Row(slot), x)
	xi := s.samples.Row(slot)
	// The new row: the newcomer is the highest logical index, so every
	// pair is evaluated as k(old, new) — the same orientation Gram uses
	// for i < j — keeping the window bit-identical to a full rebuild.
	prior := s.n - 1
	if evicted {
		prior = s.cap - 1
	}
	// The serial case calls the row sweep directly — no closure, no
	// goroutines — so a steady-state Append is allocation-free (the
	// ring storage never grows after construction; the alloc-regression
	// gate in alloc_test.go pins this at 0 allocs/op). The parallel
	// case stripes the identical sweep, bit-identical by construction.
	if parallel.Workers() <= 1 || prior < gramCutover {
		s.appendRange(slot, xi, 0, prior)
	} else {
		parallel.ForN(prior, gramCutover, func(lo, hi int) {
			s.appendRange(slot, xi, lo, hi)
		})
	}
	s.gram.Set(slot, slot, s.k.Eval(xi, xi))
	incGramCells.Inc()
	incGramAppends.Inc()
	return evicted
}

// appendRange evaluates the new sample's kernel row against retained
// logical indices [lo, hi), writing both symmetric halves.
func (s *SlidingGram) appendRange(slot int, xi []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		pi := s.slot(i)
		v := s.k.Eval(s.samples.Row(pi), xi)
		s.gram.Set(pi, slot, v)
		s.gram.Set(slot, pi, v)
	}
	incGramCells.Add(int64(hi - lo))
}

// Window materializes the live window as a fresh n×dim matrix in logical
// order (oldest first) — the sample matrix a refresh trains on.
func (s *SlidingGram) Window() *linalg.Matrix {
	out := linalg.NewMatrix(s.n, s.dim)
	s.WindowInto(out)
	return out
}

// WindowInto copies the live window into dst (Len()×dim, logical order,
// oldest first), so refresh loops can reuse a pooled buffer instead of
// materializing a fresh matrix every cycle.
func (s *SlidingGram) WindowInto(dst *linalg.Matrix) {
	if dst.Rows != s.n || dst.Cols != s.dim {
		panic("kernel: WindowInto destination shape mismatch")
	}
	for i := 0; i < s.n; i++ {
		copy(dst.Row(i), s.Sample(i))
	}
}

// Reset empties the window without releasing storage.
func (s *SlidingGram) Reset() {
	s.head, s.n = 0, 0
}
