// Package approx compiles kernel expansions into O(d) linear scorers.
//
// The serve-path cost of every kernel model in this repository — SVC,
// one-class SVM, GP regression — is the kernel expansion of paper
// Eq. 2: score(x) = Σ α_i k(x, basis_i) + b, an O(n·d) sweep over all
// support vectors / training rows per prediction. This package provides
// two classic finite-dimensional feature maps z: R^d → R^D with
// z(a)·z(b) ≈ k(a, b):
//
//   - RFF (random Fourier features, Rahimi & Recht 2007) for the
//     shift-invariant RBF kernel: z_j(x) = √(2/D)·cos(ω_j·x + φ_j)
//     with ω_j ~ N(0, 2γI) and φ_j ~ U[0, 2π).
//   - Nyström landmark approximation (Williams & Seeger 2001) for any
//     PSD kernel: z(x) = W^{-1/2}·[k(x, L_1) … k(x, L_m)] over m
//     landmarks L sampled from the basis, W = K(L, L).
//
// Once a feature map exists, the whole expansion collapses: project the
// basis through the map once at save time, fold the dual coefficients
// into a single weight vector w = Σ α_i z(basis_i), and every future
// prediction is w·z(x) + b — O(D·d) with no kernel evaluations and no
// dependence on the training-set size. That is the compiled
// "approx-linear" artifact internal/model persists.
//
// Determinism contract: both maps are pure functions of their int64
// seed (math/rand's Go-1-stable generator), so a compiled model is
// bit-reproducible from (model, method, dim, seed), and Score uses one
// fixed serial accumulation order, so every scoring path over a
// compiled model is bit-identical to every other.
package approx

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/core/colmat"
	"repro/internal/kernel"
	"repro/internal/linalg"
)

// MaxDim bounds the feature dimension D (RFF) or landmark count m
// (Nyström) an artifact may declare. 2^16 features is an order of
// magnitude past the accuracy plateau of both maps; anything larger in
// an artifact is a forgery or a mistake, refused loudly at decode.
const MaxDim = 1 << 16

// Errors returned by the constructors; model.Decode wraps them.
var (
	// ErrKernel marks a kernel the requested map cannot approximate
	// (RFF requires the shift-invariant RBF kernel).
	ErrKernel = errors.New("approx: kernel not supported by this feature map")
	// ErrDim marks an out-of-range feature dimension or landmark count.
	ErrDim = errors.New("approx: feature dimension out of range")
)

// FeatureMap is a finite-dimensional approximation of a kernel:
// Map(a)·Map(b) ≈ k(a, b).
type FeatureMap interface {
	// InputDim is the width d of the inputs the map accepts.
	InputDim() int
	// Dim is the output dimension D of the map.
	Dim() int
	// Map writes z(x) into dst (len == Dim()). It must be safe for
	// concurrent calls and bit-deterministic for a given x.
	Map(x []float64, dst []float64)
	// Name identifies the map in reports, e.g. "rff:512".
	Name() string
}

// RFF is the random Fourier feature map for the RBF kernel
// k(a,b) = exp(-γ‖a-b‖²): z_j(x) = √(2/D)·cos(ω_j·x + φ_j).
type RFF struct {
	Omega *linalg.Matrix // D×d frequency matrix, rows ω_j ~ N(0, 2γI)
	Phase []float64      // D phase offsets φ_j ~ U[0, 2π)
	scale float64        // √(2/D)
}

// NewRFF draws a D-dimensional random Fourier feature map for
// kernel.RBF{Gamma: gamma} on d-dimensional inputs. The draw is a pure
// function of seed.
func NewRFF(gamma float64, d, dim int, seed int64) (*RFF, error) {
	if dim <= 0 || dim > MaxDim {
		return nil, fmt.Errorf("%w: D = %d (must be 1..%d)", ErrDim, dim, MaxDim)
	}
	if d <= 0 {
		return nil, fmt.Errorf("%w: input dim = %d", ErrDim, d)
	}
	if !(gamma > 0) || math.IsInf(gamma, 0) {
		return nil, fmt.Errorf("%w: rff needs gamma > 0, got %g", ErrKernel, gamma)
	}
	rng := rand.New(rand.NewSource(seed))
	omega := linalg.NewMatrix(dim, d)
	// exp(-γ‖a-b‖²) is a Gaussian with σ² = 1/(2γ), whose spectral
	// measure is N(0, 2γI) per coordinate.
	sd := math.Sqrt(2 * gamma)
	for i := range omega.Data {
		omega.Data[i] = sd * rng.NormFloat64()
	}
	phase := make([]float64, dim)
	for i := range phase {
		phase[i] = 2 * math.Pi * rng.Float64()
	}
	return RestoreRFF(omega, phase)
}

// RestoreRFF rebuilds an RFF map from its persisted components (see
// internal/model). The arguments are retained, not copied.
func RestoreRFF(omega *linalg.Matrix, phase []float64) (*RFF, error) {
	if omega.Rows <= 0 || omega.Rows > MaxDim {
		return nil, fmt.Errorf("%w: D = %d (must be 1..%d)", ErrDim, omega.Rows, MaxDim)
	}
	if len(phase) != omega.Rows {
		return nil, fmt.Errorf("%w: %d phases for %d frequencies", ErrDim, len(phase), omega.Rows)
	}
	return &RFF{Omega: omega, Phase: phase, scale: math.Sqrt(2 / float64(omega.Rows))}, nil
}

// InputDim implements FeatureMap.
func (r *RFF) InputDim() int { return r.Omega.Cols }

// Dim implements FeatureMap.
func (r *RFF) Dim() int { return r.Omega.Rows }

// Name implements FeatureMap.
func (r *RFF) Name() string { return fmt.Sprintf("rff:%d", r.Dim()) }

// Map implements FeatureMap: dst_j = √(2/D)·cos(ω_j·x + φ_j).
func (r *RFF) Map(x []float64, dst []float64) {
	d := r.Omega.Cols
	for j := 0; j < r.Omega.Rows; j++ {
		row := r.Omega.Data[j*d : (j+1)*d]
		s := r.Phase[j]
		for k, w := range row {
			s += w * x[k]
		}
		dst[j] = r.scale * math.Cos(s)
	}
}

// Nystrom is the landmark feature map z(x) = Whiten·[k(x, L_j)]_j with
// Whiten = W^{-1/2}, W = K(L, L). It works for any PSD kernel —
// including the histogram-intersection and normalized kernels RFF
// cannot express.
type Nystrom struct {
	K         kernel.Kernel
	Landmarks *linalg.Matrix // m×d landmark rows L_j
	Whiten    *linalg.Matrix // m×m pseudo-inverse square root of K(L,L)
}

// NewNystrom samples m landmark rows from basis (seeded, without
// replacement) and whitens their Gram matrix through EigenSym,
// discarding eigenvalues below a relative floor so a rank-deficient
// landmark Gram yields a lower-rank map instead of a blow-up. When
// basis has fewer than m rows, every row is a landmark.
func NewNystrom(k kernel.Kernel, basis *linalg.Matrix, m int, seed int64) (*Nystrom, error) {
	if m <= 0 || m > MaxDim {
		return nil, fmt.Errorf("%w: m = %d (must be 1..%d)", ErrDim, m, MaxDim)
	}
	if basis.Rows == 0 {
		return nil, fmt.Errorf("%w: empty basis", ErrDim)
	}
	if m > basis.Rows {
		m = basis.Rows
	}
	idx := rand.New(rand.NewSource(seed)).Perm(basis.Rows)[:m]
	landmarks := linalg.NewMatrix(m, basis.Cols)
	for r, i := range idx {
		copy(landmarks.Row(r), basis.Row(i))
	}
	w := kernel.Gram(k, landmarks)
	whiten, err := invSqrtPSD(w)
	if err != nil {
		return nil, fmt.Errorf("approx: whiten landmark gram: %w", err)
	}
	return &Nystrom{K: k, Landmarks: landmarks, Whiten: whiten}, nil
}

// RestoreNystrom rebuilds a Nyström map from its persisted components
// (see internal/model). The arguments are retained, not copied.
func RestoreNystrom(k kernel.Kernel, landmarks, whiten *linalg.Matrix) (*Nystrom, error) {
	if k == nil {
		return nil, fmt.Errorf("%w: nystrom needs a kernel", ErrKernel)
	}
	if landmarks.Rows <= 0 || landmarks.Rows > MaxDim {
		return nil, fmt.Errorf("%w: m = %d (must be 1..%d)", ErrDim, landmarks.Rows, MaxDim)
	}
	if whiten.Rows != landmarks.Rows || whiten.Cols != landmarks.Rows {
		return nil, fmt.Errorf("%w: whiten is %dx%d for %d landmarks",
			ErrDim, whiten.Rows, whiten.Cols, landmarks.Rows)
	}
	return &Nystrom{K: k, Landmarks: landmarks, Whiten: whiten}, nil
}

// invSqrtPSD returns V·diag(λ_i^{-1/2})·Vᵀ over the eigenvalues above
// a relative floor; components at or below the floor are dropped (set
// to zero), which is the Moore–Penrose pseudo-inverse square root.
func invSqrtPSD(w *linalg.Matrix) (*linalg.Matrix, error) {
	vals, vecs, err := linalg.EigenSym(w)
	if err != nil {
		return nil, err
	}
	floor := 0.0
	for _, v := range vals {
		if v > floor {
			floor = v
		}
	}
	floor *= 1e-12
	n := w.Rows
	out := linalg.NewMatrix(n, n)
	// out = Σ_k λ_k^{-1/2} v_k v_kᵀ, accumulated serially in eigenvalue
	// order so the result is deterministic.
	for k := 0; k < n; k++ {
		if vals[k] <= floor {
			continue
		}
		s := 1 / math.Sqrt(vals[k])
		for i := 0; i < n; i++ {
			vik := vecs.At(i, k)
			if vik == 0 {
				continue
			}
			row := out.Data[i*n : (i+1)*n]
			c := s * vik
			for j := 0; j < n; j++ {
				row[j] += c * vecs.At(j, k)
			}
		}
	}
	return out, nil
}

// InputDim implements FeatureMap.
func (ny *Nystrom) InputDim() int { return ny.Landmarks.Cols }

// Dim implements FeatureMap.
func (ny *Nystrom) Dim() int { return ny.Landmarks.Rows }

// Name implements FeatureMap.
func (ny *Nystrom) Name() string { return fmt.Sprintf("nystrom:%d", ny.Dim()) }

// Map implements FeatureMap: dst = Whiten·[k(x, L_j)]_j.
func (ny *Nystrom) Map(x []float64, dst []float64) {
	m := ny.Landmarks.Rows
	kx := make([]float64, m)
	for j := 0; j < m; j++ {
		kx[j] = ny.K.Eval(x, ny.Landmarks.Row(j))
	}
	for i := 0; i < m; i++ {
		row := ny.Whiten.Data[i*m : (i+1)*m]
		s := 0.0
		for j, v := range kx {
			s += row[j] * v
		}
		dst[i] = s
	}
}

// Linear is a compiled kernel expansion: Score(x) = w·z(x) + Bias.
// It is the entire serve-path state of an approx-linear artifact.
type Linear struct {
	Map  FeatureMap
	W    []float64 // len == Map.Dim()
	Bias float64

	// Nyström fast path: w·(Whiten·kx) = (Whitenᵀw)·kx, so the m×m
	// whitening matvec folds into the weight vector once and each score
	// costs only the m landmark kernel evaluations. Computed lazily
	// (Linear is built by struct literal at decode) and deterministically
	// from W and Whiten, so every path folds to the same bits.
	foldOnce sync.Once
	fold     []float64
}

// foldedWeights returns Whitenᵀ·W for a Nyström map, or nil when the
// map has no fold (RFF applies an elementwise cosine after projecting).
func (l *Linear) foldedWeights() []float64 {
	ny, ok := l.Map.(*Nystrom)
	if !ok {
		return nil
	}
	l.foldOnce.Do(func() {
		m := ny.Landmarks.Rows
		fold := make([]float64, m)
		for j := 0; j < m; j++ {
			s := 0.0
			for i := 0; i < m; i++ {
				s += l.W[i] * ny.Whiten.Data[i*m+j]
			}
			fold[j] = s
		}
		l.fold = fold
	})
	return l.fold
}

// Compile collapses a kernel expansion Σ α_i k(·, basis_i) + bias into
// a Linear scorer: each basis row is projected through the map once and
// its dual coefficient folded into the weight vector, w = Σ α_i
// z(basis_i). The accumulation order is the basis row order, serially,
// so compilation is bit-deterministic.
func Compile(fm FeatureMap, basis *linalg.Matrix, alpha []float64, bias float64) (*Linear, error) {
	if basis.Rows != len(alpha) {
		return nil, fmt.Errorf("approx: %d basis rows but %d coefficients", basis.Rows, len(alpha))
	}
	if basis.Cols != fm.InputDim() {
		return nil, fmt.Errorf("approx: basis is %d wide but the map takes %d", basis.Cols, fm.InputDim())
	}
	w := make([]float64, fm.Dim())
	z := make([]float64, fm.Dim())
	for i := 0; i < basis.Rows; i++ {
		fm.Map(basis.Row(i), z)
		a := alpha[i]
		for j, v := range z {
			w[j] += a * v
		}
	}
	return &Linear{Map: fm, W: w, Bias: bias}, nil
}

// Score returns w·z(x) + Bias with one fixed serial accumulation
// order; it is safe for concurrent calls. Nyström maps take the folded
// fast path — m kernel evaluations and one dot product, no whitening
// matvec.
func (l *Linear) Score(x []float64) float64 {
	if fold := l.foldedWeights(); fold != nil {
		ny := l.Map.(*Nystrom)
		s := l.Bias
		for j := range fold {
			s += fold[j] * ny.K.Eval(x, ny.Landmarks.Row(j))
		}
		return s
	}
	z := make([]float64, len(l.W))
	return l.scoreWithScratch(x, z)
}

// scoreWithScratch is the non-folded score with a caller-provided
// feature buffer z (len == Map.Dim()), letting batch paths reuse one
// scratch vector instead of allocating per row.
func (l *Linear) scoreWithScratch(x, z []float64) float64 {
	l.Map.Map(x, z)
	s := l.Bias
	for j, w := range l.W {
		s += w * z[j]
	}
	return s
}

// ScoreBatch scores every row of x; bit-identical to Score per row at
// any worker count (the loop is serial — a compiled score is one dot
// product, too cheap to farm out).
func (l *Linear) ScoreBatch(x *linalg.Matrix) []float64 {
	return l.ScoreBatchInto(x, make([]float64, x.Rows))
}

// ScoreBatchInto is ScoreBatch writing into a caller-provided slice of
// length x.Rows. The folded Nyström path needs no scratch at all; the
// RFF path leases one feature vector from the columnar arena for the
// whole batch instead of allocating per row, so a steady-state batch
// allocates nothing (alloc_test.go pins this at 0 allocs/op).
func (l *Linear) ScoreBatchInto(x *linalg.Matrix, out []float64) []float64 {
	if len(out) != x.Rows {
		panic("approx: ScoreBatchInto output length mismatch")
	}
	if fold := l.foldedWeights(); fold != nil {
		ny := l.Map.(*Nystrom)
		for i := range out {
			xi := x.Row(i)
			s := l.Bias
			for j := range fold {
				s += fold[j] * ny.K.Eval(xi, ny.Landmarks.Row(j))
			}
			out[i] = s
		}
		return out
	}
	z := colmat.GetVec(len(l.W))
	for i := range out {
		out[i] = l.scoreWithScratch(x.Row(i), z.Data)
	}
	colmat.PutVec(z)
	return out
}
