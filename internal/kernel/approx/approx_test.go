package approx

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/linalg"
)

func randMatrix(r *rand.Rand, rows, cols int) *linalg.Matrix {
	m := linalg.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

// maxKernelErr returns max_{i,j} |z(a_i)·z(b_j) − k(a_i, b_j)| over all
// row pairs of x.
func maxKernelErr(t *testing.T, fm FeatureMap, k kernel.Kernel, x *linalg.Matrix) float64 {
	t.Helper()
	z := linalg.NewMatrix(x.Rows, fm.Dim())
	for i := 0; i < x.Rows; i++ {
		fm.Map(x.Row(i), z.Row(i))
	}
	worst := 0.0
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < x.Rows; j++ {
			got := linalg.Dot(z.Row(i), z.Row(j))
			if e := math.Abs(got - k.Eval(x.Row(i), x.Row(j))); e > worst {
				worst = e
			}
		}
	}
	return worst
}

// TestRFFApproximatesRBF: the feature-map inner product must converge
// to the exact RBF value as D grows, with the O(1/√D) Monte-Carlo
// shape — each doubling of D should not make things much worse, and
// D=4096 must be tight.
func TestRFFApproximatesRBF(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	x := randMatrix(r, 20, 5)
	k := kernel.RBF{Gamma: 0.4}
	var prev float64
	for _, D := range []int{256, 1024, 4096} {
		fm, err := NewRFF(k.Gamma, 5, D, 99)
		if err != nil {
			t.Fatal(err)
		}
		e := maxKernelErr(t, fm, k, x)
		t.Logf("D=%d max |z·z − k| = %.4g", D, e)
		if prev > 0 && e > 2*prev {
			t.Errorf("error grew with D: %g (D=%d) vs %g before", e, D, prev)
		}
		prev = e
	}
	if prev > 0.08 {
		t.Errorf("D=4096 RFF error %g, want < 0.08", prev)
	}
}

// TestNystromExactAtFullRank: with every basis row a landmark, the
// Nyström map reproduces the kernel on the basis rows to numerical
// precision (the approximation is exact on the span of the landmarks).
func TestNystromExactAtFullRank(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	x := randMatrix(r, 24, 4)
	for _, k := range []kernel.Kernel{
		kernel.RBF{Gamma: 0.7},
		kernel.Poly{Degree: 2, Gamma: 1},
	} {
		fm, err := NewNystrom(k, x, x.Rows, 5)
		if err != nil {
			t.Fatal(err)
		}
		if e := maxKernelErr(t, fm, k, x); e > 1e-6 {
			t.Errorf("%s: full-rank Nyström error %g on basis rows, want ~0", k.Name(), e)
		}
	}
}

// TestNystromRankDeficient: duplicated rows make K(L,L) singular; the
// pseudo-inverse square root must still produce a finite map that
// reproduces the kernel on the landmark span.
func TestNystromRankDeficient(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := randMatrix(r, 10, 3)
	for i := 5; i < 10; i++ {
		copy(x.Row(i), x.Row(i-5)) // rank 5 basis
	}
	k := kernel.RBF{Gamma: 0.5}
	fm, err := NewNystrom(k, x, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, fm.Dim())
	for i := 0; i < x.Rows; i++ {
		fm.Map(x.Row(i), z)
		for _, v := range z {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite feature on rank-deficient landmarks: %v", z)
			}
		}
	}
	if e := maxKernelErr(t, fm, k, x); e > 1e-6 {
		t.Errorf("rank-deficient Nyström error %g, want ~0", e)
	}
}

// TestSeedDeterminism: both maps are pure functions of the seed —
// identical draws, and a different seed actually changes them.
func TestSeedDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	x := randMatrix(r, 12, 4)
	a1, err := NewRFF(0.5, 4, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := NewRFF(0.5, 4, 64, 42)
	b, _ := NewRFF(0.5, 4, 64, 43)
	za, zb := make([]float64, 64), make([]float64, 64)
	a1.Map(x.Row(0), za)
	a2.Map(x.Row(0), zb)
	for j := range za {
		if math.Float64bits(za[j]) != math.Float64bits(zb[j]) {
			t.Fatalf("same-seed RFF differs at %d: %v vs %v", j, za[j], zb[j])
		}
	}
	b.Map(x.Row(0), zb)
	same := true
	for j := range za {
		if za[j] != zb[j] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced an identical RFF map")
	}

	n1, err := NewNystrom(kernel.RBF{Gamma: 0.5}, x, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := NewNystrom(kernel.RBF{Gamma: 0.5}, x, 6, 42)
	za, zb = make([]float64, 6), make([]float64, 6)
	n1.Map(x.Row(1), za)
	n2.Map(x.Row(1), zb)
	for j := range za {
		if math.Float64bits(za[j]) != math.Float64bits(zb[j]) {
			t.Fatalf("same-seed Nyström differs at %d", j)
		}
	}
}

// TestCompileCollapsesExpansion: a compiled Linear must score exactly
// w·z(x)+bias where w is the serial fold of the dual coefficients, and
// that score must approximate the exact expansion.
func TestCompileCollapsesExpansion(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	basis := randMatrix(r, 30, 4)
	alpha := make([]float64, 30)
	for i := range alpha {
		alpha[i] = r.NormFloat64()
	}
	k := kernel.RBF{Gamma: 0.6}
	fm, err := NewNystrom(k, basis, 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Compile(fm, basis, alpha, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	exact := func(x []float64) float64 {
		s := 0.25
		for i := 0; i < basis.Rows; i++ {
			s += alpha[i] * k.Eval(x, basis.Row(i))
		}
		return s
	}
	// Full-rank Nyström is exact on the landmark span: probe the basis
	// rows themselves.
	for i := 0; i < basis.Rows; i++ {
		got, want := lin.Score(basis.Row(i)), exact(basis.Row(i))
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("row %d: compiled %g vs exact %g", i, got, want)
		}
	}
	// Batch path is bit-identical to the row path.
	batch := lin.ScoreBatch(basis)
	for i := range batch {
		if math.Float64bits(batch[i]) != math.Float64bits(lin.Score(basis.Row(i))) {
			t.Fatalf("batch row %d not bit-identical", i)
		}
	}
}

func TestConstructorBounds(t *testing.T) {
	x := linalg.NewMatrix(4, 2)
	if _, err := NewRFF(0.5, 2, 0, 1); !errors.Is(err, ErrDim) {
		t.Errorf("D=0: got %v, want ErrDim", err)
	}
	if _, err := NewRFF(0.5, 2, MaxDim+1, 1); !errors.Is(err, ErrDim) {
		t.Errorf("D>max: got %v, want ErrDim", err)
	}
	if _, err := NewRFF(0, 2, 8, 1); !errors.Is(err, ErrKernel) {
		t.Errorf("gamma=0: got %v, want ErrKernel", err)
	}
	if _, err := NewRFF(math.NaN(), 2, 8, 1); !errors.Is(err, ErrKernel) {
		t.Errorf("gamma=NaN: got %v, want ErrKernel", err)
	}
	if _, err := NewNystrom(kernel.RBF{Gamma: 1}, x, -1, 1); !errors.Is(err, ErrDim) {
		t.Errorf("m<0: got %v, want ErrDim", err)
	}
	if _, err := RestoreRFF(linalg.NewMatrix(3, 2), []float64{0, 0}); !errors.Is(err, ErrDim) {
		t.Error("phase/frequency mismatch accepted")
	}
	if _, err := Compile(&RFF{Omega: linalg.NewMatrix(2, 2), Phase: []float64{0, 0}, scale: 1},
		linalg.NewMatrix(3, 2), []float64{1, 2}, 0); err == nil {
		t.Error("basis/alpha mismatch accepted")
	}
}
