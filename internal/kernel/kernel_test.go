package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g want %g", msg, got, want)
	}
}

func randVecs(rng *rand.Rand, n, d int) *linalg.Matrix {
	m := linalg.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestLinearKernel(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4}
	approx(t, Linear{}.Eval(a, b), 11, 1e-12, "linear")
}

func TestQuadKernelEqualsFeatureMapDot(t *testing.T) {
	// The kernel trick identity of paper Figure 3:
	// (x·y)² == <Φ(x), Φ(y)> with Φ(x) = (x1², x2², √2 x1x2).
	rng := rand.New(rand.NewSource(1))
	k := Poly{Degree: 2, Gamma: 1}
	for i := 0; i < 100; i++ {
		a := []float64{rng.NormFloat64(), rng.NormFloat64()}
		b := []float64{rng.NormFloat64(), rng.NormFloat64()}
		lhs := k.Eval(a, b)
		rhs := linalg.Dot(QuadFeatureMap(a), QuadFeatureMap(b))
		approx(t, lhs, rhs, 1e-9*(1+math.Abs(lhs)), "kernel trick identity")
	}
}

func TestRBFProperties(t *testing.T) {
	k := RBF{Gamma: 0.5}
	a := []float64{1, 2, 3}
	approx(t, k.Eval(a, a), 1, 1e-12, "self similarity is 1")
	b := []float64{4, 5, 6}
	v := k.Eval(a, b)
	if v <= 0 || v >= 1 {
		t.Fatalf("rbf out of (0,1): %g", v)
	}
	approx(t, v, k.Eval(b, a), 1e-15, "symmetry")
}

func TestHistogramIntersection(t *testing.T) {
	k := HistogramIntersection{}
	a := []float64{0.5, 0.3, 0.2}
	b := []float64{0.2, 0.5, 0.3}
	approx(t, k.Eval(a, b), 0.2+0.3+0.2, 1e-12, "HI value")
	approx(t, k.Eval(a, a), 1, 1e-12, "HI self = mass")
	// Bounded by min of masses.
	if k.Eval(a, b) > 1 {
		t.Fatal("HI exceeds mass")
	}
}

func TestKernelsArePSDOnSampledData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randVecs(rng, 20, 4)
	for _, k := range []Kernel{Linear{}, Poly{Degree: 2, Gamma: 1, Coef0: 1}, RBF{Gamma: 0.3}} {
		g := Gram(k, x)
		if !g.IsSymmetric(1e-10) {
			t.Fatalf("%s: gram not symmetric", k.Name())
		}
		if !IsPSD(g, 1e-7) {
			t.Fatalf("%s: gram not PSD", k.Name())
		}
	}
	// HI kernel on nonnegative histograms is PSD too.
	h := linalg.NewMatrix(15, 6)
	for i := range h.Data {
		h.Data[i] = rng.Float64()
	}
	if !IsPSD(Gram(HistogramIntersection{}, h), 1e-7) {
		t.Fatal("HI gram not PSD")
	}
}

func TestCrossGramShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randVecs(rng, 4, 3)
	b := randVecs(rng, 6, 3)
	g := CrossGram(RBF{Gamma: 1}, a, b)
	if g.Rows != 4 || g.Cols != 6 {
		t.Fatalf("shape %dx%d", g.Rows, g.Cols)
	}
	approx(t, g.At(1, 2), RBF{Gamma: 1}.Eval(a.Row(1), b.Row(2)), 1e-15, "crossgram entry")
}

func TestCenterZerosFeatureMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randVecs(rng, 12, 3)
	g := Center(Gram(Linear{}, x))
	// A centered Gram matrix has zero row sums.
	for i := 0; i < g.Rows; i++ {
		s := 0.0
		for j := 0; j < g.Cols; j++ {
			s += g.At(i, j)
		}
		approx(t, s, 0, 1e-9, "centered row sum")
	}
}

func TestNormalizeUnitDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randVecs(rng, 8, 3)
	n := Normalize{K: Poly{Degree: 3, Gamma: 1, Coef0: 1}}
	for i := 0; i < x.Rows; i++ {
		approx(t, n.Eval(x.Row(i), x.Row(i)), 1, 1e-12, "unit self-similarity")
	}
	v := n.Eval(x.Row(0), x.Row(1))
	if math.Abs(v) > 1+1e-12 {
		t.Fatalf("normalized kernel out of [-1,1]: %g", v)
	}
}

func TestSpectrumKernel(t *testing.T) {
	k := Spectrum{N: 2}
	a := []string{"ld", "add", "st"}
	b := []string{"ld", "add", "mul"}
	// a's bigrams: {ld·add, add·st}; b's: {ld·add, add·mul}; shared: 1.
	approx(t, k.EvalSeq(a, b), 1, 1e-12, "spectrum overlap")
	approx(t, k.EvalSeq(a, a), 2, 1e-12, "spectrum self")
	kn := Spectrum{N: 2, Normalize: true}
	approx(t, kn.EvalSeq(a, a), 1, 1e-12, "normalized self")
	approx(t, kn.EvalSeq(a, b), 0.5, 1e-12, "normalized overlap")
	// Sequences shorter than n have empty spectra.
	approx(t, k.EvalSeq([]string{"ld"}, a), 0, 0, "short sequence")
	approx(t, kn.EvalSeq([]string{"ld"}, a), 0, 0, "short normalized")
}

func TestSpectrumPermutationSensitivity(t *testing.T) {
	// A 1-gram spectrum ignores order; a 2-gram spectrum does not.
	a := []string{"x", "y", "z"}
	b := []string{"z", "y", "x"}
	k1 := Spectrum{N: 1}
	approx(t, k1.EvalSeq(a, b), k1.EvalSeq(a, a), 1e-12, "unigram order-invariant")
	k2 := Spectrum{N: 2}
	if k2.EvalSeq(a, b) >= k2.EvalSeq(a, a) {
		t.Fatal("bigram kernel should penalize reordering")
	}
}

func TestBlendedSpectrum(t *testing.T) {
	b := BlendedSpectrum{MaxN: 3, Lambda: 0.5, Normalize: true}
	a := []string{"ld", "add", "st", "ld"}
	approx(t, b.EvalSeq(a, a), 1, 1e-12, "blended normalized self")
	v := b.EvalSeq(a, []string{"mul", "div"})
	if v < 0 || v >= 1 {
		t.Fatalf("blended out of range: %g", v)
	}
}

func TestSeqGramSymmetricPSD(t *testing.T) {
	seqs := [][]string{
		{"ld", "add", "st"},
		{"ld", "add", "mul"},
		{"st", "st", "st"},
		{"ld", "add", "st", "ld", "add"},
	}
	g := SeqGram(Spectrum{N: 2, Normalize: true}, seqs)
	m := linalg.FromRows(g)
	if !m.IsSymmetric(1e-12) {
		t.Fatal("seq gram not symmetric")
	}
	if !IsPSD(m, 1e-8) {
		t.Fatal("spectrum gram not PSD")
	}
}

func TestVocabularyAndNGramFeatures(t *testing.T) {
	seqs := [][]string{{"b", "a"}, {"a", "c"}}
	v := Vocabulary(seqs)
	if len(v) != 3 || v[0] != "a" {
		t.Fatalf("vocab %v", v)
	}
	x, names := NGramFeatures(seqs, 1)
	if len(names) != 3 || len(x) != 2 {
		t.Fatalf("features %v %v", names, x)
	}
	// Explicit feature dot product equals the spectrum kernel.
	k := Spectrum{N: 1}
	approx(t, linalg.Dot(x[0], x[1]), k.EvalSeq(seqs[0], seqs[1]), 1e-12, "explicit == implicit")
	// Bigram feature names join tokens.
	_, n2 := NGramFeatures([][]string{{"ld", "st"}}, 2)
	if len(n2) != 1 || n2[0] != "ld·st" {
		t.Fatalf("bigram names %v", n2)
	}
}

func BenchmarkSpectrumKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ops := []string{"ld", "st", "add", "sub", "mul", "br"}
	mk := func() []string {
		s := make([]string, 50)
		for i := range s {
			s[i] = ops[rng.Intn(len(ops))]
		}
		return s
	}
	a, c := mk(), mk()
	k := Spectrum{N: 3, Normalize: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.EvalSeq(a, c)
	}
}

func BenchmarkGram100RBF(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := randVecs(rng, 100, 8)
	k := RBF{Gamma: 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Gram(k, x)
	}
}
