// Package semisup implements the semi-supervised setting the paper's
// Section 2 defines: "when some (usually much fewer) samples are with
// labels and others have no label". Two classic methods are provided:
// self-training (wrap any confidence-producing classifier) and graph
// label propagation over an RBF affinity — both directly usable when
// simulation labels are expensive (the verification and litho substrates).
package semisup

import (
	"errors"
	"math"

	"repro/internal/linalg"
)

// Unlabeled marks a sample with no label in the y vector.
const Unlabeled = -1

// ConfidenceClassifier is a fitted model that reports a class and a
// confidence in [0, 1] for a sample.
type ConfidenceClassifier interface {
	PredictConf(x []float64) (class float64, confidence float64)
}

// ConfidenceFitter builds a ConfidenceClassifier from labeled rows.
type ConfidenceFitter func(x *linalg.Matrix, y []float64) (ConfidenceClassifier, error)

// SelfTrainConfig controls self-training.
type SelfTrainConfig struct {
	Threshold float64 // adopt pseudo-labels above this confidence, default 0.9
	MaxRounds int     // default 10
	BatchCap  int     // max pseudo-labels adopted per round (0 = all)
}

// SelfTrain iteratively fits on the labeled set, pseudo-labels the most
// confident unlabeled samples, and refits, returning the final model and
// the completed label vector (pseudo-labels included; samples never
// confidently labeled keep Unlabeled).
func SelfTrain(x *linalg.Matrix, y []float64, fit ConfidenceFitter, cfg SelfTrainConfig) (ConfidenceClassifier, []float64, error) {
	if x.Rows != len(y) {
		return nil, nil, errors.New("semisup: x/y length mismatch")
	}
	if cfg.Threshold <= 0 || cfg.Threshold >= 1 {
		cfg.Threshold = 0.9
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 10
	}
	labels := append([]float64(nil), y...)

	var model ConfidenceClassifier
	for round := 0; round < cfg.MaxRounds; round++ {
		// Gather labeled rows.
		var li []int
		for i, v := range labels {
			if v != Unlabeled {
				li = append(li, i)
			}
		}
		if len(li) == 0 {
			return nil, nil, errors.New("semisup: no labeled samples")
		}
		lx := linalg.NewMatrix(len(li), x.Cols)
		ly := make([]float64, len(li))
		for r, i := range li {
			copy(lx.Row(r), x.Row(i))
			ly[r] = labels[i]
		}
		var err error
		model, err = fit(lx, ly)
		if err != nil {
			return nil, nil, err
		}
		// Pseudo-label confident unlabeled samples.
		type cand struct {
			idx   int
			class float64
			conf  float64
		}
		var cands []cand
		for i, v := range labels {
			if v != Unlabeled {
				continue
			}
			c, conf := model.PredictConf(x.Row(i))
			if conf >= cfg.Threshold {
				cands = append(cands, cand{i, c, conf})
			}
		}
		if len(cands) == 0 {
			break
		}
		// Most confident first.
		for i := 1; i < len(cands); i++ {
			for j := i; j > 0 && cands[j].conf > cands[j-1].conf; j-- {
				cands[j], cands[j-1] = cands[j-1], cands[j]
			}
		}
		if cfg.BatchCap > 0 && len(cands) > cfg.BatchCap {
			cands = cands[:cfg.BatchCap]
		}
		for _, c := range cands {
			labels[c.idx] = c.class
		}
	}
	return model, labels, nil
}

// LabelPropagation spreads binary labels {0,1} over an RBF-affinity graph
// (iterative normalized propagation with clamped labeled points). It
// returns the inferred label of every sample.
func LabelPropagation(x *linalg.Matrix, y []float64, gamma float64, iters int) ([]float64, error) {
	n := x.Rows
	if n != len(y) {
		return nil, errors.New("semisup: x/y length mismatch")
	}
	if gamma <= 0 {
		gamma = 1.0 / float64(x.Cols)
	}
	if iters <= 0 {
		iters = 100
	}
	anyLabel := false
	for _, v := range y {
		if v != Unlabeled {
			anyLabel = true
			if v != 0 && v != 1 {
				return nil, errors.New("semisup: labels must be 0/1 or Unlabeled")
			}
		}
	}
	if !anyLabel {
		return nil, errors.New("semisup: no labeled samples")
	}

	// Row-normalized affinity.
	w := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			a := math.Exp(-gamma * linalg.Dist2(x.Row(i), x.Row(j)))
			w.Set(i, j, a)
			rowSum += a
		}
		if rowSum > 0 {
			for j := 0; j < n; j++ {
				w.Set(i, j, w.At(i, j)/rowSum)
			}
		}
	}

	// f holds P(class=1).
	f := make([]float64, n)
	for i, v := range y {
		if v == 1 {
			f[i] = 1
		} else if v == Unlabeled {
			f[i] = 0.5
		}
	}
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			if y[i] != Unlabeled {
				next[i] = f[i] // clamp
				continue
			}
			s := 0.0
			for j := 0; j < n; j++ {
				if wij := w.At(i, j); wij != 0 {
					s += wij * f[j]
				}
			}
			next[i] = s
		}
		f, next = next, f
	}
	out := make([]float64, n)
	for i := range out {
		if y[i] != Unlabeled {
			out[i] = y[i]
		} else if f[i] >= 0.5 {
			out[i] = 1
		}
	}
	return out, nil
}
