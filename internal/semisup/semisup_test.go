package semisup

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/linear"
)

// logisticConf adapts logistic regression to ConfidenceClassifier.
type logisticConf struct{ m *linear.Logistic }

func (l logisticConf) PredictConf(x []float64) (float64, float64) {
	p := l.m.Prob(x)
	if p >= 0.5 {
		return 1, p
	}
	return 0, 1 - p
}

func fitLogistic(x *linalg.Matrix, y []float64) (ConfidenceClassifier, error) {
	d := dataset.MustNew(x, y, nil)
	m, err := linear.FitLogistic(d, linear.LogisticConfig{Epochs: 300})
	if err != nil {
		return nil, err
	}
	return logisticConf{m}, nil
}

// fewLabels keeps only nKeep labels per class, marking the rest Unlabeled.
func fewLabels(d *dataset.Dataset, nKeep int) []float64 {
	y := make([]float64, d.Len())
	kept := map[int]int{}
	for i := range y {
		c := int(d.Y[i])
		if kept[c] < nKeep {
			y[i] = d.Y[i]
			kept[c]++
		} else {
			y[i] = Unlabeled
		}
	}
	return y
}

func TestSelfTrainingImprovesOnScarceLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := dataset.TwoGaussians(rng, 150, 2, 3, 1)
	y := fewLabels(d, 5) // only 5 labels per class

	model, labels, err := SelfTrain(d.X, y, fitLogistic, SelfTrainConfig{Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Most pseudo-labels should be correct.
	correct, assigned := 0, 0
	for i, v := range labels {
		if y[i] != Unlabeled || v == Unlabeled {
			continue
		}
		assigned++
		if v == d.Y[i] {
			correct++
		}
	}
	if assigned < 100 {
		t.Fatalf("too few pseudo-labels: %d", assigned)
	}
	if acc := float64(correct) / float64(assigned); acc < 0.95 {
		t.Fatalf("pseudo-label accuracy %.3f", acc)
	}
	// The final model classifies well.
	right := 0
	for i := 0; i < d.Len(); i++ {
		if c, _ := model.PredictConf(d.Row(i)); c == d.Y[i] {
			right++
		}
	}
	if acc := float64(right) / float64(d.Len()); acc < 0.95 {
		t.Fatalf("final model accuracy %.3f", acc)
	}
}

func TestSelfTrainValidation(t *testing.T) {
	x := linalg.NewMatrix(3, 1)
	if _, _, err := SelfTrain(x, []float64{Unlabeled, Unlabeled}, fitLogistic, SelfTrainConfig{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	all := []float64{Unlabeled, Unlabeled, Unlabeled}
	if _, _, err := SelfTrain(x, all, fitLogistic, SelfTrainConfig{}); err == nil {
		t.Fatal("no-labels accepted")
	}
}

func TestLabelPropagationTwoMoonsLike(t *testing.T) {
	// Two dense blobs; one labeled point per blob is enough for the graph
	// to propagate.
	rng := rand.New(rand.NewSource(2))
	n := 80
	x := linalg.NewMatrix(2*n, 2)
	truth := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64()*0.5)
		x.Set(i, 1, rng.NormFloat64()*0.5)
	}
	for i := n; i < 2*n; i++ {
		x.Set(i, 0, 5+rng.NormFloat64()*0.5)
		x.Set(i, 1, 5+rng.NormFloat64()*0.5)
		truth[i] = 1
	}
	y := make([]float64, 2*n)
	for i := range y {
		y[i] = Unlabeled
	}
	y[0] = 0
	y[n] = 1

	labels, err := LabelPropagation(x, y, 0.5, 200)
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for i := range labels {
		if labels[i] != truth[i] {
			wrong++
		}
	}
	if wrong > 2 {
		t.Fatalf("label propagation errors: %d", wrong)
	}
}

func TestLabelPropagationValidation(t *testing.T) {
	x := linalg.NewMatrix(2, 1)
	if _, err := LabelPropagation(x, []float64{1}, 1, 10); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := LabelPropagation(x, []float64{Unlabeled, Unlabeled}, 1, 10); err == nil {
		t.Fatal("no-labels accepted")
	}
	if _, err := LabelPropagation(x, []float64{2, Unlabeled}, 1, 10); err == nil {
		t.Fatal("bad label accepted")
	}
}
