package rules

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestConditionAndRuleMatching(t *testing.T) {
	c := Condition{Feature: 0, Op: GT, Threshold: 5, Name: "via45"}
	if !c.Matches([]float64{6}) || c.Matches([]float64{5}) {
		t.Fatal("GT condition wrong")
	}
	le := Condition{Feature: 0, Op: LE, Threshold: 5}
	if !le.Matches([]float64{5}) || le.Matches([]float64{6}) {
		t.Fatal("LE condition wrong")
	}
	if !strings.Contains(c.String(), "via45 > 5") {
		t.Fatalf("condition render: %s", c.String())
	}
	r := &Rule{Conditions: []Condition{c, {Feature: 1, Op: LE, Threshold: 2}}, Class: 1}
	if !r.Matches([]float64{6, 1}) || r.Matches([]float64{6, 3}) || r.Matches([]float64{4, 1}) {
		t.Fatal("rule conjunction wrong")
	}
	if (&Rule{}).String() == "" || r.String() == "" {
		t.Fatal("empty render")
	}
	if (&Rule{}).Precision() != 0 {
		t.Fatal("zero-coverage precision")
	}
}

func TestCN2SDFindsPlantedRule(t *testing.T) {
	// Class 1 iff f0 > 10 AND f1 > 20; other features are noise.
	rng := rand.New(rand.NewSource(1))
	n := 400
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		rows[i] = []float64{
			rng.Float64() * 20,
			rng.Float64() * 40,
			rng.NormFloat64(),
		}
		if rows[i][0] > 10 && rows[i][1] > 20 {
			y[i] = 1
		}
	}
	d := dataset.MustNew(dataset.FromRows(rows, y).X, y, []string{"via45", "via56", "noise"})
	rs, err := CN2SD(d, 1, CN2SDConfig{MaxRules: 3, MaxConditions: 2, Thresholds: 12})
	if err != nil {
		t.Fatal(err)
	}
	top := rs[0]
	// Top rule should reference both planted features with GT conditions.
	usedGT := map[int]bool{}
	for _, c := range top.Conditions {
		if c.Op == GT {
			usedGT[c.Feature] = true
		}
	}
	if !usedGT[0] || !usedGT[1] {
		t.Fatalf("top rule misses planted features: %s", top)
	}
	if top.Precision() < 0.85 {
		t.Fatalf("top rule precision %g: %s", top.Precision(), top)
	}
	if top.WRAcc <= 0 {
		t.Fatalf("top rule WRAcc %g", top.WRAcc)
	}
}

func TestCN2SDWeightedCoveringFindsDisjunction(t *testing.T) {
	// Class 1 in two disjoint regions: f0 > 8 OR f1 > 8. Weighted covering
	// should surface both subgroups across the extracted rules.
	rng := rand.New(rand.NewSource(2))
	n := 500
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		if rows[i][0] > 8 || rows[i][1] > 8 {
			y[i] = 1
		}
	}
	d := dataset.FromRows(rows, y)
	rs, err := CN2SD(d, 1, CN2SDConfig{MaxRules: 4, MaxConditions: 1, Thresholds: 9})
	if err != nil {
		t.Fatal(err)
	}
	feats := map[int]bool{}
	for _, r := range rs {
		for _, c := range r.Conditions {
			if c.Op == GT && c.Threshold > 6 {
				feats[c.Feature] = true
			}
		}
	}
	if !feats[0] || !feats[1] {
		t.Fatalf("weighted covering should find both regions; rules:\n%v", rs)
	}
}

func TestCN2SDValidation(t *testing.T) {
	if _, err := CN2SD(dataset.FromRows(nil, nil), 1, CN2SDConfig{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	d := dataset.FromRows([][]float64{{1}, {2}}, []float64{0, 0})
	if _, err := CN2SD(d, 1, CN2SDConfig{}); err == nil {
		t.Fatal("missing target class accepted")
	}
}

func TestRuleSetPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 300
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 10}
		if rows[i][0] > 7 {
			y[i] = 1
		}
	}
	d := dataset.FromRows(rows, y)
	rs, err := CN2SD(d, 1, CN2SDConfig{MaxRules: 2, MaxConditions: 1, Thresholds: 9})
	if err != nil {
		t.Fatal(err)
	}
	set := &RuleSet{Rules: rs, Target: 1, Default: 0}
	pred := set.PredictAll(d)
	correct := 0
	for i := range pred {
		if pred[i] == y[i] {
			correct++
		}
	}
	if float64(correct)/float64(n) < 0.9 {
		t.Fatalf("ruleset accuracy %g", float64(correct)/float64(n))
	}
}

func TestAprioriFrequentSetsAndRules(t *testing.T) {
	txs := []Transaction{
		{"ld", "add"},
		{"ld", "add", "st"},
		{"ld", "add", "st"},
		{"ld", "st"},
		{"mul"},
	}
	freq, rules := Apriori(txs, 0.4, 0.7)
	supOf := func(items ...string) float64 {
		for _, f := range freq {
			if len(f.Items) != len(items) {
				continue
			}
			same := true
			for i := range items {
				if f.Items[i] != items[i] {
					same = false
					break
				}
			}
			if same {
				return f.Support
			}
		}
		return -1
	}
	if s := supOf("ld"); s != 0.8 {
		t.Fatalf("sup(ld)=%g", s)
	}
	if s := supOf("add", "ld"); s != 0.6 {
		t.Fatalf("sup(ld,add)=%g", s)
	}
	if s := supOf("mul"); s != -1 {
		t.Fatalf("mul should be infrequent at 0.4, got %g", s)
	}
	// Rule add => ld must exist with confidence 1.
	found := false
	for _, r := range rules {
		if len(r.Antecedent) == 1 && r.Antecedent[0] == "add" &&
			len(r.Consequent) == 1 && r.Consequent[0] == "ld" {
			found = true
			if r.Confidence != 1 {
				t.Fatalf("conf(add=>ld)=%g", r.Confidence)
			}
			if r.Lift < 1.2 {
				t.Fatalf("lift(add=>ld)=%g", r.Lift)
			}
		}
	}
	if !found {
		t.Fatalf("rule add=>ld not mined; rules=%v", rules)
	}
	if len(rules) > 0 && rules[0].String() == "" {
		t.Fatal("rule render empty")
	}
}

func TestAprioriEmptyAndMonotone(t *testing.T) {
	f, r := Apriori(nil, 0.5, 0.5)
	if f != nil || r != nil {
		t.Fatal("empty transactions should mine nothing")
	}
	// Support anti-monotone: every superset has support <= subset.
	txs := []Transaction{
		{"a", "b", "c"}, {"a", "b"}, {"a", "c"}, {"b", "c"}, {"a", "b", "c"},
	}
	freq, _ := Apriori(txs, 0.2, 0.5)
	sup := map[string]float64{}
	for _, fs := range freq {
		sup[strings.Join(fs.Items, ",")] = fs.Support
	}
	if sup["a,b"] > sup["a"] || sup["a,b,c"] > sup["a,b"] {
		t.Fatalf("support monotonicity violated: %v", sup)
	}
}

func BenchmarkCN2SD(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	n := 300
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 20, rng.Float64() * 40, rng.NormFloat64()}
		if rows[i][0] > 10 && rows[i][1] > 20 {
			y[i] = 1
		}
	}
	d := dataset.FromRows(rows, y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CN2SD(d, 1, CN2SDConfig{MaxRules: 3, MaxConditions: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
