package rules

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: a rule matches a sample iff every condition matches it.
func TestQuickRuleConjunction(t *testing.T) {
	f := func(seed int64, nCondRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nCond := int(nCondRaw)%4 + 1
		dim := 5
		r := &Rule{Class: 1}
		for c := 0; c < nCond; c++ {
			op := LE
			if rng.Intn(2) == 1 {
				op = GT
			}
			r.Conditions = append(r.Conditions, Condition{
				Feature:   rng.Intn(dim),
				Op:        op,
				Threshold: rng.NormFloat64(),
			})
		}
		for trial := 0; trial < 20; trial++ {
			x := make([]float64, dim)
			for j := range x {
				x[j] = rng.NormFloat64() * 2
			}
			want := true
			for _, c := range r.Conditions {
				if !c.Matches(x) {
					want = false
					break
				}
			}
			if r.Matches(x) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Apriori support is anti-monotone — every mined itemset's
// support is <= the support of each of its single items, and every rule's
// confidence is within (0, 1].
func TestQuickAprioriInvariants(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e"}
	f := func(seed int64, nTxRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nTx := int(nTxRaw)%30 + 5
		txs := make([]Transaction, nTx)
		for i := range txs {
			var tx Transaction
			for _, it := range items {
				if rng.Float64() < 0.4 {
					tx = append(tx, it)
				}
			}
			if len(tx) == 0 {
				tx = Transaction{"a"}
			}
			txs[i] = tx
		}
		freq, rulesOut := Apriori(txs, 0.2, 0.5)
		sup := map[string]float64{}
		for _, fs := range freq {
			if len(fs.Items) == 1 {
				sup[fs.Items[0]] = fs.Support
			}
		}
		for _, fs := range freq {
			for _, it := range fs.Items {
				if s, ok := sup[it]; ok && fs.Support > s+1e-12 {
					return false
				}
			}
			if fs.Support < 0.2-1e-12 || fs.Support > 1+1e-12 {
				return false
			}
		}
		for _, r := range rulesOut {
			if r.Confidence < 0.5-1e-12 || r.Confidence > 1+1e-12 {
				return false
			}
			if r.Support <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
