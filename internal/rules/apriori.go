package rules

import (
	"fmt"
	"sort"
	"strings"
)

// Transaction is a set of items (deduplicated strings).
type Transaction []string

// ItemSet is a frequent itemset with its support.
type ItemSet struct {
	Items   []string // sorted
	Support float64  // fraction of transactions containing all items
}

// AssocRule is an association rule A ⇒ B.
type AssocRule struct {
	Antecedent []string
	Consequent []string
	Support    float64
	Confidence float64
	Lift       float64
}

// String renders the rule.
func (r AssocRule) String() string {
	return fmt.Sprintf("{%s} => {%s} (sup=%.3f conf=%.3f lift=%.2f)",
		strings.Join(r.Antecedent, ","), strings.Join(r.Consequent, ","),
		r.Support, r.Confidence, r.Lift)
}

// Apriori mines frequent itemsets with at least minSupport (fraction) using
// level-wise candidate generation, then derives association rules with at
// least minConfidence. This is the unsupervised rule mining of paper §2.4.
func Apriori(txs []Transaction, minSupport, minConfidence float64) ([]ItemSet, []AssocRule) {
	n := len(txs)
	if n == 0 {
		return nil, nil
	}
	// Normalize transactions to sorted unique item sets.
	sets := make([]map[string]bool, n)
	for i, t := range txs {
		m := map[string]bool{}
		for _, it := range t {
			m[it] = true
		}
		sets[i] = m
	}

	support := func(items []string) float64 {
		cnt := 0
		for _, s := range sets {
			ok := true
			for _, it := range items {
				if !s[it] {
					ok = false
					break
				}
			}
			if ok {
				cnt++
			}
		}
		return float64(cnt) / float64(n)
	}

	// L1.
	counts := map[string]int{}
	for _, s := range sets {
		for it := range s {
			counts[it]++
		}
	}
	var level [][]string
	for it, c := range counts {
		if float64(c)/float64(n) >= minSupport {
			level = append(level, []string{it})
		}
	}
	sort.Slice(level, func(i, j int) bool { return level[i][0] < level[j][0] })

	var frequent []ItemSet
	supMap := map[string]float64{}
	record := func(items []string) {
		s := support(items)
		frequent = append(frequent, ItemSet{Items: append([]string(nil), items...), Support: s})
		supMap[strings.Join(items, "\x00")] = s
	}
	for _, l1 := range level {
		record(l1)
	}

	// Level-wise growth.
	for len(level) > 0 {
		var next [][]string
		seen := map[string]bool{}
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				cand := joinPrefix(level[i], level[j])
				if cand == nil {
					continue
				}
				key := strings.Join(cand, "\x00")
				if seen[key] {
					continue
				}
				seen[key] = true
				if !allSubsetsFrequent(cand, supMap) {
					continue
				}
				if support(cand) >= minSupport {
					next = append(next, cand)
				}
			}
		}
		sort.Slice(next, func(i, j int) bool {
			return strings.Join(next[i], "\x00") < strings.Join(next[j], "\x00")
		})
		for _, c := range next {
			record(c)
		}
		level = next
	}

	// Rules from every frequent itemset with >= 2 items.
	var rules []AssocRule
	for _, fs := range frequent {
		if len(fs.Items) < 2 {
			continue
		}
		for _, ante := range properSubsets(fs.Items) {
			cons := difference(fs.Items, ante)
			sa := supMap[strings.Join(ante, "\x00")]
			if sa == 0 {
				continue
			}
			conf := fs.Support / sa
			if conf < minConfidence {
				continue
			}
			sc := supMap[strings.Join(cons, "\x00")]
			lift := 0.0
			if sc > 0 {
				lift = conf / sc
			}
			rules = append(rules, AssocRule{
				Antecedent: ante, Consequent: cons,
				Support: fs.Support, Confidence: conf, Lift: lift,
			})
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		return rules[i].Support > rules[j].Support
	})
	return frequent, rules
}

// joinPrefix merges two sorted k-itemsets sharing the first k-1 items.
func joinPrefix(a, b []string) []string {
	k := len(a)
	for i := 0; i < k-1; i++ {
		if a[i] != b[i] {
			return nil
		}
	}
	if a[k-1] >= b[k-1] {
		return nil
	}
	out := append(append([]string(nil), a...), b[k-1])
	return out
}

func allSubsetsFrequent(items []string, sup map[string]float64) bool {
	for i := range items {
		sub := append(append([]string(nil), items[:i]...), items[i+1:]...)
		if _, ok := sup[strings.Join(sub, "\x00")]; !ok {
			return false
		}
	}
	return true
}

// properSubsets returns all non-empty proper subsets (sorted slices).
func properSubsets(items []string) [][]string {
	n := len(items)
	var out [][]string
	for mask := 1; mask < (1<<n)-1; mask++ {
		var s []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, items[i])
			}
		}
		out = append(out, s)
	}
	return out
}

func difference(all, sub []string) []string {
	inSub := map[string]bool{}
	for _, s := range sub {
		inSub[s] = true
	}
	var out []string
	for _, a := range all {
		if !inSub[a] {
			out = append(out, a)
		}
	}
	return out
}
