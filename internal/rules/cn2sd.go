// Package rules implements rule learning: the CN2-SD subgroup-discovery
// algorithm ([9]) used by the paper's template-refinement (Table 1) and
// speed-path-diagnosis (Figure 10) applications, and Apriori association
// rule mining ([26]). A learned rule such as
//
//	if via45 > 18 and via56 > 15 then slow
//
// is exactly the interpretable, actionable knowledge the paper's Section 5
// calls the purpose of knowledge discovery.
package rules

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/parallel"
)

// Op is a comparison operator in a rule condition.
type Op int

// Supported operators.
const (
	LE Op = iota // feature <= threshold
	GT           // feature >  threshold
)

// Condition is one conjunct of a rule.
type Condition struct {
	Feature   int
	Op        Op
	Threshold float64
	Name      string // feature name for rendering
}

// Matches reports whether sample x satisfies the condition.
func (c Condition) Matches(x []float64) bool {
	if c.Op == LE {
		return x[c.Feature] <= c.Threshold
	}
	return x[c.Feature] > c.Threshold
}

// String renders the condition.
func (c Condition) String() string {
	name := c.Name
	if name == "" {
		name = fmt.Sprintf("f%d", c.Feature)
	}
	op := "<="
	if c.Op == GT {
		op = ">"
	}
	return fmt.Sprintf("%s %s %.4g", name, op, c.Threshold)
}

// Rule is a conjunction of conditions predicting a target class.
type Rule struct {
	Conditions []Condition
	Class      int
	WRAcc      float64 // weighted relative accuracy at selection time
	Coverage   int     // samples covered in the training set
	Positives  int     // covered samples of the target class
}

// Matches reports whether the rule fires on x.
func (r *Rule) Matches(x []float64) bool {
	for _, c := range r.Conditions {
		if !c.Matches(x) {
			return false
		}
	}
	return true
}

// Precision returns Positives/Coverage.
func (r *Rule) Precision() float64 {
	if r.Coverage == 0 {
		return 0
	}
	return float64(r.Positives) / float64(r.Coverage)
}

// String renders the rule.
func (r *Rule) String() string {
	if len(r.Conditions) == 0 {
		return fmt.Sprintf("if true then class=%d", r.Class)
	}
	parts := make([]string, len(r.Conditions))
	for i, c := range r.Conditions {
		parts[i] = c.String()
	}
	return fmt.Sprintf("if %s then class=%d (cov=%d prec=%.2f wracc=%.4f)",
		strings.Join(parts, " and "), r.Class, r.Coverage, r.Precision(), r.WRAcc)
}

// CN2SDConfig controls subgroup discovery.
type CN2SDConfig struct {
	MaxRules      int     // rules to extract, default 5
	MaxConditions int     // conjuncts per rule, default 3
	BeamWidth     int     // beam search width, default 5
	MinCoverage   int     // minimum covered samples, default 2
	Gamma         float64 // multiplicative covering weight in (0,1), default 0.5
	Thresholds    int     // candidate thresholds per feature, default 8
}

// CN2SD runs the CN2-SD weighted-covering subgroup discovery for the given
// target class. Unlike classical CN2, covered examples are down-weighted
// (not removed), so later rules may describe overlapping subgroups; rule
// quality is weighted relative accuracy (WRAcc).
func CN2SD(d *dataset.Dataset, target int, cfg CN2SDConfig) ([]*Rule, error) {
	if d.Len() == 0 {
		return nil, errors.New("rules: empty dataset")
	}
	if cfg.MaxRules <= 0 {
		cfg.MaxRules = 5
	}
	if cfg.MaxConditions <= 0 {
		cfg.MaxConditions = 3
	}
	if cfg.BeamWidth <= 0 {
		cfg.BeamWidth = 5
	}
	if cfg.MinCoverage <= 0 {
		cfg.MinCoverage = 2
	}
	if cfg.Gamma <= 0 || cfg.Gamma >= 1 {
		cfg.Gamma = 0.5
	}
	if cfg.Thresholds <= 0 {
		cfg.Thresholds = 8
	}

	n := d.Len()
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	pos := make([]bool, n)
	anyPos := false
	for i, y := range d.Y {
		if int(y) == target {
			pos[i] = true
			anyPos = true
		}
	}
	if !anyPos {
		return nil, fmt.Errorf("rules: no samples of class %d", target)
	}

	cands := candidateConditions(d, cfg.Thresholds)
	var out []*Rule
	for len(out) < cfg.MaxRules {
		r := beamSearch(d, pos, w, target, cands, cfg)
		if r == nil || r.WRAcc <= 1e-9 {
			break
		}
		out = append(out, r)
		// Down-weight covered positives (weighted covering).
		for i := 0; i < n; i++ {
			if pos[i] && r.Matches(d.Row(i)) {
				w[i] *= cfg.Gamma
			}
		}
	}
	if len(out) == 0 {
		return nil, errors.New("rules: no rule exceeded baseline quality")
	}
	return out, nil
}

// candidateConditions builds threshold candidates from feature quantiles.
func candidateConditions(d *dataset.Dataset, nThr int) []Condition {
	var out []Condition
	sorted := make([]float64, d.Len())
	for j := 0; j < d.Dim(); j++ {
		d.X.ColInto(j, sorted)
		sort.Float64s(sorted)
		seen := map[float64]bool{}
		for t := 1; t <= nThr; t++ {
			q := float64(t) / float64(nThr+1)
			v := sorted[int(q*float64(len(sorted)-1))]
			if seen[v] {
				continue
			}
			seen[v] = true
			name := d.FeatureName(j)
			out = append(out,
				Condition{Feature: j, Op: LE, Threshold: v, Name: name},
				Condition{Feature: j, Op: GT, Threshold: v, Name: name})
		}
	}
	return out
}

// wracc computes the weighted relative accuracy of a condition set:
// (cov/N) * (p(pos|cov) − p(pos)).
func wracc(d *dataset.Dataset, pos []bool, w []float64, conds []Condition) (q float64, cov, covPos int) {
	var wTotal, wPos, wCov, wCovPos float64
	for i := 0; i < d.Len(); i++ {
		wTotal += w[i]
		if pos[i] {
			wPos += w[i]
		}
		matched := true
		for _, c := range conds {
			if !c.Matches(d.Row(i)) {
				matched = false
				break
			}
		}
		if matched {
			wCov += w[i]
			cov++
			if pos[i] {
				wCovPos += w[i]
				covPos++
			}
		}
	}
	if wCov == 0 || wTotal == 0 {
		return 0, cov, covPos
	}
	return (wCov / wTotal) * (wCovPos/wCov - wPos/wTotal), cov, covPos
}

type beamEntry struct {
	conds []Condition
	q     float64
	cov   int
	pos   int
}

func beamSearch(d *dataset.Dataset, pos []bool, w []float64, target int,
	cands []Condition, cfg CN2SDConfig) *Rule {

	beam := []beamEntry{{}}
	var best beamEntry
	best.q = math.Inf(-1)

	for depth := 0; depth < cfg.MaxConditions; depth++ {
		var next []beamEntry
		for _, b := range beam {
			for _, c := range cands {
				if usesFeatureOp(b.conds, c) {
					continue
				}
				conds := append(append([]Condition(nil), b.conds...), c)
				q, cov, cp := wracc(d, pos, w, conds)
				if cov < cfg.MinCoverage {
					continue
				}
				next = append(next, beamEntry{conds, q, cov, cp})
			}
		}
		if len(next) == 0 {
			break
		}
		sort.Slice(next, func(i, j int) bool { return next[i].q > next[j].q })
		if len(next) > cfg.BeamWidth {
			next = next[:cfg.BeamWidth]
		}
		beam = next
		if beam[0].q > best.q {
			best = beam[0]
		}
	}
	if len(best.conds) == 0 {
		return nil
	}
	return &Rule{Conditions: best.conds, Class: target,
		WRAcc: best.q, Coverage: best.cov, Positives: best.pos}
}

// usesFeatureOp avoids stacking a duplicate (feature, op) conjunct.
func usesFeatureOp(conds []Condition, c Condition) bool {
	for _, e := range conds {
		if e.Feature == c.Feature && e.Op == c.Op {
			return true
		}
	}
	return false
}

// CN2Classic runs classical CN2 covering for comparison with CN2-SD: after
// each rule is selected, the covered examples are REMOVED rather than
// down-weighted. The ablation shows why the paper's applications use the
// subgroup-discovery variant: removal fragments overlapping subgroups and
// later rules see ever-thinner data.
func CN2Classic(d *dataset.Dataset, target int, cfg CN2SDConfig) ([]*Rule, error) {
	if d.Len() == 0 {
		return nil, errors.New("rules: empty dataset")
	}
	if cfg.MaxRules <= 0 {
		cfg.MaxRules = 5
	}
	if cfg.MaxConditions <= 0 {
		cfg.MaxConditions = 3
	}
	if cfg.BeamWidth <= 0 {
		cfg.BeamWidth = 5
	}
	if cfg.MinCoverage <= 0 {
		cfg.MinCoverage = 2
	}
	if cfg.Thresholds <= 0 {
		cfg.Thresholds = 8
	}

	remaining := make([]int, d.Len())
	for i := range remaining {
		remaining[i] = i
	}
	var out []*Rule
	for len(out) < cfg.MaxRules && len(remaining) > cfg.MinCoverage {
		sub := d.Subset(remaining)
		pos := make([]bool, sub.Len())
		anyPos := false
		for i, y := range sub.Y {
			if int(y) == target {
				pos[i] = true
				anyPos = true
			}
		}
		if !anyPos {
			break
		}
		w := make([]float64, sub.Len())
		for i := range w {
			w[i] = 1
		}
		cands := candidateConditions(sub, cfg.Thresholds)
		r := beamSearch(sub, pos, w, target, cands, cfg)
		if r == nil || r.WRAcc <= 1e-9 {
			break
		}
		out = append(out, r)
		// Remove everything the rule covers.
		var keep []int
		for i, gi := range remaining {
			if !r.Matches(sub.Row(i)) {
				keep = append(keep, gi)
			}
		}
		remaining = keep
	}
	if len(out) == 0 {
		return nil, errors.New("rules: no rule exceeded baseline quality")
	}
	return out, nil
}

// RuleSet bundles rules for prediction: a sample is classified as the
// target class when any rule fires (paper-style usage: rules feed back to
// an engineer, prediction is secondary).
type RuleSet struct {
	Rules   []*Rule
	Target  int
	Default int
}

// Predict returns Target if any rule fires, Default otherwise.
func (rs *RuleSet) Predict(x []float64) float64 {
	for _, r := range rs.Rules {
		if r.Matches(x) {
			return float64(rs.Target)
		}
	}
	return float64(rs.Default)
}

// Validate checks the structural invariants of a fitted (or decoded)
// rule set for inputs of the given width: every condition uses a known
// operator, a finite threshold, and a feature index inside [0, dim), and
// every rule's bookkeeping satisfies 0 ≤ Positives ≤ Coverage with a
// finite WRAcc. A valid rule set classifies any dim-wide input (some
// rule fires, or the default class applies) — the coverage invariant the
// conformance suite asserts on every generated fit and decoded artifact.
func (rs *RuleSet) Validate(dim int) error {
	for ri, r := range rs.Rules {
		if r.Coverage < 0 || r.Positives < 0 || r.Positives > r.Coverage {
			return fmt.Errorf("rules: rule %d has positives=%d coverage=%d", ri, r.Positives, r.Coverage)
		}
		if math.IsNaN(r.WRAcc) || math.IsInf(r.WRAcc, 0) {
			return fmt.Errorf("rules: rule %d has non-finite wracc %v", ri, r.WRAcc)
		}
		for ci, c := range r.Conditions {
			if c.Op != LE && c.Op != GT {
				return fmt.Errorf("rules: rule %d condition %d has unknown op %d", ri, ci, c.Op)
			}
			if c.Feature < 0 || c.Feature >= dim {
				return fmt.Errorf("rules: rule %d condition %d uses feature %d outside [0,%d)",
					ri, ci, c.Feature, dim)
			}
			if math.IsNaN(c.Threshold) {
				return fmt.Errorf("rules: rule %d condition %d has NaN threshold", ri, ci)
			}
		}
	}
	return nil
}

// PredictAll predicts every row of d.
func (rs *RuleSet) PredictAll(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = rs.Predict(d.Row(i))
	}
	return out
}

// PredictBatch returns Predict for every row of x, striping rows across
// the worker pool. Rule matching is read-only on the fitted set, so the
// result is bit-identical at any worker count.
func (rs *RuleSet) PredictBatch(x *linalg.Matrix) []float64 {
	return rs.PredictBatchInto(x, make([]float64, x.Rows))
}

// PredictBatchInto is PredictBatch writing into a caller-provided slice
// of length x.Rows. The serial path calls the matching loop directly —
// no closure, no goroutines — so a steady-state batch allocates nothing
// (alloc_test.go pins this at 0 allocs/op).
func (rs *RuleSet) PredictBatchInto(x *linalg.Matrix, out []float64) []float64 {
	if len(out) != x.Rows {
		panic("rules: PredictBatchInto output length mismatch")
	}
	if parallel.Workers() <= 1 || x.Rows < batchCutover {
		rs.predictRange(x, out, 0, x.Rows)
	} else {
		parallel.ForN(x.Rows, batchCutover, func(lo, hi int) {
			rs.predictRange(x, out, lo, hi)
		})
	}
	return out
}

// batchCutover keeps small prediction batches serial: matching a few
// hundred rows is too cheap to amortize goroutine startup.
const batchCutover = 256

func (rs *RuleSet) predictRange(x *linalg.Matrix, out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = rs.Predict(x.Row(i))
	}
}
