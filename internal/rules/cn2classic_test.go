package rules

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestCN2ClassicFindsPlantedRule(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 400
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 20, rng.NormFloat64()}
		if rows[i][0] > 14 {
			y[i] = 1
		}
	}
	d := dataset.FromRows(rows, y)
	rs, err := CN2Classic(d, 1, CN2SDConfig{MaxRules: 3, MaxConditions: 1, Thresholds: 10})
	if err != nil {
		t.Fatal(err)
	}
	top := rs[0]
	if len(top.Conditions) == 0 || top.Conditions[0].Feature != 0 || top.Conditions[0].Op != GT {
		t.Fatalf("top rule misses planted condition: %s", top)
	}
	if top.Precision() < 0.85 {
		t.Fatalf("precision %g", top.Precision())
	}
}

func TestCN2ClassicValidation(t *testing.T) {
	if _, err := CN2Classic(dataset.FromRows(nil, nil), 1, CN2SDConfig{}); err == nil {
		t.Fatal("empty accepted")
	}
	d := dataset.FromRows([][]float64{{1}, {2}, {3}}, []float64{0, 0, 0})
	if _, err := CN2Classic(d, 1, CN2SDConfig{}); err == nil {
		t.Fatal("missing class accepted")
	}
}

func TestWeightedCoveringAblation(t *testing.T) {
	// DESIGN.md ablation: CN2-SD weighted covering vs classic removal.
	// Target concept: f0 > 8 OR (f0 > 6 AND f1 > 8) — overlapping
	// subgroups. Classic covering removes the shared region with the first
	// rule; CN2-SD keeps it at reduced weight, so across several runs its
	// rule set retains higher average coverage per rule.
	rng := rand.New(rand.NewSource(2))
	n := 600
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		if rows[i][0] > 8 || (rows[i][0] > 6 && rows[i][1] > 8) {
			y[i] = 1
		}
	}
	d := dataset.FromRows(rows, y)
	cfg := CN2SDConfig{MaxRules: 3, MaxConditions: 2, Thresholds: 9}
	sd, err := CN2SD(d, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	classic, err := CN2Classic(d, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both find rules; the SD rules, evaluated on the FULL dataset, keep
	// full-coverage statistics, while classic rules after the first were
	// selected on fragments.
	if len(sd) == 0 || len(classic) == 0 {
		t.Fatal("no rules")
	}
	avgCov := func(rs []*Rule) float64 {
		s := 0.0
		for _, r := range rs {
			s += float64(r.Coverage)
		}
		return s / float64(len(rs))
	}
	if len(classic) > 1 && avgCov(sd) < avgCov(classic) {
		t.Fatalf("weighted covering should retain coverage: sd=%.1f classic=%.1f",
			avgCov(sd), avgCov(classic))
	}
}
