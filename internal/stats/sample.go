package stats

import (
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// MVNSampler draws samples from a multivariate normal distribution
// N(mean, cov) using the Cholesky factor of cov. It powers the correlated
// parametric-test generator in internal/mfgtest.
type MVNSampler struct {
	Mean []float64
	chol *linalg.Matrix
}

// NewMVNSampler prepares a sampler for N(mean, cov). cov must be symmetric
// positive definite.
func NewMVNSampler(mean []float64, cov *linalg.Matrix) (*MVNSampler, error) {
	l, err := linalg.Cholesky(cov)
	if err != nil {
		return nil, err
	}
	return &MVNSampler{Mean: linalg.CopyVec(mean), chol: l}, nil
}

// Sample draws one vector.
func (s *MVNSampler) Sample(rng *rand.Rand) []float64 {
	n := len(s.Mean)
	z := make([]float64, n)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	x := linalg.CopyVec(s.Mean)
	for i := 0; i < n; i++ {
		row := s.chol.Row(i)
		for k := 0; k <= i; k++ {
			x[i] += row[k] * z[k]
		}
	}
	return x
}

// SampleN draws n vectors as rows of a matrix.
func (s *MVNSampler) SampleN(rng *rand.Rand, n int) *linalg.Matrix {
	m := linalg.NewMatrix(n, len(s.Mean))
	for i := 0; i < n; i++ {
		copy(m.Row(i), s.Sample(rng))
	}
	return m
}

// EquiCorrCov builds a d-dimensional covariance matrix with unit variances
// scaled by sigma and constant pairwise correlation rho.
func EquiCorrCov(d int, sigma, rho float64) *linalg.Matrix {
	c := linalg.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			if i == j {
				c.Set(i, j, sigma*sigma)
			} else {
				c.Set(i, j, rho*sigma*sigma)
			}
		}
	}
	return c
}

// Shuffle permutes idx in place using rng.
func Shuffle(rng *rand.Rand, idx []int) {
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}

// Perm returns a random permutation of [0, n).
func Perm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// WeightedChoice returns an index sampled proportionally to the nonnegative
// weights. It panics if all weights are zero or negative.
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("stats: WeightedChoice requires a positive weight")
	}
	r := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if r < acc {
			return i
		}
	}
	return len(weights) - 1
}

// LogNormal draws from a lognormal distribution with the given log-space
// mean and sigma.
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool { return rng.Float64() < p }
