package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g want %g (tol %g)", msg, got, want, tol)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "mean")
	approx(t, PopVariance(xs), 4, 1e-12, "pop variance")
	approx(t, Variance(xs), 32.0/7.0, 1e-12, "sample variance")
	approx(t, StdDev(xs), math.Sqrt(32.0/7.0), 1e-12, "stddev")
	approx(t, Mean(nil), 0, 0, "empty mean")
	approx(t, Variance([]float64{1}), 0, 0, "single variance")
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	approx(t, Correlation(xs, ys), 1, 1e-12, "perfect corr")
	neg := []float64{10, 8, 6, 4, 2}
	approx(t, Correlation(xs, neg), -1, 1e-12, "perfect anticorr")
	approx(t, Correlation(xs, []float64{3, 3, 3, 3, 3}), 0, 0, "constant corr")
	approx(t, Covariance(xs, ys), 5, 1e-12, "cov")
}

func TestQuantilesAndMAD(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	approx(t, Median(xs), 3, 1e-12, "median")
	approx(t, Quantile(xs, 0), 1, 0, "q0")
	approx(t, Quantile(xs, 1), 5, 0, "q1")
	approx(t, Quantile(xs, 0.25), 2, 1e-12, "q25")
	approx(t, MAD(xs), 1, 1e-12, "mad")
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("expected NaN for empty quantile")
	}
}

func TestMinMaxArg(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	approx(t, Min(xs), -1, 0, "min")
	approx(t, Max(xs), 7, 0, "max")
	if ArgMax(xs) != 2 || ArgMin(xs) != 1 {
		t.Fatalf("argmax/argmin: %d %d", ArgMax(xs), ArgMin(xs))
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Fatal("empty arg should be -1")
	}
}

func TestStandardize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	z, mean, std := Standardize(xs)
	approx(t, mean, 3, 1e-12, "mean")
	approx(t, Mean(z), 0, 1e-12, "standardized mean")
	approx(t, StdDev(z), 1, 1e-12, "standardized std")
	_ = std
	// Constant input must not divide by zero.
	z2, _, s2 := Standardize([]float64{7, 7, 7})
	approx(t, s2, 1, 0, "constant std fallback")
	approx(t, z2[0], 0, 0, "constant standardized")
}

func TestNormalDistribution(t *testing.T) {
	approx(t, NormalPDF(0, 0, 1), 1/math.Sqrt(2*math.Pi), 1e-12, "pdf(0)")
	approx(t, NormalCDF(0, 0, 1), 0.5, 1e-12, "cdf(0)")
	approx(t, NormalCDF(1.96, 0, 1), 0.975, 1e-3, "cdf(1.96)")
	approx(t, NormalLogPDF(0, 0, 1), math.Log(NormalPDF(0, 0, 1)), 1e-12, "logpdf")
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		x := NormalQuantile(p)
		approx(t, NormalCDF(x, 0, 1), p, 1e-6, "quantile/cdf roundtrip")
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("boundary quantiles must be infinite")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9, -5, 10}
	h := Histogram(xs, 0, 1, 2, false)
	// -5 clamps into bin 0, 10 clamps into bin 1.
	approx(t, h[0], 3, 0, "bin0")
	approx(t, h[1], 3, 0, "bin1")
	hn := Histogram(xs, 0, 1, 2, true)
	approx(t, hn[0]+hn[1], 1, 1e-12, "normalized histogram sums to 1")
}

func TestHistogramMassProperty(t *testing.T) {
	f := func(raw []float64) bool {
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		h := Histogram(raw, -1, 1, 8, false)
		return Sum(h) == float64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMVNSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cov := EquiCorrCov(3, 2.0, 0.8)
	s, err := NewMVNSampler([]float64{1, -1, 0}, cov)
	if err != nil {
		t.Fatal(err)
	}
	n := 20000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		v := s.Sample(rng)
		xs[i] = v[0]
		ys[i] = v[1]
	}
	approx(t, Mean(xs), 1, 0.06, "mvn mean x")
	approx(t, Mean(ys), -1, 0.06, "mvn mean y")
	approx(t, StdDev(xs), 2, 0.08, "mvn std x")
	approx(t, Correlation(xs, ys), 0.8, 0.02, "mvn correlation")
}

func TestMVNSamplerRejectsBadCov(t *testing.T) {
	bad := linalg.FromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := NewMVNSampler([]float64{0, 0}, bad); err == nil {
		t.Fatal("expected error for indefinite covariance")
	}
}

func TestWeightedChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, 3)
	w := []float64{1, 0, 3}
	for i := 0; i < 40000; i++ {
		counts[WeightedChoice(rng, w)]++
	}
	if counts[1] != 0 {
		t.Fatal("zero-weight option was chosen")
	}
	ratio := float64(counts[2]) / float64(counts[0])
	approx(t, ratio, 3, 0.2, "weighted choice ratio")
}

func TestWeightedChoicePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WeightedChoice(rand.New(rand.NewSource(1)), []float64{0, 0})
}

func TestLogNormalAndBernoulli(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, 20000)
	for i := range vals {
		vals[i] = LogNormal(rng, 0, 0.25)
	}
	// Median of lognormal is exp(mu).
	approx(t, Median(vals), 1, 0.03, "lognormal median")
	hits := 0
	for i := 0; i < 10000; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	approx(t, float64(hits)/10000, 0.3, 0.02, "bernoulli rate")
}

func TestSumAndPermShuffle(t *testing.T) {
	approx(t, Sum([]float64{1, 2, 3}), 6, 0, "sum")
	rng := rand.New(rand.NewSource(3))
	p := Perm(rng, 10)
	seen := make(map[int]bool)
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatal("Perm is not a permutation")
	}
	idx := []int{0, 1, 2, 3, 4}
	Shuffle(rng, idx)
	seen2 := make(map[int]bool)
	for _, v := range idx {
		seen2[v] = true
	}
	if len(seen2) != 5 {
		t.Fatal("Shuffle lost elements")
	}
}
