// Package stats provides the descriptive statistics, probability
// distributions, and random sampling primitives shared by the learning
// algorithms and the EDA data generators in this repository.
//
// All stochastic routines take an explicit *rand.Rand so that every
// experiment in the repository is reproducible bit-for-bit.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 if len < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PopVariance returns the population (biased, 1/n) variance.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(n)
}

// Covariance returns the unbiased sample covariance of paired samples.
func Covariance(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) {
		panic("stats: Covariance length mismatch")
	}
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n-1)
}

// Correlation returns the Pearson correlation coefficient of paired samples,
// or 0 when either series is constant.
func Correlation(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	return Covariance(xs, ys) / (sx * sy)
}

// Min returns the smallest element (NaN for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest element (NaN for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Quantile returns the q-quantile (0<=q<=1) of xs using linear interpolation
// between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MAD returns the median absolute deviation from the median, a robust scale
// estimator used by the outlier-screening applications.
func MAD(xs []float64) float64 {
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, v := range xs {
		dev[i] = math.Abs(v - m)
	}
	return Median(dev)
}

// Standardize returns (xs - mean)/std, along with the mean and std used.
// A zero std is replaced by 1 to keep constant features finite.
func Standardize(xs []float64) (z []float64, mean, std float64) {
	mean = Mean(xs)
	std = StdDev(xs)
	if std == 0 {
		std = 1
	}
	z = make([]float64, len(xs))
	for i, v := range xs {
		z[i] = (v - mean) / std
	}
	return z, mean, std
}

// ArgMax returns the index of the largest element (-1 for empty input).
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
		_ = v
	}
	return best
}

// ArgMin returns the index of the smallest element (-1 for empty input).
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, v := range xs {
		if v < xs[best] {
			best = i
		}
		_ = v
	}
	return best
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

// NormalPDF returns the density of N(mu, sigma²) at x.
func NormalPDF(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-0.5*d*d) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalLogPDF returns the log density of N(mu, sigma²) at x.
func NormalLogPDF(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return -0.5*d*d - math.Log(sigma) - 0.5*math.Log(2*math.Pi)
}

// NormalCDF returns P(X <= x) for X ~ N(mu, sigma²).
func NormalCDF(x, mu, sigma float64) float64 {
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// NormalQuantile returns the inverse CDF of the standard normal using the
// Acklam rational approximation (|error| < 1.15e-9), suitable for the
// limit-setting in the manufacturing-test substrate.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	return x
}

// Histogram bins xs into nbins equal-width bins over [lo, hi] and returns
// the (optionally normalized) counts. Values outside the range are clamped
// into the first/last bin so that density features never drop mass.
func Histogram(xs []float64, lo, hi float64, nbins int, normalize bool) []float64 {
	h := make([]float64, nbins)
	if nbins == 0 || hi <= lo {
		return h
	}
	w := (hi - lo) / float64(nbins)
	for _, v := range xs {
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		h[b]++
	}
	if normalize && len(xs) > 0 {
		for i := range h {
			h[i] /= float64(len(xs))
		}
	}
	return h
}
