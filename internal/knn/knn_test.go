package knn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/validate"
)

func TestDistances(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if Euclidean(a, b) != 5 {
		t.Fatal("euclidean")
	}
	if Manhattan(a, b) != 7 {
		t.Fatal("manhattan")
	}
	if Chebyshev(a, b) != 4 {
		t.Fatal("chebyshev")
	}
}

func TestFitValidation(t *testing.T) {
	d := dataset.FromRows([][]float64{{1}}, []float64{0})
	if _, err := Fit(dataset.FromRows(nil, nil), 1, nil); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if _, err := Fit(d, 0, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
	m, err := Fit(d, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 1 {
		t.Fatalf("k should clamp to n, got %d", m.K)
	}
}

func TestClassifyTwoGaussians(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := dataset.TwoGaussians(rng, 100, 2, 4, 1)
	tr, te := d.StratifiedSplit(rng, 0.7)
	m, err := Fit(tr, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := validate.Accuracy(m.ClassifyAll(te), te.Y)
	if acc < 0.93 {
		t.Fatalf("knn accuracy %g", acc)
	}
}

func TestClassifyNonlinearRing(t *testing.T) {
	// kNN handles Figure 3's ring-and-core without any kernel.
	rng := rand.New(rand.NewSource(2))
	d := dataset.RingAndCore(rng, 150, 1, 3, 0.05)
	tr, te := d.StratifiedSplit(rng, 0.7)
	m, _ := Fit(tr, 3, nil)
	acc := validate.Accuracy(m.ClassifyAll(te), te.Y)
	if acc < 0.97 {
		t.Fatalf("knn ring accuracy %g", acc)
	}
}

func TestK1MemorizesTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := dataset.TwoGaussians(rng, 50, 3, 2, 1)
	m, _ := Fit(d, 1, nil)
	acc := validate.Accuracy(m.ClassifyAll(d), d.Y)
	if acc != 1 {
		t.Fatalf("1-NN training accuracy must be 1, got %g", acc)
	}
}

func TestRegress(t *testing.T) {
	// y = x on a grid; interpolation at midpoints should be close.
	rows := [][]float64{{0}, {1}, {2}, {3}, {4}}
	y := []float64{0, 1, 2, 3, 4}
	d := dataset.FromRows(rows, y)
	m, _ := Fit(d, 2, nil)
	got := m.Regress([]float64{1.5})
	if math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("regress midpoint %g", got)
	}
	mw, _ := Fit(d, 2, nil)
	mw.Weighted = true
	got = mw.Regress([]float64{1.1})
	if got < 1 || got > 1.5 {
		t.Fatalf("weighted regress %g", got)
	}
	all := m.RegressAll(d)
	if len(all) != 5 {
		t.Fatal("RegressAll length")
	}
}

func TestWeightedVotingBreaksMajority(t *testing.T) {
	// Two far class-1 points vs one coincident class-0 point: unweighted
	// 3-NN says 1, weighted says 0.
	rows := [][]float64{{0}, {10}, {10.5}}
	y := []float64{0, 1, 1}
	d := dataset.FromRows(rows, y)
	m, _ := Fit(d, 3, nil)
	if m.Classify([]float64{0.01}) != 1 {
		t.Fatal("unweighted majority should pick 1")
	}
	m.Weighted = true
	if m.Classify([]float64{0.01}) != 0 {
		t.Fatal("weighted vote should pick the near point")
	}
}

func BenchmarkClassify1000(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	d := dataset.TwoGaussians(rng, 500, 8, 3, 1)
	m, _ := Fit(d, 5, nil)
	q := d.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Classify(q)
	}
}
