// Package knn implements k-nearest-neighbor classification and regression —
// the first of the four basic learning ideas in Section 2.1 of the paper:
// infer the label of a point from the majority (or average) of the points
// surrounding it.
package knn

import (
	"errors"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/linalg"
)

// Distance measures dissimilarity between two samples.
type Distance func(a, b []float64) float64

// Euclidean is the default distance.
func Euclidean(a, b []float64) float64 { return linalg.Dist(a, b) }

// Manhattan is the L1 distance.
func Manhattan(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Chebyshev is the L∞ distance.
func Chebyshev(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Model is a fitted (memorized) k-NN model.
type Model struct {
	K        int
	Dist     Distance
	Weighted bool // distance-weighted votes/averages
	train    *dataset.Dataset
}

// Fit memorizes the training set.
func Fit(d *dataset.Dataset, k int, dist Distance) (*Model, error) {
	if d.Len() == 0 {
		return nil, errors.New("knn: empty dataset")
	}
	if k < 1 {
		return nil, errors.New("knn: k must be >= 1")
	}
	if k > d.Len() {
		k = d.Len()
	}
	if dist == nil {
		dist = Euclidean
	}
	return &Model{K: k, Dist: dist, train: d}, nil
}

type neighbor struct {
	idx int
	d   float64
}

func (m *Model) neighbors(x []float64) []neighbor {
	ns := make([]neighbor, m.train.Len())
	for i := 0; i < m.train.Len(); i++ {
		ns[i] = neighbor{i, m.Dist(x, m.train.Row(i))}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i].d < ns[j].d })
	return ns[:m.K]
}

// Classify returns the majority class among the k nearest neighbors
// (distance-weighted when Weighted is set). Ties break toward the smaller
// class label for determinism.
func (m *Model) Classify(x []float64) float64 {
	votes := map[int]float64{}
	for _, n := range m.neighbors(x) {
		w := 1.0
		if m.Weighted {
			w = 1.0 / (n.d + 1e-9)
		}
		votes[int(m.train.Y[n.idx])] += w
	}
	bestC, bestV := 0, math.Inf(-1)
	for c, v := range votes {
		if v > bestV || (v == bestV && c < bestC) {
			bestC, bestV = c, v
		}
	}
	return float64(bestC)
}

// Regress returns the (optionally distance-weighted) mean label of the k
// nearest neighbors.
func (m *Model) Regress(x []float64) float64 {
	num, den := 0.0, 0.0
	for _, n := range m.neighbors(x) {
		w := 1.0
		if m.Weighted {
			w = 1.0 / (n.d + 1e-9)
		}
		num += w * m.train.Y[n.idx]
		den += w
	}
	return num / den
}

// ClassifyAll classifies every row of d.
func (m *Model) ClassifyAll(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = m.Classify(d.Row(i))
	}
	return out
}

// RegressAll regresses every row of d.
func (m *Model) RegressAll(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = m.Regress(d.Row(i))
	}
	return out
}
