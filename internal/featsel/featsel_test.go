package featsel

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/validate"
)

// informativeData builds a dataset where feature 0 separates the classes,
// feature 1 is weakly informative, feature 2 is noise.
func informativeData(rng *rand.Rand, n int) *dataset.Dataset {
	rows := make([][]float64, 2*n)
	y := make([]float64, 2*n)
	for i := 0; i < 2*n; i++ {
		c := 0.0
		if i >= n {
			c = 1
		}
		y[i] = c
		rows[i] = []float64{
			c*6 + rng.NormFloat64(),
			c*1 + rng.NormFloat64(),
			rng.NormFloat64(),
		}
	}
	return dataset.MustNew(dataset.FromRows(rows, y).X, y, []string{"strong", "weak", "noise"})
}

func TestFisherScoresOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := informativeData(rng, 200)
	scores, err := FisherScores(d)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].Feature != 0 || scores[0].Name != "strong" {
		t.Fatalf("top feature %+v", scores[0])
	}
	if scores[2].Feature != 2 {
		t.Fatalf("noise should rank last: %+v", scores)
	}
}

func TestFisherBinaryOnly(t *testing.T) {
	d := dataset.FromRows([][]float64{{1}, {2}, {3}}, []float64{0, 1, 2})
	if _, err := FisherScores(d); err == nil {
		t.Fatal("multiclass accepted")
	}
}

func TestCorrelationScores(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := informativeData(rng, 200)
	scores := CorrelationScores(d)
	if scores[0].Feature != 0 {
		t.Fatalf("top feature %+v", scores[0])
	}
	if TopK(scores, 2)[0] != 0 {
		t.Fatal("TopK order")
	}
	if len(TopK(scores, 99)) != 3 {
		t.Fatal("TopK clamp")
	}
}

func TestOutlierSeparationFindsReturnTests(t *testing.T) {
	// Extreme imbalance: 1000 passing parts, 3 returns. The returns are
	// outliers only in feature 1.
	rng := rand.New(rand.NewSource(3))
	n := 1000
	rows := make([][]float64, n+3)
	y := make([]float64, n+3)
	for i := 0; i < n; i++ {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	for i := n; i < n+3; i++ {
		rows[i] = []float64{rng.NormFloat64(), 8 + rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 1
	}
	d := dataset.MustNew(dataset.FromRows(rows, y).X, y, []string{"t1", "t2", "t3"})
	scores, err := OutlierSeparation(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].Feature != 1 {
		t.Fatalf("should pick the separating test: %+v", scores)
	}
	if scores[0].Value < 3 {
		t.Fatalf("separation score too low: %+v", scores[0])
	}
	if _, err := OutlierSeparation(d, 7); err == nil {
		t.Fatal("missing positive class accepted")
	}
}

func TestGreedyForwardImprovesAndStops(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := informativeData(rng, 150)
	evalCalls := 0
	eval := func(sub *dataset.Dataset) float64 {
		evalCalls++
		// Score a nearest-centroid classifier's training accuracy.
		pred := make([]float64, sub.Len())
		c0 := make([]float64, sub.Dim())
		c1 := make([]float64, sub.Dim())
		n0, n1 := 0.0, 0.0
		for i := 0; i < sub.Len(); i++ {
			row := sub.Row(i)
			if sub.Y[i] == 0 {
				for j := range row {
					c0[j] += row[j]
				}
				n0++
			} else {
				for j := range row {
					c1[j] += row[j]
				}
				n1++
			}
		}
		for j := range c0 {
			c0[j] /= n0
			c1[j] /= n1
		}
		for i := 0; i < sub.Len(); i++ {
			row := sub.Row(i)
			d0, d1 := 0.0, 0.0
			for j := range row {
				d0 += (row[j] - c0[j]) * (row[j] - c0[j])
				d1 += (row[j] - c1[j]) * (row[j] - c1[j])
			}
			if d1 < d0 {
				pred[i] = 1
			}
		}
		return validate.Accuracy(pred, sub.Y)
	}
	sel := GreedyForward(d, 3, eval)
	if len(sel) == 0 || sel[0] != 0 {
		t.Fatalf("greedy should pick the strong feature first: %v", sel)
	}
	if evalCalls == 0 {
		t.Fatal("eval never called")
	}
}
