// Package featsel implements feature selection. The paper observes that
// under extreme imbalance (a handful of customer returns among millions of
// passing parts) the learning task "becomes more like a feature selection
// problem than a traditional classification problem" ([16],[17],[18]):
// find the few tests in which the returns stand apart, then model the
// population in that small space. The customer-return application (Fig 11)
// uses OutlierSeparation to pick its 3-D test space.
package featsel

import (
	"errors"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Score pairs a feature index with a selection score (higher = better).
type Score struct {
	Feature int
	Name    string
	Value   float64
}

// rank sorts scores descending with deterministic ties.
func rank(scores []Score) []Score {
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Value != scores[j].Value {
			return scores[i].Value > scores[j].Value
		}
		return scores[i].Feature < scores[j].Feature
	})
	return scores
}

// FisherScores ranks features by the Fisher criterion
// (m1-m0)² / (v0 + v1) for a binary dataset.
func FisherScores(d *dataset.Dataset) ([]Score, error) {
	classes := d.Classes()
	if len(classes) != 2 {
		return nil, errors.New("featsel: binary datasets only")
	}
	var i0, i1 []int
	for i, y := range d.Y {
		if int(y) == classes[0] {
			i0 = append(i0, i)
		} else {
			i1 = append(i1, i)
		}
	}
	d0, d1 := d.Subset(i0), d.Subset(i1)
	out := make([]Score, d.Dim())
	c0 := make([]float64, d0.Len())
	c1 := make([]float64, d1.Len())
	for j := 0; j < d.Dim(); j++ {
		d0.X.ColInto(j, c0)
		d1.X.ColInto(j, c1)
		m0, m1 := stats.Mean(c0), stats.Mean(c1)
		v0, v1 := stats.Variance(c0), stats.Variance(c1)
		den := v0 + v1
		if den < 1e-12 {
			den = 1e-12
		}
		out[j] = Score{j, d.FeatureName(j), (m1 - m0) * (m1 - m0) / den}
	}
	return rank(out), nil
}

// CorrelationScores ranks features by |Pearson correlation| with the label
// (classification or regression).
func CorrelationScores(d *dataset.Dataset) []Score {
	out := make([]Score, d.Dim())
	col := make([]float64, d.Len())
	for j := 0; j < d.Dim(); j++ {
		d.X.ColInto(j, col)
		out[j] = Score{j, d.FeatureName(j), math.Abs(stats.Correlation(col, d.Y))}
	}
	return rank(out)
}

// OutlierSeparation ranks features by how far the rare positive samples sit
// from the bulk of the negatives, in robust (median/MAD) units. This is the
// extreme-imbalance framing: with only a handful of positives, per-feature
// separation is statistically meaningful where a trained classifier is not.
func OutlierSeparation(d *dataset.Dataset, positive int) ([]Score, error) {
	var posIdx, negIdx []int
	for i, y := range d.Y {
		if int(y) == positive {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}
	if len(posIdx) == 0 {
		return nil, errors.New("featsel: no positive samples")
	}
	neg := d.Subset(negIdx)
	out := make([]Score, d.Dim())
	col := make([]float64, neg.Len())
	for j := 0; j < d.Dim(); j++ {
		neg.X.ColInto(j, col)
		med := stats.Median(col)
		mad := stats.MAD(col)
		if mad < 1e-12 {
			mad = 1e-12
		}
		// Minimum robust z-score across the positives: the feature must
		// separate every return, not just one.
		minZ := math.Inf(1)
		for _, i := range posIdx {
			z := math.Abs(d.X.At(i, j)-med) / (1.4826 * mad)
			if z < minZ {
				minZ = z
			}
		}
		out[j] = Score{j, d.FeatureName(j), minZ}
	}
	return rank(out), nil
}

// TopK returns the feature indices of the k best scores.
func TopK(scores []Score, k int) []int {
	if k > len(scores) {
		k = len(scores)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = scores[i].Feature
	}
	return out
}

// GreedyForward selects up to k features by greedily adding the feature
// that most improves the supplied evaluation function (higher = better),
// stopping early when no feature improves it.
func GreedyForward(d *dataset.Dataset, k int,
	eval func(sub *dataset.Dataset) float64) []int {

	var selected []int
	inSel := make([]bool, d.Dim())
	best := math.Inf(-1)
	for len(selected) < k {
		bestJ, bestV := -1, best
		for j := 0; j < d.Dim(); j++ {
			if inSel[j] {
				continue
			}
			cand := append(append([]int(nil), selected...), j)
			v := eval(d.SelectFeatures(cand))
			if v > bestV {
				bestJ, bestV = j, v
			}
		}
		if bestJ < 0 {
			break
		}
		selected = append(selected, bestJ)
		inSel[bestJ] = true
		best = bestV
	}
	return selected
}
