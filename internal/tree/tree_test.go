package tree

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/validate"
)

func TestTreeFitsSimpleRule(t *testing.T) {
	// y = 1 iff x0 > 0.5; one split should suffice.
	rows := [][]float64{{0.1, 9}, {0.2, 8}, {0.3, 7}, {0.7, 1}, {0.8, 2}, {0.9, 3}}
	y := []float64{0, 0, 0, 1, 1, 1}
	d := dataset.FromRows(rows, y)
	tr, err := Fit(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := validate.Accuracy(tr.PredictAll(d), d.Y); acc != 1 {
		t.Fatalf("accuracy %g", acc)
	}
	if tr.Depth() != 1 || tr.Leaves() != 2 {
		t.Fatalf("expected a stump, got depth=%d leaves=%d", tr.Depth(), tr.Leaves())
	}
	if tr.Root.Feature != 0 {
		t.Fatalf("split feature %d", tr.Root.Feature)
	}
	if tr.Root.Threshold < 0.3 || tr.Root.Threshold > 0.7 {
		t.Fatalf("threshold %g", tr.Root.Threshold)
	}
}

func TestTreeXOR(t *testing.T) {
	// XOR needs depth >= 2; a linear model can't do it, a tree can.
	rng := rand.New(rand.NewSource(1))
	d := dataset.XOR(rng, 50, 0.2)
	tr, err := Fit(d, Config{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc := validate.Accuracy(tr.PredictAll(d), d.Y); acc < 0.97 {
		t.Fatalf("XOR accuracy %g", acc)
	}
	if tr.Depth() < 2 {
		t.Fatal("XOR requires depth >= 2")
	}
}

func TestTreeDepthLimitAndMinLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := dataset.TwoGaussians(rng, 200, 4, 1, 1.5) // overlapping classes
	tr, _ := Fit(d, Config{MaxDepth: 2})
	if tr.Depth() > 2 {
		t.Fatalf("depth %d exceeds limit", tr.Depth())
	}
	tr2, _ := Fit(d, Config{MaxDepth: 30, MinLeaf: 50})
	var check func(n *Node)
	check = func(n *Node) {
		if n == nil {
			return
		}
		if n.Leaf && n.N < 50 {
			t.Fatalf("leaf with %d < MinLeaf samples", n.N)
		}
		check(n.Left)
		check(n.Right)
	}
	check(tr2.Root)
}

func TestRegressionTree(t *testing.T) {
	// Step function y = 0 for x<0, 10 for x>=0.
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range rows {
		x := rng.Float64()*4 - 2
		rows[i] = []float64{x}
		if x >= 0 {
			y[i] = 10
		}
	}
	d := dataset.FromRows(rows, y)
	tr, err := Fit(d, Config{Regression: true, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{-1}); math.Abs(got) > 0.5 {
		t.Fatalf("left value %g", got)
	}
	if got := tr.Predict([]float64{1}); math.Abs(got-10) > 0.5 {
		t.Fatalf("right value %g", got)
	}
}

func TestTreeEmptyAndPureData(t *testing.T) {
	if _, err := Fit(dataset.FromRows(nil, nil), Config{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	// Pure labels -> single leaf.
	d := dataset.FromRows([][]float64{{1}, {2}, {3}}, []float64{1, 1, 1})
	tr, _ := Fit(d, Config{})
	if !tr.Root.Leaf || tr.Root.Value != 1 {
		t.Fatal("pure dataset should give one leaf")
	}
}

func TestDumpAndImportance(t *testing.T) {
	rows := [][]float64{{0, 1}, {0, 2}, {1, 1}, {1, 2}}
	y := []float64{0, 0, 1, 1}
	tr, _ := Fit(dataset.FromRows(rows, y), Config{})
	s := tr.Dump(func(j int) string { return []string{"alpha", "beta"}[j] })
	if !strings.Contains(s, "alpha") {
		t.Fatalf("dump should name split feature: %s", s)
	}
	imp := tr.FeatureImportance(2)
	if imp[0] <= imp[1] {
		t.Fatalf("importance should favour feature 0: %v", imp)
	}
	if math.Abs(imp[0]+imp[1]-1) > 1e-12 {
		t.Fatalf("importances should sum to 1: %v", imp)
	}
}

func TestForestBeatsSingleTreeOnNoisyData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	train := dataset.TwoGaussians(rng, 150, 8, 1.2, 1.5)
	test := dataset.TwoGaussians(rng, 400, 8, 1.2, 1.5)
	single, _ := Fit(train, Config{MaxDepth: 12})
	forest, err := FitForest(rng, train, ForestConfig{NTrees: 40, MaxDepth: 12})
	if err != nil {
		t.Fatal(err)
	}
	sAcc := validate.Accuracy(single.PredictAll(test), test.Y)
	fAcc := validate.Accuracy(forest.PredictAll(test), test.Y)
	if fAcc < sAcc-0.02 {
		t.Fatalf("forest (%g) should not lose badly to single tree (%g)", fAcc, sAcc)
	}
	if fAcc < 0.7 {
		t.Fatalf("forest accuracy too low: %g", fAcc)
	}
}

func TestForestRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := dataset.Friedman1(rng, 400, 8, 0.5)
	tr, te := d.Split(rng, 0.75)
	f, err := FitForest(rng, tr, ForestConfig{NTrees: 30, Regression: true, MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	r2 := validate.R2(f.PredictAll(te), te.Y)
	if r2 < 0.6 {
		t.Fatalf("forest regression R2 %g", r2)
	}
}

func TestForestEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := FitForest(rng, dataset.FromRows(nil, nil), ForestConfig{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestForestImportanceFindsInformativeFeatures(t *testing.T) {
	// Only feature 0 is informative.
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, 300)
	y := make([]float64, 300)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if rows[i][0] > 0 {
			y[i] = 1
		}
	}
	d := dataset.FromRows(rows, y)
	f, _ := FitForest(rng, d, ForestConfig{NTrees: 25, MaxFeatures: 2})
	imp := f.FeatureImportance(3)
	if imp[0] < imp[1] || imp[0] < imp[2] {
		t.Fatalf("importance should favour informative feature: %v", imp)
	}
}

func BenchmarkTreeFit500x8(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	d := dataset.TwoGaussians(rng, 250, 8, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(d, Config{MaxDepth: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
