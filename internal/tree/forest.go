package tree

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// Forest is a bagged random forest ([8]).
type Forest struct {
	Trees      []*Tree
	Regression bool
}

// ForestConfig controls forest induction.
type ForestConfig struct {
	NTrees      int // default 50
	MaxDepth    int // default 12
	MinLeaf     int // default 1
	MaxFeatures int // default sqrt(dim) for classification, dim/3 for regression
	Regression  bool
}

// FitForest grows a random forest with bootstrap sampling and per-split
// random feature subsets.
func FitForest(rng *rand.Rand, d *dataset.Dataset, cfg ForestConfig) (*Forest, error) {
	if d.Len() == 0 {
		return nil, errors.New("tree: empty dataset")
	}
	if cfg.NTrees <= 0 {
		cfg.NTrees = 50
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 12
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	if cfg.MaxFeatures <= 0 {
		if cfg.Regression {
			cfg.MaxFeatures = (d.Dim() + 2) / 3
		} else {
			cfg.MaxFeatures = int(math.Sqrt(float64(d.Dim())) + 0.5)
		}
		if cfg.MaxFeatures < 1 {
			cfg.MaxFeatures = 1
		}
	}
	f := &Forest{Regression: cfg.Regression}
	n := d.Len()
	for t := 0; t < cfg.NTrees; t++ {
		// Bootstrap sample.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		boot := d.Subset(idx)
		tcfg := Config{
			MaxDepth:    cfg.MaxDepth,
			MinLeaf:     cfg.MinLeaf,
			Regression:  cfg.Regression,
			MaxFeatures: cfg.MaxFeatures,
			seedFeats:   rng.Perm,
		}
		tr, err := Fit(boot, tcfg)
		if err != nil {
			return nil, err
		}
		f.Trees = append(f.Trees, tr)
	}
	return f, nil
}

// Predict aggregates tree outputs: majority vote (classification) or mean
// (regression).
func (f *Forest) Predict(x []float64) float64 {
	if f.Regression {
		s := 0.0
		for _, t := range f.Trees {
			s += t.Predict(x)
		}
		return s / float64(len(f.Trees))
	}
	votes := map[int]int{}
	for _, t := range f.Trees {
		votes[int(t.Predict(x))]++
	}
	best, bestN := 0, -1
	for c, n := range votes {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	return float64(best)
}

// PredictAll predicts every row of d.
func (f *Forest) PredictAll(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = f.Predict(d.Row(i))
	}
	return out
}

// FeatureImportance averages per-tree importances.
func (f *Forest) FeatureImportance(dim int) []float64 {
	imp := make([]float64, dim)
	for _, t := range f.Trees {
		ti := t.FeatureImportance(dim)
		for i := range imp {
			imp[i] += ti[i]
		}
	}
	for i := range imp {
		imp[i] /= float64(len(f.Trees))
	}
	return imp
}
