// Package tree implements CART-style decision trees ([7] in the paper) for
// classification and regression, plus bagged random forests ([8]). Trees
// are one of the model-based learners of Section 2.1 whose "model" is a
// tree rather than an equation; forests illustrate ensemble regularization.
package tree

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/parallel"
)

// Node is one node of a fitted tree.
type Node struct {
	// Internal nodes.
	Feature   int
	Threshold float64
	Left      *Node
	Right     *Node
	// Leaves.
	Leaf  bool
	Value float64 // majority class (classification) or mean (regression)
	N     int     // training samples reaching the node
}

// Config controls tree induction.
type Config struct {
	MaxDepth    int  // default 10
	MinLeaf     int  // minimum samples per leaf, default 1
	Regression  bool // variance reduction instead of Gini
	MaxFeatures int  // consider only this many random features per split (0 = all); used by forests
	seedFeats   func(n int) []int
}

// Tree is a fitted decision tree.
type Tree struct {
	Root   *Node
	Config Config
}

// Fit grows a tree on d.
func Fit(d *dataset.Dataset, cfg Config) (*Tree, error) {
	if d.Len() == 0 {
		return nil, errors.New("tree: empty dataset")
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 10
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{Config: cfg}
	t.Root = t.grow(d, idx, 0)
	return t, nil
}

func (t *Tree) leafValue(d *dataset.Dataset, idx []int) float64 {
	if t.Config.Regression {
		s := 0.0
		for _, i := range idx {
			s += d.Y[i]
		}
		return s / float64(len(idx))
	}
	counts := map[int]int{}
	for _, i := range idx {
		counts[int(d.Y[i])]++
	}
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	return float64(best)
}

func (t *Tree) impurity(d *dataset.Dataset, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	if t.Config.Regression {
		mean := 0.0
		for _, i := range idx {
			mean += d.Y[i]
		}
		mean /= float64(len(idx))
		s := 0.0
		for _, i := range idx {
			dd := d.Y[i] - mean
			s += dd * dd
		}
		return s / float64(len(idx))
	}
	counts := map[int]int{}
	for _, i := range idx {
		counts[int(d.Y[i])]++
	}
	g := 1.0
	n := float64(len(idx))
	for _, c := range counts {
		p := float64(c) / n
		g -= p * p
	}
	return g
}

func (t *Tree) grow(d *dataset.Dataset, idx []int, depth int) *Node {
	node := &Node{N: len(idx)}
	imp := t.impurity(d, idx)
	if depth >= t.Config.MaxDepth || len(idx) < 2*t.Config.MinLeaf || imp < 1e-12 {
		node.Leaf = true
		node.Value = t.leafValue(d, idx)
		return node
	}

	feats := t.candidateFeatures(d.Dim())
	bestFeat, bestThr, bestGain := -1, 0.0, 0.0
	var bestLeft, bestRight []int
	for _, f := range feats {
		thr, gain, left, right := t.bestSplitOnFeature(d, idx, f, imp)
		if gain > bestGain {
			bestFeat, bestThr, bestGain = f, thr, gain
			bestLeft, bestRight = left, right
		}
	}
	if bestFeat < 0 {
		node.Leaf = true
		node.Value = t.leafValue(d, idx)
		return node
	}
	node.Feature = bestFeat
	node.Threshold = bestThr
	node.Left = t.grow(d, bestLeft, depth+1)
	node.Right = t.grow(d, bestRight, depth+1)
	return node
}

func (t *Tree) candidateFeatures(dim int) []int {
	if t.Config.MaxFeatures <= 0 || t.Config.MaxFeatures >= dim || t.Config.seedFeats == nil {
		all := make([]int, dim)
		for i := range all {
			all[i] = i
		}
		return all
	}
	perm := t.Config.seedFeats(dim)
	return perm[:t.Config.MaxFeatures]
}

// bestSplitOnFeature scans thresholds between consecutive sorted values,
// maintaining split statistics incrementally so the sweep is O(n log n).
func (t *Tree) bestSplitOnFeature(d *dataset.Dataset, idx []int, f int, parentImp float64) (thr, gain float64, left, right []int) {
	type pv struct {
		v float64
		i int
	}
	vals := make([]pv, len(idx))
	for k, i := range idx {
		vals[k] = pv{d.X.At(i, f), i}
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
	n := len(vals)

	bestGain := 0.0
	bestCut := -1
	if t.Config.Regression {
		// Prefix sums for O(1) variance on both sides.
		var lSum, lSq float64
		var rSum, rSq float64
		for _, p := range vals {
			y := d.Y[p.i]
			rSum += y
			rSq += y * y
		}
		for c := 1; c < n; c++ {
			y := d.Y[vals[c-1].i]
			lSum += y
			lSq += y * y
			rSum -= y
			rSq -= y * y
			if c < t.Config.MinLeaf || n-c < t.Config.MinLeaf || vals[c].v == vals[c-1].v {
				continue
			}
			ln, rn := float64(c), float64(n-c)
			lVar := lSq/ln - (lSum/ln)*(lSum/ln)
			rVar := rSq/rn - (rSum/rn)*(rSum/rn)
			g := parentImp - (ln*lVar+rn*rVar)/float64(n)
			if g > bestGain {
				bestGain, bestCut = g, c
			}
		}
	} else {
		// Compact class indexing, then incremental Gini via Σcount².
		classOf := map[int]int{}
		for _, p := range vals {
			c := int(d.Y[p.i])
			if _, ok := classOf[c]; !ok {
				classOf[c] = len(classOf)
			}
		}
		lCnt := make([]float64, len(classOf))
		rCnt := make([]float64, len(classOf))
		var lSq, rSq float64 // Σ count²
		for _, p := range vals {
			ci := classOf[int(d.Y[p.i])]
			rSq += 2*rCnt[ci] + 1
			rCnt[ci]++
		}
		for c := 1; c < n; c++ {
			ci := classOf[int(d.Y[vals[c-1].i])]
			lSq += 2*lCnt[ci] + 1
			lCnt[ci]++
			rSq -= 2*rCnt[ci] - 1
			rCnt[ci]--
			if c < t.Config.MinLeaf || n-c < t.Config.MinLeaf || vals[c].v == vals[c-1].v {
				continue
			}
			ln, rn := float64(c), float64(n-c)
			lGini := 1 - lSq/(ln*ln)
			rGini := 1 - rSq/(rn*rn)
			g := parentImp - (ln*lGini+rn*rGini)/float64(n)
			if g > bestGain {
				bestGain, bestCut = g, c
			}
		}
	}
	if bestCut < 0 || bestGain <= 1e-12 {
		return 0, 0, nil, nil
	}
	thr = (vals[bestCut-1].v + vals[bestCut].v) / 2
	left = make([]int, bestCut)
	right = make([]int, n-bestCut)
	for k := 0; k < bestCut; k++ {
		left[k] = vals[k].i
	}
	for k := bestCut; k < n; k++ {
		right[k-bestCut] = vals[k].i
	}
	return thr, bestGain, left, right
}

// Predict routes x to a leaf and returns its value.
func (t *Tree) Predict(x []float64) float64 {
	n := t.Root
	for !n.Leaf {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Value
}

// PredictAll predicts every row of d.
func (t *Tree) PredictAll(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = t.Predict(d.Row(i))
	}
	return out
}

// PredictBatch returns Predict for every row of x, striping rows across
// the worker pool. Routing is read-only on the fitted tree, so the result
// is bit-identical at any worker count.
func (t *Tree) PredictBatch(x *linalg.Matrix) []float64 {
	return t.PredictBatchInto(x, make([]float64, x.Rows))
}

// PredictBatchInto is PredictBatch writing into a caller-provided slice
// of length x.Rows. The serial path calls the routing loop directly —
// no closure, no goroutines — so a steady-state batch allocates nothing
// (alloc_test.go pins this at 0 allocs/op).
func (t *Tree) PredictBatchInto(x *linalg.Matrix, out []float64) []float64 {
	if len(out) != x.Rows {
		panic("tree: PredictBatchInto output length mismatch")
	}
	if parallel.Workers() <= 1 || x.Rows < batchCutover {
		t.predictRange(x, out, 0, x.Rows)
	} else {
		parallel.ForN(x.Rows, batchCutover, func(lo, hi int) {
			t.predictRange(x, out, lo, hi)
		})
	}
	return out
}

// batchCutover keeps small prediction batches serial: routing a few
// hundred rows is too cheap to amortize goroutine startup.
const batchCutover = 256

func (t *Tree) predictRange(x *linalg.Matrix, out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = t.Predict(x.Row(i))
	}
}

// Validate checks the structural partition invariant of a fitted (or
// decoded) tree for inputs of the given width: every internal node has
// both children, a finite threshold, and a feature index inside [0, dim);
// every leaf carries at least one training sample; and each internal
// node's sample count equals the sum of its children's. Together these
// guarantee that any dim-wide input is routed to exactly one leaf — the
// partition-coverage invariant the conformance suite asserts on every
// generated fit and every decoded artifact.
func (t *Tree) Validate(dim int) error {
	if t.Root == nil {
		return errors.New("tree: nil root")
	}
	var rec func(n *Node, path string) error
	rec = func(n *Node, path string) error {
		if n.Leaf {
			if n.N < 1 {
				return fmt.Errorf("tree: leaf at %q has n=%d < 1", path, n.N)
			}
			if math.IsNaN(n.Value) || math.IsInf(n.Value, 0) {
				return fmt.Errorf("tree: leaf at %q has non-finite value %v", path, n.Value)
			}
			return nil
		}
		if n.Left == nil || n.Right == nil {
			return fmt.Errorf("tree: internal node at %q is missing a child", path)
		}
		if n.Feature < 0 || n.Feature >= dim {
			return fmt.Errorf("tree: internal node at %q splits on feature %d outside [0,%d)", path, n.Feature, dim)
		}
		if math.IsNaN(n.Threshold) || math.IsInf(n.Threshold, 0) {
			return fmt.Errorf("tree: internal node at %q has non-finite threshold %v", path, n.Threshold)
		}
		if n.N != 0 && n.Left.N+n.Right.N != n.N {
			return fmt.Errorf("tree: node at %q has n=%d but children sum to %d",
				path, n.N, n.Left.N+n.Right.N)
		}
		if err := rec(n.Left, path+"L"); err != nil {
			return err
		}
		return rec(n.Right, path+"R")
	}
	return rec(t.Root, "/")
}

// Depth returns the depth of the fitted tree (leaf-only tree has depth 0).
func (t *Tree) Depth() int { return depth(t.Root) }

func depth(n *Node) int {
	if n == nil || n.Leaf {
		return 0
	}
	l, r := depth(n.Left), depth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return leaves(t.Root) }

func leaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	return leaves(n.Left) + leaves(n.Right)
}

// Dump renders the tree as indented text with feature names from d.
func (t *Tree) Dump(names func(int) string) string {
	var b []byte
	var rec func(n *Node, indent string)
	rec = func(n *Node, indent string) {
		if n.Leaf {
			b = append(b, fmt.Sprintf("%sleaf value=%.4g n=%d\n", indent, n.Value, n.N)...)
			return
		}
		name := fmt.Sprintf("f%d", n.Feature)
		if names != nil {
			name = names(n.Feature)
		}
		b = append(b, fmt.Sprintf("%sif %s <= %.4g (n=%d)\n", indent, name, n.Threshold, n.N)...)
		rec(n.Left, indent+"  ")
		rec(n.Right, indent+"  ")
	}
	rec(t.Root, "")
	return string(b)
}

// FeatureImportance accumulates, per feature, the number of training
// samples split on it — a cheap importance proxy.
func (t *Tree) FeatureImportance(dim int) []float64 {
	imp := make([]float64, dim)
	var rec func(n *Node)
	rec = func(n *Node) {
		if n == nil || n.Leaf {
			return
		}
		imp[n.Feature] += float64(n.N)
		rec(n.Left)
		rec(n.Right)
	}
	rec(t.Root)
	total := 0.0
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}
