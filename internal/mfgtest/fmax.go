package mfgtest

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// FmaxDataset builds the Fmax-prediction task of the paper's ref [20]:
// predict a chip's maximum operating frequency from its parametric test
// measurements. Fmax is generated as a smooth nonlinear function of the
// same latent process factors that drive the parametrics (leakage-like
// and drive-strength-like terms), so the measurements carry the signal
// but no regressor sees the factors directly.
func FmaxDataset(rng *rand.Rand, n int) *dataset.Dataset {
	const nf = 4
	nTests := 10
	m := &Model{
		Names:    make([]string, nTests),
		Mean:     make([]float64, nTests),
		Loadings: make([][]float64, nTests),
		Noise:    make([]float64, nTests),
		WaferSD:  0.2,
	}
	for j := 0; j < nTests; j++ {
		m.Names[j] = "t" + string(rune('0'+j))
		m.Mean[j] = 10
		m.Loadings[j] = make([]float64, nf)
		main := j % nf
		for k := 0; k < nf; k++ {
			if k == main {
				m.Loadings[j][k] = 1
			} else {
				m.Loadings[j][k] = 0.15
			}
		}
		m.Noise[j] = 0.3
	}

	// Sample chips while capturing the factor draws via a custom loop:
	// regenerate factors deterministically by re-deriving them from a
	// parallel RNG is fragile, so instead compute Fmax from the
	// measurements' factor-aligned averages (a denoised proxy of the
	// factors) plus nonlinearities.
	chips := m.Sample(rng, n, 0, nil)
	x := Matrix(chips)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		// Factor proxies: mean of the tests loading mainly on each factor.
		var f [nf]float64
		var cnt [nf]int
		for j := 0; j < nTests; j++ {
			f[j%nf] += row[j] - 10
			cnt[j%nf]++
		}
		for k := 0; k < nf; k++ {
			f[k] /= float64(cnt[k])
		}
		// Fmax (MHz): drive strength raises it, leakage-induced thermal
		// throttling is quadratic, plus an interaction and noise.
		y[i] = 2000 + 80*f[0] - 25*f[1]*f[1] + 40*math.Sin(f[2]) -
			15*f[0]*f[3] + 10*rng.NormFloat64()
	}
	return dataset.MustNew(x, y, m.Names)
}
