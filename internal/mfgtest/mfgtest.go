// Package mfgtest implements the manufacturing-test substrate of the
// paper's Section 3-4 test-data case studies ([16],[32],[33]): a factor-
// model generator of correlated parametric test measurements with wafer
// structure, production test limits, a latent-defect mechanism that
// produces customer returns (Figure 11), and a phase-dependent failure
// mode that defeats test-elimination mining (Figure 12).
package mfgtest

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/stats"
)

// Chip is one tested unit.
type Chip struct {
	ID           int
	Wafer        int
	Meas         []float64 // one value per parametric test
	LatentDefect bool      // will fail in the field if shipped
}

// Model is a linear factor model of parametric tests:
//
//	meas_j = mean_j + Σ_k Loadings[j][k]·factor_k + noise_j·ε
//
// Chips on the same wafer share a wafer-level factor offset.
type Model struct {
	Names    []string
	Mean     []float64
	Loadings [][]float64 // tests × factors
	Noise    []float64   // per-test residual sigma
	WaferSD  float64     // sigma of the shared wafer offset on factor 0
	PerWafer int         // chips per wafer, default 500
}

// Validate checks internal consistency.
func (m *Model) Validate() error {
	nt := len(m.Mean)
	if nt == 0 {
		return errors.New("mfgtest: model has no tests")
	}
	if len(m.Loadings) != nt || len(m.Noise) != nt {
		return errors.New("mfgtest: loadings/noise length mismatch")
	}
	if m.Names != nil && len(m.Names) != nt {
		return errors.New("mfgtest: names length mismatch")
	}
	return nil
}

// NumTests returns the number of parametric tests.
func (m *Model) NumTests() int { return len(m.Mean) }

// NumFactors returns the number of latent factors.
func (m *Model) NumFactors() int {
	if len(m.Loadings) == 0 {
		return 0
	}
	return len(m.Loadings[0])
}

// Sample draws n chips. The defect hook, when non-nil, may mutate each
// chip after the parametric draw (inject shifts, mark latent defects).
func (m *Model) Sample(rng *rand.Rand, n int, startID int,
	defect func(rng *rand.Rand, c *Chip)) []Chip {

	perWafer := m.PerWafer
	if perWafer <= 0 {
		perWafer = 500
	}
	nf := m.NumFactors()
	chips := make([]Chip, n)
	waferOffset := 0.0
	for i := 0; i < n; i++ {
		id := startID + i
		wafer := id / perWafer
		if id%perWafer == 0 || i == 0 {
			waferOffset = m.WaferSD * rng.NormFloat64()
		}
		f := make([]float64, nf)
		for k := range f {
			f[k] = rng.NormFloat64()
		}
		if nf > 0 {
			f[0] += waferOffset
		}
		meas := make([]float64, m.NumTests())
		for j := range meas {
			v := m.Mean[j]
			for k := 0; k < nf; k++ {
				v += m.Loadings[j][k] * f[k]
			}
			v += m.Noise[j] * rng.NormFloat64()
			meas[j] = v
		}
		chips[i] = Chip{ID: id, Wafer: wafer, Meas: meas}
		if defect != nil {
			defect(rng, &chips[i])
		}
	}
	return chips
}

// Limits are per-test pass windows.
type Limits struct {
	Lo, Hi []float64
}

// LimitsFromModel sets symmetric k-sigma limits around the model means,
// using the marginal sigma implied by loadings and noise.
func LimitsFromModel(m *Model, k float64) Limits {
	nt := m.NumTests()
	lo := make([]float64, nt)
	hi := make([]float64, nt)
	for j := 0; j < nt; j++ {
		v := m.Noise[j] * m.Noise[j]
		for _, l := range m.Loadings[j] {
			v += l * l
		}
		if len(m.Loadings[j]) > 0 {
			v += m.Loadings[j][0] * m.Loadings[j][0] * m.WaferSD * m.WaferSD
		}
		sd := math.Sqrt(v)
		lo[j] = m.Mean[j] - k*sd
		hi[j] = m.Mean[j] + k*sd
	}
	return Limits{Lo: lo, Hi: hi}
}

// Pass reports whether the chip is inside every limit.
func (l Limits) Pass(c *Chip) bool {
	for j, v := range c.Meas {
		if v < l.Lo[j] || v > l.Hi[j] {
			return false
		}
	}
	return true
}

// FailsTest reports whether the chip violates the limits of test j.
func (l Limits) FailsTest(c *Chip, j int) bool {
	return c.Meas[j] < l.Lo[j] || c.Meas[j] > l.Hi[j]
}

// Matrix packs chip measurements into a dataset matrix (rows = chips).
func Matrix(chips []Chip) *linalg.Matrix {
	if len(chips) == 0 {
		return linalg.NewMatrix(0, 0)
	}
	x := linalg.NewMatrix(len(chips), len(chips[0].Meas))
	for i := range chips {
		copy(x.Row(i), chips[i].Meas)
	}
	return x
}

// Correlation returns the Pearson correlation of two tests across chips.
func Correlation(chips []Chip, a, b int) float64 {
	va := make([]float64, len(chips))
	vb := make([]float64, len(chips))
	for i := range chips {
		va[i] = chips[i].Meas[a]
		vb[i] = chips[i].Meas[b]
	}
	return stats.Correlation(va, vb)
}
