package mfgtest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func TestModelValidate(t *testing.T) {
	m := &Model{Mean: []float64{0}, Loadings: [][]float64{{1}}, Noise: []float64{1}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if (&Model{}).Validate() == nil {
		t.Fatal("empty model accepted")
	}
	bad := &Model{Mean: []float64{0, 1}, Loadings: [][]float64{{1}}, Noise: []float64{1, 1}}
	if bad.Validate() == nil {
		t.Fatal("mismatched loadings accepted")
	}
}

func TestSampleStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := &Model{
		Mean:     []float64{5, -3},
		Loadings: [][]float64{{1}, {1}},
		Noise:    []float64{0.1, 0.1},
		WaferSD:  0,
	}
	chips := m.Sample(rng, 20000, 0, nil)
	c0 := make([]float64, len(chips))
	c1 := make([]float64, len(chips))
	for i, c := range chips {
		c0[i] = c.Meas[0]
		c1[i] = c.Meas[1]
	}
	if math.Abs(stats.Mean(c0)-5) > 0.05 || math.Abs(stats.Mean(c1)+3) > 0.05 {
		t.Fatalf("means %g %g", stats.Mean(c0), stats.Mean(c1))
	}
	// Shared factor with small noise -> very high correlation.
	if r := stats.Correlation(c0, c1); r < 0.97 {
		t.Fatalf("correlation %g", r)
	}
}

func TestWaferStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := &Model{
		Mean:     []float64{0},
		Loadings: [][]float64{{1}},
		Noise:    []float64{0.01},
		WaferSD:  2.0,
		PerWafer: 100,
	}
	chips := m.Sample(rng, 1000, 0, nil)
	// Chips on the same wafer should be much closer than across wafers.
	var within, across []float64
	for i := 1; i < len(chips); i++ {
		d := math.Abs(chips[i].Meas[0] - chips[i-1].Meas[0])
		if chips[i].Wafer == chips[i-1].Wafer {
			within = append(within, d)
		} else {
			across = append(across, d)
		}
	}
	if stats.Mean(within) >= stats.Mean(across) {
		t.Fatalf("wafer structure absent: within=%g across=%g",
			stats.Mean(within), stats.Mean(across))
	}
	if chips[0].Wafer != 0 || chips[999].Wafer != 9 {
		t.Fatal("wafer ids")
	}
}

func TestLimitsPassFail(t *testing.T) {
	m := &Model{Mean: []float64{0, 0}, Loadings: [][]float64{{1}, {1}}, Noise: []float64{0.1, 0.1}}
	lim := LimitsFromModel(m, 3)
	good := &Chip{Meas: []float64{0, 0}}
	bad := &Chip{Meas: []float64{0, 100}}
	if !lim.Pass(good) || lim.Pass(bad) {
		t.Fatal("limit check")
	}
	if !lim.FailsTest(bad, 1) || lim.FailsTest(bad, 0) {
		t.Fatal("FailsTest")
	}
}

func TestReturnsScenarioShipsDefects(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewReturnsScenario(12)
	shipped, returns := s.SampleLot(rng, 30000, 0)
	if len(shipped) < 29000 {
		t.Fatalf("yield too low: %d", len(shipped))
	}
	if len(returns) == 0 {
		t.Fatal("no customer returns generated")
	}
	// Returns pass production limits by construction (they shipped).
	for _, ri := range returns {
		if !s.Limits.Pass(&shipped[ri]) {
			t.Fatal("return failed limits yet shipped")
		}
		if !shipped[ri].LatentDefect {
			t.Fatal("return not marked defective")
		}
	}
	// Returns are outliers in the defect tests: the mean robust z of the
	// returns in a defect test should be clearly elevated.
	j := s.DefectTests[0]
	col := make([]float64, len(shipped))
	for i := range shipped {
		col[i] = shipped[i].Meas[j]
	}
	med, mad := stats.Median(col), stats.MAD(col)
	zsum := 0.0
	for _, ri := range returns {
		zsum += math.Abs(shipped[ri].Meas[j]-med) / (1.4826 * mad)
	}
	if zMean := zsum / float64(len(returns)); zMean < 2 {
		t.Fatalf("returns not outliers in defect test: mean z=%g", zMean)
	}
}

func TestSisterScenarioSameMechanism(t *testing.T) {
	s := NewReturnsScenario(12)
	sis := s.SisterScenario()
	if sis.DefectTests != s.DefectTests {
		t.Fatal("sister must share the defect mechanism")
	}
	if sis.Model.Mean[0] == s.Model.Mean[0] {
		t.Fatal("sister means should shift")
	}
	// Mutating sister must not affect the original.
	sis.Model.Mean[0] = 999
	if s.Model.Mean[0] == 999 {
		t.Fatal("sister aliases parent means")
	}
}

func TestCostRedCorrelationsMatchPaper(t *testing.T) {
	// Fig 12 setup: corr(A, 1) ≈ 0.97 and corr(A, 2) ≈ 0.96.
	rng := rand.New(rand.NewSource(4))
	s := NewCostRedScenario()
	chips := s.Model.Sample(rng, 50000, 0, s.DefectPhase1)
	rA1 := Correlation(chips, s.TestA, s.Test1)
	rA2 := Correlation(chips, s.TestA, s.Test2)
	if rA1 < 0.94 || rA1 > 0.995 {
		t.Fatalf("corr(A,1)=%g outside paper-like band", rA1)
	}
	if rA2 < 0.93 || rA2 > 0.995 {
		t.Fatalf("corr(A,2)=%g outside paper-like band", rA2)
	}
}

func TestCostRedPhase1NoEscapesPhase2Escapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewCostRedScenario()
	kept := []int{s.Test1, s.Test2}

	phase1 := s.Model.Sample(rng, 200000, 0, s.DefectPhase1)
	if got := s.Escapes(phase1, s.TestA, kept); got != 0 {
		t.Fatalf("phase 1 should have zero escapes, got %d", got)
	}
	phase2 := s.Model.Sample(rng, 100000, 200000, s.DefectPhase2)
	if got := s.Escapes(phase2, s.TestA, kept); got == 0 {
		t.Fatal("phase 2 should contain escapes")
	}
}

func TestMatrixPacking(t *testing.T) {
	chips := []Chip{{Meas: []float64{1, 2}}, {Meas: []float64{3, 4}}}
	x := Matrix(chips)
	if x.Rows != 2 || x.Cols != 2 || x.At(1, 0) != 3 {
		t.Fatal("matrix packing")
	}
	if Matrix(nil).Rows != 0 {
		t.Fatal("empty matrix")
	}
}

func TestFmaxDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := FmaxDataset(rng, 500)
	if d.Len() != 500 || d.Dim() != 10 {
		t.Fatalf("shape %d x %d", d.Len(), d.Dim())
	}
	// Fmax responds to the parametrics: the best single-test correlation
	// must be clearly nonzero, but no single test should explain
	// everything (the ground truth is nonlinear and multi-factor).
	best := 0.0
	for j := 0; j < d.Dim(); j++ {
		c := math.Abs(stats.Correlation(d.X.Col(j), d.Y))
		if c > best {
			best = c
		}
	}
	if best < 0.3 {
		t.Fatalf("Fmax carries no parametric signal: best |corr| %.2f", best)
	}
	if best > 0.98 {
		t.Fatalf("Fmax is trivially linear in one test: best |corr| %.2f", best)
	}
}

func BenchmarkSample1000(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	s := NewReturnsScenario(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Model.Sample(rng, 1000, 0, s.Defect)
	}
}
