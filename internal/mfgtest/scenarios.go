package mfgtest

import (
	"fmt"
	"math"
	"math/rand"
)

// ReturnsScenario builds the Figure 11 setting: an automotive product with
// many parametric tests, where a rare latent defect shifts a specific
// triple of tests by an amount that stays inside the production limits —
// the part ships and comes back from the customer months later.
type ReturnsScenario struct {
	Model       *Model
	Limits      Limits
	DefectTests [3]int  // the tests the latent defect disturbs
	Shift       float64 // defect shift in marginal sigmas
	DefectRate  float64 // latent defect probability
}

// NewReturnsScenario builds the standard returns scenario with nTests
// parametric tests driven by 4 process factors.
func NewReturnsScenario(nTests int) *ReturnsScenario {
	if nTests < 8 {
		nTests = 8
	}
	const nf = 4
	m := &Model{
		Names:    make([]string, nTests),
		Mean:     make([]float64, nTests),
		Loadings: make([][]float64, nTests),
		Noise:    make([]float64, nTests),
		WaferSD:  0.3,
	}
	// Deterministic loading pattern: each test loads mainly on one factor
	// with small cross terms, giving a realistic correlated structure.
	for j := 0; j < nTests; j++ {
		m.Names[j] = fmt.Sprintf("t%02d", j)
		m.Mean[j] = 10 + float64(j)
		m.Loadings[j] = make([]float64, nf)
		main := j % nf
		for k := 0; k < nf; k++ {
			if k == main {
				m.Loadings[j][k] = 1.0
			} else {
				m.Loadings[j][k] = 0.2
			}
		}
		m.Noise[j] = 0.4
	}
	s := &ReturnsScenario{
		Model:       m,
		DefectTests: [3]int{2, 5, 7},
		Shift:       2.8,
		DefectRate:  0.002,
	}
	s.Limits = LimitsFromModel(m, 6) // wide automotive limits: returns pass
	return s
}

// marginalSD returns the marginal sigma of test j (without wafer term, the
// scale the defect shift is expressed in).
func (s *ReturnsScenario) marginalSD(j int) float64 {
	v := s.Model.Noise[j] * s.Model.Noise[j]
	for _, l := range s.Model.Loadings[j] {
		v += l * l
	}
	return math.Sqrt(v)
}

// Defect is the latent-defect hook for Model.Sample.
func (s *ReturnsScenario) Defect(rng *rand.Rand, c *Chip) {
	if rng.Float64() >= s.DefectRate {
		return
	}
	c.LatentDefect = true
	for _, j := range s.DefectTests {
		c.Meas[j] += s.Shift * s.marginalSD(j)
	}
}

// SampleLot draws a production lot and splits it into shipped parts and
// (shipped, defective) customer returns; parts failing test limits are
// scrapped at the factory and never ship.
func (s *ReturnsScenario) SampleLot(rng *rand.Rand, n, startID int) (shipped []Chip, returns []int) {
	chips := s.Model.Sample(rng, n, startID, s.Defect)
	for i := range chips {
		if !s.Limits.Pass(&chips[i]) {
			continue // factory scrap
		}
		shipped = append(shipped, chips[i])
		if chips[i].LatentDefect {
			returns = append(returns, len(shipped)-1)
		}
	}
	return shipped, returns
}

// SisterScenario derives the sister-product-line variant of the Figure 11
// plot (3): same defect mechanism and loading structure, slightly shifted
// means and noise (a different product manufactured a year later).
func (s *ReturnsScenario) SisterScenario() *ReturnsScenario {
	m2 := &Model{
		Names:    append([]string(nil), s.Model.Names...),
		Mean:     append([]float64(nil), s.Model.Mean...),
		Loadings: s.Model.Loadings,
		Noise:    append([]float64(nil), s.Model.Noise...),
		WaferSD:  s.Model.WaferSD,
		PerWafer: s.Model.PerWafer,
	}
	for j := range m2.Mean {
		m2.Mean[j] += 0.15
		m2.Noise[j] *= 1.1
	}
	s2 := *s
	s2.Model = m2
	s2.Limits = LimitsFromModel(m2, 6)
	return &s2
}

// CostRedScenario builds the Figure 12 setting: candidate-for-removal
// tests A and B correlate ≈0.97/0.96 with kept tests 1 and 2, and in the
// first production phase every A/B failure is also caught by test 1 or 2.
// A second phase introduces a new defect mode that moves A (and B) outside
// limits while leaving tests 1 and 2 untouched — the escapes that make the
// test-removal guarantee impossible.
type CostRedScenario struct {
	Model  *Model
	Limits Limits
	// Test indices.
	TestA, TestB, Test1, Test2 int
	// Phase-2 independent failure mode rates.
	NewModeRateA float64
	NewModeRateB float64
	// Gross-defect rate present in both phases (fails everything together).
	GrossRate float64
}

// NewCostRedScenario builds the standard cost-reduction scenario.
func NewCostRedScenario() *CostRedScenario {
	// Four tests: A, B, 1, 2. One dominant shared factor gives the high
	// pairwise correlation; small independent noise the residual.
	m := &Model{
		Names: []string{"testA", "testB", "test1", "test2"},
		Mean:  []float64{0, 0, 0, 0},
		Loadings: [][]float64{
			{1.0, 0.10, 0.05}, // A
			{1.0, 0.05, 0.12}, // B
			{1.0, 0.22, 0.00}, // 1
			{1.0, 0.00, 0.22}, // 2
		},
		Noise:   []float64{0.12, 0.14, 0.10, 0.10},
		WaferSD: 0.1,
	}
	s := &CostRedScenario{
		Model: m, TestA: 0, TestB: 1, Test1: 2, Test2: 3,
		NewModeRateA: 3e-5,
		NewModeRateB: 2e-5,
		GrossRate:    2e-4,
	}
	// 5-sigma limits: random single-test tails are negligible (≈6e-7), so
	// in phase 1 the only failures are gross defects that trip every test
	// together — mining sees test A perfectly covered by tests 1 and 2.
	s.Limits = LimitsFromModel(m, 5)
	return s
}

// DefectPhase1 injects only the gross defect mode: a large shared shift
// that fails A/B and tests 1/2 together, so mining on phase-1 data sees
// test A fully covered by tests 1 and 2.
func (s *CostRedScenario) DefectPhase1(rng *rand.Rand, c *Chip) {
	if rng.Float64() < s.GrossRate {
		shift := 7 + 2*rng.Float64()
		for j := range c.Meas {
			c.Meas[j] += shift
		}
	}
}

// DefectPhase2 adds the new, test-A-specific (and test-B-specific) failure
// modes on top of the gross mode — the yellow dots of Figure 12.
func (s *CostRedScenario) DefectPhase2(rng *rand.Rand, c *Chip) {
	s.DefectPhase1(rng, c)
	if rng.Float64() < s.NewModeRateA {
		c.Meas[s.TestA] += 5.5 + 2*rng.Float64()
	}
	if rng.Float64() < s.NewModeRateB {
		c.Meas[s.TestB] -= 5.5 + 2*rng.Float64()
	}
}

// Escapes counts chips that fail the dropped test but pass every kept
// test's limits — exactly the paper's definition of a test escape.
func (s *CostRedScenario) Escapes(chips []Chip, dropped int, kept []int) int {
	n := 0
	for i := range chips {
		c := &chips[i]
		if !s.Limits.FailsTest(c, dropped) {
			continue
		}
		caught := false
		for _, k := range kept {
			if s.Limits.FailsTest(c, k) {
				caught = true
				break
			}
		}
		if !caught {
			n++
		}
	}
	return n
}
