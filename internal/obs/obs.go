// Package obs is the repository's zero-dependency observability layer:
// named counters, gauges, and histograms behind a global registry, with
// deterministic JSON snapshots and run manifests for the CLIs.
//
// The paper's methodology (Sections 3 and 5) is an economic argument —
// data mining in EDA pays off only when the cost it removes (simulation
// cycles, kernel evaluations, iterations of the knowledge-discovery
// loop) is measured, not estimated. Before this package each experiment
// computed those numbers ad hoc and threw them away; now every expensive
// path increments a first-class metric and `edamine -manifest` persists
// the whole set per run, so a claimed speedup must show up in a manifest
// diff.
//
// Design constraints, in order:
//
//  1. Determinism. Metrics observe the computation and never feed back
//     into it: enabling or disabling the layer must leave every
//     experiment report byte-identical (asserted by the repo's
//     determinism tests).
//  2. Negligible hot-path cost. An enabled counter update is one atomic
//     add guarded by one atomic load; with the kill-switch off
//     (REPRO_OBS=0, or SetEnabled(false)) the guard fails and nothing
//     else runs. Hot loops pre-resolve their metrics into package-level
//     vars so the registry map is never touched per operation, and
//     accumulate locally per work chunk so the atomic is hit once per
//     chunk, not once per element.
//  3. Concurrency safety. All metric updates are lock-free atomics; the
//     registry itself takes a mutex only on first registration and on
//     snapshot. The package is exercised under -race by its own tests
//     and by every instrumented parallel path.
//
// The kill switch is the REPRO_OBS environment variable, read once at
// startup: set REPRO_OBS=0 to disable collection entirely. Tests and
// benchmarks can flip the switch at runtime with SetEnabled.
package obs

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// enabled gates every metric update. Default on; REPRO_OBS=0 disables.
var enabled atomic.Bool

func init() {
	enabled.Store(os.Getenv("REPRO_OBS") != "0")
}

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns collection on or off at runtime and returns the
// previous setting so callers can restore it:
//
//	defer obs.SetEnabled(obs.SetEnabled(false))
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// registry is the global name -> metric store. Registration is
// idempotent: GetCounter("x") returns the same *Counter from every call
// site, so packages pre-resolve metrics into vars at init and share them
// freely. Registering one name as two different kinds panics — metric
// names are a global schema, and a silent collision would corrupt
// snapshots.
var registry = struct {
	mu       sync.Mutex
	kinds    map[string]string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}{
	kinds:    map[string]string{},
	counters: map[string]*Counter{},
	gauges:   map[string]*Gauge{},
	hists:    map[string]*Histogram{},
}

func checkKind(name, kind string) {
	if got, ok := registry.kinds[name]; ok && got != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, got, kind))
	}
	registry.kinds[name] = kind
}

// Counter is a monotonically increasing (by convention) int64 metric:
// cells computed, programs simulated, cache hits. All methods are safe
// for concurrent use.
type Counter struct {
	name string
	v    atomic.Int64
}

// GetCounter returns the counter registered under name, creating it on
// first use.
func GetCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	checkKind(name, "counter")
	c, ok := registry.counters[name]
	if !ok {
		c = &Counter{name: name}
		registry.counters[name] = c
	}
	return c
}

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Add adds n. When collection is disabled this is a single failed
// atomic load.
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins int64 metric: configured worker count,
// current model size. All methods are safe for concurrent use.
type Gauge struct {
	name string
	v    atomic.Int64
}

// GetGauge returns the gauge registered under name, creating it on
// first use.
func GetGauge(name string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	checkKind(name, "gauge")
	g, ok := registry.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		registry.gauges[name] = g
	}
	return g
}

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if enabled.Load() {
		g.v.Store(v)
	}
}

// Add adds n to the gauge.
func (g *Gauge) Add(n int64) {
	if enabled.Load() {
		g.v.Add(n)
	}
}

// SetMax raises the gauge to v if v is larger (a high-water mark).
func (g *Gauge) SetMax(v int64) {
	if !enabled.Load() {
		return
	}
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Scope is a dotted metric-name prefix: Scope("kernel").Counter("gram_cells")
// is GetCounter("kernel.gram_cells"). It exists so a package can declare
// its namespace once and mint metrics under it.
type Scope string

// Counter returns the scoped counter s.name.
func (s Scope) Counter(name string) *Counter { return GetCounter(string(s) + "." + name) }

// Gauge returns the scoped gauge s.name.
func (s Scope) Gauge(name string) *Gauge { return GetGauge(string(s) + "." + name) }

// Histogram returns the scoped histogram s.name.
func (s Scope) Histogram(name string) *Histogram { return GetHistogram(string(s) + "." + name) }

// Timer starts a timer on the scoped histogram s.name.
func (s Scope) Timer(name string) Timer { return s.Histogram(name).Start() }
