package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// StartProfiles enables the standard-library profilers for the paths
// that are non-empty: a CPU profile (runtime/pprof), a heap profile
// written at stop time, and an execution trace (runtime/trace). It
// returns a stop function that flushes and closes everything; callers
// must invoke it before exiting (CPU profiles and traces are empty
// otherwise). Any error during setup undoes the profilers already
// started.
func StartProfiles(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	var stops []func() error
	undo := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]() //nolint:errcheck — best-effort cleanup on the error path
		}
	}

	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			undo()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			undo()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}

	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			undo()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			undo()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		stops = append(stops, func() error {
			trace.Stop()
			return f.Close()
		})
	}

	if memPath != "" {
		stops = append(stops, func() error {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: heap profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("obs: heap profile: %w", err)
			}
			return nil
		})
	}

	return func() error {
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
