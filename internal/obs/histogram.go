package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers the full nonnegative int64 range with power-of-two
// buckets: bucket b holds values v with bits.Len64(v) == b, i.e.
// v in [2^(b-1), 2^b - 1] (bucket 0 holds v <= 0).
const numBuckets = 65

// Histogram is a lock-free exponential (power-of-two bucket) histogram
// over int64 observations — latencies in nanoseconds, sizes in elements.
// It tracks count, sum, min, and max exactly and the distribution at
// power-of-two resolution, which is all that trend tracking across runs
// needs. All methods are safe for concurrent use.
//
// A snapshot taken while writers are active may be internally
// inconsistent by a few in-flight observations (count, sum, and buckets
// are separate atomics); snapshots taken at rest — the manifest path —
// are exact.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64 // valid only when count > 0
	buckets [numBuckets]atomic.Int64
}

// GetHistogram returns the histogram registered under name, creating it
// on first use.
func GetHistogram(name string) *Histogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	checkKind(name, "histogram")
	h, ok := registry.hists[name]
	if !ok {
		h = &Histogram{name: name}
		h.reset()
		registry.hists[name] = h
	}
	return h
}

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// bucketIdx maps an observation to its power-of-two bucket.
func bucketIdx(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpper returns the inclusive upper bound of bucket b, saturating
// at MaxInt64.
func BucketUpper(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= 63 {
		return math.MaxInt64
	}
	return (int64(1) << b) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIdx(v)].Add(1)
	casMin(&h.min, v)
	casMax(&h.max, v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

func casMin(a *atomic.Int64, v int64) {
	for {
		old := a.Load()
		if v >= old || a.CompareAndSwap(old, v) {
			return
		}
	}
}

func casMax(a *atomic.Int64, v int64) {
	for {
		old := a.Load()
		if v <= old || a.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Timer measures one wall-clock interval into a histogram (in
// nanoseconds). The zero Timer is a no-op, which is what Start returns
// when collection is disabled — so the hot path pays nothing, not even a
// clock read.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Start begins a timing interval on h.
func (h *Histogram) Start() Timer {
	if !enabled.Load() {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// StartTimer is Start on the histogram registered under name. Hot paths
// should pre-resolve the histogram and call its Start method instead.
func StartTimer(name string) Timer { return GetHistogram(name).Start() }

// Stop records the elapsed time and returns it. On a zero Timer it
// records nothing and returns 0.
func (t Timer) Stop() time.Duration {
	if t.h == nil {
		return 0
	}
	d := time.Since(t.start)
	t.h.ObserveDuration(d)
	return d
}
