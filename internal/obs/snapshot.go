package obs

import (
	"encoding/json"
	"sort"
)

// Bucket is one non-empty power-of-two histogram bucket in a snapshot:
// N observations were <= Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// Metric is the snapshot of one registered metric. Value carries
// counters and gauges; Count/Sum/Min/Max/Mean/Buckets carry histograms.
type Metric struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"` // "counter", "gauge", or "histogram"
	Value   int64    `json:"value,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Min     int64    `json:"min,omitempty"`
	Max     int64    `json:"max,omitempty"`
	Mean    float64  `json:"mean,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns every registered metric sorted by name. The ordering
// and field layout are deterministic, so two snapshots of identical
// metric states marshal to identical JSON — CI diffs manifests across
// runs and must not see spurious churn.
func Snapshot() []Metric {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]Metric, 0, len(registry.counters)+len(registry.gauges)+len(registry.hists))
	for name, c := range registry.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range registry.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range registry.hists {
		m := Metric{Name: name, Kind: "histogram", Count: h.Count(), Sum: h.Sum()}
		if m.Count > 0 {
			m.Min = h.min.Load()
			m.Max = h.max.Load()
			m.Mean = float64(m.Sum) / float64(m.Count)
			for b := 0; b < numBuckets; b++ {
				if n := h.buckets[b].Load(); n > 0 {
					m.Buckets = append(m.Buckets, Bucket{Le: BucketUpper(b), N: n})
				}
			}
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SnapshotJSON returns the snapshot as indented JSON with stable key
// order (struct order) and stable metric order (sorted names).
func SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(Snapshot(), "", "  ")
}

// ResetMetrics zeroes every registered metric, keeping registrations.
// Tests and per-run tools call it so successive runs in one process
// start from a clean slate.
func ResetMetrics() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, g := range registry.gauges {
		g.v.Store(0)
	}
	for _, h := range registry.hists {
		h.reset()
	}
}
