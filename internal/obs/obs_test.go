package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// withEnabled runs the test body with collection forced on/off and the
// previous state restored.
func withEnabled(t *testing.T, on bool) {
	t.Helper()
	prev := SetEnabled(on)
	t.Cleanup(func() { SetEnabled(prev) })
}

func TestCounterConcurrentHammer(t *testing.T) {
	withEnabled(t, true)
	c := GetCounter("test.hammer_counter")
	c.v.Store(0)
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), int64(goroutines*perG); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

func TestHistogramConcurrentHammer(t *testing.T) {
	withEnabled(t, true)
	h := GetHistogram("test.hammer_hist")
	h.reset()
	const goroutines, perG = 16, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG + i))
			}
		}()
	}
	wg.Wait()
	n := int64(goroutines * perG)
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	if want := n * (n - 1) / 2; h.Sum() != want {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
	if h.min.Load() != 0 || h.max.Load() != n-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", h.min.Load(), h.max.Load(), n-1)
	}
	var inBuckets int64
	for i := range h.buckets {
		inBuckets += h.buckets[i].Load()
	}
	if inBuckets != n {
		t.Fatalf("bucket total = %d, want %d", inBuckets, n)
	}
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	withEnabled(t, true)
	g := GetGauge("test.hammer_gauge")
	g.v.Store(0)
	var wg sync.WaitGroup
	for w := 1; w <= 32; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.SetMax(int64(w))
		}()
	}
	wg.Wait()
	if g.Value() != 32 {
		t.Fatalf("gauge high-water = %d, want 32", g.Value())
	}
}

func TestKillSwitchNoOp(t *testing.T) {
	withEnabled(t, false)
	c := GetCounter("test.killswitch_counter")
	c.v.Store(0)
	g := GetGauge("test.killswitch_gauge")
	g.v.Store(0)
	h := GetHistogram("test.killswitch_hist")
	h.reset()

	c.Add(5)
	c.Inc()
	g.Set(9)
	g.Add(3)
	g.SetMax(7)
	h.Observe(123)
	tm := h.Start()
	if d := tm.Stop(); d != 0 {
		t.Fatalf("disabled timer returned %v, want 0", d)
	}

	if c.Value() != 0 {
		t.Fatalf("disabled counter advanced to %d", c.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("disabled gauge moved to %d", g.Value())
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("disabled histogram recorded count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	withEnabled(t, true)
	GetCounter("test.snap_b").Add(2)
	GetCounter("test.snap_a").Add(1)
	GetHistogram("test.snap_h").Observe(100)

	j1, err := SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshots of identical state differ:\n%s\nvs\n%s", j1, j2)
	}

	snap := Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not strictly sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}

	// The snapshot must survive a JSON round trip unchanged.
	var back []Metric
	if err := json.Unmarshal(j1, &back); err != nil {
		t.Fatal(err)
	}
	j3, err := json.MarshalIndent(back, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j3) {
		t.Fatalf("snapshot JSON not round-trip stable")
	}
}

func TestScopeAndTimer(t *testing.T) {
	withEnabled(t, true)
	s := Scope("test.scope")
	if got := s.Counter("c").Name(); got != "test.scope.c" {
		t.Fatalf("scoped counter name = %q", got)
	}
	if s.Counter("c") != GetCounter("test.scope.c") {
		t.Fatal("scoped counter is not the registered instance")
	}
	h := s.Histogram("t_ns")
	h.reset()
	tm := h.Start()
	time.Sleep(time.Millisecond)
	if d := tm.Stop(); d <= 0 {
		t.Fatalf("timer measured %v", d)
	}
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Fatalf("timer histogram count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestKindCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind collision")
		}
	}()
	GetCounter("test.collide")
	GetGauge("test.collide")
}

func TestBucketEdges(t *testing.T) {
	if bucketIdx(-5) != 0 || bucketIdx(0) != 0 {
		t.Fatal("nonpositive values must land in bucket 0")
	}
	if bucketIdx(1) != 1 || bucketIdx(2) != 2 || bucketIdx(3) != 2 || bucketIdx(4) != 3 {
		t.Fatal("small-value bucket mapping wrong")
	}
	if BucketUpper(0) != 0 || BucketUpper(1) != 1 || BucketUpper(2) != 3 {
		t.Fatal("bucket upper bounds wrong")
	}
	if BucketUpper(64) != math.MaxInt64 {
		t.Fatal("top bucket must saturate at MaxInt64")
	}
	h := GetHistogram("test.bucket_edges")
	withEnabled(t, true)
	h.reset()
	h.Observe(math.MaxInt64)
	h.Observe(math.MinInt64)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestResetMetrics(t *testing.T) {
	withEnabled(t, true)
	c := GetCounter("test.reset_counter")
	h := GetHistogram("test.reset_hist")
	c.Add(7)
	h.Observe(7)
	ResetMetrics()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("ResetMetrics left state behind")
	}
	snap := Snapshot()
	found := false
	for _, m := range snap {
		if m.Name == "test.reset_counter" {
			found = true
		}
	}
	if !found {
		t.Fatal("ResetMetrics dropped registrations")
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	defer SetEnabled(SetEnabled(true))
	c := GetCounter("bench.counter")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterDisabled(b *testing.B) {
	defer SetEnabled(SetEnabled(false))
	c := GetCounter("bench.counter")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	defer SetEnabled(SetEnabled(true))
	h := GetHistogram("bench.hist")
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			i++
			h.Observe(i)
		}
	})
}
