package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestManifestWriteAndReadBack(t *testing.T) {
	withEnabled(t, true)
	GetCounter("test.manifest_counter").Add(42)

	m := NewManifest("testcmd", 7, 4)
	m.AddStage("alpha", 1500*time.Millisecond)
	m.AddStage("beta", 250*time.Millisecond)
	m.Finish()

	if m.GoVersion == "" {
		t.Fatal("manifest missing go version")
	}
	if m.Revision == "" {
		t.Fatal("manifest missing revision (want hash or \"unknown\")")
	}
	if len(m.Stages) != 2 || m.Stages[0].Name != "alpha" || m.Stages[0].Seconds != 1.5 {
		t.Fatalf("stages = %+v", m.Stages)
	}
	if got, ok := m.Metric("test.manifest_counter"); !ok || got.Value != 42 {
		t.Fatalf("metric lookup = %+v, %v", got, ok)
	}
	if _, ok := m.Metric("test.no_such_metric"); ok {
		t.Fatal("lookup of unregistered metric succeeded")
	}

	path := filepath.Join(t.TempDir(), "m.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back.Command != "testcmd" || back.Seed != 7 || back.Workers != 4 {
		t.Fatalf("round trip lost header fields: %+v", back)
	}
	if len(back.Metrics) != len(m.Metrics) {
		t.Fatalf("round trip lost metrics: %d vs %d", len(back.Metrics), len(m.Metrics))
	}
}

func TestStartProfilesWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	tr := filepath.Join(dir, "trace.out")
	stop, err := StartProfiles(cpu, mem, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem, tr} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// All-empty paths: no-op stop.
	stop, err = StartProfiles("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
