package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// Stage is the wall time of one named experiment stage in a manifest.
type Stage struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Manifest is the machine-checkable record of one CLI run: what was run
// (command, args, seed, workers), on what (Go version, VCS revision),
// how long each stage took, and the full metric snapshot at exit. It is
// the unit of comparison for performance claims — "faster" means a
// manifest diff shows it.
type Manifest struct {
	Command     string    `json:"command"`
	Args        []string  `json:"args"`
	Seed        int64     `json:"seed"`
	Workers     int       `json:"workers"`
	GoVersion   string    `json:"go_version"`
	Revision    string    `json:"revision"`
	VCSModified bool      `json:"vcs_modified,omitempty"`
	Start       time.Time `json:"start"`
	WallSeconds float64   `json:"wall_seconds"`
	// FaultSites names the fault-injection sites active during the run
	// (empty for a clean run). CLIs set it from fault.ActiveSites() —
	// obs cannot import internal/fault (fault's counters come from obs)
	// — so a chaos run is identifiable from its manifest alone and can
	// be reproduced from its seed.
	FaultSites []string `json:"fault_sites,omitempty"`
	Stages     []Stage  `json:"stages"`
	Metrics    []Metric `json:"metrics"`
}

// BuildRevision reports the VCS revision the running binary was built
// from, and whether the checkout was dirty, read from
// debug.ReadBuildInfo. Binaries built inside a git checkout carry their
// vcs.revision; `go test` binaries and out-of-tree builds report
// "unknown". It is the single source of build identity for manifests,
// model artifacts, and the CLIs' -version flags.
func BuildRevision() (revision string, modified bool) {
	revision = "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				modified = s.Value == "true"
			}
		}
	}
	return revision, modified
}

// NewManifest starts a manifest for a run of command. Build metadata
// comes from BuildRevision.
func NewManifest(command string, seed int64, workers int) *Manifest {
	m := &Manifest{
		Command:   command,
		Args:      append([]string(nil), os.Args[1:]...),
		Seed:      seed,
		Workers:   workers,
		GoVersion: runtime.Version(),
		Start:     time.Now(),
	}
	m.Revision, m.VCSModified = BuildRevision()
	return m
}

// AddStage appends a named stage timing.
func (m *Manifest) AddStage(name string, d time.Duration) {
	m.Stages = append(m.Stages, Stage{Name: name, Seconds: d.Seconds()})
}

// Finish stamps the total wall time and captures the metric snapshot.
// Call it once, after the last stage.
func (m *Manifest) Finish() {
	m.WallSeconds = time.Since(m.Start).Seconds()
	m.Metrics = Snapshot()
}

// Metric returns the named metric from the captured snapshot.
func (m *Manifest) Metric(name string) (Metric, bool) {
	for _, mm := range m.Metrics {
		if mm.Name == name {
			return mm, true
		}
	}
	return Metric{}, false
}

// WriteFile writes the manifest as indented JSON to path.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}
