// Package datasets is the versioned dataset-export layer: it turns each
// of the repo's generative substrates (litho tile maps, ISA stress
// programs, mfgtest chips) into a durable benchmark artifact, the way
// internal/model turns a fitted learner into a durable model artifact.
//
// The paper's premise is that EDA data mining starts from reusable
// datasets mined out of design/test substrates; the benchmark suites in
// the related work (CircuitNet, EDALearn) are exactly that — seeded,
// versioned, carded datasets. Each export here follows the
// internal/model envelope discipline:
//
//  1. Schema-v1 header with the generation seed and config embedded, so
//     the artifact is self-describing.
//  2. SHA-256 payload checksum; Decode rejects any mismatch with a
//     typed error, never a silently wrong table.
//  3. Deterministic bytes: no timestamps, no build revision, no map
//     iteration — the exported file is a pure function of (seed,
//     config, code), so the same seed reproduces the same bytes and
//     checksum, which CI asserts against committed expectations.
//
// Every dataset ships with a generated markdown card documenting row
// and column semantics, the split definition, a license stub, and the
// one-line reproduction command.
package datasets

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
)

// SchemaVersion is the dataset artifact schema written by Marshal.
// Decode accepts only versions it knows how to read.
const SchemaVersion = 1

// KindDataset is the envelope kind tag; the single kind this package
// writes, present so a dataset artifact is never mistaken for a model
// artifact (and vice versa).
const KindDataset = "dataset"

// MaxDatasetBytes caps artifact size, mirroring model.MaxArtifactBytes:
// a full-scale export is a few megabytes, so 64 MiB leaves an order of
// magnitude of headroom while keeping oversized input a typed error
// instead of an allocation storm.
const MaxDatasetBytes = 64 << 20

// Sentinel errors; Decode and Load wrap them with context, match with
// errors.Is.
var (
	ErrSchemaVersion = errors.New("datasets: unsupported schema version")
	ErrChecksum      = errors.New("datasets: payload checksum mismatch")
	ErrKind          = errors.New("datasets: not a dataset artifact")
	// ErrInvalid marks an artifact that parsed but describes a table no
	// consumer could trust: ragged rows, non-finite values, column/row
	// counts that contradict the header.
	ErrInvalid  = errors.New("datasets: invalid payload")
	ErrOversize = errors.New("datasets: artifact exceeds size limit")
)

// Column documents one table column.
type Column struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
}

// Split documents the canonical train/test split baked into the table's
// split column: a seeded shuffle at the stated unit granularity (all
// rows of one unit land on the same side).
type Split struct {
	Unit      string  `json:"unit"`       // "window", "program", "chip"
	Column    string  `json:"column"`     // name of the 0/1 split column (1 = train)
	TrainFrac float64 `json:"train_frac"` // fraction of units in train
	Seed      int64   `json:"seed"`       // split shuffle seed
}

// payload is the checksummed inner document.
type payload struct {
	Columns []Column    `json:"columns"`
	Rows    [][]float64 `json:"rows"`
}

// Envelope is the stable outer layer of a dataset artifact.
type Envelope struct {
	SchemaVersion int             `json:"schema_version"`
	Kind          string          `json:"kind"`
	Name          string          `json:"name"`
	Seed          int64           `json:"seed"`
	Config        json.RawMessage `json:"config,omitempty"` // generator config, substrate-specific
	Split         *Split          `json:"split,omitempty"`
	Rows          int             `json:"rows"`
	Cols          int             `json:"cols"`
	Checksum      string          `json:"payload_sha256"`
	Payload       json.RawMessage `json:"payload"`
}

// Dataset is one built benchmark table plus the prose that goes on its
// card. Builders produce it; Marshal/Save serialize it.
type Dataset struct {
	Name    string
	Desc    string // one-paragraph card description
	RowDesc string // what one row is
	Seed    int64
	Quick   bool // built at quick scale; the card's repro command must say so
	Config  any  // marshaled into the envelope config field
	Split   *Split
	Columns []Column
	Rows    [][]float64
}

// checksum returns the hex SHA-256 of the payload in compact JSON form
// (the same convention as internal/model).
func checksum(p []byte) (string, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, p); err != nil {
		return "", fmt.Errorf("datasets: compact payload: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// Encode wraps the dataset in a schema-v1 envelope.
func (d *Dataset) Encode() (*Envelope, error) {
	if d.Name == "" {
		return nil, fmt.Errorf("%w: empty dataset name", ErrInvalid)
	}
	if len(d.Rows) == 0 || len(d.Columns) == 0 {
		return nil, fmt.Errorf("%w: empty table", ErrInvalid)
	}
	for i, row := range d.Rows {
		if len(row) != len(d.Columns) {
			return nil, fmt.Errorf("%w: row %d has %d values, want %d", ErrInvalid, i, len(row), len(d.Columns))
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: non-finite value at row %d col %d", ErrInvalid, i, j)
			}
		}
	}
	pl, err := json.Marshal(payload{Columns: d.Columns, Rows: d.Rows})
	if err != nil {
		return nil, fmt.Errorf("datasets: marshal payload: %w", err)
	}
	sum, err := checksum(pl)
	if err != nil {
		return nil, err
	}
	var cfg json.RawMessage
	if d.Config != nil {
		cfg, err = json.Marshal(d.Config)
		if err != nil {
			return nil, fmt.Errorf("datasets: marshal config: %w", err)
		}
	}
	return &Envelope{
		SchemaVersion: SchemaVersion,
		Kind:          KindDataset,
		Name:          d.Name,
		Seed:          d.Seed,
		Config:        cfg,
		Split:         d.Split,
		Rows:          len(d.Rows),
		Cols:          len(d.Columns),
		Checksum:      sum,
		Payload:       pl,
	}, nil
}

// Marshal renders the dataset artifact as indented JSON. The bytes are
// a pure function of the dataset contents — no timestamps, no build
// revision — so re-exporting with the same seed is byte-identical.
func (d *Dataset) Marshal() ([]byte, error) {
	env, err := d.Encode()
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("datasets: marshal envelope: %w", err)
	}
	return append(data, '\n'), nil
}

// Decode validates a dataset artifact: size cap, schema version, kind
// tag, checksum, payload shape, and value finiteness, each failing with
// a typed error.
func Decode(data []byte) (*Envelope, []Column, [][]float64, error) {
	if len(data) > MaxDatasetBytes {
		return nil, nil, nil, fmt.Errorf("%w: %d bytes > %d", ErrOversize, len(data), MaxDatasetBytes)
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, nil, nil, fmt.Errorf("datasets: parse envelope: %w", err)
	}
	if env.SchemaVersion != SchemaVersion {
		return nil, nil, nil, fmt.Errorf("%w: got %d, this build reads %d",
			ErrSchemaVersion, env.SchemaVersion, SchemaVersion)
	}
	if env.Kind != KindDataset {
		return nil, nil, nil, fmt.Errorf("%w: kind %q", ErrKind, env.Kind)
	}
	if env.Name == "" {
		return nil, nil, nil, fmt.Errorf("%w: empty dataset name", ErrInvalid)
	}
	got, err := checksum(env.Payload)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: payload is not valid JSON: %v", ErrInvalid, err)
	}
	if got != env.Checksum {
		return nil, nil, nil, fmt.Errorf("%w: envelope says %s, payload hashes to %s",
			ErrChecksum, env.Checksum, got)
	}
	var pl payload
	if err := json.Unmarshal(env.Payload, &pl); err != nil {
		return nil, nil, nil, fmt.Errorf("%w: parse payload: %v", ErrInvalid, err)
	}
	if len(pl.Columns) != env.Cols {
		return nil, nil, nil, fmt.Errorf("%w: header says %d cols, payload has %d", ErrInvalid, env.Cols, len(pl.Columns))
	}
	if len(pl.Rows) != env.Rows {
		return nil, nil, nil, fmt.Errorf("%w: header says %d rows, payload has %d", ErrInvalid, env.Rows, len(pl.Rows))
	}
	for i, row := range pl.Rows {
		if len(row) != len(pl.Columns) {
			return nil, nil, nil, fmt.Errorf("%w: row %d has %d values, want %d", ErrInvalid, i, len(row), len(pl.Columns))
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, nil, nil, fmt.Errorf("%w: non-finite value at row %d col %d", ErrInvalid, i, j)
			}
		}
	}
	if env.Split != nil {
		found := false
		for _, c := range pl.Columns {
			if c.Name == env.Split.Column {
				found = true
				break
			}
		}
		if !found {
			return nil, nil, nil, fmt.Errorf("%w: split column %q not in table", ErrInvalid, env.Split.Column)
		}
	}
	return &env, pl.Columns, pl.Rows, nil
}

// Load reads and decodes a dataset artifact file, refusing oversized
// files before reading them.
func Load(path string) (*Envelope, []Column, [][]float64, error) {
	if fi, err := os.Stat(path); err == nil && fi.Size() > MaxDatasetBytes {
		return nil, nil, nil, fmt.Errorf("%s: %w: %d bytes > %d", path, ErrOversize, fi.Size(), MaxDatasetBytes)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("datasets: read artifact: %w", err)
	}
	env, cols, rows, err := Decode(data)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return env, cols, rows, nil
}

// Card renders the markdown dataset card: description, provenance
// (seed, checksum, shape), column semantics, split definition, license
// stub, and the one-line reproduction command.
func (d *Dataset) Card() (string, error) {
	env, err := d.Encode()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# Dataset card: %s\n\n", d.Name)
	fmt.Fprintf(&b, "%s\n\n", strings.TrimSpace(d.Desc))
	fmt.Fprintf(&b, "## Provenance\n\n")
	fmt.Fprintf(&b, "- schema version: %d\n", env.SchemaVersion)
	fmt.Fprintf(&b, "- generation seed: %d\n", d.Seed)
	fmt.Fprintf(&b, "- rows: %d, columns: %d\n", env.Rows, env.Cols)
	fmt.Fprintf(&b, "- payload sha256: `%s`\n", env.Checksum)
	if len(env.Config) > 0 {
		fmt.Fprintf(&b, "- generator config: `%s`\n", env.Config)
	}
	fmt.Fprintf(&b, "\nThe exported bytes are a pure function of the seed and config above;\nre-running the reproduction command reproduces this file and checksum exactly.\n\n")
	fmt.Fprintf(&b, "## Rows\n\nOne row is %s.\n\n", strings.TrimSpace(d.RowDesc))
	fmt.Fprintf(&b, "## Columns\n\n| column | description |\n|---|---|\n")
	for _, c := range d.Columns {
		fmt.Fprintf(&b, "| `%s` | %s |\n", c.Name, c.Desc)
	}
	if d.Split != nil {
		fmt.Fprintf(&b, "\n## Split\n\nCanonical train/test split: seeded shuffle (seed %d) at %s granularity —\nall rows of one %s land on the same side. Column `%s` is 1 for train\n(%.0f%% of %ss) and 0 for test. Evaluations must respect this split;\ntile/row-level splits leak spatially correlated neighbours.\n",
			d.Split.Seed, d.Split.Unit, d.Split.Unit, d.Split.Column, 100*d.Split.TrainFrac, d.Split.Unit)
	}
	fmt.Fprintf(&b, "\n## License\n\nCC BY 4.0 (synthetic data; no real design or test data included).\n")
	quick := ""
	if d.Quick {
		quick = "-quick "
	}
	fmt.Fprintf(&b, "\n## Reproduce\n\n```\ngo run ./cmd/edamine -seed %d %sdatasets -only %s -out <dir>\n```\n", d.Seed, quick, d.Name)
	return b.String(), nil
}

// Save writes the artifact (<name>.json) and its card (<name>.card.md)
// under dir, returning the envelope it wrote.
func (d *Dataset) Save(dir string) (*Envelope, error) {
	data, err := d.Marshal()
	if err != nil {
		return nil, err
	}
	card, err := d.Card()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("datasets: mkdir: %w", err)
	}
	if err := os.WriteFile(dir+"/"+d.Name+".json", data, 0o644); err != nil {
		return nil, fmt.Errorf("datasets: write artifact: %w", err)
	}
	if err := os.WriteFile(dir+"/"+d.Name+".card.md", []byte(card), 0o644); err != nil {
		return nil, fmt.Errorf("datasets: write card: %w", err)
	}
	env, err := d.Encode()
	if err != nil {
		return nil, err
	}
	return env, nil
}
