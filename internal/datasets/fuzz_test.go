package datasets

// FuzzDatasetDecode: datasets.Decode must return a typed error — never
// panic, never hang, never hand back an inconsistent table — on
// arbitrary untrusted bytes. The committed files under
// testdata/fuzz/FuzzDatasetDecode seed the corpus; scripts/fuzz.sh runs
// the bounded sweep in CI.

import (
	"math"
	"testing"
)

func FuzzDatasetDecode(f *testing.F) {
	// A valid artifact seeds the interesting region of the input space.
	d, err := Build("mfgtest-chips", Options{Seed: 1, Quick: true})
	if err != nil {
		f.Fatal(err)
	}
	good, err := d.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{"schema_version":1,"kind":"dataset","name":"x","rows":1,"cols":1,"payload_sha256":"0","payload":{"columns":[{"name":"a"}],"rows":[[1]]}}`))
	f.Add([]byte(`{"schema_version":99,"kind":"dataset"}`))
	f.Add([]byte(`{"schema_version":1,"kind":"model"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, cols, rows, err := Decode(data)
		if err != nil {
			return
		}
		// On success the returned table must honor every envelope claim.
		if env.SchemaVersion != SchemaVersion || env.Kind != KindDataset || env.Name == "" {
			t.Fatalf("decode accepted an invalid envelope: %+v", env)
		}
		if len(cols) != env.Cols || len(rows) != env.Rows {
			t.Fatalf("decode returned %d cols/%d rows, envelope says %d/%d",
				len(cols), len(rows), env.Cols, env.Rows)
		}
		for i, row := range rows {
			if len(row) != len(cols) {
				t.Fatalf("row %d ragged after successful decode", i)
			}
			for j, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite value at %d,%d after successful decode", i, j)
				}
			}
		}
	})
}
