package datasets

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The golden files freeze dataset schema v1: tiny quick-scale exports
// of every substrate at a fixed seed, committed to testdata/. They pin
// both the envelope format and the generators behind it — any change to
// layout generation, stress emission, or the chip model shows up as a
// byte diff here before it silently changes the published benchmark.
// Regenerate only when intentionally re-baselining:
//
//	go test ./internal/datasets -run TestGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden datasets from current code")

const goldenSeed = 42

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden_v1_"+name+".json")
}

func TestGoldenDatasets(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			d := buildQuick(t, name, goldenSeed)
			got, err := d.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if *updateGolden {
				if err := os.WriteFile(goldenPath(name), got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", goldenPath(name), len(got))
			}
			want, err := os.ReadFile(goldenPath(name))
			if err != nil {
				t.Fatalf("read golden (run with -update-golden to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: current export differs from committed golden (%d vs %d bytes).\n"+
					"The dataset is no longer reproducible from its seed — if the generator\n"+
					"change is intentional, re-baseline with -update-golden.",
					name, len(got), len(want))
			}
			// The committed artifact must decode cleanly and carry a
			// checksum the current code agrees with.
			env, cols, rows, err := Decode(want)
			if err != nil {
				t.Fatalf("%s: committed golden fails decode: %v", name, err)
			}
			if env.Seed != goldenSeed || len(cols) != env.Cols || len(rows) != env.Rows {
				t.Fatalf("%s: golden envelope inconsistent: %+v", name, env)
			}
			cur, err := d.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if cur.Checksum != env.Checksum {
				t.Fatalf("%s: checksum drifted: golden %s, current %s", name, env.Checksum, cur.Checksum)
			}
		})
	}
}
