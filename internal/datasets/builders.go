package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/maps"
	"repro/internal/mfgtest"
)

// Options controls dataset generation scale.
type Options struct {
	Seed  int64
	Quick bool // reduced-scale export for smoke tests
}

func (o Options) scale(q, f int) int {
	if o.Quick {
		return q
	}
	return f
}

// Names lists the exportable datasets in stable order.
func Names() []string { return []string{"litho-maps", "isa-stress", "mfgtest-chips"} }

// Build dispatches to the named builder.
func Build(name string, opt Options) (*Dataset, error) {
	switch name {
	case "litho-maps":
		return BuildLithoMaps(opt)
	case "isa-stress":
		return BuildISAStress(opt)
	case "mfgtest-chips":
		return BuildMfgtestChips(opt)
	}
	return nil, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, Names())
}

// BuildAll builds every dataset.
func BuildAll(opt Options) ([]*Dataset, error) {
	out := make([]*Dataset, 0, len(Names()))
	for _, name := range Names() {
		d, err := Build(name, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// splitFlags assigns 0/1 train flags to n units with a seeded shuffle.
func splitFlags(seed int64, n int, trainFrac float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	nTrain := int(trainFrac * float64(n))
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain >= n && n > 1 {
		nTrain = n - 1
	}
	flags := make([]float64, n)
	for k, idx := range perm {
		if k < nTrain {
			flags[idx] = 1
		}
	}
	return flags
}

// lithoMapsConfig is the generator config recorded in the envelope.
type lithoMapsConfig struct {
	Windows int              `json:"windows"`
	Label   maps.LabelConfig `json:"label"`
}

// BuildLithoMaps exports the spatial map-regression benchmark: windows
// of Manhattan layout tiled into a grid, mask-only tile features, and
// golden per-tile variability labels from the aerial-image model.
func BuildLithoMaps(opt Options) (*Dataset, error) {
	var label maps.LabelConfig
	label.Defaults()
	cfg := lithoMapsConfig{Windows: opt.scale(12, 48), Label: label}
	samples, err := maps.BuildSamples(opt.Seed, cfg.Windows, label)
	if err != nil {
		return nil, err
	}
	const trainFrac = 0.7
	splitSeed := opt.Seed + 1
	flags := splitFlags(splitSeed, len(samples), trainFrac)

	cols := []Column{
		{Name: "window", Desc: "window index within this export"},
		{Name: "tile_i", Desc: "tile row (y direction)"},
		{Name: "tile_j", Desc: "tile column (x direction)"},
		{Name: "split", Desc: "1 = train, 0 = test (window-level split)"},
	}
	featNames := maps.FeatureNames(label)
	featDescs := map[string]string{
		"tile_density": "drawn fraction of the tile proper",
		"halo_density": "drawn fraction of the halo ring around the tile",
		"edge_rate":    "mask 0↔1 transitions per adjacent pixel pair in the region",
	}
	for _, fn := range featNames {
		desc, ok := featDescs[fn]
		if !ok {
			desc = "local-density histogram mass (block scale and bin in the name)"
		}
		cols = append(cols, Column{Name: fn, Desc: desc})
	}
	cols = append(cols,
		Column{Name: "var_score", Desc: "golden label: mean inverse image slope over the tile's print contour (0 = no contour)"},
		Column{Name: "weak_frac", Desc: "golden label: fraction of the tile's contour pixels below the weak-slope threshold"},
	)

	g := label.Grid()
	rows := make([][]float64, 0, len(samples)*g*g)
	for wi, s := range samples {
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				row := make([]float64, 0, len(cols))
				row = append(row, float64(wi), float64(i), float64(j), flags[wi])
				row = append(row, maps.TileFeatures(s.Window, i, j, label)...)
				row = append(row, s.Score.At(i, j), s.Weak.At(i, j))
				rows = append(rows, row)
			}
		}
	}
	return &Dataset{
		Name: "litho-maps",
		Desc: "Spatial map-regression benchmark over the lithography substrate: " +
			"each layout window is tiled into a grid and every tile carries mask-only " +
			"features plus golden variability labels from the first-principles aerial-image " +
			"model. The task is to predict the per-tile variability/hotspot map without " +
			"running the golden simulation (the CircuitNet-style 2D-map prediction task).",
		RowDesc: "one tile of one layout window",
		Seed:    opt.Seed,
		Quick:   opt.Quick,
		Config:  cfg,
		Split:   &Split{Unit: "window", Column: "split", TrainFrac: trainFrac, Seed: splitSeed},
		Columns: cols,
		Rows:    rows,
	}, nil
}

// isaStressConfig is the generator config recorded in the envelope.
type isaStressConfig struct {
	PerProfile int `json:"per_profile"`
	Len        int `json:"len"`
}

// BuildISAStress exports the stress-program benchmark: constrained
// stress programs from every instruction-mix profile, with static
// features, realized mixes, and simulated coverage/cycle outcomes.
func BuildISAStress(opt Options) (*Dataset, error) {
	cfg := isaStressConfig{PerProfile: opt.scale(12, 40), Len: 64}
	profiles := isa.StressProfiles()
	var progs []isa.Program
	var profIdx []int
	for pi, prof := range profiles {
		g, err := isa.NewStressGen(isa.StressConfig{Profile: prof.Name, Len: cfg.Len}, opt.Seed+int64(pi))
		if err != nil {
			return nil, err
		}
		for _, p := range g.Batch(cfg.PerProfile) {
			progs = append(progs, p)
			profIdx = append(profIdx, pi)
		}
	}
	covs, cycles := isa.SimulateBatch(progs)
	feats := isa.FeatureBatch(progs)
	const trainFrac = 0.7
	splitSeed := opt.Seed + 1
	flags := splitFlags(splitSeed, len(progs), trainFrac)

	cols := []Column{
		{Name: "program", Desc: "program index within this export"},
		{Name: "profile", Desc: "stress profile index (0=alu-heavy, 1=store-heavy, 2=hazard-dense, 3=loop-nest)"},
		{Name: "split", Desc: "1 = train, 0 = test (program-level split)"},
		{Name: "len", Desc: "instructions in the program"},
		{Name: "cycles", Desc: "simulated cycles on the reference machine"},
		{Name: "cov_bins", Desc: "distinct coverage bins the program hit (of the event×width×region cross)"},
		{Name: "mix_alu", Desc: "realized ALU instruction fraction"},
		{Name: "mix_load", Desc: "realized load fraction"},
		{Name: "mix_store", Desc: "realized store fraction"},
	}
	for _, fn := range isa.FeatureNames {
		cols = append(cols, Column{Name: "f_" + fn, Desc: "static program feature (see internal/isa FeatureNames)"})
	}

	rows := make([][]float64, len(progs))
	for i, p := range progs {
		hit := 0
		for _, c := range covs[i] {
			if c > 0 {
				hit++
			}
		}
		mix := isa.RealizedMix(p)
		row := make([]float64, 0, len(cols))
		row = append(row, float64(i), float64(profIdx[i]), flags[i],
			float64(len(p)), float64(cycles[i]), float64(hit),
			mix.ALU, mix.Load, mix.Store)
		row = append(row, feats[i]...)
		rows[i] = row
	}
	return &Dataset{
		Name: "isa-stress",
		Desc: "Stress-program benchmark over the ISA substrate: ChiBench-style " +
			"constrained programs from four instruction-mix profiles (alu-heavy, " +
			"store-heavy, hazard-dense, loop-nest), each simulated on the reference " +
			"machine. Tasks: predict coverage or cycle outcomes from static features, " +
			"or select high-novelty programs before simulation (the paper's Figure 7 loop).",
		RowDesc: "one generated stress program",
		Seed:    opt.Seed,
		Quick:   opt.Quick,
		Config:  cfg,
		Split:   &Split{Unit: "program", Column: "split", TrainFrac: trainFrac, Seed: splitSeed},
		Columns: cols,
		Rows:    rows,
	}, nil
}

// mfgtestChipsConfig is the generator config recorded in the envelope.
type mfgtestChipsConfig struct {
	Chips int `json:"chips"`
	Tests int `json:"tests"`
}

// BuildMfgtestChips exports the manufacturing-test benchmark: chips
// drawn from the correlated parametric model with latent field defects
// (the substrate behind the Figure 11 customer-returns study).
func BuildMfgtestChips(opt Options) (*Dataset, error) {
	cfg := mfgtestChipsConfig{Chips: opt.scale(150, 600), Tests: 16}
	s := mfgtest.NewReturnsScenario(cfg.Tests)
	rng := rand.New(rand.NewSource(opt.Seed))
	chips := s.Model.Sample(rng, cfg.Chips, 0, s.Defect)
	const trainFrac = 0.7
	splitSeed := opt.Seed + 1
	flags := splitFlags(splitSeed, len(chips), trainFrac)

	cols := []Column{
		{Name: "chip", Desc: "chip ID"},
		{Name: "wafer", Desc: "wafer index (chips on a wafer share a process offset)"},
		{Name: "split", Desc: "1 = train, 0 = test (chip-level split)"},
	}
	for j := 0; j < cfg.Tests; j++ {
		cols = append(cols, Column{
			Name: fmt.Sprintf("meas_%02d", j),
			Desc: fmt.Sprintf("parametric test %02d measurement", j),
		})
	}
	cols = append(cols,
		Column{Name: "pass", Desc: "1 if the chip passes all production test limits"},
		Column{Name: "latent_defect", Desc: "1 if the chip carries a latent defect (fails in the field if shipped) — the prediction target"},
	)

	rows := make([][]float64, len(chips))
	for i := range chips {
		c := &chips[i]
		row := make([]float64, 0, len(cols))
		row = append(row, float64(c.ID), float64(c.Wafer), flags[i])
		row = append(row, c.Meas...)
		pass, latent := 0.0, 0.0
		if s.Limits.Pass(c) {
			pass = 1
		}
		if c.LatentDefect {
			latent = 1
		}
		row = append(row, pass, latent)
		rows[i] = row
	}
	return &Dataset{
		Name: "mfgtest-chips",
		Desc: "Manufacturing-test benchmark over the mfgtest substrate: chips from a " +
			"correlated linear factor model of parametric tests, with wafer-level process " +
			"offsets and rare latent defects that production limits miss. Tasks: predict " +
			"latent defects from parametric measurements on passing chips (the paper's " +
			"Figure 11 customer-returns study) under extreme class imbalance.",
		RowDesc: "one tested chip",
		Seed:    opt.Seed,
		Quick:   opt.Quick,
		Config:  cfg,
		Split:   &Split{Unit: "chip", Column: "split", TrainFrac: trainFrac, Seed: splitSeed},
		Columns: cols,
		Rows:    rows,
	}, nil
}
