package datasets

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func buildQuick(t *testing.T, name string, seed int64) *Dataset {
	t.Helper()
	d, err := Build(name, Options{Seed: seed, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRoundTripAllDatasets(t *testing.T) {
	for _, name := range Names() {
		d := buildQuick(t, name, 7)
		data, err := d.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		env, cols, rows, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if env.Name != name || env.Seed != 7 || env.SchemaVersion != SchemaVersion {
			t.Fatalf("%s: envelope %+v lost identity", name, env)
		}
		if !reflect.DeepEqual(cols, d.Columns) {
			t.Fatalf("%s: columns did not round-trip", name)
		}
		if !reflect.DeepEqual(rows, d.Rows) {
			t.Fatalf("%s: rows did not round-trip bit-exactly", name)
		}
		if env.Split == nil || env.Split.Column != "split" {
			t.Fatalf("%s: split definition missing from envelope", name)
		}
	}
}

func TestExportIsBitReproducible(t *testing.T) {
	for _, name := range Names() {
		a, err := buildQuick(t, name, 11).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		b, err := buildQuick(t, name, 11).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: same seed produced different bytes", name)
		}
	}
}

func TestSeedFlipChangesChecksum(t *testing.T) {
	for _, name := range Names() {
		e1, err := buildQuick(t, name, 11).Encode()
		if err != nil {
			t.Fatal(err)
		}
		e2, err := buildQuick(t, name, 12).Encode()
		if err != nil {
			t.Fatal(err)
		}
		if e1.Checksum == e2.Checksum {
			t.Fatalf("%s: seeds 11 and 12 produced the same checksum %s", name, e1.Checksum)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	d := buildQuick(t, "mfgtest-chips", 5)
	good, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("payload-tamper", func(t *testing.T) {
		// Perturb one table value, keep the original checksum.
		var env Envelope
		if err := json.Unmarshal(good, &env); err != nil {
			t.Fatal(err)
		}
		var pl struct {
			Columns []Column    `json:"columns"`
			Rows    [][]float64 `json:"rows"`
		}
		if err := json.Unmarshal(env.Payload, &pl); err != nil {
			t.Fatal(err)
		}
		pl.Rows[0][0]++
		tampered, err := json.Marshal(pl)
		if err != nil {
			t.Fatal(err)
		}
		env.Payload = tampered
		bad, _ := json.Marshal(&env)
		if _, _, _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
			t.Fatalf("tampered payload: got %v, want ErrChecksum", err)
		}
	})
	t.Run("checksum-tamper", func(t *testing.T) {
		var env Envelope
		if err := json.Unmarshal(good, &env); err != nil {
			t.Fatal(err)
		}
		env.Checksum = strings.Repeat("0", 64)
		bad, _ := json.Marshal(&env)
		if _, _, _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
			t.Fatalf("forged checksum: got %v, want ErrChecksum", err)
		}
	})
	t.Run("schema-version", func(t *testing.T) {
		bad := bytes.Replace(good, []byte(`"schema_version": 1`), []byte(`"schema_version": 99`), 1)
		if _, _, _, err := Decode(bad); !errors.Is(err, ErrSchemaVersion) {
			t.Fatalf("future schema: got %v, want ErrSchemaVersion", err)
		}
	})
	t.Run("wrong-kind", func(t *testing.T) {
		bad := bytes.Replace(good, []byte(`"kind": "dataset"`), []byte(`"kind": "model"`), 1)
		if _, _, _, err := Decode(bad); !errors.Is(err, ErrKind) {
			t.Fatalf("model kind: got %v, want ErrKind", err)
		}
	})
	t.Run("row-count-lie", func(t *testing.T) {
		var env Envelope
		if err := json.Unmarshal(good, &env); err != nil {
			t.Fatal(err)
		}
		env.Rows++
		bad, _ := json.Marshal(&env)
		if _, _, _, err := Decode(bad); !errors.Is(err, ErrInvalid) {
			t.Fatalf("row-count lie: got %v, want ErrInvalid", err)
		}
	})
	t.Run("oversize", func(t *testing.T) {
		big := make([]byte, MaxDatasetBytes+1)
		if _, _, _, err := Decode(big); !errors.Is(err, ErrOversize) {
			t.Fatalf("oversize: got %v, want ErrOversize", err)
		}
	})
	t.Run("garbage", func(t *testing.T) {
		if _, _, _, err := Decode([]byte("not json")); err == nil {
			t.Fatal("garbage decoded without error")
		}
	})
}

func TestEncodeRejectsBadTables(t *testing.T) {
	base := func() *Dataset {
		return &Dataset{
			Name:    "x",
			Columns: []Column{{Name: "a"}, {Name: "b"}},
			Rows:    [][]float64{{1, 2}},
		}
	}
	d := base()
	d.Rows = append(d.Rows, []float64{1})
	if _, err := d.Encode(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("ragged rows: got %v, want ErrInvalid", err)
	}
	d = base()
	d.Rows[0][1] = nan()
	if _, err := d.Encode(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("NaN value: got %v, want ErrInvalid", err)
	}
	d = base()
	d.Name = ""
	if _, err := d.Encode(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty name: got %v, want ErrInvalid", err)
	}
	if _, err := Build("no-such-dataset", Options{}); err == nil {
		t.Fatal("unknown dataset built without error")
	}
}

func nan() float64 { z := 0.0; return z / z }

func TestCardContents(t *testing.T) {
	for _, name := range Names() {
		d := buildQuick(t, name, 9)
		card, err := d.Card()
		if err != nil {
			t.Fatal(err)
		}
		env, err := d.Encode()
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{
			"# Dataset card: " + name,
			"generation seed: 9",
			env.Checksum,
			"## Columns",
			"## Split",
			"CC BY 4.0",
			"go run ./cmd/edamine -seed 9 -quick datasets -only " + name,
		} {
			if !strings.Contains(card, want) {
				t.Fatalf("%s card missing %q:\n%s", name, want, card)
			}
		}
		for _, c := range d.Columns {
			if !strings.Contains(card, "`"+c.Name+"`") {
				t.Fatalf("%s card missing column %s", name, c.Name)
			}
		}
	}
}

func TestSaveAndLoad(t *testing.T) {
	dir := t.TempDir()
	d := buildQuick(t, "isa-stress", 3)
	env, err := d.Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, cols, rows, err := Load(dir + "/isa-stress.json")
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum != env.Checksum || len(cols) != env.Cols || len(rows) != env.Rows {
		t.Fatalf("loaded artifact disagrees with saved envelope")
	}
	if _, _, _, err := Load(dir + "/missing.json"); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

func TestSplitFlags(t *testing.T) {
	flags := splitFlags(1, 10, 0.7)
	n := 0
	for _, f := range flags {
		if f != 0 && f != 1 {
			t.Fatalf("flag %v not 0/1", f)
		}
		if f == 1 {
			n++
		}
	}
	if n != 7 {
		t.Fatalf("got %d train units of 10 at frac 0.7, want 7", n)
	}
	if !reflect.DeepEqual(flags, splitFlags(1, 10, 0.7)) {
		t.Fatal("split flags are not a pure function of the seed")
	}
	// Degenerate sizes never produce an empty side.
	f2 := splitFlags(1, 2, 0.99)
	if f2[0]+f2[1] != 1 {
		t.Fatalf("2-unit split %v does not have exactly one train unit", f2)
	}
}
