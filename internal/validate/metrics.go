// Package validate provides evaluation metrics, confusion matrices, ROC/AUC,
// k-fold cross-validation, and the train-vs-validation complexity curves
// that visualize overfitting (paper Section 2.3, Figure 5).
package validate

import (
	"fmt"
	"math"
	"sort"
)

// Accuracy returns the fraction of equal entries in pred and truth.
func Accuracy(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("validate: Accuracy length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	ok := 0
	for i := range pred {
		if pred[i] == truth[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(pred))
}

// ConfusionMatrix counts outcomes of a binary task with positive class pos.
type ConfusionMatrix struct {
	TP, FP, TN, FN int
}

// Confusion tallies a binary confusion matrix treating label pos as positive.
func Confusion(pred, truth []float64, pos float64) ConfusionMatrix {
	var c ConfusionMatrix
	for i := range pred {
		p := pred[i] == pos
		t := truth[i] == pos
		switch {
		case p && t:
			c.TP++
		case p && !t:
			c.FP++
		case !p && t:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP/(TP+FP), or 0 when no positives were predicted.
func (c ConfusionMatrix) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there are no true positives to find.
func (c ConfusionMatrix) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c ConfusionMatrix) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FalsePositiveRate returns FP/(FP+TN).
func (c ConfusionMatrix) FalsePositiveRate() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// String renders the matrix compactly.
func (c ConfusionMatrix) String() string {
	return fmt.Sprintf("TP=%d FP=%d FN=%d TN=%d P=%.3f R=%.3f F1=%.3f",
		c.TP, c.FP, c.FN, c.TN, c.Precision(), c.Recall(), c.F1())
}

// AUC computes the area under the ROC curve from decision scores (higher
// score = more positive) and binary truth labels where pos marks positives.
// Ties in score are handled by the rank-sum (Mann-Whitney) formulation.
func AUC(scores, truth []float64, pos float64) float64 {
	if len(scores) != len(truth) {
		panic("validate: AUC length mismatch")
	}
	type sc struct {
		s   float64
		pos bool
	}
	items := make([]sc, len(scores))
	nPos, nNeg := 0, 0
	for i := range scores {
		p := truth[i] == pos
		items[i] = sc{scores[i], p}
		if p {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return math.NaN()
	}
	sort.Slice(items, func(i, j int) bool { return items[i].s < items[j].s })
	// Average ranks with tie handling.
	ranks := make([]float64, len(items))
	i := 0
	for i < len(items) {
		j := i
		for j+1 < len(items) && items[j+1].s == items[i].s {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[k] = avg
		}
		i = j + 1
	}
	rankSum := 0.0
	for k, it := range items {
		if it.pos {
			rankSum += ranks[k]
		}
	}
	u := rankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// MSE returns the mean squared error.
func MSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("validate: MSE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// RMSE returns sqrt(MSE).
func RMSE(pred, truth []float64) float64 { return math.Sqrt(MSE(pred, truth)) }

// MAE returns the mean absolute error.
func MAE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("validate: MAE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// R2 returns the coefficient of determination 1 - SS_res/SS_tot.
func R2(pred, truth []float64) float64 {
	if len(truth) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range truth {
		mean += v
	}
	mean /= float64(len(truth))
	ssTot, ssRes := 0.0, 0.0
	for i := range truth {
		d := truth[i] - mean
		ssTot += d * d
		e := truth[i] - pred[i]
		ssRes += e * e
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}
