package validate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g want %g", msg, got, want)
	}
}

func TestAccuracy(t *testing.T) {
	approx(t, Accuracy([]float64{1, 0, 1, 1}, []float64{1, 0, 0, 1}), 0.75, 1e-12, "accuracy")
	approx(t, Accuracy(nil, nil), 0, 0, "empty accuracy")
}

func TestConfusionMetrics(t *testing.T) {
	pred := []float64{1, 1, 0, 0, 1}
	truth := []float64{1, 0, 0, 1, 1}
	c := Confusion(pred, truth, 1)
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion %+v", c)
	}
	approx(t, c.Precision(), 2.0/3.0, 1e-12, "precision")
	approx(t, c.Recall(), 2.0/3.0, 1e-12, "recall")
	approx(t, c.F1(), 2.0/3.0, 1e-12, "f1")
	approx(t, c.FalsePositiveRate(), 0.5, 1e-12, "fpr")
	var empty ConfusionMatrix
	approx(t, empty.Precision(), 0, 0, "empty precision")
	approx(t, empty.Recall(), 0, 0, "empty recall")
	approx(t, empty.F1(), 0, 0, "empty f1")
	if empty.String() == "" {
		t.Fatal("string empty")
	}
}

func TestAUC(t *testing.T) {
	// Perfect separation.
	approx(t, AUC([]float64{0.1, 0.2, 0.8, 0.9}, []float64{0, 0, 1, 1}, 1), 1, 1e-12, "perfect AUC")
	// Perfectly wrong.
	approx(t, AUC([]float64{0.9, 0.8, 0.2, 0.1}, []float64{0, 0, 1, 1}, 1), 0, 1e-12, "inverted AUC")
	// All ties -> 0.5.
	approx(t, AUC([]float64{1, 1, 1, 1}, []float64{0, 0, 1, 1}, 1), 0.5, 1e-12, "tied AUC")
	// Degenerate class -> NaN.
	if !math.IsNaN(AUC([]float64{1, 2}, []float64{1, 1}, 1)) {
		t.Fatal("expected NaN for single-class AUC")
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 5000
	scores := make([]float64, n)
	truth := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
		if rng.Float64() < 0.5 {
			truth[i] = 1
		}
	}
	approx(t, AUC(scores, truth, 1), 0.5, 0.03, "random AUC")
}

func TestRegressionMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 2, 5}
	approx(t, MSE(pred, truth), 4.0/3.0, 1e-12, "mse")
	approx(t, RMSE(pred, truth), math.Sqrt(4.0/3.0), 1e-12, "rmse")
	approx(t, MAE(pred, truth), 2.0/3.0, 1e-12, "mae")
	approx(t, R2(truth, truth), 1, 1e-12, "perfect R2")
	if R2(pred, truth) >= 1 {
		t.Fatal("imperfect prediction should have R2 < 1")
	}
	approx(t, R2([]float64{1, 1}, []float64{1, 1}), 0, 0, "constant truth R2")
}

func TestComplexityCurveAndOverfitDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := dataset.NoisySine(rng, 30, 0.2)
	valid := dataset.NoisySine(rng, 30, 0.2)
	// Synthetic trainer: training error strictly decreases with complexity,
	// validation error is U-shaped with minimum at complexity 3.
	trainer := func(c int, tr, ev *dataset.Dataset) ([]float64, []float64, error) {
		tp := make([]float64, tr.Len())
		vp := make([]float64, ev.Len())
		for i := range tp {
			tp[i] = tr.Y[i] + 1.0/float64(c+1)
		}
		off := math.Abs(float64(c)-3)*0.3 + 0.1
		for i := range vp {
			vp[i] = ev.Y[i] + off
		}
		return tp, vp, nil
	}
	curve, err := ComplexityCurve(train, valid, []int{1, 2, 3, 4, 5, 6}, trainer, MSE)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 6 {
		t.Fatalf("curve length %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].TrainErr >= curve[i-1].TrainErr {
			t.Fatal("training error should decrease")
		}
	}
	if BestComplexity(curve) != 3 {
		t.Fatalf("best complexity %d", BestComplexity(curve))
	}
	if !IsOverfitting(curve, 0.1) {
		t.Fatal("should detect overfitting")
	}
	// Monotone improving validation -> no overfitting flag.
	mono := []CurvePoint{{1, 3, 3}, {2, 2, 2}, {3, 1, 1}}
	if IsOverfitting(mono, 0.1) {
		t.Fatal("monotone curve flagged as overfitting")
	}
	if BestComplexity(nil) != 0 {
		t.Fatal("empty curve best complexity")
	}
}

func TestCrossValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := dataset.TwoGaussians(rng, 50, 2, 6, 1)
	// Trivial centroid classifier.
	fp := func(tr, te *dataset.Dataset) ([]float64, error) {
		var c0, c1 []float64
		n0, n1 := 0.0, 0.0
		c0 = make([]float64, tr.Dim())
		c1 = make([]float64, tr.Dim())
		for i := 0; i < tr.Len(); i++ {
			row := tr.Row(i)
			if tr.Y[i] == 0 {
				for j := range row {
					c0[j] += row[j]
				}
				n0++
			} else {
				for j := range row {
					c1[j] += row[j]
				}
				n1++
			}
		}
		for j := range c0 {
			c0[j] /= n0
			c1[j] /= n1
		}
		pred := make([]float64, te.Len())
		for i := 0; i < te.Len(); i++ {
			row := te.Row(i)
			d0, d1 := 0.0, 0.0
			for j := range row {
				d0 += (row[j] - c0[j]) * (row[j] - c0[j])
				d1 += (row[j] - c1[j]) * (row[j] - c1[j])
			}
			if d1 < d0 {
				pred[i] = 1
			}
		}
		return pred, nil
	}
	loss := func(p, y []float64) float64 { return 1 - Accuracy(p, y) }
	losses, err := CrossValidate(rng, d, 5, fp, loss)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 5 {
		t.Fatalf("fold count %d", len(losses))
	}
	for _, l := range losses {
		if l > 0.1 {
			t.Fatalf("centroid classifier should be near-perfect on separated blobs, loss=%g", l)
		}
	}
}
