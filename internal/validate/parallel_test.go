package validate

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/parallel"
)

// nnPredict is a tiny 1-nearest-neighbour fit-predictor: pure, stateless,
// safe for concurrent folds, and O(train·eval·dim) so the folds carry
// real work.
func nnPredict(tr, te *dataset.Dataset) ([]float64, error) {
	pred := make([]float64, te.Len())
	for i := 0; i < te.Len(); i++ {
		row := te.Row(i)
		best, bestD := 0, 1e308
		for j := 0; j < tr.Len(); j++ {
			trow := tr.Row(j)
			d := 0.0
			for c := range row {
				diff := row[c] - trow[c]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = j, d
			}
		}
		pred[i] = tr.Y[best]
	}
	return pred, nil
}

func mseLoss(p, y []float64) float64 {
	s := 0.0
	for i := range p {
		d := p[i] - y[i]
		s += d * d
	}
	return s / float64(len(p))
}

func TestCrossValidateParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := dataset.TwoGaussians(rng, 120, 2, 4, 1.5)

	run := func(workers int) []float64 {
		old := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(old)
		losses, err := CrossValidate(rand.New(rand.NewSource(9)), d, 6, nnPredict, mseLoss)
		if err != nil {
			t.Fatal(err)
		}
		return losses
	}
	want := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for f := range want {
			if got[f] != want[f] {
				t.Fatalf("workers=%d: fold %d loss %v, serial %v", w, f, got[f], want[f])
			}
		}
	}
}

func TestCrossValidateErrorPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := dataset.TwoGaussians(rng, 60, 2, 4, 1.5)
	boom := errors.New("fold failure")
	old := parallel.SetWorkers(4)
	defer parallel.SetWorkers(old)
	_, err := CrossValidate(rand.New(rand.NewSource(1)), d, 5,
		func(tr, te *dataset.Dataset) ([]float64, error) {
			return nil, boom
		}, mseLoss)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestCrossValidateSeededDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := dataset.TwoGaussians(rng, 100, 2, 4, 1.5)

	// A stochastic "learner": predicts the train mean plus fold-rng noise,
	// so any cross-fold rng sharing would change results with worker count.
	fp := func(foldRng *rand.Rand, tr, te *dataset.Dataset) ([]float64, error) {
		mean := 0.0
		for _, y := range tr.Y {
			mean += y
		}
		mean /= float64(tr.Len())
		pred := make([]float64, te.Len())
		for i := range pred {
			pred[i] = mean + 0.01*foldRng.NormFloat64()
		}
		return pred, nil
	}
	run := func(workers int) []float64 {
		old := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(old)
		losses, err := CrossValidateSeeded(31, d, 5, fp, mseLoss)
		if err != nil {
			t.Fatal(err)
		}
		return losses
	}
	want := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for f := range want {
			if got[f] != want[f] {
				t.Fatalf("workers=%d: fold %d loss %v, serial %v", w, f, got[f], want[f])
			}
		}
	}
}

func BenchmarkCrossValidate(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	d := dataset.TwoGaussians(rng, 600, 8, 4, 1.5)
	for _, w := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4"}[w], func(b *testing.B) {
			old := parallel.SetWorkers(w)
			defer parallel.SetWorkers(old)
			for i := 0; i < b.N; i++ {
				if _, err := CrossValidate(rand.New(rand.NewSource(9)), d, 8, nnPredict, mseLoss); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
