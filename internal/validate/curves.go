package validate

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Cross-validation metrics: CV sweeps started, folds fitted (the CV
// fan-out the pool absorbs), per-fold wall time, and complexity-curve
// points evaluated. Fold timing is coarse (one clock pair per fold), so
// it cannot perturb the fold results it measures.
var (
	cvRuns      = obs.GetCounter("validate.cv_runs")
	cvFolds     = obs.GetCounter("validate.folds")
	cvFoldTime  = obs.GetHistogram("validate.fold_ns")
	curvePoints = obs.GetCounter("validate.curve_points")
)

// Trainer fits a model of a given complexity on a training set and returns
// predictions for both the training set and an evaluation set. It is the
// hook through which the complexity-curve machinery (paper Figure 5)
// sweeps model families without knowing their internals.
type Trainer func(complexity int, train *dataset.Dataset, eval *dataset.Dataset) (trainPred, evalPred []float64, err error)

// CurvePoint is one point of a train/validation complexity curve.
type CurvePoint struct {
	Complexity int
	TrainErr   float64
	ValidErr   float64
}

// ComplexityCurve evaluates a model family across complexities and returns
// the training-vs-validation error curve of Figure 5. The loss is a
// caller-supplied error metric (use MSE for regression, 1-Accuracy for
// classification).
func ComplexityCurve(train, valid *dataset.Dataset, complexities []int,
	trainer Trainer, loss func(pred, truth []float64) float64) ([]CurvePoint, error) {

	out := make([]CurvePoint, 0, len(complexities))
	curvePoints.Add(int64(len(complexities)))
	for _, c := range complexities {
		tp, vp, err := trainer(c, train, valid)
		if err != nil {
			return nil, err
		}
		out = append(out, CurvePoint{
			Complexity: c,
			TrainErr:   loss(tp, train.Y),
			ValidErr:   loss(vp, valid.Y),
		})
	}
	return out, nil
}

// BestComplexity returns the complexity minimizing validation error.
func BestComplexity(curve []CurvePoint) int {
	if len(curve) == 0 {
		return 0
	}
	best := curve[0]
	for _, p := range curve[1:] {
		if p.ValidErr < best.ValidErr {
			best = p
		}
	}
	return best.Complexity
}

// IsOverfitting reports whether the curve exhibits the Figure 5 signature:
// training error keeps dropping past the validation optimum while
// validation error rises by more than rel relative to its minimum.
func IsOverfitting(curve []CurvePoint, rel float64) bool {
	if len(curve) < 3 {
		return false
	}
	minVal, minIdx := curve[0].ValidErr, 0
	for i, p := range curve {
		if p.ValidErr < minVal {
			minVal, minIdx = p.ValidErr, i
		}
	}
	if minIdx == len(curve)-1 {
		return false // validation error still improving at max complexity
	}
	last := curve[len(curve)-1]
	trainImproved := last.TrainErr < curve[minIdx].TrainErr
	validWorsened := last.ValidErr > minVal*(1+rel)
	return trainImproved && validWorsened
}

// FitPredictor abstracts "fit on this data, predict these rows" for
// cross-validation of any supervised learner.
type FitPredictor func(train *dataset.Dataset, eval *dataset.Dataset) ([]float64, error)

// CrossValidate runs k-fold cross validation and returns the per-fold loss.
//
// The fold split is drawn from rng up front; the folds themselves are then
// evaluated concurrently on the shared worker pool, each writing only its
// own loss slot, so the returned losses are identical at any worker count.
// fp and loss must be safe for concurrent use (stateless fits, or fits
// that derive any randomness from the fold's own data — use
// CrossValidateSeeded for learners that need a per-fold rand.Rand).
// On error the first failing fold in fold order is reported.
func CrossValidate(rng *rand.Rand, d *dataset.Dataset, k int,
	fp FitPredictor, loss func(pred, truth []float64) float64) ([]float64, error) {

	cvRuns.Inc()
	trainIdx, testIdx := dataset.KFold(rng, d.Len(), k)
	losses := make([]float64, k)
	errs := make([]error, k)
	parallel.ForN(k, 2, func(lo, hi int) {
		for f := lo; f < hi; f++ {
			cvFolds.Inc()
			t := cvFoldTime.Start()
			tr := d.Subset(trainIdx[f])
			te := d.Subset(testIdx[f])
			pred, err := fp(tr, te)
			if err != nil {
				errs[f] = err
				t.Stop()
				continue
			}
			losses[f] = loss(pred, te.Y)
			t.Stop()
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return losses, nil
}

// SeededFitPredictor is a FitPredictor whose fit needs randomness. The
// supplied rng is private to the fold, so concurrent folds never contend
// on a shared generator.
type SeededFitPredictor func(rng *rand.Rand, train *dataset.Dataset, eval *dataset.Dataset) ([]float64, error)

// foldSeed derives the deterministic seed of fold f from the parent seed.
// The SplitMix64-style mixing keeps neighbouring folds' streams
// uncorrelated even for small parent seeds.
func foldSeed(seed int64, f int) int64 {
	z := uint64(seed) + uint64(f+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// CrossValidateSeeded is CrossValidate for stochastic learners: each fold
// receives its own rand.Rand seeded deterministically from the parent seed
// and the fold index. Results are therefore bit-identical to a serial run
// at any worker count, which a shared generator cannot guarantee.
func CrossValidateSeeded(seed int64, d *dataset.Dataset, k int,
	fp SeededFitPredictor, loss func(pred, truth []float64) float64) ([]float64, error) {

	cvRuns.Inc()
	rng := rand.New(rand.NewSource(seed))
	trainIdx, testIdx := dataset.KFold(rng, d.Len(), k)
	losses := make([]float64, k)
	errs := make([]error, k)
	parallel.ForN(k, 2, func(lo, hi int) {
		for f := lo; f < hi; f++ {
			cvFolds.Inc()
			t := cvFoldTime.Start()
			foldRng := rand.New(rand.NewSource(foldSeed(seed, f)))
			tr := d.Subset(trainIdx[f])
			te := d.Subset(testIdx[f])
			pred, err := fp(foldRng, tr, te)
			if err != nil {
				errs[f] = err
				t.Stop()
				continue
			}
			losses[f] = loss(pred, te.Y)
			t.Stop()
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return losses, nil
}
