// Package parallel is the shared parallel-execution layer of the
// repository: a bounded worker pool with a chunked parallel-for and a
// parallel map, used by every O(n²) hot path (kernel Gram construction,
// dense matmul, cross-validation folds, substrate simulation).
//
// Design constraints, in order:
//
//  1. Determinism. Every routine built on this package must produce
//     output identical to its serial counterpart at any worker count.
//     For therefore only hands out disjoint index ranges — callers write
//     to disjoint elements and never reduce across ranges in
//     nondeterministic order.
//  2. Zero overhead for small problems. For falls back to a plain serial
//     loop when the configured worker count is 1 or the range is below a
//     cutover threshold, so goroutine scheduling never taxes the small
//     matrices that dominate unit tests and warm-up phases.
//  3. One global knob. The worker count defaults to runtime.GOMAXPROCS(0),
//     can be pinned by the REPRO_WORKERS environment variable (read once
//     at startup, used by the CLIs), and can be changed at runtime with
//     SetWorkers (used by tests and benchmarks).
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Pool metrics (see README "Observability & CI"): how often loops stay
// serial vs fan out, how many chunks the pool executes, and the
// configured width of the last parallel launch. Counters are updated
// once per loop or per chunk, never per index.
var (
	forSerialRuns   = obs.GetCounter("parallel.for_serial")
	forParallelRuns = obs.GetCounter("parallel.for_parallel")
	chunksExecuted  = obs.GetCounter("parallel.chunks")
	workersGauge    = obs.GetGauge("parallel.workers")
	occupancyGauge  = obs.GetGauge("parallel.max_occupancy")
)

// workerCount is the configured worker count, always >= 1.
var workerCount atomic.Int64

func init() {
	workerCount.Store(int64(defaultWorkers()))
}

// defaultWorkers resolves the startup worker count: REPRO_WORKERS when set
// to a positive integer, else runtime.GOMAXPROCS(0).
func defaultWorkers() int {
	if s := os.Getenv("REPRO_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Workers returns the current worker count.
func Workers() int { return int(workerCount.Load()) }

// SetWorkers sets the worker count, clamping n to at least 1, and returns
// the previous value so callers can restore it:
//
//	defer parallel.SetWorkers(parallel.SetWorkers(4))
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(workerCount.Swap(int64(n)))
}

// minParallel is the smallest index range worth splitting across
// goroutines; below it For runs the loop serially.
const minParallel = 8

// For partitions [0, n) into contiguous sub-ranges and calls fn(lo, hi)
// for each, using up to Workers() goroutines. Ranges are disjoint and
// cover [0, n) exactly once, so fn may write to per-index slots without
// synchronization. fn must not depend on the order or grouping of ranges.
//
// Workers pull fixed-size chunks off a shared counter, so ranges with
// uneven per-index cost (the shrinking rows of a triangular Gram sweep)
// balance across cores without a scheduler. When Workers() <= 1 or
// n < ForCutover, fn is called once as fn(0, n) on the caller's
// goroutine — the serial path, bit-identical by construction.
//
// A panic in any worker is re-raised on the calling goroutine after all
// workers finish.
func For(n int, fn func(lo, hi int)) {
	ForN(n, minParallel, fn)
}

// ForCutover is the default minimum n at which For goes parallel.
const ForCutover = minParallel

// ForN is For with an explicit cutover: the loop runs serially while
// n < minN. Hot paths pass a cutover sized to their per-index cost.
func ForN(n, minN int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if minN < 1 {
		minN = 1
	}
	if w <= 1 || n < minN {
		forSerialRuns.Inc()
		fn(0, n)
		return
	}
	if w > n {
		w = n
	}
	forParallelRuns.Inc()
	workersGauge.Set(int64(w))
	occupancyGauge.SetMax(int64(w))
	grain := n / (w * 8)
	if grain < 1 {
		grain = 1
	}
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		pval  any
		pseen bool
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if !pseen {
						pseen, pval = true, r
					}
					mu.Unlock()
				}
			}()
			chunks := int64(0)
			for {
				hi := int(next.Add(int64(grain)))
				lo := hi - grain
				if lo >= n {
					chunksExecuted.Add(chunks)
					return
				}
				if hi > n {
					hi = n
				}
				chunks++
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
	if pseen {
		panic(pval)
	}
}

// Map computes out[i] = fn(i) for i in [0, n) in parallel and returns the
// slice. fn must be safe for concurrent use; each index is evaluated
// exactly once.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i)
		}
	})
	return out
}

// MapN is Map with an explicit serial cutover, like ForN.
func MapN[T any](n, minN int, fn func(i int) T) []T {
	out := make([]T, n)
	ForN(n, minN, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i)
		}
	})
	return out
}
