package parallel

import (
	"sync/atomic"
	"testing"
)

// withWorkers runs fn with the worker count pinned to w.
func withWorkers(t *testing.T, w int, fn func()) {
	t.Helper()
	old := SetWorkers(w)
	defer SetWorkers(old)
	fn()
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 7, 8, 9, 100, 1000} {
			withWorkers(t, w, func() {
				hits := make([]int32, n)
				For(n, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("w=%d n=%d: bad range [%d,%d)", w, n, lo, hi)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("w=%d n=%d: index %d visited %d times", w, n, i, h)
					}
				}
			})
		}
	}
}

func TestForEmptyRange(t *testing.T) {
	called := false
	For(0, func(lo, hi int) { called = true })
	For(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("For called fn on an empty range")
	}
}

func TestForWorkerCountOneMatchesSerial(t *testing.T) {
	const n = 200
	serial := make([]float64, n)
	for i := 0; i < n; i++ {
		serial[i] = float64(i) * 1.5
	}
	withWorkers(t, 1, func() {
		got := make([]float64, n)
		calls := 0
		For(n, func(lo, hi int) {
			calls++
			for i := lo; i < hi; i++ {
				got[i] = float64(i) * 1.5
			}
		})
		if calls != 1 {
			t.Fatalf("workers=1 should run one serial call, got %d", calls)
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=1 mismatch at %d", i)
			}
		}
	})
}

func TestForOversubscription(t *testing.T) {
	// n much larger than workers: every index still visited exactly once.
	withWorkers(t, 4, func() {
		const n = 100000
		var sum int64
		For(n, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			atomic.AddInt64(&sum, local)
		})
		want := int64(n) * int64(n-1) / 2
		if sum != want {
			t.Fatalf("sum = %d, want %d", sum, want)
		}
	})
}

func TestForWorkersExceedRange(t *testing.T) {
	// workers >> n: no worker may receive an empty or out-of-range chunk.
	withWorkers(t, 64, func() {
		hits := make([]int32, 10)
		For(10, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("index %d visited %d times", i, h)
			}
		}
	})
}

func TestForPanicPropagation(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic not propagated", w)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: unexpected panic value %v", w, r)
				}
			}()
			For(1000, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if i == 567 {
						panic("boom")
					}
				}
			})
		})
	}
}

func TestForNCutover(t *testing.T) {
	withWorkers(t, 8, func() {
		calls := 0
		ForN(50, 100, func(lo, hi int) { calls++ })
		if calls != 1 {
			t.Fatalf("n below cutover should run serially, got %d calls", calls)
		}
	})
}

func TestMap(t *testing.T) {
	for _, w := range []int{1, 8} {
		withWorkers(t, w, func() {
			got := Map(100, func(i int) int { return i * i })
			if len(got) != 100 {
				t.Fatalf("len = %d", len(got))
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("w=%d: Map[%d] = %d, want %d", w, i, v, i*i)
				}
			}
		})
	}
	if out := Map(0, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("Map(0) returned %d elements", len(out))
	}
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	old := SetWorkers(5)
	defer SetWorkers(old)
	if Workers() != 5 {
		t.Fatalf("Workers() = %d, want 5", Workers())
	}
	prev := SetWorkers(0) // clamped to 1
	if prev != 5 {
		t.Fatalf("SetWorkers returned %d, want 5", prev)
	}
	if Workers() != 1 {
		t.Fatalf("Workers() after clamp = %d, want 1", Workers())
	}
}

func TestDefaultWorkersEnvParsing(t *testing.T) {
	t.Setenv("REPRO_WORKERS", "3")
	if got := defaultWorkers(); got != 3 {
		t.Fatalf("defaultWorkers with REPRO_WORKERS=3 = %d", got)
	}
	t.Setenv("REPRO_WORKERS", "not-a-number")
	if got := defaultWorkers(); got < 1 {
		t.Fatalf("defaultWorkers with junk env = %d", got)
	}
	t.Setenv("REPRO_WORKERS", "-2")
	if got := defaultWorkers(); got < 1 {
		t.Fatalf("defaultWorkers with negative env = %d", got)
	}
}
