package isa

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Assemble parses the assembly text format produced by Program.String:
// one instruction per line, with ';' or '#' comments and blank lines
// ignored. Supported forms:
//
//	nop
//	add r1, r2, r3          (and sub/mul/and/or/xor/shl/shr)
//	addi r1, r2, -5
//	lw r3, 12(r5)           (and lb/lh/sb/sh/sw)
func Assemble(r io.Reader) (Program, error) {
	var p Program
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		in, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNo, err)
		}
		p = append(p, in)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// AssembleString parses a program from a string.
func AssembleString(s string) (Program, error) {
	return Assemble(strings.NewReader(s))
}

var opByName = func() map[string]Op {
	m := make(map[string]Op)
	for op := NOP; op < numOps; op++ {
		m[op.String()] = op
	}
	return m
}()

func parseLine(line string) (Instruction, error) {
	fields := strings.Fields(line)
	mn := strings.ToLower(fields[0])
	op, ok := opByName[mn]
	if !ok {
		return Instruction{}, fmt.Errorf("unknown mnemonic %q", mn)
	}
	rest := strings.TrimSpace(line[len(fields[0]):])
	args := splitArgs(rest)
	switch {
	case op == NOP:
		if len(args) != 0 {
			return Instruction{}, fmt.Errorf("nop takes no operands")
		}
		return Instruction{Op: NOP}, nil
	case op == ADDI:
		if len(args) != 3 {
			return Instruction{}, fmt.Errorf("addi needs rd, rs1, imm")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return Instruction{}, err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return Instruction{}, err
		}
		imm, err := strconv.ParseInt(args[2], 10, 32)
		if err != nil {
			return Instruction{}, fmt.Errorf("bad immediate %q", args[2])
		}
		return Instruction{Op: ADDI, Rd: rd, Rs1: rs1, Imm: int32(imm)}, nil
	case op.IsMem():
		if len(args) != 2 {
			return Instruction{}, fmt.Errorf("%s needs reg, offset(base)", mn)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return Instruction{}, err
		}
		imm, base, err := parseMemOperand(args[1])
		if err != nil {
			return Instruction{}, err
		}
		return Instruction{Op: op, Rd: rd, Rs1: base, Imm: imm}, nil
	default: // three-register ALU
		if len(args) != 3 {
			return Instruction{}, fmt.Errorf("%s needs rd, rs1, rs2", mn)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return Instruction{}, err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return Instruction{}, err
		}
		rs2, err := parseReg(args[2])
		if err != nil {
			return Instruction{}, err
		}
		return Instruction{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
	}
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (int, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return n, nil
}

// parseMemOperand parses "offset(rN)".
func parseMemOperand(s string) (int32, int, error) {
	open := strings.IndexByte(s, '(')
	close := strings.IndexByte(s, ')')
	if open < 0 || close < open || close != len(s)-1 {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	off, err := strconv.ParseInt(offStr, 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset %q", offStr)
	}
	base, err := parseReg(strings.TrimSpace(s[open+1 : close]))
	if err != nil {
		return 0, 0, err
	}
	return int32(off), base, nil
}
