package isa

import "repro/internal/obs"

// Simulation metrics — the quantities the Figure 7 experiment exists to
// save. isa.cycles_simulated is the paper's simulation-cost axis as a
// first-class metric: every Machine.Run adds its program length and
// cycle count, so a manifest records exactly how much simulator work a
// flow consumed. Three atomic adds per program, nothing per instruction.
var (
	programsSimulated = obs.GetCounter("isa.programs_simulated")
	instrsSimulated   = obs.GetCounter("isa.instructions_simulated")
	cyclesSimulated   = obs.GetCounter("isa.cycles_simulated")
)

// Machine simulates a single-issue core with a load-store unit detailed
// enough to carry a functional coverage model: a direct-mapped data cache,
// a draining store buffer with store-to-load forwarding, and a small TLB.
// This is the "unit under test" of the paper's Figure 7 experiment.
type Machine struct {
	Regs [NumRegs]uint32
	Mem  []byte

	cacheTag   [cacheLines]uint32
	cacheValid [cacheLines]bool

	sb    []sbEntry
	tlb   [tlbEntries]uint32
	tlbOK [tlbEntries]bool

	Cycles int64
}

type sbEntry struct {
	addr  uint32
	width int
}

// Memory geometry. Addresses wrap inside MemSize.
const (
	MemSize    = 1 << 16 // 64 KiB
	lineBytes  = 16
	cacheLines = 64
	pageBytes  = 256
	tlbEntries = 8
	sbDepth    = 4
)

// Event is a load-store-unit coverage event.
type Event int

// Coverage events observed by the LSU.
const (
	EvLoadHit Event = iota
	EvLoadMiss
	EvForward      // store-to-load forwarding succeeded
	EvForwardBlock // partial overlap blocked forwarding
	EvLineCross    // access straddles a cache line
	EvTLBMiss
	EvSBFull // store issued into a full store buffer
	EvPageCross
	NumEvents
)

var eventNames = [...]string{
	"A0:load-hit", "A1:load-miss", "A2:forward", "A3:forward-block",
	"A4:line-cross", "A5:tlb-miss", "A6:sb-full", "A7:page-cross",
}

// String names the event with its paper-style A-number.
func (e Event) String() string {
	if e < 0 || int(e) >= len(eventNames) {
		return "A?:unknown"
	}
	return eventNames[e]
}

// Coverage bins cross event × access width × address region, giving the
// multi-thousand-test saturation behaviour of a real unit's cross coverage.
const (
	numWidths  = 3 // 1, 2, 4 bytes
	numRegions = 4 // 16 KiB quadrants of the address space
	// NumBins is the total number of coverage bins.
	NumBins = int(NumEvents) * numWidths * numRegions
)

func widthIdx(w int) int {
	switch w {
	case 1:
		return 0
	case 2:
		return 1
	default:
		return 2
	}
}

// BinID composes a coverage bin identifier.
func BinID(e Event, width int, addr uint32) int {
	region := int(addr%MemSize) / (MemSize / numRegions)
	return (int(e)*numWidths+widthIdx(width))*numRegions + region
}

// BinName renders a bin id readably.
func BinName(id int) string {
	region := id % numRegions
	rest := id / numRegions
	w := []int{1, 2, 4}[rest%numWidths]
	e := Event(rest / numWidths)
	return e.String() + widthRegion(w, region)
}

func widthRegion(w, region int) string {
	return "/w" + string(rune('0'+w)) + "/r" + string(rune('0'+region))
}

// Coverage is a hit count per coverage bin.
type Coverage [NumBins]int

// Merge adds other's hits into c.
func (c *Coverage) Merge(other *Coverage) {
	for i, v := range other {
		c[i] += v
	}
}

// Count returns the number of distinct bins hit.
func (c *Coverage) Count() int {
	n := 0
	for _, v := range c {
		if v > 0 {
			n++
		}
	}
	return n
}

// Hit records one hit.
func (c *Coverage) Hit(e Event, width int, addr uint32) { c[BinID(e, width, addr)]++ }

// EventHits sums hits across widths and regions for one event — the
// paper's Table 1 reports coverage at this granularity (A0..A7).
func (c *Coverage) EventHits(e Event) int {
	s := 0
	for w := 0; w < numWidths; w++ {
		for r := 0; r < numRegions; r++ {
			s += c[(int(e)*numWidths+w)*numRegions+r]
		}
	}
	return s
}

// NewMachine returns a reset machine.
func NewMachine() *Machine {
	m := &Machine{Mem: make([]byte, MemSize)}
	m.Reset()
	return m
}

// Reset restores the architectural and micro-architectural state. Base
// registers r1..r7 are spread across the full address space so that a
// test's choice of base register selects the region it exercises; the
// generator reserves r8..r15 as scratch destinations.
func (m *Machine) Reset() {
	for i := range m.Regs {
		m.Regs[i] = (uint32(i) * (MemSize / 8)) % MemSize
	}
	m.Regs[0] = 0
	for i := range m.cacheValid {
		m.cacheValid[i] = false
	}
	for i := range m.tlbOK {
		m.tlbOK[i] = false
	}
	m.sb = m.sb[:0]
	m.Cycles = 0
}

// Run executes the program from reset and returns the coverage it hits.
func (m *Machine) Run(p Program) *Coverage {
	m.Reset()
	cov := &Coverage{}
	for _, in := range p {
		m.step(in, cov)
	}
	programsSimulated.Inc()
	instrsSimulated.Add(int64(len(p)))
	cyclesSimulated.Add(m.Cycles)
	return cov
}

func (m *Machine) step(in Instruction, cov *Coverage) {
	m.Cycles++
	switch {
	case in.Op == NOP:
		m.drainOne()
	case in.Op == ADDI:
		m.setReg(in.Rd, m.Regs[in.Rs1]+uint32(in.Imm))
		m.drainOne()
	case in.Op.IsLoad():
		m.load(in, cov)
	case in.Op.IsStore():
		m.store(in, cov)
	default:
		m.alu(in)
		m.drainOne()
	}
}

func (m *Machine) alu(in Instruction) {
	a, b := m.Regs[in.Rs1], m.Regs[in.Rs2]
	var v uint32
	switch in.Op {
	case ADD:
		v = a + b
	case SUB:
		v = a - b
	case MUL:
		v = a * b
	case AND:
		v = a & b
	case OR:
		v = a | b
	case XOR:
		v = a ^ b
	case SHL:
		v = a << (b & 31)
	case SHR:
		v = a >> (b & 31)
	}
	m.setReg(in.Rd, v)
}

func (m *Machine) setReg(r int, v uint32) {
	if r != 0 {
		m.Regs[r] = v
	}
}

func (m *Machine) effAddr(in Instruction) uint32 {
	return (m.Regs[in.Rs1] + uint32(in.Imm)) % MemSize
}

// common memory-event checks (alignment, paging).
func (m *Machine) memCommon(addr uint32, w int, cov *Coverage) {
	if w > 1 {
		if addr/lineBytes != (addr+uint32(w)-1)/lineBytes {
			cov.Hit(EvLineCross, w, addr)
			m.Cycles++ // second cache access
		}
		if addr/pageBytes != (addr+uint32(w)-1)/pageBytes {
			cov.Hit(EvPageCross, w, addr)
			m.Cycles++ // second translation
		}
	}
	page := addr / pageBytes
	slot := page % tlbEntries
	if !m.tlbOK[slot] {
		// Cold miss: inevitable after reset, costs cycles but is not an
		// interesting coverage event.
		m.tlb[slot] = page
		m.tlbOK[slot] = true
		m.Cycles += 8 // page walk
	} else if m.tlb[slot] != page {
		// Conflict miss: a valid entry is evicted — the coverage event.
		cov.Hit(EvTLBMiss, w, addr)
		m.tlb[slot] = page
		m.Cycles += 8
	}
}

func (m *Machine) load(in Instruction, cov *Coverage) {
	w := in.Op.Width()
	addr := m.effAddr(in)
	m.memCommon(addr, w, cov)

	// Store-buffer interaction.
	forwarded := false
	for _, e := range m.sb {
		if addr >= e.addr && addr+uint32(w) <= e.addr+uint32(e.width) {
			cov.Hit(EvForward, w, addr)
			forwarded = true
			break
		}
		if addr < e.addr+uint32(e.width) && e.addr < addr+uint32(w) {
			cov.Hit(EvForwardBlock, w, addr)
			m.flushSB()
			m.Cycles += 3
			break
		}
	}

	if !forwarded {
		line := (addr / lineBytes) % cacheLines
		tag := addr / lineBytes / cacheLines
		if m.cacheValid[line] && m.cacheTag[line] == tag {
			cov.Hit(EvLoadHit, w, addr)
		} else {
			cov.Hit(EvLoadMiss, w, addr)
			m.cacheValid[line] = true
			m.cacheTag[line] = tag
			m.Cycles += 10 // miss penalty
		}
	}

	var v uint32
	for b := 0; b < w; b++ {
		v |= uint32(m.Mem[(addr+uint32(b))%MemSize]) << (8 * b)
	}
	m.setReg(in.Rd, v)
	m.drainOne()
}

func (m *Machine) store(in Instruction, cov *Coverage) {
	w := in.Op.Width()
	addr := m.effAddr(in)
	m.memCommon(addr, w, cov)

	if len(m.sb) >= sbDepth {
		cov.Hit(EvSBFull, w, addr)
		m.drainOne()
		m.Cycles += 2
	}
	m.sb = append(m.sb, sbEntry{addr: addr, width: w})

	v := m.Regs[in.Rd]
	for b := 0; b < w; b++ {
		m.Mem[(addr+uint32(b))%MemSize] = byte(v >> (8 * b))
	}
}

// drainOne retires the oldest store-buffer entry.
func (m *Machine) drainOne() {
	if len(m.sb) > 0 {
		m.sb = m.sb[1:]
	}
}

func (m *Machine) flushSB() { m.sb = m.sb[:0] }
