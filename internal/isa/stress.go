package isa

import (
	"fmt"
	"math/rand"
)

// Stress-program generation (ChiBench-style): instead of one wide
// constrained-random template, a stress profile targets a specific
// instruction-category mix and emits structured instruction groups that
// concentrate pressure on one corner of the load-store unit — store
// bursts that fill the store buffer, overlapping store→load hazards,
// unrolled loop-nest address sweeps that stride across cache lines and
// pages. This ISA is branchless (programs are straight-line, so
// termination is structural, bounded by CycleCap), which is why
// ChiBench's branch-heavy profile has no analog here; its slot is taken
// by the dependency-chain "alu-heavy" profile.
//
// Generation is a pure function of the int64 seed: the same
// (profile, length, seed) triple always yields the same program
// sequence, at any worker count — the property the datasets exporter
// and the conformance suite pin.

// Mix is an instruction-category distribution (fractions sum to 1).
type Mix struct {
	ALU   float64 `json:"alu"`
	Load  float64 `json:"load"`
	Store float64 `json:"store"`
}

// StressProfile names a target instruction mix plus the structured
// emission style that realizes it.
type StressProfile struct {
	Name string `json:"name"`
	Mix  Mix    `json:"mix"`
}

// StressProfiles lists every profile in stable order.
func StressProfiles() []StressProfile {
	return []StressProfile{
		{Name: "alu-heavy", Mix: Mix{ALU: 0.8, Load: 0.1, Store: 0.1}},
		{Name: "store-heavy", Mix: Mix{ALU: 0.1, Load: 0.2, Store: 0.7}},
		{Name: "hazard-dense", Mix: Mix{ALU: 0.2, Load: 0.4, Store: 0.4}},
		{Name: "loop-nest", Mix: Mix{ALU: 0.3, Load: 0.35, Store: 0.35}},
	}
}

// ProfileByName resolves a profile name.
func ProfileByName(name string) (StressProfile, error) {
	for _, p := range StressProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return StressProfile{}, fmt.Errorf("isa: unknown stress profile %q", name)
}

// MaxCyclesPerInstr bounds the simulator cost of any single instruction:
// base cycle + line cross + page cross + TLB walk + forward-block flush
// + cache-miss penalty is 24 cycles in the worst case; 32 leaves
// headroom for future micro-architectural events.
const MaxCyclesPerInstr = 32

// CycleCap is the simulator cycle budget a stress program must finish
// under. Programs are straight-line, so Machine.Run always terminates;
// the cap turns that structural guarantee into a checkable number.
func CycleCap(p Program) int64 { return int64(len(p)) * MaxCyclesPerInstr }

// StressConfig shapes a stress generator.
type StressConfig struct {
	Profile string `json:"profile"` // one of StressProfiles, default "hazard-dense"
	Len     int    `json:"len"`     // instructions per program, default 64
}

func (c *StressConfig) defaults() {
	if c.Profile == "" {
		c.Profile = "hazard-dense"
	}
	if c.Len <= 0 {
		c.Len = 64
	}
}

// StressGen emits stress programs for one profile. The realized
// instruction mix of every emitted program tracks the profile's target
// mix: each step a greedy quota picks the category with the largest
// deficit (target·len − emitted), then the profile's group emitter
// appends a short structured burst for that category.
type StressGen struct {
	cfg     StressConfig
	profile StressProfile
	rng     *rand.Rand

	// loop-nest sweep state, reset per program.
	sweepBase   int
	sweepOff    int32
	sweepStride int32
}

// NewStressGen seeds a stress generator; the emitted program sequence is
// a pure function of (cfg, seed).
func NewStressGen(cfg StressConfig, seed int64) (*StressGen, error) {
	cfg.defaults()
	p, err := ProfileByName(cfg.Profile)
	if err != nil {
		return nil, err
	}
	return &StressGen{cfg: cfg, profile: p, rng: rand.New(rand.NewSource(seed))}, nil
}

// Profile returns the generator's profile.
func (g *StressGen) Profile() StressProfile { return g.profile }

// RealizedMix measures the instruction-category fractions of a program.
func RealizedMix(p Program) Mix {
	if len(p) == 0 {
		return Mix{}
	}
	var m Mix
	for _, in := range p {
		switch {
		case in.Op.IsLoad():
			m.Load++
		case in.Op.IsStore():
			m.Store++
		default:
			m.ALU++
		}
	}
	n := float64(len(p))
	m.ALU /= n
	m.Load /= n
	m.Store /= n
	return m
}

// MixDeviation returns the largest per-category absolute difference
// between a realized mix and a target.
func MixDeviation(got, want Mix) float64 {
	max := 0.0
	for _, d := range []float64{got.ALU - want.ALU, got.Load - want.Load, got.Store - want.Store} {
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// MixTolerance is the deviation bound the generator guarantees between
// a program's realized mix and its profile target: group emission adds
// at most a handful of instructions per quota decision, so the realized
// fraction of any category stays within this band at the default length.
const MixTolerance = 0.15

// Next emits one stress program.
func (g *StressGen) Next() Program {
	programsGenerated.Inc()
	n := g.cfg.Len
	p := make(Program, 0, n)
	g.resetSweep()
	var alu, load, store int
	for len(p) < n {
		// Greedy quota: the category furthest below its target share of
		// the full program gets the next group.
		fn := float64(n)
		dALU := g.profile.Mix.ALU*fn - float64(alu)
		dLoad := g.profile.Mix.Load*fn - float64(load)
		dStore := g.profile.Mix.Store*fn - float64(store)
		switch {
		case dALU >= dLoad && dALU >= dStore:
			p = g.emitALU(p, n)
		case dLoad >= dStore:
			p = g.emitLoad(p, n)
		default:
			p = g.emitStore(p, n)
		}
		alu, load, store = 0, 0, 0
		for _, in := range p {
			switch {
			case in.Op.IsLoad():
				load++
			case in.Op.IsStore():
				store++
			default:
				alu++
			}
		}
	}
	return p[:n]
}

// Batch emits k programs.
func (g *StressGen) Batch(k int) []Program {
	out := make([]Program, k)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func (g *StressGen) resetSweep() {
	g.sweepBase = 1 + g.rng.Intn(7)
	g.sweepOff = 0
	// Strides near the line and page sizes so consecutive sweep accesses
	// cross cache lines and occasionally pages.
	strides := []int32{int32(lineBytes) - 2, int32(lineBytes) + 3, int32(pageBytes) - 3}
	g.sweepStride = strides[g.rng.Intn(len(strides))]
}

func (g *StressGen) scratch() int { return 8 + g.rng.Intn(8) }

func (g *StressGen) base() int { return 1 + g.rng.Intn(7) }

func (g *StressGen) width() int { return []int{1, 2, 4}[g.rng.Intn(3)] }

// stressLoadOp / stressStoreOp map widths to opcodes.
func stressLoadOp(w int) Op {
	switch w {
	case 1:
		return LB
	case 2:
		return LH
	}
	return LW
}

func stressStoreOp(w int) Op {
	switch w {
	case 1:
		return SB
	case 2:
		return SH
	}
	return SW
}

// emitALU appends an ALU group. alu-heavy chains 2-4 dependent ops
// through one scratch register (a serial dependency chain, the
// branchless stand-in for control-heavy stress); other profiles emit a
// single op.
func (g *StressGen) emitALU(p Program, n int) Program {
	ops := []Op{ADD, SUB, MUL, AND, OR, XOR, SHL, SHR}
	chain := 1
	if g.profile.Name == "alu-heavy" {
		chain = 2 + g.rng.Intn(3)
	}
	rd := g.scratch()
	for i := 0; i < chain && len(p) < n; i++ {
		op := ops[g.rng.Intn(len(ops))]
		in := Instruction{Op: op, Rd: rd, Rs1: rd, Rs2: g.rng.Intn(NumRegs)}
		if i == 0 {
			in.Rs1 = g.rng.Intn(NumRegs)
		}
		p = append(p, in)
	}
	return p
}

// emitLoad appends a load group. loop-nest draws the address from the
// advancing sweep; hazard-dense biases toward recently stored addresses
// via the shared narrow offset range.
func (g *StressGen) emitLoad(p Program, n int) Program {
	w := g.width()
	in := Instruction{Op: stressLoadOp(w), Rd: g.scratch()}
	switch g.profile.Name {
	case "loop-nest":
		in.Rs1, in.Imm = g.sweepBase, g.sweepAdvance()
	case "hazard-dense":
		in.Rs1, in.Imm = g.base(), g.hazardOffset(w)
	default:
		in.Rs1, in.Imm = g.base(), int32(g.rng.Intn(512))
	}
	return append(p, in)
}

// emitStore appends a store group: a full-buffer burst for store-heavy,
// an overlapping store→load pair for hazard-dense, one sweep store for
// loop-nest, a single store otherwise.
func (g *StressGen) emitStore(p Program, n int) Program {
	w := g.width()
	switch g.profile.Name {
	case "store-heavy":
		base := g.base()
		burst := sbDepth + 1 + g.rng.Intn(2)
		for i := 0; i < burst && len(p) < n; i++ {
			p = append(p, Instruction{
				Op: stressStoreOp(w), Rd: g.rng.Intn(NumRegs),
				Rs1: base, Imm: int32(g.rng.Intn(256)),
			})
		}
		return p
	case "hazard-dense":
		base := g.base()
		off := g.hazardOffset(w)
		p = append(p, Instruction{
			Op: stressStoreOp(w), Rd: g.rng.Intn(NumRegs), Rs1: base, Imm: off,
		})
		if len(p) < n {
			// Overlapping load: same base, offset within the stored
			// bytes, possibly a different width — the forward vs
			// forward-block coin the LSU has to call.
			lw := g.width()
			d := off + int32(g.rng.Intn(w))
			p = append(p, Instruction{
				Op: stressLoadOp(lw), Rd: g.scratch(), Rs1: base, Imm: d,
			})
		}
		return p
	case "loop-nest":
		return append(p, Instruction{
			Op: stressStoreOp(w), Rd: g.rng.Intn(NumRegs),
			Rs1: g.sweepBase, Imm: g.sweepAdvance(),
		})
	default:
		return append(p, Instruction{
			Op: stressStoreOp(w), Rd: g.rng.Intn(NumRegs),
			Rs1: g.base(), Imm: int32(g.rng.Intn(512)),
		})
	}
}

// sweepAdvance returns the current sweep offset and strides forward,
// opening a new (deeper) inner sweep when the offset leaves the
// immediate range — the unrolled analog of advancing the outer loop
// index of a nest.
func (g *StressGen) sweepAdvance() int32 {
	off := g.sweepOff
	g.sweepOff += g.sweepStride
	if g.sweepOff >= 4096 {
		g.sweepOff = int32(g.rng.Intn(lineBytes))
		g.sweepBase = 1 + g.rng.Intn(7)
	}
	return off
}

// hazardOffset draws from a deliberately narrow window so independent
// store and load groups still collide in the store buffer.
func (g *StressGen) hazardOffset(w int) int32 {
	off := int32(g.rng.Intn(48))
	if w > 1 && g.rng.Float64() < 0.5 {
		// Misalign for the width: alignment class is a coverage facet.
		off = off - off%int32(w) + 1
	}
	return off
}
