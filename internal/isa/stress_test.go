package isa

import (
	"reflect"
	"testing"
)

// TestStressMixWithinTolerance validates every profile's realized
// instruction mix against its target: the greedy quota must keep each
// category fraction inside MixTolerance for every generated program.
func TestStressMixWithinTolerance(t *testing.T) {
	for _, prof := range StressProfiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			g, err := NewStressGen(StressConfig{Profile: prof.Name}, 7)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range g.Batch(50) {
				got := RealizedMix(p)
				if dev := MixDeviation(got, prof.Mix); dev > MixTolerance {
					t.Fatalf("program %d: realized mix %+v deviates %.3f from target %+v (tolerance %v)",
						i, got, dev, prof.Mix, MixTolerance)
				}
			}
		})
	}
}

// TestStressTerminatesUnderCycleCap proves the structural termination
// guarantee as a number: every stress program, from every profile, runs
// to completion on the reference machine within CycleCap cycles.
func TestStressTerminatesUnderCycleCap(t *testing.T) {
	m := NewMachine()
	for _, prof := range StressProfiles() {
		g, err := NewStressGen(StressConfig{Profile: prof.Name}, 11)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range g.Batch(30) {
			m.Run(p)
			if cap := CycleCap(p); m.Cycles > cap {
				t.Fatalf("%s program %d: %d cycles exceeds cap %d (%d instrs)",
					prof.Name, i, m.Cycles, cap, len(p))
			}
			if m.Cycles < int64(len(p)) {
				t.Fatalf("%s program %d: %d cycles for %d instrs — program did not run to completion",
					prof.Name, i, m.Cycles, len(p))
			}
		}
	}
}

// TestStressPureFunctionOfSeed pins generation (and the downstream
// feature/coverage pipeline, which SimulateBatch runs on the worker
// pool) as a pure function of the int64 seed. scripts/check.sh sweeps
// this test at REPRO_WORKERS=1/2/8 under -race: the batch results must
// be identical at every worker count.
func TestStressPureFunctionOfSeed(t *testing.T) {
	for _, prof := range StressProfiles() {
		g1, err := NewStressGen(StressConfig{Profile: prof.Name}, 42)
		if err != nil {
			t.Fatal(err)
		}
		g2, _ := NewStressGen(StressConfig{Profile: prof.Name}, 42)
		b1, b2 := g1.Batch(80), g2.Batch(80)
		if !reflect.DeepEqual(b1, b2) {
			t.Fatalf("%s: two generators with the same seed emitted different programs", prof.Name)
		}
		covs1, cycles1 := SimulateBatch(b1)
		covs2, cycles2 := SimulateBatch(b2)
		if !reflect.DeepEqual(cycles1, cycles2) {
			t.Fatalf("%s: cycle counts differ between identical batches", prof.Name)
		}
		for i := range covs1 {
			if *covs1[i] != *covs2[i] {
				t.Fatalf("%s: coverage differs at program %d", prof.Name, i)
			}
		}
		f1, f2 := FeatureBatch(b1), FeatureBatch(b2)
		if !reflect.DeepEqual(f1, f2) {
			t.Fatalf("%s: features differ between identical batches", prof.Name)
		}
		// A different seed must change the stream (profiles are not
		// degenerate constants).
		g3, _ := NewStressGen(StressConfig{Profile: prof.Name}, 43)
		if reflect.DeepEqual(b1, g3.Batch(80)) {
			t.Fatalf("%s: seed 42 and 43 emitted identical batches", prof.Name)
		}
	}
}

// TestStressProfilesDiffer guards against profile emitters collapsing
// into one another: each profile's realized mix must be closer to its
// own target than to any other profile's target.
func TestStressProfilesDiffer(t *testing.T) {
	profs := StressProfiles()
	for _, prof := range profs {
		g, err := NewStressGen(StressConfig{Profile: prof.Name, Len: 128}, 3)
		if err != nil {
			t.Fatal(err)
		}
		// Average realized mix over a few programs.
		var avg Mix
		const k = 10
		for _, p := range g.Batch(k) {
			m := RealizedMix(p)
			avg.ALU += m.ALU / k
			avg.Load += m.Load / k
			avg.Store += m.Store / k
		}
		for _, other := range profs {
			if other.Name == prof.Name {
				continue
			}
			if MixDeviation(avg, other.Mix) < MixDeviation(avg, prof.Mix) {
				t.Errorf("%s realized mix %+v is closer to %s's target than its own",
					prof.Name, avg, other.Name)
			}
		}
	}
}

// TestProfileByName covers the lookup's error path and stable ordering.
func TestProfileByName(t *testing.T) {
	if _, err := ProfileByName("no-such-profile"); err == nil {
		t.Fatal("expected an error for an unknown profile")
	}
	for _, p := range StressProfiles() {
		got, err := ProfileByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Fatalf("ProfileByName(%q) = %+v, %v", p.Name, got, err)
		}
		sum := p.Mix.ALU + p.Mix.Load + p.Mix.Store
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s target mix sums to %v, want 1", p.Name, sum)
		}
	}
}
