package isa

import (
	"math/rand"

	"repro/internal/obs"
)

// programsGenerated counts constrained-random tests instantiated — the
// denominator of the Figure 7 "examined vs simulated" economics.
var programsGenerated = obs.GetCounter("isa.programs_generated")

// Template is the constrained-random test template: the knobs a
// verification engineer writes and the randomizer instantiates. The
// template-refinement application (paper Table 1) works by learning rules
// from simulated tests and turning them back into knob adjustments.
type Template struct {
	Len int // instructions per test

	// Category weights.
	ALUWeight   float64
	LoadWeight  float64
	StoreWeight float64

	// Memory-access shaping.
	WidthWeights  [3]float64 // byte, half, word
	MaxBaseReg    int        // base registers drawn from 1..MaxBaseReg (region reach)
	ImmRange      int32      // offsets drawn from [0, ImmRange)
	UnalignedProb float64    // probability an offset is misaligned for its width
	PairProb      float64    // probability a store is followed by a load near the same address
	BurstProb     float64    // probability of a store burst (fills the store buffer)
}

// DefaultTemplate is the kind of first-cut template an engineer writes:
// word-aligned loads through a single base register in a narrow region.
// It reaches only the easy coverage (A0/A1), as in the paper's Table 1 row
// "Original".
func DefaultTemplate() Template {
	return Template{
		Len:           24,
		ALUWeight:     0.6,
		LoadWeight:    0.4,
		StoreWeight:   0,
		WidthWeights:  [3]float64{0, 0, 1},
		MaxBaseReg:    1,
		ImmRange:      64,
		UnalignedProb: 0,
		PairProb:      0,
		BurstProb:     0,
	}
}

// WideTemplate is a generic "try everything" template: it can reach all
// coverage eventually but spreads probability so thinly that most tests
// are redundant — the regime where the paper's novel test selection
// (Figure 7) pays off.
func WideTemplate() Template {
	return Template{
		Len:           24,
		ALUWeight:     0.45,
		LoadWeight:    0.30,
		StoreWeight:   0.25,
		WidthWeights:  [3]float64{0.2, 0.2, 0.6},
		MaxBaseReg:    7,
		ImmRange:      512,
		UnalignedProb: 0.08,
		PairProb:      0.05,
		BurstProb:     0.03,
	}
}

// Generator is the randomizer: it instantiates tests from a template.
type Generator struct {
	T   Template
	rng *rand.Rand
}

// NewGenerator seeds a randomizer.
func NewGenerator(t Template, seed int64) *Generator {
	return &Generator{T: t, rng: rand.New(rand.NewSource(seed))}
}

func (g *Generator) pickWidth() Op {
	w := g.T.WidthWeights
	total := w[0] + w[1] + w[2]
	if total <= 0 {
		return LW
	}
	r := g.rng.Float64() * total
	switch {
	case r < w[0]:
		return LB
	case r < w[0]+w[1]:
		return LH
	default:
		return LW
	}
}

// baseReg picks an addressing register. Bases live in r1..r7 (preserved by
// the generator) so each base deterministically selects an address region.
func (g *Generator) baseReg() int {
	maxR := g.T.MaxBaseReg
	if maxR < 1 {
		maxR = 1
	}
	if maxR > 7 {
		maxR = 7
	}
	return 1 + g.rng.Intn(maxR)
}

// scratchReg picks a destination register that never serves as a base.
func (g *Generator) scratchReg() int { return 8 + g.rng.Intn(8) }

func (g *Generator) offset(width int) int32 {
	rng := g.T.ImmRange
	if rng < 1 {
		rng = 1
	}
	off := int32(g.rng.Intn(int(rng)))
	if width > 1 {
		if g.rng.Float64() < g.T.UnalignedProb {
			// Force misalignment for this width.
			off = off - off%int32(width) + 1 + int32(g.rng.Intn(width-1))
		} else {
			off -= off % int32(width)
		}
	}
	return off
}

func (g *Generator) loadOpFor(width int) Op {
	switch width {
	case 1:
		return LB
	case 2:
		return LH
	default:
		return LW
	}
}

func (g *Generator) storeOpFor(width int) Op {
	switch width {
	case 1:
		return SB
	case 2:
		return SH
	default:
		return SW
	}
}

// Next instantiates one test.
func (g *Generator) Next() Program {
	programsGenerated.Inc()
	t := g.T
	n := t.Len
	if n <= 0 {
		n = 24
	}
	p := make(Program, 0, n)
	total := t.ALUWeight + t.LoadWeight + t.StoreWeight
	if total <= 0 {
		total = 1
		t.ALUWeight = 1
	}
	aluOps := []Op{ADD, SUB, MUL, AND, OR, XOR, SHL, SHR, ADDI}
	for len(p) < n {
		r := g.rng.Float64() * total
		switch {
		case r < t.ALUWeight:
			op := aluOps[g.rng.Intn(len(aluOps))]
			in := Instruction{Op: op,
				Rd:  g.scratchReg(),
				Rs1: g.rng.Intn(NumRegs),
				Rs2: g.rng.Intn(NumRegs),
			}
			if op == ADDI {
				in.Imm = int32(g.rng.Intn(256)) - 128
				in.Rs2 = 0 // unused by addi; keep the encoding canonical
			}
			p = append(p, in)
		case r < t.ALUWeight+t.LoadWeight:
			wop := g.pickWidth()
			w := wop.Width()
			p = append(p, Instruction{
				Op: g.loadOpFor(w), Rd: g.scratchReg(),
				Rs1: g.baseReg(), Imm: g.offset(w),
			})
		default:
			wop := g.pickWidth()
			w := wop.Width()
			base := g.baseReg()
			off := g.offset(w)
			p = append(p, Instruction{
				Op: g.storeOpFor(w), Rd: g.rng.Intn(NumRegs),
				Rs1: base, Imm: off,
			})
			// Store burst to stress the store buffer.
			if g.rng.Float64() < t.BurstProb {
				for b := 0; b < sbDepth+1 && len(p) < n; b++ {
					p = append(p, Instruction{
						Op: g.storeOpFor(w), Rd: g.rng.Intn(NumRegs),
						Rs1: base, Imm: g.offset(w),
					})
				}
			}
			// Store→load pair to provoke forwarding (same or overlapping
			// address, possibly different width for the blocked case).
			if g.rng.Float64() < t.PairProb && len(p) < n {
				lw := w
				if g.rng.Float64() < 0.4 {
					lw = []int{1, 2, 4}[g.rng.Intn(3)]
				}
				d := off + int32(g.rng.Intn(3)) - 1
				if d < 0 {
					d = 0
				}
				p = append(p, Instruction{
					Op: g.loadOpFor(lw), Rd: g.scratchReg(),
					Rs1: base, Imm: d,
				})
			}
		}
	}
	return p[:n]
}

// Batch instantiates k tests.
func (g *Generator) Batch(k int) []Program {
	out := make([]Program, k)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
