package isa

import (
	"testing"

	"repro/internal/parallel"
)

// TestSimulateBatchMatchesSerial pins the determinism contract: a parallel
// batch with per-worker machines reproduces a serial single-machine sweep
// coverage-bin for coverage-bin and cycle for cycle.
func TestSimulateBatchMatchesSerial(t *testing.T) {
	gen := NewGenerator(WideTemplate(), 42)
	progs := gen.Batch(400)

	m := NewMachine()
	wantCovs := make([]*Coverage, len(progs))
	wantCycles := make([]int64, len(progs))
	for i, p := range progs {
		wantCovs[i] = m.Run(p)
		wantCycles[i] = m.Cycles
	}

	for _, w := range []int{1, 2, 8} {
		old := parallel.SetWorkers(w)
		covs, cycles := SimulateBatch(progs)
		parallel.SetWorkers(old)
		for i := range progs {
			if cycles[i] != wantCycles[i] {
				t.Fatalf("workers=%d: program %d cycles = %d, serial %d", w, i, cycles[i], wantCycles[i])
			}
			if *covs[i] != *wantCovs[i] {
				t.Fatalf("workers=%d: program %d coverage differs from serial", w, i)
			}
		}
	}
}

func TestFeatureBatchMatchesSerial(t *testing.T) {
	gen := NewGenerator(WideTemplate(), 7)
	progs := gen.Batch(200)
	want := make([][]float64, len(progs))
	for i, p := range progs {
		want[i] = Features(p)
	}
	old := parallel.SetWorkers(8)
	got := FeatureBatch(progs)
	parallel.SetWorkers(old)
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("program %d: feature length %d != %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("program %d feature %d: %v != %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}
