package isa

import (
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Batch metrics: fan-out launches and their wall time. The per-program
// cycle/instruction counters live in Machine.Run.
var (
	simBatches   = obs.GetCounter("isa.sim_batches")
	simBatchTime = obs.GetHistogram("isa.sim_batch_ns")
)

// simBatchCutover keeps small batches on the caller's machine: a single
// program simulates in microseconds, so only multi-hundred-test batches
// amortize spinning up per-worker machines.
const simBatchCutover = 64

// SimulateBatch runs every program from reset and returns the per-program
// coverage and cycle counts — the candidate-batch step of the paper's
// Figure 7 loop (generate → feature-extract → simulate).
//
// The batch is striped across the worker pool with one private Machine
// per chunk. Machine.Run resets the architectural and micro-architectural
// state before each program, and coverage events and cycle counts depend
// only on the reset state (addresses flow exclusively through the base
// registers, which no generated program overwrites), so the results are
// element-wise identical to a serial sweep on a single shared machine.
func SimulateBatch(progs []Program) (covs []*Coverage, cycles []int64) {
	simBatches.Inc()
	defer simBatchTime.Start().Stop()
	covs = make([]*Coverage, len(progs))
	cycles = make([]int64, len(progs))
	parallel.ForN(len(progs), simBatchCutover, func(lo, hi int) {
		m := NewMachine()
		for i := lo; i < hi; i++ {
			covs[i] = m.Run(progs[i])
			cycles[i] = m.Cycles
		}
	})
	return covs, cycles
}

// FeatureBatch extracts the per-program feature vectors of a batch on the
// worker pool. Features(p) is a pure function of the program, so the
// result is identical to the serial loop.
func FeatureBatch(progs []Program) [][]float64 {
	return parallel.MapN(len(progs), simBatchCutover, func(i int) []float64 {
		return Features(progs[i])
	})
}
