// Package isa implements the processor-verification substrate standing in
// for the commercial constrained-random environment of the paper's
// Section 3 case studies ([14],[28]): a small RISC instruction set, a
// template-driven constrained-random test generator (the "randomizer"),
// and a load-store-unit micro-architecture simulator with a functional
// coverage model (points A0..A7 as in the paper's Table 1).
//
// A functional test is a sequence of instructions — exactly the non-vector
// sample form the paper uses to motivate kernel-based learning: tests are
// compared with an n-gram spectrum kernel over their token streams, never
// converted to a fixed vector by hand.
package isa

import (
	"fmt"
	"strings"
)

// Op is an instruction opcode.
type Op int

// Opcodes. Loads/stores come in byte/half/word widths so that alignment
// and line/page crossing behaviour differs per width.
const (
	NOP Op = iota
	ADD
	SUB
	MUL
	AND
	OR
	XOR
	SHL
	SHR
	ADDI
	LB
	LH
	LW
	SB
	SH
	SW
	numOps
)

var opNames = [...]string{
	NOP: "nop", ADD: "add", SUB: "sub", MUL: "mul", AND: "and", OR: "or",
	XOR: "xor", SHL: "shl", SHR: "shr", ADDI: "addi",
	LB: "lb", LH: "lh", LW: "lw", SB: "sb", SH: "sh", SW: "sw",
}

// String returns the mnemonic.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("op%d", int(o))
	}
	return opNames[o]
}

// IsLoad reports whether the op reads memory.
func (o Op) IsLoad() bool { return o == LB || o == LH || o == LW }

// IsStore reports whether the op writes memory.
func (o Op) IsStore() bool { return o == SB || o == SH || o == SW }

// IsMem reports whether the op accesses memory.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() }

// Width returns the access width in bytes for memory ops (0 otherwise).
func (o Op) Width() int {
	switch o {
	case LB, SB:
		return 1
	case LH, SH:
		return 2
	case LW, SW:
		return 4
	}
	return 0
}

// NumRegs is the architectural register count.
const NumRegs = 16

// Instruction is one decoded instruction.
type Instruction struct {
	Op  Op
	Rd  int   // destination (ALU/load) or source data (store)
	Rs1 int   // first source / base register
	Rs2 int   // second source
	Imm int32 // immediate / address offset
}

// String renders assembly text.
func (in Instruction) String() string {
	switch {
	case in.Op == NOP:
		return "nop"
	case in.Op == ADDI:
		return fmt.Sprintf("addi r%d, r%d, %d", in.Rd, in.Rs1, in.Imm)
	case in.Op.IsLoad():
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
	case in.Op.IsStore():
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}

// Program is a functional test: a sequence of instructions.
type Program []Instruction

// String renders the whole program.
func (p Program) String() string {
	var b strings.Builder
	for _, in := range p {
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Tokens returns the token stream consumed by the sequence kernels. Memory
// tokens are annotated with the micro-architecturally meaningful facets of
// the access — alignment class, base register (which selects the address
// region), and cache-line/page boundary proximity — so that the kernel
// measures similarity in terms the load-store unit cares about. This is
// the "domain knowledge in the kernel module" of paper Section 5: the
// learning algorithm itself never changes, only this encoding does.
func (p Program) Tokens() []string {
	out := make([]string, len(p))
	for i, in := range p {
		if !in.Op.IsMem() {
			out[i] = in.Op.String()
			continue
		}
		w := in.Op.Width()
		t := in.Op.String()
		if w > 1 && int(in.Imm)%w != 0 {
			t += ".u" // unaligned for its width
		} else {
			t += ".a"
		}
		t += ".r" + itoa(in.Rs1)
		off := int(in.Imm)
		if off >= 0 {
			if off%lineBytes+w > lineBytes {
				t += ".l" // straddles a cache line
			}
			if off%pageBytes+w > pageBytes {
				t += ".p" // straddles a page
			}
		}
		out[i] = t
	}
	return out
}

// TokensPlain returns the naive token stream: opcodes only, no
// micro-architectural annotation. It exists as the ablation baseline for
// the paper's Section 5 claim that the kernel module — not the learning
// algorithm — is where the domain knowledge must go.
func (p Program) TokensPlain() []string {
	out := make([]string, len(p))
	for i, in := range p {
		out[i] = in.Op.String()
	}
	return out
}

// itoa is a tiny non-negative integer formatter (avoids fmt in the hot
// tokenization path).
func itoa(v int) string {
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}
