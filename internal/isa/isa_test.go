package isa

import (
	"strings"
	"testing"
)

func TestOpProperties(t *testing.T) {
	if !LW.IsLoad() || !LW.IsMem() || LW.IsStore() {
		t.Fatal("LW classification")
	}
	if !SB.IsStore() || SB.IsLoad() {
		t.Fatal("SB classification")
	}
	if ADD.IsMem() {
		t.Fatal("ADD is not memory")
	}
	if LB.Width() != 1 || SH.Width() != 2 || SW.Width() != 4 || ADD.Width() != 0 {
		t.Fatal("widths")
	}
	if LW.String() != "lw" || Op(99).String() == "" {
		t.Fatal("names")
	}
}

func TestInstructionRendering(t *testing.T) {
	in := Instruction{Op: LW, Rd: 3, Rs1: 5, Imm: 12}
	if got := in.String(); got != "lw r3, 12(r5)" {
		t.Fatalf("render %q", got)
	}
	if got := (Instruction{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}).String(); got != "add r1, r2, r3" {
		t.Fatalf("render %q", got)
	}
	if got := (Instruction{Op: ADDI, Rd: 1, Rs1: 0, Imm: -5}).String(); got != "addi r1, r0, -5" {
		t.Fatalf("render %q", got)
	}
	if (Instruction{Op: NOP}).String() != "nop" {
		t.Fatal("nop render")
	}
	p := Program{in, {Op: NOP}}
	if !strings.Contains(p.String(), "lw r3") {
		t.Fatal("program render")
	}
}

func TestTokensAnnotateAlignmentRegionAndBoundaries(t *testing.T) {
	p := Program{
		{Op: LW, Rd: 8, Rs1: 1, Imm: 4},   // aligned, base r1
		{Op: LW, Rd: 8, Rs1: 3, Imm: 3},   // unaligned, base r3
		{Op: LB, Rd: 8, Rs1: 1, Imm: 3},   // byte always aligned
		{Op: LW, Rd: 8, Rs1: 2, Imm: 14},  // crosses a 16B line
		{Op: LH, Rd: 8, Rs1: 2, Imm: 255}, // crosses line and page
		{Op: ADD, Rd: 8, Rs1: 2, Rs2: 3},  // non-mem
	}
	toks := p.Tokens()
	want := []string{"lw.a.r1", "lw.u.r3", "lb.a.r1", "lw.u.r2.l", "lh.u.r2.l.p", "add"}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("token %d: %q want %q", i, toks[i], want[i])
		}
	}
}

func TestMachineALUAndMemory(t *testing.T) {
	m := NewMachine()
	p := Program{
		{Op: ADDI, Rd: 1, Rs1: 0, Imm: 100},        // r1 = 100
		{Op: ADDI, Rd: 2, Rs1: 0, Imm: 23},         // r2 = 23
		{Op: ADD, Rd: 3, Rs1: 1, Rs2: 2},           // r3 = 123
		{Op: SW, Rd: 3, Rs1: 1, Imm: 0},            // mem[100] = 123
		{Op: NOP}, {Op: NOP}, {Op: NOP}, {Op: NOP}, // drain store buffer
		{Op: LW, Rd: 4, Rs1: 1, Imm: 0}, // r4 = mem[100]
	}
	m.Run(p)
	if m.Regs[3] != 123 {
		t.Fatalf("r3=%d", m.Regs[3])
	}
	if m.Regs[4] != 123 {
		t.Fatalf("r4=%d", m.Regs[4])
	}
}

func TestR0IsHardwiredZero(t *testing.T) {
	m := NewMachine()
	m.Run(Program{{Op: ADDI, Rd: 0, Rs1: 0, Imm: 55}})
	if m.Regs[0] != 0 {
		t.Fatal("r0 must stay 0")
	}
}

func TestCoverageEvents(t *testing.T) {
	m := NewMachine()

	// Load miss then hit on the same line (destination registers are kept
	// distinct from the base register, which a load overwrites).
	cov := m.Run(Program{
		{Op: LW, Rd: 5, Rs1: 1, Imm: 0},
		{Op: LW, Rd: 6, Rs1: 1, Imm: 4},
	})
	if cov.EventHits(EvLoadMiss) != 1 || cov.EventHits(EvLoadHit) != 1 {
		t.Fatalf("miss/hit: %d/%d", cov.EventHits(EvLoadMiss), cov.EventHits(EvLoadHit))
	}

	// Store-to-load forwarding: load fully covered by pending store.
	cov = m.Run(Program{
		{Op: SW, Rd: 2, Rs1: 1, Imm: 0},
		{Op: LW, Rd: 3, Rs1: 1, Imm: 0},
	})
	if cov.EventHits(EvForward) != 1 {
		t.Fatalf("forward hits %d", cov.EventHits(EvForward))
	}

	// Forward blocked: partial overlap (word store, halfword load at +2
	// would be contained; use overlapping but not contained: store half at
	// 0, load word at 0 -> load wider than store).
	cov = m.Run(Program{
		{Op: SH, Rd: 2, Rs1: 1, Imm: 0},
		{Op: LW, Rd: 3, Rs1: 1, Imm: 0},
	})
	if cov.EventHits(EvForwardBlock) != 1 {
		t.Fatalf("forward-block hits %d", cov.EventHits(EvForwardBlock))
	}

	// Line crossing: word access at offset 14 of a 16-byte line.
	cov = m.Run(Program{{Op: LW, Rd: 1, Rs1: 1, Imm: 14}})
	if cov.EventHits(EvLineCross) != 1 {
		t.Fatalf("line-cross hits %d", cov.EventHits(EvLineCross))
	}

	// Page crossing: word access at offset 254 of a 256-byte page.
	cov = m.Run(Program{{Op: LW, Rd: 1, Rs1: 1, Imm: 254}})
	if cov.EventHits(EvPageCross) != 1 {
		t.Fatalf("page-cross hits %d", cov.EventHits(EvPageCross))
	}

	// Store-buffer full: 5 back-to-back stores (depth 4, one drains).
	cov = m.Run(Program{
		{Op: SW, Rd: 1, Rs1: 1, Imm: 0},
		{Op: SW, Rd: 1, Rs1: 1, Imm: 16},
		{Op: SW, Rd: 1, Rs1: 1, Imm: 32},
		{Op: SW, Rd: 1, Rs1: 1, Imm: 48},
		{Op: SW, Rd: 1, Rs1: 1, Imm: 64},
		{Op: SW, Rd: 1, Rs1: 1, Imm: 80},
	})
	if cov.EventHits(EvSBFull) == 0 {
		t.Fatal("sb-full never hit")
	}

	// TLB conflict miss: r1 and r2 bases live on pages that share a TLB
	// slot; alternating them evicts the entry (cold misses do not count).
	cov = m.Run(Program{
		{Op: LW, Rd: 8, Rs1: 1, Imm: 0},
		{Op: LW, Rd: 9, Rs1: 2, Imm: 0},
		{Op: LW, Rd: 10, Rs1: 1, Imm: 0},
	})
	if cov.EventHits(EvTLBMiss) == 0 {
		t.Fatal("tlb conflict miss never hit")
	}
}

func TestCoverageBinsAndNames(t *testing.T) {
	var c Coverage
	c.Hit(EvLoadHit, 4, 0)
	c.Hit(EvLoadHit, 4, 0)
	c.Hit(EvLoadMiss, 1, MemSize-1)
	if c.Count() != 2 {
		t.Fatalf("count %d", c.Count())
	}
	if c.EventHits(EvLoadHit) != 2 {
		t.Fatal("event hits")
	}
	var d Coverage
	d.Hit(EvForward, 2, 0)
	c.Merge(&d)
	if c.Count() != 3 {
		t.Fatal("merge")
	}
	name := BinName(BinID(EvLoadHit, 4, 0))
	if !strings.Contains(name, "A0:load-hit") || !strings.Contains(name, "w4") {
		t.Fatalf("bin name %q", name)
	}
}

func TestMachineDeterministic(t *testing.T) {
	g := NewGenerator(WideTemplate(), 7)
	p := g.Next()
	m := NewMachine()
	c1 := m.Run(p)
	c2 := m.Run(p)
	if *c1 != *c2 {
		t.Fatal("same program must give identical coverage")
	}
}

func TestGeneratorRespectsTemplate(t *testing.T) {
	// Default template: only aligned word loads through base r1; scratch
	// destinations never clobber base registers.
	g := NewGenerator(DefaultTemplate(), 1)
	for trial := 0; trial < 20; trial++ {
		p := g.Next()
		if len(p) != 24 {
			t.Fatalf("length %d", len(p))
		}
		for _, in := range p {
			if in.Op.IsStore() {
				t.Fatal("default template emitted a store")
			}
			if in.Op.IsMem() {
				if in.Op.Width() != 4 {
					t.Fatalf("default template emitted width %d", in.Op.Width())
				}
				if int(in.Imm)%4 != 0 {
					t.Fatalf("default template emitted unaligned offset %d", in.Imm)
				}
				if in.Rs1 != 1 {
					t.Fatalf("default template used base r%d", in.Rs1)
				}
			}
			if in.Op == ADDI || (!in.Op.IsMem() && in.Op != NOP) {
				if in.Rd < 8 {
					t.Fatalf("generator clobbered low register r%d", in.Rd)
				}
			}
			if in.Op.IsLoad() && in.Rd < 8 {
				t.Fatalf("load destination clobbers base r%d", in.Rd)
			}
		}
	}
}

func TestDefaultTemplateOnlyEasyCoverage(t *testing.T) {
	// The paper's Table 1 "Original" row: the first-cut template reaches
	// only A0/A1 (plus unavoidable cold TLB misses).
	g := NewGenerator(DefaultTemplate(), 2)
	m := NewMachine()
	var total Coverage
	for i := 0; i < 100; i++ {
		total.Merge(m.Run(g.Next()))
	}
	if total.EventHits(EvLoadHit) == 0 || total.EventHits(EvLoadMiss) == 0 {
		t.Fatal("easy coverage missing")
	}
	for _, ev := range []Event{EvForward, EvForwardBlock, EvLineCross, EvPageCross, EvSBFull} {
		if total.EventHits(ev) != 0 {
			t.Fatalf("default template should not hit %v", ev)
		}
	}
}

func TestWideTemplateEventuallyHitsAllEvents(t *testing.T) {
	g := NewGenerator(WideTemplate(), 3)
	m := NewMachine()
	var total Coverage
	for i := 0; i < 3000; i++ {
		total.Merge(m.Run(g.Next()))
	}
	for ev := Event(0); ev < NumEvents; ev++ {
		if total.EventHits(ev) == 0 {
			t.Fatalf("wide template never hit %v in 3000 tests", ev)
		}
	}
}

func TestFeaturesExtraction(t *testing.T) {
	p := Program{
		{Op: SW, Rd: 2, Rs1: 3, Imm: 8},
		{Op: LW, Rd: 1, Rs1: 3, Imm: 8}, // pair with previous store
		{Op: LH, Rd: 1, Rs1: 5, Imm: 3}, // unaligned half
		{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3},
	}
	f := Features(p)
	get := func(name string) float64 {
		for i, n := range FeatureNames {
			if n == name {
				return f[i]
			}
		}
		t.Fatalf("feature %q missing", name)
		return 0
	}
	if got := get("load_frac"); got != 0.5 {
		t.Fatalf("load_frac %g", got)
	}
	if got := get("store_frac"); got != 0.25 {
		t.Fatalf("store_frac %g", got)
	}
	if got := get("unaligned_frac"); got != 1.0/3.0 {
		t.Fatalf("unaligned_frac %g", got)
	}
	if got := get("pair_count"); got != 1 {
		t.Fatalf("pair_count %g", got)
	}
	if got := get("base_regs"); got != 2 {
		t.Fatalf("base_regs %g", got)
	}
	if got := get("max_base_reg"); got != 5 {
		t.Fatalf("max_base_reg %g", got)
	}
	if len(f) != len(FeatureNames) {
		t.Fatal("feature vector length mismatch")
	}
	// Empty program should not panic.
	_ = Features(Program{})
}

func BenchmarkSimulateTest(b *testing.B) {
	g := NewGenerator(WideTemplate(), 4)
	p := g.Next()
	m := NewMachine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Run(p)
	}
}

func BenchmarkGenerateTest(b *testing.B) {
	g := NewGenerator(WideTemplate(), 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}
