package isa

// FeatureNames lists, in order, the interpretable per-test features used by
// feature-based rule learning (paper Section 5: in feature-based learning,
// domain knowledge is incorporated into the definition of the features).
var FeatureNames = []string{
	"load_frac",      // fraction of load instructions
	"store_frac",     // fraction of store instructions
	"byte_frac",      // fraction of 1-byte memory ops
	"half_frac",      // fraction of 2-byte memory ops
	"word_frac",      // fraction of 4-byte memory ops
	"unaligned_frac", // memory ops with width-misaligned offsets
	"base_regs",      // distinct base registers used
	"max_base_reg",   // highest base register index used
	"mean_offset",    // mean |offset| of memory ops
	"max_offset",     // max offset of memory ops
	"pair_count",     // store immediately followed by load on same base
	"max_store_run",  // longest consecutive store run
}

// Features extracts the interpretable feature vector of a test.
func Features(p Program) []float64 {
	n := float64(len(p))
	if n == 0 {
		n = 1
	}
	var loads, stores, byteOps, halfOps, wordOps, unaligned float64
	baseSeen := map[int]bool{}
	maxBase := 0
	var sumOff, maxOff float64
	var pairs float64
	run, maxRun := 0, 0
	for i, in := range p {
		if !in.Op.IsMem() {
			run = 0
			continue
		}
		w := in.Op.Width()
		switch w {
		case 1:
			byteOps++
		case 2:
			halfOps++
		default:
			wordOps++
		}
		if w > 1 && int(in.Imm)%w != 0 {
			unaligned++
		}
		baseSeen[in.Rs1] = true
		if in.Rs1 > maxBase {
			maxBase = in.Rs1
		}
		off := float64(in.Imm)
		if off < 0 {
			off = -off
		}
		sumOff += off
		if off > maxOff {
			maxOff = off
		}
		if in.Op.IsStore() {
			stores++
			run++
			if run > maxRun {
				maxRun = run
			}
			if i+1 < len(p) && p[i+1].Op.IsLoad() && p[i+1].Rs1 == in.Rs1 {
				pairs++
			}
		} else {
			loads++
			run = 0
		}
	}
	mem := loads + stores
	if mem == 0 {
		mem = 1
	}
	return []float64{
		loads / n,
		stores / n,
		byteOps / mem,
		halfOps / mem,
		wordOps / mem,
		unaligned / mem,
		float64(len(baseSeen)),
		float64(maxBase),
		sumOff / mem,
		maxOff,
		pairs,
		float64(maxRun),
	}
}
