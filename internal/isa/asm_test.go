package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAssembleBasicForms(t *testing.T) {
	src := `
; a comment
nop
add r9, r2, r3   # trailing comment
addi r8, r0, -5
lw r10, 12(r5)
sb r2, (r1)
`
	p, err := AssembleString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 5 {
		t.Fatalf("instruction count %d", len(p))
	}
	if p[0].Op != NOP {
		t.Fatal("nop")
	}
	if p[1].Op != ADD || p[1].Rd != 9 || p[1].Rs1 != 2 || p[1].Rs2 != 3 {
		t.Fatalf("add parse %+v", p[1])
	}
	if p[2].Op != ADDI || p[2].Imm != -5 {
		t.Fatalf("addi parse %+v", p[2])
	}
	if p[3].Op != LW || p[3].Rd != 10 || p[3].Rs1 != 5 || p[3].Imm != 12 {
		t.Fatalf("lw parse %+v", p[3])
	}
	if p[4].Op != SB || p[4].Imm != 0 || p[4].Rs1 != 1 {
		t.Fatalf("sb parse %+v", p[4])
	}
}

func TestAssembleErrors(t *testing.T) {
	for _, bad := range []string{
		"frobnicate r1, r2, r3",
		"add r1, r2",
		"addi r1, r2, xyz",
		"lw r1, 12[r5]",
		"lw r1, 12(r99)",
		"add r1, r2, r99",
		"nop r1",
	} {
		if _, err := AssembleString(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
		if _, err := AssembleString(bad); err != nil && !strings.Contains(err.Error(), "line 1") {
			t.Fatalf("error for %q missing line number: %v", bad, err)
		}
	}
}

// Property: Assemble(Program.String()) round-trips every generated test.
func TestQuickAssembleRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		gen := NewGenerator(WideTemplate(), seed)
		p := gen.Next()
		q, err := AssembleString(p.String())
		if err != nil {
			return false
		}
		if len(q) != len(p) {
			return false
		}
		for i := range p {
			if p[i] != q[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAssembledProgramRunsIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_ = rng
	gen := NewGenerator(WideTemplate(), 42)
	p := gen.Next()
	q, err := AssembleString(p.String())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	c1 := m.Run(p)
	c2 := m.Run(q)
	if *c1 != *c2 {
		t.Fatal("assembled program diverges from original")
	}
}
