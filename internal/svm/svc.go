// Package svm implements the Support Vector Machine family highlighted in
// Section 2.3 of the paper: the kernelized binary classifier (SVC), the
// ε-insensitive regressor (SVR), and the one-class SVM used for novelty
// detection in the test-selection and customer-return applications
// ([14],[16],[27]). All three share the paper's Equation 2 model form
//
//	M(x) = Σ α_i k(x, x_i) + b
//
// and control model complexity C = Σ α_i through regularization.
package svm

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/core/colmat"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/linalg"
)

// SVC is a fitted kernel support vector classifier for labels {0,1}.
type SVC struct {
	K       kernel.Kernel
	SV      *linalg.Matrix // support vectors
	Alpha   []float64      // alpha_i * y_i for each support vector
	B       float64
	classes [2]float64
}

// SVCConfig controls training.
type SVCConfig struct {
	C        float64 // box constraint, default 1
	Tol      float64 // KKT tolerance, default 1e-3
	MaxPass  int     // passes without change before stopping, default 5
	MaxIters int     // hard iteration cap, default 10000
	Seed     int64   // rng seed for the SMO heuristic
}

// FitSVC trains a binary SVC with the simplified SMO algorithm.
// Labels must take exactly two values; they are mapped to ±1 internally.
func FitSVC(d *dataset.Dataset, k kernel.Kernel, cfg SVCConfig) (*SVC, error) {
	if d.Len() == 0 {
		return nil, errors.New("svm: empty dataset")
	}
	if k == nil {
		k = kernel.RBF{Gamma: 1.0 / float64(d.Dim())}
	}
	if cfg.C <= 0 {
		cfg.C = 1
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-3
	}
	if cfg.MaxPass <= 0 {
		cfg.MaxPass = 5
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 10000
	}
	classes := d.Classes()
	if len(classes) != 2 {
		return nil, errors.New("svm: SVC requires exactly two classes")
	}
	n := d.Len()
	y := make([]float64, n)
	for i, v := range d.Y {
		if int(v) == classes[0] {
			y[i] = -1
		} else {
			y[i] = 1
		}
	}
	gram := kernel.Gram(k, d.X)
	alpha := make([]float64, n)
	b := 0.0
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	f := func(i int) float64 {
		s := b
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * y[j] * gram.At(i, j)
			}
		}
		return s
	}

	passes, iters := 0, 0
	for passes < cfg.MaxPass && iters < cfg.MaxIters {
		changed := 0
		for i := 0; i < n; i++ {
			iters++
			ei := f(i) - y[i]
			if (y[i]*ei < -cfg.Tol && alpha[i] < cfg.C) || (y[i]*ei > cfg.Tol && alpha[i] > 0) {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				ej := f(j) - y[j]
				ai, aj := alpha[i], alpha[j]
				var lo, hi float64
				if y[i] != y[j] {
					lo = math.Max(0, aj-ai)
					hi = math.Min(cfg.C, cfg.C+aj-ai)
				} else {
					lo = math.Max(0, ai+aj-cfg.C)
					hi = math.Min(cfg.C, ai+aj)
				}
				if lo == hi {
					continue
				}
				eta := 2*gram.At(i, j) - gram.At(i, i) - gram.At(j, j)
				if eta >= 0 {
					continue
				}
				ajNew := aj - y[j]*(ei-ej)/eta
				if ajNew > hi {
					ajNew = hi
				} else if ajNew < lo {
					ajNew = lo
				}
				if math.Abs(ajNew-aj) < 1e-5 {
					continue
				}
				aiNew := ai + y[i]*y[j]*(aj-ajNew)
				b1 := b - ei - y[i]*(aiNew-ai)*gram.At(i, i) - y[j]*(ajNew-aj)*gram.At(i, j)
				b2 := b - ej - y[i]*(aiNew-ai)*gram.At(i, j) - y[j]*(ajNew-aj)*gram.At(j, j)
				switch {
				case aiNew > 0 && aiNew < cfg.C:
					b = b1
				case ajNew > 0 && ajNew < cfg.C:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				alpha[i], alpha[j] = aiNew, ajNew
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	// Keep only support vectors.
	var svIdx []int
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 {
			svIdx = append(svIdx, i)
		}
	}
	sv := linalg.NewMatrix(len(svIdx), d.Dim())
	coef := make([]float64, len(svIdx))
	for r, i := range svIdx {
		copy(sv.Row(r), d.Row(i))
		coef[r] = alpha[i] * y[i]
	}
	return &SVC{K: k, SV: sv, Alpha: coef, B: b,
		classes: [2]float64{float64(classes[0]), float64(classes[1])}}, nil
}

// Classes returns the two class labels in the order used by Predict:
// Classes()[0] for a negative margin, Classes()[1] for a nonnegative one.
func (m *SVC) Classes() [2]float64 { return m.classes }

// RestoreSVC rebuilds a fitted SVC from its persisted components (see
// internal/model). The arguments are retained, not copied.
func RestoreSVC(k kernel.Kernel, sv *linalg.Matrix, alpha []float64, b float64, classes [2]float64) *SVC {
	return &SVC{K: k, SV: sv, Alpha: alpha, B: b, classes: classes}
}

// Decision returns the signed margin M(x) of paper Eq. 2; positive means
// the second class.
func (m *SVC) Decision(x []float64) float64 {
	s := m.B
	for i := 0; i < m.SV.Rows; i++ {
		s += m.Alpha[i] * m.K.Eval(x, m.SV.Row(i))
	}
	return s
}

// DecisionBatch returns Decision for every row of x, amortizing the
// kernel evaluations through one CrossGram sweep (parallel across rows).
// Each margin is accumulated in the same order as Decision, so the batch
// path is bit-identical to scoring the rows one at a time.
func (m *SVC) DecisionBatch(x *linalg.Matrix) []float64 {
	return m.DecisionBatchInto(x, make([]float64, x.Rows))
}

// DecisionBatchInto is DecisionBatch writing into a caller-provided
// slice of length x.Rows; the cross-Gram scratch is leased from the
// columnar arena, so a steady-state batch allocates nothing
// (alloc_test.go pins this at 0 allocs/op).
func (m *SVC) DecisionBatchInto(x *linalg.Matrix, out []float64) []float64 {
	if len(out) != x.Rows {
		panic("svm: DecisionBatchInto output length mismatch")
	}
	g := colmat.Get(x.Rows, m.SV.Rows)
	kernel.CrossGramInto(m.K, x, m.SV, g)
	for i := range out {
		s := m.B
		row := g.Row(i)
		for j, a := range m.Alpha {
			s += a * row[j]
		}
		out[i] = s
	}
	colmat.Put(g)
	return out
}

// PredictBatch returns Predict for every row of x via DecisionBatch.
func (m *SVC) PredictBatch(x *linalg.Matrix) []float64 {
	return m.PredictBatchInto(x, make([]float64, x.Rows))
}

// PredictBatchInto is PredictBatch writing into a caller-provided slice.
func (m *SVC) PredictBatchInto(x *linalg.Matrix, out []float64) []float64 {
	out = m.DecisionBatchInto(x, out)
	for i, s := range out {
		if s >= 0 {
			out[i] = m.classes[1]
		} else {
			out[i] = m.classes[0]
		}
	}
	return out
}

// Predict returns the predicted class label.
func (m *SVC) Predict(x []float64) float64 {
	if m.Decision(x) >= 0 {
		return m.classes[1]
	}
	return m.classes[0]
}

// PredictAll predicts every row of d.
func (m *SVC) PredictAll(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = m.Predict(d.Row(i))
	}
	return out
}

// NumSV returns the number of support vectors.
func (m *SVC) NumSV() int { return m.SV.Rows }

// DualViolation returns the largest violation of the dual box constraint
// 0 ≤ α_i ≤ C over the stored coefficients (Alpha_i = α_i·y_i, so the
// constraint is |Alpha_i| ≤ C and Alpha_i ≠ 0 for a support vector).
// A correctly trained or correctly restored SVC returns a value ≤ 0; the
// conformance suite (internal/testkit) asserts this on every generated
// fit and on every decoded artifact.
func (m *SVC) DualViolation(c float64) float64 {
	worst := math.Inf(-1)
	if len(m.Alpha) == 0 {
		return 0
	}
	for _, a := range m.Alpha {
		if v := math.Abs(a) - c; v > worst {
			worst = v
		}
		if a == 0 { // a stored support vector must carry weight
			worst = math.Max(worst, math.SmallestNonzeroFloat64)
		}
	}
	return worst
}

// Complexity returns Σ|α_i|, the paper's model-complexity measure for SVMs.
func (m *SVC) Complexity() float64 {
	s := 0.0
	for _, a := range m.Alpha {
		s += math.Abs(a)
	}
	return s
}
