package svm

import (
	"errors"
	"math"

	"repro/internal/kernel"
	"repro/internal/linalg"
)

// This file is the shared core of the ν-one-class solvers: one pairwise
// coordinate-descent loop over the dual
//
//	min ½ Σ α_i α_j K_ij  s.t.  Σ α_i = 1,  0 ≤ α_i ≤ 1/(ν n)
//
// parameterized by a Gram accessor, so the vector path (FitOneClass),
// the precomputed-kernel path (FitOneClassGram), and the streaming
// warm-start path (FitOneClassPrecomputed) run the identical arithmetic
// in the identical order — the conformance suite's RefitIdentity/Exact
// contract depends on that.

// SolveInfo reports how a one-class dual solve went. The streaming
// trainer uses it to carry dual weights across window refreshes and to
// detect a warm start that failed to converge (which triggers the
// cold-start fallback, see internal/stream).
type SolveInfo struct {
	Alpha     []float64 // full-window dual weights, zeros kept for indexing
	Iters     int       // pairwise-update iterations consumed
	Gap       float64   // final most-violating-pair KKT gap
	Converged bool      // Gap < Tol at exit
	WarmStart bool      // solve started from projected previous alphas
}

// normalize applies the documented defaults.
func (cfg *OneClassConfig) normalize() {
	if cfg.Nu <= 0 || cfg.Nu > 1 {
		cfg.Nu = 0.1
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-4
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 200
	}
}

// coldStartAlpha is the canonical feasible start: distribute mass over
// the first ceil(ν·n) points, then repair tiny numeric drift in the sum.
func coldStartAlpha(n int, nu float64) []float64 {
	upper := 1.0 / (nu * float64(n))
	alpha := make([]float64, n)
	nInit := int(math.Ceil(nu * float64(n)))
	if nInit > n {
		nInit = n
	}
	for i := 0; i < nInit; i++ {
		alpha[i] = math.Min(upper, 1.0/float64(nInit))
	}
	sum := 0.0
	for _, a := range alpha {
		sum += a
	}
	if sum > 0 {
		for i := range alpha {
			alpha[i] /= sum
		}
	}
	return alpha
}

// WarmStartAlpha projects a previous window's dual weights onto the
// ν-one-class feasible set for a window of n rows: entries beyond the
// previous window (freshly appended rows) start at zero, every entry is
// clamped into [0, 1/(ν·n)], and the equality constraint Σα = 1 is
// restored — by uniform scaling when the clamped mass exceeds 1, and by
// filling headroom in index order when it falls short (deterministic, so
// the projection is a pure function of its inputs). Returns nil when the
// previous weights carry no mass, meaning the caller must cold-start.
func WarmStartAlpha(prev []float64, n int, nu float64) []float64 {
	if n <= 0 || len(prev) == 0 {
		return nil
	}
	upper := 1.0 / (nu * float64(n))
	alpha := make([]float64, n)
	m := len(prev)
	if m > n {
		m = n
	}
	sum := 0.0
	for i := 0; i < m; i++ {
		a := prev[i]
		if a < 0 {
			a = 0
		} else if a > upper {
			a = upper
		}
		alpha[i] = a
		sum += a
	}
	if sum <= 0 {
		return nil
	}
	if sum > 1 {
		inv := 1 / sum
		for i := range alpha {
			alpha[i] *= inv
		}
		return alpha
	}
	deficit := 1 - sum
	for i := 0; i < n && deficit > 1e-15; i++ {
		room := upper - alpha[i]
		if room <= 0 {
			continue
		}
		if room > deficit {
			room = deficit
		}
		alpha[i] += room
		deficit -= room
	}
	if deficit > 1e-9 {
		// n·upper = 1/ν ≥ 1 always holds, so this is unreachable for
		// valid ν; guard anyway rather than hand the solver an
		// infeasible point.
		return nil
	}
	return alpha
}

// solveOneClass runs most-violating-pair coordinate descent from the
// given feasible alpha (mutated in place). at(i, j) must return K_ij.
// The returned gradient g_i = Σ_j α_j K_ij is the byproduct every
// caller needs for ρ extraction.
func solveOneClass(n int, at func(i, j int) float64, cfg OneClassConfig, alpha []float64) (g []float64, iters int, gap float64) {
	upper := 1.0 / (cfg.Nu * float64(n))

	// Gradient g_i = Σ_j α_j K_ij.
	g = make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * at(i, j)
			}
		}
		g[i] = s
	}

	for it := 0; it < cfg.MaxIters; it++ {
		// Most-violating pair: minimize over i with alpha_i < upper the
		// gradient; maximize over j with alpha_j > 0.
		i, j := -1, -1
		gmin, gmax := math.Inf(1), math.Inf(-1)
		for t := 0; t < n; t++ {
			if alpha[t] < upper-1e-12 && g[t] < gmin {
				gmin, i = g[t], t
			}
			if alpha[t] > 1e-12 && g[t] > gmax {
				gmax, j = g[t], t
			}
		}
		if i < 0 || j < 0 || gmax-gmin < cfg.Tol {
			break
		}
		eta := at(i, i) + at(j, j) - 2*at(i, j)
		if eta <= 1e-12 {
			eta = 1e-12
		}
		// Move t mass from j to i (decreases objective since g_i < g_j).
		t := (g[j] - g[i]) / eta
		if t > alpha[j] {
			t = alpha[j]
		}
		if t > upper-alpha[i] {
			t = upper - alpha[i]
		}
		if t <= 0 {
			break
		}
		alpha[i] += t
		alpha[j] -= t
		for r := 0; r < n; r++ {
			g[r] += t * (at(r, i) - at(r, j))
		}
		iters = it + 1
	}
	return g, iters, kktGap(n, alpha, g, upper)
}

// kktGap recomputes the most-violating-pair gap at the current point —
// the solver's convergence certificate. Zero when no violating pair
// exists at all.
func kktGap(n int, alpha, g []float64, upper float64) float64 {
	gmin, gmax := math.Inf(1), math.Inf(-1)
	for t := 0; t < n; t++ {
		if alpha[t] < upper-1e-12 && g[t] < gmin {
			gmin = g[t]
		}
		if alpha[t] > 1e-12 && g[t] > gmax {
			gmax = g[t]
		}
	}
	if math.IsInf(gmin, 1) || math.IsInf(gmax, -1) {
		return 0
	}
	if gap := gmax - gmin; gap > 0 {
		return gap
	}
	return 0
}

// oneClassRho extracts ρ: g_i averaged over margin SVs
// (0 < α_i < upper); fall back to the max gradient over support vectors
// when none are strictly inside.
func oneClassRho(n int, alpha, g []float64, upper float64) float64 {
	rho, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 && alpha[i] < upper-1e-8 {
			rho += g[i]
			cnt++
		}
	}
	if cnt > 0 {
		return rho / float64(cnt)
	}
	rho = math.Inf(-1)
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 && g[i] > rho {
			rho = g[i]
		}
	}
	return rho
}

// FitOneClassPrecomputed trains a ν-one-class SVM on the rows of x whose
// Gram matrix is already available through at (at(i, j) = k(x_i, x_j)).
// This is the streaming trainer's entry point: kernel.SlidingGram keeps
// the window's Gram matrix current across appends and evictions, so a
// refresh pays only the solve, never an O(n²) Gram rebuild.
//
// warm, when non-nil, is the previous window's dual weights aligned to
// the current window (evicted rows dropped, appended rows zero); it is
// projected onto the feasible set via WarmStartAlpha and the solver
// resumes from there. A nil warm slice — or one whose projection is
// degenerate — falls back to the canonical cold start.
//
// The returned SolveInfo carries the full-window alphas for the next
// warm start and the convergence certificate (Gap, Converged). A warm
// start that exits without converging is reported, not hidden: the
// caller decides whether to refit cold (see stream.Trainer).
func FitOneClassPrecomputed(x *linalg.Matrix, k kernel.Kernel, at func(i, j int) float64, cfg OneClassConfig, warm []float64) (*OneClass, SolveInfo, error) {
	n := x.Rows
	if n == 0 {
		return nil, SolveInfo{}, errors.New("svm: empty training set")
	}
	if k == nil {
		k = kernel.RBF{Gamma: 1.0 / float64(x.Cols)}
	}
	cfg.normalize()
	upper := 1.0 / (cfg.Nu * float64(n))

	alpha := WarmStartAlpha(warm, n, cfg.Nu)
	info := SolveInfo{WarmStart: alpha != nil}
	if alpha == nil {
		alpha = coldStartAlpha(n, cfg.Nu)
	}
	g, iters, gap := solveOneClass(n, at, cfg, alpha)
	info.Alpha = alpha
	info.Iters = iters
	info.Gap = gap
	info.Converged = gap < cfg.Tol
	rho := oneClassRho(n, alpha, g, upper)

	var svIdx []int
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 {
			svIdx = append(svIdx, i)
		}
	}
	sv := linalg.NewMatrix(len(svIdx), x.Cols)
	coef := make([]float64, len(svIdx))
	for r, i := range svIdx {
		copy(sv.Row(r), x.Row(i))
		coef[r] = alpha[i]
	}
	return &OneClass{K: k, SV: sv, Alpha: coef, Rho: rho, Nu: cfg.Nu}, info, nil
}
