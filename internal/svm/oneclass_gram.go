package svm

import (
	"errors"
	"math"
)

// OneClassGram is a ν-one-class SVM trained directly from a precomputed
// kernel (Gram) matrix. This is the form the paper's Figure 4 describes:
// the learning algorithm never sees the samples, only their pairwise
// similarities, so the samples may be assembly programs, layout windows, or
// any other non-vector objects ([13],[14]).
type OneClassGram struct {
	Alpha []float64 // one weight per training sample (zeros kept for indexing)
	Rho   float64
	Nu    float64
}

// FitOneClassGram trains on an n×n kernel matrix.
func FitOneClassGram(gram [][]float64, cfg OneClassConfig) (*OneClassGram, error) {
	n := len(gram)
	if n == 0 {
		return nil, errors.New("svm: empty gram matrix")
	}
	for _, row := range gram {
		if len(row) != n {
			return nil, errors.New("svm: gram matrix must be square")
		}
	}
	if cfg.Nu <= 0 || cfg.Nu > 1 {
		cfg.Nu = 0.1
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-4
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 200
	}
	upper := 1.0 / (cfg.Nu * float64(n))

	alpha := make([]float64, n)
	nInit := int(math.Ceil(cfg.Nu * float64(n)))
	if nInit > n {
		nInit = n
	}
	for i := 0; i < nInit; i++ {
		alpha[i] = math.Min(upper, 1.0/float64(nInit))
	}
	sum := 0.0
	for _, a := range alpha {
		sum += a
	}
	if sum > 0 {
		for i := range alpha {
			alpha[i] /= sum
		}
	}

	g := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * gram[i][j]
			}
		}
		g[i] = s
	}

	for it := 0; it < cfg.MaxIters; it++ {
		i, j := -1, -1
		gmin, gmax := math.Inf(1), math.Inf(-1)
		for t := 0; t < n; t++ {
			if alpha[t] < upper-1e-12 && g[t] < gmin {
				gmin, i = g[t], t
			}
			if alpha[t] > 1e-12 && g[t] > gmax {
				gmax, j = g[t], t
			}
		}
		if i < 0 || j < 0 || gmax-gmin < cfg.Tol {
			break
		}
		eta := gram[i][i] + gram[j][j] - 2*gram[i][j]
		if eta <= 1e-12 {
			eta = 1e-12
		}
		t := (g[j] - g[i]) / eta
		if t > alpha[j] {
			t = alpha[j]
		}
		if t > upper-alpha[i] {
			t = upper - alpha[i]
		}
		if t <= 0 {
			break
		}
		alpha[i] += t
		alpha[j] -= t
		for r := 0; r < n; r++ {
			g[r] += t * (gram[r][i] - gram[r][j])
		}
	}

	rho, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 && alpha[i] < upper-1e-8 {
			rho += g[i]
			cnt++
		}
	}
	if cnt > 0 {
		rho /= float64(cnt)
	} else {
		rho = math.Inf(-1)
		for i := 0; i < n; i++ {
			if alpha[i] > 1e-8 && g[i] > rho {
				rho = g[i]
			}
		}
	}
	return &OneClassGram{Alpha: alpha, Rho: rho, Nu: cfg.Nu}, nil
}

// Decision scores a new sample given its kernel evaluations kx[i] = k(x, x_i)
// against every training sample. Negative means novel.
func (m *OneClassGram) Decision(kx []float64) float64 {
	if len(kx) != len(m.Alpha) {
		panic("svm: kernel row length mismatch")
	}
	s := -m.Rho
	for i, a := range m.Alpha {
		if a != 0 {
			s += a * kx[i]
		}
	}
	return s
}

// Novel reports whether the sample with kernel row kx is outside the
// learned support.
func (m *OneClassGram) Novel(kx []float64) bool { return m.Decision(kx) < 0 }
