package svm

import "errors"

// OneClassGram is a ν-one-class SVM trained directly from a precomputed
// kernel (Gram) matrix. This is the form the paper's Figure 4 describes:
// the learning algorithm never sees the samples, only their pairwise
// similarities, so the samples may be assembly programs, layout windows, or
// any other non-vector objects ([13],[14]).
type OneClassGram struct {
	Alpha []float64 // one weight per training sample (zeros kept for indexing)
	Rho   float64
	Nu    float64
}

// FitOneClassGram trains on an n×n kernel matrix. It shares the
// pairwise coordinate-descent core in solver.go with FitOneClass.
func FitOneClassGram(gram [][]float64, cfg OneClassConfig) (*OneClassGram, error) {
	n := len(gram)
	if n == 0 {
		return nil, errors.New("svm: empty gram matrix")
	}
	for _, row := range gram {
		if len(row) != n {
			return nil, errors.New("svm: gram matrix must be square")
		}
	}
	cfg.normalize()
	upper := 1.0 / (cfg.Nu * float64(n))

	alpha := coldStartAlpha(n, cfg.Nu)
	g, _, _ := solveOneClass(n, func(i, j int) float64 { return gram[i][j] }, cfg, alpha)
	rho := oneClassRho(n, alpha, g, upper)
	return &OneClassGram{Alpha: alpha, Rho: rho, Nu: cfg.Nu}, nil
}

// Decision scores a new sample given its kernel evaluations kx[i] = k(x, x_i)
// against every training sample. Negative means novel.
func (m *OneClassGram) Decision(kx []float64) float64 {
	if len(kx) != len(m.Alpha) {
		panic("svm: kernel row length mismatch")
	}
	s := -m.Rho
	for i, a := range m.Alpha {
		if a != 0 {
			s += a * kx[i]
		}
	}
	return s
}

// Novel reports whether the sample with kernel row kx is outside the
// learned support.
func (m *OneClassGram) Novel(kx []float64) bool { return m.Decision(kx) < 0 }
