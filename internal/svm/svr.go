package svm

import (
	"errors"
	"math"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/linalg"
)

// SVR is a fitted ε-insensitive support vector regressor, one of the five
// regressor families of the Fmax-prediction study ([20]).
//
// f(x) = Σ β_i k(x, x_i) + b with β_i = α_i − α_i* ∈ [−C, C], Σ β_i = 0.
type SVR struct {
	K    kernel.Kernel
	SV   *linalg.Matrix
	Beta []float64
	B    float64
}

// SVRConfig controls training.
type SVRConfig struct {
	C        float64 // box constraint, default 1
	Epsilon  float64 // insensitive-tube half width, default 0.1
	Tol      float64 // convergence tolerance, default 1e-4
	MaxIters int     // pair-update cap, default 20000
}

// FitSVR trains ε-SVR with pairwise coordinate descent on the β dual:
//
//	min ½ Σ β_i β_j K_ij − Σ β_i y_i + ε Σ |β_i|
//	s.t. Σ β_i = 0, −C ≤ β_i ≤ C.
func FitSVR(d *dataset.Dataset, k kernel.Kernel, cfg SVRConfig) (*SVR, error) {
	n := d.Len()
	if n == 0 {
		return nil, errors.New("svm: empty dataset")
	}
	if k == nil {
		k = kernel.RBF{Gamma: 1.0 / float64(d.Dim())}
	}
	if cfg.C <= 0 {
		cfg.C = 1
	}
	if cfg.Epsilon < 0 {
		cfg.Epsilon = 0.1
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-4
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 20000
	}
	gram := kernel.Gram(k, d.X)
	beta := make([]float64, n)
	// g_i = Σ_j β_j K_ij − y_i (gradient of the smooth part).
	g := make([]float64, n)
	for i := range g {
		g[i] = -d.Y[i]
	}

	return fitSVRImpl(d, k, cfg, gram, beta, g)
}

func fitSVRImpl(d *dataset.Dataset, k kernel.Kernel, cfg SVRConfig, gram *linalg.Matrix, beta, g []float64) (*SVR, error) {
	n := d.Len()
	eps := cfg.Epsilon
	deriv := func(i int, dir float64) float64 {
		v := dir * g[i]
		switch {
		case beta[i] > 1e-12:
			v += dir * eps
		case beta[i] < -1e-12:
			v -= dir * eps
		default:
			v += eps
		}
		return v
	}
	for it := 0; it < cfg.MaxIters; it++ {
		// Pick i: steepest descent increasing β_i; j: steepest decreasing β_j.
		i, j := -1, -1
		di, dj := math.Inf(1), math.Inf(1)
		for t := 0; t < n; t++ {
			if beta[t] < cfg.C-1e-12 {
				if v := deriv(t, 1); v < di {
					di, i = v, t
				}
			}
			if beta[t] > -cfg.C+1e-12 {
				if v := deriv(t, -1); v < dj {
					dj, j = v, t
				}
			}
		}
		if i < 0 || j < 0 || i == j || di+dj > -cfg.Tol {
			break
		}
		eta := gram.At(i, i) + gram.At(j, j) - 2*gram.At(i, j)
		if eta <= 1e-12 {
			eta = 1e-12
		}
		// Move t along (e_i − e_j). The |β| terms are piecewise linear;
		// take a Newton step for the current linearization and clip at the
		// first sign-change breakpoint and the box.
		step := -(di + dj) / eta
		maxStep := math.Min(cfg.C-beta[i], beta[j]+cfg.C)
		// Breakpoints where |·| slope changes.
		if beta[i] < -1e-12 {
			maxStep = math.Min(maxStep, -beta[i])
		}
		if beta[j] > 1e-12 {
			maxStep = math.Min(maxStep, beta[j])
		}
		if step > maxStep {
			step = maxStep
		}
		if step <= 1e-14 {
			break
		}
		beta[i] += step
		beta[j] -= step
		for r := 0; r < n; r++ {
			g[r] += step * (gram.At(r, i) - gram.At(r, j))
		}
	}

	// Bias from free SVs: for 0<β_i<C the residual is +ε; for −C<β_i<0 it
	// is −ε. g_i = f(x_i) − b − y_i, so b = −g_i − ε·sign(β_i).
	b, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		if beta[i] > 1e-8 && beta[i] < cfg.C-1e-8 {
			b += -g[i] - eps
			cnt++
		} else if beta[i] < -1e-8 && beta[i] > -cfg.C+1e-8 {
			b += -g[i] + eps
			cnt++
		}
	}
	if cnt > 0 {
		b /= float64(cnt)
	} else {
		// Fall back to median residual.
		res := make([]float64, n)
		for i := 0; i < n; i++ {
			res[i] = -g[i]
		}
		b = medianOf(res)
	}

	var svIdx []int
	for i := 0; i < n; i++ {
		if math.Abs(beta[i]) > 1e-8 {
			svIdx = append(svIdx, i)
		}
	}
	sv := linalg.NewMatrix(len(svIdx), d.Dim())
	coef := make([]float64, len(svIdx))
	for r, i := range svIdx {
		copy(sv.Row(r), d.Row(i))
		coef[r] = beta[i]
	}
	return &SVR{K: k, SV: sv, Beta: coef, B: b}, nil
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// Predict returns f(x).
func (m *SVR) Predict(x []float64) float64 {
	s := m.B
	for i := 0; i < m.SV.Rows; i++ {
		s += m.Beta[i] * m.K.Eval(x, m.SV.Row(i))
	}
	return s
}

// PredictAll predicts every row of d.
func (m *SVR) PredictAll(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = m.Predict(d.Row(i))
	}
	return out
}

// NumSV returns the number of support vectors.
func (m *SVR) NumSV() int { return m.SV.Rows }
