package svm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/validate"
)

func TestSVCLinearSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := dataset.TwoGaussians(rng, 60, 2, 5, 0.8)
	m, err := FitSVC(d, kernel.Linear{}, SVCConfig{C: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc := validate.Accuracy(m.PredictAll(d), d.Y)
	if acc < 0.98 {
		t.Fatalf("SVC linear accuracy %g", acc)
	}
	if m.NumSV() == 0 || m.NumSV() == d.Len() {
		t.Fatalf("suspicious SV count %d of %d", m.NumSV(), d.Len())
	}
	if m.Complexity() <= 0 {
		t.Fatal("complexity must be positive")
	}
}

func TestSVCKernelTrickOnRing(t *testing.T) {
	// Figure 3: a linear SVC fails on ring-and-core, the quadratic kernel
	// separates it perfectly.
	rng := rand.New(rand.NewSource(2))
	d := dataset.RingAndCore(rng, 80, 1, 3, 0.05)
	lin, err := FitSVC(d, kernel.Linear{}, SVCConfig{C: 1})
	if err != nil {
		t.Fatal(err)
	}
	linAcc := validate.Accuracy(lin.PredictAll(d), d.Y)
	quad, err := FitSVC(d, kernel.Poly{Degree: 2, Gamma: 1, Coef0: 0}, SVCConfig{C: 10})
	if err != nil {
		t.Fatal(err)
	}
	quadAcc := validate.Accuracy(quad.PredictAll(d), d.Y)
	if linAcc > 0.75 {
		t.Fatalf("linear SVC should fail on the ring, got %g", linAcc)
	}
	if quadAcc < 0.98 {
		t.Fatalf("quadratic SVC should separate the ring, got %g", quadAcc)
	}
}

func TestSVCRBFOnXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := dataset.XOR(rng, 40, 0.25)
	m, err := FitSVC(d, kernel.RBF{Gamma: 1}, SVCConfig{C: 5})
	if err != nil {
		t.Fatal(err)
	}
	acc := validate.Accuracy(m.PredictAll(d), d.Y)
	if acc < 0.95 {
		t.Fatalf("RBF SVC on XOR accuracy %g", acc)
	}
}

func TestSVCValidation(t *testing.T) {
	if _, err := FitSVC(dataset.FromRows(nil, nil), nil, SVCConfig{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	one := dataset.FromRows([][]float64{{1}, {2}}, []float64{0, 0})
	if _, err := FitSVC(one, nil, SVCConfig{}); err == nil {
		t.Fatal("single-class dataset accepted")
	}
}

func TestSVCPreservesOriginalLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := dataset.TwoGaussians(rng, 40, 2, 5, 0.8)
	// Relabel as {3, 7}.
	for i := range d.Y {
		if d.Y[i] == 0 {
			d.Y[i] = 3
		} else {
			d.Y[i] = 7
		}
	}
	m, err := FitSVC(d, kernel.Linear{}, SVCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.PredictAll(d) {
		if p != 3 && p != 7 {
			t.Fatalf("prediction %g not an original label", p)
		}
	}
}

func TestOneClassFlagsOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 200
	x := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
	}
	m, err := FitOneClass(x, kernel.RBF{Gamma: 0.5}, OneClassConfig{Nu: 0.1, MaxIters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	// A far-away point must be novel, the origin must not be.
	if !m.Novel([]float64{8, 8}) {
		t.Fatal("distant point should be novel")
	}
	if m.Novel([]float64{0, 0}) {
		t.Fatal("origin should be inside the support")
	}
	// Fraction of training points flagged should be around nu (loose).
	flagged := 0
	for i := 0; i < n; i++ {
		if m.Novel(x.Row(i)) {
			flagged++
		}
	}
	rate := float64(flagged) / float64(n)
	if rate > 0.3 {
		t.Fatalf("too many training points novel: %g", rate)
	}
}

func TestOneClassNuControlsRejection(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 150
	x := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
	}
	rate := func(nu float64) float64 {
		m, err := FitOneClass(x, kernel.RBF{Gamma: 0.5}, OneClassConfig{Nu: nu, MaxIters: 3000})
		if err != nil {
			t.Fatal(err)
		}
		f := 0
		for i := 0; i < n; i++ {
			if m.Novel(x.Row(i)) {
				f++
			}
		}
		return float64(f) / float64(n)
	}
	if rate(0.05) >= rate(0.5) {
		t.Fatal("larger nu should reject more training points")
	}
}

func TestOneClassGramMatchesVectorForm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 80
	x := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
	}
	k := kernel.RBF{Gamma: 0.5}
	vec, err := FitOneClass(x, k, OneClassConfig{Nu: 0.2, MaxIters: 3000})
	if err != nil {
		t.Fatal(err)
	}
	g := kernel.Gram(k, x)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = g.Row(i)
	}
	gm, err := FitOneClassGram(rows, OneClassConfig{Nu: 0.2, MaxIters: 3000})
	if err != nil {
		t.Fatal(err)
	}
	// Same decisions on the training points.
	for i := 0; i < n; i++ {
		kx := make([]float64, n)
		for j := 0; j < n; j++ {
			kx[j] = k.Eval(x.Row(i), x.Row(j))
		}
		dv := vec.Decision(x.Row(i))
		dg := gm.Decision(kx)
		if math.Abs(dv-dg) > 1e-6 {
			t.Fatalf("sample %d: vector %g vs gram %g", i, dv, dg)
		}
	}
}

func TestOneClassGramValidation(t *testing.T) {
	if _, err := FitOneClassGram(nil, OneClassConfig{}); err == nil {
		t.Fatal("empty gram accepted")
	}
	if _, err := FitOneClassGram([][]float64{{1, 2}}, OneClassConfig{}); err == nil {
		t.Fatal("ragged gram accepted")
	}
}

func TestSVRFitsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 120
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		x := rng.Float64()*4 - 2
		rows[i] = []float64{x}
		y[i] = 2*x + 1 + 0.02*rng.NormFloat64()
	}
	d := dataset.FromRows(rows, y)
	m, err := FitSVR(d, kernel.Linear{}, SVRConfig{C: 10, Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	pred := m.PredictAll(d)
	if r2 := validate.R2(pred, d.Y); r2 < 0.99 {
		t.Fatalf("SVR linear R2 %g", r2)
	}
	// f(0) should be near intercept 1.
	if got := m.Predict([]float64{0}); math.Abs(got-1) > 0.15 {
		t.Fatalf("intercept %g", got)
	}
}

func TestSVRNonlinearWithRBF(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := dataset.NoisySine(rng, 150, 0.05)
	m, err := FitSVR(d, kernel.RBF{Gamma: 20}, SVRConfig{C: 10, Epsilon: 0.05, MaxIters: 50000})
	if err != nil {
		t.Fatal(err)
	}
	pred := m.PredictAll(d)
	if r2 := validate.R2(pred, d.Y); r2 < 0.9 {
		t.Fatalf("SVR sine R2 %g", r2)
	}
}

func TestSVREpsilonSparsity(t *testing.T) {
	// A wider tube needs fewer support vectors.
	rng := rand.New(rand.NewSource(10))
	d := dataset.NoisySine(rng, 100, 0.1)
	tight, err := FitSVR(d, kernel.RBF{Gamma: 10}, SVRConfig{C: 5, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := FitSVR(d, kernel.RBF{Gamma: 10}, SVRConfig{C: 5, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if wide.NumSV() >= tight.NumSV() {
		t.Fatalf("wide tube (%d SVs) should be sparser than tight (%d SVs)",
			wide.NumSV(), tight.NumSV())
	}
}

func TestSVREmpty(t *testing.T) {
	if _, err := FitSVR(dataset.FromRows(nil, nil), nil, SVRConfig{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func BenchmarkFitSVC100(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	d := dataset.TwoGaussians(rng, 50, 4, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitSVC(d, kernel.RBF{Gamma: 0.5}, SVCConfig{C: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitOneClass200(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	x := linalg.NewMatrix(200, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitOneClass(x, kernel.RBF{Gamma: 0.3}, OneClassConfig{Nu: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}
