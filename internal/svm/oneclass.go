package svm

import (
	"errors"
	"math"

	"repro/internal/kernel"
	"repro/internal/linalg"
)

// OneClass is a fitted ν-one-class SVM (Schölkopf et al.), the novelty
// detector used by the paper's test-selection application ([14],[27]): it
// learns the support of the training distribution and flags samples outside
// it as novel.
//
// Decision(x) = Σ α_i k(x, x_i) − ρ ; negative values are novel.
type OneClass struct {
	K     kernel.Kernel
	SV    *linalg.Matrix
	Alpha []float64
	Rho   float64
	Nu    float64
}

// OneClassConfig controls training.
type OneClassConfig struct {
	Nu       float64 // expected outlier fraction in (0,1], default 0.1
	Tol      float64 // convergence tolerance, default 1e-4
	MaxIters int     // sweep cap, default 200
}

// FitOneClass trains a ν-one-class SVM on the rows of x by pairwise
// coordinate descent on the dual:
//
//	min ½ Σ α_i α_j K_ij  s.t.  Σ α_i = 1,  0 ≤ α_i ≤ 1/(ν n).
func FitOneClass(x *linalg.Matrix, k kernel.Kernel, cfg OneClassConfig) (*OneClass, error) {
	n := x.Rows
	if n == 0 {
		return nil, errors.New("svm: empty training set")
	}
	if k == nil {
		k = kernel.RBF{Gamma: 1.0 / float64(x.Cols)}
	}
	if cfg.Nu <= 0 || cfg.Nu > 1 {
		cfg.Nu = 0.1
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-4
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 200
	}
	upper := 1.0 / (cfg.Nu * float64(n))
	gram := kernel.Gram(k, x)

	// Feasible start: distribute mass over the first ceil(nu*n) points.
	alpha := make([]float64, n)
	nInit := int(math.Ceil(cfg.Nu * float64(n)))
	if nInit > n {
		nInit = n
	}
	for i := 0; i < nInit; i++ {
		alpha[i] = math.Min(upper, 1.0/float64(nInit))
	}
	// Repair tiny numeric drift in the sum constraint.
	sum := 0.0
	for _, a := range alpha {
		sum += a
	}
	if sum > 0 {
		for i := range alpha {
			alpha[i] /= sum
		}
	}

	// Gradient g_i = Σ_j α_j K_ij.
	g := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * gram.At(i, j)
			}
		}
		g[i] = s
	}

	for it := 0; it < cfg.MaxIters; it++ {
		// Most-violating pair: minimize over i with alpha_i < upper the
		// gradient; maximize over j with alpha_j > 0.
		i, j := -1, -1
		gmin, gmax := math.Inf(1), math.Inf(-1)
		for t := 0; t < n; t++ {
			if alpha[t] < upper-1e-12 && g[t] < gmin {
				gmin, i = g[t], t
			}
			if alpha[t] > 1e-12 && g[t] > gmax {
				gmax, j = g[t], t
			}
		}
		if i < 0 || j < 0 || gmax-gmin < cfg.Tol {
			break
		}
		eta := gram.At(i, i) + gram.At(j, j) - 2*gram.At(i, j)
		if eta <= 1e-12 {
			eta = 1e-12
		}
		// Move t mass from j to i (decreases objective since g_i < g_j).
		t := (g[j] - g[i]) / eta
		if t > alpha[j] {
			t = alpha[j]
		}
		if t > upper-alpha[i] {
			t = upper - alpha[i]
		}
		if t <= 0 {
			break
		}
		alpha[i] += t
		alpha[j] -= t
		for r := 0; r < n; r++ {
			g[r] += t * (gram.At(r, i) - gram.At(r, j))
		}
	}

	// ρ = g_i averaged over margin SVs (0 < α_i < upper); fall back to the
	// max gradient over support vectors when none are strictly inside.
	rho, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 && alpha[i] < upper-1e-8 {
			rho += g[i]
			cnt++
		}
	}
	if cnt > 0 {
		rho /= float64(cnt)
	} else {
		rho = math.Inf(-1)
		for i := 0; i < n; i++ {
			if alpha[i] > 1e-8 && g[i] > rho {
				rho = g[i]
			}
		}
	}

	var svIdx []int
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 {
			svIdx = append(svIdx, i)
		}
	}
	sv := linalg.NewMatrix(len(svIdx), x.Cols)
	coef := make([]float64, len(svIdx))
	for r, i := range svIdx {
		copy(sv.Row(r), x.Row(i))
		coef[r] = alpha[i]
	}
	return &OneClass{K: k, SV: sv, Alpha: coef, Rho: rho, Nu: cfg.Nu}, nil
}

// Decision returns Σ α_i k(x, x_i) − ρ; negative means novel.
func (m *OneClass) Decision(x []float64) float64 {
	s := -m.Rho
	for i := 0; i < m.SV.Rows; i++ {
		s += m.Alpha[i] * m.K.Eval(x, m.SV.Row(i))
	}
	return s
}

// DecisionBatch returns Decision for every row of x, amortizing the
// kernel evaluations through one CrossGram sweep (parallel across rows).
// Each score is accumulated in the same order as Decision, so the batch
// path is bit-identical to scoring the rows one at a time.
func (m *OneClass) DecisionBatch(x *linalg.Matrix) []float64 {
	g := kernel.CrossGram(m.K, x, m.SV)
	out := make([]float64, x.Rows)
	for i := range out {
		s := -m.Rho
		row := g.Row(i)
		for j, a := range m.Alpha {
			s += a * row[j]
		}
		out[i] = s
	}
	return out
}

// DualViolation reports how far the stored dual variables stray from the
// ν-one-class feasible region: sumErr is |Σ α_i − 1| (the equality
// constraint) and boxErr is the largest violation of 0 ≤ α_i ≤ 1/(ν·n),
// where n is recovered from ν and the stored upper bound's trainN.
// trainN is the size of the original training set (the box bound depends
// on it, not on the surviving support-vector count). The conformance
// suite asserts both stay within solver tolerance.
func (m *OneClass) DualViolation(trainN int) (sumErr, boxErr float64) {
	upper := 1.0 / (m.Nu * float64(trainN))
	sum := 0.0
	boxErr = math.Inf(-1)
	for _, a := range m.Alpha {
		sum += a
		v := -a // below-zero violation
		if over := a - upper; over > v {
			v = over
		}
		if v > boxErr {
			boxErr = v
		}
	}
	if len(m.Alpha) == 0 {
		boxErr = 0
	}
	return math.Abs(sum - 1), boxErr
}

// Novel reports whether x lies outside the learned support region.
func (m *OneClass) Novel(x []float64) bool { return m.Decision(x) < 0 }

// NumSV returns the number of support vectors.
func (m *OneClass) NumSV() int { return m.SV.Rows }
