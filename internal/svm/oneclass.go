package svm

import (
	"errors"
	"math"

	"repro/internal/core/colmat"
	"repro/internal/kernel"
	"repro/internal/linalg"
)

// OneClass is a fitted ν-one-class SVM (Schölkopf et al.), the novelty
// detector used by the paper's test-selection application ([14],[27]): it
// learns the support of the training distribution and flags samples outside
// it as novel.
//
// Decision(x) = Σ α_i k(x, x_i) − ρ ; negative values are novel.
type OneClass struct {
	K     kernel.Kernel
	SV    *linalg.Matrix
	Alpha []float64
	Rho   float64
	Nu    float64
}

// OneClassConfig controls training.
type OneClassConfig struct {
	Nu       float64 // expected outlier fraction in (0,1], default 0.1
	Tol      float64 // convergence tolerance, default 1e-4
	MaxIters int     // sweep cap, default 200
}

// FitOneClass trains a ν-one-class SVM on the rows of x by pairwise
// coordinate descent on the dual:
//
//	min ½ Σ α_i α_j K_ij  s.t.  Σ α_i = 1,  0 ≤ α_i ≤ 1/(ν n).
//
// The solve itself lives in solver.go, shared with the precomputed-Gram
// and streaming warm-start paths; this entry point builds the Gram
// matrix and always cold-starts.
func FitOneClass(x *linalg.Matrix, k kernel.Kernel, cfg OneClassConfig) (*OneClass, error) {
	n := x.Rows
	if n == 0 {
		return nil, errors.New("svm: empty training set")
	}
	if k == nil {
		k = kernel.RBF{Gamma: 1.0 / float64(x.Cols)}
	}
	gram := kernel.Gram(k, x)
	m, _, err := FitOneClassPrecomputed(x, k, gram.At, cfg, nil)
	return m, err
}

// Decision returns Σ α_i k(x, x_i) − ρ; negative means novel.
func (m *OneClass) Decision(x []float64) float64 {
	s := -m.Rho
	for i := 0; i < m.SV.Rows; i++ {
		s += m.Alpha[i] * m.K.Eval(x, m.SV.Row(i))
	}
	return s
}

// DecisionBatch returns Decision for every row of x, amortizing the
// kernel evaluations through one CrossGram sweep (parallel across rows).
// Each score is accumulated in the same order as Decision, so the batch
// path is bit-identical to scoring the rows one at a time.
func (m *OneClass) DecisionBatch(x *linalg.Matrix) []float64 {
	return m.DecisionBatchInto(x, make([]float64, x.Rows))
}

// DecisionBatchInto is DecisionBatch writing into a caller-provided
// slice of length x.Rows; the cross-Gram scratch is leased from the
// columnar arena, so a steady-state batch allocates nothing
// (alloc_test.go pins this at 0 allocs/op).
func (m *OneClass) DecisionBatchInto(x *linalg.Matrix, out []float64) []float64 {
	if len(out) != x.Rows {
		panic("svm: DecisionBatchInto output length mismatch")
	}
	g := colmat.Get(x.Rows, m.SV.Rows)
	kernel.CrossGramInto(m.K, x, m.SV, g)
	for i := range out {
		s := -m.Rho
		row := g.Row(i)
		for j, a := range m.Alpha {
			s += a * row[j]
		}
		out[i] = s
	}
	colmat.Put(g)
	return out
}

// DualViolation reports how far the stored dual variables stray from the
// ν-one-class feasible region: sumErr is |Σ α_i − 1| (the equality
// constraint) and boxErr is the largest violation of 0 ≤ α_i ≤ 1/(ν·n),
// where n is recovered from ν and the stored upper bound's trainN.
// trainN is the size of the original training set (the box bound depends
// on it, not on the surviving support-vector count). The conformance
// suite asserts both stay within solver tolerance.
func (m *OneClass) DualViolation(trainN int) (sumErr, boxErr float64) {
	upper := 1.0 / (m.Nu * float64(trainN))
	sum := 0.0
	boxErr = math.Inf(-1)
	for _, a := range m.Alpha {
		sum += a
		v := -a // below-zero violation
		if over := a - upper; over > v {
			v = over
		}
		if v > boxErr {
			boxErr = v
		}
	}
	if len(m.Alpha) == 0 {
		boxErr = 0
	}
	return math.Abs(sum - 1), boxErr
}

// Novel reports whether x lies outside the learned support region.
func (m *OneClass) Novel(x []float64) bool { return m.Decision(x) < 0 }

// NumSV returns the number of support vectors.
func (m *OneClass) NumSV() int { return m.SV.Rows }
