package svm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/linalg"
)

func gaussianCloud(seed int64, n, dim int) *linalg.Matrix {
	rng := rand.New(rand.NewSource(seed))
	x := linalg.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
	}
	return x
}

func TestWarmStartAlphaProjection(t *testing.T) {
	const nu = 0.2
	upper := func(n int) float64 { return 1.0 / (nu * float64(n)) }

	t.Run("nil and empty inputs cold-start", func(t *testing.T) {
		if WarmStartAlpha(nil, 10, nu) != nil {
			t.Fatal("nil prev must return nil")
		}
		if WarmStartAlpha([]float64{0.5}, 0, nu) != nil {
			t.Fatal("n=0 must return nil")
		}
		if WarmStartAlpha([]float64{0, 0, 0}, 3, nu) != nil {
			t.Fatal("zero-mass prev must return nil")
		}
		if WarmStartAlpha([]float64{-1, -2}, 4, nu) != nil {
			t.Fatal("all-negative prev clamps to zero mass, must return nil")
		}
	})

	t.Run("feasible output", func(t *testing.T) {
		for _, tc := range []struct {
			name string
			prev []float64
			n    int
		}{
			{"carry-over shorter than window", []float64{0.3, 0.4}, 8},
			{"carry-over longer than window", []float64{0.2, 0.2, 0.2, 0.2, 0.2, 0.2}, 4},
			{"mass above one rescales", []float64{2, 3, 1}, 12},
			{"negatives clamp to zero", []float64{-0.5, 0.6, 0.7}, 10},
			{"tiny mass fills headroom", []float64{1e-6}, 16},
		} {
			t.Run(tc.name, func(t *testing.T) {
				a := WarmStartAlpha(tc.prev, tc.n, nu)
				if a == nil {
					t.Fatal("expected a feasible projection, got nil")
				}
				if len(a) != tc.n {
					t.Fatalf("projection length %d, want %d", len(a), tc.n)
				}
				sum := 0.0
				for i, v := range a {
					if v < 0 || v > upper(tc.n)+1e-12 {
						t.Fatalf("alpha[%d]=%g outside [0, %g]", i, v, upper(tc.n))
					}
					sum += v
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("sum(alpha)=%g, want 1", sum)
				}
			})
		}
	})

	t.Run("deterministic", func(t *testing.T) {
		prev := []float64{0.9, 0.05, 0.01, 0.3}
		a := WarmStartAlpha(prev, 7, nu)
		b := WarmStartAlpha(prev, 7, nu)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("projection not deterministic at %d: %g vs %g", i, a[i], b[i])
			}
		}
	})
}

func TestFitOneClassPrecomputedWarmMatchesCold(t *testing.T) {
	x := gaussianCloud(7, 80, 3)
	k := kernel.RBF{Gamma: 0.5}
	gram := kernel.Gram(k, x)
	cfg := OneClassConfig{Nu: 0.2, MaxIters: 4000}

	cold, coldInfo, err := FitOneClassPrecomputed(x, k, gram.At, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if coldInfo.WarmStart {
		t.Fatal("nil warm slice must report a cold start")
	}
	if !coldInfo.Converged {
		t.Fatalf("cold solve did not converge: gap %g after %d iters", coldInfo.Gap, coldInfo.Iters)
	}
	if len(coldInfo.Alpha) != x.Rows {
		t.Fatalf("SolveInfo.Alpha length %d, want full window %d", len(coldInfo.Alpha), x.Rows)
	}

	// Re-solving from the previous optimum must converge almost
	// immediately and land on the same decision function.
	warm, warmInfo, err := FitOneClassPrecomputed(x, k, gram.At, cfg, coldInfo.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	if !warmInfo.WarmStart {
		t.Fatal("warm slice with mass must report WarmStart")
	}
	if warmInfo.Iters > coldInfo.Iters {
		t.Fatalf("warm start took %d iters, cold took %d", warmInfo.Iters, coldInfo.Iters)
	}
	probes := gaussianCloud(8, 20, 3)
	for i := 0; i < probes.Rows; i++ {
		p := probes.Row(i)
		dw, dc := warm.Decision(p), cold.Decision(p)
		if math.Abs(dw-dc) > 1e-6 {
			t.Fatalf("probe %d: warm decision %g vs cold %g", i, dw, dc)
		}
	}
}

func TestOneClassDecisionBatchMatchesSingle(t *testing.T) {
	x := gaussianCloud(9, 60, 4)
	m, err := FitOneClass(x, kernel.RBF{Gamma: 0.3}, OneClassConfig{Nu: 0.15, MaxIters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	probes := gaussianCloud(10, 25, 4)
	batch := m.DecisionBatch(probes)
	if len(batch) != probes.Rows {
		t.Fatalf("batch length %d, want %d", len(batch), probes.Rows)
	}
	for i := 0; i < probes.Rows; i++ {
		if single := m.Decision(probes.Row(i)); batch[i] != single {
			t.Fatalf("row %d: batch %g != single %g (must be bit-identical)", i, batch[i], single)
		}
	}
}

func TestOneClassDualViolationWithinTolerance(t *testing.T) {
	x := gaussianCloud(11, 70, 3)
	m, err := FitOneClass(x, kernel.RBF{Gamma: 0.5}, OneClassConfig{Nu: 0.2, MaxIters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	sumErr, boxErr := m.DualViolation(x.Rows)
	if sumErr > 1e-8 {
		t.Fatalf("equality constraint violated by %g", sumErr)
	}
	if boxErr > 1e-8 {
		t.Fatalf("box constraint violated by %g", boxErr)
	}
	if m.NumSV() == 0 || m.NumSV() > x.Rows {
		t.Fatalf("suspicious SV count %d of %d", m.NumSV(), x.Rows)
	}

	// A hand-built infeasible model must be reported, not absorbed.
	bad := &OneClass{Alpha: []float64{1.2, 0.7}, Nu: 0.9} // upper = 1/1.8
	sumErr, boxErr = bad.DualViolation(2)
	if sumErr < 0.7 {
		t.Fatalf("expected a large sum violation, got %g", sumErr)
	}
	if boxErr <= 0 {
		t.Fatalf("expected a positive box violation, got %g", boxErr)
	}
	empty := &OneClass{Nu: 0.2}
	if _, boxErr = empty.DualViolation(1); boxErr != 0 {
		t.Fatalf("empty alpha must report zero box violation, got %g", boxErr)
	}
}

func TestOneClassGramNovelAgreesWithVectorForm(t *testing.T) {
	x := gaussianCloud(13, 50, 2)
	k := kernel.RBF{Gamma: 0.5}
	cfg := OneClassConfig{Nu: 0.1, MaxIters: 2000}
	vec, err := FitOneClass(x, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gram := kernel.Gram(k, x)
	rows := make([][]float64, x.Rows)
	for i := range rows {
		rows[i] = gram.Row(i)
	}
	gm, err := FitOneClassGram(rows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range [][]float64{{0, 0}, {9, 9}, {-7, 6}} {
		kx := make([]float64, x.Rows)
		for i := range kx {
			kx[i] = k.Eval(probe, x.Row(i))
		}
		if gm.Novel(kx) != vec.Novel(probe) {
			t.Fatalf("probe %v: gram form novel=%v, vector form novel=%v",
				probe, gm.Novel(kx), vec.Novel(probe))
		}
	}
}

func TestOneClassConfigNormalizeDefaults(t *testing.T) {
	var cfg OneClassConfig
	cfg.normalize()
	if cfg.Nu != 0.1 || cfg.Tol != 1e-4 || cfg.MaxIters != 200 {
		t.Fatalf("zero config normalized to %+v, want documented defaults", cfg)
	}
	bad := OneClassConfig{Nu: 1.5, Tol: -1, MaxIters: -5}
	bad.normalize()
	if bad.Nu != 0.1 || bad.Tol != 1e-4 || bad.MaxIters != 200 {
		t.Fatalf("out-of-range config normalized to %+v, want documented defaults", bad)
	}
	keep := OneClassConfig{Nu: 0.3, Tol: 1e-6, MaxIters: 77}
	keep.normalize()
	if keep.Nu != 0.3 || keep.Tol != 1e-6 || keep.MaxIters != 77 {
		t.Fatalf("valid config mutated to %+v", keep)
	}
}

func TestOneClassRhoFallbackWithoutMarginSVs(t *testing.T) {
	// Every alpha at the box upper bound: no strict-interior margin SVs,
	// so rho must fall back to the max gradient over support vectors.
	n := 4
	alpha := []float64{0.25, 0.25, 0.25, 0.25} // upper = 1/(1.0*4) = 0.25
	g := []float64{1, 3, 2, 4}
	if rho := oneClassRho(n, alpha, g, 0.25); rho != 4 {
		t.Fatalf("fallback rho %g, want max gradient 4", rho)
	}
	// Margin SVs present: rho is their mean gradient.
	alpha = []float64{0.1, 0.1, 0, 0.25}
	if rho := oneClassRho(n, alpha, g, 0.25); rho != 2 {
		t.Fatalf("margin rho %g, want mean(1,3)=2", rho)
	}
}

func TestSVCBatchAndRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d := dataset.TwoGaussians(rng, 50, 2, 4, 0.8)
	m, err := FitSVC(d, kernel.RBF{Gamma: 0.8}, SVCConfig{C: 2})
	if err != nil {
		t.Fatal(err)
	}

	probes := gaussianCloud(18, 30, 2)
	margins := m.DecisionBatch(probes)
	preds := m.PredictBatch(probes)
	cls := m.Classes()
	for i := 0; i < probes.Rows; i++ {
		if single := m.Decision(probes.Row(i)); margins[i] != single {
			t.Fatalf("row %d: batch margin %g != single %g", i, margins[i], single)
		}
		if single := m.Predict(probes.Row(i)); preds[i] != single {
			t.Fatalf("row %d: batch predict %g != single %g", i, preds[i], single)
		}
		want := cls[1]
		if margins[i] < 0 {
			want = cls[0]
		}
		if preds[i] != want {
			t.Fatalf("row %d: predict %g disagrees with margin sign (%g)", i, preds[i], margins[i])
		}
	}

	if v := m.DualViolation(2); v > 1e-8 {
		t.Fatalf("fitted SVC violates its dual box by %g", v)
	}
	if v := (&SVC{}).DualViolation(1); v != 0 {
		t.Fatalf("empty SVC must report zero violation, got %g", v)
	}
	if v := (&SVC{Alpha: []float64{5, 0}}).DualViolation(1); v <= 0 {
		t.Fatalf("out-of-box alpha must report positive violation, got %g", v)
	}

	r := RestoreSVC(m.K, m.SV, m.Alpha, m.B, m.Classes())
	for i := 0; i < probes.Rows; i++ {
		p := probes.Row(i)
		if r.Decision(p) != m.Decision(p) || r.Predict(p) != m.Predict(p) {
			t.Fatalf("restored SVC diverges from original at probe %d", i)
		}
	}
}

func TestMedianOf(t *testing.T) {
	for _, tc := range []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{5, 1, 4}, 4},
		{[]float64{2, 1, 4, 3}, 3}, // even length takes the upper middle
	} {
		if got := medianOf(tc.in); got != tc.want {
			t.Fatalf("medianOf(%v) = %g, want %g", tc.in, got, tc.want)
		}
	}
	// Must not mutate its input.
	in := []float64{9, 1, 5}
	medianOf(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Fatalf("medianOf mutated its input: %v", in)
	}
}
