package serve

import (
	"container/list"
	"math"
	"sync"
)

// rowCache is a bounded LRU over kernel rows: the vector
// k(x, basis_1..basis_m) a kernel model evaluates for every scored
// sample. Production query streams repeat inputs (the novelty loop
// re-scores the same constrained-random tests after each refit), and
// the kernel row is the whole cost of a kernel-model prediction — the
// combine step is one dot product. Keys are the raw IEEE-754 bits of
// the input vector, so only bit-identical inputs hit; kernels are pure
// functions, so a cached row is bit-identical to recomputing it and the
// cache can never change a prediction.
type rowCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type rowEntry struct {
	key string
	row []float64
}

// newRowCache returns a cache holding up to capacity rows; capacity <= 0
// returns nil (caching disabled).
func newRowCache(capacity int) *rowCache {
	if capacity <= 0 {
		return nil
	}
	return &rowCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element, capacity)}
}

// rowKey packs the float64 bits of x into a string key.
func rowKey(x []float64) string {
	b := make([]byte, 8*len(x))
	for i, v := range x {
		bits := math.Float64bits(v)
		for k := 0; k < 8; k++ {
			b[8*i+k] = byte(bits >> (8 * k))
		}
	}
	return string(b)
}

// get returns the cached row for key and marks it most recently used.
// The returned slice is shared — callers must not modify it.
func (c *rowCache) get(key string) ([]float64, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*rowEntry).row, true
}

// put stores a row, evicting the least recently used entry when full.
func (c *rowCache) put(key string, row []float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*rowEntry).row = row
		return
	}
	c.m[key] = c.ll.PushFront(&rowEntry{key: key, row: row})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*rowEntry).key)
	}
}

// purge drops every cached row. Called when the model owning the cache
// is replaced by a hot-reload: the rows were computed against the old
// model's kernel and basis, and nothing may ever combine them with the
// replacement's coefficients.
func (c *rowCache) purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.m = make(map[string]*list.Element, c.cap)
}

// len returns the number of cached rows.
func (c *rowCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
