package serve

import (
	"net/http"
	"strings"
	"sync/atomic"

	"repro/internal/obs"
)

// Priority is a predict request's load-shedding tier, declared by the
// X-Priority header. It is shared by the single-node server and the
// cluster router (internal/serve/cluster) so "low sheds first" means
// the same thing at every admission point, and the router can forward
// a request's tier to a replica unchanged.
type Priority int

const (
	PriorityLow Priority = iota
	PriorityNormal
	PriorityHigh
)

// ParsePriority maps an X-Priority header value to a tier; unknown or
// empty values are PriorityNormal.
func ParsePriority(v string) Priority {
	switch strings.ToLower(v) {
	case "low":
		return PriorityLow
	case "high":
		return PriorityHigh
	default:
		return PriorityNormal
	}
}

// PriorityOf reads a request's X-Priority header.
func PriorityOf(r *http.Request) Priority { return ParsePriority(r.Header.Get("X-Priority")) }

// String returns the canonical header value for the tier.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityHigh:
		return "high"
	default:
		return "normal"
	}
}

// Admission is priority-tiered in-flight admission control: a bounded
// counter where each tier sheds at its own slice of the bound — low at
// 50%, normal at 90%, high only at 100% — so overload sacrifices the
// least-important traffic first. Metrics are minted under the given
// scope: <scope>.inflight_max (gauge), <scope>.throttled_429, and
// <scope>.shed.{low,normal,high}.
type Admission struct {
	max      int64
	inflight atomic.Int64

	throttled *obs.Counter
	shed      [3]*obs.Counter
}

// NewAdmission builds an admission gate for maxInFlight concurrent
// requests, minting its metrics under scope (e.g. "serve", "cluster").
func NewAdmission(scope string, maxInFlight int) *Admission {
	obs.GetGauge(scope + ".inflight_max").Set(int64(maxInFlight))
	return &Admission{
		max:       int64(maxInFlight),
		throttled: obs.GetCounter(scope + ".throttled_429"),
		shed: [3]*obs.Counter{
			PriorityLow:    obs.GetCounter(scope + ".shed.low"),
			PriorityNormal: obs.GetCounter(scope + ".shed.normal"),
			PriorityHigh:   obs.GetCounter(scope + ".shed.high"),
		},
	}
}

// limitFor is the in-flight bound for one priority tier. Every tier
// admits at least one request so a tiny bound cannot starve low-
// priority traffic entirely.
func (a *Admission) limitFor(p Priority) int64 {
	switch p {
	case PriorityLow:
		return max64(1, a.max/2)
	case PriorityHigh:
		return a.max
	default:
		return max64(1, a.max*9/10)
	}
}

// Acquire claims an in-flight slot for priority p, or reports shed
// (counting it). Every successful Acquire must be paired with Release.
func (a *Admission) Acquire(p Priority) bool {
	if a.inflight.Add(1) > a.limitFor(p) {
		a.inflight.Add(-1)
		a.throttled.Inc()
		a.shed[p].Inc()
		return false
	}
	return true
}

// Release returns a slot claimed by Acquire.
func (a *Admission) Release() { a.inflight.Add(-1) }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
