package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps/modelzoo"
	"repro/internal/fault"
	"repro/internal/model"
)

// BenchmarkServeThroughput measures end-to-end HTTP predict throughput
// (requests routed through the micro-batcher and kernel-row cache) at
// 1, 8, and 64 concurrent clients against the SVC model — the kernel
// kind whose Gram evaluation batching is meant to amortize. b.N counts
// single-instance predict requests. scripts/bench.sh records the
// results in BENCH_ci.json; scripts/loadgen.sh is the ad-hoc twin for
// a live server.
func BenchmarkServeThroughput(b *testing.B) {
	trained, err := modelzoo.TrainAll(testSeed, 96, 64)
	if err != nil {
		b.Fatal(err)
	}
	var svc modelzoo.Trained
	for _, tr := range trained {
		if tr.Kind == model.KindSVC {
			svc = tr
		}
	}

	bodies := make([][]byte, svc.Probes.Rows)
	for i := range bodies {
		bodies[i], _ = json.Marshal(predictRequest{Instances: [][]float64{svc.Probes.Row(i)}})
	}

	for _, clients := range []int{1, 8, 64} {
		clients := clients
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			s := New(Config{MaxBatch: 16, MaxWait: 500 * time.Microsecond, CacheRows: 0})
			defer s.Close()
			a, err := model.Encode(svc.Model, model.Meta{Name: "svc"})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Load("", a); err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			url := ts.URL + "/predict/svc"
			client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}

			var next sync.Mutex
			remaining := b.N
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					i := c
					for {
						next.Lock()
						if remaining == 0 {
							next.Unlock()
							return
						}
						remaining--
						next.Unlock()
						resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
						if err != nil {
							b.Error(err)
							return
						}
						var pr predictResponse
						if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
							b.Error(err)
						}
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							b.Errorf("status %d", resp.StatusCode)
							return
						}
						i++
					}
				}(c)
			}
			wg.Wait()
			b.StopTimer()
			elapsed := b.Elapsed()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
			}
		})
	}
}

// BenchmarkServeThroughputFaultyBackend is the faulty-backend variant:
// the same SVC serving path with a 5% injected kernel-eval error rate,
// measuring how much throughput the error path (failed batches, 500s)
// costs relative to BenchmarkServeThroughput. Errored requests count
// toward b.N — the point is sustained request handling under faults,
// not clean predictions.
func BenchmarkServeThroughputFaultyBackend(b *testing.B) {
	trained, err := modelzoo.TrainAll(testSeed, 96, 64)
	if err != nil {
		b.Fatal(err)
	}
	var svc modelzoo.Trained
	for _, tr := range trained {
		if tr.Kind == model.KindSVC {
			svc = tr
		}
	}
	bodies := make([][]byte, svc.Probes.Rows)
	for i := range bodies {
		bodies[i], _ = json.Marshal(predictRequest{Instances: [][]float64{svc.Probes.Row(i)}})
	}

	fault.Activate(fault.Plan{Seed: testSeed, Sites: map[string]fault.SiteConfig{
		fault.SiteKernelEval: {ErrRate: 0.05},
	}})
	defer fault.Deactivate()

	const clients = 8
	s := New(Config{MaxBatch: 16, MaxWait: 500 * time.Microsecond})
	defer s.Close()
	a, err := model.Encode(svc.Model, model.Meta{Name: "svc"})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Load("", a); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/predict/svc"
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}

	var next sync.Mutex
	remaining := b.N
	var failed int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c
			for {
				next.Lock()
				if remaining == 0 {
					next.Unlock()
					return
				}
				remaining--
				next.Unlock()
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck — draining for keep-alive
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusInternalServerError:
					atomic.AddInt64(&failed, 1) // the injected 5%
				default:
					b.Errorf("status %d", resp.StatusCode)
					return
				}
				i++
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	elapsed := b.Elapsed()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
	}
	if b.N > 0 {
		b.ReportMetric(float64(atomic.LoadInt64(&failed))/float64(b.N), "injected_err_frac")
	}
}
