package serve

// FuzzPredictHandler (ISSUE 4): POST /predict must answer every body —
// truncated JSON, absurd numbers, wrong shapes, binary garbage — with
// an HTTP status, never a panic (the recovery middleware is the last
// line; the handler itself should not need it for malformed input).
// Seed corpus lives under testdata/fuzz/FuzzPredictHandler; the fuzz
// job runs this target via scripts/fuzz.sh.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/linear"
	"repro/internal/model"
)

// fuzzServer builds one tiny server (a 2-feature ridge model, batching
// disabled) shared across fuzz executions in this process.
var (
	fuzzServerOnce sync.Once
	fuzzHandler    http.Handler
)

func fuzzPredictHandler(tb testing.TB) http.Handler {
	fuzzServerOnce.Do(func() {
		a, err := model.Encode(&linear.Regression{W: []float64{0.5, -2}, B: 1}, model.Meta{Name: "m"})
		if err != nil {
			tb.Fatalf("encode fuzz model: %v", err)
		}
		s := New(Config{MaxBatch: 1})
		if err := s.Load("", a); err != nil {
			tb.Fatalf("load fuzz model: %v", err)
		}
		fuzzHandler = s.Handler()
	})
	return fuzzHandler
}

func FuzzPredictHandler(f *testing.F) {
	f.Add([]byte(`{"instances": [[1, 2]]}`))
	f.Add([]byte(`{"instances": [[1, 2], [3, 4], [5, 6]]}`))
	f.Add([]byte(`{"instances": []}`))
	f.Add([]byte(`{"instances": [[1]]}`))
	f.Add([]byte(`{"instances": [[1e308, -1e308]]}`))
	f.Add([]byte(`{"instances": "not an array"}`))
	f.Add([]byte(`{"instances": [[null, {}]]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte("\x00\x01\xff binary"))
	f.Add([]byte(`[[1,2]]`))

	h := fuzzPredictHandler(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/predict/m", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic
		switch rec.Code {
		case http.StatusOK:
			// An accepted body must produce a well-formed response with
			// one prediction per instance.
			var preq predictRequest
			if err := json.Unmarshal(body, &preq); err != nil {
				t.Fatalf("200 for a body that does not parse: %q", body)
			}
			var presp predictResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &presp); err != nil {
				t.Fatalf("200 with unparseable response: %v", err)
			}
			if len(presp.Predictions) != len(preq.Instances) {
				t.Fatalf("%d instances, %d predictions", len(preq.Instances), len(presp.Predictions))
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusTooManyRequests, http.StatusInternalServerError,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			// Loud, typed refusals are the contract.
		default:
			t.Fatalf("unexpected status %d for body %q", rec.Code, body)
		}
	})
}
