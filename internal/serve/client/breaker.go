package client

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Breaker transition metrics: how often the circuit opened, and how
// half-open probes resolved.
var (
	breakerOpens    = obs.GetCounter("client.breaker_opens")
	breakerCloses   = obs.GetCounter("client.breaker_closes")
	breakerReopens  = obs.GetCounter("client.breaker_reopens")
	breakerHalfOpen = obs.GetCounter("client.breaker_half_opens")
)

// breaker is a three-state circuit breaker.
//
//	closed    — calls flow; consecutive failures are counted, and
//	            reaching the threshold opens the circuit.
//	open      — calls fail fast until the cooldown elapses.
//	half-open — exactly one probe call is allowed through; success
//	            closes the circuit, failure re-opens it (and restarts
//	            the cooldown).
//
// The clock is injected so tests (and the deterministic chaos harness)
// can drive transitions without real sleeps.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	st       breakerStateID
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // half-open: the single probe slot is taken
}

type breakerStateID int

const (
	stClosed breakerStateID = iota
	stOpen
	stHalfOpen
)

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a call may proceed. When the circuit is open
// and cooling down it returns false and how long until a probe would be
// admitted; when the cooldown has elapsed it admits a single half-open
// probe.
func (b *breaker) allow() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.st {
	case stClosed:
		return true, 0
	case stOpen:
		elapsed := b.now().Sub(b.openedAt)
		if elapsed < b.cooldown {
			return false, b.cooldown - elapsed
		}
		b.st = stHalfOpen
		b.probing = true
		breakerHalfOpen.Inc()
		return true, 0
	default: // stHalfOpen
		if b.probing {
			// A probe is already in flight; everyone else waits it out.
			return false, b.cooldown
		}
		b.probing = true
		return true, 0
	}
}

// onSuccess records a successful call.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.st == stHalfOpen {
		breakerCloses.Inc()
	}
	b.st = stClosed
	b.failures = 0
	b.probing = false
}

// onFailure records a failed call; enough consecutive failures (or a
// failed half-open probe) open the circuit.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.st {
	case stHalfOpen:
		b.st = stOpen
		b.openedAt = b.now()
		b.probing = false
		breakerReopens.Inc()
	case stClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.st = stOpen
			b.openedAt = b.now()
			breakerOpens.Inc()
		}
	default: // already open (e.g. a slow call finishing after the trip)
	}
}

// state names the current state for tests and introspection.
func (b *breaker) state() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.st {
	case stOpen:
		return "open"
	case stHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
