// Package client is the resilient, typed HTTP client for the serving
// layer (internal/serve): per-attempt timeouts, capped exponential
// backoff with deterministic jitter, a retry budget, and a three-state
// circuit breaker. It is the caller-side half of the resilience story —
// the server sheds, times out, and isolates; the client retries what is
// safe to retry, backs off instead of hammering, and stops calling a
// host that is clearly down.
//
// Retry policy: 5xx and 429 responses and transport errors are
// retryable (predict is idempotent — same instances, same model, same
// answer, the repo-wide determinism contract). 4xx responses other
// than 429 are the caller's bug and are never retried. Every retry
// spends one token from a shared budget that successes refill, so a
// fleet-wide outage degrades to "one try each" instead of a retry
// storm. The breaker opens after a run of consecutive failures, fails
// fast while open, and lets a single probe through after a cooldown
// (half-open); the probe's outcome closes or re-opens it.
//
// Determinism: all jitter comes from a seeded math/rand source owned by
// the client, and the breaker clock is injectable, so chaos tests
// replay identical retry schedules from a seed (see chaos_e2e_test).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// Client metrics: attempts, retries, failures, and breaker behavior.
var (
	attemptsTotal  = obs.GetCounter("client.attempts")
	retriesTotal   = obs.GetCounter("client.retries")
	failuresTotal  = obs.GetCounter("client.failures")
	budgetExhaust  = obs.GetCounter("client.retry_budget_exhausted")
	breakerFastNos = obs.GetCounter("client.breaker_fast_failures")
)

// Sentinel errors; match with errors.Is.
var (
	// ErrBreakerOpen is returned when the circuit breaker refuses the
	// call without attempting it.
	ErrBreakerOpen = errors.New("client: circuit breaker open")
	// ErrBudgetExhausted is returned when a retryable failure could not
	// be retried because the retry budget is empty.
	ErrBudgetExhausted = errors.New("client: retry budget exhausted")
	// ErrPermanent wraps non-retryable HTTP failures (4xx except 429).
	ErrPermanent = errors.New("client: permanent failure")
)

// Config tunes the client. The zero value gets sane defaults.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:9090".
	BaseURL string
	// Timeout bounds each attempt (connection + response). Default 5s.
	Timeout time.Duration
	// MaxAttempts caps tries per call (first + retries). Default 4.
	MaxAttempts int
	// BackoffBase is the first retry's nominal delay. Default 10ms.
	BackoffBase time.Duration
	// BackoffMax caps the exponential growth. Default 1s.
	BackoffMax time.Duration
	// RetryBudget is the token pool shared by all retries; each retry
	// spends one, each success refunds one (up to the cap). Default 32.
	RetryBudget int
	// BreakerThreshold opens the breaker after this many consecutive
	// failures. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before letting
	// a half-open probe through. Default 2s.
	BreakerCooldown time.Duration
	// Seed drives the backoff jitter. Same seed, same jitter sequence.
	Seed int64
	// Priority, when set, is sent as the X-Priority header (low | high)
	// so the server's shedder can triage this client's traffic.
	Priority string
	// HTTPClient overrides the transport; by default a plain
	// http.Client with the per-attempt timeout.
	HTTPClient *http.Client
	// Now overrides the breaker clock. The cluster router injects a
	// deterministic clock here so a chaos run's breaker transitions are
	// a pure function of the seed instead of wall time.
	Now func() time.Time
	// now overrides the breaker clock in tests.
	now func() time.Time
	// sleep overrides backoff sleeping in tests.
	sleep func(ctx context.Context, d time.Duration) error
}

func (c *Config) defaults() {
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 32
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.now == nil {
		c.now = c.Now
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.sleep == nil {
		c.sleep = sleepCtx
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Client is a resilient caller of one serving host. Safe for
// concurrent use; the jitter stream and retry budget are locked.
type Client struct {
	cfg     Config
	http    *http.Client
	breaker *breaker

	mu     sync.Mutex
	rng    *rand.Rand
	budget int
}

// New builds a client for the server at cfg.BaseURL.
func New(cfg Config) *Client {
	cfg.defaults()
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: cfg.Timeout}
	}
	return &Client{
		cfg:     cfg,
		http:    hc,
		breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		budget:  cfg.RetryBudget,
	}
}

// Prediction is the typed result of one Predict call.
type Prediction struct {
	Model       string    `json:"model"`
	Kind        string    `json:"kind"`
	Predictions []float64 `json:"predictions"`
}

// errorBody is the server's {"error": ...} shape.
type errorBody struct {
	Error string `json:"error"`
}

// httpStatusError is a non-2xx reply.
type httpStatusError struct {
	status int
	msg    string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.status, e.msg)
}

// retryable reports whether err is worth another attempt: transport
// errors, 5xx, and 429 are; other 4xx are permanent.
func retryable(err error) bool {
	var se *httpStatusError
	if errors.As(err, &se) {
		return se.status >= 500 || se.status == http.StatusTooManyRequests
	}
	// Transport-level failure (refused connection, per-attempt timeout).
	return !errors.Is(err, ErrPermanent)
}

// Predict scores instances against the named model, retrying through
// the backoff schedule, the retry budget, and the circuit breaker.
func (c *Client) Predict(ctx context.Context, modelName string, instances [][]float64) (*Prediction, error) {
	body, err := json.Marshal(map[string][][]float64{"instances": instances})
	if err != nil {
		return nil, fmt.Errorf("client: marshal request: %w", err)
	}
	var out Prediction
	err = c.call(ctx, http.MethodPost, "/predict/"+modelName, body, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz reports whether the server answers its liveness probe.
func (c *Client) Healthz(ctx context.Context) error {
	return c.call(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Readyz reports whether the server is ready for traffic.
func (c *Client) Readyz(ctx context.Context) error {
	return c.call(ctx, http.MethodGet, "/readyz", nil, nil)
}

// Metrics fetches the server's observability snapshot.
func (c *Client) Metrics(ctx context.Context) ([]obs.Metric, error) {
	var snap []obs.Metric
	if err := c.call(ctx, http.MethodGet, "/metrics", nil, &snap); err != nil {
		return nil, err
	}
	return snap, nil
}

// call drives one logical request through attempts, backoff, budget,
// and breaker. A breaker-open refusal sleeps until the cooldown allows
// a probe (counting the wait as an attempt) so the deterministic
// attempt sequence is preserved rather than failing fast forever.
func (c *Client) call(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if !c.spendRetryToken() {
				budgetExhaust.Inc()
				return fmt.Errorf("%w after %d attempts: %v", ErrBudgetExhausted, attempt, lastErr)
			}
			retriesTotal.Inc()
			if err := c.cfg.sleep(ctx, c.backoff(attempt-1)); err != nil {
				return err
			}
		}
		if ok, retryAfter := c.breaker.allow(); !ok {
			breakerFastNos.Inc()
			lastErr = fmt.Errorf("%w (retry after %v)", ErrBreakerOpen, retryAfter)
			// Wait out the cooldown so the next attempt can be the
			// half-open probe; this consumes an attempt like any retry.
			if err := c.cfg.sleep(ctx, retryAfter); err != nil {
				return err
			}
			continue
		}
		attemptsTotal.Inc()
		err := c.once(ctx, method, path, body, out, "")
		if err == nil {
			c.breaker.onSuccess()
			c.refundRetryToken()
			return nil
		}
		lastErr = err
		if !retryable(err) {
			// The caller's bug, not the server's health: no breaker
			// penalty, no retry.
			failuresTotal.Inc()
			return err
		}
		c.breaker.onFailure()
	}
	failuresTotal.Inc()
	return fmt.Errorf("client: %d attempts failed: %w", c.cfg.MaxAttempts, lastErr)
}

// once is a single HTTP attempt with the per-attempt timeout. priority,
// when non-empty, overrides the configured X-Priority for this attempt
// (the cluster router forwards each request's own tier).
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any, priority string) error {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if priority == "" {
		priority = c.cfg.Priority
	}
	if priority != "" {
		req.Header.Set("X-Priority", priority)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb errorBody
		_ = json.Unmarshal(data, &eb)
		se := &httpStatusError{status: resp.StatusCode, msg: eb.Error}
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			// Double-wrap so errors.Is sees ErrPermanent AND errors.As
			// still reaches the status (StatusCode needs it to route).
			return fmt.Errorf("%w: %w", ErrPermanent, se)
		}
		return se
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: decode response: %w", err)
		}
	}
	return nil
}

// backoff returns the sleep before retry number retry (0-based): the
// capped exponential raw = min(base<<retry, max), jittered uniformly
// into [raw/2, raw] from the client's seeded stream. Deterministic per
// seed; never more than BackoffMax; never less than half the nominal.
func (c *Client) backoff(retry int) time.Duration {
	raw := c.cfg.BackoffBase
	for i := 0; i < retry && raw < c.cfg.BackoffMax; i++ {
		raw *= 2
	}
	if raw > c.cfg.BackoffMax {
		raw = c.cfg.BackoffMax
	}
	c.mu.Lock()
	f := c.rng.Float64()
	c.mu.Unlock()
	half := raw / 2
	return half + time.Duration(f*float64(raw-half))
}

func (c *Client) spendRetryToken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 {
		return false
	}
	c.budget--
	return true
}

func (c *Client) refundRetryToken() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget < c.cfg.RetryBudget {
		c.budget++
	}
}

// BreakerState exposes the breaker's current state for tests and
// operational introspection.
func (c *Client) BreakerState() string { return c.breaker.state() }

// ModelInfo is one entry of the server's GET /models reply and the
// POST /models/load reply.
type ModelInfo struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Features int    `json:"features"`
	Seed     int64  `json:"seed"`
	Revision string `json:"revision,omitempty"`
	Checksum string `json:"payload_sha256"`
}

// Try performs exactly one breaker-gated attempt: no retries, no
// backoff, and — unlike call — no sleeping out an open breaker, which
// fails fast with ErrBreakerOpen instead. The cluster router
// (internal/serve/cluster) is the intended caller: it owns one Client
// per replica and replaces in-place retry with failover to a different
// replica, so a second attempt against the same host is never the
// right move. The attempt's outcome still feeds the breaker (a
// readiness probe through TryReadyz is how a recovered replica closes
// its circuit again).
func (c *Client) Try(ctx context.Context, method, path string, body []byte, out any, priority string) error {
	if ok, retryAfter := c.breaker.allow(); !ok {
		breakerFastNos.Inc()
		return fmt.Errorf("%w (retry after %v)", ErrBreakerOpen, retryAfter)
	}
	attemptsTotal.Inc()
	err := c.once(ctx, method, path, body, out, priority)
	if err == nil {
		c.breaker.onSuccess()
		return nil
	}
	if retryable(err) {
		c.breaker.onFailure()
	}
	failuresTotal.Inc()
	return err
}

// TryPredict is a single-attempt Predict with a per-call priority (the
// tier the router forwards from the original request; empty uses the
// configured default).
func (c *Client) TryPredict(ctx context.Context, modelName string, instances [][]float64, priority string) (*Prediction, error) {
	body, err := json.Marshal(map[string][][]float64{"instances": instances})
	if err != nil {
		return nil, fmt.Errorf("client: marshal request: %w", err)
	}
	var out Prediction
	if err := c.Try(ctx, http.MethodPost, "/predict/"+modelName, body, &out, priority); err != nil {
		return nil, err
	}
	return &out, nil
}

// TryReadyz is a single-attempt readiness probe. Success closes the
// replica's breaker; failure counts toward opening it — this is the
// "readiness probes feed the breaker" half of health-gated membership.
func (c *Client) TryReadyz(ctx context.Context) error {
	return c.Try(ctx, http.MethodGet, "/readyz", nil, nil, "")
}

// TryLoad is a single-attempt POST /models/load: hot-load the artifact
// at path (a path on the server's filesystem) under name.
func (c *Client) TryLoad(ctx context.Context, path, name string) (*ModelInfo, error) {
	body, err := json.Marshal(map[string]string{"path": path, "name": name})
	if err != nil {
		return nil, fmt.Errorf("client: marshal request: %w", err)
	}
	var out ModelInfo
	if err := c.Try(ctx, http.MethodPost, "/models/load", body, &out, ""); err != nil {
		return nil, err
	}
	return &out, nil
}

// TryModels is a single-attempt GET /models.
func (c *Client) TryModels(ctx context.Context) ([]ModelInfo, error) {
	var out []ModelInfo
	if err := c.Try(ctx, http.MethodGet, "/models", nil, &out, ""); err != nil {
		return nil, err
	}
	return out, nil
}

// StatusCode extracts the HTTP status carried by an error from this
// package, or 0 for transport-level failures (refused connections,
// timeouts) and breaker fast-fails — the cases where the server never
// answered and a different replica may. Works through %w wrapping.
func StatusCode(err error) int {
	var se *httpStatusError
	if errors.As(err, &se) {
		return se.status
	}
	return 0
}
