package client

// Tests for the single-attempt Try surface (ISSUE 7) — the cluster
// router's calling convention: exactly one breaker-gated attempt, no
// retries, no sleeping out an open breaker, and StatusCode() carrying
// enough structure for the router to decide propagate-vs-failover.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestTrySingleAttempt: Try hits the server exactly once, success or
// failure, regardless of MaxAttempts.
func TestTrySingleAttempt(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintln(w, `{"error":"boom"}`)
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, MaxAttempts: 10})
	err := c.Try(context.Background(), http.MethodGet, "/readyz", nil, nil, "")
	if err == nil {
		t.Fatal("Try against a 500 server succeeded")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want exactly 1", got)
	}
	if got := StatusCode(err); got != http.StatusInternalServerError {
		t.Fatalf("StatusCode = %d, want 500", got)
	}
}

// TestTryBreakerFastFail: once the breaker opens, Try fails fast with
// ErrBreakerOpen without touching the network, and a successful probe
// after the cooldown closes it again.
func TestTryBreakerFastFail(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		if failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	clk := &fakeClock{t: time.Unix(0, 0)}
	c := New(Config{BaseURL: ts.URL, BreakerThreshold: 2, BreakerCooldown: time.Minute, now: clk.now})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := c.TryReadyz(ctx); err == nil {
			t.Fatalf("probe %d against failing server succeeded", i)
		}
	}
	if st := c.BreakerState(); st != "open" {
		t.Fatalf("breaker %s after threshold failures, want open", st)
	}
	before := hits.Load()
	err := c.TryReadyz(ctx)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker Try error = %v, want ErrBreakerOpen", err)
	}
	if hits.Load() != before {
		t.Fatal("open-breaker Try still reached the server")
	}
	if got := StatusCode(err); got != 0 {
		t.Fatalf("StatusCode(ErrBreakerOpen) = %d, want 0 (no reply)", got)
	}
	// Cooldown elapses on the fake clock; the half-open probe succeeds
	// and closes the circuit — the readmission path of health gating.
	failing.Store(false)
	clk.advance(2 * time.Minute)
	if err := c.TryReadyz(ctx); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if st := c.BreakerState(); st != "closed" {
		t.Fatalf("breaker %s after successful probe, want closed", st)
	}
}

// TestTryPredictPriorityOverride: the per-call priority overrides the
// configured default header for that attempt only.
func TestTryPredictPriorityOverride(t *testing.T) {
	var lastPrio atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lastPrio.Store(r.Header.Get("X-Priority"))
		fmt.Fprintln(w, `{"model":"m","kind":"k","predictions":[1]}`)
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, Priority: "low"})
	ctx := context.Background()
	if _, err := c.TryPredict(ctx, "m", [][]float64{{1}}, "high"); err != nil {
		t.Fatal(err)
	}
	if got := lastPrio.Load().(string); got != "high" {
		t.Fatalf("override: server saw %q, want high", got)
	}
	if _, err := c.TryPredict(ctx, "m", [][]float64{{1}}, ""); err != nil {
		t.Fatal(err)
	}
	if got := lastPrio.Load().(string); got != "low" {
		t.Fatalf("default: server saw %q, want low", got)
	}
}

// TestTryLoadAndModels: the typed load/list round trip.
func TestTryLoadAndModels(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/models/load":
			fmt.Fprintln(w, `{"name":"m","kind":"ridge","features":8,"seed":7,"payload_sha256":"abc"}`)
		case "/models":
			fmt.Fprintln(w, `[{"name":"m","kind":"ridge","features":8,"seed":7,"payload_sha256":"abc"}]`)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})
	ctx := context.Background()
	info, err := c.TryLoad(ctx, "/tmp/m.model.json", "m")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "m" || info.Kind != "ridge" || info.Checksum != "abc" {
		t.Fatalf("TryLoad decoded %+v", info)
	}
	models, err := c.TryModels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Features != 8 {
		t.Fatalf("TryModels decoded %+v", models)
	}
}

// TestStatusCodeExtraction: StatusCode sees through every wrapping the
// client applies — plain status errors, the permanent-failure wrap, and
// returns 0 for transport-level failures where no server answered.
func TestStatusCodeExtraction(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/teapot":
			w.WriteHeader(http.StatusTeapot) // permanent 4xx
		case "/throttle":
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			w.WriteHeader(http.StatusBadGateway)
		}
	}))
	c := New(Config{BaseURL: ts.URL})
	ctx := context.Background()
	for path, want := range map[string]int{
		"/teapot": http.StatusTeapot, "/throttle": http.StatusTooManyRequests, "/x": http.StatusBadGateway,
	} {
		err := c.Try(ctx, http.MethodGet, path, nil, nil, "")
		if err == nil {
			t.Fatalf("%s: no error", path)
		}
		if got := StatusCode(err); got != want {
			t.Errorf("%s: StatusCode = %d, want %d", path, got, want)
		}
		if path == "/teapot" && !errors.Is(err, ErrPermanent) {
			t.Errorf("teapot error lost ErrPermanent: %v", err)
		}
	}
	ts.Close() // now every call is a refused connection
	err := c.Try(ctx, http.MethodGet, "/teapot", nil, nil, "")
	if err == nil {
		t.Fatal("Try against closed server succeeded")
	}
	if got := StatusCode(err); got != 0 {
		t.Errorf("transport failure StatusCode = %d, want 0", got)
	}
	if StatusCode(nil) != 0 {
		t.Errorf("StatusCode(nil) != 0")
	}
}

// TestNowFieldDrivesBreakerClock: the exported Now config field is the
// breaker's clock — the cluster router injects a frozen clock through
// it, so an open breaker must not half-open while Now stands still.
func TestNowFieldDrivesBreakerClock(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	clk := &fakeClock{t: time.Unix(0, 0)}
	c := New(Config{BaseURL: ts.URL, BreakerThreshold: 1, BreakerCooldown: time.Millisecond, Now: clk.now})
	ctx := context.Background()
	if err := c.TryReadyz(ctx); err == nil {
		t.Fatal("probe against 500 server succeeded")
	}
	if st := c.BreakerState(); st != "open" {
		t.Fatalf("breaker %s, want open", st)
	}
	// Real time passes; the frozen clock doesn't. The breaker must stay
	// open (fail fast) no matter how long we wait on the wall.
	time.Sleep(5 * time.Millisecond)
	if err := c.TryReadyz(ctx); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("frozen clock: err = %v, want ErrBreakerOpen", err)
	}
	clk.advance(time.Second)
	if err := c.TryReadyz(ctx); errors.Is(err, ErrBreakerOpen) {
		t.Fatal("advanced clock: breaker still refused the half-open probe")
	}
}
