package client

// Property-based and table tests for the client's resilience machinery
// (ISSUE 4): the backoff schedule's bounds and determinism, the breaker
// state machine's transitions under every event ordering that matters,
// the retry budget, and end-to-end retry behavior against flaky
// in-process servers. Everything runs race-clean (scripts/check.sh).

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is the injectable breaker clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// TestBackoffBoundsProperty: for randomized configs and retry indices,
// every delay lies in [raw/2, raw] where raw = min(base·2^retry, max).
func TestBackoffBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		base := time.Duration(1+rng.Intn(50)) * time.Millisecond
		max := base * time.Duration(1+rng.Intn(64))
		c := New(Config{BaseURL: "http://x", BackoffBase: base, BackoffMax: max, Seed: rng.Int63()})
		for retry := 0; retry < 12; retry++ {
			raw := base
			for i := 0; i < retry && raw < max; i++ {
				raw *= 2
			}
			if raw > max {
				raw = max
			}
			got := c.backoff(retry)
			if got < raw/2 || got > raw {
				t.Fatalf("trial %d retry %d: backoff %v outside [%v, %v] (base %v max %v)",
					trial, retry, got, raw/2, raw, base, max)
			}
		}
	}
}

// TestBackoffDeterministicPerSeed: same seed, same schedule; different
// seed, (almost surely) different schedule.
func TestBackoffDeterministicPerSeed(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		c := New(Config{BaseURL: "http://x", Seed: seed})
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = c.backoff(i)
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v != %v", i, a[i], b[i])
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestBackoffMonotoneNominal: the nominal (pre-jitter) schedule never
// decreases and caps at BackoffMax — jitter can only halve a step, so
// observed delays never exceed the cap.
func TestBackoffMonotoneNominal(t *testing.T) {
	c := New(Config{BaseURL: "http://x", BackoffBase: 10 * time.Millisecond, BackoffMax: 160 * time.Millisecond, Seed: 1})
	for retry := 0; retry < 20; retry++ {
		if got := c.backoff(retry); got > 160*time.Millisecond {
			t.Fatalf("retry %d: %v exceeds BackoffMax", retry, got)
		}
	}
}

// TestBreakerStateMachine walks the transition table.
func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, time.Second, clk.now)

	if b.state() != "closed" {
		t.Fatalf("initial state %q", b.state())
	}
	// Failures below the threshold keep it closed.
	b.onFailure()
	b.onFailure()
	if b.state() != "closed" {
		t.Fatalf("after 2/3 failures: %q", b.state())
	}
	// A success resets the consecutive count.
	b.onSuccess()
	b.onFailure()
	b.onFailure()
	if b.state() != "closed" {
		t.Fatalf("success did not reset the failure run: %q", b.state())
	}
	// The third consecutive failure opens it.
	b.onFailure()
	if b.state() != "open" {
		t.Fatalf("after 3 consecutive failures: %q", b.state())
	}
	// Open: calls are refused with the remaining cooldown.
	ok, retryAfter := b.allow()
	if ok || retryAfter <= 0 || retryAfter > time.Second {
		t.Fatalf("open allow = (%v, %v)", ok, retryAfter)
	}
	// Cooldown elapses: exactly one half-open probe is admitted.
	clk.advance(time.Second)
	ok, _ = b.allow()
	if !ok || b.state() != "half-open" {
		t.Fatalf("probe admission = %v, state %q", ok, b.state())
	}
	ok, _ = b.allow()
	if ok {
		t.Fatal("second caller admitted during half-open probe")
	}
	// Probe fails: re-open, cooldown restarts.
	b.onFailure()
	if b.state() != "open" {
		t.Fatalf("failed probe left state %q", b.state())
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("re-opened breaker admitted a call before cooldown")
	}
	// Probe succeeds after the next cooldown: closed again.
	clk.advance(time.Second)
	if ok, _ := b.allow(); !ok {
		t.Fatal("second probe refused")
	}
	b.onSuccess()
	if b.state() != "closed" {
		t.Fatalf("successful probe left state %q", b.state())
	}
	if ok, _ := b.allow(); !ok {
		t.Fatal("closed breaker refused a call")
	}
}

// TestBreakerPropertyNeverStuck: under a random event sequence the
// breaker always re-admits traffic after at most one cooldown — there
// is no ordering that wedges it refusing forever.
func TestBreakerPropertyNeverStuck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		clk := &fakeClock{t: time.Unix(0, 0)}
		b := newBreaker(1+rng.Intn(5), time.Second, clk.now)
		for step := 0; step < 50; step++ {
			if ok, _ := b.allow(); ok {
				if rng.Intn(2) == 0 {
					b.onSuccess()
				} else {
					b.onFailure()
				}
			}
			if rng.Intn(4) == 0 {
				clk.advance(time.Duration(rng.Intn(1500)) * time.Millisecond)
			}
		}
		// However the walk ended, one full cooldown must re-admit.
		clk.advance(time.Second)
		if ok, _ := b.allow(); !ok {
			t.Fatalf("trial %d: breaker stuck refusing after a full cooldown (state %s)",
				trial, b.state())
		}
	}
}

// TestBreakerRaceClean hammers one breaker from many goroutines; run
// under -race this pins down the locking.
func TestBreakerRaceClean(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, time.Millisecond, clk.now)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if ok, _ := b.allow(); ok {
					if (g+i)%3 == 0 {
						b.onFailure()
					} else {
						b.onSuccess()
					}
				}
				if i%100 == 0 {
					clk.advance(time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	_ = b.state()
}

// TestRetriesRecoverFromFlakyServer: a server failing the first two
// attempts with 500 then succeeding must yield a clean result through
// the retry path.
func TestRetriesRecoverFromFlakyServer(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"error": "transient"}`)
			return
		}
		fmt.Fprint(w, `{"model": "m", "kind": "ridge", "predictions": [1.5]}`)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxAttempts: 4, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond, Seed: 1})
	pred, err := c.Predict(context.Background(), "m", [][]float64{{1, 2}})
	if err != nil {
		t.Fatalf("Predict through flakes: %v", err)
	}
	if len(pred.Predictions) != 1 || pred.Predictions[0] != 1.5 {
		t.Fatalf("prediction = %+v", pred)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 failures + 1 success)", got)
	}
}

// TestPermanentFailureNotRetried: a 400 is the caller's bug — exactly
// one attempt, ErrPermanent, breaker unaffected.
func TestPermanentFailureNotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error": "bad instance"}`)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxAttempts: 4, Seed: 1})
	_, err := c.Predict(context.Background(), "m", [][]float64{{1}})
	if !errors.Is(err, ErrPermanent) {
		t.Fatalf("err = %v, want ErrPermanent", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("400 retried: %d calls", got)
	}
	if c.BreakerState() != "closed" {
		t.Fatalf("4xx moved the breaker to %q", c.BreakerState())
	}
}

// TestRetryBudgetExhaustion: with a hard-down server and a tiny budget,
// retries stop at the budget, not at MaxAttempts.
func TestRetryBudgetExhaustion(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := New(Config{
		BaseURL: ts.URL, MaxAttempts: 10, RetryBudget: 2,
		BackoffBase: time.Millisecond, BackoffMax: time.Millisecond,
		BreakerThreshold: 100, Seed: 1,
	})
	_, err := c.Predict(context.Background(), "m", [][]float64{{1}})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if got := calls.Load(); got != 3 { // 1 first try + 2 budgeted retries
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

// TestBreakerOpensAgainstDownServer: enough consecutive failures trip
// the breaker; subsequent calls fail fast without hitting the wire
// until the cooldown.
func TestBreakerOpensAgainstDownServer(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	clk := &fakeClock{t: time.Unix(0, 0)}
	noSleep := func(ctx context.Context, _ time.Duration) error { return ctx.Err() }
	cfg := Config{
		BaseURL: ts.URL, MaxAttempts: 3, RetryBudget: 100,
		BackoffBase: time.Millisecond, BackoffMax: time.Millisecond,
		BreakerThreshold: 3, BreakerCooldown: time.Minute, Seed: 1,
	}
	cfg.now = clk.now
	cfg.sleep = noSleep
	c := New(cfg)

	// One call = 3 attempts = 3 consecutive failures: breaker opens.
	if _, err := c.Predict(context.Background(), "m", [][]float64{{1}}); err == nil {
		t.Fatal("down server produced a success")
	}
	if c.BreakerState() != "open" {
		t.Fatalf("breaker = %q after threshold failures", c.BreakerState())
	}
	wire := calls.Load()

	// While open every attempt is refused before the wire.
	if _, err := c.Predict(context.Background(), "m", [][]float64{{1}}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker err = %v, want ErrBreakerOpen", err)
	}
	if calls.Load() != wire {
		t.Fatalf("open breaker let %d calls through", calls.Load()-wire)
	}

	// After the cooldown one probe goes through; it fails, re-opening.
	clk.advance(time.Minute)
	_, err := c.Predict(context.Background(), "m", [][]float64{{1}})
	if err == nil {
		t.Fatal("probe against a down server succeeded")
	}
	if calls.Load() != wire+1 {
		t.Fatalf("half-open sent %d probes, want 1", calls.Load()-wire)
	}
	if c.BreakerState() != "open" {
		t.Fatalf("failed probe left breaker %q", c.BreakerState())
	}
}

// TestClientRaceClean: concurrent Predicts against a healthy server.
func TestClientRaceClean(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"model": "m", "kind": "ridge", "predictions": [2]}`)
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, Seed: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := c.Predict(context.Background(), "m", [][]float64{{1, 2}}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestHealthEndpoints exercises the typed probes.
func TestHealthEndpoints(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			fmt.Fprint(w, `{"status": "ok"}`)
		case "/readyz":
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"status": "draining"}`)
		case "/metrics":
			fmt.Fprint(w, `[{"name": "serve.batches", "kind": "counter", "value": 3}]`)
		}
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, MaxAttempts: 1, Seed: 1})
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz: %v", err)
	}
	if err := c.Readyz(context.Background()); err == nil {
		t.Fatal("Readyz against a draining server succeeded")
	}
	ms, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if len(ms) != 1 || ms[0].Name != "serve.batches" || ms[0].Value != 3 {
		t.Fatalf("metrics = %+v", ms)
	}
}
