package serve

// Resilience tests (ISSUE 4): priority-aware load shedding, per-request
// deadlines, panic isolation, and bounded drain under injected stalls.
// The chaos harness at the repo root (chaos_e2e_test.go) composes these
// mechanisms end to end; here each one is pinned down in isolation.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/linalg"
	"repro/internal/obs"
)

// predictVia posts a predict request straight through the handler (no
// network) with an optional priority header.
func predictVia(h http.Handler, name, prio string, instances [][]float64) *httptest.ResponseRecorder {
	body, _ := json.Marshal(predictRequest{Instances: instances})
	req := httptest.NewRequest(http.MethodPost, "/predict/"+name, bytes.NewReader(body))
	if prio != "" {
		req.Header.Set("X-Priority", prio)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestPrioritySheddingOrder: as in-flight load rises, the low tier
// sheds first (50% of MaxInFlight), then normal (90%), then high
// (100%) — overload sacrifices the least important traffic first.
func TestPrioritySheddingOrder(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 10, MaxBatch: 1})
	h := s.Handler()
	inst := [][]float64{make([]float64, 8)}

	cases := []struct {
		occupied int64
		want     map[string]int // priority -> expected status
	}{
		{0, map[string]int{"low": 200, "": 200, "high": 200}},
		{5, map[string]int{"low": 429, "": 200, "high": 200}},
		{9, map[string]int{"low": 429, "": 429, "high": 200}},
		{10, map[string]int{"low": 429, "": 429, "high": 429}},
	}
	for _, tc := range cases {
		for prio, want := range tc.want {
			s.adm.inflight.Store(tc.occupied)
			rec := predictVia(h, "ridge", prio, inst)
			if rec.Code != want {
				t.Errorf("occupied=%d priority=%q: status %d, want %d",
					tc.occupied, prio, rec.Code, want)
			}
		}
	}
	s.adm.inflight.Store(0)

	// Shed counters attribute rejections to the tier that was refused.
	before := obs.GetCounter("serve.shed.low").Value()
	s.adm.inflight.Store(10)
	predictVia(h, "ridge", "low", inst)
	s.adm.inflight.Store(0)
	if got := obs.GetCounter("serve.shed.low").Value(); got != before+1 {
		t.Fatalf("serve.shed.low = %d, want %d", got, before+1)
	}
}

// TestHealthProbesNeverShed: with every in-flight slot taken and
// predict traffic being 429'd, /healthz and /readyz answer instantly —
// they bypass the shedder entirely, so an overloaded pod still reports
// itself alive instead of getting killed and re-spawned into the same
// overload.
func TestHealthProbesNeverShed(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 4, MaxBatch: 1})
	h := s.Handler()
	s.adm.inflight.Store(4) // saturated
	defer s.adm.inflight.Store(0)

	// Keep hostile load arriving while we probe.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inst := [][]float64{make([]float64, 8)}
			for {
				select {
				case <-stop:
					return
				default:
					predictVia(h, "ridge", "high", inst)
				}
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	if rec := predictVia(h, "ridge", "high", [][]float64{make([]float64, 8)}); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated predict = %d, want 429", rec.Code)
	}
	for _, path := range []string{"/healthz", "/readyz"} {
		best := time.Duration(1 << 62)
		for i := 0; i < 10; i++ {
			req := httptest.NewRequest(http.MethodGet, path, nil)
			rec := httptest.NewRecorder()
			start := time.Now()
			h.ServeHTTP(rec, req)
			if d := time.Since(start); d < best {
				best = d
			}
			if rec.Code != http.StatusOK {
				t.Fatalf("%s under full load = %d, want 200", path, rec.Code)
			}
		}
		if best > time.Millisecond {
			t.Fatalf("%s best-of-10 latency %v under full load, want < 1ms", path, best)
		}
	}
}

// TestRequestDeadline504: a request whose deadline expires inside the
// serving path (here: injected kernel-eval latency far beyond the
// timeout) gets 504 and increments serve.deadline_exceeded, instead of
// holding the connection for the duration of the stall.
func TestRequestDeadline504(t *testing.T) {
	defer fault.Deactivate()
	s := newTestServer(t, Config{MaxBatch: 1, RequestTimeout: 50 * time.Millisecond})
	h := s.Handler()

	fault.Activate(fault.Plan{Seed: 1, Sites: map[string]fault.SiteConfig{
		fault.SiteKernelEval: {LatencyRate: 1, Latency: 30 * time.Second},
	}})
	before := deadlineExceeded.Value()
	start := time.Now()
	rec := predictVia(h, "ridge", "", [][]float64{make([]float64, 8)})
	elapsed := time.Since(start)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", rec.Code, rec.Body.String())
	}
	if elapsed > 5*time.Second {
		t.Fatalf("504 took %v — the deadline did not cut the stall short", elapsed)
	}
	if got := deadlineExceeded.Value(); got <= before {
		t.Fatalf("serve.deadline_exceeded did not increase (%d -> %d)", before, got)
	}

	// With the plan gone the same request succeeds immediately.
	fault.Deactivate()
	if rec := predictVia(h, "ridge", "", [][]float64{make([]float64, 8)}); rec.Code != http.StatusOK {
		t.Fatalf("post-chaos predict = %d, want 200", rec.Code)
	}
}

// TestRecoveryMiddleware: a panicking handler answers 500 and bumps
// serve.panics_recovered; the process (and the test binary) survives.
func TestRecoveryMiddleware(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.wrap("boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	before := panicsRecovered.Value()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "kaboom") {
		t.Fatalf("panic message lost: %s", rec.Body.String())
	}
	if got := panicsRecovered.Value(); got != before+1 {
		t.Fatalf("serve.panics_recovered = %d, want %d", got, before+1)
	}
}

// TestRequestBodyCap: a predict body over MaxRequestBytes is refused
// with 413 before it can become an allocation problem.
func TestRequestBodyCap(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 1})
	h := s.Handler()
	big := bytes.Repeat([]byte("9"), MaxRequestBytes+2)
	req := httptest.NewRequest(http.MethodPost, "/predict/ridge", bytes.NewReader(big))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", rec.Code)
	}
}

// TestCloseBoundedUnderInjectedStall is the drain-bug regression test:
// with kernel eval stalled by a 10-minute injected latency and a
// request already in the queue, Close must return within the configured
// DrainTimeout (plus the cancellation grace) — the context cancel
// aborts the injected Wait. Before the fix, close() waited on the queue
// unboundedly and SIGTERM hung for the full stall.
func TestCloseBoundedUnderInjectedStall(t *testing.T) {
	defer fault.Deactivate()
	s := newTestServer(t, Config{MaxBatch: 1, DrainTimeout: 100 * time.Millisecond})
	h := s.Handler()

	fault.Activate(fault.Plan{Seed: 3, Sites: map[string]fault.SiteConfig{
		fault.SiteKernelEval: {LatencyRate: 1, Latency: 10 * time.Minute},
	}})
	// Park one request in the stalled queue (no request deadline, so
	// only the drain cancel can free it).
	started := make(chan struct{})
	doneReq := make(chan int, 1)
	go func() {
		close(started)
		rec := predictVia(h, "ridge", "", [][]float64{make([]float64, 8)})
		doneReq <- rec.Code
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the batch enter the injected Wait

	start := time.Now()
	s.Close()
	elapsed := time.Since(start)
	if elapsed > 3*time.Second {
		t.Fatalf("Close took %v with a stalled queue, want ~DrainTimeout", elapsed)
	}
	select {
	case code := <-doneReq:
		if code != http.StatusGatewayTimeout && code != http.StatusInternalServerError &&
			code != http.StatusServiceUnavailable {
			t.Fatalf("stalled request finished with %d, want a 5xx", code)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled request never completed after Close")
	}
}

// TestCloseWithinAbandonsTrueStall: a scorer that ignores context
// cancellation entirely (blocked on something that is not ctx-aware)
// cannot hold shutdown hostage — closeWithin cancels, waits the grace,
// then abandons the goroutine and returns false.
func TestCloseWithinAbandonsTrueStall(t *testing.T) {
	release := make(chan struct{})
	score := func(context.Context, *linalg.Matrix) ([]float64, error) {
		<-release // a true stall: no ctx arm
		return nil, errors.New("released")
	}
	b := newBatcher(score, 1, 1, time.Millisecond)
	ch, err := b.submit(context.Background(), []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the flush enter score

	start := time.Now()
	ok := b.closeWithin(50 * time.Millisecond)
	elapsed := time.Since(start)
	if ok {
		t.Fatal("closeWithin reported a clean drain around a stalled scorer")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("closeWithin took %v, want ~deadline+grace", elapsed)
	}
	close(release) // unblock the abandoned goroutine so the test exits clean
	if resp := <-ch; resp.err == nil {
		t.Fatalf("abandoned request got a value: %+v", resp)
	}
}

// TestCloseWithinDrainsCleanQueue: the bounded close is not trigger-
// happy — a healthy queue drains normally well inside the deadline and
// every accepted request is answered.
func TestCloseWithinDrainsCleanQueue(t *testing.T) {
	score := func(_ context.Context, x *linalg.Matrix) ([]float64, error) {
		out := make([]float64, x.Rows)
		for i := range out {
			out[i] = x.Row(i)[0] + 1
		}
		return out, nil
	}
	b := newBatcher(score, 1, 4, time.Millisecond)
	var chans []<-chan batchResponse
	for i := 0; i < 16; i++ {
		ch, err := b.submit(context.Background(), []float64{float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	if !b.closeWithin(5 * time.Second) {
		t.Fatal("clean queue reported as stalled")
	}
	for i, ch := range chans {
		resp := <-ch
		if resp.err != nil || resp.value != float64(i)+1 {
			t.Fatalf("request %d: %+v", i, resp)
		}
	}
}

// TestSubmitHonorsContext: a deadlined context aborts both the closed
// check and a blocked enqueue.
func TestSubmitHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := newBatcher(func(_ context.Context, x *linalg.Matrix) ([]float64, error) {
		return make([]float64, x.Rows), nil
	}, 1, 1, time.Millisecond)
	defer b.close()
	if _, err := b.submit(ctx, []float64{1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("submit with canceled ctx = %v, want context.Canceled", err)
	}
}

// TestPredictDecodeFaultSite: injected errors at the request-decode
// boundary surface as 500s carrying the injected-fault marker, and the
// server keeps serving afterwards.
func TestPredictDecodeFaultSite(t *testing.T) {
	defer fault.Deactivate()
	s := newTestServer(t, Config{MaxBatch: 1})
	h := s.Handler()

	fault.Activate(fault.Plan{Seed: 5, Sites: map[string]fault.SiteConfig{
		fault.SitePredictDecode: {ErrRate: 1},
	}})
	rec := predictVia(h, "ridge", "", [][]float64{make([]float64, 8)})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "injected") {
		t.Fatalf("error does not identify the injected fault: %s", rec.Body.String())
	}
	fault.Deactivate()
	if rec := predictVia(h, "ridge", "", [][]float64{make([]float64, 8)}); rec.Code != http.StatusOK {
		t.Fatalf("post-chaos predict = %d, want 200", rec.Code)
	}
}

// TestShedValues sanity-pins the tier limits themselves.
func TestShedValues(t *testing.T) {
	s := New(Config{MaxInFlight: 100})
	defer s.Close()
	for _, tc := range []struct {
		p    Priority
		want int64
	}{{PriorityLow, 50}, {PriorityNormal, 90}, {PriorityHigh, 100}} {
		if got := s.adm.limitFor(tc.p); got != tc.want {
			t.Fatalf("limitFor(%d) = %d, want %d", tc.p, got, tc.want)
		}
	}
	tiny := New(Config{MaxInFlight: 1})
	defer tiny.Close()
	for _, p := range []Priority{PriorityLow, PriorityNormal, PriorityHigh} {
		if got := tiny.adm.limitFor(p); got < 1 {
			t.Fatalf("limitFor(%d) = %d with MaxInFlight=1 — a tier is starved", p, got)
		}
	}
	for _, tc := range []struct {
		header string
		want   Priority
	}{{"low", PriorityLow}, {"HIGH", PriorityHigh}, {"", PriorityNormal}, {"urgent", PriorityNormal}} {
		req := httptest.NewRequest(http.MethodPost, "/predict/x", nil)
		if tc.header != "" {
			req.Header.Set("X-Priority", tc.header)
		}
		if got := PriorityOf(req); got != tc.want {
			t.Fatalf("PriorityOf(%q) = %d, want %d", tc.header, got, tc.want)
		}
	}
}
