package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is the consistent-hash ring mapping model names onto replica
// indices. Each replica contributes vnodes virtual points hashed from
// a stable label ("replica-<i>/vnode-<v>"), so ownership is a pure
// function of (name, fleet size, vnodes): every router computes the
// same assignment with no coordination, and the vnode count bounds how
// lumpy the shard distribution can get.
type ring struct {
	points []ringPoint // sorted by hash, ties broken by replica index
	n      int         // fleet size
}

type ringPoint struct {
	hash    uint64
	replica int
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck — fnv never fails
	return h.Sum64()
}

// newRing builds the ring for n replicas with vnodes points each.
func newRing(n, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, n*vnodes), n: n}
	for i := 0; i < n; i++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(fmt.Sprintf("replica-%d/vnode-%d", i, v)),
				replica: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].replica < r.points[b].replica
	})
	return r
}

// owners returns the first k distinct replicas clockwise from the hash
// of name, in ring order — the model's owner set, primary first. k is
// clamped to the fleet size.
func (r *ring) owners(name string, k int) []int {
	if k > r.n {
		k = r.n
	}
	if k <= 0 || len(r.points) == 0 {
		return nil
	}
	h := hash64(name)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, k)
	seen := make(map[int]bool, k)
	for i := 0; len(out) < k && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}
