// Package cluster is the sharded multi-node serving tier over
// internal/serve: the ROADMAP's "millions of users" architecture item.
// A Router fronts a fixed fleet of replica servers (each one an
// ordinary edaserved / serve.Server), maps every model onto a subset of
// the fleet with a consistent-hash ring, gates membership on health,
// and fans prediction batches out across the healthy owners of a model
// — merging the per-replica answers back into one response that is
// bit-identical to single-node serving.
//
// Architecture (net/http only, like everything else in the repo):
//
//   - Consistent-hash sharding (ring.go): each replica projects VNodes
//     virtual points onto a 64-bit ring; a model's owner set is the
//     first Replication distinct replicas clockwise from the hash of
//     its name. Ownership is a pure function of (model name, fleet
//     size, VNodes) — every router instance computes the same owners
//     with no coordination, and adding a replica moves only ~1/N of
//     the models.
//   - Health-gated membership (replica.go): a replica serves traffic
//     only while healthy. Readiness probes (GET /readyz through the
//     replica's own resilient client) feed the client's circuit
//     breaker — a probe success closes the circuit and marks the
//     replica up; DownAfter consecutive request or probe failures mark
//     it down. Routing never consults an unhealthy replica, so a dead
//     node costs at most DownAfter failed requests fleet-wide before
//     traffic routes around it.
//   - Fan-out and merge (router.go): a predict batch of n instances
//     for a model with k healthy owners is split into k contiguous
//     chunks scored concurrently, one per owner, and the chunk results
//     are merged back in request order. Scoring is row-independent and
//     deterministic, so the merged vector is bit-identical to any
//     single node scoring the whole batch (the testkit DiffPaths
//     cluster lane asserts this for all six persisted kinds).
//   - Admission before routing: the router runs the same priority-
//     tiered shedder as a single node (serve.Admission, scope
//     "cluster") — low sheds at 50% of MaxInFlight, normal at 90%,
//     high at 100%. A 429 from a replica is propagated to the caller,
//     never silently retried into a different replica: shedding is a
//     load decision, and rerouting shed traffic would defeat it.
//     Failover across replicas happens only for failures where the
//     server never answered (transport errors, breaker fast-fails) or
//     answered 5xx.
//   - Blue/green rollout: POST /models/load on the router walks the
//     model's owner replicas in ring order, hot-loading the artifact
//     into one replica at a time through the existing /models/load.
//     Each replica swaps atomically and the other owners keep serving,
//     so a version rollout drops zero requests (cluster_smoke.sh and
//     TestClusterRolloutZeroDrops drive this under live traffic).
//   - Chaos: two injection sites (internal/fault). cluster.route fails
//     or stalls the routing step itself; cluster.replica_down
//     partitions the router from one owner for one request. Both are
//     drawn serially in deterministic order, so an entire cluster run
//     — including node-kill, exercised by really closing a replica's
//     listener — is a pure function of one int64 seed
//     (cluster_chaos_e2e_test.go).
//
// The in-process harness (harness.go) boots N real serve.Servers on
// loopback listeners behind one Router in a single process, sharing the
// global obs registry — which is what lets the chaos test assert that
// two same-seed storms produce identical counter snapshots.
package cluster

import (
	"time"
)

// Config tunes the router. The zero value gets sane defaults.
type Config struct {
	// Replication is how many replicas own each model. Clamped to the
	// fleet size. Default 2.
	Replication int
	// VNodes is the number of virtual ring points per replica; more
	// points smooth the shard distribution. Default 64.
	VNodes int
	// MaxInFlight bounds concurrently routed predict requests; excess
	// requests get 429, lowest priority first (same tier slices as a
	// single node). Default 256.
	MaxInFlight int
	// RequestTimeout is the end-to-end deadline for one routed predict
	// request, covering every failover attempt. Zero means the 10s
	// default; negative disables the deadline.
	RequestTimeout time.Duration
	// AttemptTimeout bounds each per-replica attempt. Default 5s.
	AttemptTimeout time.Duration
	// DownAfter is how many consecutive failed requests or probes mark
	// a replica unhealthy. Default 1: route around a node on the first
	// failure — probes bring it back.
	DownAfter int
	// SpreadMin is the minimum instance count at which a batch is
	// split across the model's healthy owners; smaller batches go
	// whole to the first healthy owner in ring order. Default 8.
	SpreadMin int
	// BreakerThreshold and BreakerCooldown configure each replica
	// client's circuit breaker (see internal/serve/client). Defaults 5
	// and 2s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Seed derives each replica client's jitter stream. The router
	// itself never draws jitter (it fails over instead of retrying in
	// place), but the seed keeps any future in-place retry
	// deterministic.
	Seed int64
	// Now is the clock the replica breakers run on. Deterministic
	// harnesses inject a frozen clock so breaker transitions cannot
	// depend on wall time. Default time.Now.
	Now func() time.Time
}

func (c *Config) defaults() {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.RequestTimeout < 0 {
		c.RequestTimeout = 0 // negative disables the deadline
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 5 * time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 1
	}
	if c.SpreadMin <= 0 {
		c.SpreadMin = 8
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}
