package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/apps/modelzoo"
	"repro/internal/model"
	"repro/internal/serve"
)

// BenchmarkClusterThroughput measures end-to-end predict throughput
// through the cluster router — admission, ring lookup, fan-out, merge,
// and one extra network hop — at 1 and 3 replicas × 1, 8, and 64
// concurrent clients against the SVC model, mirroring
// BenchmarkServeThroughput so the router's overhead is directly
// comparable (scripts/bench_ratchet.sh warns when replicas=1 costs
// more than 1.5× the direct single-node path). b.N counts
// single-instance predict requests.
func BenchmarkClusterThroughput(b *testing.B) {
	trained, err := modelzoo.TrainAll(17, 96, 64)
	if err != nil {
		b.Fatal(err)
	}
	var svc modelzoo.Trained
	for _, tr := range trained {
		if tr.Kind == model.KindSVC {
			svc = tr
		}
	}
	a, err := model.Encode(svc.Model, model.Meta{Name: "svc"})
	if err != nil {
		b.Fatal(err)
	}
	bodies := make([][]byte, svc.Probes.Rows)
	for i := range bodies {
		bodies[i], _ = json.Marshal(map[string]any{"instances": [][]float64{svc.Probes.Row(i)}})
	}

	for _, replicas := range []int{1, 3} {
		replicas := replicas
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			for _, clients := range []int{1, 8, 64} {
				clients := clients
				b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
					lc, err := NewLocal(replicas,
						serve.Config{MaxBatch: 16, MaxWait: 500 * time.Microsecond, CacheRows: 0},
						Config{Replication: replicas, MaxInFlight: 4 * clients})
					if err != nil {
						b.Fatal(err)
					}
					defer lc.Close()
					if err := lc.LoadDirect("svc", a); err != nil {
						b.Fatal(err)
					}
					if n := lc.ProbeAll(context.Background()); n != replicas {
						b.Fatalf("probe: %d/%d healthy", n, replicas)
					}
					base, err := lc.Serve()
					if err != nil {
						b.Fatal(err)
					}
					url := base + "/predict/svc"
					client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}

					var next sync.Mutex
					remaining := b.N
					b.ReportAllocs()
					b.ResetTimer()
					var wg sync.WaitGroup
					for c := 0; c < clients; c++ {
						wg.Add(1)
						go func(c int) {
							defer wg.Done()
							i := c
							for {
								next.Lock()
								if remaining == 0 {
									next.Unlock()
									return
								}
								remaining--
								next.Unlock()
								resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
								if err != nil {
									b.Error(err)
									return
								}
								var pr struct {
									Predictions []float64 `json:"predictions"`
								}
								if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
									b.Error(err)
								}
								resp.Body.Close()
								if resp.StatusCode != http.StatusOK {
									b.Errorf("status %d", resp.StatusCode)
									return
								}
								i++
							}
						}(c)
					}
					wg.Wait()
					b.StopTimer()
					if elapsed := b.Elapsed(); elapsed > 0 {
						b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
					}
				})
			}
		})
	}
}
