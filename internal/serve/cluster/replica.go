package cluster

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/serve/client"
)

// Replica is one member of the fleet: its base URL, its own resilient
// client (so breaker state and metrics are per-replica), and its
// health. A replica starts unknown/unhealthy — the first successful
// readiness probe admits it to the serving set. Health transitions are
// counted per replica (cluster.replica.<i>.{up,down}) so a chaos run's
// membership churn is visible in the snapshot.
type Replica struct {
	// Index is the replica's stable position in the fleet — its ring
	// identity and metric label.
	Index int
	// Base is the replica's base URL, e.g. "http://127.0.0.1:18081".
	Base string

	c         *client.Client
	downAfter int

	mu          sync.Mutex
	healthy     bool
	consecFails int

	requests  *obs.Counter
	instances *obs.Counter
	failures  *obs.Counter
	ups       *obs.Counter
	downs     *obs.Counter
}

func newReplica(idx int, base string, cfg Config) *Replica {
	scope := obs.Scope(fmt.Sprintf("cluster.replica.%d", idx))
	return &Replica{
		Index: idx,
		Base:  base,
		c: client.New(client.Config{
			BaseURL:          base,
			Timeout:          cfg.AttemptTimeout,
			MaxAttempts:      1, // the router fails over instead of retrying in place
			BreakerThreshold: cfg.BreakerThreshold,
			BreakerCooldown:  cfg.BreakerCooldown,
			Seed:             cfg.Seed + int64(idx),
			Now:              cfg.Now,
		}),
		downAfter: cfg.DownAfter,
		requests:  scope.Counter("requests"),
		instances: scope.Counter("instances"),
		failures:  scope.Counter("failures"),
		ups:       scope.Counter("up"),
		downs:     scope.Counter("down"),
	}
}

// Healthy reports whether the replica is in the serving set.
func (r *Replica) Healthy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthy
}

// BreakerState exposes the replica client's breaker state.
func (r *Replica) BreakerState() string { return r.c.BreakerState() }

// Probe runs one readiness probe and updates health: success marks the
// replica up (and, inside the client, closes its breaker); failure
// counts toward DownAfter like any request failure.
func (r *Replica) Probe(ctx context.Context) error {
	err := r.c.TryReadyz(ctx)
	if err != nil {
		r.noteFailure()
		return err
	}
	r.noteSuccess()
	return nil
}

// predict scores one chunk on this replica, with health bookkeeping.
// A reply from the server — any status — proves the node is alive, so
// only transport-level failures (StatusCode 0: refused connections,
// timeouts, breaker fast-fails) count toward marking it down; a 429 or
// a 500 is an unhealthy answer, not an unreachable host.
func (r *Replica) predict(ctx context.Context, model string, instances [][]float64, priority string) (*client.Prediction, error) {
	r.requests.Inc()
	p, err := r.c.TryPredict(ctx, model, instances, priority)
	if err != nil {
		r.failures.Inc()
		if client.StatusCode(err) == 0 {
			r.noteFailure()
		} else {
			r.noteSuccess()
		}
		return nil, err
	}
	r.noteSuccess()
	r.instances.Add(int64(len(p.Predictions)))
	return p, nil
}

// load hot-loads an artifact on this replica through its /models/load.
func (r *Replica) load(ctx context.Context, path, name string) (*client.ModelInfo, error) {
	info, err := r.c.TryLoad(ctx, path, name)
	if err != nil {
		if client.StatusCode(err) == 0 {
			r.noteFailure()
		}
		return nil, err
	}
	r.noteSuccess()
	return info, nil
}

// models lists the replica's registry.
func (r *Replica) models(ctx context.Context) ([]client.ModelInfo, error) {
	return r.c.TryModels(ctx)
}

func (r *Replica) noteSuccess() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecFails = 0
	if !r.healthy {
		r.healthy = true
		r.ups.Inc()
	}
}

func (r *Replica) noteFailure() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecFails++
	if r.healthy && r.consecFails >= r.downAfter {
		r.healthy = false
		r.downs.Inc()
	}
}
