package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/linalg"
	"repro/internal/linear"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
)

// fakeReplica is a scripted stand-in for a serve.Server: always ready,
// and answering predict with a fixed status while recording what it saw.
type fakeReplica struct {
	status   int // predict reply status; 200 serves real-looking predictions
	hits     atomic.Int64
	lastPrio atomic.Value // string: last X-Priority seen on predict
}

func (f *fakeReplica) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
	mux.HandleFunc("/predict/", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		f.lastPrio.Store(r.Header.Get("X-Priority"))
		if f.status != http.StatusOK {
			w.WriteHeader(f.status)
			fmt.Fprintf(w, `{"error":"scripted %d"}`, f.status)
			return
		}
		var req struct {
			Instances [][]float64 `json:"instances"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		preds := make([]float64, len(req.Instances))
		for i, row := range req.Instances {
			preds[i] = row[0]
		}
		json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck — test fake
			"model": "m", "kind": "fake", "predictions": preds,
		})
	})
	return mux
}

// fakeCluster boots scripted replicas behind a router and probes them
// healthy. Returns the router and the fakes indexed like the fleet.
func fakeCluster(t *testing.T, cfg Config, statuses ...int) (*Router, []*fakeReplica) {
	t.Helper()
	fakes := make([]*fakeReplica, len(statuses))
	bases := make([]string, len(statuses))
	for i, st := range statuses {
		fakes[i] = &fakeReplica{status: st}
		ts := httptest.NewServer(fakes[i].handler())
		t.Cleanup(ts.Close)
		bases[i] = ts.URL
	}
	rt := NewRouter(cfg, bases)
	t.Cleanup(rt.Close)
	if n := rt.ProbeAll(context.Background()); n != len(statuses) {
		t.Fatalf("probe: %d/%d healthy", n, len(statuses))
	}
	return rt, fakes
}

func postPredict(h http.Handler, model string, body string, priority string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/predict/"+model, bytes.NewReader([]byte(body)))
	if priority != "" {
		req.Header.Set("X-Priority", priority)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

const oneRow = `{"instances": [[7]]}`

// TestPriorityForwardedEndToEnd: the caller's X-Priority tier rides
// through the router to the replica verbatim — the fleet sheds on the
// caller's priority, not the router's.
func TestPriorityForwardedEndToEnd(t *testing.T) {
	rt, fakes := fakeCluster(t, Config{Replication: 1}, http.StatusOK)
	h := rt.Handler()
	for _, prio := range []string{"low", "high", ""} {
		rec := postPredict(h, "m", oneRow, prio)
		if rec.Code != http.StatusOK {
			t.Fatalf("priority %q: status %d: %s", prio, rec.Code, rec.Body.String())
		}
		want := prio
		if want == "" {
			want = "normal" // the router normalizes the missing header to its parsed tier
		}
		if got := fakes[0].lastPrio.Load().(string); got != want {
			t.Errorf("priority %q: replica saw X-Priority %q, want %q", prio, got, want)
		}
	}
}

// TestShedLowFirstAtRouter: with the router's admission gate nearly
// full, a low request is shed with 429 while a high request is still
// admitted — and the shed happens at the router, before any replica
// sees traffic.
func TestShedLowFirstAtRouter(t *testing.T) {
	block := make(chan struct{})
	arrived := make(chan struct{}, 8)
	var hits atomic.Int64
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		hits.Add(1)
		arrived <- struct{}{}
		<-block
		fmt.Fprintln(w, `{"model":"m","kind":"fake","predictions":[1]}`)
	}))
	defer slow.Close()

	rt := NewRouter(Config{Replication: 1, MaxInFlight: 2}, []string{slow.URL})
	defer rt.Close()
	if n := rt.ProbeAll(context.Background()); n != 1 {
		t.Fatalf("probe: %d/1 healthy", n)
	}
	h := rt.Handler()
	shedLowBefore := obs.GetCounter("cluster.shed.low").Value()

	// Occupy one in-flight slot; MaxInFlight=2 puts the low tier's
	// limit at 1, so the next low request must shed.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postPredict(h, "m", oneRow, "high")
	}()
	<-arrived

	if rec := postPredict(h, "m", oneRow, "low"); rec.Code != http.StatusTooManyRequests {
		t.Errorf("low under load: status %d, want 429", rec.Code)
	} else if rec.Header().Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After")
	}
	if got := obs.GetCounter("cluster.shed.low").Value(); got != shedLowBefore+1 {
		t.Errorf("cluster.shed.low = %d, want %d", got, shedLowBefore+1)
	}
	// The shed request never reached the replica: only the in-flight
	// high request has arrived.
	if got := hits.Load(); got != 1 {
		t.Errorf("replica saw %d predicts, want 1 (shed request must not arrive)", got)
	}
	// High still gets through the gate (and then waits on the replica).
	wg.Add(1)
	go func() {
		defer wg.Done()
		if rec := postPredict(h, "m", oneRow, "high"); rec.Code != http.StatusOK {
			t.Errorf("high under load: status %d", rec.Code)
		}
	}()
	select {
	case <-arrived: // admitted: it reached the replica
	case <-time.After(5 * time.Second):
		t.Fatal("high-priority request was not admitted")
	}
	close(block)
	wg.Wait()
}

// Test429NeverRerouted: a replica's 429 propagates to the caller
// untouched; the router must not convert load-shedding into
// load-spreading by retrying the request on a different replica.
func Test429NeverRerouted(t *testing.T) {
	rt, fakes := fakeCluster(t, Config{Replication: 2}, http.StatusTooManyRequests, http.StatusTooManyRequests)
	// Make the primary the scripted 429; identify it via the ring.
	primary := rt.Owners("m")[0]
	other := 1 - primary
	fakes[other].status = http.StatusOK

	rec := postPredict(rt.Handler(), "m", oneRow, "low")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 propagated", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Errorf("propagated 429 lost Retry-After")
	}
	if got := fakes[other].hits.Load(); got != 0 {
		t.Errorf("non-primary replica saw %d requests — a 429 was rerouted", got)
	}
}

// TestFailoverOn5xx: a 500 from the primary fails the chunk over to the
// next owner; the caller sees a clean 200.
func TestFailoverOn5xx(t *testing.T) {
	rt, fakes := fakeCluster(t, Config{Replication: 2}, http.StatusInternalServerError, http.StatusInternalServerError)
	primary := rt.Owners("m")[0]
	fakes[1-primary].status = http.StatusOK
	before := obs.GetCounter("cluster.failovers").Value()

	rec := postPredict(rt.Handler(), "m", oneRow, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via failover: %s", rec.Code, rec.Body.String())
	}
	if got := fakes[primary].hits.Load(); got != 1 {
		t.Errorf("primary hits = %d, want 1", got)
	}
	if got := fakes[1-primary].hits.Load(); got != 1 {
		t.Errorf("secondary hits = %d, want 1", got)
	}
	if got := obs.GetCounter("cluster.failovers").Value(); got != before+1 {
		t.Errorf("cluster.failovers = %d, want %d", got, before+1)
	}
}

// TestPermanent4xxPropagates: a 404 (unknown model) is the caller's
// bug on every replica alike — propagated, never failed over.
func TestPermanent4xxPropagates(t *testing.T) {
	rt, fakes := fakeCluster(t, Config{Replication: 2}, http.StatusNotFound, http.StatusNotFound)
	primary := rt.Owners("m")[0]
	fakes[1-primary].status = http.StatusOK

	rec := postPredict(rt.Handler(), "m", oneRow, "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404 propagated", rec.Code)
	}
	if got := fakes[1-primary].hits.Load(); got != 0 {
		t.Errorf("secondary saw %d requests — a 4xx was rerouted", got)
	}
}

// TestPredictValidation: malformed requests die at the router.
func TestPredictValidation(t *testing.T) {
	rt, _ := fakeCluster(t, Config{Replication: 1}, http.StatusOK)
	h := rt.Handler()
	for _, tc := range []struct {
		name, method, body string
		want               int
	}{
		{"method", http.MethodGet, oneRow, http.StatusMethodNotAllowed},
		{"bad json", http.MethodPost, "{", http.StatusBadRequest},
		{"no instances", http.MethodPost, `{"instances": []}`, http.StatusBadRequest},
	} {
		req := httptest.NewRequest(tc.method, "/predict/m", bytes.NewReader([]byte(tc.body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, rec.Code, tc.want)
		}
	}
}

// TestFanOutMergesAcrossReplicas: a batch over SpreadMin splits across
// both owners and merges back in request order.
func TestFanOutMergesAcrossReplicas(t *testing.T) {
	rt, fakes := fakeCluster(t, Config{Replication: 2, SpreadMin: 2}, http.StatusOK, http.StatusOK)
	body := `{"instances": [[0],[1],[2],[3]]}`
	rec := postPredict(rt.Handler(), "m", body, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Predictions []float64 `json:"predictions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for i, p := range resp.Predictions {
		if p != float64(i) {
			t.Fatalf("merged predictions out of order: %v", resp.Predictions)
		}
	}
	if fakes[0].hits.Load() != 1 || fakes[1].hits.Load() != 1 {
		t.Errorf("hits %d/%d, want 1/1 (fan-out across both owners)",
			fakes[0].hits.Load(), fakes[1].hits.Load())
	}
}

// TestPartitionShedsOwner: a replica_down fault partitions an owner for
// one request; with every owner partitioned the caller gets 503.
func TestPartitionShedsOwner(t *testing.T) {
	rt, fakes := fakeCluster(t, Config{Replication: 2}, http.StatusOK, http.StatusOK)
	fault.Activate(fault.Plan{Seed: 1, Sites: map[string]fault.SiteConfig{
		fault.SiteClusterReplicaDown: {ErrRate: 1.0},
	}})
	defer fault.Deactivate()
	before := obs.GetCounter("cluster.partitions").Value()

	rec := postPredict(rt.Handler(), "m", oneRow, "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 when all owners are partitioned", rec.Code)
	}
	if got := obs.GetCounter("cluster.partitions").Value(); got != before+2 {
		t.Errorf("cluster.partitions = %d, want %d", got, before+2)
	}
	if fakes[0].hits.Load()+fakes[1].hits.Load() != 0 {
		t.Errorf("partitioned replicas still saw traffic")
	}
}

// TestDrainingRefuses: a draining router answers 503 on readyz and
// predict but keeps healthz alive.
func TestDrainingRefuses(t *testing.T) {
	rt, _ := fakeCluster(t, Config{Replication: 1}, http.StatusOK)
	rt.StartDraining()
	h := rt.Handler()
	if rec := postPredict(h, "m", oneRow, ""); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("predict while draining: %d, want 503", rec.Code)
	}
	for path, want := range map[string]int{"/readyz": 503, "/healthz": 200} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != want {
			t.Errorf("%s while draining: %d, want %d", path, rec.Code, want)
		}
	}
}

// ridgeArtifact trains a deterministic toy ridge model and saves it to
// a temp artifact file, returning the path.
func ridgeArtifact(t *testing.T, name string) (*model.Artifact, string) {
	t.Helper()
	x := linalg.NewMatrix(6, 2)
	ys := []float64{1, 3, 2, 4, 6, 5}
	for i, row := range [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 2}} {
		copy(x.Row(i), row)
	}
	d, err := dataset.New(x, ys, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := linear.FitRidge(d, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := model.Encode(reg, model.Meta{Name: name, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name+".model.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return a, path
}

// TestClusterLifecycle drives the real harness end to end: boot, load
// via the router's blue/green /models/load, predict, readyz, models
// listing, kill the primary (failover keeps answering), revive it, and
// watch it rejoin.
func TestClusterLifecycle(t *testing.T) {
	scfg := serve.Config{MaxBatch: 1}
	lc, err := NewLocal(3, scfg, Config{Replication: 2, DownAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	const name = "lifecycle-ridge"
	art, path := ridgeArtifact(t, name)
	h := lc.Router.Handler()

	// Rollout through the router. Name is mandatory (sharding key).
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"path": "` + path + `"}`, http.StatusBadRequest},
		{`{"path": "` + path + `", "name": "` + name + `"}`, http.StatusOK},
	} {
		req := httptest.NewRequest(http.MethodPost, "/models/load", bytes.NewReader([]byte(tc.body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Fatalf("load %s: status %d, want %d: %s", tc.body, rec.Code, tc.want, rec.Body.String())
		}
	}
	if got := obs.GetCounter("cluster.rollouts").Value(); got == 0 {
		t.Errorf("cluster.rollouts = 0 after a successful rollout")
	}

	// Readyz admits the loaded owners (inline probe of unhealthy nodes).
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz after rollout: %d: %s", rec.Code, rec.Body.String())
	}

	// The models listing shows the loaded artifact on its owners.
	req = httptest.NewRequest(http.MethodGet, "/models", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !bytes.Contains(rec.Body.Bytes(), []byte(name)) {
		t.Fatalf("models listing: %d: %s", rec.Code, rec.Body.String())
	}

	// Predictions through the cluster match in-process scoring bit for bit.
	scorer, err := art.Scorer()
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.5, 1.5}
	want := scorer.ScoreRow(probe)
	checkPredict := func(stage string) {
		t.Helper()
		body, _ := json.Marshal(map[string]any{"instances": [][]float64{probe}})
		rec := postPredict(h, name, string(body), "")
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: predict status %d: %s", stage, rec.Code, rec.Body.String())
		}
		var resp struct {
			Predictions []float64 `json:"predictions"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Predictions) != 1 || resp.Predictions[0] != want {
			t.Fatalf("%s: predicted %v, want [%v]", stage, resp.Predictions, want)
		}
	}
	checkPredict("healthy fleet")

	// Kill the primary owner: the very next request fails over and
	// still answers 200 with the same bits.
	owners := lc.Router.Owners(name)
	lc.Kill(owners[0])
	checkPredict("primary killed")
	if lc.Router.Replicas()[owners[0]].Healthy() {
		t.Errorf("killed primary still marked healthy")
	}

	// Revive: a fresh listener, readmitted at the next probe. The new
	// process starts with an empty registry, mirroring a real restart,
	// so reload before expecting traffic.
	if err := lc.Revive(owners[0], scfg); err != nil {
		t.Fatal(err)
	}
	if err := lc.Servers[owners[0]].Load(name, art); err != nil {
		t.Fatal(err)
	}
	if err := lc.Router.Replicas()[owners[0]].Probe(context.Background()); err != nil {
		t.Fatalf("probe revived primary: %v", err)
	}
	if !lc.Router.Replicas()[owners[0]].Healthy() {
		t.Errorf("revived primary not readmitted")
	}
	checkPredict("primary revived")
}

// TestServeExposesRouter: the harness serves the router over loopback
// so real HTTP clients can drive the whole stack.
func TestServeExposesRouter(t *testing.T) {
	lc, err := NewLocal(1, serve.Config{MaxBatch: 1}, Config{Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	url, err := lc.Serve()
	if err != nil {
		t.Fatal(err)
	}
	url2, err := lc.Serve()
	if err != nil || url2 != url {
		t.Fatalf("Serve not idempotent: %q vs %q (%v)", url, url2, err)
	}
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over loopback: %d", resp.StatusCode)
	}
}

// TestMetricsEndpoint: the router serves the shared obs snapshot.
func TestMetricsEndpoint(t *testing.T) {
	rt, _ := fakeCluster(t, Config{Replication: 1}, http.StatusOK)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	var snap []obs.Metric
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not a JSON snapshot: %v", err)
	}
}
